; blinky.s — the embedded hello-world, intermittent edition.
;
; Toggles the application pin and blinks the LED every 4096 iterations.
; On harvested power the LED blink visibly stretches the discharge (the
; paper's §2.2 point: an LED draws ~5x the MCU), so the blink rate is a
; worse progress indicator than it looks.
	.equ APPPIN, 0x0128
	.equ LED,    0x012A

main:	mov #2, &APPPIN       ; toggle progress pin
	mov &n, r5
	inc r5
	mov r5, &n
	and #0x0FFF, r5
	jnz main
	mov #1, &LED          ; blink: expensive!
	mov #200, r6
hold:	dec r6
	jnz hold
	mov #0, &LED
	jmp main
n:	.word 0
