; bcdcount.s — a decimal (BCD) non-volatile counter using DADD.
;
; The count lives in FRAM as packed BCD, incremented decimally each pass;
; every 0x100 passes the four digits print through the EDB printf port.
; Exercises dadd, clrc, .ascii data, and nibble->ASCII conversion.
	.equ PUTC, 0x0124

main:	clrc
	mov &bcd, r5
	dadd #1, r5          ; decimal increment
	mov r5, &bcd

	mov &n, r6           ; binary pass counter for pacing
	inc r6
	mov r6, &n
	and #0x00FF, r6
	jnz main

	; print "bcd=DDDD\n"
	mov #label, r9
lchr:	mov.b @r9+, r7
	tst r7
	jz digits
	mov r7, &PUTC
	jmp lchr

digits:	mov &bcd, r5
	mov #4, r8           ; four nibbles, high first
dig:	mov r5, r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	and #0x000F, r7
	add #0x30, r7
	mov r7, &PUTC
	; rotate left by 4: r5 = r5<<4 | r5>>12 (via adds)
	mov r5, r7
	add r5, r5           ; <<1
	add r5, r5           ; <<2... need carry-free: values are BCD so ok
	add r5, r5
	add r5, r5
	; bring in the high nibble we just printed
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	rra r7
	and #0x000F, r7
	bis r7, r5
	dec r8
	jnz dig
	mov #10, &PUTC       ; newline flushes
	jmp main

label:	.ascii "bcd="
	.byte 0
bcd:	.word 0
n:	.word 0
