; printer.s — energy-interference-free tracing from assembly.
;
; Prints "n=<lo byte as two hex digits>" every 512 iterations through the
; EDB printf port. The print travels on tethered power; its energy cost to
; the application is the restore loop's resolution, not the UART's burn.
	.equ PUTC, 0x0124

main:	mov &n, r5
	inc r5
	mov r5, &n
	mov r5, r6
	and #0x01FF, r6
	jnz main

	mov #0x6E, &PUTC      ; 'n'
	mov #0x3D, &PUTC      ; '='
	mov r5, r7            ; high nibble of low byte
	rra r7
	rra r7
	rra r7
	rra r7
	and #0x000F, r7
	call #putnib
	mov r5, r7            ; low nibble
	and #0x000F, r7
	call #putnib
	mov #10, &PUTC        ; newline flushes
	jmp main

putnib:	cmp #10, r7
	jge alpha
	add #0x30, r7         ; '0'..'9'
	jmp emit
alpha:	add #0x37, r7         ; 'A'..'F'
emit:	mov r7, &PUTC
	ret
n:	.word 0
