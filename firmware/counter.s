; counter.s — a non-volatile counter with watchpoint instrumentation.
;
; The count lives in FRAM and survives reboots; registers are volatile.
; Watchpoint 1 marks each completed increment; EDB timestamps it and
; snapshots the energy level, giving a progress/energy profile for free.
	.equ WP, 0x0120

main:	mov #1, &WP
	mov &count, r5
	inc r5
	mov r5, &count
	mov #16, r6           ; per-iteration work
spin:	dec r6
	jnz spin
	jmp main
count:	.word 0
