; selfcheck.s — energy-guarded instrumentation (the Fig. 8/9 pattern).
;
; Each pass appends to a FRAM log; every 64 passes an expensive self-check
; runs between energy guards, so it costs the application nothing. Without
; the guard writes (try deleting them) the check eventually consumes the
; whole charge-discharge budget and progress stops.
	.equ GUARD, 0x0126
	.equ WP,    0x0120

main:	mov #1, &WP
	mov &idx, r5
	inc r5
	mov r5, &idx

	mov r5, r6
	and #0x003F, r6
	jnz work

	mov #1, &GUARD        ; tethered self-check
	mov #0x2000, r7
check:	dec r7
	jnz check
	mov #2, &WP           ; watchpoint 2: check completed
	mov #0, &GUARD

work:	mov #12, r8
spin:	dec r8
	jnz spin
	jmp main
idx:	.word 0
