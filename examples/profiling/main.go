// Profiling demonstrates §5.3.3: tracing events and profiling energy cost
// with watchpoints and the energy-interference-free printf.
//
// The activity-recognition app marks each iteration with watchpoints; EDB
// timestamps each marker and snapshots the energy level, yielding a time
// and energy profile of the loop without meaningfully perturbing it — then
// the same run is repeated with a conventional UART printf to show how
// ordinary tracing changes the application's behavior.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/trace"
)

func main() {
	profile := func(mode apps.PrintMode) (success float64, energyPct, timeMs []float64) {
		app := &apps.Activity{Print: mode}
		h := energy.NewRFHarvester()
		h.Distance = 1.4
		rig, err := core.NewRig(app, core.WithSeed(4), core.WithHarvester(h))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rig.Run(20 * core.Second); err != nil {
			log.Fatal(err)
		}

		// Pair watchpoint 1 (iteration start) with 2/3 (classified) into
		// per-iteration deltas.
		hits := rig.EDB.WatchHits()
		ref := float64(rig.Device.Supply.ReferenceEnergy())
		for i := 0; i+1 < len(hits); i++ {
			if hits[i].ID != apps.WPIterStart {
				continue
			}
			n := hits[i+1]
			if n.ID != apps.WPMoving && n.ID != apps.WPStationary {
				continue
			}
			dt := rig.Device.Clock.ToSeconds(n.At - hits[i].At)
			if dt <= 0 || dt > 0.05 {
				continue
			}
			de := float64(rig.Device.Supply.Cap.EnergyBetween(n.V, hits[i].V))
			energyPct = append(energyPct, 100*de/ref)
			timeMs = append(timeMs, 1e3*float64(dt))
		}
		return app.Stats(rig.Device).SuccessRate(), energyPct, timeMs
	}

	fmt.Printf("%-14s %10s %14s %12s %6s\n", "build", "success", "energy/iter", "time/iter", "n")
	var cdfs []*trace.CDF
	var names []string
	for _, mode := range []apps.PrintMode{apps.NoPrint, apps.UARTPrint, apps.EDBPrint} {
		success, e, ts := profile(mode)
		fmt.Printf("%-14s %9.0f%% %13.2f%% %10.2fms %6d\n",
			mode, 100*success, trace.Summarize(e).Mean, trace.Summarize(ts).Mean, len(e))
		cdfs = append(cdfs, trace.NewCDF(e))
		names = append(names, mode.String())
	}

	fmt.Println("\nCDF of per-iteration energy cost (% of storage capacity):")
	fmt.Print(trace.RenderCDFASCII(names, cdfs, 64, 14))
}
