// Asm runs real MSP430-subset machine code on the simulated WISP: the
// program below is assembled to genuine MSP430 encodings, burned into
// simulated FRAM, and fetched word-by-word through the same energy-metered
// paths as data. Registers are volatile (lost at every brown-out); the
// .word counter is non-volatile and accumulates across reboots. The
// firmware reaches libEDB through the memory-mapped debug port: a
// watchpoint per loop, an energy-interference-free printf every 256
// samples, and an energy guard around an expensive self-check.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memsim"
)

const firmware = `
	; debug port
	.equ WP,     0x0120
	.equ PUTC,   0x0124
	.equ GUARD,  0x0126
	.equ APPPIN, 0x0128
	.equ HALT,   0x012C

main:	mov #1, &WP          ; watchpoint 1: loop top
	mov #2, &APPPIN      ; toggle the progress pin

	mov &count, r5       ; non-volatile counter
	inc r5
	mov r5, &count

	; every 256 samples: print a tick and run a guarded self-check
	mov r5, r6
	and #0x00FF, r6
	jnz work
	mov #0x74, &PUTC     ; 't'
	mov #0x6B, &PUTC     ; 'k'
	mov #10,   &PUTC     ; newline -> EDB printf
	mov #1, &GUARD       ; expensive check on tethered power
	mov #0x4000, r7
check:	dec r7
	jnz check
	mov #0, &GUARD

work:	mov #30, r8          ; per-sample computation
spin:	dec r8
	jnz spin

	cmp #4000, r5
	jne main
	mov #1, &HALT        ; sequence complete
count:	.word 0
`

func main() {
	prog := isa.NewProgram("asm-counter", firmware)
	rig, err := core.NewRig(prog, core.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rig.Run(60 * core.Second)
	if err != nil {
		log.Fatal(err)
	}

	img := prog.Image()
	fmt.Printf("image: %d words of MSP430 code at %#04x (entry %#04x)\n",
		len(img.Words), img.Org, img.Entry)
	fmt.Println(res)

	count, err := rig.Device.Mem.ReadWord(memsim.Addr(img.Symbols["count"]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-volatile count: %d (across %d reboots — registers died every time)\n",
		count, res.Reboots)
	fmt.Printf("instructions retired this power cycle: %d\n", prog.CPU().Retired())
	fmt.Printf("watchpoint hits recorded by EDB: %d\n", len(rig.EDB.WatchHits()))
	fmt.Printf("energy guards: %d, printf lines: %d\n",
		rig.EDB.Stats().Guards, rig.EDB.Stats().Printfs)
	if out, err := rig.Exec("status"); err == nil {
		fmt.Println("\n==== debugger status ====")
		fmt.Print(out)
	}
}
