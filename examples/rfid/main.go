// RFID demonstrates §5.3.4: debugging and tuning an RFID application by
// correlating the message stream with the energy state — a view no single
// conventional instrument can produce.
//
// The WISP firmware decodes reader queries in software and backscatters
// replies; the reader's carrier is simultaneously the tag's energy source.
// EDB decodes both directions externally — including frames the tag failed
// to parse — and stamps each against its energy trace.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/rfid"
	"repro/internal/trace"
)

func main() {
	readerCfg := rfid.DefaultReaderConfig()
	readerCfg.Distance = 1.44 // weak enough that some queries land in charging gaps

	app := &apps.WispRFID{}
	rig, err := core.NewRig(app, core.WithSeed(12), core.WithReader(readerCfg))
	if err != nil {
		log.Fatal(err)
	}
	vcap := rig.EDB.TraceVcap()

	if _, err := rig.Run(10 * core.Second); err != nil {
		log.Fatal(err)
	}

	st := rig.Reader.Stats()
	fmt.Printf("reader: %d queries sent (%d corrupted in flight), %d responses heard\n",
		st.QueriesSent, st.CorruptedSent, st.RN16Heard)
	fmt.Printf("response rate: %.0f%%   replies/second: %.1f\n",
		100*rig.Reader.ResponseRate(), float64(st.RN16Heard)/10)
	fw := app.Stats(rig.Device)
	fmt.Printf("firmware: decoded %d queries, sent %d replies, burned energy on %d corrupt frames\n",
		fw.Queries, fw.Replies, fw.Corrupt)

	// The correlated view of the last 300 ms: energy trace + messages.
	fmt.Println("\nVcap, last 300 ms:")
	total := rig.Device.Clock.Now()
	window := rig.Device.Clock.ToCycles(300 * core.Millisecond)
	late := trace.NewSeries(vcap.Name, vcap.Unit)
	late.Samples = vcap.Window(total-window, total)
	fmt.Print(trace.RenderASCII(late, rig.Device.Clock, 72, 10))

	fmt.Println("RFID messages in the same window (→ reader-to-tag, ← tag-to-reader):")
	for _, ev := range rig.EDB.Events().Events {
		if ev.At < total-window {
			continue
		}
		switch ev.Kind {
		case "rfid-rx":
			fmt.Printf("  t=%8.4fs → %s\n", float64(rig.Device.Clock.ToSeconds(ev.At)), ev.Text)
		case "rfid-tx":
			fmt.Printf("  t=%8.4fs ← %s\n", float64(rig.Device.Clock.ToSeconds(ev.At)), ev.Text)
		}
	}
}
