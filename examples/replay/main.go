// Replay demonstrates the Ekho-style record/replay substrate (the paper's
// §6.1 positions Ekho as complementary to EDB: it makes problematic energy
// environments repeatable; EDB provides the visibility to debug under
// them).
//
// Phase 1 records the harvest-current trace of a live run whose RF channel
// fades randomly. Phase 2 replays the recorded environment into fresh
// devices twice: both replays reproduce the original reboot schedule
// exactly, turning a flaky field failure into a deterministic test case —
// which EDB then instruments.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/units"
)

func main() {
	// Phase 1: record a live (stochastic) energy environment.
	src := energy.NewRFHarvester()
	live := device.NewWISP5(src, 42)
	rec := energy.NewRecorder(src, func() units.Seconds { return live.Clock.Time() })
	live.Supply.Harvester = rec

	app := &apps.LinkedList{}
	r := device.NewRunner(live, app)
	if err := r.Flash(); err != nil {
		log.Fatal(err)
	}
	res, err := r.RunFor(6 * core.Second)
	if err != nil {
		log.Fatal(err)
	}
	tr := rec.Trace()
	fmt.Printf("recorded run: reboots=%d faults=%d iterations=%d\n",
		res.Reboots, res.Faults, app.Iterations(live))
	fmt.Printf("harvest trace: %d samples over %s\n", len(tr.Samples), tr.Duration())

	// The trace serializes like Ekho's recordings.
	f, err := os.CreateTemp("", "harvest-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if _, err := tr.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace written to %s\n\n", f.Name())

	// Phase 2: replay it twice, with EDB attached the second time.
	replay := func(withEDB bool) device.RunResult {
		rf, err := os.Open(f.Name())
		if err != nil {
			log.Fatal(err)
		}
		defer rf.Close()
		loaded, err := energy.ReadHarvestTrace(rf)
		if err != nil {
			log.Fatal(err)
		}
		opts := []core.Option{core.WithSeed(42)}
		if !withEDB {
			opts = append(opts, core.WithoutEDB())
		}
		app := &apps.LinkedList{}
		rig, err := core.NewRig(app, opts...)
		if err != nil {
			log.Fatal(err)
		}
		rig.Device.Supply.Harvester = &energy.ReplayHarvester{
			Trace: loaded,
			Now:   func() units.Seconds { return rig.Device.Clock.Time() },
		}
		res, err := rig.Run(6 * core.Second)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	r1 := replay(false)
	r2 := replay(false)
	fmt.Printf("replay #1: reboots=%d faults=%d\n", r1.Reboots, r1.Faults)
	fmt.Printf("replay #2: reboots=%d faults=%d\n", r2.Reboots, r2.Faults)
	if r1.Reboots == r2.Reboots && r1.Faults == r2.Faults {
		fmt.Println("replays are bit-for-bit repeatable — the flaky failure is now a test case")
	}

	r3 := replay(true)
	fmt.Printf("replay #3 (EDB attached): reboots=%d faults=%d — same environment, full visibility\n",
		r3.Reboots, r3.Faults)
}
