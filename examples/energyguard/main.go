// Energyguard demonstrates §5.3.2: instrumentation of arbitrary energy
// cost made non-disruptive by EDB's energy guards.
//
// The Fibonacci app's debug build opens main() with a consistency check
// whose cost grows with the list. Unguarded, the check eventually consumes
// the whole charge-discharge budget and the application hangs forever.
// Wrapped in energy guards, the check runs on tethered power and the main
// loop keeps its full budget at any list length.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
)

func main() {
	run := func(guarded bool, seconds int) {
		label := "UNGUARDED"
		if guarded {
			label = "GUARDED"
		}
		app := &apps.Fib{DebugBuild: true, UseGuards: guarded, MaxNodes: 4000}
		rig, err := core.NewRig(app, core.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		// Track progress second by second.
		fmt.Printf("=== %s debug build ===\n", label)
		prev := 0
		for s := 0; s < seconds; s++ {
			res, err := rig.Run(core.Second)
			if err != nil {
				log.Fatal(err)
			}
			count := app.Count(rig.Device)
			fmt.Printf("t=%2ds items=%4d (+%3d this second, %d reboots total)\n",
				s+1, count, count-prev, res.Reboots)
			prev = count
			if res.Completed {
				fmt.Println("sequence complete")
				break
			}
			if rig.EDB.Active() {
				rig.EDB.ForceIdle()
			}
		}
		fmt.Printf("energy guards used: %d; consistency violations found: %d\n\n",
			rig.EDB.Stats().Guards, app.CheckErrors(rig.Device))
	}

	run(false, 18) // hangs near the prototype's ~555 items
	run(true, 18)  // keeps appending at a steady rate
}
