// Quickstart: assemble a WISP-like intermittent target with EDB attached,
// run firmware on harvested RF power, and watch the debugger's passive
// streams — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/trace"
)

func main() {
	// The target runs the activity-recognition app with EDB's
	// energy-interference-free printf for per-iteration tracing. The
	// reader sits 1.4 m away, so the tag charges and browns out many
	// times per second — genuinely intermittent execution.
	app := &apps.Activity{Print: apps.EDBPrint}
	harvester := energy.NewRFHarvester()
	harvester.Distance = 1.4
	rig, err := core.NewRig(app, core.WithSeed(7), core.WithHarvester(harvester))
	if err != nil {
		log.Fatal(err)
	}

	// Passive mode: trace the capacitor voltage while the program runs.
	vcap := rig.EDB.TraceVcap()

	res, err := rig.Run(3 * core.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== run ==")
	fmt.Println(res)
	st := app.Stats(rig.Device)
	fmt.Printf("iterations: %d attempted, %d completed (%.0f%% success)\n",
		st.Attempted, st.Completed, 100*st.SuccessRate())
	fmt.Printf("classified: %d moving / %d stationary\n", st.Moving, st.Stationary)

	fmt.Println("\n== energy trace (last 150 ms) ==")
	total := rig.Device.Clock.Now()
	window := rig.Device.Clock.ToCycles(150 * core.Millisecond)
	late := trace.NewSeries(vcap.Name, vcap.Unit)
	late.Samples = vcap.Window(total-window, total)
	fmt.Print(trace.RenderASCII(late, rig.Device.Clock, 72, 12))

	fmt.Println("== first lines of EDB printf output ==")
	out := rig.EDB.PrintfOutput()
	if len(out) > 200 {
		out = out[:200] + "…"
	}
	fmt.Println(out)

	fmt.Println("== debugger status ==")
	status, err := rig.Exec("status")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(status)
}
