// Listbug walks through the paper's §5.3.1 case study end to end:
//
//  1. Run the linked-list app WITHOUT a debugger: intermittence corrupts
//     the non-volatile list, the MCU wedges on a wild pointer, and the
//     main loop stops forever.
//  2. Run it again WITH EDB and the keep-alive assertion: the corruption
//     is caught at its source, the target is tethered alive, and an
//     interactive console session inspects the broken structure over the
//     debug wire.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/edb"
	"repro/internal/memsim"
)

func main() {
	fmt.Println("=== phase 1: no debugger — observe the failure, gain no insight ===")
	app1 := &apps.LinkedList{}
	rig1, err := core.NewRig(app1, core.WithSeed(42), core.WithoutEDB())
	if err != nil {
		log.Fatal(err)
	}
	res1, err := rig1.Run(15 * core.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reboots=%d faults=%d iterations=%d\n",
		res1.Reboots, res1.Faults, app1.Iterations(rig1.Device))
	fmt.Println("the device wedges every charge cycle; only re-flashing recovers it —")
	fmt.Println("and nothing above says WHY: the root cause is invisible without EDB")

	fmt.Println("\n=== phase 2: EDB keep-alive assert + interactive diagnosis ===")
	app2 := &apps.LinkedList{WithAssert: true}
	rig2, err := core.NewRig(app2, core.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	rig2.EDB.OnInteractive(func(s *edb.Session) {
		rig2.Console.BindSession(s)
		defer rig2.Console.BindSession(nil)
		fmt.Printf("\n[session] %s — target tethered, Vcap=%.3f V\n", s.Reason, s.Voltage())
		hdr := app2.HeaderAddr()
		for _, cmd := range []string{
			fmt.Sprintf("read %#04x", uint16(hdr)),   // sentinel
			fmt.Sprintf("read %#04x", uint16(hdr+2)), // tail
			"vcap",
		} {
			out, err := rig2.Exec(cmd)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("(edb) %s\n%s", cmd, out)
		}
		read := func(a memsim.Addr) uint16 {
			v, err := s.ReadWord(a)
			if err != nil {
				log.Fatal(err)
			}
			return v
		}
		sentinel := read(hdr)
		tail := read(hdr + 2)
		tailNext := read(memsim.Addr(tail))
		first := read(memsim.Addr(sentinel))
		fmt.Printf("diagnosis: tail=%#04x tail->next=%#04x first=%#04x\n", tail, tailNext, first)
		switch {
		case tailNext != 0:
			fmt.Println("  -> interrupted append: tail points at the penultimate element")
		case first == 0:
			fmt.Println("  -> interrupted remove drained the chain: head is NULL")
		default:
			firstPrev := read(memsim.Addr(first) + 2)
			fmt.Printf("  -> head linkage broken: first->prev=%#04x, sentinel=%#04x\n", firstPrev, sentinel)
		}
		s.Halt() // keep the device alive for further inspection
	})

	res2, err := rig2.Run(30 * core.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun ended: halted=%q faults=%d (the wild write never executed)\n",
		res2.Halted, res2.Faults)
	fmt.Printf("target still tethered: %v\n", rig2.Device.Supply.Tethered())
}
