// Datalogger demonstrates a second intermittence-bug shape — a torn
// multi-word update — and the two ways out of it.
//
// The app samples a temperature sensor into a non-volatile ring log whose
// head index and count must move together. On harvested power the unsafe
// build eventually reboots between the two writes and the metadata tears.
// The demo shows three runs:
//
//  1. unsafe: the tear happens silently,
//  2. unsafe + EDB assert: the tear is caught live on a tethered target,
//  3. safe (DINO-style task boundaries): the tear cannot happen.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/edb"
)

func main() {
	run := func(label string, app *apps.Datalogger, seed int64, handler func(*core.Rig)) {
		rig, err := core.NewRig(app, core.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		if handler != nil {
			handler(rig)
		}
		res, err := rig.Run(20 * core.Second)
		if err != nil {
			log.Fatal(err)
		}
		st := app.Stats(rig.Device)
		fmt.Printf("%-22s reboots=%-4d samples=%-6d meta-consistent=%-5v halted=%q\n",
			label, res.Reboots, st.Count, st.MetaConsistent, res.Halted)
	}

	// Find a seed whose trajectory tears within the demo window, then
	// show all three builds on it.
	seed := int64(300)
	for s := int64(300); s < 320; s++ {
		app := &apps.Datalogger{SampleEvery: 200e-6}
		rig, err := core.NewRig(app, core.WithSeed(s), core.WithoutEDB())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rig.Run(20 * core.Second); err != nil {
			log.Fatal(err)
		}
		if !app.Stats(rig.Device).MetaConsistent {
			seed = s
			break
		}
	}
	fmt.Printf("demonstration seed: %d\n\n", seed)

	run("unsafe", &apps.Datalogger{SampleEvery: 200e-6}, seed, nil)
	run("unsafe + EDB assert", &apps.Datalogger{SampleEvery: 200e-6, WithAssert: true}, seed,
		func(rig *core.Rig) {
			rig.EDB.OnInteractive(func(s *edb.Session) {
				fmt.Printf("  [session] %s at Vcap=%.3f V — log metadata inspectable live\n",
					s.Reason, s.Voltage())
				s.Halt()
			})
		})
	run("safe (task bounds)", &apps.Datalogger{SampleEvery: 200e-6, Safe: true}, seed, nil)
}
