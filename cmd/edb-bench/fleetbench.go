package main

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/units"
)

// kernelBaseline times the per-rig simulator loop BenchmarkSimulatorThroughput
// measures (busy app, EDB attached, RF harvest) and returns simulated seconds
// executed per wall second.
func kernelBaseline(quick bool) (float64, error) {
	iters := 400 // 100 simulated seconds
	if quick {
		iters = 80
	}
	// Clear other experiments' garbage first: the baseline is the speedup
	// denominator, and background GC from a shared-process suite run can
	// halve it.
	runtime.GC()
	start := time.Now()
	per, err := experiments.RunThroughput(iters)
	if err != nil {
		return 0, err
	}
	wall := time.Since(start).Seconds()
	return float64(iters) * per / wall, nil
}

// runKernelBench records the sequential simulator kernel's throughput — the
// denominator of the fleet speedup — as a "kernel" suite in BENCH.json.
func runKernelBench(o *jobOut, quick bool) error {
	simPerSec, err := kernelBaseline(quick)
	if err != nil {
		return err
	}

	isaIters := 40
	if quick {
		isaIters = 10
	}
	start := time.Now()
	perIter, err := experiments.RunISAThroughput(isaIters)
	if err != nil {
		return err
	}
	isaWall := time.Since(start).Seconds()
	instrPerSec := perIter * float64(isaIters) / isaWall

	o.metric("kernel_sim_s_per_sec", simPerSec)
	o.metric("kernel_isa_instr_per_sec", instrPerSec)

	var b strings.Builder
	fmt.Fprintf(&b, "sequential simulator kernel:\n")
	fmt.Fprintf(&b, "  rig throughput   %10.1f sim-s/s   (busy app + EDB, RF harvest)\n", simPerSec)
	fmt.Fprintf(&b, "  ISA interpreter  %10.2f Minstr/s  (spin loop, constant supply)\n", instrPerSec/1e6)
	o.text = b.String()
	return nil
}

// roomHarvester spreads tag i across 0.6–2.0 m from the reader: near tags
// run almost continuously, mid-range tags intermittently, and far tags spend
// most of their lives recharging — the power-state mix of a real deployment.
func roomHarvester(i int, seed int64) energy.Harvester {
	h := energy.NewRFHarvester()
	h.Noise = nil
	h.NoiseFrac = 0
	h.Distance = units.Meters(0.6 + 1.4*float64(i%97)/97.0)
	return h
}

// runFleetBench benchmarks the batched fleet kernel: a room-scale population
// of activity-recognition tags sampling at 25 Hz, swept through the
// time-sliced kernel, against the sequential per-rig baseline. Results go to
// BENCH_fleet.json.
func runFleetBench(o *jobOut, quick bool, tags int) error {
	baseline, err := kernelBaseline(quick)
	if err != nil {
		return fmt.Errorf("fleet bench baseline: %w", err)
	}

	if tags <= 0 {
		tags = 10_000
	}
	dur := units.Seconds(10)
	if quick {
		dur = 3
		if tags > 2000 {
			tags = 2000
		}
	}

	start := time.Now()
	res, err := fleet.Run(fleet.Config{
		Tags:         tags,
		Duration:     dur,
		Seed:         12,
		Quantum:      2048,
		SleepQuantum: 24576,
		DeferSupply:  true,
		NewProgram: func(i int) device.Program {
			return &apps.Activity{Print: apps.NoPrint, SleepBetween: units.MilliSeconds(40)}
		},
		NewHarvester: roomHarvester,
	})
	if err != nil {
		return fmt.Errorf("fleet bench: %w", err)
	}
	wall := time.Since(start).Seconds()

	aggPerSec := res.AggregateSimSeconds / wall
	tagsPerSec := float64(tags) / wall
	speedup := aggPerSec / baseline

	o.metric("fleet_tags", float64(tags))
	o.metric("fleet_duration_s", float64(dur))
	o.metric("fleet_wall_s", wall)
	o.metric("fleet_tags_per_sec", tagsPerSec)
	o.metric("fleet_agg_sim_s_per_sec", aggPerSec)
	o.metric("fleet_bytes_per_tag", res.BytesPerTag)
	o.metric("fleet_kernel_baseline_sim_s_per_sec", baseline)
	o.metric("fleet_speedup_x", speedup)
	o.metric("fleet_reboots", float64(res.Reboots))

	var b strings.Builder
	fmt.Fprintf(&b, "fleet kernel: %d tags × %s (activity app @ 25 Hz, 0.6–2.0 m spread):\n",
		tags, dur)
	fmt.Fprintf(&b, "  wall time        %10.2f s\n", wall)
	fmt.Fprintf(&b, "  tags/sec         %10.0f\n", tagsPerSec)
	fmt.Fprintf(&b, "  sim-s/sec        %10.0f aggregate\n", aggPerSec)
	fmt.Fprintf(&b, "  memory/tag       %10.0f bytes\n", res.BytesPerTag)
	fmt.Fprintf(&b, "  baseline         %10.1f sim-s/s (sequential rig)\n", baseline)
	fmt.Fprintf(&b, "  speedup          %10.1fx\n", speedup)
	fmt.Fprintf(&b, "  fleet reboots    %10d\n", res.Reboots)
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_fleet.json", string(js)+"\n")
	return nil
}
