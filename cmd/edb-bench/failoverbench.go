package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/server"
)

// runGatewayFailoverBench measures the replicated-gateway hand-off path: a
// fleet of live interactive sessions is parked mid-session on gateway A
// (which replicates to its peer B), A is killed without warning, and every
// client must resume on B. Reported numbers are the client-observed
// hand-off latency distribution and the sessions-lost count — which must
// be zero, enforced as a bench failure. Every surviving session's output
// is verified byte-for-byte against a local golden run, so "survived"
// means "indistinguishable from an unmigrated session", not merely "did
// not error".
func runGatewayFailoverBench(o *jobOut, quick bool) error {
	sessions := 16
	if quick {
		sessions = 8
	}
	cmds := []string{"vcap", "status", "halt"}
	baseSpec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 2, Interactive: true}

	// Local goldens, one per seed: the deterministic-replay oracle.
	goldens := make(map[int64]string, sessions)
	pool := scenario.NewPool(2)
	for seed := int64(1); seed <= int64(sessions); seed++ {
		spec := baseSpec
		spec.Seed = seed
		var buf bytes.Buffer
		i := 0
		if _, err := pool.Run(spec, &buf, func() (string, bool) {
			if i < len(cmds) {
				i++
				return cmds[i-1], true
			}
			return "", false
		}); err != nil {
			return fmt.Errorf("golden seed %d: %w", seed, err)
		}
		goldens[seed] = buf.String()
	}

	// Two backends shared by both gateways, gateway A replicating to B.
	var backends []string
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	for i := 0; i < 2; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := server.New(server.Config{MaxSessions: sessions + 4, MaxConns: 512})
		go srv.Serve(lis)
		backends = append(backends, lis.Addr().String())
		cleanup = append(cleanup, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	startGW := func(cfg cluster.Config) (*cluster.Gateway, string, error) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		gw := cluster.New(cfg)
		go gw.Serve(lis)
		cleanup = append(cleanup, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			gw.Shutdown(ctx)
		})
		return gw, lis.Addr().String(), nil
	}
	gwB, addrB, err := startGW(cluster.Config{Backends: backends, MaxConns: 512})
	if err != nil {
		return err
	}
	gwA, addrA, err := startGW(cluster.Config{Backends: backends, MaxConns: 512, Peer: addrB,
		PeerRetry: 100 * time.Millisecond, PeerHeartbeat: 500 * time.Millisecond})
	if err != nil {
		return err
	}

	// Park every session at its first prompt on gateway A. Each session
	// gets its own release gate: after the kill, clients are drained one
	// at a time, so every hand-off latency is a clean per-session
	// measurement instead of single-core queueing behind the other
	// fifteen resumes (the kill itself still lands on all of them at
	// once — every replica is live when A dies).
	type out struct {
		seed    int64
		buf     bytes.Buffer
		err     error
		resumes int
		took    time.Duration
		release chan struct{}
		done    chan struct{}
	}
	var ready sync.WaitGroup
	ready.Add(sessions)
	outs := make([]*out, sessions)
	for si := 0; si < sessions; si++ {
		outs[si] = &out{seed: int64(si + 1), release: make(chan struct{}), done: make(chan struct{})}
		go func(so *out) {
			defer close(so.done)
			cl, err := client.Dial(addrA+","+addrB, client.Options{
				Reconnect: true,
				Attempts:  10,
				Backoff:   50 * time.Millisecond,
				OnResume:  func(addr string, took time.Duration) { so.resumes++; so.took += took },
			})
			if err != nil {
				ready.Done()
				so.err = err
				return
			}
			defer cl.Close()
			spec := baseSpec
			spec.Seed = so.seed
			i := 0
			_, so.err = cl.Run(spec, &so.buf, func() (string, bool) {
				if i == 0 {
					ready.Done()
					<-so.release
				}
				if i < len(cmds) {
					i++
					return cmds[i-1], true
				}
				return "", false
			})
		}(outs[si])
	}
	ready.Wait()

	// Wait for the replica set to be warm on B — the bench measures the
	// hand-off, not the race between replication and the kill.
	warmBy := time.Now().Add(10 * time.Second)
	for gwB.Metrics().ReplicaSessions < int64(sessions) && time.Now().Before(warmBy) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := gwB.Metrics().ReplicaSessions; live < int64(sessions) {
		return fmt.Errorf("peer mirrors %d/%d sessions before the kill", live, sessions)
	}

	// Kill A: an already-cancelled context makes Shutdown slam every
	// connection and the listener at once — no draining, no hand-off
	// frames. Then let the parked clients answer into the wreckage.
	killCtx, cancel := context.WithCancel(context.Background())
	cancel()
	gwA.Shutdown(killCtx)
	for _, so := range outs {
		close(so.release)
		<-so.done
	}

	lost, handoffs := 0, 0
	var tooks []time.Duration
	for _, so := range outs {
		if so.err != nil || so.buf.String() != goldens[so.seed] {
			lost++
			continue
		}
		if so.resumes > 0 {
			handoffs++
			tooks = append(tooks, so.took)
		}
	}
	sort.Slice(tooks, func(i, j int) bool { return tooks[i] < tooks[j] })
	quantile := func(q float64) time.Duration {
		if len(tooks) == 0 {
			return 0
		}
		idx := int(q * float64(len(tooks)-1))
		return tooks[idx]
	}
	p50, p99 := quantile(0.50), quantile(0.99)
	m := gwB.Metrics()

	o.metric("gateway_failover_sessions", float64(sessions))
	o.metric("gateway_failover_lost", float64(lost))
	o.metric("gateway_failover_handoffs", float64(handoffs))
	o.metric("gateway_failover_p50_ms", 1e3*p50.Seconds())
	o.metric("gateway_failover_p99_ms", 1e3*p99.Seconds())
	o.metric("gateway_failover_replica_reclaims", float64(m.ReplicaReclaims))

	var b strings.Builder
	fmt.Fprintf(&b, "gateway failover: %d live sessions, serving gateway killed mid-session\n\n", sessions)
	fmt.Fprintf(&b, "  handed off %d sessions to the replica, lost %d (outputs verified against local golden)\n",
		handoffs, lost)
	fmt.Fprintf(&b, "  client-observed hand-off latency p50 %.1f ms, p99 %.1f ms\n",
		1e3*p50.Seconds(), 1e3*p99.Seconds())
	fmt.Fprintf(&b, "  replica reclaims on the surviving gateway: %d\n", m.ReplicaReclaims)
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_gateway_failover.json", string(js)+"\n")

	if handoffs == 0 {
		return fmt.Errorf("gateway kill produced no hand-offs")
	}
	if lost > 0 {
		return fmt.Errorf("%d/%d sessions lost across the gateway kill", lost, sessions)
	}
	return nil
}
