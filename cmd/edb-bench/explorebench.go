package main

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/explore"
)

// exploreWorkload is the benchmark search: the unguarded linked-list bug
// with a small per-segment candidate cap and a deep frontier. The cap is
// chosen so the state space *closes* under the bound (the frontier drains
// instead of hitting the depth wall), which is where dedup earns its keep:
// more than half the injected branches land on already-known states.
func exploreWorkload(quick bool) explore.Config {
	cfg := explore.Config{
		NewRig: func() (*device.Device, device.Program, error) {
			return core.ExploreTarget(&apps.LinkedList{}, 42)
		},
		Mode:          explore.ModeWrite,
		MaxCandidates: 5,
		MaxDepth:      32,
		MaxStates:     8192,
	}
	if quick {
		cfg.MaxCandidates = 4
		cfg.MaxStates = 2048
	}
	return cfg
}

// runExploreBench measures the exhaustive checker: states and branches per
// second, the dedup hit rate, and 1→N worker scaling, with the merged
// report deep-compared across worker counts (any divergence is a
// determinism bug, not a statistics artifact). Results land in
// BENCH_explore.json.
func runExploreBench(o *jobOut, quick bool) error {
	cfg := exploreWorkload(quick)
	workers := []int{1, 2, 4}

	var base *explore.Report
	secs := make([]float64, len(workers))
	for i, w := range workers {
		c := cfg
		c.Workers = w
		runtime.GC()
		start := time.Now()
		rep, err := explore.Run(c)
		if err != nil {
			return fmt.Errorf("explore bench (%d workers): %w", w, err)
		}
		secs[i] = time.Since(start).Seconds()
		if base == nil {
			base = rep
			if rep.Truncated {
				return fmt.Errorf("explore bench: workload truncated (states=%d); the search must close", rep.States)
			}
			if rep.Clean() {
				return fmt.Errorf("explore bench: workload found no WAR violations")
			}
		} else if !reflect.DeepEqual(base, rep) {
			return fmt.Errorf("explore bench: report at %d workers diverges from the 1-worker report", w)
		}
	}

	o.metric("explore_states", float64(base.States))
	o.metric("explore_branches", float64(base.Branches))
	o.metric("explore_segments", float64(base.Segments))
	o.metric("explore_dedup_hit_pct", 100*base.DedupRate())
	o.metric("explore_war_violations", float64(len(base.Violations)))
	for i, w := range workers {
		o.metric(fmt.Sprintf("explore_states_per_s_w%d", w), float64(base.States)/secs[i])
		o.metric(fmt.Sprintf("explore_branches_per_s_w%d", w), float64(base.Branches)/secs[i])
	}
	o.metric("explore_speedup_4w", secs[0]/secs[len(secs)-1])
	o.metric("explore_host_cpus", float64(runtime.NumCPU()))

	var b strings.Builder
	fmt.Fprintf(&b, "exhaustive power-failure exploration (unguarded linked list, mode=%s, cap=%d):\n",
		base.Mode, cfg.MaxCandidates)
	fmt.Fprintf(&b, "  states %d  branches %d  segments %d  dedup %.1f%%  WAR addresses %d\n",
		base.States, base.Branches, base.Segments, 100*base.DedupRate(), len(base.Violations))
	for i, w := range workers {
		fmt.Fprintf(&b, "  %d worker(s): %8.0f states/s  %8.0f branches/s  (%.3fs)\n",
			w, float64(base.States)/secs[i], float64(base.Branches)/secs[i], secs[i])
	}
	fmt.Fprintf(&b, "  1->4 worker speedup %.2fx on %d host cpu(s)\n",
		secs[0]/secs[len(secs)-1], runtime.NumCPU())
	b.WriteString("  reports identical across worker counts\n")
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_explore.json", string(js)+"\n")
	return nil
}
