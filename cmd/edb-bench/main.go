// Command edb-bench regenerates the paper's evaluation: every table and
// figure of §5 runs on the simulated platform and prints in the paper's
// layout. Results are also written under -out as text files.
//
// Usage:
//
//	edb-bench -exp all
//	edb-bench -exp table3 -out results
//
// Experiments: table2 table3 table4 fig7 fig9 fig11 fig12 sec531 sec532 all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/units"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table2|table3|table4|fig2|fig7|fig9|fig11|fig12|sweep|sec531|sec532|baselines|ablations|all)")
	out := flag.String("out", "results", "output directory for result files ('' to skip writing)")
	quick := flag.Bool("quick", false, "shorter runs (coarser statistics)")
	csv := flag.Bool("csv", false, "also write figure data as CSV files")
	flag.Parse()

	runner := &benchRunner{outDir: *out, quick: *quick}
	wanted := strings.Split(*exp, ",")
	all := *exp == "all"
	want := func(id string) bool {
		if all {
			return true
		}
		for _, w := range wanted {
			if strings.TrimSpace(w) == id {
				return true
			}
		}
		return false
	}

	if want("table2") {
		runner.run("table2", func() (string, error) {
			return experiments.RunTable2(experiments.DefaultTable2Config()).Format(), nil
		})
	}
	if want("table3") {
		runner.run("table3", func() (string, error) {
			cfg := experiments.DefaultTable3Config()
			if *quick {
				cfg.Trials = 15
			}
			r, err := experiments.RunTable3(cfg)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	var t4 *experiments.Table4Result
	if want("table4") || want("fig11") {
		runner.run("table4", func() (string, error) {
			cfg := experiments.DefaultPrintCostConfig()
			if *quick {
				cfg.Duration = 15
			}
			r, err := experiments.RunPrintCost(cfg)
			if err != nil {
				return "", err
			}
			t4 = &r
			return r.Format(), nil
		})
	}
	if want("fig11") && t4 != nil {
		runner.run("fig11", func() (string, error) {
			fig := experiments.Fig11FromTable4(*t4)
			if *csv {
				runner.writeAux("fig11.csv", fig.CSV())
			}
			return fig.Format(), nil
		})
	}
	if want("fig7") {
		for _, withAssert := range []bool{false, true} {
			withAssert := withAssert
			name := "fig7-noassert"
			if withAssert {
				name = "fig7-assert"
			}
			runner.run(name, func() (string, error) {
				cfg := experiments.DefaultFig7Config()
				cfg.WithAssert = withAssert
				if *quick {
					cfg.Duration = 8
				}
				r, err := experiments.RunFig7(cfg)
				if err != nil {
					return "", err
				}
				if *csv {
					runner.writeAux(name+".csv", r.CSV())
				}
				return r.Format(), nil
			})
		}
	}
	if want("fig9") {
		for _, guarded := range []bool{false, true} {
			name := "fig9-unguarded"
			if guarded {
				name = "fig9-guarded"
			}
			guarded := guarded
			runner.run(name, func() (string, error) {
				cfg := experiments.DefaultFig9Config()
				cfg.UseGuards = guarded
				if *quick {
					cfg.Duration = 12
				}
				r, err := experiments.RunFig9(cfg)
				if err != nil {
					return "", err
				}
				if *csv {
					runner.writeAux(name+".csv", r.CSV())
				}
				return r.Format(), nil
			})
		}
	}
	if want("fig12") {
		runner.run("fig12", func() (string, error) {
			cfg := experiments.DefaultFig12Config()
			if *quick {
				cfg.Duration = 8
			}
			r, err := experiments.RunFig12(cfg)
			if err != nil {
				return "", err
			}
			if *csv {
				runner.writeAux("fig12.csv", r.CSV())
			}
			return r.Format(), nil
		})
	}
	if want("fig2") {
		runner.run("fig2", func() (string, error) {
			r, err := experiments.RunFig2(3, 42)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	if want("sweep") {
		runner.run("sweep", func() (string, error) {
			per := units.Seconds(8)
			if *quick {
				per = 5
			}
			r, err := experiments.RunRangeSweep(per, 12)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	if want("sec531") {
		runner.run("sec531", func() (string, error) {
			r, err := experiments.RunSec531(42)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	if want("sec532") {
		runner.run("sec532", func() (string, error) {
			dur := units.Seconds(40)
			if *quick {
				dur = 20
			}
			r, err := experiments.RunSec532(dur, 7)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}

	if want("baselines") {
		runner.run("baselines", func() (string, error) {
			dur := units.Seconds(15)
			if *quick {
				dur = 10
			}
			r, err := experiments.RunBaselines(dur, 42)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	if want("ablations") {
		runner.run("ablation-restore-margin", func() (string, error) {
			trials := 20
			if *quick {
				trials = 8
			}
			r, err := experiments.RunAblateRestoreMargin(trials, 5)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
		runner.run("ablation-sample-period", func() (string, error) {
			r, err := experiments.RunAblateSamplePeriod(5)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}

	if runner.failures > 0 {
		os.Exit(1)
	}
}

type benchRunner struct {
	outDir   string
	quick    bool
	failures int
}

// writeAux writes a secondary artifact (CSV data) beside the text result.
func (b *benchRunner) writeAux(name, content string) {
	if b.outDir == "" {
		return
	}
	if err := os.MkdirAll(b.outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "%s: mkdir: %v\n", name, err)
		b.failures++
		return
	}
	if err := os.WriteFile(filepath.Join(b.outDir, name), []byte(content), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: write: %v\n", name, err)
		b.failures++
	}
}

func (b *benchRunner) run(id string, fn func() (string, error)) {
	fmt.Printf("==== %s ====\n", id)
	text, err := fn()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: error: %v\n", id, err)
		b.failures++
		return
	}
	fmt.Println(text)
	if b.outDir == "" {
		return
	}
	if err := os.MkdirAll(b.outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "%s: mkdir: %v\n", id, err)
		b.failures++
		return
	}
	path := filepath.Join(b.outDir, id+".txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: write: %v\n", id, err)
		b.failures++
	}
}
