// Command edb-bench regenerates the paper's evaluation: every table and
// figure of §5 runs on the simulated platform and prints in the paper's
// layout. Results are also written under -out as text files.
//
// Experiments run concurrently on a seed-sharded worker pool
// (internal/parallel); each owns an independent simulated bench, so the
// output is bit-for-bit identical to a sequential run — only faster. Output
// is buffered per experiment and printed in a fixed order.
//
// Usage:
//
//	edb-bench -exp all
//	edb-bench -exp table3 -out results
//	edb-bench -json -quick
//
// Experiments: table2 table3 table4 fig2 fig7 fig9 fig11 fig12 sweep
// sec531 sec532 baselines ablations explore fleet all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/tracecodec"
	"repro/internal/units"
	"repro/internal/wire"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table2|table3|table4|fig2|fig7|fig9|fig11|fig12|sweep|sec531|sec532|baselines|ablations|explore|fleet|all)")
	out := flag.String("out", "results", "output directory for result files ('' to skip writing)")
	quick := flag.Bool("quick", false, "shorter runs (coarser statistics)")
	csv := flag.Bool("csv", false, "also write figure data as CSV files")
	jsonOut := flag.Bool("json", false, "print headline metrics as a single JSON object (text results still go to -out)")
	par := flag.Int("par", 0, "worker count for the parallel runner (0 = GOMAXPROCS, 1 = sequential)")
	traceBench := flag.Bool("trace", false, "benchmark the trace-stream codec on a Figure-7-style RF harvest trace (writes BENCH_trace.json)")
	snapBench := flag.Bool("snapshot", false, "benchmark warm-start session forking and delta snapshots (writes BENCH_snapshot.json)")
	fleetBench := flag.Bool("fleet", false, "benchmark the batched fleet-simulation kernel against the sequential rig (writes BENCH_fleet.json)")
	fleetTags := flag.Int("fleet-tags", 0, "fleet size for -fleet and the fleet experiment (0 = defaults: 10000)")
	kernelBench := flag.Bool("kernel", false, "record the sequential simulator kernel baseline as a 'kernel' suite in BENCH.json")
	clusterBench := flag.Bool("cluster", false, "benchmark the edbd gateway tier: sessions/sec at 1/2/4 backends plus drain-migration latency (writes BENCH_cluster.json)")
	failoverBench := flag.Bool("gateway-failover", false, "benchmark replicated-gateway hand-off: kill the serving gateway under live sessions, measure client-observed resume latency and sessions lost (writes BENCH_gateway_failover.json)")
	exploreBench := flag.Bool("explore", false, "benchmark the exhaustive power-failure explorer: states/sec, dedup hit rate, 1/2/4-worker scaling (writes BENCH_explore.json)")
	exploreClusterBench := flag.Bool("explore-cluster", false, "benchmark distributed exploration through the gateway: states/sec at 1/2/4 backends vs single-process (writes BENCH_explore_cluster.json)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
	}
	// exit flushes profiles before terminating: os.Exit skips defers, so
	// every termination path below goes through here.
	exit := func(code int) {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err == nil {
				runtime.GC()
				err = pprof.WriteHeapProfile(f)
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				if code == 0 {
					code = 2
				}
			}
		}
		os.Exit(code)
	}

	if *par > 0 {
		parallel.SetWorkers(*par)
	}

	wanted := strings.Split(*exp, ",")
	all := *exp == "all"
	// A benchmark flag (-trace, -snapshot, -fleet, -kernel, -explore) alone
	// runs just that benchmark; combining one with an explicit -exp adds it
	// to that selection.
	if *traceBench || *snapBench || *fleetBench || *kernelBench || *clusterBench || *failoverBench || *exploreBench || *exploreClusterBench {
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if !expSet {
			all, wanted = false, nil
		}
	}
	want := func(id string) bool {
		if all {
			return true
		}
		for _, w := range wanted {
			if strings.TrimSpace(w) == id {
				return true
			}
		}
		return false
	}

	var jobs []job
	add := func(id string, fn func(*jobOut) error) {
		jobs = append(jobs, job{id: id, fn: fn})
	}

	if want("table2") {
		add("table2", func(o *jobOut) error {
			r := experiments.RunTable2(experiments.Table2Config{})
			o.text = r.Format()
			o.metric("table2_worst_case_na", 1e9*float64(r.TotalWorstCase))
			o.metric("table2_active_fraction_pct", 100*r.ActiveFraction)
			return nil
		})
	}
	if want("table3") {
		add("table3", func(o *jobOut) error {
			cfg := experiments.DefaultTable3Config()
			if *quick {
				cfg.Trials = 15
			}
			r, err := experiments.RunTable3(cfg)
			if err != nil {
				return err
			}
			o.text = r.Format()
			o.metric("table3_dv_scope_mean_mv", 1e3*trace.Summarize(r.DVScope).Mean)
			o.metric("table3_de_pct_mean", trace.Summarize(r.DEPctScope).Mean)
			return nil
		})
	}
	if want("table4") || want("fig11") {
		// Fig 11 is derived from the Table 4 runs, so the two share a job.
		add("table4+fig11", func(o *jobOut) error {
			cfg := experiments.DefaultPrintCostConfig()
			if *quick {
				cfg.Duration = 15
			}
			r, err := experiments.RunPrintCost(cfg)
			if err != nil {
				return err
			}
			var b strings.Builder
			if want("table4") {
				b.WriteString(r.Format())
				o.file("table4.txt", r.Format())
			}
			for _, m := range r.Modes {
				key := strings.ReplaceAll(strings.ToLower(m.Mode.String()), " ", "_")
				o.metric(fmt.Sprintf("table4_success_%s_pct", key), 100*m.SuccessRate)
			}
			for _, c := range r.Ckpts {
				key := strings.ReplaceAll(strings.ToLower(c.Strategy), "-", "_")
				o.metric(fmt.Sprintf("table4_ckpt_%s_success_pct", key), 100*c.SuccessRate)
				o.metric(fmt.Sprintf("table4_ckpt_%s_checkpoints", key), float64(c.Checkpoints))
				o.metric(fmt.Sprintf("table4_ckpt_%s_copied_words", key), float64(c.WordsCopied))
			}
			if want("fig11") {
				fig := experiments.Fig11FromTable4(r)
				b.WriteString(fig.Format())
				o.file("fig11.txt", fig.Format())
				if *csv {
					o.file("fig11.csv", fig.CSV())
				}
			}
			o.text = b.String()
			o.noDefaultFile = true
			return nil
		})
	}
	if want("fig7") {
		for _, withAssert := range []bool{false, true} {
			withAssert := withAssert
			name := "fig7-noassert"
			if withAssert {
				name = "fig7-assert"
			}
			add(name, func(o *jobOut) error {
				cfg := experiments.DefaultFig7Config()
				cfg.WithAssert = withAssert
				if *quick {
					cfg.Duration = 8
				}
				r, err := experiments.RunFig7(cfg)
				if err != nil {
					return err
				}
				if *csv {
					o.file(name+".csv", r.CSV())
				}
				o.text = r.Format()
				return nil
			})
		}
	}
	if want("fig9") {
		for _, guarded := range []bool{false, true} {
			guarded := guarded
			name := "fig9-unguarded"
			if guarded {
				name = "fig9-guarded"
			}
			add(name, func(o *jobOut) error {
				cfg := experiments.DefaultFig9Config()
				cfg.UseGuards = guarded
				if *quick {
					cfg.Duration = 12
				}
				r, err := experiments.RunFig9(cfg)
				if err != nil {
					return err
				}
				if *csv {
					o.file(name+".csv", r.CSV())
				}
				o.text = r.Format()
				return nil
			})
		}
	}
	if want("fig12") {
		add("fig12", func(o *jobOut) error {
			cfg := experiments.DefaultFig12Config()
			if *quick {
				cfg.Duration = 8
			}
			r, err := experiments.RunFig12(cfg)
			if err != nil {
				return err
			}
			if *csv {
				o.file("fig12.csv", r.CSV())
			}
			o.text = r.Format()
			o.metric("fig12_response_rate_pct", 100*r.ResponseRate)
			o.metric("fig12_replies_per_s", r.RepliesPerSecond)
			return nil
		})
	}
	if want("fig2") {
		add("fig2", func(o *jobOut) error {
			r, err := experiments.RunFig2(3, 42)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
	}
	if want("sweep") {
		add("sweep", func(o *jobOut) error {
			per := units.Seconds(8)
			if *quick {
				per = 5
			}
			r, err := experiments.RunRangeSweep(per, 12)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
	}
	if want("sec531") {
		add("sec531", func(o *jobOut) error {
			r, err := experiments.RunSec531(42)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
	}
	if want("sec532") {
		add("sec532", func(o *jobOut) error {
			dur := units.Seconds(40)
			if *quick {
				dur = 20
			}
			r, err := experiments.RunSec532(dur, 7)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
	}
	if want("baselines") {
		add("baselines", func(o *jobOut) error {
			dur := units.Seconds(15)
			if *quick {
				dur = 10
			}
			r, err := experiments.RunBaselines(dur, 42)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
	}
	if want("ablations") {
		add("ablation-restore-margin", func(o *jobOut) error {
			trials := 20
			if *quick {
				trials = 8
			}
			r, err := experiments.RunAblateRestoreMargin(trials, 5)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
		add("ablation-sample-period", func(o *jobOut) error {
			r, err := experiments.RunAblateSamplePeriod(5)
			if err != nil {
				return err
			}
			o.text = r.Format()
			return nil
		})
	}

	if want("explore") {
		add("explore", func(o *jobOut) error {
			cfg := experiments.DefaultExhaustiveConfig()
			cfg.CheckHashes = true
			if *quick {
				cfg.MaxStates = 128
			}
			r, err := experiments.RunExhaustive(cfg)
			if err != nil {
				return err
			}
			if r.Unguarded.Clean() {
				return fmt.Errorf("explore: unguarded build must exhibit WAR violations")
			}
			if !r.Guarded.Clean() {
				return fmt.Errorf("explore: guarded build must verify clean")
			}
			o.text = r.Format()
			o.metric("explore_unguarded_violations", float64(len(r.Unguarded.Violations)))
			o.metric("explore_unguarded_states", float64(r.Unguarded.States))
			o.metric("explore_guarded_states", float64(r.Guarded.States))
			return nil
		})
	}
	if want("fleet") {
		add("fleet-table4", func(o *jobOut) error {
			cfg := experiments.DefaultFleetTable4Config()
			if *fleetTags > 0 {
				cfg.Tags = *fleetTags
			}
			if *quick {
				if cfg.Tags > 1000 {
					cfg.Tags = 1000
				}
				cfg.Duration = 2
			}
			r, err := experiments.RunFleetTable4(cfg)
			if err != nil {
				return err
			}
			o.text = r.Format()
			for _, m := range r.Modes {
				key := strings.ReplaceAll(strings.ToLower(m.Mode.String()), " ", "_")
				o.metric(fmt.Sprintf("fleet_success_%s_pct", key), 100*m.SuccessRate)
			}
			if *csv {
				o.file("fleet-table4.csv", r.CSV())
			}
			return nil
		})
	}

	if *traceBench {
		add("trace-codec", func(o *jobOut) error { return runTraceBench(o, *quick) })
	}
	if *snapBench {
		add("snapshot", func(o *jobOut) error { return runSnapshotBench(o, *quick) })
	}
	if *fleetBench {
		add("fleet-bench", func(o *jobOut) error { return runFleetBench(o, *quick, *fleetTags) })
	}
	if *kernelBench {
		add("kernel", func(o *jobOut) error { return runKernelBench(o, *quick) })
	}
	if *clusterBench {
		add("cluster", func(o *jobOut) error { return runClusterBench(o, *quick) })
	}
	if *failoverBench {
		add("gateway-failover", func(o *jobOut) error { return runGatewayFailoverBench(o, *quick) })
	}
	if *exploreBench {
		add("explore-bench", func(o *jobOut) error { return runExploreBench(o, *quick) })
	}
	if *exploreClusterBench {
		add("explore-cluster-bench", func(o *jobOut) error { return runExploreClusterBench(o, *quick) })
	}

	if len(jobs) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments match -exp %q\n", *exp)
		exit(2)
	}

	// Run every selected experiment through the pool. Each job buffers its
	// output; results print afterwards in the jobs' declared order. Errors
	// are per-job: one failing experiment does not cancel the rest.
	start := time.Now()
	results, _ := parallel.Map(len(jobs), func(i int) (jobOut, error) {
		var o jobOut
		o.err = jobs[i].fn(&o)
		return o, nil
	})
	wall := time.Since(start).Seconds()

	// Metrics aggregate as suite → metric → value; json.MarshalIndent
	// sorts map keys at both levels, so BENCH.json is byte-stable across
	// runs and diffable by scripts/benchcmp.sh.
	failures := 0
	metrics := map[string]map[string]float64{}
	for i, o := range results {
		id := jobs[i].id
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", id, o.err)
			failures++
			continue
		}
		if !*jsonOut {
			fmt.Printf("==== %s ====\n", id)
			fmt.Println(o.text)
		}
		if len(o.metrics) > 0 {
			metrics[id] = o.metrics
		}
		if *out != "" {
			if !o.noDefaultFile {
				o.file(id+".txt", o.text)
			}
			for _, f := range o.files {
				if err := writeResult(*out, f.name, f.content); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
					failures++
				}
			}
		}
	}

	metrics["suite"] = map[string]float64{
		"wall_seconds": wall,
		"workers":      float64(parallel.Workers()),
		"experiments":  float64(len(jobs)),
		"failures":     float64(failures),
	}
	blob, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		failures++
	} else {
		if *jsonOut {
			fmt.Println(string(blob))
		}
		if *out != "" {
			if err := writeResult(*out, "BENCH.json", string(blob)+"\n"); err != nil {
				fmt.Fprintf(os.Stderr, "BENCH.json: %v\n", err)
				failures++
			}
		}
	}
	if !*jsonOut {
		fmt.Printf("suite: %d experiments in %.2fs on %d workers\n", len(jobs), wall, parallel.Workers())
	}

	if failures > 0 {
		exit(1)
	}
	exit(0)
}

// runTraceBench records a Figure-7-style RF harvest trace (linked-list app
// on the WISP5 rig) and measures the trace-stream codec against the raw
// wire encoding: framed bytes per sample both ways, the compression ratio,
// and encode/decode throughput. Decoded output is verified against the
// ADC-quantized input before any number is reported.
func runTraceBench(o *jobOut, quick bool) error {
	dur := units.Seconds(20)
	if quick {
		dur = 5
	}
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, 42)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	e.TraceVcap()
	app := &apps.LinkedList{}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return err
	}
	if _, err := r.RunFor(dur); err != nil {
		return err
	}
	series := e.VcapSeries()
	n := len(series.Samples)
	if n == 0 {
		return fmt.Errorf("trace bench: harvest run recorded no samples")
	}
	pts := make([]wire.TracePoint, n)
	for i, sm := range series.Samples {
		pts[i] = wire.TracePoint{At: uint64(sm.At), V: sm.V}
	}

	// Wire cost both ways, frame overhead included, in the server's chunk
	// size.
	const chunk = 512
	var enc tracecodec.Encoder
	var blob, frame []byte
	var rawBytes, zBytes int
	for i := 0; i < n; i += chunk {
		end := i + chunk
		if end > n {
			end = n
		}
		var err error
		frame, err = wire.AppendMsg(frame[:0], &wire.Trace{
			Name: series.Name, Unit: series.Unit, Samples: pts[i:end],
		}, 0)
		if err != nil {
			return err
		}
		rawBytes += len(frame)
		blob = enc.Encode(blob[:0], pts[i:end])
		frame, err = wire.AppendMsg(frame[:0], &wire.TraceZ{
			Name: series.Name, Unit: series.Unit, Count: uint32(end - i), Data: blob,
		}, 0)
		if err != nil {
			return err
		}
		zBytes += len(frame)
	}

	// Throughput over the full window, with the decoded stream verified
	// against the quantized input.
	full := enc.Encode(nil, pts)
	dec, err := tracecodec.Decode(nil, full, n)
	if err != nil {
		return fmt.Errorf("trace bench: decode: %w", err)
	}
	for i := range pts {
		if dec[i].At != pts[i].At || dec[i].V != tracecodec.Quantize(pts[i].V) {
			return fmt.Errorf("trace bench: sample %d decodes to (%d, %v), want (%d, %v)",
				i, dec[i].At, dec[i].V, pts[i].At, tracecodec.Quantize(pts[i].V))
		}
	}
	timePer := func(fn func()) float64 {
		const budget = 100 * time.Millisecond
		iters := 0
		start := time.Now()
		for time.Since(start) < budget {
			fn()
			iters++
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters) / float64(n)
	}
	encNs := timePer(func() { full = enc.Encode(full[:0], pts) })
	decNs := timePer(func() { dec, _ = tracecodec.Decode(dec[:0], full, n) })

	ratio := float64(rawBytes) / float64(zBytes)
	o.metric("trace_samples", float64(n))
	o.metric("trace_raw_bytes_per_sample", float64(rawBytes)/float64(n))
	o.metric("trace_z_bytes_per_sample", float64(zBytes)/float64(n))
	o.metric("trace_compression_ratio", ratio)
	o.metric("trace_encode_ns_per_sample", encNs)
	o.metric("trace_decode_ns_per_sample", decNs)

	var b strings.Builder
	fmt.Fprintf(&b, "trace codec on %.0fs RF harvest window (%d samples):\n", float64(dur), n)
	fmt.Fprintf(&b, "  raw stream        %8d bytes  (%.2f B/sample)\n", rawBytes, float64(rawBytes)/float64(n))
	fmt.Fprintf(&b, "  compressed stream %8d bytes  (%.2f B/sample)\n", zBytes, float64(zBytes)/float64(n))
	fmt.Fprintf(&b, "  compression       %.2fx\n", ratio)
	fmt.Fprintf(&b, "  encode %.1f ns/sample, decode %.1f ns/sample\n", encNs, decNs)
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_trace.json", string(js)+"\n")
	return nil
}

// job is one experiment to run; fn fills the jobOut it is handed.
type job struct {
	id string
	fn func(*jobOut) error
}

// jobOut is one experiment's buffered output: the text to print, files to
// write under -out, and headline metrics for the JSON summary.
type jobOut struct {
	text    string
	files   []resultFile
	metrics map[string]float64
	err     error
	// noDefaultFile suppresses the automatic <id>.txt (for combined jobs
	// that write their own per-part files).
	noDefaultFile bool
}

type resultFile struct{ name, content string }

func (o *jobOut) file(name, content string) {
	o.files = append(o.files, resultFile{name, content})
}

func (o *jobOut) metric(name string, v float64) {
	if o.metrics == nil {
		o.metrics = map[string]float64{}
	}
	o.metrics[name] = v
}

func writeResult(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	return nil
}
