package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/units"
)

// runSnapshotBench measures the warm-start machinery end to end: session
// start latency cold (simulate the whole charge phase) versus warm (fork a
// pre-warmed template) versus pool-served (pop a pre-forked spare), fork
// throughput, and full-image versus dirty-page-delta snapshot sizes.
//
// Start latency uses a long-range tag (5 m), where the first charge takes
// seconds of simulated time — the cost the pool exists to hide. The timed
// specs pin the deadline 2 ms past the snapshot point so every variant does
// the same tiny slice of post-start execution and the measured difference
// is session start alone. Delta sizes use the default 1 m rig, whose
// ~100 ms charge/run duty cycle makes every 100 ms window a representative
// steady-state slice of intermittent execution (including the reboot, which
// dirties all of SRAM).
func runSnapshotBench(o *jobOut, quick bool) error {
	trials := 9
	forks := 32
	intervals := 20
	if quick {
		trials, forks, intervals = 5, 8, 8
	}

	// One-off template cost: build the rig and simulate its charge phase to
	// the quiescent point, then snapshot.
	spec := scenario.Spec{App: "safelist", Seconds: 60, Seed: 42, Distance: 5}
	t0 := time.Now()
	tmpl, err := scenario.NewTemplate(spec)
	if err != nil {
		return err
	}
	buildMS := msSince(t0)

	short := spec
	short.Seconds = tmpl.WarmupSeconds() + 0.002

	coldMS, err := medianRunMS(trials, func() error {
		_, err := scenario.Run(short, io.Discard, nil)
		return err
	})
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	warmMS, err := medianRunMS(trials, func() error {
		_, err := tmpl.Run(short, io.Discard, nil)
		return err
	})
	if err != nil {
		return fmt.Errorf("warm run: %w", err)
	}

	// Pool path: prime with one cold run so the template builds and the
	// spare channel fills; between timed trials, wait (untimed) for the
	// async refill so every trial pops a pre-forked spare.
	pool := scenario.NewPool(1)
	if _, err := pool.Run(short, io.Discard, nil); err != nil {
		return fmt.Errorf("pool prime: %w", err)
	}
	pool.Wait()
	poolTimes := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		if _, err := pool.Run(short, io.Discard, nil); err != nil {
			return fmt.Errorf("pool run %d: %w", i, err)
		}
		poolTimes = append(poolTimes, msSince(t0))
		pool.Wait()
	}
	poolMS := median(poolTimes)
	if m := pool.Metrics(); m.SparePops != uint64(trials) {
		return fmt.Errorf("pool bench invalid: %d/%d trials served from a spare", m.SparePops, trials)
	}

	// Fork throughput: how fast the daemon can mint ready-to-run rigs.
	t0 = time.Now()
	for i := 0; i < forks; i++ {
		if _, _, err := tmpl.Fork(); err != nil {
			return fmt.Errorf("fork %d: %w", i, err)
		}
	}
	forksPerSec := float64(forks) / time.Since(t0).Seconds()

	// Snapshot sizes: arm a baseline on a forked 1 m rig mid-run, then take
	// a dirty-page delta after each 100 ms steady-state window.
	dspec := scenario.Spec{App: "safelist", Seconds: 60, Seed: 42}
	dtmpl, err := scenario.NewTemplate(dspec)
	if err != nil {
		return err
	}
	rig, _, err := dtmpl.Fork()
	if err != nil {
		return err
	}
	clk := rig.Device.Clock
	base := dtmpl.WarmupSeconds() + 1.0
	if _, err := rig.RunUntil(clk.ToCycles(units.Seconds(base)), 0); err != nil {
		return fmt.Errorf("delta rig warmup: %w", err)
	}
	fullBytes, err := rig.EDB.SnapState()
	if err != nil {
		return err
	}
	deltas := make([]float64, 0, intervals)
	for i := 1; i <= intervals; i++ {
		deadline := clk.ToCycles(units.Seconds(base + 0.1*float64(i)))
		if _, err := rig.RunUntil(deadline, 0); err != nil {
			return fmt.Errorf("delta window %d: %w", i, err)
		}
		ds, err := rig.EDB.SnapDelta()
		if err != nil {
			return err
		}
		sum := 0
		for _, d := range ds {
			sum += d.Bytes()
		}
		deltas = append(deltas, float64(sum))
	}
	deltaMedian := median(deltas)
	if deltaMedian <= 0 {
		return fmt.Errorf("delta bench invalid: median steady-state delta is %.0f bytes", deltaMedian)
	}

	sizeRatio := float64(fullBytes) / deltaMedian
	o.metric("snap_full_bytes", float64(fullBytes))
	o.metric("snap_delta_bytes_median", deltaMedian)
	o.metric("snap_size_ratio", sizeRatio)
	o.metric("snap_template_build_ms", buildMS)
	o.metric("snap_start_cold_ms", coldMS)
	o.metric("snap_start_warm_ms", warmMS)
	o.metric("snap_start_pool_ms", poolMS)
	o.metric("snap_start_speedup_warm", coldMS/warmMS)
	o.metric("snap_start_speedup_pool", coldMS/poolMS)
	o.metric("snap_forks_per_sec", forksPerSec)

	var b strings.Builder
	fmt.Fprintf(&b, "warm-start snapshots (safelist, seed %d):\n", spec.Seed)
	fmt.Fprintf(&b, "  session start (5 m tag, %.2fs charge phase):\n", tmpl.WarmupSeconds())
	fmt.Fprintf(&b, "    cold %8.3f ms   warm fork %8.3f ms (%.1fx)   pool spare %8.3f ms (%.1fx)\n",
		coldMS, warmMS, coldMS/warmMS, poolMS, coldMS/poolMS)
	fmt.Fprintf(&b, "    template build %.2f ms (one-off);  fork throughput %.0f forks/s\n", buildMS, forksPerSec)
	fmt.Fprintf(&b, "  snapshot size (1 m tag, 100 ms windows):\n")
	fmt.Fprintf(&b, "    full image %d B   steady-state delta %.0f B (%.1fx smaller)\n",
		fullBytes, deltaMedian, sizeRatio)
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_snapshot.json", string(js)+"\n")
	return nil
}

// medianRunMS times trials invocations of fn and returns the median wall
// time in milliseconds.
func medianRunMS(trials int, fn func() error) (float64, error) {
	times := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, msSince(t0))
	}
	return median(times), nil
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Nanoseconds()) / 1e6
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
