package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/server"
)

// runClusterBench measures the gateway tier end to end: sessions/sec
// through one gateway at 1, 2 and 4 backends, then migration latency under
// a live drain. Every session's output is compared byte-for-byte against a
// locally simulated golden run, so the throughput numbers only count
// sessions the cluster got *right*.
//
// The machine may have a single core, so the scaling story is capacity,
// not CPU: each backend caps its concurrent sessions, each session is
// dominated by client think time (an interactive debugging session is idle
// at a prompt most of its life), and offered load equals fleet capacity.
// Adding a backend then adds session slots, and throughput scales with the
// fleet while the CPU stays mostly idle — the same regime as a real fleet
// of EDB rigs, where the board, not the gateway host, is the bottleneck.
func runClusterBench(o *jobOut, quick bool) error {
	const (
		capPerBackend = 4                      // session slots a backend contributes
		thinkTime     = 300 * time.Millisecond // client dwell per prompt
	)
	legs := []int{1, 2, 4}
	perClient := 10 // sessions each client runs back to back
	if quick {
		legs = []int{1, 2}
		perClient = 6
	}

	cmds := []string{"vcap", "status", "halt"}
	baseSpec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 2, Interactive: true}

	// Golden outputs, one per client seed, simulated locally with the same
	// command script. Deterministic replay is the whole premise: the bytes
	// a session produces depend only on (spec, answers), never on which
	// backend ran it or how often it moved.
	maxClients := legs[len(legs)-1] * capPerBackend
	goldens := make(map[int64]string, maxClients)
	pool := scenario.NewPool(2)
	for seed := int64(1); seed <= int64(maxClients); seed++ {
		spec := baseSpec
		spec.Seed = seed
		var buf bytes.Buffer
		i := 0
		if _, err := pool.Run(spec, &buf, func() (string, bool) {
			if i < len(cmds) {
				i++
				return cmds[i-1], true
			}
			return "", false
		}); err != nil {
			return fmt.Errorf("golden seed %d: %w", seed, err)
		}
		goldens[seed] = buf.String()
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cluster gateway bench: %d session slots/backend, %v think time, %d sessions/client\n\n",
		capPerBackend, thinkTime, perClient)

	rates := map[int]float64{}
	var misses int64
	for _, n := range legs {
		rate, m, err := clusterThroughputLeg(n, capPerBackend, thinkTime, perClient, baseSpec, cmds, goldens)
		if err != nil {
			return fmt.Errorf("%d-backend leg: %w", n, err)
		}
		rates[n] = rate
		misses += m.PlacementMisses
		o.metric(fmt.Sprintf("cluster_sessions_per_sec_%dbackend", n), rate)
		fmt.Fprintf(&b, "  %d backend(s): %7.2f sessions/sec  (%d sessions, %d dispatches)\n",
			n, rate, m.SessionsTotal, m.Dispatches)
	}
	scaling2 := rates[2] / rates[1]
	o.metric("cluster_scaling_x2", scaling2)
	fmt.Fprintf(&b, "\n  scaling 1→2 backends: %.2fx\n", scaling2)
	if r4, ok := rates[4]; ok {
		scaling4 := r4 / rates[1]
		o.metric("cluster_scaling_x4", scaling4)
		fmt.Fprintf(&b, "  scaling 1→4 backends: %.2fx\n", scaling4)
	}

	mig, err := clusterDrainLeg(baseSpec, cmds, goldens)
	if err != nil {
		return fmt.Errorf("drain leg: %w", err)
	}
	o.metric("cluster_drain_sessions", float64(mig.sessions))
	o.metric("cluster_drain_lost", float64(mig.lost))
	o.metric("cluster_migrations", float64(mig.migrations))
	o.metric("cluster_migration_p50_ms", 1e3*mig.p50.Seconds())
	o.metric("cluster_migration_p99_ms", 1e3*mig.p99.Seconds())
	o.metric("cluster_migrate_image_bytes", float64(mig.imageBytes))
	o.metric("cluster_placement_misses", float64(misses+mig.misses))
	o.metric("cluster_think_ms", 1e3*thinkTime.Seconds())
	o.metric("cluster_slots_per_backend", capPerBackend)

	fmt.Fprintf(&b, "\ndrain under load: %d sessions live, backend drained mid-prompt\n", mig.sessions)
	fmt.Fprintf(&b, "  migrated %d sessions, lost %d (outputs verified against local golden)\n",
		mig.migrations, mig.lost)
	fmt.Fprintf(&b, "  migration latency p50 %.1f ms, p99 %.1f ms; %d image bytes shipped\n",
		1e3*mig.p50.Seconds(), 1e3*mig.p99.Seconds(), mig.imageBytes)
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_cluster.json", string(js)+"\n")
	return nil
}

// benchFleet is a gateway plus n in-process backends on loopback sockets.
type benchFleet struct {
	gw       *cluster.Gateway
	gwAddr   string
	servers  map[string]*server.Server
	shutdown []func()
}

func startBenchFleet(n, maxSessions int) (*benchFleet, error) {
	f := &benchFleet{servers: make(map[string]*server.Server)}
	var backends []string
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		srv := server.New(server.Config{MaxSessions: maxSessions, MaxConns: 512})
		go srv.Serve(lis)
		addr := lis.Addr().String()
		backends = append(backends, addr)
		f.servers[addr] = srv
		f.shutdown = append(f.shutdown, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.close()
		return nil, err
	}
	f.gw = cluster.New(cluster.Config{Backends: backends})
	go f.gw.Serve(lis)
	f.gwAddr = lis.Addr().String()
	f.shutdown = append(f.shutdown, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f.gw.Shutdown(ctx)
	})
	return f, nil
}

func (f *benchFleet) close() {
	for i := len(f.shutdown) - 1; i >= 0; i-- {
		f.shutdown[i]()
	}
	f.shutdown = nil
}

// clusterThroughputLeg drives a fleet of n backends at exactly fleet
// capacity: n*slots concurrent clients, each running perClient sessions
// back to back. Rate is total verified sessions over the wall time of the
// slowest client — a fixed work quantum per client, so legs of different
// fleet sizes are directly comparable without deadline quantization.
func clusterThroughputLeg(n, slots int, think time.Duration, perClient int, baseSpec scenario.Spec, cmds []string, goldens map[int64]string) (float64, cluster.Metrics, error) {
	// Two slots of headroom per backend absorb the instant where one
	// client's session is tearing down while its next one starts, so the
	// leg measures steady-state capacity rather than CodeBusy retries.
	fleet, err := startBenchFleet(n, slots+2)
	if err != nil {
		return 0, cluster.Metrics{}, err
	}
	defer fleet.close()

	clients := n * slots
	var completed atomic.Int64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := client.Dial(fleet.gwAddr, client.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			spec := baseSpec
			spec.Seed = seed
			for s := 0; s < perClient; s++ {
				var buf bytes.Buffer
				i := 0
				if _, err := cl.Run(spec, &buf, func() (string, bool) {
					if i < len(cmds) {
						i++
						time.Sleep(think)
						return cmds[i-1], true
					}
					return "", false
				}); err != nil {
					errs <- fmt.Errorf("seed %d: %w", seed, err)
					return
				}
				if buf.String() != goldens[seed] {
					errs <- fmt.Errorf("seed %d: output diverged from local golden", seed)
					return
				}
				completed.Add(1)
			}
		}(int64(ci + 1))
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, cluster.Metrics{}, err
	}
	return float64(completed.Load()) / wall.Seconds(), fleet.gw.Metrics(), nil
}

type drainResult struct {
	sessions   int
	lost       int
	migrations int64
	misses     int64
	imageBytes int64
	p50, p99   time.Duration
}

// clusterDrainLeg parks live sessions at a prompt, drains the busiest
// backend (which hands them off via SessMigrate), and reports the
// gateway's migration latency distribution. A session counts as lost if it
// errors or its output differs from the local golden.
func clusterDrainLeg(baseSpec scenario.Spec, cmds []string, goldens map[int64]string) (drainResult, error) {
	const sessions = 8
	fleet, err := startBenchFleet(2, 32)
	if err != nil {
		return drainResult{}, err
	}
	defer fleet.close()

	release := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(sessions)
	type out struct {
		seed int64
		buf  bytes.Buffer
		err  error
	}
	outs := make([]*out, sessions)
	var wg sync.WaitGroup
	for si := 0; si < sessions; si++ {
		outs[si] = &out{seed: int64(si + 1)}
		wg.Add(1)
		go func(so *out) {
			defer wg.Done()
			cl, err := client.Dial(fleet.gwAddr, client.Options{})
			if err != nil {
				ready.Done()
				so.err = err
				return
			}
			defer cl.Close()
			spec := baseSpec
			spec.Seed = so.seed
			i := 0
			_, so.err = cl.Run(spec, &so.buf, func() (string, bool) {
				if i == 0 {
					ready.Done()
					<-release
				}
				if i < len(cmds) {
					i++
					return cmds[i-1], true
				}
				return "", false
			})
		}(outs[si])
	}
	ready.Wait()

	// Every session now sits at its first prompt. Drain the backend
	// holding the most of them: its sessions must come back as SessMigrate
	// hand-offs and resume elsewhere without the clients noticing.
	var victim string
	var inflight int64 = -1
	for _, bm := range fleet.gw.Metrics().Backends {
		if bm.Inflight > inflight {
			victim, inflight = bm.Addr, bm.Inflight
		}
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		drained <- fleet.servers[victim].Shutdown(ctx)
	}()
	// Give the drain a moment to cut in while the prompts are outstanding,
	// then let the clients answer.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	if err := <-drained; err != nil {
		return drainResult{}, fmt.Errorf("drain %s: %w", victim, err)
	}

	res := drainResult{sessions: sessions}
	for _, so := range outs {
		if so.err != nil || so.buf.String() != goldens[so.seed] {
			res.lost++
		}
	}
	m := fleet.gw.Metrics()
	res.migrations = m.Migrations
	res.misses = m.PlacementMisses
	res.imageBytes = m.MigrateBytes
	res.p50, res.p99 = m.MigrationP50, m.MigrationP99
	if res.migrations == 0 {
		return res, fmt.Errorf("drain of %s (inflight %d) produced no migrations", victim, inflight)
	}
	if res.lost > 0 {
		return res, fmt.Errorf("%d/%d sessions lost across the drain", res.lost, sessions)
	}
	return res, nil
}
