package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/server"
)

// runExploreClusterBench measures the distributed exhaustive checker:
// states/sec through one gateway at 1, 2 and 4 explore backends against the
// single-process engine, plus shard-transfer volume and dedup partition
// balance. Every distributed report is deep-compared against the
// single-process one — the throughput numbers only count searches the
// cluster got *right*.
//
// The host may have a single core, so the scaling story is latency, not
// CPU: a synthetic per-RPC delay models the backend-link round-trip that
// dominates a real fleet (the expansion CPU per shard is microseconds;
// shipping the shard is milliseconds). Each backend expands its shards
// behind its own link, so a wave's round-trips overlap across the fleet and
// wall time drops near-linearly with backends — the same regime as real
// EDB rigs, where the wire, not the gateway host, is the bottleneck.
func runExploreClusterBench(o *jobOut, quick bool) error {
	const (
		netDelay    = 10 * time.Millisecond // synthetic per-RPC backend-link latency
		shardStates = 16                    // frontier states per shard round-trip
	)
	spec := scenario.Spec{App: "linkedlist", Seed: 42}
	es := scenario.ExploreSpec{Mode: "write", Writes: 5, Depth: 32, States: 8192}
	legs := []int{1, 2, 4}
	if quick {
		es.Writes = 4
		es.States = 2048
		legs = []int{1, 2}
	}

	// Single-process baseline: same (spec, search) pair, no wire at all.
	start := time.Now()
	golden, err := scenario.RunExplore(spec, es)
	if err != nil {
		return fmt.Errorf("explore-cluster bench: single-process run: %w", err)
	}
	singleSecs := time.Since(start).Seconds()
	if golden.Truncated {
		return fmt.Errorf("explore-cluster bench: workload truncated (states=%d); the search must close", golden.States)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "distributed exploration bench (unguarded linked list, cap=%d, %d states, %v/RPC link, %d states/shard):\n",
		es.Writes, golden.States, netDelay, shardStates)
	fmt.Fprintf(&b, "  single-process: %8.0f states/s  (%.3fs)\n", float64(golden.States)/singleSecs, singleSecs)

	rates := map[int]float64{}
	for _, n := range legs {
		es.Backends = n
		gw, cleanup, err := startExploreFleet(n, netDelay, shardStates)
		if err != nil {
			return fmt.Errorf("explore-cluster bench: %d-backend fleet: %w", n, err)
		}
		start := time.Now()
		rep, stats, err := gw.RunExplore(spec, es)
		secs := time.Since(start).Seconds()
		m := gw.Metrics()
		cleanup()
		if err != nil {
			return fmt.Errorf("explore-cluster bench: %d-backend run: %w", n, err)
		}
		if !reflect.DeepEqual(rep, golden) {
			return fmt.Errorf("explore-cluster bench: %d-backend report diverges from the single-process report", n)
		}
		var queries, hits int64
		for p := range stats.PartQueries {
			queries += stats.PartQueries[p]
			hits += stats.PartHits[p]
		}
		hitPct := 100 * float64(hits) / float64(queries)
		rates[n] = float64(rep.States) / secs
		o.metric(fmt.Sprintf("explore_cluster_states_per_s_%db", n), rates[n])
		o.metric(fmt.Sprintf("explore_cluster_bytes_out_%db", n), float64(m.ExploreBytesOut))
		o.metric(fmt.Sprintf("explore_cluster_bytes_in_%db", n), float64(m.ExploreBytesIn))
		o.metric(fmt.Sprintf("explore_cluster_dedup_hit_pct_%db", n), hitPct)
		fmt.Fprintf(&b, "  %d backend(s):   %8.0f states/s  (%.3fs, %d waves, %d shard batches, %d retries, %.1fMB out, %.1fMB in, dedup %.1f%%)\n",
			n, rates[n], secs, stats.Waves, stats.ShardBatches, stats.Retries,
			float64(m.ExploreBytesOut)/1e6, float64(m.ExploreBytesIn)/1e6, hitPct)
	}

	scaling2 := rates[2] / rates[1]
	o.metric("explore_cluster_scaling_x2", scaling2)
	fmt.Fprintf(&b, "\n  scaling 1→2 backends: %.2fx\n", scaling2)
	if r4, ok := rates[4]; ok {
		scaling4 := r4 / rates[1]
		o.metric("explore_cluster_scaling_x4", scaling4)
		fmt.Fprintf(&b, "  scaling 1→4 backends: %.2fx\n", scaling4)
	}
	b.WriteString("  reports identical across backend counts and vs single-process\n")
	o.metric("explore_cluster_states", float64(golden.States))
	o.metric("explore_cluster_branches", float64(golden.Branches))
	o.metric("explore_cluster_states_per_s_single", float64(golden.States)/singleSecs)
	o.metric("explore_cluster_net_ms", 1e3*netDelay.Seconds())
	o.metric("explore_cluster_shard_states", shardStates)
	o.text = b.String()

	js, err := json.MarshalIndent(o.metrics, "", "  ")
	if err != nil {
		return err
	}
	o.file("BENCH_explore_cluster.json", string(js)+"\n")
	return nil
}

// startExploreFleet is startBenchFleet with the explore benchmarking knobs:
// the gateway never serves a client here, so it skips the listener and is
// driven through RunExplore directly.
func startExploreFleet(n int, netDelay time.Duration, shardStates int) (*cluster.Gateway, func(), error) {
	var backends []string
	var shutdown []func()
	cleanup := func() {
		for i := len(shutdown) - 1; i >= 0; i-- {
			shutdown[i]()
		}
	}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		srv := server.New(server.Config{MaxConns: 64})
		go srv.Serve(lis)
		backends = append(backends, lis.Addr().String())
		shutdown = append(shutdown, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	gw := cluster.New(cluster.Config{
		Backends:           backends,
		ExploreNetDelay:    netDelay,
		ExploreShardStates: shardStates,
	})
	return gw, cleanup, nil
}
