// Command edbd is the networked debug daemon: it hosts a fleet of
// independent simulated target+EDB rigs behind the internal/wire protocol
// so many edb clients (or the internal/client library) can debug many
// independent targets concurrently.
//
//	edbd -addr 127.0.0.1:3490 -metrics 127.0.0.1:3491
//
// The -metrics listener serves Go's expvar page at /debug/vars, including
// an "edbd" map with sessions open, commands served, bytes streamed,
// simulated cycles executed, and the warm-start pool's fork/boot split.
//
// The -pprof listener serves Go's net/http/pprof profiler (and the same
// expvar page) for CPU/heap profiling of a live daemon:
//
//	edbd -pprof 127.0.0.1:3492 &
//	go tool pprof http://127.0.0.1:3492/debug/pprof/profile?seconds=10
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-flight
// sessions finish (bounded by -drain), and the process exits 0 on a clean
// drain.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:3490", "listen address for the debug protocol")
		metricsAddr = flag.String("metrics", "", "optional listen address for the expvar metrics endpoint (/debug/vars)")
		name        = flag.String("name", "edbd", "server name reported in the handshake")
		maxConns    = flag.Int("max-conns", 256, "maximum simultaneous client connections")
		maxSessions = flag.Int("max-sessions", 128, "maximum simultaneous debug sessions")
		maxSimSecs  = flag.Float64("max-sim-seconds", 300, "maximum simulated duration per session")
		idle        = flag.Duration("idle", 2*time.Minute, "idle timeout before a quiet connection or session is reaped")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM")
		noTraceZ    = flag.Bool("no-tracez", false, "refuse the compressed-trace capability; always stream raw Trace chunks")
		noSnap      = flag.Bool("no-snap", false, "refuse the snapshot (remote time-travel) capability")
		noPool      = flag.Bool("no-pool", false, "disable the warm-start session pool; every session cold-boots")
		poolSpares  = flag.Int("pool-spares", 2, "pre-forked rigs kept ready per firmware template")
		pprofAddr   = flag.String("pprof", "", "optional listen address for the net/http/pprof profiling endpoint")
		verbose     = flag.Bool("v", false, "log per-connection events")
	)
	flag.Parse()

	cfg := server.Config{
		Name:          *name,
		MaxConns:      *maxConns,
		MaxSessions:   *maxSessions,
		MaxSimSeconds: *maxSimSecs,
		IdleTimeout:   *idle,
		DisableTraceZ: *noTraceZ,
		DisableSnap:   *noSnap,
		DisablePool:   *noPool,
		PoolSpares:    *poolSpares,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	expvar.Publish("edbd", expvar.Func(func() any { return srv.Metrics() }))
	if *metricsAddr != "" {
		go func() {
			// expvar registers /debug/vars on the default mux.
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("edbd: metrics endpoint: %v", err)
			}
		}()
	}
	if *pprofAddr != "" && *pprofAddr != *metricsAddr {
		go func() {
			// net/http/pprof registers /debug/pprof/* on the default mux;
			// a dedicated listener keeps the profiler off the metrics port
			// unless the operator points both at the same address.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("edbd: pprof endpoint: %v", err)
			}
		}()
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("edbd: %v", err)
	}
	log.Printf("edbd: listening on %s", lis.Addr())

	drained := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("edbd: %s received; draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(lis); !errors.Is(err, server.ErrServerClosed) {
		log.Fatalf("edbd: serve: %v", err)
	}
	if err := <-drained; err != nil {
		log.Fatalf("edbd: drain incomplete: %v", err)
	}
	log.Printf("edbd: drained cleanly")
}
