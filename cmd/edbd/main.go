// Command edbd is the networked debug daemon: it hosts a fleet of
// independent simulated target+EDB rigs behind the internal/wire protocol
// so many edb clients (or the internal/client library) can debug many
// independent targets concurrently.
//
//	edbd -addr 127.0.0.1:3490 -metrics 127.0.0.1:3491
//
// For anything beyond loopback use, secure the listener: -tls-cert/-tls-key
// serve TLS (generate a keypair with `go run ./scripts/gencert`),
// -tls-client-ca additionally requires and verifies client certificates
// (mTLS), and -auth-token (or the EDBD_AUTH_TOKEN environment variable)
// arms token authentication — with -require-auth, token-less clients are
// rejected outright:
//
//	EDBD_AUTH_TOKEN=s3cret edbd -tls-cert cert.pem -tls-key key.pem -require-auth
//
// The -metrics listener serves Go's expvar page at /debug/vars, including
// an "edbd" map with sessions open, commands served, bytes streamed,
// simulated cycles executed, and the warm-start pool's fork/boot split.
//
// The -pprof listener serves Go's net/http/pprof profiler (and the same
// expvar page) for CPU/heap profiling of a live daemon:
//
//	edbd -pprof 127.0.0.1:3492 &
//	go tool pprof http://127.0.0.1:3492/debug/pprof/profile?seconds=10
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-flight
// sessions finish (bounded by -drain), and the process exits 0 on a clean
// drain.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:3490", "listen address for the debug protocol")
		metricsAddr = flag.String("metrics", "", "optional listen address for the expvar metrics endpoint (/debug/vars)")
		name        = flag.String("name", "edbd", "server name reported in the handshake")
		maxConns    = flag.Int("max-conns", 256, "maximum simultaneous client connections")
		maxSessions = flag.Int("max-sessions", 128, "maximum simultaneous debug sessions")
		maxSimSecs  = flag.Float64("max-sim-seconds", 300, "maximum simulated duration per session")
		idle        = flag.Duration("idle", 2*time.Minute, "idle timeout before a quiet connection or session is reaped")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM")
		noTraceZ    = flag.Bool("no-tracez", false, "refuse the compressed-trace capability; always stream raw Trace chunks")
		noSnap      = flag.Bool("no-snap", false, "refuse the snapshot (remote time-travel) capability")
		noPool      = flag.Bool("no-pool", false, "disable the warm-start session pool; every session cold-boots")
		poolSpares  = flag.Int("pool-spares", 2, "pre-forked rigs kept ready per firmware template")
		pprofAddr   = flag.String("pprof", "", "optional listen address for the net/http/pprof profiling endpoint")
		verbose     = flag.Bool("v", false, "log per-connection events")
		tlsCert     = flag.String("tls-cert", "", "PEM certificate; serve TLS (requires -tls-key)")
		tlsKey      = flag.String("tls-key", "", "PEM private key for -tls-cert")
		tlsClientCA = flag.String("tls-client-ca", "", "PEM CA bundle; require and verify client certificates against it (mTLS, requires -tls-cert)")
		authToken   = flag.String("auth-token", os.Getenv("EDBD_AUTH_TOKEN"), "shared-secret auth token clients must present (default $EDBD_AUTH_TOKEN)")
		requireAuth = flag.Bool("require-auth", false, "reject clients that do not authenticate with -auth-token")
	)
	flag.Parse()

	cfg := server.Config{
		Name:          *name,
		MaxConns:      *maxConns,
		MaxSessions:   *maxSessions,
		MaxSimSeconds: *maxSimSecs,
		IdleTimeout:   *idle,
		DisableTraceZ: *noTraceZ,
		DisableSnap:   *noSnap,
		DisablePool:   *noPool,
		PoolSpares:    *poolSpares,
		AuthToken:     *authToken,
		RequireAuth:   *requireAuth,
	}
	if *requireAuth && *authToken == "" {
		log.Fatal("edbd: -require-auth needs a token (-auth-token or EDBD_AUTH_TOKEN)")
	}
	if (*tlsKey == "") != (*tlsCert == "") {
		log.Fatal("edbd: -tls-cert and -tls-key must be set together")
	}
	if *tlsClientCA != "" && *tlsCert == "" {
		log.Fatal("edbd: -tls-client-ca needs -tls-cert/-tls-key")
	}
	if *tlsCert != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("edbd: load TLS keypair: %v", err)
		}
		cfg.TLS = &tls.Config{Certificates: []tls.Certificate{cert}}
		if *tlsClientCA != "" {
			pemCA, err := os.ReadFile(*tlsClientCA)
			if err != nil {
				log.Fatalf("edbd: read client CA: %v", err)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pemCA) {
				log.Fatalf("edbd: no certificates in %s", *tlsClientCA)
			}
			cfg.TLS.ClientCAs = pool
			cfg.TLS.ClientAuth = tls.RequireAndVerifyClientCert
		}
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	expvar.Publish("edbd", expvar.Func(func() any { return srv.Metrics() }))
	if *metricsAddr != "" {
		go func() {
			// expvar registers /debug/vars on the default mux.
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("edbd: metrics endpoint: %v", err)
			}
		}()
	}
	if *pprofAddr != "" && *pprofAddr != *metricsAddr {
		go func() {
			// net/http/pprof registers /debug/pprof/* on the default mux;
			// a dedicated listener keeps the profiler off the metrics port
			// unless the operator points both at the same address.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("edbd: pprof endpoint: %v", err)
			}
		}()
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("edbd: %v", err)
	}
	mode := "plaintext"
	if cfg.TLS != nil {
		mode = "tls"
		if cfg.TLS.ClientAuth == tls.RequireAndVerifyClientCert {
			mode = "mtls"
		}
	}
	if cfg.AuthToken != "" {
		mode += "+token"
	}
	log.Printf("edbd: listening on %s (%s)", lis.Addr(), mode)

	drained := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("edbd: %s received; draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(lis); !errors.Is(err, server.ErrServerClosed) {
		log.Fatalf("edbd: serve: %v", err)
	}
	if err := <-drained; err != nil {
		log.Fatalf("edbd: drain incomplete: %v", err)
	}
	log.Printf("edbd: drained cleanly")
}
