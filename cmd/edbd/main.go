// Command edbd is the networked debug daemon: it hosts a fleet of
// independent simulated target+EDB rigs behind the internal/wire protocol
// so many edb clients (or the internal/client library) can debug many
// independent targets concurrently.
//
//	edbd -addr 127.0.0.1:3490 -metrics 127.0.0.1:3491
//
// For anything beyond loopback use, secure the listener: -tls-cert/-tls-key
// serve TLS (generate a keypair with `go run ./scripts/gencert`),
// -tls-client-ca additionally requires and verifies client certificates
// (mTLS), and -auth-token (or the EDBD_AUTH_TOKEN environment variable)
// arms token authentication — with -require-auth, token-less clients are
// rejected outright:
//
//	EDBD_AUTH_TOKEN=s3cret edbd -tls-cert cert.pem -tls-key key.pem -require-auth
//
// # Cluster mode
//
// -gateway turns the process into a session router instead of a backend:
// it terminates client connections and places each debugging session on
// one of the backends listed in -backends (or registered at runtime via
// Join frames), keyed by the session spec's firmware family so warm-start
// templates stay hot. Draining backends hand their live sessions back with
// SessMigrate frames and the gateway resumes them elsewhere from its
// journal — clients never notice.
//
//	edbd -gateway -backends 10.0.0.1:3490,10.0.0.2:3490
//
// Two gateways started with -peer pointing at each other replicate the
// fleet state (backend registry, template-image cache, per-session
// journals) over a FlagGossip stream, so either one can resume the
// other's live sessions if it dies — clients dial both
// (edb -connect gw1:3490,gw2:3490) and fail over transparently:
//
//	edbd -gateway -addr :3490 -peer 10.0.0.101:3490
//	edbd -gateway -addr :3490 -peer 10.0.0.100:3490
//
// A backend started with -join registers itself with a gateway and
// re-registers periodically as a heartbeat; -advertise overrides the
// address it registers (defaults to -addr). With replicated gateways,
// -join takes both addresses (comma-separated) and the heartbeat fans out
// to each:
//
//	edbd -addr 10.0.0.3:3490 -join 10.0.0.100:3490,10.0.0.101:3490 -advertise 10.0.0.3:3490
//
// The gateway→backend hop can be secured independently of the client tier:
// -backend-token authenticates the gateway to its backends, and
// -backend-tls-ca (plus -backend-tls-cert/-backend-tls-key for mTLS)
// encrypts the hop.
//
// The -metrics listener serves Go's expvar page at /debug/vars: an "edbd"
// map for a backend (sessions, commands, bytes, migration counters, pool
// fork/boot split) or an "edbd_gateway" map for a gateway (per-backend
// session counts, migrations and failovers, migration latency p50/p99,
// placement misses).
//
// The -pprof listener serves Go's net/http/pprof profiler (and the same
// expvar page) for CPU/heap profiling of a live daemon:
//
//	edbd -pprof 127.0.0.1:3492 &
//	go tool pprof http://127.0.0.1:3492/debug/pprof/profile?seconds=10
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-flight
// sessions finish — on a cluster backend they migrate out — bounded by
// -drain, and the process exits 0 on a clean drain.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:3490", "listen address for the debug protocol")
		metricsAddr = flag.String("metrics", "", "optional listen address for the expvar metrics endpoint (/debug/vars)")
		name        = flag.String("name", "", "server name reported in the handshake (default edbd, or edbd-gateway with -gateway)")
		maxConns    = flag.Int("max-conns", 256, "maximum simultaneous client connections")
		maxSessions = flag.Int("max-sessions", 128, "maximum simultaneous debug sessions")
		maxSimSecs  = flag.Float64("max-sim-seconds", 300, "maximum simulated duration per session")
		idle        = flag.Duration("idle", 2*time.Minute, "idle timeout before a quiet connection or session is reaped")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM")
		noTraceZ    = flag.Bool("no-tracez", false, "refuse the compressed-trace capability; always stream raw Trace chunks")
		noSnap      = flag.Bool("no-snap", false, "refuse the snapshot (remote time-travel) capability")
		noCluster   = flag.Bool("no-cluster", false, "refuse the cluster capability; no migration, no Stat probes")
		noExplore   = flag.Bool("no-explore", false, "refuse the distributed-exploration capability; explore runs stay single-process")
		noPool      = flag.Bool("no-pool", false, "disable the warm-start session pool; every session cold-boots")
		poolSpares  = flag.Int("pool-spares", 2, "pre-forked rigs kept ready per firmware template")
		pprofAddr   = flag.String("pprof", "", "optional listen address for the net/http/pprof profiling endpoint")
		verbose     = flag.Bool("v", false, "log per-connection events")
		tlsCert     = flag.String("tls-cert", "", "PEM certificate; serve TLS (requires -tls-key)")
		tlsKey      = flag.String("tls-key", "", "PEM private key for -tls-cert")
		tlsClientCA = flag.String("tls-client-ca", "", "PEM CA bundle; require and verify client certificates against it (mTLS, requires -tls-cert)")
		authToken   = flag.String("auth-token", os.Getenv("EDBD_AUTH_TOKEN"), "shared-secret auth token clients must present (default $EDBD_AUTH_TOKEN)")
		requireAuth = flag.Bool("require-auth", false, "reject clients that do not authenticate with -auth-token")

		// Cluster topology.
		gateway        = flag.Bool("gateway", false, "run as a gateway: route sessions to -backends instead of simulating locally")
		backends       = flag.String("backends", "", "comma-separated backend addresses for -gateway")
		peer           = flag.String("peer", "", "replica gateway address: replicate fleet state and live-session journals to it (requires -gateway)")
		joinAddr       = flag.String("join", "", "gateway address(es) this backend registers itself with, comma-separated (heartbeat re-registration)")
		advertise      = flag.String("advertise", "", "address to advertise when joining a gateway (default -addr)")
		joinEvery      = flag.Duration("join-every", 10*time.Second, "re-registration period for -join")
		backendToken   = flag.String("backend-token", os.Getenv("EDBD_BACKEND_TOKEN"), "auth token for the gateway→backend hop (default $EDBD_BACKEND_TOKEN); also presented by -join")
		backendTLSCA   = flag.String("backend-tls-ca", "", "PEM CA bundle; dial backends (or the -join gateway) over TLS verified against it")
		backendTLSCert = flag.String("backend-tls-cert", "", "PEM client certificate for the backend hop (mTLS, requires -backend-tls-key)")
		backendTLSKey  = flag.String("backend-tls-key", "", "PEM private key for -backend-tls-cert")
	)
	flag.Parse()

	if *requireAuth && *authToken == "" {
		log.Fatal("edbd: -require-auth needs a token (-auth-token or EDBD_AUTH_TOKEN)")
	}
	listenTLS := loadListenerTLS(*tlsCert, *tlsKey, *tlsClientCA)
	backendTLS := loadBackendTLS(*backendTLSCA, *backendTLSCert, *backendTLSKey)

	if *gateway {
		if *joinAddr != "" {
			log.Fatal("edbd: -join is for backends; a gateway takes -backends")
		}
		runGateway(gatewayArgs{
			addr: *addr, metricsAddr: *metricsAddr, pprofAddr: *pprofAddr,
			name: *name, backends: *backends, peer: *peer, maxConns: *maxConns,
			idle: *idle, drain: *drain, verbose: *verbose,
			tls: listenTLS, authToken: *authToken, requireAuth: *requireAuth,
			backendTLS: backendTLS, backendToken: *backendToken,
		})
		return
	}
	if *peer != "" {
		log.Fatal("edbd: -peer is for gateways; pair it with -gateway")
	}

	cfg := server.Config{
		Name:           *name,
		MaxConns:       *maxConns,
		MaxSessions:    *maxSessions,
		MaxSimSeconds:  *maxSimSecs,
		IdleTimeout:    *idle,
		DisableTraceZ:  *noTraceZ,
		DisableSnap:    *noSnap,
		DisableCluster: *noCluster,
		DisableExplore: *noExplore,
		DisablePool:    *noPool,
		PoolSpares:     *poolSpares,
		TLS:            listenTLS,
		AuthToken:      *authToken,
		RequireAuth:    *requireAuth,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	expvar.Publish("edbd", expvar.Func(func() any { return srv.Metrics() }))
	serveHTTP(*metricsAddr, *pprofAddr)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("edbd: %v", err)
	}
	log.Printf("edbd: listening on %s (%s)", lis.Addr(), securityMode(cfg.TLS, cfg.AuthToken))

	if *joinAddr != "" {
		adv := *advertise
		if adv == "" {
			adv = lis.Addr().String()
		}
		// One heartbeat loop per gateway: with a replicated pair, both
		// gateways hear the registration first-hand, so either can place
		// sessions here even before gossip catches up.
		for _, gw := range strings.Split(*joinAddr, ",") {
			if gw = strings.TrimSpace(gw); gw != "" {
				go joinLoop(gw, adv, *backendToken, backendTLS, *joinEvery)
			}
		}
	}

	drained := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("edbd: %s received; draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(lis); !errors.Is(err, server.ErrServerClosed) {
		log.Fatalf("edbd: serve: %v", err)
	}
	if err := <-drained; err != nil {
		log.Fatalf("edbd: drain incomplete: %v", err)
	}
	log.Printf("edbd: drained cleanly")
}

type gatewayArgs struct {
	addr, metricsAddr, pprofAddr string
	name, backends, peer         string
	maxConns                     int
	idle, drain                  time.Duration
	verbose                      bool
	tls                          *tls.Config
	authToken                    string
	requireAuth                  bool
	backendTLS                   *tls.Config
	backendToken                 string
}

func runGateway(a gatewayArgs) {
	var addrs []string
	for _, b := range strings.Split(a.backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			addrs = append(addrs, b)
		}
	}
	cfg := cluster.Config{
		Name:         a.name,
		Backends:     addrs,
		Peer:         a.peer,
		MaxConns:     a.maxConns,
		IdleTimeout:  a.idle,
		TLS:          a.tls,
		AuthToken:    a.authToken,
		RequireAuth:  a.requireAuth,
		BackendTLS:   a.backendTLS,
		BackendToken: a.backendToken,
	}
	if a.verbose {
		cfg.Logf = log.Printf
	}
	gw := cluster.New(cfg)

	expvar.Publish("edbd_gateway", expvar.Func(func() any { return gw.Metrics() }))
	serveHTTP(a.metricsAddr, a.pprofAddr)

	lis, err := net.Listen("tcp", a.addr)
	if err != nil {
		log.Fatalf("edbd: %v", err)
	}
	peerNote := ""
	if a.peer != "" {
		peerNote = ", peer " + a.peer
	}
	log.Printf("edbd: gateway listening on %s (%s, %d backends%s)",
		lis.Addr(), securityMode(a.tls, a.authToken), len(addrs), peerNote)

	drained := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("edbd: %s received; stopping gateway (budget %s)", sig, a.drain)
		ctx, cancel := context.WithTimeout(context.Background(), a.drain)
		defer cancel()
		drained <- gw.Shutdown(ctx)
	}()

	if err := gw.Serve(lis); !errors.Is(err, cluster.ErrGatewayClosed) {
		log.Fatalf("edbd: gateway serve: %v", err)
	}
	if err := <-drained; err != nil {
		log.Fatalf("edbd: gateway stop incomplete: %v", err)
	}
	log.Printf("edbd: gateway stopped cleanly")
}

// joinLoop registers this backend with a gateway and re-registers every
// period as a liveness heartbeat, logging only on state changes so a down
// gateway does not flood the log.
func joinLoop(gateway, advertise, token string, tlsCfg *tls.Config, every time.Duration) {
	ok := false
	for {
		err := joinOnce(gateway, advertise, token, tlsCfg)
		switch {
		case err == nil && !ok:
			log.Printf("edbd: registered with gateway %s as %s", gateway, advertise)
			ok = true
		case err != nil && ok:
			log.Printf("edbd: gateway %s registration failed: %v", gateway, err)
			ok = false
		}
		time.Sleep(every)
	}
}

func joinOnce(gateway, advertise, token string, tlsCfg *tls.Config) error {
	conn, err := net.DialTimeout("tcp", gateway, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if tlsCfg != nil {
		cfg := tlsCfg
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			if host, _, err := net.SplitHostPort(gateway); err == nil {
				cfg = cfg.Clone()
				cfg.ServerName = host
			}
		}
		tc := tls.Client(conn, cfg)
		if err := tc.Handshake(); err != nil {
			return err
		}
		conn = tc
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	caps := wire.FlagCluster
	hello := &wire.Hello{Version: wire.Version, Client: "edbd-join"}
	if token != "" {
		caps |= wire.FlagAuth
		hello.Token = token
	}
	if err := wire.WriteMsgFlags(conn, hello, caps); err != nil {
		return err
	}
	m, flags, err := wire.ReadMsgFlags(conn)
	if err != nil {
		return err
	}
	if e, ok := m.(*wire.Error); ok {
		return e
	}
	if _, ok := m.(*wire.Welcome); !ok {
		return errors.New("unexpected handshake reply")
	}
	if flags&wire.FlagCluster == 0 {
		return errors.New("gateway did not grant the cluster capability")
	}
	if err := wire.WriteMsg(conn, &wire.Join{Addr: advertise}); err != nil {
		return err
	}
	m, err = wire.ReadMsg(conn)
	if err != nil {
		return err
	}
	if e, ok := m.(*wire.Error); ok {
		return e
	}
	return nil
}

// loadListenerTLS builds the serving TLS config from -tls-cert/-tls-key
// and the optional mTLS client CA. Returns nil when TLS is off.
func loadListenerTLS(cert, key, clientCA string) *tls.Config {
	if (key == "") != (cert == "") {
		log.Fatal("edbd: -tls-cert and -tls-key must be set together")
	}
	if clientCA != "" && cert == "" {
		log.Fatal("edbd: -tls-client-ca needs -tls-cert/-tls-key")
	}
	if cert == "" {
		return nil
	}
	pair, err := tls.LoadX509KeyPair(cert, key)
	if err != nil {
		log.Fatalf("edbd: load TLS keypair: %v", err)
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{pair}}
	if clientCA != "" {
		pemCA, err := os.ReadFile(clientCA)
		if err != nil {
			log.Fatalf("edbd: read client CA: %v", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemCA) {
			log.Fatalf("edbd: no certificates in %s", clientCA)
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg
}

// loadBackendTLS builds the dialing TLS config for the gateway→backend hop
// (and for -join): a CA to verify the peer, plus an optional client
// keypair for mTLS. Returns nil when the hop is plaintext.
func loadBackendTLS(ca, cert, key string) *tls.Config {
	if (key == "") != (cert == "") {
		log.Fatal("edbd: -backend-tls-cert and -backend-tls-key must be set together")
	}
	if ca == "" && cert == "" {
		return nil
	}
	cfg := &tls.Config{}
	if ca != "" {
		pemCA, err := os.ReadFile(ca)
		if err != nil {
			log.Fatalf("edbd: read backend CA: %v", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemCA) {
			log.Fatalf("edbd: no certificates in %s", ca)
		}
		cfg.RootCAs = pool
	}
	if cert != "" {
		pair, err := tls.LoadX509KeyPair(cert, key)
		if err != nil {
			log.Fatalf("edbd: load backend TLS keypair: %v", err)
		}
		cfg.Certificates = []tls.Certificate{pair}
	}
	return cfg
}

func serveHTTP(metricsAddr, pprofAddr string) {
	if metricsAddr != "" {
		go func() {
			// expvar registers /debug/vars on the default mux.
			if err := http.ListenAndServe(metricsAddr, nil); err != nil {
				log.Printf("edbd: metrics endpoint: %v", err)
			}
		}()
	}
	if pprofAddr != "" && pprofAddr != metricsAddr {
		go func() {
			// net/http/pprof registers /debug/pprof/* on the default mux;
			// a dedicated listener keeps the profiler off the metrics port
			// unless the operator points both at the same address.
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("edbd: pprof endpoint: %v", err)
			}
		}()
	}
}

func securityMode(tlsCfg *tls.Config, token string) string {
	mode := "plaintext"
	if tlsCfg != nil {
		mode = "tls"
		if tlsCfg.ClientAuth == tls.RequireAndVerifyClientCert {
			mode = "mtls"
		}
	}
	if token != "" {
		mode += "+token"
	}
	return mode
}
