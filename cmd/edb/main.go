// Command edb runs a firmware scenario on the simulated energy-harvesting
// target with the Energy-interference-free Debugger attached, and exposes
// the debug console.
//
// Examples:
//
//	edb -app linkedlist -assert -t 30
//	    run the linked-list app until its keep-alive assert fires, then
//	    open an interactive console on stdin
//
//	edb -app fib -guards -t 20
//	    run the Fibonacci debug build with energy guards
//
//	edb -app activity -print edb -t 10 -trace
//	    trace the activity app with energy-interference-free printf
//
//	edb -app rfid -t 10
//	    inventory the WISP RFID firmware and print the message trace
//
//	edb -app linkedlist -assert -script "vcap;status;halt"
//	    drive interactive sessions from a script instead of stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/rfid"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	var (
		appName  = flag.String("app", "linkedlist", "firmware: linkedlist|safelist|fib|activity|rfid|busy")
		asmFile  = flag.String("asm", "", "run an MSP430-subset assembly file instead of -app")
		withAsrt = flag.Bool("assert", false, "enable the keep-alive assertions (linkedlist)")
		guards   = flag.Bool("guards", false, "wrap debug instrumentation in energy guards (fib)")
		printMd  = flag.String("print", "none", "activity print mode: none|uart|edb")
		seconds  = flag.Float64("t", 10, "simulated seconds to run")
		distance = flag.Float64("distance", 1.0, "reader-to-tag distance in meters")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		doTrace  = flag.Bool("trace", false, "print the final 150 ms energy trace")
		script   = flag.String("script", "", "semicolon-separated console commands run in each session")
		interact = flag.Bool("i", false, "interactive stdin console when a session opens")
	)
	flag.Parse()

	var prog device.Program
	var reader *rfid.ReaderConfig
	if *asmFile != "" {
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prog = isa.NewProgram(*asmFile, string(src))
	} else {
		var err error
		prog, reader, err = buildProgram(*appName, *withAsrt, *guards, *printMd)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	opts := []core.Option{core.WithSeed(*seed)}
	if reader != nil {
		rc := *reader
		rc.Distance = units.Meters(*distance)
		opts = append(opts, core.WithReader(rc))
	} else {
		h := energy.NewRFHarvester()
		h.Distance = units.Meters(*distance)
		opts = append(opts, core.WithHarvester(h))
	}

	rig, err := core.NewRig(prog, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rig.EDB.SetConsoleSink(func(s string) { fmt.Println(s) })
	var vcap *trace.Series
	if *doTrace {
		vcap = rig.EDB.TraceVcap()
	}

	rig.EDB.OnInteractive(func(s *edb.Session) {
		rig.Console.BindSession(s)
		defer rig.Console.BindSession(nil)
		fmt.Printf("\n[edb] interactive session: %s (Vcap=%.3f V)\n", s.Reason, s.Voltage())
		switch {
		case *script != "":
			for _, cmd := range strings.Split(*script, ";") {
				cmd = strings.TrimSpace(cmd)
				if cmd == "" {
					continue
				}
				fmt.Printf("(edb) %s\n", cmd)
				out, err := rig.Console.Exec(cmd)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Print(out)
				if cmd == "resume" || cmd == "halt" {
					return
				}
			}
		case *interact:
			runStdinConsole(rig)
		default:
			fmt.Println("[edb] no -script or -i; resuming target")
		}
	})

	res, err := rig.Run(units.Seconds(*seconds))
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Println("\n==== run summary ====")
	fmt.Println(res)
	summarize(rig, prog)

	if vcap != nil {
		fmt.Println("\n==== energy trace (last 150 ms) ====")
		total := rig.Device.Clock.Now()
		window := rig.Device.Clock.ToCycles(150 * core.Millisecond)
		late := trace.NewSeries(vcap.Name, vcap.Unit)
		late.Samples = vcap.Window(total-window, total)
		fmt.Print(trace.RenderASCII(late, rig.Device.Clock, 72, 12))
	}
	if out, err := rig.Exec("status"); err == nil {
		fmt.Println("\n==== debugger status ====")
		fmt.Print(out)
	}
}

// buildProgram maps the -app flag to a firmware image (plus a reader for
// the RFID scenario).
func buildProgram(name string, withAssert, guards bool, printMode string) (device.Program, *rfid.ReaderConfig, error) {
	switch name {
	case "linkedlist":
		return &apps.LinkedList{WithAssert: withAssert}, nil, nil
	case "safelist":
		return &apps.SafeLinkedList{WithAssert: withAssert}, nil, nil
	case "fib":
		return &apps.Fib{DebugBuild: true, UseGuards: guards, MaxNodes: 4000}, nil, nil
	case "activity":
		mode := apps.NoPrint
		switch printMode {
		case "uart":
			mode = apps.UARTPrint
		case "edb":
			mode = apps.EDBPrint
		case "none", "":
		default:
			return nil, nil, fmt.Errorf("edb: unknown print mode %q", printMode)
		}
		return &apps.Activity{Print: mode}, nil, nil
	case "rfid":
		rc := rfid.DefaultReaderConfig()
		return &apps.WispRFID{}, &rc, nil
	case "busy":
		return &apps.Busy{}, nil, nil
	}
	return nil, nil, fmt.Errorf("edb: unknown app %q (linkedlist|safelist|fib|activity|rfid|busy)", name)
}

// summarize prints app-specific results.
func summarize(rig *core.Rig, prog device.Program) {
	switch app := prog.(type) {
	case *apps.LinkedList:
		fmt.Printf("iterations=%d tail-consistent=%v\n",
			app.Iterations(rig.Device), app.ConsistentTail(rig.Device))
	case *apps.SafeLinkedList:
		fmt.Printf("iterations=%d consistent=%v (task-boundary build)\n",
			app.Iterations(rig.Device), app.Consistent(rig.Device))
	case *apps.Fib:
		fmt.Printf("items=%d check-violations=%d guards=%d\n",
			app.Count(rig.Device), app.CheckErrors(rig.Device), rig.EDB.Stats().Guards)
	case *apps.Activity:
		st := app.Stats(rig.Device)
		fmt.Printf("iterations=%d/%d (%.0f%% success) moving=%d stationary=%d\n",
			st.Completed, st.Attempted, 100*st.SuccessRate(), st.Moving, st.Stationary)
	case *apps.WispRFID:
		st := app.Stats(rig.Device)
		fmt.Printf("queries=%d replies=%d corrupt=%d", st.Queries, st.Replies, st.Corrupt)
		if rig.Reader != nil {
			fmt.Printf("  response-rate=%.0f%%", 100*rig.Reader.ResponseRate())
		}
		fmt.Println()
	case *apps.Busy:
		fmt.Printf("iterations=%d\n", app.Iterations(rig.Device))
	case *isa.Program:
		img := app.Image()
		fmt.Printf("image: %d words at %#04x; instructions retired this power cycle: %d\n",
			len(img.Words), img.Org, app.CPU().Retired())
	}
}

// runStdinConsole reads console commands from stdin until resume/halt/EOF.
func runStdinConsole(rig *core.Rig) {
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(edb) ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		out, err := rig.Console.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(out)
		if line == "resume" || line == "halt" {
			return
		}
	}
}
