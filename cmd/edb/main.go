// Command edb runs a firmware scenario on the simulated energy-harvesting
// target with the Energy-interference-free Debugger attached, and exposes
// the debug console — locally, or against a remote edbd daemon.
//
// Examples:
//
//	edb -app linkedlist -assert -t 30
//	    run the linked-list app until its keep-alive assert fires, then
//	    open an interactive console on stdin
//
//	edb -app fib -guards -t 20
//	    run the Fibonacci debug build with energy guards
//
//	edb -app activity -print edb -t 10 -trace
//	    trace the activity app with energy-interference-free printf
//
//	edb -app rfid -t 10
//	    inventory the WISP RFID firmware and print the message trace
//
//	edb -app linkedlist -assert -script "vcap;status;halt"
//	    drive interactive sessions from a script instead of stdin
//
//	edb -connect 127.0.0.1:3490 -app linkedlist -assert -script "vcap;halt"
//	    run the same scripted session on an edbd daemon; the output is
//	    byte-identical to the local run
//
//	edb -connect gw1:3490,gw2:3490 -app linkedlist -assert -script "vcap;halt"
//	    the same against a replicated gateway pair: the first live address
//	    wins, and if that gateway dies mid-session the client resumes on
//	    the other, byte-identically (a multi-address list implies
//	    -reconnect)
//
//	edb -connect host:3490 -tls -tls-ca cert.pem -auth-token s3cret ...
//	    the same against a TLS daemon that checks a shared-secret token
//	    (the token also reads from $EDB_AUTH_TOKEN; add -tls-cert/-tls-key
//	    for mTLS client identity)
//
// Exit status: 0 on success, 1 when the run fails or a scripted console
// command returns an error, 2 on usage errors.
package main

import (
	"bufio"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/scenario"
	"repro/internal/tracecodec"
	"repro/internal/wire"
)

func main() {
	var (
		appName  = flag.String("app", "linkedlist", "firmware: linkedlist|safelist|fib|activity|rfid|busy")
		asmFile  = flag.String("asm", "", "run an MSP430-subset assembly file instead of -app")
		withAsrt = flag.Bool("assert", false, "enable the keep-alive assertions (linkedlist)")
		guards   = flag.Bool("guards", false, "wrap debug instrumentation in energy guards (fib)")
		printMd  = flag.String("print", "none", "activity print mode: none|uart|edb")
		seconds  = flag.Float64("t", 10, "simulated seconds to run")
		distance = flag.Float64("distance", 1.0, "reader-to-tag distance in meters")
		seed     = flag.Int64("seed", 42, "deterministic seed")
		doTrace  = flag.Bool("trace", false, "print the final 150 ms energy trace")
		traceOut = flag.String("trace-out", "", "write the final energy-trace window as CSV (at_cycles,v), ADC-quantized; implies -trace")
		rawTrace = flag.Bool("raw-trace", false, "with -connect: do not negotiate compressed trace streaming")
		noSnap   = flag.Bool("no-snap", false, "with -connect: do not negotiate the snapshot (remote time-travel) capability")
		script   = flag.String("script", "", "semicolon-separated console commands run in each session")
		interact = flag.Bool("i", false, "interactive stdin console when a session opens")
		connect  = flag.String("connect", "", "host:port of an edbd daemon (comma-separated list for a replicated gateway pair); run the session remotely")
		reconn   = flag.Bool("reconnect", false, "with -connect: resume the session transparently if the connection drops (implied by a multi-address -connect)")
		useTLS   = flag.Bool("tls", false, "with -connect: dial the daemon over TLS")
		tlsCA    = flag.String("tls-ca", "", "PEM CA bundle to verify the daemon's certificate (implies -tls)")
		tlsCert  = flag.String("tls-cert", "", "PEM client certificate for mTLS (implies -tls, requires -tls-key)")
		tlsKey   = flag.String("tls-key", "", "PEM private key for -tls-cert")
		insecure = flag.Bool("insecure-skip-verify", false, "with -tls: skip certificate verification (testing only)")
		token    = flag.String("auth-token", os.Getenv("EDB_AUTH_TOKEN"), "with -connect: shared-secret auth token (default $EDB_AUTH_TOKEN)")
	)
	flag.Parse()

	spec := scenario.Spec{
		App:         *appName,
		Assert:      *withAsrt,
		Guards:      *guards,
		Print:       *printMd,
		Seconds:     *seconds,
		Distance:    *distance,
		Seed:        *seed,
		Trace:       *doTrace || *traceOut != "",
		Script:      *script,
		Interactive: *interact,
	}
	if *asmFile != "" {
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec.AsmName, spec.AsmSource = *asmFile, string(src)
	}
	if err := scenario.Validate(spec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The stdin prompt drives interactive sessions, local or remote.
	var prompt scenario.PromptFunc
	if *interact {
		sc := bufio.NewScanner(os.Stdin)
		prompt = func() (string, bool) {
			if !sc.Scan() {
				return "", false
			}
			return sc.Text(), true
		}
	}

	if *connect != "" {
		tlsCfg, err := clientTLSConfig(*useTLS, *tlsCA, *tlsCert, *tlsKey, *insecure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// A multi-address dial list only helps if the client may resume on
		// the surviving peer, so it switches reconnect on.
		reconnect := *reconn || strings.Contains(*connect, ",")
		cl, err := client.Dial(*connect, client.Options{
			Name: "edb-cli", Attempts: 5, RawTrace: *rawTrace, NoSnap: *noSnap,
			TLS: tlsCfg, AuthToken: *token, Reconnect: reconnect,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cl.Close()
		var pts []wire.TracePoint
		if *traceOut != "" {
			// OnTrace chunks may alias a reused scratch buffer; appending
			// the values copies them out.
			cl.OnTrace = func(tr *wire.Trace) { pts = append(pts, tr.Samples...) }
		}
		st, err := cl.Run(spec, os.Stdout, prompt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *traceOut != "" {
			if err := writeTraceCSV(*traceOut, pts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		os.Exit(st.Exit)
	}

	res, err := scenario.Run(spec, os.Stdout, prompt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceOut != "" {
		var pts []wire.TracePoint
		if res.Vcap != nil {
			pts = make([]wire.TracePoint, 0, len(res.Vcap.Samples))
			for _, sm := range res.Vcap.Samples {
				pts = append(pts, wire.TracePoint{At: uint64(sm.At), V: sm.V})
			}
		}
		if err := writeTraceCSV(*traceOut, pts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	os.Exit(res.ExitCode)
}

// clientTLSConfig assembles the -connect TLS settings; any TLS-shaped flag
// implies -tls, and a nil config keeps the dial plaintext.
func clientTLSConfig(useTLS bool, caPath, certPath, keyPath string, insecure bool) (*tls.Config, error) {
	if !useTLS && caPath == "" && certPath == "" && !insecure {
		return nil, nil
	}
	if (certPath == "") != (keyPath == "") {
		return nil, fmt.Errorf("edb: -tls-cert and -tls-key must be set together")
	}
	cfg := &tls.Config{InsecureSkipVerify: insecure}
	if caPath != "" {
		pemCA, err := os.ReadFile(caPath)
		if err != nil {
			return nil, fmt.Errorf("edb: read CA: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemCA) {
			return nil, fmt.Errorf("edb: no certificates in %s", caPath)
		}
		cfg.RootCAs = pool
	}
	if certPath != "" {
		cert, err := tls.LoadX509KeyPair(certPath, keyPath)
		if err != nil {
			return nil, fmt.Errorf("edb: load client keypair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

// writeTraceCSV writes the trace window as at_cycles,v rows. Voltages pass
// through the codec's ADC quantizer, so the file is identical whether the
// samples came from a local run, a compressed remote stream (already
// quantized), or a raw remote stream — which scripts/smoke.sh exploits to
// diff all three.
func writeTraceCSV(path string, pts []wire.TracePoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	fmt.Fprintln(bw, "at_cycles,v")
	for _, p := range pts {
		fmt.Fprintf(bw, "%d,%s\n", p.At, strconv.FormatFloat(tracecodec.Quantize(p.V), 'g', -1, 64))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
