// Package repro is a from-scratch Go reproduction of "An Energy-
// interference-free Hardware-Software Debugger for Intermittent Energy-
// harvesting Systems" (Colin, Harvey, Lucia, Sample — ASPLOS 2016).
//
// The original EDB is a hardware board wired to a WISP 5 RF-harvesting
// tag; this repository replaces every hardware element with a faithful
// simulation substrate (capacitor/harvester physics, an MCU with volatile
// SRAM and non-volatile FRAM, peripherals, an RFID reader, and EDB's
// analog front end) and implements the debugger — passive monitoring,
// active-mode energy compensation, and the intermittence-aware debugging
// primitives — on top of it.
//
// Start with internal/core (the assembly API), examples/quickstart (a
// runnable tour), DESIGN.md (system inventory and experiment index), and
// EXPERIMENTS.md (paper-vs-measured for every table and figure). The
// benchmarks in bench_test.go regenerate each evaluation result:
//
//	go test -bench=. -benchmem
//
// or, for the full paper-formatted output:
//
//	go run ./cmd/edb-bench -exp all
package repro
