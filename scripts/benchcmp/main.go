// Command benchcmp renders two edb-bench BENCH.json metric dumps side by
// side with relative deltas. scripts/benchcmp.sh uses it to compare the
// working tree against a base ref; it accepts both the nested
// suite→metric layout and the older flat layout.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

func flatten(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(b, &top); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for k, raw := range top {
		var v float64
		if json.Unmarshal(raw, &v) == nil {
			out[k] = v
			continue
		}
		var m map[string]float64
		if json.Unmarshal(raw, &m) == nil {
			for mk, mv := range m {
				out[k+"."+mk] = mv
			}
		}
	}
	return out, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp <base.json> <head.json>")
		os.Exit(2)
	}
	base, err := flatten(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	head, err := flatten(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	keys := map[string]bool{}
	for k := range base {
		keys[k] = true
	}
	for k := range head {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fmt.Printf("%-42s %14s %14s %9s\n", "metric", "base", "head", "delta")
	for _, k := range sorted {
		bv, inBase := base[k]
		hv, inHead := head[k]
		switch {
		case inBase && inHead:
			delta := "-"
			if bv != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(hv-bv)/math.Abs(bv))
			}
			fmt.Printf("%-42s %14.4g %14.4g %9s\n", k, bv, hv, delta)
		case inHead:
			fmt.Printf("%-42s %14s %14.4g %9s\n", k, "-", hv, "new")
		default:
			fmt.Printf("%-42s %14.4g %14s %9s\n", k, bv, "-", "gone")
		}
	}
}
