#!/usr/bin/env sh
# End-to-end smoke test for edbd: start the daemon, run the same scripted
# scenario locally and over the wire, and require byte-identical output,
# a clean daemon drain, and correct exit codes.
set -eu

workdir=$(mktemp -d)
daemon_pid=""
tls_daemon_pid=""
backend_a_pid=""
backend_b_pid=""
backend_c_pid=""
backend_d_pid=""
backend_e_pid=""
gateway_pid=""
gw1_pid=""
gw2_pid=""
cleanup() {
    for pid in "$daemon_pid" "$tls_daemon_pid" "$backend_a_pid" \
               "$backend_b_pid" "$backend_c_pid" "$backend_d_pid" \
               "$backend_e_pid" "$gateway_pid" "$gw1_pid" "$gw2_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# wait_addr logfile varname — poll a daemon log for its listen address.
wait_addr() {
    _log=$1
    _addr=""
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$_log" | head -n1)
        [ -n "$_addr" ] && break
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "$_addr"
}

echo "smoke: building edb and edbd"
go build -o "$workdir/edb" ./cmd/edb
go build -o "$workdir/edbd" ./cmd/edbd

echo "smoke: starting edbd on an ephemeral port"
"$workdir/edbd" -addr 127.0.0.1:0 -v 2>"$workdir/edbd.log" &
daemon_pid=$!

# The daemon logs "edbd: listening on host:port" once the socket is up.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$workdir/edbd.log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "smoke: FAIL — daemon died during startup:" >&2
        cat "$workdir/edbd.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "smoke: FAIL — daemon never reported its address" >&2
    cat "$workdir/edbd.log" >&2
    exit 1
fi
echo "smoke: daemon at $addr"

script="vcap;read 0x4408;status;halt"
common="-app linkedlist -assert -t 10 -seed 42 -script"

echo "smoke: running scripted session locally"
"$workdir/edb" $common "$script" >"$workdir/local.out"

echo "smoke: running the same session via -connect"
"$workdir/edb" -connect "$addr" $common "$script" >"$workdir/remote.out"

if ! diff -u "$workdir/local.out" "$workdir/remote.out"; then
    echo "smoke: FAIL — remote output differs from local" >&2
    exit 1
fi
echo "smoke: remote output is byte-identical to local ($(wc -c <"$workdir/local.out") bytes)"

echo "smoke: diffing local vs compressed vs raw trace streams"
"$workdir/edb" $common "$script" -trace-out "$workdir/local.csv" >/dev/null
"$workdir/edb" -connect "$addr" $common "$script" -trace-out "$workdir/tracez.csv" >/dev/null
"$workdir/edb" -connect "$addr" -raw-trace $common "$script" -trace-out "$workdir/raw.csv" >/dev/null
if ! diff -u "$workdir/local.csv" "$workdir/tracez.csv"; then
    echo "smoke: FAIL — codec-decoded remote trace differs from local" >&2
    exit 1
fi
if ! diff -u "$workdir/local.csv" "$workdir/raw.csv"; then
    echo "smoke: FAIL — raw remote trace differs from local" >&2
    exit 1
fi
lines=$(wc -l <"$workdir/local.csv")
if [ "$lines" -le 1 ]; then
    echo "smoke: FAIL — trace CSV is empty" >&2
    exit 1
fi
echo "smoke: trace streams identical across local/codec/raw ($((lines - 1)) samples)"

echo "smoke: checking that a failing script exits non-zero remotely"
if "$workdir/edb" -connect "$addr" -app linkedlist -assert -t 10 -seed 42 \
        -script "not-a-command;halt" >/dev/null 2>&1; then
    echo "smoke: FAIL — failing script exited 0" >&2
    exit 1
fi

echo "smoke: bounded exhaustive exploration (unguarded vs guarded)"
# The console's explore command model-checks the firmware: the unguarded
# linked list must be flagged with a WAR violation, the guarded build must
# verify clean over the same bounds, and the report must be byte-identical
# over the wire (worker-count-independent determinism).
explore_script="explore depth=2 writes=8 states=64; explore guards depth=2 writes=8 states=64; halt"
"$workdir/edb" $common "$explore_script" >"$workdir/explore-local.out"
if ! grep -q "WAR violations:" "$workdir/explore-local.out"; then
    echo "smoke: FAIL — explore did not flag the unguarded WAR bug" >&2
    cat "$workdir/explore-local.out" >&2
    exit 1
fi
if ! grep -q "no WAR violations detected" "$workdir/explore-local.out"; then
    echo "smoke: FAIL — explore flagged the guarded build" >&2
    cat "$workdir/explore-local.out" >&2
    exit 1
fi
"$workdir/edb" -connect "$addr" $common "$explore_script" >"$workdir/explore-remote.out"
if ! diff -u "$workdir/explore-local.out" "$workdir/explore-remote.out"; then
    echo "smoke: FAIL — remote explore output differs from local" >&2
    exit 1
fi
echo "smoke: explore flags the unguarded bug, passes the guarded build, identical over the wire"

echo "smoke: generating an ephemeral TLS keypair"
go run ./scripts/gencert -out "$workdir/certs" -hosts 127.0.0.1 >/dev/null

echo "smoke: starting a TLS + require-auth edbd"
EDBD_AUTH_TOKEN=smoke-secret "$workdir/edbd" -addr 127.0.0.1:0 \
    -tls-cert "$workdir/certs/cert.pem" -tls-key "$workdir/certs/key.pem" \
    -require-auth -v 2>"$workdir/edbd-tls.log" &
tls_daemon_pid=$!
tls_addr=$(wait_addr "$workdir/edbd-tls.log")
if [ -z "$tls_addr" ]; then
    echo "smoke: FAIL — TLS daemon never reported its address" >&2
    cat "$workdir/edbd-tls.log" >&2
    exit 1
fi
if ! grep -q "(tls+token)" "$workdir/edbd-tls.log"; then
    echo "smoke: FAIL — TLS daemon did not report tls+token mode" >&2
    cat "$workdir/edbd-tls.log" >&2
    exit 1
fi
echo "smoke: TLS daemon at $tls_addr"

echo "smoke: running the scripted session over TLS with a token"
"$workdir/edb" -connect "$tls_addr" -tls -tls-ca "$workdir/certs/cert.pem" \
    -auth-token smoke-secret $common "$script" >"$workdir/tls.out"
if ! diff -u "$workdir/local.out" "$workdir/tls.out"; then
    echo "smoke: FAIL — TLS+auth remote output differs from local" >&2
    exit 1
fi
echo "smoke: TLS+auth remote output is byte-identical to local"

echo "smoke: checking that a wrong token is rejected"
if "$workdir/edb" -connect "$tls_addr" -tls -tls-ca "$workdir/certs/cert.pem" \
        -auth-token wrong-secret $common "$script" >/dev/null 2>"$workdir/badtoken.err"; then
    echo "smoke: FAIL — wrong token was accepted" >&2
    exit 1
fi
if ! grep -q "authentication failed" "$workdir/badtoken.err"; then
    echo "smoke: FAIL — wrong-token error is not the typed auth rejection:" >&2
    cat "$workdir/badtoken.err" >&2
    exit 1
fi

echo "smoke: checking that a token-less client is rejected"
if "$workdir/edb" -connect "$tls_addr" -tls -tls-ca "$workdir/certs/cert.pem" \
        $common "$script" >/dev/null 2>&1; then
    echo "smoke: FAIL — token-less client was accepted by -require-auth" >&2
    exit 1
fi

echo "smoke: draining the TLS daemon with SIGTERM"
kill -TERM "$tls_daemon_pid"
tls_rc=0
wait "$tls_daemon_pid" || tls_rc=$?
tls_daemon_pid=""
if [ "$tls_rc" -ne 0 ] || ! grep -q "drained cleanly" "$workdir/edbd-tls.log"; then
    echo "smoke: FAIL — TLS daemon did not drain cleanly (rc $tls_rc)" >&2
    cat "$workdir/edbd-tls.log" >&2
    exit 1
fi

echo "smoke: draining the daemon with SIGTERM"
kill -TERM "$daemon_pid"
drain_rc=0
wait "$daemon_pid" || drain_rc=$?
daemon_pid=""
if [ "$drain_rc" -ne 0 ]; then
    echo "smoke: FAIL — daemon exited $drain_rc on SIGTERM" >&2
    cat "$workdir/edbd.log" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$workdir/edbd.log"; then
    echo "smoke: FAIL — daemon did not report a clean drain" >&2
    cat "$workdir/edbd.log" >&2
    exit 1
fi

echo "smoke: starting a two-backend gateway fleet"
"$workdir/edbd" -addr 127.0.0.1:0 -v 2>"$workdir/backend-a.log" &
backend_a_pid=$!
"$workdir/edbd" -addr 127.0.0.1:0 -v 2>"$workdir/backend-b.log" &
backend_b_pid=$!
addr_a=$(wait_addr "$workdir/backend-a.log")
addr_b=$(wait_addr "$workdir/backend-b.log")
if [ -z "$addr_a" ] || [ -z "$addr_b" ]; then
    echo "smoke: FAIL — gateway backends never reported their addresses" >&2
    cat "$workdir/backend-a.log" "$workdir/backend-b.log" >&2
    exit 1
fi
"$workdir/edbd" -gateway -addr 127.0.0.1:0 -backends "$addr_a,$addr_b" -v \
    2>"$workdir/gateway.log" &
gateway_pid=$!
gw_addr=$(wait_addr "$workdir/gateway.log")
if [ -z "$gw_addr" ]; then
    echo "smoke: FAIL — gateway never reported its address" >&2
    cat "$workdir/gateway.log" >&2
    exit 1
fi
echo "smoke: gateway at $gw_addr routing to $addr_a, $addr_b"

# Golden: the same interactive command sequence against a local rig.
icommon="-app linkedlist -assert -t 10 -seed 42 -i"
printf 'vcap\nstatus\nhalt\n' | "$workdir/edb" $icommon >"$workdir/local-i.out"

echo "smoke: distributed explore across both backends"
# The gateway intercepts `explore ... backends=2`, fans the search across
# backends A and B, and must hand back bytes identical to a single-process
# run of the same search — the report is a pure function of the bounds,
# never of the fleet shape.
explore_i="explore depth=2 writes=8 states=64"
printf '%s\nhalt\n' "$explore_i" | "$workdir/edb" $icommon >"$workdir/explore-1p.out"
printf '%s backends=2\nhalt\n' "$explore_i" | "$workdir/edb" -connect "$gw_addr" $icommon >"$workdir/explore-2b.out"
if ! diff -u "$workdir/explore-1p.out" "$workdir/explore-2b.out"; then
    echo "smoke: FAIL — two-backend explore output differs from single-process" >&2
    cat "$workdir/gateway.log" >&2
    exit 1
fi
if ! grep -q "WAR violations:" "$workdir/explore-2b.out"; then
    echo "smoke: FAIL — distributed explore did not flag the unguarded WAR bug" >&2
    cat "$workdir/explore-2b.out" >&2
    exit 1
fi
echo "smoke: two-backend explore byte-identical to single-process, bug flagged"

# Through the gateway, losing both original backends mid-session: first a
# graceful SIGTERM (the backend hands its sessions back as SessMigrate),
# then — after a replacement joins — a hard SIGKILL mid-prompt (crash
# failover via journal replay). The client's bytes must not change.
fifo="$workdir/cmds"
mkfifo "$fifo"
"$workdir/edb" -connect "$gw_addr" $icommon <"$fifo" >"$workdir/gw-i.out" &
edb_pid=$!
exec 3>"$fifo"
printf 'vcap\n' >&3
sleep 0.5
kill -TERM "$backend_a_pid"
sleep 0.3
# Migration happens at prompt boundaries, so the next command is what
# drives a session off the draining backend; A can only finish its drain
# once the client makes progress.
printf 'status\n' >&3
wait "$backend_a_pid" || {
    echo "smoke: FAIL — backend A did not drain cleanly under the gateway" >&2
    cat "$workdir/backend-a.log" >&2
    exit 1
}
backend_a_pid=""
"$workdir/edbd" -addr 127.0.0.1:0 -join "$gw_addr" -v 2>"$workdir/backend-c.log" &
backend_c_pid=$!
i=0
while [ $i -lt 100 ]; do
    grep -q "registered with gateway" "$workdir/backend-c.log" && break
    sleep 0.1
    i=$((i + 1))
done
if ! grep -q "registered with gateway" "$workdir/backend-c.log"; then
    echo "smoke: FAIL — replacement backend never joined the gateway" >&2
    cat "$workdir/backend-c.log" >&2
    exit 1
fi
sleep 0.5
kill -KILL "$backend_b_pid"
wait "$backend_b_pid" 2>/dev/null || true
backend_b_pid=""
printf 'halt\n' >&3
exec 3>&-
edb_rc=0
wait "$edb_pid" || edb_rc=$?
if [ "$edb_rc" -ne 0 ]; then
    echo "smoke: FAIL — gateway session exited $edb_rc after backend loss" >&2
    cat "$workdir/gateway.log" >&2
    exit 1
fi
if ! diff -u "$workdir/local-i.out" "$workdir/gw-i.out"; then
    echo "smoke: FAIL — gateway output differs from local after losing both backends" >&2
    cat "$workdir/gateway.log" >&2
    exit 1
fi
echo "smoke: gateway session survived a drain and a kill, output byte-identical to local"

echo "smoke: stopping the gateway fleet"
kill -TERM "$gateway_pid"
gw_rc=0
wait "$gateway_pid" || gw_rc=$?
gateway_pid=""
if [ "$gw_rc" -ne 0 ] || ! grep -q "gateway stopped cleanly" "$workdir/gateway.log"; then
    echo "smoke: FAIL — gateway did not stop cleanly (rc $gw_rc)" >&2
    cat "$workdir/gateway.log" >&2
    exit 1
fi
kill -TERM "$backend_c_pid" 2>/dev/null || true
wait "$backend_c_pid" 2>/dev/null || true
backend_c_pid=""

echo "smoke: starting a replicated two-gateway fleet"
# Replica gateway first (so the active one can stream to it from birth),
# then the active gateway with -peer, then two backends that register with
# BOTH gateways through one comma-separated -join.
"$workdir/edbd" -gateway -addr 127.0.0.1:0 -v 2>"$workdir/gw2.log" &
gw2_pid=$!
gw2_addr=$(wait_addr "$workdir/gw2.log")
if [ -z "$gw2_addr" ]; then
    echo "smoke: FAIL — replica gateway never reported its address" >&2
    cat "$workdir/gw2.log" >&2
    exit 1
fi
"$workdir/edbd" -gateway -addr 127.0.0.1:0 -peer "$gw2_addr" -v 2>"$workdir/gw1.log" &
gw1_pid=$!
gw1_addr=$(wait_addr "$workdir/gw1.log")
if [ -z "$gw1_addr" ]; then
    echo "smoke: FAIL — active gateway never reported its address" >&2
    cat "$workdir/gw1.log" >&2
    exit 1
fi
"$workdir/edbd" -addr 127.0.0.1:0 -join "$gw1_addr,$gw2_addr" -v 2>"$workdir/backend-d.log" &
backend_d_pid=$!
"$workdir/edbd" -addr 127.0.0.1:0 -join "$gw1_addr,$gw2_addr" -v 2>"$workdir/backend-e.log" &
backend_e_pid=$!
for blog in backend-d backend-e; do
    for gw in "$gw1_addr" "$gw2_addr"; do
        i=0
        while [ $i -lt 100 ]; do
            grep -q "registered with gateway $gw" "$workdir/$blog.log" && break
            sleep 0.1
            i=$((i + 1))
        done
        if ! grep -q "registered with gateway $gw" "$workdir/$blog.log"; then
            echo "smoke: FAIL — $blog never joined gateway $gw" >&2
            cat "$workdir/$blog.log" >&2
            exit 1
        fi
    done
done
i=0
while [ $i -lt 100 ]; do
    grep -q "replication stream connected" "$workdir/gw1.log" && break
    sleep 0.1
    i=$((i + 1))
done
if ! grep -q "replication stream connected" "$workdir/gw1.log"; then
    echo "smoke: FAIL — gateways never connected their replication stream" >&2
    cat "$workdir/gw1.log" >&2
    exit 1
fi
echo "smoke: gateways $gw1_addr (active) -> $gw2_addr (replica), two backends joined both"

echo "smoke: SIGKILL of the active gateway mid-session"
# The client's dial list names both gateways; it connects to gw1 (listed
# first). Mid-session, gw1 is killed outright — no drain, no hand-off
# frames. The client must resume on gw2, which holds the session's
# replica, and the transcript must be byte-identical to the earlier
# single-gateway and local runs.
fifo2="$workdir/cmds2"
mkfifo "$fifo2"
"$workdir/edb" -connect "$gw1_addr,$gw2_addr" $icommon <"$fifo2" >"$workdir/repl-i.out" &
edb2_pid=$!
exec 4>"$fifo2"
printf 'vcap\n' >&4
sleep 1
kill -KILL "$gw1_pid"
wait "$gw1_pid" 2>/dev/null || true
gw1_pid=""
printf 'status\n' >&4
printf 'halt\n' >&4
exec 4>&-
edb2_rc=0
wait "$edb2_pid" || edb2_rc=$?
if [ "$edb2_rc" -ne 0 ]; then
    echo "smoke: FAIL — session exited $edb2_rc after the active gateway was killed" >&2
    cat "$workdir/gw2.log" >&2
    exit 1
fi
if ! diff -u "$workdir/local-i.out" "$workdir/repl-i.out"; then
    echo "smoke: FAIL — replicated-gateway transcript differs from the single-gateway run" >&2
    cat "$workdir/gw2.log" >&2
    exit 1
fi
if ! grep -q "reclaimed replicated peer session" "$workdir/gw2.log"; then
    echo "smoke: FAIL — surviving gateway did not reclaim the session from its replica store" >&2
    cat "$workdir/gw2.log" >&2
    exit 1
fi
echo "smoke: active-gateway SIGKILL survived; transcript byte-identical, replica reclaimed"

echo "smoke: stopping the replicated fleet"
kill -TERM "$gw2_pid"
gw2_rc=0
wait "$gw2_pid" || gw2_rc=$?
gw2_pid=""
if [ "$gw2_rc" -ne 0 ]; then
    echo "smoke: FAIL — surviving gateway exited $gw2_rc on SIGTERM" >&2
    cat "$workdir/gw2.log" >&2
    exit 1
fi
for pidvar in backend_d_pid backend_e_pid; do
    eval "pid=\$$pidvar"
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    eval "$pidvar=''"
done

echo "smoke: batched-vs-sequential fleet equivalence"
# The fleet kernel's golden property: a batched run must be byte-identical
# to N sequential Rig runs, at any worker count and slice length.
go test ./internal/fleet -run 'TestFleetMatchesSequential|TestFleetSliceInvariance' -count=1 >/dev/null

echo "smoke: fleet benchmark quick pass"
go run ./cmd/edb-bench -fleet -kernel -quick -json -out '' >"$workdir/fleet.json"
if ! grep -q '"fleet_speedup_x"' "$workdir/fleet.json"; then
    echo "smoke: FAIL — fleet benchmark reported no speedup metric" >&2
    cat "$workdir/fleet.json" >&2
    exit 1
fi

echo "smoke: PASS"
