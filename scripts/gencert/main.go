// Command gencert writes an ephemeral self-signed TLS keypair for edbd:
//
//	go run ./scripts/gencert -out certs
//	edbd -tls-cert certs/cert.pem -tls-key certs/key.pem
//	edb -connect host:3490 -tls -tls-ca certs/cert.pem ...
//
// The certificate is dual-use (server and client auth), so the same files
// also serve as a client identity for mTLS (-tls-client-ca on edbd,
// -tls-cert/-tls-key on edb). scripts/smoke.sh uses it for the TLS+auth
// end-to-end run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/tlstest"
)

func main() {
	var (
		out   = flag.String("out", ".", "directory to write cert.pem and key.pem into")
		hosts = flag.String("hosts", "127.0.0.1,localhost,::1", "comma-separated DNS names / IPs for the certificate")
		dur   = flag.Duration("dur", 30*24*time.Hour, "certificate validity")
	)
	flag.Parse()

	certPEM, keyPEM, err := tlstest.GenerateKeypair(strings.Split(*hosts, ","), *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	certPath := filepath.Join(*out, "cert.pem")
	keyPath := filepath.Join(*out, "key.pem")
	if err := os.WriteFile(certPath, certPEM, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("gencert: wrote %s and %s (hosts %s, valid %s)\n", certPath, keyPath, *hosts, *dur)
}
