#!/bin/sh
# Compare edb-bench headline metrics between the working tree and a base
# ref. The base is checked out into a throwaway git worktree, both sides
# run the same benchmark selection, and scripts/benchcmp renders the two
# BENCH.json dumps side by side with relative deltas.
#
# Usage:
#   sh scripts/benchcmp.sh [base-ref]        # default base: HEAD~1
#   BENCH_ARGS='-exp table3 -quick' sh scripts/benchcmp.sh v1.0
#
# or, via make: make benchcmp BASE=<ref>
set -eu

BASE=${1:-HEAD~1}
ARGS=${BENCH_ARGS:--snapshot -trace -fleet -kernel -explore -explore-cluster -gateway-failover -quick}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
TMP=$(mktemp -d)
cleanup() {
	git -C "$ROOT" worktree remove --force "$TMP/base" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "benchcmp: working tree vs $BASE  (edb-bench $ARGS)"

(cd "$ROOT" && go run ./cmd/edb-bench $ARGS -json -out '') >"$TMP/head.json"

git -C "$ROOT" worktree add --quiet --detach "$TMP/base" "$BASE"
# A benchmark that exists in the working tree but not at $BASE (new flag,
# new suite) must not sink the whole comparison: fall back to an empty
# metric dump so every head-side metric renders as "new".
if ! (cd "$TMP/base" && go run ./cmd/edb-bench $ARGS -json -out '') >"$TMP/base.json" 2>"$TMP/base.err"; then
	echo "benchcmp: edb-bench $ARGS failed at $BASE (benchmark missing there?); comparing against an empty base" >&2
	sed 's/^/benchcmp:   base: /' "$TMP/base.err" >&2 || true
	echo '{}' >"$TMP/base.json"
fi

(cd "$ROOT" && go run ./scripts/benchcmp "$TMP/base.json" "$TMP/head.json")
