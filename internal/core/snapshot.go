package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/sim"
)

// RigSnapshot is a full machine snapshot of an assembled rig: the target
// device (memory, clock, supply, peripherals, RNG streams) plus the
// debugger's own state. Applying it to a freshly built identical rig makes
// the pair bit-for-bit indistinguishable — the warm-start fork primitive.
type RigSnapshot struct {
	Device *device.Snapshot
	EDB    *edb.Snapshot // nil for rigs assembled WithoutEDB
}

// MemoryBytes returns the size of the snapshot's full memory image.
func (s *RigSnapshot) MemoryBytes() int { return s.Device.MemoryBytes() }

// Now returns the simulated cycle the snapshot was taken at.
func (s *RigSnapshot) Now() sim.Cycles { return s.Device.Now }

// Snapshot captures the rig at a firmware-quiescent point (no firmware
// stack live, no pending clock events — e.g. mid-charge before Main first
// runs). Reader rigs cannot be snapshotted: the reader's inventory state
// machine lives outside the capture set.
func (r *Rig) Snapshot() (*RigSnapshot, error) {
	if r.Reader != nil {
		return nil, fmt.Errorf("core: reader rigs cannot be snapshotted")
	}
	ds, err := r.Device.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &RigSnapshot{Device: ds}
	if r.EDB != nil {
		es, err := r.EDB.Snapshot()
		if err != nil {
			return nil, err
		}
		s.EDB = es
	}
	return s, nil
}

// Restore applies a snapshot taken from an identically assembled rig (same
// program, options and seed). The restored rig resumes exactly where the
// snapshot was taken.
func (r *Rig) Restore(s *RigSnapshot) error {
	if r.Reader != nil {
		return fmt.Errorf("core: reader rigs cannot be restored")
	}
	if err := r.Device.Restore(s.Device); err != nil {
		return err
	}
	if r.EDB != nil {
		if s.EDB == nil {
			return fmt.Errorf("core: snapshot has no debugger state for a debugger rig")
		}
		r.EDB.RestoreSnapshot(s.EDB)
	}
	return nil
}

// RunUntil is Run against an absolute deadline cycle with times reported
// relative to origin — the warm-start entry point. A rig restored from a
// mid-charge snapshot passes the deadline and origin a cold run would have
// used, so every reported time (and therefore every output byte) matches
// the cold run exactly.
func (r *Rig) RunUntil(deadline, origin sim.Cycles) (device.RunResult, error) {
	if r.Reader != nil {
		r.Reader.Start()
		defer r.Reader.Stop()
	}
	return r.Runner.RunUntil(deadline, origin)
}
