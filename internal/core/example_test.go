package core_test

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
)

// Example assembles the standard rig — WISP-like target, EDB attached,
// console ready — runs the linked-list case study with its keep-alive
// assertion, and shows the outcome: intermittent execution, zero wild
// writes, and the debugger holding the target alive at the failure.
func Example() {
	app := &apps.LinkedList{WithAssert: true}
	rig, err := core.NewRig(app, core.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rig.Run(30 * core.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("intermittent:", res.Reboots > 0)
	fmt.Println("wild writes:", res.Faults)
	fmt.Println("halted by assert:", res.Halted != "")
	fmt.Println("kept alive on tethered power:", rig.Device.Supply.Tethered())
	// Output:
	// intermittent: true
	// wild writes: 0
	// halted by assert: true
	// kept alive on tethered power: true
}
