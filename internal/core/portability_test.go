package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/units"
)

// TestSolarNodeProfile exercises the paper's portability claim (§4): EDB
// connects to "any energy-harvesting device with a microcontroller and a
// capacitor". This profile is a solar sensor node — a 100 µF store, 3.0 V
// turn-on, 2.2 V brown-out, fed by a varying indoor-solar harvester — and
// every EDB primitive must work unchanged on it.
func TestSolarNodeProfile(t *testing.T) {
	clockSeconds := 0.0
	solar := &energy.SolarHarvester{
		IMax: units.MilliAmps(1.4),
		Voc:  4.0,
		Scale: func() float64 {
			// Illumination swings between 35 % and 100 % with a ~1 s
			// period keyed off accumulated samples (deterministic).
			clockSeconds += 0.001
			phase := clockSeconds - float64(int(clockSeconds))
			if phase < 0.5 {
				return 0.35
			}
			return 1.0
		},
	}
	supply := energy.NewSupply(units.MicroFarads(100), 3.6, 3.0, 2.2, solar)

	app := &apps.Activity{Print: apps.EDBPrint}
	rig, err := NewRig(app, WithSeed(5), WithSupply(supply))
	if err != nil {
		t.Fatal(err)
	}
	rig.EDB.TraceVcap()

	res, err := rig.Run(5 * Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reboots == 0 {
		t.Fatalf("solar node must run intermittently: %+v", res)
	}
	st := app.Stats(rig.Device)
	if st.Completed == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	// EDB primitives work on the foreign profile:
	if rig.EDB.Stats().Printfs == 0 {
		t.Fatal("EDB printf must work on the solar profile")
	}
	if len(rig.EDB.WatchHits()) == 0 {
		t.Fatal("watchpoints must work on the solar profile")
	}
	// Compensation respected the profile's own thresholds.
	for _, sr := range rig.EDB.SaveRestoreSamples() {
		if sr.RestoredTrue < 2.2 {
			t.Fatalf("restore pushed the solar node below its brown-out: %+v", sr)
		}
	}
	if out, err := rig.Exec("status"); err != nil || !strings.Contains(out, "printfs") {
		t.Fatalf("console on solar profile: %v", err)
	}
	// The trace spans the profile's thresholds, not the WISP's.
	vc := rig.EDB.VcapSeries()
	if vc.Max() < 2.9 {
		t.Fatalf("trace max = %v; the node must reach its 3.0 V turn-on", vc.Max())
	}
}

// TestBigCapacitorProfile: a supercap-class store (1 mF) charges slowly
// and runs long — the intermittence period scales with C as the physics
// says it must.
func TestBigCapacitorProfile(t *testing.T) {
	period := func(c units.Farads) float64 {
		h := &energy.ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3}
		supply := energy.NewSupply(c, 3.0, 2.4, 1.8, h)
		rig, err := NewRig(&apps.Busy{}, WithSeed(6), WithSupply(supply))
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.Run(20 * Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reboots == 0 {
			t.Fatalf("no reboots with C=%v: %+v", c, res)
		}
		return 20.0 / float64(res.Reboots)
	}
	small := period(units.MicroFarads(47))
	big := period(units.MicroFarads(470))
	ratio := big / small
	if ratio < 7 || ratio > 13 {
		t.Fatalf("10x capacitance must give ~10x period: ratio=%v", ratio)
	}
	_ = edb.DefaultConfig()
}
