// Package core assembles the pieces of the EDB reproduction into a ready
// debugging rig: a simulated energy-harvesting target (internal/device)
// powered by a harvester (internal/energy), with the Energy-interference-
// free Debugger attached (internal/edb), a host console (internal/console),
// and optionally an RFID reader closing the energy/communication loop
// (internal/rfid).
//
// It is the front door for examples and downstream users:
//
//	rig, err := core.NewRig(&apps.LinkedList{WithAssert: true})
//	...
//	res, err := rig.Run(10 * core.Second)
//
// Lower-level control remains available through the Rig's fields.
package core

import (
	"fmt"

	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/rfid"
	"repro/internal/units"
)

// Second re-exports the simulated-time unit so callers can write
// rig.Run(10 * core.Second) without importing internal/units.
const Second units.Seconds = 1

// Millisecond is one thousandth of a simulated second.
const Millisecond units.Seconds = 1e-3

// Rig is an assembled debugging setup.
type Rig struct {
	Device  *device.Device
	EDB     *edb.EDB
	Console *console.Console
	Runner  *device.Runner
	Reader  *rfid.Reader // nil unless WithReader was used

	program device.Program
}

// Option configures rig assembly.
type Option func(*config)

type config struct {
	seed      int64
	harvester energy.Harvester
	supply    *energy.Supply
	edbCfg    edb.Config
	noEDB     bool
	reader    *rfid.ReaderConfig
}

// WithSeed sets the deterministic seed for every stochastic model in the
// rig (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithHarvester replaces the default RF harvester (30 dBm reader at 1 m).
func WithHarvester(h energy.Harvester) Option {
	return func(c *config) { c.harvester = h }
}

// WithSupply replaces the whole power supply — a different storage
// capacitor and thresholds for non-WISP device profiles (EDB ports to any
// capacitor-buffered harvesting device, §4). The supply's harvester wins
// over WithHarvester.
func WithSupply(s *energy.Supply) Option {
	return func(c *config) { c.supply = s }
}

// WithEDBConfig overrides the debugger configuration.
func WithEDBConfig(cfg edb.Config) Option {
	return func(c *config) { c.edbCfg = cfg }
}

// WithoutEDB assembles the target alone — the "run without a debugger and
// observe the failure but gain no insight" half of the paper's dilemma.
func WithoutEDB() Option { return func(c *config) { c.noEDB = true } }

// WithReader attaches an RFID reader model whose carrier is the energy
// source; the returned rig's Reader field is set and started by Run.
func WithReader(rc rfid.ReaderConfig) Option {
	return func(c *config) { c.reader = &rc }
}

// NewRig assembles a rig around the given firmware program and flashes it.
// The EDB board (when present) attaches before flashing so the target-side
// libEDB registers its debug service.
func NewRig(p device.Program, opts ...Option) (*Rig, error) {
	cfg := config{seed: 1, edbCfg: edb.DefaultConfig()}
	for _, o := range opts {
		o(&cfg)
	}

	rig := &Rig{program: p}

	if cfg.reader != nil {
		reader, harv := rfid.NewReader(*cfg.reader)
		rig.Reader = reader
		if cfg.harvester == nil {
			cfg.harvester = harv
		}
	}
	if cfg.harvester == nil {
		cfg.harvester = energy.NewRFHarvester()
	}

	if cfg.supply != nil {
		dcfg := device.DefaultConfig()
		dcfg.Seed = cfg.seed
		rig.Device = device.New(dcfg, cfg.supply)
	} else {
		rig.Device = device.NewWISP5(cfg.harvester, cfg.seed)
	}

	if !cfg.noEDB {
		rig.EDB = edb.New(cfg.edbCfg)
		rig.EDB.Attach(rig.Device)
		rig.EDB.SetRFDecoder(rfid.FrameName)
		rig.Console = console.New(rig.EDB)
	}

	rig.Runner = device.NewRunner(rig.Device, p)
	if err := rig.Runner.Flash(); err != nil {
		return nil, fmt.Errorf("core: flashing %s: %w", p.Name(), err)
	}
	if rig.Reader != nil {
		rig.Reader.Attach(rig.Device)
	}
	return rig, nil
}

// ExploreTarget builds the bare machine the exhaustive intermittence
// checker (internal/explore) forks: the program flashed onto a WISP-class
// device with no EDB attached — the explorer installs its own debugger
// probe — and every stochastic model seeded deterministically. It is the
// canonical explore.Config.NewRig body.
func ExploreTarget(p device.Program, seed int64) (*device.Device, device.Program, error) {
	rig, err := NewRig(p, WithoutEDB(), WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	return rig.Device, p, nil
}

// Run executes the program intermittently for the given simulated duration,
// starting the reader (if any) for the run's extent.
func (r *Rig) Run(d units.Seconds) (device.RunResult, error) {
	if r.Reader != nil {
		r.Reader.Start()
		defer r.Reader.Stop()
	}
	return r.Runner.RunFor(d)
}

// Exec runs one console command (convenience passthrough; returns an error
// when the rig was assembled WithoutEDB).
func (r *Rig) Exec(cmd string) (string, error) {
	if r.Console == nil {
		return "", fmt.Errorf("core: no debugger attached")
	}
	return r.Console.Exec(cmd)
}
