package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/energy"
	"repro/internal/rfid"
	"repro/internal/units"
)

func TestNewRigDefaults(t *testing.T) {
	rig, err := NewRig(&apps.Busy{})
	if err != nil {
		t.Fatal(err)
	}
	if rig.Device == nil || rig.EDB == nil || rig.Console == nil || rig.Runner == nil {
		t.Fatal("rig incomplete")
	}
	if rig.Reader != nil {
		t.Fatal("no reader requested")
	}
	res, err := rig.Run(2 * Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineHit {
		t.Fatalf("busy must run to deadline: %+v", res)
	}
	if out, err := rig.Exec("status"); err != nil || !strings.Contains(out, "Vcap") {
		t.Fatalf("console passthrough: %v %q", err, out)
	}
}

func TestWithoutEDB(t *testing.T) {
	rig, err := NewRig(&apps.Busy{}, WithoutEDB(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rig.EDB != nil || rig.Console != nil {
		t.Fatal("WithoutEDB must omit the debugger")
	}
	if _, err := rig.Exec("status"); err == nil {
		t.Fatal("Exec without EDB must error")
	}
	if _, err := rig.Run(Second); err != nil {
		t.Fatal(err)
	}
}

func TestWithHarvesterAndSeedDeterminism(t *testing.T) {
	run := func() int {
		rig, err := NewRig(&apps.LinkedList{},
			WithSeed(9),
			WithHarvester(energy.NewRFHarvester()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.Run(5 * Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.Reboots
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed must reproduce: %d vs %d", a, b)
	}
}

func TestWithReader(t *testing.T) {
	rig, err := NewRig(&apps.WispRFID{}, WithReader(rfid.DefaultReaderConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if rig.Reader == nil {
		t.Fatal("reader missing")
	}
	if _, err := rig.Run(2 * Second); err != nil {
		t.Fatal(err)
	}
	if rig.Reader.Stats().QueriesSent == 0 {
		t.Fatal("reader must inventory during Run")
	}
	if rig.Reader.Stats().RN16Heard == 0 {
		t.Fatal("tag must reply during Run")
	}
	// EDB monitored the messages concurrently.
	if rig.EDB.Events().Count("rfid-rx") == 0 {
		t.Fatal("EDB must trace RFID I/O")
	}
}

func TestUnitsConstants(t *testing.T) {
	if units.Seconds(Second) != 1 || units.Seconds(Millisecond) != 1e-3 {
		t.Fatal("time constants")
	}
}
