// Package checkpoint implements the runtime-support substrates the paper's
// §2 assumes and §6.2 surveys: a Mementos-style volatile-state
// checkpointing runtime [Ransford et al., ASPLOS'11] and a DINO-style
// task-boundary versioning runtime [Lucia & Ransford, PLDI'15].
//
// These systems are what intermittent software runs on top of — and the
// paper's point is that even with them, intermittence bugs occur (Fig. 3
// shows a checkpointed execution corrupting a list), so a debugger that can
// observe intermittent executions is still required. EDB is orthogonal to
// and composes with both runtimes; this package makes that concrete and
// testable.
package checkpoint

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/memsim"
	"repro/internal/units"
)

// Layout of a checkpoint buffer header (all 16-bit words):
const (
	cpSeq   = 0 // monotone sequence number
	cpValid = 2 // commit flag: 0xC0DE when the buffer is complete
	cpCtx   = 4 // application context word (resume point)
	cpLen   = 6 // snapshot length in bytes
	cpHdr   = 8

	validMagic = 0xC0DE
)

// Mementos is a voltage-triggered volatile-state checkpointing runtime:
// when the application polls at a trigger point and the supply is below the
// threshold, the runtime copies the volatile SRAM image and a context word
// into one of two alternating non-volatile buffers, committing with a
// single final flag write so a power failure during checkpointing never
// leaves a half checkpoint that restore would trust.
type Mementos struct {
	d *device.Device
	// Threshold is the self-measured voltage below which a trigger point
	// takes a checkpoint (Mementos' "voltage check at trigger points").
	Threshold units.Volts

	bufs [2]memsim.Addr
	snap int // snapshot payload capacity in bytes

	// Incremental mode: instead of copying the full volatile image at every
	// checkpoint, copy only the SRAM pages written since the target buffer
	// was last filled, using the memory system's write-barrier dirty bitmap
	// as the page-tracking hardware. With double buffering the target holds
	// the image from two checkpoints ago, so the pages to refresh are the
	// union of the last two inter-checkpoint dirty sets.
	inc       bool
	prevPages []int   // pages dirtied in the previous inter-checkpoint window
	primed    [2]bool // buffer holds a complete image (incremental is legal)

	// WordsCopied accumulates checkpoint copy traffic (words) and
	// LastCheckpointWords is the cost of the most recent checkpoint —
	// together they make the O(dirty) saving measurable.
	WordsCopied         uint64
	LastCheckpointWords int
	// Checkpoints counts committed checkpoints.
	Checkpoints int

	// CommitHook, if set, brackets the runtime's commit machinery: called
	// with true when Checkpoint starts writing its buffer and false right
	// after the commit flag lands. The exhaustive intermittence checker
	// uses it to tell the runtime's own log writes apart from application
	// writes and to treat the commit as a WAR-window boundary.
	CommitHook func(active bool)
}

// NewMementos allocates the double-buffered checkpoint area. snapBytes is
// the volatile footprint to preserve (commonly SRAM.InUse() after Flash).
func NewMementos(d *device.Device, threshold units.Volts, snapBytes int) (*Mementos, error) {
	if snapBytes <= 0 || snapBytes > d.SRAM.Size() {
		return nil, fmt.Errorf("checkpoint: bad snapshot size %d", snapBytes)
	}
	m := &Mementos{d: d, Threshold: threshold, snap: snapBytes}
	for i := range m.bufs {
		a, err := d.FRAM.Alloc(cpHdr + snapBytes)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: allocating buffer %d: %w", i, err)
		}
		m.bufs[i] = a
	}
	return m, nil
}

// NewIncrementalMementos is NewMementos with O(dirty-page) checkpoints:
// the write barrier on SRAM records which pages the application touches,
// and Checkpoint copies only those (still word-by-word through the target,
// at real energy cost) instead of the whole image. Restores and torn-
// checkpoint recovery behave identically to the full-copy runtime.
//
// Incremental mode owns SRAM's dirty bitmap. It must not be combined with
// another bitmap consumer on the same rig (the debugger's console `snap`
// command arms the same facility); resetting the bitmap behind the
// runtime's back would silently under-copy.
func NewIncrementalMementos(d *device.Device, threshold units.Volts, snapBytes int) (*Mementos, error) {
	m, err := NewMementos(d, threshold, snapBytes)
	if err != nil {
		return nil, err
	}
	m.inc = true
	d.SRAM.EnableDirtyTracking()
	return m, nil
}

// TriggerPoint is the call the application inserts at loop back-edges and
// function returns: if energy is low, checkpoint with the given context
// word. It reports whether a checkpoint was taken.
func (m *Mementos) TriggerPoint(env *device.Env, ctx uint16) bool {
	v := env.MeasureSelfVoltage() // costs energy: measuring perturbs (§4.1)
	if units.Volts(v) >= m.Threshold {
		return false
	}
	m.Checkpoint(env, ctx)
	return true
}

// Checkpoint copies the volatile image and context into the inactive
// buffer and commits it. Cost is real: one load+store pair per word. In
// incremental mode only the pages written since the target buffer was
// last complete are copied.
func (m *Mementos) Checkpoint(env *device.Env, ctx uint16) {
	if m.CommitHook != nil {
		m.CommitHook(true)
	}
	active, seq := m.newest(env)
	ti := (active + 1) % 2
	target := m.bufs[ti]

	// Invalidate the target before filling it, so a failure mid-copy
	// leaves the previous checkpoint as the newest valid one.
	env.StoreWord(target+cpValid, 0)
	words := 0
	if m.inc {
		// Drain the barrier's dirty set even on the full-copy path: the
		// window it covers closes at this checkpoint either way. A reboot
		// marks every page dirty (SRAM.Clear), so torn incremental copies
		// self-heal into a full copy on the retry.
		now := m.clampPages(m.d.SRAM.TakeDirtyPages())
		if m.primed[ti] {
			toCopy := unionSorted(m.prevPages, now)
			m.prevPages = now
			for _, p := range toCopy {
				words += m.copyPage(env, target, p)
			}
		} else {
			m.prevPages = now
			words = m.copyFull(env, target)
		}
	} else {
		words = m.copyFull(env, target)
	}
	m.primed[ti] = true
	m.LastCheckpointWords = words
	m.WordsCopied += uint64(words)
	env.StoreWord(target+cpCtx, ctx)
	env.StoreWord(target+cpLen, uint16(m.snap))
	env.StoreWord(target+cpSeq, seq+1)
	// Linearization point: the commit flag is the last write.
	env.StoreWord(target+cpValid, validMagic)
	m.Checkpoints++
	if m.CommitHook != nil {
		m.CommitHook(false)
	}
}

// PendingWords estimates, without consuming the dirty bitmap or simulated
// energy, how many words the next Checkpoint would copy — the "checkpoint
// size" input to dirty-size-aware placement policies (DiCA-style baselines).
// In full-copy mode this is constant; in incremental mode it is the union
// of the previous window and the pages dirtied so far.
func (m *Mementos) PendingWords() int {
	full := (m.snap + 1) / 2
	if !m.inc {
		return full
	}
	ti := (m.newestInspect() + 1) % 2
	if !m.primed[ti] {
		return full
	}
	now := m.clampPages(m.d.SRAM.DirtyPages())
	words := 0
	for _, p := range unionSorted(m.prevPages, now) {
		start := p * memsim.PageSize
		end := start + memsim.PageSize
		if end > m.snap {
			end = m.snap
		}
		words += (end - start + 1) / 2
	}
	return words
}

// newestInspect is newest read directly from device memory, with no
// simulated energy cost — for policy probes outside the firmware's budget.
func (m *Mementos) newestInspect() int {
	bestIdx, bestSeq := 0, uint16(0)
	for i, b := range m.bufs {
		if v, err := m.d.Mem.ReadWord(b + cpValid); err != nil || v != validMagic {
			continue
		}
		if s, err := m.d.Mem.ReadWord(b + cpSeq); err == nil && s > bestSeq {
			bestIdx, bestSeq = i, s
		}
	}
	return bestIdx
}

// copyFull copies the whole volatile image into target's payload area.
func (m *Mementos) copyFull(env *device.Env, target memsim.Addr) int {
	src := memsim.SRAMBase
	for off := 0; off < m.snap; off += 2 {
		w := env.LoadWord(src + memsim.Addr(off))
		env.StoreWord(target+cpHdr+memsim.Addr(off), w)
	}
	return (m.snap + 1) / 2
}

// copyPage copies one SRAM page into target's payload area, clamped to the
// snapshot length, returning the number of words moved.
func (m *Mementos) copyPage(env *device.Env, target memsim.Addr, p int) int {
	start := p * memsim.PageSize
	end := start + memsim.PageSize
	if end > m.snap {
		end = m.snap
	}
	n := 0
	for off := start; off < end; off += 2 {
		w := env.LoadWord(memsim.SRAMBase + memsim.Addr(off))
		env.StoreWord(target+cpHdr+memsim.Addr(off), w)
		n++
	}
	return n
}

// clampPages drops dirty pages entirely past the snapshot window.
func (m *Mementos) clampPages(pages []int) []int {
	out := pages[:0]
	for _, p := range pages {
		if p*memsim.PageSize < m.snap {
			out = append(out, p)
		}
	}
	return out
}

// unionSorted merges two ascending page lists without duplicates.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Restore copies the newest valid checkpoint back into SRAM and returns
// its context word. ok is false when no checkpoint exists (first boot).
func (m *Mementos) Restore(env *device.Env) (ctx uint16, ok bool) {
	idx, seq := m.newest(env)
	if seq == 0 {
		return 0, false
	}
	buf := m.bufs[idx]
	n := int(env.LoadWord(buf + cpLen))
	if n > m.snap {
		n = m.snap
	}
	for off := 0; off < n; off += 2 {
		w := env.LoadWord(buf + cpHdr + memsim.Addr(off))
		env.StoreWord(memsim.SRAMBase+memsim.Addr(off), w)
	}
	return env.LoadWord(buf + cpCtx), true
}

// newest returns the index and sequence of the newest valid buffer
// (sequence 0 when neither is valid).
func (m *Mementos) newest(env *device.Env) (int, uint16) {
	bestIdx, bestSeq := 0, uint16(0)
	for i, b := range m.bufs {
		if env.LoadWord(b+cpValid) != validMagic {
			continue
		}
		s := env.LoadWord(b + cpSeq)
		if s > bestSeq {
			bestIdx, bestSeq = i, s
		}
	}
	return bestIdx, bestSeq
}

// nvVar is one non-volatile variable protected by task versioning.
type nvVar struct {
	addr memsim.Addr
	size int
}

// Tasks is a DINO-style task-boundary runtime: the application declares
// which non-volatile variables each task may write; at every task boundary
// the runtime versions those variables and commits the boundary. After a
// reboot, Recover rolls the variables back to the last committed boundary,
// so a task that was interrupted mid-way re-executes from a consistent
// snapshot instead of operating on partially-updated state (the failure
// mode of Fig. 3).
type Tasks struct {
	d    *device.Device
	vars []nvVar

	logBase  memsim.Addr // versioned copies, laid out in registration order
	metaAddr memsim.Addr // seq(2) valid(2) task(2)
	capacity int

	// Boundaries counts committed task boundaries.
	Boundaries int

	// CommitHook brackets Boundary's versioning writes, exactly like
	// Mementos.CommitHook brackets Checkpoint.
	CommitHook func(active bool)
}

// NewTasks allocates a versioning log of the given byte capacity.
func NewTasks(d *device.Device, capacity int) (*Tasks, error) {
	log, err := d.FRAM.Alloc(capacity)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: tasks log: %w", err)
	}
	meta, err := d.FRAM.Alloc(6)
	if err != nil {
		return nil, err
	}
	return &Tasks{d: d, logBase: log, metaAddr: meta, capacity: capacity}, nil
}

// RegisterVar declares a non-volatile variable (addr, size bytes) to be
// versioned at boundaries. Registration happens at flash time.
func (t *Tasks) RegisterVar(addr memsim.Addr, size int) error {
	used := 0
	for _, v := range t.vars {
		used += (v.size + 1) &^ 1
	}
	if used+size > t.capacity {
		return fmt.Errorf("checkpoint: versioning log full (%d + %d > %d)", used, size, t.capacity)
	}
	t.vars = append(t.vars, nvVar{addr: addr, size: size})
	return nil
}

// Boundary commits a task boundary: version every registered variable,
// then publish (task id + valid flag last).
// VersionedRanges lists the [lo, hi) address ranges the recovery protocol
// rolls back to the last committed boundary. Writes inside them between
// boundaries are undone by the next boot's Recover, so re-execution never
// observes them — the exhaustive checker excludes them from its WAR rule.
func (t *Tasks) VersionedRanges() [][2]memsim.Addr {
	out := make([][2]memsim.Addr, 0, len(t.vars))
	for _, v := range t.vars {
		out = append(out, [2]memsim.Addr{v.addr, v.addr + memsim.Addr(v.size)})
	}
	return out
}

func (t *Tasks) Boundary(env *device.Env, taskID uint16) {
	if t.CommitHook != nil {
		t.CommitHook(true)
	}
	env.StoreWord(t.metaAddr+2, 0) // invalidate during copy
	off := memsim.Addr(0)
	for _, v := range t.vars {
		for b := 0; b < v.size; b += 2 {
			w := env.LoadWord(v.addr + memsim.Addr(b))
			env.StoreWord(t.logBase+off, w)
			off += 2
		}
	}
	env.StoreWord(t.metaAddr+4, taskID)
	seq := env.LoadWord(t.metaAddr)
	env.StoreWord(t.metaAddr, seq+1)
	env.StoreWord(t.metaAddr+2, validMagic)
	t.Boundaries++
	if t.CommitHook != nil {
		t.CommitHook(false)
	}
}

// RecoverInspect applies the rollback directly against device memory with
// no energy cost — for post-mortem inspection of the committed state (what
// the next boot's Recover would observe). It returns the committed task id.
func (t *Tasks) RecoverInspect() (taskID uint16, ok bool) {
	v, err := t.d.Mem.ReadWord(t.metaAddr + 2)
	if err != nil || v != validMagic {
		return 0, false
	}
	off := memsim.Addr(0)
	for _, vr := range t.vars {
		for b := 0; b < vr.size; b += 2 {
			w, err := t.d.Mem.ReadWord(t.logBase + off)
			if err != nil {
				return 0, false
			}
			if t.d.Mem.WriteWord(vr.addr+memsim.Addr(b), w) != nil {
				return 0, false
			}
			off += 2
		}
	}
	id, _ := t.d.Mem.ReadWord(t.metaAddr + 4)
	return id, true
}

// Recover rolls registered variables back to the last committed boundary
// and returns its task id. ok is false if no boundary ever committed.
func (t *Tasks) Recover(env *device.Env) (taskID uint16, ok bool) {
	if env.LoadWord(t.metaAddr+2) != validMagic {
		return 0, false
	}
	off := memsim.Addr(0)
	for _, v := range t.vars {
		for b := 0; b < v.size; b += 2 {
			w := env.LoadWord(t.logBase + off)
			env.StoreWord(v.addr+memsim.Addr(b), w)
			off += 2
		}
	}
	return env.LoadWord(t.metaAddr + 4), true
}
