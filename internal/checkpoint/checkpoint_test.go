package checkpoint_test

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/units"
)

func powered(seed int64) (*device.Device, *device.Env) {
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(2), Voc: 3.3}, seed)
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	return d, &device.Env{D: d}
}

func TestMementosCheckpointRestore(t *testing.T) {
	d, env := powered(71)
	m, err := checkpoint.NewMementos(d, 2.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// First boot: no checkpoint.
	if _, ok := m.Restore(env); ok {
		t.Fatal("fresh device must have no checkpoint")
	}
	// Fill volatile state, checkpoint, wipe, restore.
	for i := 0; i < 32; i += 2 {
		env.StoreWord(memsim.SRAMBase+memsim.Addr(i), uint16(i*7))
	}
	m.Checkpoint(env, 42)
	d.Mem.ClearVolatile()
	ctx, ok := m.Restore(env)
	if !ok || ctx != 42 {
		t.Fatalf("restore ctx=%d ok=%v", ctx, ok)
	}
	for i := 0; i < 32; i += 2 {
		if got := env.LoadWord(memsim.SRAMBase + memsim.Addr(i)); got != uint16(i*7) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestMementosDoubleBufferingSurvivesInterruptedCheckpoint(t *testing.T) {
	// A harvest-free device so the copy loop genuinely drains the store.
	d := device.NewWISP5(energy.NullHarvester{}, 72)
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	env := &device.Env{D: d}
	m, err := checkpoint.NewMementos(d, 2.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	env.StoreWord(memsim.SRAMBase, 0x1111)
	m.Checkpoint(env, 1)

	// A power failure mid-second-checkpoint: the device dies during the
	// copy, before the commit flag is written. Only ~1 mV of headroom is
	// left, a fraction of the copy's energy cost.
	env.StoreWord(memsim.SRAMBase, 0x2222)
	d.Supply.Cap.SetVoltage(1.801)
	func() {
		defer func() {
			if _, ok := recover().(*device.PowerFailure); !ok {
				t.Fatal("expected power failure during checkpoint")
			}
		}()
		m.Checkpoint(env, 2)
	}()

	// After reboot, restore must yield the COMPLETE first checkpoint.
	d.Reboot()
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	ctx, ok := m.Restore(env)
	if !ok || ctx != 1 {
		t.Fatalf("restore after torn checkpoint: ctx=%d ok=%v", ctx, ok)
	}
	if env.LoadWord(memsim.SRAMBase) != 0x1111 {
		t.Fatal("restored snapshot must be the committed one")
	}
}

func TestMementosTriggerPoint(t *testing.T) {
	d, env := powered(73)
	m, err := checkpoint.NewMementos(d, 2.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m.TriggerPoint(env, 9) {
		t.Fatal("no checkpoint above threshold")
	}
	d.Supply.Cap.SetVoltage(1.95)
	if !m.TriggerPoint(env, 9) {
		t.Fatal("checkpoint below threshold")
	}
	d.Mem.ClearVolatile()
	ctx, ok := m.Restore(env)
	if !ok || ctx != 9 {
		t.Fatalf("ctx=%d ok=%v", ctx, ok)
	}
}

func TestMementosBadSize(t *testing.T) {
	d, _ := powered(74)
	if _, err := checkpoint.NewMementos(d, 2.0, 0); err == nil {
		t.Fatal("zero snapshot must be rejected")
	}
	if _, err := checkpoint.NewMementos(d, 2.0, 1<<20); err == nil {
		t.Fatal("oversize snapshot must be rejected")
	}
}

func TestTasksRollBackPartialWrites(t *testing.T) {
	// The DINO idea: an interrupted task's partial NV writes roll back to
	// the last boundary, restoring consistency between two variables that
	// must move together (the Fig. 3 failure class).
	d, env := powered(75)
	tasks, err := checkpoint.NewTasks(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.FRAM.Alloc(2)
	b, _ := d.FRAM.Alloc(2)
	if err := tasks.RegisterVar(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := tasks.RegisterVar(b, 2); err != nil {
		t.Fatal(err)
	}

	env.StoreWord(a, 10)
	env.StoreWord(b, 10)
	tasks.Boundary(env, 1)

	// Task 2 updates a but dies before updating b.
	env.StoreWord(a, 11)
	// (power failure here)
	d.Reboot()
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)

	id, ok := tasks.Recover(env)
	if !ok || id != 1 {
		t.Fatalf("recover id=%d ok=%v", id, ok)
	}
	if env.LoadWord(a) != 10 || env.LoadWord(b) != 10 {
		t.Fatalf("rollback failed: a=%d b=%d", env.LoadWord(a), env.LoadWord(b))
	}
}

func TestTasksRecoverWithoutBoundary(t *testing.T) {
	d, env := powered(76)
	tasks, err := checkpoint.NewTasks(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tasks.Recover(env); ok {
		t.Fatal("no boundary yet")
	}
}

func TestTasksLogCapacity(t *testing.T) {
	d, _ := powered(77)
	tasks, err := checkpoint.NewTasks(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.FRAM.Alloc(4)
	if err := tasks.RegisterVar(a, 4); err != nil {
		t.Fatal(err)
	}
	if err := tasks.RegisterVar(a, 2); err == nil {
		t.Fatal("over-capacity registration must fail")
	}
}

func TestCheckpointedProgramMakesProgressIntermittently(t *testing.T) {
	// End to end: a state-machine program using Mementos survives
	// intermittent power and completes a multi-stage computation that
	// could never fit one charge cycle.
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MicroAmps(600), Voc: 3.3}, 78)
	prog := &stagedProgram{stages: 40, workPerStage: 60_000}
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(40))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("checkpointed program must complete: %+v (stage %d)", res, prog.finalStage)
	}
	if res.Reboots == 0 {
		t.Fatal("the run must actually have been intermittent")
	}
}

// stagedProgram runs N stages, each too expensive to batch; its stage index
// lives in volatile SRAM, preserved across reboots only by Mementos.
type stagedProgram struct {
	stages       int
	workPerStage int
	m            *checkpoint.Mementos
	stageAddr    memsim.Addr
	finalStage   int
}

func (p *stagedProgram) Name() string { return "staged" }

func (p *stagedProgram) Flash(d *device.Device) error {
	var err error
	p.stageAddr, err = d.SRAM.Alloc(2)
	if err != nil {
		return err
	}
	p.m, err = checkpoint.NewMementos(d, 2.1, d.SRAM.InUse())
	return err
}

func (p *stagedProgram) Main(env *device.Env) {
	if _, ok := p.m.Restore(env); ok {
		// stage index restored with SRAM image
	}
	for {
		stage := int(env.LoadWord(p.stageAddr))
		p.finalStage = stage
		if stage >= p.stages {
			return
		}
		env.Compute(p.workPerStage)
		env.StoreWord(p.stageAddr, uint16(stage+1))
		p.m.TriggerPoint(env, uint16(stage+1))
	}
}

func TestIncrementalMementosMatchesFullCopy(t *testing.T) {
	// Drive a full-copy runtime and an incremental runtime through the
	// same scripted write/checkpoint/crash sequence on twin devices; every
	// restore must yield byte-identical SRAM, while the incremental
	// runtime's steady-state checkpoints move far fewer words.
	const snap = 2048
	mk := func(inc bool) (*device.Device, *device.Env, *checkpoint.Mementos) {
		d, env := powered(81)
		var m *checkpoint.Mementos
		var err error
		if inc {
			m, err = checkpoint.NewIncrementalMementos(d, 2.0, snap)
		} else {
			m, err = checkpoint.NewMementos(d, 2.0, snap)
		}
		if err != nil {
			t.Fatal(err)
		}
		return d, env, m
	}
	df, ef, mf := mk(false)
	di, ei, mi := mk(true)

	write := func(off int, v uint16) {
		ef.StoreWord(memsim.SRAMBase+memsim.Addr(off), v)
		ei.StoreWord(memsim.SRAMBase+memsim.Addr(off), v)
	}
	sram := func(d *device.Device) []byte { return d.SRAM.Snapshot()[:snap] }

	// Fill everything once, checkpoint twice to prime both buffers.
	for off := 0; off < snap; off += 2 {
		write(off, uint16(off^0x5A5A))
	}
	mf.Checkpoint(ef, 1)
	mi.Checkpoint(ei, 1)
	mf.Checkpoint(ef, 2)
	mi.Checkpoint(ei, 2)
	fullBase, incBase := mf.WordsCopied, mi.WordsCopied

	// Steady state: touch a couple of words per checkpoint.
	rnd := uint32(0x9E37)
	for k := uint16(3); k < 20; k++ {
		for j := 0; j < 2; j++ {
			rnd = rnd*1664525 + 1013904223
			write(int(rnd%(snap/2))*2, uint16(rnd>>16))
		}
		mf.Checkpoint(ef, k)
		mi.Checkpoint(ei, k)
		if mi.LastCheckpointWords > 4*(memsim.PageSize/2) {
			t.Fatalf("cp %d: incremental copied %d words for ≤4 dirty pages", k, mi.LastCheckpointWords)
		}
		if mf.LastCheckpointWords != snap/2 {
			t.Fatalf("cp %d: full runtime copied %d words, want %d", k, mf.LastCheckpointWords, snap/2)
		}
	}
	fullSteady, incSteady := mf.WordsCopied-fullBase, mi.WordsCopied-incBase
	if incSteady >= fullSteady/4 {
		t.Fatalf("steady state: incremental copied %d words vs full %d — expected ≥4× saving", incSteady, fullSteady)
	}

	// Crash, reboot, restore: both runtimes must reconstruct the same image.
	want := append([]byte(nil), sram(df)...)
	for _, d := range []*device.Device{df, di} {
		d.Reboot()
		d.Supply.Cap.SetVoltage(2.4)
		d.Supply.Step(0, 0)
	}
	cf, okf := mf.Restore(ef)
	ci, oki := mi.Restore(ei)
	if !okf || !oki || cf != ci {
		t.Fatalf("restore diverged: full(ctx=%d ok=%v) inc(ctx=%d ok=%v)", cf, okf, ci, oki)
	}
	if string(sram(df)) != string(want) || string(sram(di)) != string(want) {
		t.Fatal("restored SRAM images diverge from the checkpointed state")
	}

	// Post-reboot checkpoint: the wipe marked everything dirty, so the
	// incremental runtime heals with what amounts to a full copy.
	mi.Checkpoint(ei, 99)
	if mi.LastCheckpointWords < snap/2 {
		t.Fatalf("post-reboot checkpoint copied %d words; reboot must dirty the whole image", mi.LastCheckpointWords)
	}
}

func TestIncrementalMementosTornCheckpointHeals(t *testing.T) {
	// A power failure mid-incremental-copy must leave the committed
	// checkpoint restorable, and the retry after reboot must produce a
	// complete image even though the torn target holds mixed pages.
	d := device.NewWISP5(energy.NullHarvester{}, 82)
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	env := &device.Env{D: d}
	m, err := checkpoint.NewIncrementalMementos(d, 2.0, 256)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < 256; off += 2 {
		env.StoreWord(memsim.SRAMBase+memsim.Addr(off), uint16(off+1))
	}
	m.Checkpoint(env, 1)
	m.Checkpoint(env, 2)

	env.StoreWord(memsim.SRAMBase, 0xBEEF)
	d.Supply.Cap.SetVoltage(1.801) // dies mid-copy, pre-commit
	func() {
		defer func() {
			if _, ok := recover().(*device.PowerFailure); !ok {
				t.Fatal("expected power failure during checkpoint")
			}
		}()
		m.Checkpoint(env, 3)
	}()

	d.Reboot()
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	if ctx, ok := m.Restore(env); !ok || ctx != 2 {
		t.Fatalf("restore after torn incremental checkpoint: ctx=%d ok=%v", ctx, ok)
	}
	for off := 0; off < 256; off += 2 {
		if got := env.LoadWord(memsim.SRAMBase + memsim.Addr(off)); got != uint16(off+1) {
			t.Fatalf("word %d = %#x after heal", off, got)
		}
	}
	// And the next checkpoint/restore cycle is fully coherent again.
	env.StoreWord(memsim.SRAMBase+4, 0xCAFE)
	m.Checkpoint(env, 4)
	d.Mem.ClearVolatile()
	if ctx, ok := m.Restore(env); !ok || ctx != 4 {
		t.Fatalf("post-heal checkpoint: ctx=%d ok=%v", ctx, ok)
	}
	if env.LoadWord(memsim.SRAMBase+4) != 0xCAFE {
		t.Fatal("post-heal checkpoint lost a write")
	}
}
