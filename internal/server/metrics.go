package server

import "sync/atomic"

// counters is the server's hot-path instrumentation; every field is an
// atomic so session goroutines never contend on a lock to count.
type counters struct {
	connsOpen        atomic.Int64
	connsTotal       atomic.Int64
	connsRejected    atomic.Int64
	sessionsOpen     atomic.Int64
	sessionsTotal    atomic.Int64
	sessionsRejected atomic.Int64
	commandsServed   atomic.Int64
	bytesStreamed    atomic.Int64
	simCycles        atomic.Int64
	scriptErrors     atomic.Int64
	idleReaped       atomic.Int64
	traceBytes       atomic.Int64
	traceSamples     atomic.Int64
}

// Metrics is a point-in-time snapshot of the daemon's counters; it
// marshals cleanly through expvar.Func for the /debug/vars endpoint.
type Metrics struct {
	ConnsOpen        int64 // connections currently open
	ConnsTotal       int64 // connections accepted since start
	ConnsRejected    int64 // connections refused by the MaxConns limit
	SessionsOpen     int64 // scenario sessions currently running
	SessionsTotal    int64 // sessions served since start
	SessionsRejected int64 // sessions refused by the MaxSessions limit
	CommandsServed   int64 // console commands executed across all sessions
	BytesStreamed    int64 // output bytes framed back to clients
	SimCycles        int64 // simulated target cycles executed
	ScriptErrors     int64 // scripted console commands that returned errors
	IdleReaped       int64 // sessions closed by the idle timeout
	TraceBytes       int64 // trace-stream frame bytes (raw or compressed) sent to clients
	TraceSamples     int64 // trace samples streamed to clients
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		ConnsOpen:        s.c.connsOpen.Load(),
		ConnsTotal:       s.c.connsTotal.Load(),
		ConnsRejected:    s.c.connsRejected.Load(),
		SessionsOpen:     s.c.sessionsOpen.Load(),
		SessionsTotal:    s.c.sessionsTotal.Load(),
		SessionsRejected: s.c.sessionsRejected.Load(),
		CommandsServed:   s.c.commandsServed.Load(),
		BytesStreamed:    s.c.bytesStreamed.Load(),
		SimCycles:        s.c.simCycles.Load(),
		ScriptErrors:     s.c.scriptErrors.Load(),
		IdleReaped:       s.c.idleReaped.Load(),
		TraceBytes:       s.c.traceBytes.Load(),
		TraceSamples:     s.c.traceSamples.Load(),
	}
}
