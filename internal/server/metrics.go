package server

import "sync/atomic"

// counters is the server's hot-path instrumentation; every field is an
// atomic so session goroutines never contend on a lock to count.
type counters struct {
	connsOpen        atomic.Int64
	connsTotal       atomic.Int64
	connsRejected    atomic.Int64
	sessionsOpen     atomic.Int64
	sessionsTotal    atomic.Int64
	sessionsRejected atomic.Int64
	commandsServed   atomic.Int64
	bytesStreamed    atomic.Int64
	simCycles        atomic.Int64
	scriptErrors     atomic.Int64
	idleReaped       atomic.Int64
	traceBytes       atomic.Int64
	traceSamples     atomic.Int64

	authHandshakes       atomic.Int64
	authFailures         atomic.Int64
	tlsHandshakeFailures atomic.Int64
	unknownCapHellos     atomic.Int64

	sessionsMigrated   atomic.Int64
	sessionsResumed    atomic.Int64
	migrateBytesOut    atomic.Int64
	migrateBytesIn     atomic.Int64
	resumeSkippedBytes atomic.Int64
	statProbes         atomic.Int64

	exploreSessions     atomic.Int64
	exploreBatches      atomic.Int64
	exploreStates       atomic.Int64
	exploreDedupQueries atomic.Int64
}

// Metrics is a point-in-time snapshot of the daemon's counters; it
// marshals cleanly through expvar.Func for the /debug/vars endpoint.
type Metrics struct {
	ConnsOpen        int64 // connections currently open
	ConnsTotal       int64 // connections accepted since start
	ConnsRejected    int64 // connections refused by the MaxConns limit
	SessionsOpen     int64 // scenario sessions currently running
	SessionsTotal    int64 // sessions served since start
	SessionsRejected int64 // sessions refused by the MaxSessions limit
	CommandsServed   int64 // console commands executed across all sessions
	BytesStreamed    int64 // output bytes framed back to clients
	SimCycles        int64 // simulated target cycles executed
	ScriptErrors     int64 // scripted console commands that returned errors
	IdleReaped       int64 // sessions closed by the idle timeout
	TraceBytes       int64 // trace-stream frame bytes (raw or compressed) sent to clients
	TraceSamples     int64 // trace samples streamed to clients

	AuthHandshakes       int64 // handshakes that authenticated with a valid token
	AuthFailures         int64 // handshakes rejected with Error{CodeAuth}
	TLSHandshakeFailures int64 // TLS handshakes that never reached the protocol
	UnknownCapHellos     int64 // Hellos advertising capability bits this build ignores

	// Cluster counters (all zero off-cluster).
	SessionsMigrated   int64 // sessions handed off to a peer during a drain
	SessionsResumed    int64 // migrated sessions replayed to their live point here
	MigrateBytesOut    int64 // template-image bytes shipped with SessMigrate frames
	MigrateBytesIn     int64 // template-image bytes received with SessResume frames
	ResumeSkippedBytes int64 // replayed output bytes suppressed because the peer had them
	StatProbes         int64 // load/drain probes answered

	// Distributed-exploration counters (all zero without FlagExplore peers).
	ExploreSessions     int64 // exploration executor sessions served
	ExploreBatches      int64 // frontier expand batches executed
	ExploreStates       int64 // frontier states expanded in those batches
	ExploreDedupQueries int64 // dedup membership queries answered

	// Warm-start pool counters (all zero when pooling is disabled).
	WarmForks          int64 // sessions served by forking a pre-warmed template
	SparePops          int64 // …of which popped a pre-forked spare rig
	ColdBoots          int64 // sessions simulated from cycle 0
	TemplatesBuilt     int64 // firmware templates warmed in the background
	TemplatesInstalled int64 // foreign template images adopted from migrations
	Untemplatable      int64 // spec families the pool gave up templating
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		ConnsOpen:        s.c.connsOpen.Load(),
		ConnsTotal:       s.c.connsTotal.Load(),
		ConnsRejected:    s.c.connsRejected.Load(),
		SessionsOpen:     s.c.sessionsOpen.Load(),
		SessionsTotal:    s.c.sessionsTotal.Load(),
		SessionsRejected: s.c.sessionsRejected.Load(),
		CommandsServed:   s.c.commandsServed.Load(),
		BytesStreamed:    s.c.bytesStreamed.Load(),
		SimCycles:        s.c.simCycles.Load(),
		ScriptErrors:     s.c.scriptErrors.Load(),
		IdleReaped:       s.c.idleReaped.Load(),
		TraceBytes:       s.c.traceBytes.Load(),
		TraceSamples:     s.c.traceSamples.Load(),

		AuthHandshakes:       s.c.authHandshakes.Load(),
		AuthFailures:         s.c.authFailures.Load(),
		TLSHandshakeFailures: s.c.tlsHandshakeFailures.Load(),
		UnknownCapHellos:     s.c.unknownCapHellos.Load(),

		SessionsMigrated:   s.c.sessionsMigrated.Load(),
		SessionsResumed:    s.c.sessionsResumed.Load(),
		MigrateBytesOut:    s.c.migrateBytesOut.Load(),
		MigrateBytesIn:     s.c.migrateBytesIn.Load(),
		ResumeSkippedBytes: s.c.resumeSkippedBytes.Load(),
		StatProbes:         s.c.statProbes.Load(),

		ExploreSessions:     s.c.exploreSessions.Load(),
		ExploreBatches:      s.c.exploreBatches.Load(),
		ExploreStates:       s.c.exploreStates.Load(),
		ExploreDedupQueries: s.c.exploreDedupQueries.Load(),
	}
	if s.pool != nil {
		pm := s.pool.Metrics()
		m.WarmForks = int64(pm.WarmForks)
		m.SparePops = int64(pm.SparePops)
		m.ColdBoots = int64(pm.ColdBoots)
		m.TemplatesBuilt = int64(pm.TemplatesBuilt)
		m.TemplatesInstalled = int64(pm.TemplatesInstalled)
		m.Untemplatable = int64(pm.Untemplatable)
	}
	return m
}
