// Package server implements edbd, the networked multi-target debug daemon:
// it hosts a fleet of independent simulated target+EDB rigs, one
// goroutine-owned scenario per session, behind the internal/wire protocol.
//
// Where the paper's prototype is one board, one tag, one serial console
// (§4.2), edbd turns the same rig into a shared service: many clients
// debug many independent targets concurrently. Sessions never share
// mutable simulation state — each owns its device, debugger, and RNG
// streams, the same isolation rule internal/parallel relies on — so a
// remote scripted session's output is byte-identical to the same script
// run locally.
//
// Operational behavior: per-write read/write deadlines, connection and
// session limits, idle-session reaping (a client that stops sending is
// told so and cut), graceful drain on Shutdown, and an atomic metrics
// snapshot for an expvar endpoint.
//
// Security: Config.TLS wraps the listener in crypto/tls (optionally with
// mTLS client-certificate verification), and Config.AuthToken arms token
// authentication negotiated through the handshake's FlagAuth capability
// bit — a wrong or (under RequireAuth) missing token is answered with a
// typed Error{CodeAuth} frame before any session state is allocated.
package server

import (
	"bufio"
	"context"
	"crypto/subtle"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/tracecodec"
	"repro/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// Config parameterizes the daemon.
type Config struct {
	// Name identifies the server in the handshake (default "edbd").
	Name string
	// MaxConns bounds simultaneously open connections (default 256).
	MaxConns int
	// MaxSessions bounds simultaneously running sessions (default 128).
	MaxSessions int
	// MaxSimSeconds bounds a session's simulated duration (default 300).
	MaxSimSeconds float64
	// IdleTimeout reaps connections that sit between requests, and
	// interactive sessions awaiting a command (default 2m).
	IdleTimeout time.Duration
	// ReadTimeout bounds the handshake read (default 10s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound frame write (default 10s).
	WriteTimeout time.Duration
	// DisableTraceZ refuses the compressed-trace capability even for
	// clients that advertise it; every session then streams raw Trace
	// chunks. Useful for debugging the codec path itself.
	DisableTraceZ bool
	// DisableSnap refuses the snapshot capability (remote time-travel)
	// even for clients that advertise it.
	DisableSnap bool
	// DisableCluster refuses the cluster capability: Stat probes,
	// SessResume replays and drain-time SessMigrate hand-offs are then
	// rejected, and a drain simply waits for busy sessions like a
	// single-node deployment.
	DisableCluster bool
	// DisableExplore refuses the distributed-exploration capability:
	// Explore sessions are then rejected and the backend never builds
	// checker rig pools on behalf of a remote coordinator.
	DisableExplore bool
	// DisablePool turns off warm-start session pooling; every session
	// then simulates its charge phase from cycle 0. Output is identical
	// either way — the pool is purely a latency optimization.
	DisablePool bool
	// TLS, when set, wraps the listener so every connection speaks TLS.
	// Set ClientCAs + ClientAuth: tls.RequireAndVerifyClientCert for mTLS;
	// the TLS handshake completes under ReadTimeout, before the protocol
	// handshake.
	TLS *tls.Config
	// AuthToken, when non-empty, arms token authentication: a client that
	// offers FlagAuth must present exactly this token (compared in
	// constant time) or the handshake is rejected with Error{CodeAuth}.
	// Clients that never offer FlagAuth are still served unless
	// RequireAuth is set, so old clients keep working by default.
	AuthToken string
	// RequireAuth rejects every handshake that does not authenticate —
	// including all pre-auth clients — with Error{CodeAuth} before any
	// session state is allocated. With no AuthToken configured it fails
	// closed: every client is rejected.
	RequireAuth bool
	// PoolSpares is the number of pre-forked rigs kept ready per firmware
	// template (default 2; 0 keeps templates but no pre-forks).
	PoolSpares int
	// Logf, when set, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "edbd"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.MaxSimSeconds <= 0 {
		c.MaxSimSeconds = 300
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// Server is one edbd instance.
type Server struct {
	cfg  Config
	c    counters
	pool *scenario.Pool // nil when pooling is disabled

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]*connState
	draining bool

	// rlog rate-limits handshake-failure logging so an unauthenticated
	// flood cannot turn the log into its own denial of service.
	rlog struct {
		mu         sync.Mutex
		last       time.Time
		suppressed int
	}

	wg sync.WaitGroup
}

// connState tracks whether a connection is inside a session, so a drain
// can cut idle connections immediately while busy ones finish their work.
// The closed flag makes the race between "request just arrived" and "drain
// decided this conn is idle" deterministic: a drain marks the conns it
// cuts, and a handler only enters a session if its conn was not cut first —
// so every connection is either fully served or cleanly closed, never a
// half-session simulated against a connection the drain already killed.
type connState struct {
	mu     sync.Mutex
	busy   bool
	closed bool
}

// enterBusy marks the connection busy unless a drain already closed it.
func (st *connState) enterBusy() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	st.busy = true
	return true
}

func (st *connState) exitBusy() {
	st.mu.Lock()
	st.busy = false
	st.mu.Unlock()
}

// New builds a server; zero-valued config fields take their defaults.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), conns: make(map[net.Conn]*connState)}
	if !s.cfg.DisablePool {
		spares := s.cfg.PoolSpares
		if spares == 0 {
			spares = 2
		}
		if spares < 0 {
			spares = 0
		}
		s.pool = scenario.NewPool(spares)
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// rlogf logs like logf but at most once per second, counting what it
// suppressed in between — hostile peers control how often handshake
// failures happen, so they must not control the log volume.
func (s *Server) rlogf(format string, args ...any) {
	if s.cfg.Logf == nil {
		return
	}
	s.rlog.mu.Lock()
	now := time.Now()
	if now.Sub(s.rlog.last) < time.Second {
		s.rlog.suppressed++
		s.rlog.mu.Unlock()
		return
	}
	suppressed := s.rlog.suppressed
	s.rlog.last, s.rlog.suppressed = now, 0
	s.rlog.mu.Unlock()
	if suppressed > 0 {
		format += fmt.Sprintf(" (%d similar suppressed)", suppressed)
	}
	s.cfg.Logf(format, args...)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Addr returns the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections on lis until Shutdown closes it, then returns
// ErrServerClosed. When Config.TLS is set the listener is wrapped so every
// accepted connection speaks TLS; pass a plain TCP listener.
func (s *Server) Serve(lis net.Listener) error {
	if s.cfg.TLS != nil {
		lis = tls.NewListener(lis, s.cfg.TLS)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn, st)
	}
}

// Shutdown drains the server: the listener closes, new connections are
// refused, connections idling between requests are cut immediately, and
// in-flight sessions run to completion (their handlers exit instead of
// waiting for another request). If ctx expires first, remaining
// connections are force-closed (their simulations still finish; output to
// the dead peer is discarded). Shutdown returns nil on a clean drain,
// ctx.Err() on a forced one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	for conn, st := range s.conns {
		st.mu.Lock()
		if !st.busy {
			st.closed = true
			conn.Close()
		}
		st.mu.Unlock()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.pool != nil {
			s.pool.Wait() // let background template builds settle
		}
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// deadlineWriter arms a fresh write deadline immediately before every
// underlying Write, so WriteTimeout bounds per-write *progress* instead of
// a whole transfer: a slow-but-draining reader of a long chunked send is
// never spuriously cut, while a stuck reader still times out within one
// WriteTimeout of its last accepted byte. Routing every outbound byte
// through this type is what guarantees no server write can ever block
// forever on a dead peer — a path that forgot to arm a deadline would
// otherwise hang its session goroutine (and a drain) indefinitely.
type deadlineWriter struct {
	conn net.Conn
	d    time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	w.conn.SetWriteDeadline(time.Now().Add(w.d))
	return w.conn.Write(p)
}

// send writes one frame under the write deadline.
func (s *Server) send(conn net.Conn, m wire.Msg) error {
	return s.sendf(conn, m, 0)
}

// sendf writes one frame carrying capability flag bits under the write
// deadline.
func (s *Server) sendf(conn net.Conn, m wire.Msg, flags byte) error {
	return wire.WriteMsgFlags(&deadlineWriter{conn: conn, d: s.cfg.WriteTimeout}, m, flags)
}

// recv reads one frame under deadline d.
func (s *Server) recv(conn net.Conn, d time.Duration) (wire.Msg, error) {
	m, _, err := s.recvf(conn, d)
	return m, err
}

// recvf reads one frame and its capability flag bits under deadline d.
func (s *Server) recvf(conn net.Conn, d time.Duration) (wire.Msg, byte, error) {
	conn.SetReadDeadline(time.Now().Add(d))
	return wire.ReadMsgFlags(conn)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handle owns one connection: handshake, then a loop of run/ping requests.
func (s *Server) handle(conn net.Conn, st *connState) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.c.connsOpen.Add(-1)
		s.wg.Done()
	}()
	s.c.connsTotal.Add(1)
	if open := s.c.connsOpen.Add(1); open > int64(s.cfg.MaxConns) {
		s.c.connsRejected.Add(1)
		s.send(conn, &wire.Error{Code: wire.CodeBusy, Text: "connection limit reached"})
		return
	}

	// Complete the TLS handshake explicitly (it would otherwise piggyback
	// on the first read) so certificate failures — a bad client cert under
	// mTLS, a protocol mismatch — are counted and never reach the protocol
	// handshake.
	if tc, ok := conn.(*tls.Conn); ok {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ReadTimeout)
		err := tc.HandshakeContext(ctx)
		cancel()
		if err != nil {
			s.c.tlsHandshakeFailures.Add(1)
			s.rlogf("conn %s: tls handshake failed: %v", conn.RemoteAddr(), err)
			return
		}
	}

	m, helloFlags, err := s.recvf(conn, s.cfg.ReadTimeout)
	if err != nil {
		return
	}
	hello, ok := m.(*wire.Hello)
	if !ok {
		s.send(conn, &wire.Error{Code: wire.CodeBadRequest, Text: "expected Hello"})
		return
	}
	if hello.Version != wire.Version {
		s.send(conn, &wire.Error{Code: wire.CodeVersion,
			Text: fmt.Sprintf("server speaks protocol version %d, client sent %d", wire.Version, hello.Version)})
		return
	}
	// Capability negotiation: echo back the subset of the client's
	// advertised capability bits this server accepts. Old clients send zero
	// flags and get the baseline protocol (raw Trace chunks). Bits this
	// build does not know are masked off — the peer is down-negotiated, not
	// disconnected — but counted and logged so a fleet operator can see
	// newer clients knocking.
	if unknown := helloFlags &^ wire.KnownCaps; unknown != 0 {
		s.c.unknownCapHellos.Add(1)
		s.rlogf("conn %s: hello advertised unknown capability bits %#02x (ignored)", conn.RemoteAddr(), unknown)
	}
	caps := helloFlags & wire.KnownCaps
	if s.cfg.DisableTraceZ {
		caps &^= wire.FlagTraceZ
	}
	if s.cfg.DisableSnap {
		caps &^= wire.FlagSnap
	}
	if s.cfg.DisableCluster {
		caps &^= wire.FlagCluster
	}
	if s.cfg.DisableExplore {
		caps &^= wire.FlagExplore
	}
	// Authentication gate: resolved before the Welcome, and before any
	// session state exists. FlagAuth is echoed only when a token was
	// offered and verified.
	offeredAuth := caps&wire.FlagAuth != 0
	caps &^= wire.FlagAuth
	switch {
	case offeredAuth && s.cfg.AuthToken != "":
		if subtle.ConstantTimeCompare([]byte(hello.Token), []byte(s.cfg.AuthToken)) != 1 {
			s.c.authFailures.Add(1)
			s.rlogf("conn %s: authentication failed (%s): bad token", conn.RemoteAddr(), hello.Client)
			s.send(conn, &wire.Error{Code: wire.CodeAuth, Text: "authentication failed: bad token"})
			return
		}
		caps |= wire.FlagAuth
		s.c.authHandshakes.Add(1)
	case s.cfg.RequireAuth:
		// No usable token: either the client never offered one, or the
		// operator required auth without configuring a token — fail closed
		// either way.
		s.c.authFailures.Add(1)
		s.rlogf("conn %s: unauthenticated handshake rejected (%s)", conn.RemoteAddr(), hello.Client)
		text := "authentication required: offer FlagAuth with a token"
		if s.cfg.AuthToken == "" {
			text = "authentication required but no token is configured server-side"
		}
		s.send(conn, &wire.Error{Code: wire.CodeAuth, Text: text})
		return
	}
	if err := s.sendf(conn, &wire.Welcome{Version: wire.Version, Server: s.cfg.Name}, caps); err != nil {
		return
	}
	traceZ := caps&wire.FlagTraceZ != 0
	snap := caps&wire.FlagSnap != 0
	cluster := caps&wire.FlagCluster != 0
	explore := caps&wire.FlagExplore != 0
	s.logf("conn %s: handshake ok (%s, tracez=%v, snap=%v, auth=%v, cluster=%v, explore=%v)",
		conn.RemoteAddr(), hello.Client, traceZ, snap, caps&wire.FlagAuth != 0, cluster, explore)

	for {
		m, err := s.recv(conn, s.cfg.IdleTimeout)
		if err != nil {
			if isTimeout(err) {
				s.c.idleReaped.Add(1)
				s.send(conn, &wire.Error{Code: wire.CodeIdle, Text: "idle timeout: connection reaped"})
				s.logf("conn %s: reaped idle", conn.RemoteAddr())
			}
			return
		}
		switch req := m.(type) {
		case *wire.Ping:
			if err := s.send(conn, &wire.Pong{Token: req.Token}); err != nil {
				return
			}
		case *wire.Stat:
			if !cluster {
				s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
					Text: "cluster capability was not negotiated"})
				return
			}
			s.c.statProbes.Add(1)
			if err := s.send(conn, &wire.StatReply{
				Sessions:    uint32(s.c.sessionsOpen.Load()),
				MaxSessions: uint32(s.cfg.MaxSessions),
				Draining:    s.isDraining(),
			}); err != nil {
				return
			}
		case *wire.Run:
			if !st.enterBusy() {
				return
			}
			err := s.session(conn, sessionReq{spec: req.Spec, streamTrace: req.StreamTrace}, traceZ, snap, cluster)
			st.exitBusy()
			if err != nil {
				return
			}
			// A drain lets the in-flight session finish, then closes the
			// connection instead of waiting for another request.
			if s.isDraining() {
				return
			}
		case *wire.Explore:
			if !explore {
				s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
					Text: "explore capability was not negotiated"})
				return
			}
			if !st.enterBusy() {
				return
			}
			err := s.exploreSession(conn, req)
			st.exitBusy()
			if err != nil {
				s.logf("conn %s: explore session ended: %v", conn.RemoteAddr(), err)
			}
			// An exploration session consumes the rest of the connection.
			return
		case *wire.SessResume:
			if !cluster {
				s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
					Text: "cluster capability was not negotiated"})
				return
			}
			if req.SpecHash != scenario.SpecHash(req.Spec) {
				s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
					Text: "resume spec hash does not match its spec"})
				return
			}
			if !st.enterBusy() {
				return
			}
			err := s.session(conn, sessionReq{
				spec:             req.Spec,
				streamTrace:      req.StreamTrace,
				journal:          req.Journal,
				skipOutput:       req.SkipOutput,
				skipTraceSamples: req.SkipTraceSamples,
				image:            req.Image,
				resumed:          true,
			}, traceZ, snap, cluster)
			st.exitBusy()
			if err != nil {
				return
			}
			if s.isDraining() {
				return
			}
		default:
			s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
				Text: fmt.Sprintf("unexpected message type %#02x", m.Type())})
			return
		}
	}
}

// errMigrated marks a session the server handed off to a peer mid-run: the
// local simulation is finished silently (output latched to discard, no Done
// frame) and the connection closes, because the authoritative continuation
// now lives elsewhere.
var errMigrated = errors.New("server: session migrated to a peer")

// sessionReq is a session request in either form: a fresh Run, or a
// SessResume replay of a migrated session — a fresh run plus the journal of
// prompt answers already given and the output/trace offsets the peer
// already holds.
type sessionReq struct {
	spec             scenario.Spec
	streamTrace      bool
	journal          []wire.JournalEntry
	skipOutput       uint64
	skipTraceSamples uint64
	image            []byte
	resumed          bool
}

// session runs one scenario for the connection. The calling goroutine owns
// the entire simulation; the client only ever observes framed output.
// traceZ selects the negotiated trace encoding for StreamTrace requests;
// snap permits SnapSave/SnapRestore answers to prompts; cluster permits
// drain-time migration hand-offs.
//
// Resume (req.resumed) leans entirely on determinism: the scenario is
// re-run from its template (or cycle 0), journal entries answer the prompts
// the original session already answered, the first skipOutput bytes — which
// replay reproduces exactly — are discarded, and the session goes live at
// precisely the byte the peer was owed next.
func (s *Server) session(conn net.Conn, req sessionReq, traceZ, snap, cluster bool) error {
	if open := s.c.sessionsOpen.Add(1); open > int64(s.cfg.MaxSessions) {
		s.c.sessionsOpen.Add(-1)
		s.c.sessionsRejected.Add(1)
		return s.send(conn, &wire.Error{Code: wire.CodeBusy, Text: "session limit reached"})
	}
	defer s.c.sessionsOpen.Add(-1)
	s.c.sessionsTotal.Add(1)

	if req.spec.Seconds > s.cfg.MaxSimSeconds {
		return s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
			Text: fmt.Sprintf("simulated duration %.1fs exceeds server limit %.1fs",
				req.spec.Seconds, s.cfg.MaxSimSeconds)})
	}
	if err := scenario.Validate(req.spec); err != nil {
		return s.send(conn, &wire.Error{Code: wire.CodeBadRequest, Text: err.Error()})
	}

	if req.resumed {
		s.c.sessionsResumed.Add(1)
		s.c.migrateBytesIn.Add(int64(len(req.image)))
		if len(req.image) > 0 && s.pool != nil {
			// Adopt the origin's template image so the replay warm-forks
			// instead of re-simulating the charge phase. A bad image is not
			// fatal — a cold replay is byte-identical, just slower.
			if tmpl, err := scenario.UnmarshalTemplate(req.image); err == nil && tmpl.Usable(req.spec) {
				s.pool.Install(tmpl)
			} else {
				s.logf("conn %s: resume image rejected (%v); replaying cold", conn.RemoteAddr(), err)
			}
		}
	}

	sw := &streamWriter{s: s, conn: conn}
	var out io.Writer = sw
	if req.skipOutput > 0 {
		out = &skipWriter{w: sw, n: req.skipOutput, c: &s.c}
	}

	migrated := false
	replay := req.journal
	var prompt scenario.PromptFunc
	if req.spec.Interactive && req.spec.Script == "" {
		prompt = func() (string, bool) {
			// Replay first: answers the original session already consumed,
			// served without touching the network.
			if len(replay) > 0 {
				j := replay[0]
				replay = replay[1:]
				switch j.Kind {
				case wire.JournalLine:
					return j.Line, true
				case wire.JournalSnapSave:
					return "snap", true
				case wire.JournalSnapRestore:
					return "restore", true
				default: // wire.JournalEOF
					return "", false
				}
			}
			if migrated {
				// The hand-off happened at an earlier prompt; refuse to
				// interact so the rig finishes silently.
				return "", false
			}
			// Drain hand-off: a cluster peer gets a SessMigrate in place of
			// the next Prompt — always between commands, never in the middle
			// of one, so the in-flight answer's output is already flushed.
			if cluster && s.isDraining() {
				s.migrateOut(conn, req.spec, sw)
				migrated = true
				return "", false
			}
			if sw.flush() != nil {
				return "", false
			}
			if s.send(conn, &wire.Prompt{}) != nil {
				return "", false
			}
			m, err := s.recv(conn, s.cfg.IdleTimeout)
			if err != nil {
				if isTimeout(err) {
					s.c.idleReaped.Add(1)
					s.send(conn, &wire.Error{Code: wire.CodeIdle, Text: "idle timeout: session reaped"})
					s.logf("conn %s: reaped idle session", conn.RemoteAddr())
				}
				sw.fail(err)
				return "", false
			}
			switch cmd := m.(type) {
			case *wire.Command:
				if cmd.EOF {
					return "", false
				}
				return cmd.Line, true
			case *wire.SnapSave, *wire.SnapRestore:
				// Remote time-travel rides the console's snap/restore
				// machinery: the frame stands in for the command line.
				if !snap {
					s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
						Text: "snapshot capability was not negotiated"})
					return "", false
				}
				if _, ok := m.(*wire.SnapSave); ok {
					return "snap", true
				}
				return "restore", true
			default:
				return "", false
			}
		}
	}

	run := scenario.Run
	if s.pool != nil {
		run = s.pool.Run
	}
	res, err := run(req.spec, out, prompt)
	s.c.commandsServed.Add(int64(res.Commands))
	s.c.simCycles.Add(int64(res.SimCycles))
	s.c.scriptErrors.Add(int64(res.ScriptErrors))
	if migrated {
		// The peer owns the session's continuation now: no trace stream, no
		// Done. Close the connection so the hand-off is unambiguous.
		return errMigrated
	}
	if ferr := sw.flush(); ferr != nil {
		return ferr
	}
	if err != nil {
		return s.send(conn, &wire.Error{Code: wire.CodeRunFailed, Text: err.Error()})
	}
	if req.streamTrace && res.Vcap != nil {
		if err := s.streamTrace(conn, res.Vcap, traceZ, req.skipTraceSamples); err != nil {
			return err
		}
	}
	return s.send(conn, &wire.Done{
		Exit:         int32(res.ExitCode),
		Halted:       res.Run.Halted,
		SimCycles:    res.SimCycles,
		Commands:     uint32(res.Commands),
		ScriptErrors: uint32(res.ScriptErrors),
	})
}

// migrateOut hands the session to a cluster peer: flush what the peer is
// owed, send SessMigrate (with this server's template image for the spec
// family when one exists, so the destination can warm-fork the replay), and
// latch the output stream shut. The peer re-dispatches from its own journal
// — this side only has to get out of the way deterministically.
func (s *Server) migrateOut(conn net.Conn, spec scenario.Spec, sw *streamWriter) {
	if sw.flush() != nil {
		return
	}
	var img []byte
	if s.pool != nil {
		if tmpl := s.pool.Template(spec); tmpl != nil && tmpl.Usable(spec) {
			if b, err := tmpl.Marshal(); err == nil && len(b) <= wire.MaxFrame-128 {
				img = b
			}
		}
	}
	if err := s.send(conn, &wire.SessMigrate{SpecHash: scenario.SpecHash(spec), Image: img}); err != nil {
		sw.fail(err)
		return
	}
	s.c.sessionsMigrated.Add(1)
	s.c.migrateBytesOut.Add(int64(len(img)))
	s.logf("conn %s: session migrated out (image %d bytes)", conn.RemoteAddr(), len(img))
	sw.fail(errMigrated)
}

// skipWriter discards the first n bytes of the session's output — the
// bytes the peer already received before a migration — and passes the rest
// through. Replay is deterministic, so byte n of the resumed run is exactly
// the byte the peer was owed next.
type skipWriter struct {
	w io.Writer
	n uint64
	c *counters
}

func (w *skipWriter) Write(p []byte) (int, error) {
	if w.n == 0 {
		return w.w.Write(p)
	}
	if uint64(len(p)) <= w.n {
		w.n -= uint64(len(p))
		w.c.resumeSkippedBytes.Add(int64(len(p)))
		return len(p), nil
	}
	w.c.resumeSkippedBytes.Add(int64(w.n))
	tail := p[w.n:]
	w.n = 0
	if _, err := w.w.Write(tail); err != nil {
		return 0, err
	}
	return len(p), nil
}

// chunkSamples is the trace-streaming chunk size: 512 samples keep a raw
// Trace frame around 8 KiB, far below MaxFrame, while amortizing framing
// overhead.
const chunkSamples = 512

// streamTrace streams a recorded trace window to the client in chunks,
// compressed when the TraceZ capability was negotiated. All buffers — the
// TracePoint chunk, the codec blob, and the frame itself — are reused
// across chunks, so the hot path is allocation-free after the first chunk;
// frames are batched through a buffered writer flushed once per chunk.
// skipSamples resumes a migrated trace stream: the first skipSamples
// samples — which the peer already holds as complete chunks — are not
// re-sent. Because chunk boundaries depend only on the sample index, a
// chunk-aligned offset reproduces the remaining frames byte-identically.
func (s *Server) streamTrace(conn net.Conn, series *trace.Series, traceZ bool, skipSamples uint64) error {
	samples := series.Samples
	start := 0
	if skipSamples > 0 {
		if skipSamples > uint64(len(samples)) ||
			(skipSamples%chunkSamples != 0 && skipSamples != uint64(len(samples))) {
			return fmt.Errorf("server: trace resume offset %d is not a chunk boundary of %d samples",
				skipSamples, len(samples))
		}
		start = int(skipSamples)
	}
	// The buffered writer sits on a deadlineWriter, not the bare conn: one
	// Flush can span several underlying writes (and under TLS, several
	// records), and each must earn a fresh deadline. Arming a single
	// absolute deadline around the whole chunked send — the old shape —
	// spuriously times out a reader that drains steadily but slowly.
	bw := bufio.NewWriterSize(&deadlineWriter{conn: conn, d: s.cfg.WriteTimeout}, 32<<10)
	pts := make([]wire.TracePoint, 0, chunkSamples)
	var (
		enc   tracecodec.Encoder
		blob  []byte
		frame []byte
	)
	for i := start; i < len(samples); i += chunkSamples {
		end := i + chunkSamples
		if end > len(samples) {
			end = len(samples)
		}
		pts = pts[:0]
		for _, sm := range samples[i:end] {
			pts = append(pts, wire.TracePoint{At: uint64(sm.At), V: sm.V})
		}
		var err error
		if traceZ {
			blob = enc.Encode(blob[:0], pts)
			frame, err = wire.AppendMsg(frame[:0], &wire.TraceZ{
				Name:  series.Name,
				Unit:  series.Unit,
				Count: uint32(len(pts)),
				Data:  blob,
			}, 0)
		} else {
			frame, err = wire.AppendMsg(frame[:0], &wire.Trace{
				Name:    series.Name,
				Unit:    series.Unit,
				Samples: pts,
			}, 0)
		}
		if err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		s.c.traceBytes.Add(int64(len(frame)))
		s.c.traceSamples.Add(int64(len(pts)))
	}
	// The chunked send is over: clear the conn's write deadline so the
	// last chunk's absolute deadline cannot leak onto a later write path
	// that touches the conn directly.
	conn.SetWriteDeadline(time.Time{})
	return nil
}

// streamWriter frames a session's output stream back to the client,
// coalescing small writes. A peer failure latches: the simulation keeps
// running to completion, later output is discarded, and the session ends
// with the connection torn down instead of a Done frame.
type streamWriter struct {
	s    *Server
	conn net.Conn
	buf  []byte
	err  error
}

// flushThreshold keeps frames reasonably sized without chattering a frame
// per fmt.Fprintf.
const flushThreshold = 4096

func (w *streamWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return len(p), nil // discard; the sim must still finish
	}
	w.buf = append(w.buf, p...)
	if len(w.buf) >= flushThreshold {
		w.flush()
	}
	return len(p), nil
}

func (w *streamWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	data := w.buf
	w.buf = nil
	if err := w.s.send(w.conn, &wire.Output{Data: data}); err != nil {
		w.fail(err)
		return err
	}
	w.s.c.bytesStreamed.Add(int64(len(data)))
	return nil
}

func (w *streamWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}
