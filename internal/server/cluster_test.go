package server_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/wire"
)

// interactiveSpec is the interactive scenario the migration tests drive.
func interactiveSpec() scenario.Spec {
	return scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Interactive: true}
}

// interactiveGolden runs the spec locally, answering prompts from cmds and
// EOF after, returning the byte-exact output a remote session must match.
func interactiveGolden(t *testing.T, spec scenario.Spec, cmds []string) string {
	t.Helper()
	var buf bytes.Buffer
	i := 0
	_, err := scenario.Run(spec, &buf, func() (string, bool) {
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return buf.String()
}

// dialCluster opens a raw wire connection negotiating the given caps.
func dialCluster(t *testing.T, addr string, caps byte) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	if err := wire.WriteMsgFlags(conn, &wire.Hello{Version: wire.Version, Client: "edbd-gw/test"}, caps); err != nil {
		t.Fatalf("hello: %v", err)
	}
	m, flags, err := wire.ReadMsgFlags(conn)
	if err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if _, ok := m.(*wire.Welcome); !ok {
		t.Fatalf("want Welcome, got %T", m)
	}
	if flags&caps != caps {
		t.Fatalf("server granted caps %#02x, offered %#02x", flags, caps)
	}
	return conn
}

// driveUntilPrompt reads frames into out until a Prompt arrives; any other
// terminal frame fails the test.
func driveUntilPrompt(t *testing.T, conn net.Conn, out *bytes.Buffer) {
	t.Helper()
	for {
		m, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch fm := m.(type) {
		case *wire.Output:
			out.Write(fm.Data)
		case *wire.Prompt:
			return
		default:
			t.Fatalf("unexpected frame %T before prompt", m)
		}
	}
}

// finishSession answers remaining prompts from cmds (EOF after), reading
// output until Done.
func finishSession(t *testing.T, conn net.Conn, out *bytes.Buffer, cmds []string) *wire.Done {
	t.Helper()
	i := 0
	for {
		m, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch fm := m.(type) {
		case *wire.Output:
			out.Write(fm.Data)
		case *wire.Prompt:
			var answer wire.Msg = &wire.Command{EOF: true}
			if i < len(cmds) {
				answer = &wire.Command{Line: cmds[i]}
				i++
			}
			if err := wire.WriteMsg(conn, answer); err != nil {
				t.Fatalf("answer: %v", err)
			}
		case *wire.Done:
			return fm
		default:
			t.Fatalf("unexpected frame %T", m)
		}
	}
}

// TestSessResumeFailoverMatchesLocal is the failover half of live
// migration: a session abandoned mid-script (its backend "died") is resumed
// on a fresh connection from its journal, and the concatenated output the
// two connections produced is byte-identical to an unmigrated local run.
func TestSessResumeFailoverMatchesLocal(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	spec := interactiveSpec()
	golden := interactiveGolden(t, spec, []string{"vcap", "status", "halt"})

	// Leg 1: answer the first prompt, abandon at the second.
	conn1 := dialCluster(t, addr, wire.FlagCluster)
	if err := wire.WriteMsg(conn1, &wire.Run{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	driveUntilPrompt(t, conn1, &buf1)
	if err := wire.WriteMsg(conn1, &wire.Command{Line: "vcap"}); err != nil {
		t.Fatal(err)
	}
	driveUntilPrompt(t, conn1, &buf1)
	conn1.Close() // backend's client vanishes mid-session

	// Leg 2: re-dispatch from the journal; output before the cut is skipped.
	conn2 := dialCluster(t, addr, wire.FlagCluster)
	if err := wire.WriteMsg(conn2, &wire.SessResume{
		Spec:       spec,
		SpecHash:   scenario.SpecHash(spec),
		SkipOutput: uint64(buf1.Len()),
		Journal:    []wire.JournalEntry{{Kind: wire.JournalLine, Line: "vcap"}},
	}); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	finishSession(t, conn2, &buf2, []string{"status", "halt"})

	if got := buf1.String() + buf2.String(); got != golden {
		t.Fatalf("migrated output differs from local:\n--- local ---\n%s\n--- migrated ---\n%s", golden, got)
	}
	m := srv.Metrics()
	if m.SessionsResumed != 1 {
		t.Fatalf("want 1 resumed session, got %+v", m)
	}
	if m.ResumeSkippedBytes != int64(buf1.Len()) {
		t.Fatalf("want %d skipped bytes, got %d", buf1.Len(), m.ResumeSkippedBytes)
	}
}

// TestDrainMigratesSessionAcrossServers is the graceful half: a draining
// backend hands its interactive session off with SessMigrate between
// commands; replaying the journal on a second server continues it with
// byte-identical output, and the drained backend shuts down losing nothing.
func TestDrainMigratesSessionAcrossServers(t *testing.T) {
	srvA, addrA := startServer(t, server.Config{})
	srvB, addrB := startServer(t, server.Config{})
	spec := interactiveSpec()
	golden := interactiveGolden(t, spec, []string{"vcap", "status", "halt"})

	conn1 := dialCluster(t, addrA, wire.FlagCluster)
	if err := wire.WriteMsg(conn1, &wire.Run{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	driveUntilPrompt(t, conn1, &buf1)

	// Drain A while the client holds the prompt. The in-flight answer must
	// still be served; the hand-off replaces the *next* prompt.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srvA.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let the drain flag latch
	if err := wire.WriteMsg(conn1, &wire.Command{Line: "vcap"}); err != nil {
		t.Fatal(err)
	}

	var mig *wire.SessMigrate
	for mig == nil {
		m, err := wire.ReadMsg(conn1)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch fm := m.(type) {
		case *wire.Output:
			buf1.Write(fm.Data)
		case *wire.SessMigrate:
			mig = fm
		default:
			t.Fatalf("unexpected frame %T while draining", m)
		}
	}
	if mig.SpecHash != scenario.SpecHash(spec) {
		t.Fatalf("migrate hash %#x, want %#x", mig.SpecHash, scenario.SpecHash(spec))
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Kill the drained backend outright; the session must survive on B.
	conn2 := dialCluster(t, addrB, wire.FlagCluster)
	if err := wire.WriteMsg(conn2, &wire.SessResume{
		Spec:       spec,
		SpecHash:   scenario.SpecHash(spec),
		SkipOutput: uint64(buf1.Len()),
		Journal:    []wire.JournalEntry{{Kind: wire.JournalLine, Line: "vcap"}},
		Image:      mig.Image,
	}); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	finishSession(t, conn2, &buf2, []string{"status", "halt"})

	if got := buf1.String() + buf2.String(); got != golden {
		t.Fatalf("drained migration output differs from local:\n--- local ---\n%s\n--- migrated ---\n%s", golden, got)
	}
	if m := srvA.Metrics(); m.SessionsMigrated != 1 {
		t.Fatalf("origin: want 1 migrated session, got %+v", m)
	}
	if m := srvB.Metrics(); m.SessionsResumed != 1 {
		t.Fatalf("destination: want 1 resumed session, got %+v", m)
	}
}

// TestSessResumeMidTraceStream resumes a session whose connection died in
// the middle of its TraceZ stream: the resumed connection re-streams from
// the first chunk the peer is missing, and every resumed frame is
// byte-identical to the frames of an unmigrated run.
func TestSessResumeMidTraceStream(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42,
		Script: "vcap;status;halt", Trace: true}

	// Golden leg: one uninterrupted remote run, raw frame bytes recorded.
	conn := dialCluster(t, addr, wire.FlagCluster|wire.FlagTraceZ)
	if err := wire.WriteMsg(conn, &wire.Run{Spec: spec, StreamTrace: true}); err != nil {
		t.Fatal(err)
	}
	var goldenOut bytes.Buffer
	var goldenFrames [][]byte
	var goldenDone *wire.Done
	for goldenDone == nil {
		m, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("golden read: %v", err)
		}
		switch fm := m.(type) {
		case *wire.Output:
			goldenOut.Write(fm.Data)
		case *wire.TraceZ:
			fr, err := wire.EncodeMsg(fm)
			if err != nil {
				t.Fatal(err)
			}
			goldenFrames = append(goldenFrames, fr)
		case *wire.Done:
			goldenDone = fm
		default:
			t.Fatalf("unexpected frame %T", m)
		}
	}
	if len(goldenFrames) < 2 {
		t.Fatalf("trace too short to cut mid-stream: %d frames", len(goldenFrames))
	}

	// Migrated leg 1: same run, connection cut after the first trace chunk.
	conn1 := dialCluster(t, addr, wire.FlagCluster|wire.FlagTraceZ)
	if err := wire.WriteMsg(conn1, &wire.Run{Spec: spec, StreamTrace: true}); err != nil {
		t.Fatal(err)
	}
	var out1 bytes.Buffer
	var gotFrames [][]byte
	var skipSamples uint64
	for len(gotFrames) == 0 {
		m, err := wire.ReadMsg(conn1)
		if err != nil {
			t.Fatalf("leg1 read: %v", err)
		}
		switch fm := m.(type) {
		case *wire.Output:
			out1.Write(fm.Data)
		case *wire.TraceZ:
			fr, err := wire.EncodeMsg(fm)
			if err != nil {
				t.Fatal(err)
			}
			gotFrames = append(gotFrames, fr)
			skipSamples += uint64(fm.Count)
		default:
			t.Fatalf("unexpected frame %T", m)
		}
	}
	conn1.Close()

	// Migrated leg 2: resume past the chunks the peer already holds.
	conn2 := dialCluster(t, addr, wire.FlagCluster|wire.FlagTraceZ)
	if err := wire.WriteMsg(conn2, &wire.SessResume{
		Spec:             spec,
		StreamTrace:      true,
		SpecHash:         scenario.SpecHash(spec),
		SkipOutput:       uint64(out1.Len()),
		SkipTraceSamples: skipSamples,
	}); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	var done2 *wire.Done
	for done2 == nil {
		m, err := wire.ReadMsg(conn2)
		if err != nil {
			t.Fatalf("leg2 read: %v", err)
		}
		switch fm := m.(type) {
		case *wire.Output:
			out2.Write(fm.Data)
		case *wire.TraceZ:
			fr, err := wire.EncodeMsg(fm)
			if err != nil {
				t.Fatal(err)
			}
			gotFrames = append(gotFrames, fr)
		case *wire.Done:
			done2 = fm
		default:
			t.Fatalf("unexpected frame %T", m)
		}
	}

	if got := out1.String() + out2.String(); got != goldenOut.String() {
		t.Fatalf("resumed output differs:\n--- golden ---\n%s\n--- resumed ---\n%s", goldenOut.String(), got)
	}
	if len(gotFrames) != len(goldenFrames) {
		t.Fatalf("resumed stream has %d trace frames, golden %d", len(gotFrames), len(goldenFrames))
	}
	for i := range goldenFrames {
		if !bytes.Equal(gotFrames[i], goldenFrames[i]) {
			t.Fatalf("trace frame %d not byte-identical after resume", i)
		}
	}
	if *done2 != *goldenDone {
		t.Fatalf("done mismatch: golden %+v resumed %+v", goldenDone, done2)
	}
}

// TestDrainOrderDeterministic is the drain-order regression test: a drain
// must cut idle connections immediately while a busy connection — even one
// whose client is still composing the answer to an open prompt — is served
// to completion.
func TestDrainOrderDeterministic(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	spec := interactiveSpec()
	golden := interactiveGolden(t, spec, []string{"halt"})

	// Busy connection: no cluster capability, parked at its first prompt.
	busy := dialCluster(t, addr, 0)
	if err := wire.WriteMsg(busy, &wire.Run{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	driveUntilPrompt(t, busy, &out)

	// Idle connection: handshake done, no request in flight.
	idle := dialCluster(t, addr, 0)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	// The idle connection dies promptly, well before the busy one finishes.
	idle.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := wire.ReadMsg(idle); err == nil {
		t.Fatal("idle connection survived the drain")
	}

	// The busy connection answers its open prompt and is served in full —
	// without cluster capability a drain never migrates, it waits.
	if err := wire.WriteMsg(busy, &wire.Command{Line: "halt"}); err != nil {
		t.Fatal(err)
	}
	finishSession(t, busy, &out, nil)
	if out.String() != golden {
		t.Fatalf("drained session output differs from local:\n--- local ---\n%s\n--- drained ---\n%s", golden, out.String())
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestStatProbe: cluster peers can probe load and drain state.
func TestStatProbe(t *testing.T) {
	srv, addr := startServer(t, server.Config{MaxSessions: 7})
	conn := dialCluster(t, addr, wire.FlagCluster)
	if err := wire.WriteMsg(conn, &wire.Stat{}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := m.(*wire.StatReply)
	if !ok {
		t.Fatalf("want StatReply, got %T", m)
	}
	if sr.Sessions != 0 || sr.MaxSessions != 7 || sr.Draining {
		t.Fatalf("unexpected stat %+v", sr)
	}
	if srv.Metrics().StatProbes != 1 {
		t.Fatal("stat probe not counted")
	}
}

// TestClusterRefusedWithoutCap: Stat and SessResume require the negotiated
// capability; a DisableCluster server never grants it.
func TestClusterRefusedWithoutCap(t *testing.T) {
	_, addr := startServer(t, server.Config{DisableCluster: true})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := wire.WriteMsgFlags(conn, &wire.Hello{Version: wire.Version, Client: "edbd-gw/test"}, wire.FlagCluster); err != nil {
		t.Fatal(err)
	}
	_, flags, err := wire.ReadMsgFlags(conn)
	if err != nil {
		t.Fatal(err)
	}
	if flags&wire.FlagCluster != 0 {
		t.Fatal("DisableCluster server granted FlagCluster")
	}
	if err := wire.WriteMsg(conn, &wire.Stat{}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := m.(*wire.Error); !ok || e.Code != wire.CodeBadRequest {
		t.Fatalf("want Error{CodeBadRequest}, got %#v", m)
	}
}
