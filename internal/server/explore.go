package server

import (
	"errors"
	"io"
	"net"

	"repro/internal/explore"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// exploreSession serves one distributed-exploration executor: the backend
// end of explore.Executor over the wire. It builds a local rig pool for the
// requested firmware, answers with the post-flash baseline hash (the
// coordinator cross-checks it against every other backend's), then expands
// frontier batches and filters dedup chunks until the coordinator hangs up.
// Requests on one connection are strictly serial, mirroring the
// coordinator's per-executor request/response pairing.
func (s *Server) exploreSession(conn net.Conn, req *wire.Explore) error {
	if err := scenario.Validate(req.Spec); err != nil {
		return s.send(conn, &wire.Error{Code: wire.CodeBadRequest, Text: err.Error()})
	}
	cfg, err := scenario.ExploreConfig(req.Spec, req.Ex)
	if err != nil {
		return s.send(conn, &wire.Error{Code: wire.CodeBadRequest, Text: err.Error()})
	}
	ex, err := explore.NewLocalExecutor(cfg)
	if err != nil {
		return s.send(conn, &wire.Error{Code: wire.CodeRunFailed, Text: err.Error()})
	}
	defer ex.Close()
	s.c.exploreSessions.Add(1)
	if err := s.send(conn, &wire.ExploreResult{Kind: wire.ExploreHello, BaseHash: ex.BaseHash()}); err != nil {
		return err
	}
	for {
		m, err := s.recv(conn, s.cfg.IdleTimeout)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // the coordinator hung up: search finished
			}
			if isTimeout(err) {
				s.c.idleReaped.Add(1)
				s.send(conn, &wire.Error{Code: wire.CodeIdle, Text: "idle timeout: explore session reaped"})
			}
			return err
		}
		shard, ok := m.(*wire.ExploreShard)
		if !ok {
			return s.send(conn, &wire.Error{Code: wire.CodeBadRequest,
				Text: "expected ExploreShard"})
		}
		switch shard.Kind {
		case wire.ExploreExpand:
			states := wire.UnpackStates(shard.States)
			exps, err := ex.Expand(states)
			if err != nil {
				return s.send(conn, &wire.Error{Code: wire.CodeRunFailed, Text: err.Error()})
			}
			s.c.exploreBatches.Add(1)
			s.c.exploreStates.Add(int64(len(states)))
			// One result frame per state bounds frame sizes to a single
			// state's children; the coordinator reassembles by Index.
			for i := range exps {
				if err := s.send(conn, wire.PackExpansion(shard.Seq, i, &exps[i])); err != nil {
					return err
				}
			}
		case wire.ExploreDedup:
			fresh, err := ex.Dedup(int(shard.Part), shard.Hashes)
			if err != nil {
				return s.send(conn, &wire.Error{Code: wire.CodeRunFailed, Text: err.Error()})
			}
			s.c.exploreDedupQueries.Add(int64(len(shard.Hashes)))
			if err := s.send(conn, &wire.ExploreResult{Kind: wire.ExploreFresh, Seq: shard.Seq, Fresh: fresh}); err != nil {
				return err
			}
		}
	}
}
