package server_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/tlstest"
	"repro/internal/wire"
)

const testToken = "correct-horse-battery"

// testTLS generates one ephemeral keypair per test and returns the server
// and client configs built from it.
func testTLS(t *testing.T) (certPEM, keyPEM []byte) {
	t.Helper()
	certPEM, keyPEM, err := tlstest.GenerateKeypair([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatalf("generate keypair: %v", err)
	}
	return certPEM, keyPEM
}

// TestAuthMatrix covers the token-auth decision table — token required ×
// token offered × token correct — in both plaintext and TLS transports,
// asserting the exact Error frame for every rejection and that rejected
// handshakes never allocate session state.
func TestAuthMatrix(t *testing.T) {
	certPEM, keyPEM := testTLS(t)
	srvTLS, err := tlstest.ServerConfig(certPEM, keyPEM, nil)
	if err != nil {
		t.Fatalf("server tls: %v", err)
	}
	cliTLS, err := tlstest.ClientConfig(certPEM, nil, nil)
	if err != nil {
		t.Fatalf("client tls: %v", err)
	}

	rows := []struct {
		name       string
		require    bool
		offer      string // token the client presents; "" = no FlagAuth at all
		wantErr    string // expected Error text; "" = handshake accepted
		wantAuthed bool
	}{
		{"open-anonymous", false, "", "", false},
		{"open-good-token", false, testToken, "", true},
		{"open-bad-token", false, "wrong", "authentication failed: bad token", false},
		{"required-anonymous", true, "", "authentication required: offer FlagAuth with a token", false},
		{"required-good-token", true, testToken, "", true},
		{"required-bad-token", true, "wrong", "authentication failed: bad token", false},
	}
	for _, useTLS := range []bool{false, true} {
		transport := "plaintext"
		if useTLS {
			transport = "tls"
		}
		for _, row := range rows {
			t.Run(transport+"/"+row.name, func(t *testing.T) {
				cfg := server.Config{AuthToken: testToken, RequireAuth: row.require}
				opts := client.Options{AuthToken: row.offer}
				if useTLS {
					cfg.TLS = srvTLS
					opts.TLS = cliTLS
				}
				srv, addr := startServer(t, cfg)

				cl, err := client.Dial(addr, opts)
				if row.wantErr != "" {
					var werr *wire.Error
					if !errors.As(err, &werr) {
						t.Fatalf("want a wire.Error, got %v", err)
					}
					if werr.Code != wire.CodeAuth || werr.Text != row.wantErr {
						t.Fatalf("got Error{code %d, %q}, want Error{code %d, %q}",
							werr.Code, werr.Text, wire.CodeAuth, row.wantErr)
					}
					m := srv.Metrics()
					if m.AuthFailures != 1 || m.AuthHandshakes != 0 {
						t.Fatalf("auth counters after reject: %+v", m)
					}
					if m.SessionsTotal != 0 || m.SessionsOpen != 0 {
						t.Fatalf("a rejected handshake must not allocate session state: %+v", m)
					}
					return
				}
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				defer cl.Close()
				if cl.Authenticated() != row.wantAuthed {
					t.Fatalf("Authenticated() = %v, want %v", cl.Authenticated(), row.wantAuthed)
				}
				// The session itself behaves identically regardless of
				// transport or auth: byte-identical scripted output.
				spec := testSpec(42)
				golden, _ := localGolden(t, spec)
				var buf bytes.Buffer
				st, err := cl.Run(spec, &buf, nil)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if st.Exit != 0 || buf.String() != golden {
					t.Fatalf("authenticated session output differs from local golden (exit %d)", st.Exit)
				}
				m := srv.Metrics()
				if row.wantAuthed && m.AuthHandshakes != 1 {
					t.Fatalf("want 1 authenticated handshake, got %+v", m)
				}
				if m.AuthFailures != 0 {
					t.Fatalf("accepted handshake counted a failure: %+v", m)
				}
			})
		}
	}
}

// TestRequireAuthWithoutServerToken: RequireAuth with no configured token
// fails closed — every client is rejected with a text that tells the
// operator what is misconfigured, whether or not the client offered a
// token.
func TestRequireAuthWithoutServerToken(t *testing.T) {
	srv, addr := startServer(t, server.Config{RequireAuth: true})
	const want = "authentication required but no token is configured server-side"
	for _, offer := range []string{"", "some-token"} {
		_, err := client.Dial(addr, client.Options{AuthToken: offer})
		var werr *wire.Error
		if !errors.As(err, &werr) || werr.Code != wire.CodeAuth || werr.Text != want {
			t.Fatalf("offer %q: got %v, want Error{code %d, %q}", offer, err, wire.CodeAuth, want)
		}
	}
	if m := srv.Metrics(); m.AuthFailures != 2 || m.SessionsTotal != 0 {
		t.Fatalf("metrics after fail-closed rejects: %+v", m)
	}
}

// TestLegacyClientBaselineGolden pins the compatibility guarantee at the
// byte level: a pre-auth client (zero capability flags, no token field)
// against a token-armed server sees the exact baseline protocol — the
// Welcome frame is byte-identical to what the seed server sent, and the
// scripted session output matches the local run.
func TestLegacyClientBaselineGolden(t *testing.T) {
	// Token armed but not required: exactly the rolling-upgrade posture.
	_, addr := startServer(t, server.Config{AuthToken: testToken})
	spec := testSpec(42)
	golden, _ := localGolden(t, spec)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	// The legacy Hello, written out longhand: type, zero flags, length 9,
	// version 1, client name "edb". Byte-for-byte what a pre-auth build
	// emits — if the Hello encoding drifted this would catch it too.
	legacyHello := []byte{
		wire.TypeHello, 0x00, 0x00, 0x00, 0x00, 0x09,
		0x00, 0x01,
		0x00, 0x00, 0x00, 0x03, 'e', 'd', 'b',
	}
	if enc, err := wire.EncodeMsg(&wire.Hello{Version: wire.Version, Client: "edb"}); err != nil || !bytes.Equal(enc, legacyHello) {
		t.Fatalf("Hello encoding drifted from the legacy bytes: %x vs %x (err %v)", enc, legacyHello, err)
	}
	if _, err := conn.Write(legacyHello); err != nil {
		t.Fatalf("write hello: %v", err)
	}

	// The Welcome must be the exact baseline bytes: zero flags, version 1,
	// server name "edbd". FlagAuth existing server-side must not leak.
	wantWelcome := []byte{
		wire.TypeWelcome, 0x00, 0x00, 0x00, 0x00, 0x0A,
		0x00, 0x01,
		0x00, 0x00, 0x00, 0x04, 'e', 'd', 'b', 'd',
	}
	gotWelcome := make([]byte, len(wantWelcome))
	if _, err := io.ReadFull(conn, gotWelcome); err != nil {
		t.Fatalf("read welcome: %v", err)
	}
	if !bytes.Equal(gotWelcome, wantWelcome) {
		t.Fatalf("Welcome bytes changed for a legacy client:\n got %x\nwant %x", gotWelcome, wantWelcome)
	}

	// A full scripted session over the same connection, asserting zero
	// flags on every frame and byte-identical console output.
	if err := wire.WriteMsg(conn, &wire.Run{Spec: spec}); err != nil {
		t.Fatalf("run: %v", err)
	}
	var out bytes.Buffer
	for {
		m, flags, err := wire.ReadMsgFlags(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if flags != 0 {
			t.Fatalf("server set flags %#02x on a %T frame to a legacy client", flags, m)
		}
		switch f := m.(type) {
		case *wire.Output:
			out.Write(f.Data)
		case *wire.Done:
			if f.Exit != 0 {
				t.Fatalf("exit %d", f.Exit)
			}
			if out.String() != golden {
				t.Fatalf("legacy-client output differs from local golden:\n--- local ---\n%s\n--- remote ---\n%s", golden, out.String())
			}
			return
		default:
			t.Fatalf("unexpected frame %T in a baseline scripted session", m)
		}
	}
}

// TestUnknownCapabilityDownNegotiated: a future client advertising a
// capability bit this build does not know is down-negotiated, not
// disconnected — the unknown bit never echoes back, the session works, and
// the daemon counts the sighting.
func TestUnknownCapabilityDownNegotiated(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	const future byte = 0x80
	if err := wire.WriteMsgFlags(conn, &wire.Hello{Version: wire.Version, Client: "edb/future"}, future|wire.FlagTraceZ); err != nil {
		t.Fatalf("hello: %v", err)
	}
	m, flags, err := wire.ReadMsgFlags(conn)
	if err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if _, ok := m.(*wire.Welcome); !ok {
		t.Fatalf("want Welcome, got %#v", m)
	}
	if flags != wire.FlagTraceZ {
		t.Fatalf("server echoed flags %#02x, want only %#02x (unknown bit masked)", flags, wire.FlagTraceZ)
	}
	if got := srv.Metrics().UnknownCapHellos; got != 1 {
		t.Fatalf("want 1 unknown-cap hello counted, got %d", got)
	}
	// The connection is fully usable afterwards.
	if err := wire.WriteMsg(conn, &wire.Ping{Token: 7}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if m, err := wire.ReadMsg(conn); err != nil {
		t.Fatalf("pong: %v", err)
	} else if pong, ok := m.(*wire.Pong); !ok || pong.Token != 7 {
		t.Fatalf("want Pong{7}, got %#v", m)
	}
}

// TestMutualTLS: with a client CA configured, certificate-less clients die
// in the TLS handshake (counted, never reaching the protocol) while
// certificate-bearing clients run byte-identical sessions.
func TestMutualTLS(t *testing.T) {
	certPEM, keyPEM := testTLS(t)
	srvTLS, err := tlstest.ServerConfig(certPEM, keyPEM, certPEM)
	if err != nil {
		t.Fatalf("server tls: %v", err)
	}
	srv, addr := startServer(t, server.Config{TLS: srvTLS})

	noCert, err := tlstest.ClientConfig(certPEM, nil, nil)
	if err != nil {
		t.Fatalf("client tls: %v", err)
	}
	if _, err := client.Dial(addr, client.Options{TLS: noCert}); err == nil {
		t.Fatal("mTLS server accepted a client without a certificate")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().TLSHandshakeFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("TLS handshake failure never counted: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	withCert, err := tlstest.ClientConfig(certPEM, certPEM, keyPEM)
	if err != nil {
		t.Fatalf("client tls with cert: %v", err)
	}
	cl, err := client.Dial(addr, client.Options{TLS: withCert})
	if err != nil {
		t.Fatalf("mTLS dial: %v", err)
	}
	defer cl.Close()
	spec := testSpec(42)
	golden, _ := localGolden(t, spec)
	var buf bytes.Buffer
	st, err := cl.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Exit != 0 || buf.String() != golden {
		t.Fatalf("mTLS session output differs from local golden (exit %d)", st.Exit)
	}
}

// TestTLSAuthRemoteMatchesLocal is the issue's acceptance criterion in one
// test: a TLS + token-authenticated remote scripted session, with trace
// streaming and the compressed codec negotiated, is byte-identical to the
// local run.
func TestTLSAuthRemoteMatchesLocal(t *testing.T) {
	certPEM, keyPEM := testTLS(t)
	srvTLS, err := tlstest.ServerConfig(certPEM, keyPEM, nil)
	if err != nil {
		t.Fatalf("server tls: %v", err)
	}
	cliTLS, err := tlstest.ClientConfig(certPEM, nil, nil)
	if err != nil {
		t.Fatalf("client tls: %v", err)
	}
	_, addr := startServer(t, server.Config{TLS: srvTLS, AuthToken: testToken, RequireAuth: true})

	spec := traceSpec(42)
	golden, res := localGolden(t, spec)

	cl, err := client.Dial(addr, client.Options{TLS: cliTLS, AuthToken: testToken})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if !cl.Authenticated() {
		t.Fatal("client should report an authenticated handshake")
	}
	if !cl.TraceZ() {
		t.Fatal("capability negotiation should survive the auth bit riding the same byte")
	}
	var buf bytes.Buffer
	var samples int
	cl.OnTrace = func(tr *wire.Trace) { samples += len(tr.Samples) }
	st, err := cl.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if buf.String() != golden {
		t.Fatalf("TLS+auth remote output differs from local:\n--- local ---\n%s\n--- remote ---\n%s", golden, buf.String())
	}
	if st.Exit != res.ExitCode {
		t.Fatalf("exit %d, local %d", st.Exit, res.ExitCode)
	}
	if res.Vcap == nil || samples != len(res.Vcap.Samples) {
		t.Fatalf("streamed %d trace samples over TLS, local window has %d", samples, len(res.Vcap.Samples))
	}
}

// TestSlowReaderTraceStream: a client that dawdles between frames of a
// trace stream, against a server whose WriteTimeout is shorter than the
// total transfer, still receives the full stream and a live connection
// afterwards — per-write progress deadlines, with no stale deadline left
// armed after the chunked send.
func TestSlowReaderTraceStream(t *testing.T) {
	_, addr := startServer(t, server.Config{WriteTimeout: 150 * time.Millisecond})
	spec := traceSpec(42)
	golden, res := localGolden(t, spec)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	if err := wire.WriteMsg(conn, &wire.Hello{Version: wire.Version, Client: "edb/slow"}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if _, err := wire.ReadMsg(conn); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if err := wire.WriteMsg(conn, &wire.Run{Spec: spec, StreamTrace: true}); err != nil {
		t.Fatalf("run: %v", err)
	}

	var out bytes.Buffer
	var samples int
	for {
		m, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch f := m.(type) {
		case *wire.Output:
			out.Write(f.Data)
		case *wire.Trace:
			samples += len(f.Samples)
			// Dawdle: with ~3 chunks this stretches the stream well past
			// the server's 150ms WriteTimeout.
			time.Sleep(120 * time.Millisecond)
		case *wire.Done:
			if f.Exit != 0 {
				t.Fatalf("exit %d", f.Exit)
			}
			if out.String() != golden {
				t.Fatal("slow-reader session output differs from local golden")
			}
			if samples != len(res.Vcap.Samples) {
				t.Fatalf("slow reader got %d samples, local window %d", samples, len(res.Vcap.Samples))
			}
			// The connection must still be healthy: no stale write
			// deadline from the chunked send may poison later frames.
			if err := wire.WriteMsg(conn, &wire.Ping{Token: 9}); err != nil {
				t.Fatalf("ping after stream: %v", err)
			}
			if m, err := wire.ReadMsg(conn); err != nil {
				t.Fatalf("pong after stream: %v", err)
			} else if pong, ok := m.(*wire.Pong); !ok || pong.Token != 9 {
				t.Fatalf("want Pong{9}, got %#v", m)
			}
			return
		default:
			t.Fatalf("unexpected frame %T", m)
		}
	}
}
