package server

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// These tests pin the deadlineWriter contract directly on a synchronous
// net.Pipe, where every Write blocks until the peer reads it — the
// deterministic stand-in for a TCP peer with full socket buffers.

// TestDeadlineWriterSlowReader: a reader that drains steadily but slowly
// must never be cut off, even when the whole transfer takes several times
// WriteTimeout. This is the regression test for the old trace-stream shape,
// which armed one absolute deadline around a chunked send and so bounded
// the transfer instead of per-write progress.
func TestDeadlineWriterSlowReader(t *testing.T) {
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()

	const (
		chunks    = 8
		chunkSize = 1024
		deadline  = 500 * time.Millisecond
		drainGap  = 100 * time.Millisecond // per-chunk reader delay; 8x ≈ 800ms total
	)
	readerDone := make(chan error, 1)
	go func() {
		buf := make([]byte, chunkSize)
		for i := 0; i < chunks; i++ {
			time.Sleep(drainGap)
			if _, err := io.ReadFull(cr, buf); err != nil {
				readerDone <- err
				return
			}
		}
		readerDone <- nil
	}()

	w := &deadlineWriter{conn: cw, d: deadline}
	start := time.Now()
	buf := make([]byte, chunkSize)
	for i := 0; i < chunks; i++ {
		if _, err := w.Write(buf); err != nil {
			t.Fatalf("write %d failed after %v: %v", i, time.Since(start), err)
		}
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
	if elapsed := time.Since(start); elapsed <= deadline {
		t.Fatalf("transfer finished in %v <= %v; too fast to prove the per-write deadline mattered", elapsed, deadline)
	}
}

// TestAbsoluteDeadlineSpuriouslyFails documents the bug deadlineWriter
// fixes: the same slow-but-draining reader against a single absolute
// deadline times out mid-transfer.
func TestAbsoluteDeadlineSpuriouslyFails(t *testing.T) {
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close()

	const (
		chunks    = 8
		chunkSize = 1024
		deadline  = 300 * time.Millisecond
		drainGap  = 100 * time.Millisecond
	)
	go func() {
		buf := make([]byte, chunkSize)
		for i := 0; i < chunks; i++ {
			time.Sleep(drainGap)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return
			}
		}
	}()

	cw.SetWriteDeadline(time.Now().Add(deadline))
	buf := make([]byte, chunkSize)
	var err error
	for i := 0; i < chunks && err == nil; i++ {
		_, err = cw.Write(buf)
	}
	if err == nil {
		t.Fatal("an absolute whole-transfer deadline should have cut the slow reader off")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}

// TestDeadlineWriterStuckReader: a peer that stops reading entirely times
// the write out within roughly one WriteTimeout instead of hanging the
// session goroutine forever.
func TestDeadlineWriterStuckReader(t *testing.T) {
	cw, cr := net.Pipe()
	defer cw.Close()
	defer cr.Close() // never read from

	const deadline = 100 * time.Millisecond
	w := &deadlineWriter{conn: cw, d: deadline}
	start := time.Now()
	_, err := w.Write(make([]byte, 1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("write to a stuck reader should time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~%v", elapsed, deadline)
	}
}
