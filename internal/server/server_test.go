package server_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/tracecodec"
	"repro/internal/wire"
)

// testSpec is the scripted scenario every daemon test runs: the linked-list
// app's keep-alive assert fires within the first simulated second, opening
// a session for the script.
func testSpec(seed int64) scenario.Spec {
	return scenario.Spec{
		App:     "linkedlist",
		Assert:  true,
		Seconds: 5,
		Seed:    seed,
		Script:  "vcap;status;halt",
	}
}

// startServer serves a fresh daemon on a loopback port.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, lis.Addr().String()
}

// localGolden runs the spec in-process and returns its output.
func localGolden(t *testing.T, spec scenario.Spec) (string, scenario.Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := scenario.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return buf.String(), res
}

// TestRemoteMatchesLocal is the determinism-over-the-wire guarantee: a
// scripted remote session's console output is byte-identical to the same
// script run locally.
func TestRemoteMatchesLocal(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	spec := testSpec(42)
	golden, res := localGolden(t, spec)

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	var buf bytes.Buffer
	st, err := cl.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if buf.String() != golden {
		t.Fatalf("remote output differs from local:\n--- local ---\n%s\n--- remote ---\n%s", golden, buf.String())
	}
	if st.Exit != res.ExitCode || st.Commands != res.Commands || st.Halted != res.Run.Halted {
		t.Fatalf("status mismatch: remote %+v vs local %+v", st, res)
	}
	if st.SimCycles == 0 {
		t.Fatal("status should report simulated cycles")
	}
}

// TestScriptErrorPropagates: a failing scripted command must surface as a
// non-zero exit through the daemon, so CI can detect failed scripts.
func TestScriptErrorPropagates(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	spec := testSpec(42)
	spec.Script = "bogus-command;halt"

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	var buf bytes.Buffer
	st, err := cl.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if st.Exit != 1 || st.ScriptErrors != 1 {
		t.Fatalf("want exit=1 scriptErrors=1, got %+v", st)
	}
	if !strings.Contains(buf.String(), "error: console: unknown command") {
		t.Fatalf("output should carry the command error, got:\n%s", buf.String())
	}
}

// TestConcurrentSessions64 drives 64 concurrent scripted sessions — all
// connections held open simultaneously — and checks every one produced
// byte-identical output to its local golden, with nothing rejected.
func TestConcurrentSessions64(t *testing.T) {
	const n = 64
	const goldenSeeds = 8
	srv, addr := startServer(t, server.Config{MaxConns: 2 * n, MaxSessions: n})

	goldens := make([]string, goldenSeeds)
	for i := range goldens {
		goldens[i], _ = localGolden(t, testSpec(42+int64(i)))
	}

	// Dial and handshake all clients first so the daemon really holds n
	// concurrent connections.
	clients := make([]*client.Client, n)
	for i := range clients {
		cl, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	if got := srv.Metrics().ConnsOpen; got != n {
		t.Fatalf("want %d open connections, got %d", n, got)
	}

	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	outs, err := parallel.Map(n, func(i int) (string, error) {
		var buf bytes.Buffer
		st, err := clients[i].Run(testSpec(42+int64(i%goldenSeeds)), &buf, nil)
		if err != nil {
			return "", err
		}
		if st.Exit != 0 {
			t.Errorf("session %d: exit %d", i, st.Exit)
		}
		return buf.String(), nil
	})
	if err != nil {
		t.Fatalf("sessions: %v", err)
	}
	for i, out := range outs {
		if out != goldens[i%goldenSeeds] {
			t.Errorf("session %d output differs from local golden (seed %d)", i, 42+i%goldenSeeds)
		}
	}

	m := srv.Metrics()
	if m.SessionsTotal != n || m.SessionsRejected != 0 || m.ConnsRejected != 0 {
		t.Fatalf("metrics after fan-out: %+v", m)
	}
	if m.SessionsOpen != 0 {
		t.Fatalf("sessions should all have closed, got %d open", m.SessionsOpen)
	}
	if m.CommandsServed != 3*n {
		t.Fatalf("want %d commands served, got %d", 3*n, m.CommandsServed)
	}
	if m.BytesStreamed == 0 || m.SimCycles == 0 {
		t.Fatalf("streaming metrics should be non-zero: %+v", m)
	}
}

// TestGracefulDrain: Shutdown lets in-flight sessions finish and their
// output stays byte-identical; afterwards new connections are refused.
func TestGracefulDrain(t *testing.T) {
	const n = 8
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(server.Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	addr := lis.Addr().String()

	golden, _ := localGolden(t, testSpec(42))

	// Hold the connections open, then race the sessions against Shutdown.
	clients := make([]*client.Client, n)
	for i := range clients {
		cl, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		clients[i] = cl
	}
	var wg sync.WaitGroup
	outs := make([]string, n)
	errs := make([]error, n)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			_, errs[i] = clients[i].Run(testSpec(42), &buf, nil)
			outs[i] = buf.String()
		}(i)
	}

	// Wait until every Run request has reached the daemon — a drain lets
	// started sessions finish, but (like any server) cannot save requests
	// still in flight on the network.
	for deadline := time.Now().Add(5 * time.Second); srv.Metrics().SessionsTotal < n; {
		if time.Now().After(deadline) {
			t.Fatalf("sessions never started: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain was not clean: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("session %d failed during drain: %v", i, errs[i])
		}
		if outs[i] != golden {
			t.Errorf("session %d output differs after drain", i)
		}
		clients[i].Close()
	}

	if _, err := client.Dial(addr, client.Options{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial after drain should fail")
	}
	if got := srv.Metrics().SessionsOpen; got != 0 {
		t.Fatalf("sessions open after drain: %d", got)
	}
}

// TestForcedDrain: a session stuck waiting on its client is force-closed
// when the drain budget expires.
func TestForcedDrain(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(server.Config{IdleTimeout: time.Minute})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	cl, err := client.Dial(lis.Addr().String(), client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	spec := testSpec(42)
	spec.Script = ""
	sess, err := cl.Start(spec, nil) // parked at a prompt, sending nothing
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from forced drain, got %v", err)
	}
	if err := <-serveDone; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	if _, err := sess.Exec("vcap"); err == nil {
		t.Fatal("session should be dead after forced drain")
	}
}

// TestVersionMismatch: a client speaking the wrong protocol version is
// rejected with CodeVersion.
func TestVersionMismatch(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteMsg(conn, &wire.Hello{Version: wire.Version + 7, Client: "time-traveler"}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	m, err := wire.ReadMsg(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	werr, ok := m.(*wire.Error)
	if !ok || werr.Code != wire.CodeVersion {
		t.Fatalf("want Error{CodeVersion}, got %#v", m)
	}
}

// TestConnLimit: connections beyond MaxConns are refused with CodeBusy.
func TestConnLimit(t *testing.T) {
	srv, addr := startServer(t, server.Config{MaxConns: 1})
	first, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	defer first.Close()

	_, err = client.Dial(addr, client.Options{})
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeBusy {
		t.Fatalf("want Error{CodeBusy}, got %v", err)
	}
	if got := srv.Metrics().ConnsRejected; got != 1 {
		t.Fatalf("want 1 rejected conn, got %d", got)
	}
}

// TestSessionLimit: sessions beyond MaxSessions are refused with CodeBusy
// while the connection itself survives.
func TestSessionLimit(t *testing.T) {
	srv, addr := startServer(t, server.Config{MaxSessions: 1})
	cl1, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer cl1.Close()
	spec := testSpec(42)
	spec.Script = ""
	sess, err := cl1.Start(spec, nil) // hold the only session slot open
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	cl2, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer cl2.Close()
	_, err = cl2.Run(testSpec(42), nil, nil)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeBusy {
		t.Fatalf("want Error{CodeBusy}, got %v", err)
	}
	if got := srv.Metrics().SessionsRejected; got != 1 {
		t.Fatalf("want 1 rejected session, got %d", got)
	}

	// Release the slot; the same connection can then serve a session.
	if _, err := sess.Exec("halt"); err != nil {
		t.Fatalf("halt: %v", err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := cl2.Run(testSpec(42), nil, nil); err != nil {
		t.Fatalf("run after release: %v", err)
	}
}

// TestIdleReap: a connection that goes quiet is reaped with CodeIdle.
func TestIdleReap(t *testing.T) {
	srv, addr := startServer(t, server.Config{IdleTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteMsg(conn, &wire.Hello{Version: wire.Version, Client: "sleeper"}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if _, err := wire.ReadMsg(conn); err != nil { // Welcome
		t.Fatalf("welcome: %v", err)
	}
	// Send nothing; the reaper should cut us loose.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadMsg(conn)
	if err != nil {
		t.Fatalf("expected an idle Error frame, got %v", err)
	}
	werr, ok := m.(*wire.Error)
	if !ok || werr.Code != wire.CodeIdle {
		t.Fatalf("want Error{CodeIdle}, got %#v", m)
	}
	if got := srv.Metrics().IdleReaped; got != 1 {
		t.Fatalf("want 1 reaped conn, got %d", got)
	}
}

// TestSimSecondsLimit: a session asking for more simulated time than the
// server allows is rejected as a bad request.
func TestSimSecondsLimit(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxSimSeconds: 10})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	spec := testSpec(42)
	spec.Seconds = 11
	_, err = cl.Run(spec, nil, nil)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeBadRequest {
		t.Fatalf("want Error{CodeBadRequest}, got %v", err)
	}
}

// traceSpec asks the scripted scenario to record the Vcap trace window so
// the session has samples to stream.
func traceSpec(seed int64) scenario.Spec {
	spec := testSpec(seed)
	spec.Trace = true
	return spec
}

// collectTrace runs the spec remotely, gathering every streamed sample.
// The OnTrace callback may hand out a reused scratch buffer, so samples are
// copied out.
func collectTrace(t *testing.T, cl *client.Client, spec scenario.Spec) []wire.TracePoint {
	t.Helper()
	var got []wire.TracePoint
	cl.OnTrace = func(tr *wire.Trace) { got = append(got, tr.Samples...) }
	st, err := cl.Run(spec, nil, nil)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if st.Exit != 0 {
		t.Fatalf("remote exit %d", st.Exit)
	}
	return got
}

// TestTraceCodecGolden is the end-to-end codec guarantee: a codec-enabled
// remote session decodes to exactly the ADC-quantized local trace, a
// raw-trace session still matches the local trace bit-for-bit, and the
// compressed stream is at least 3x smaller on the wire (measured at the
// server's frame counters).
func TestTraceCodecGolden(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	spec := traceSpec(42)
	_, res := localGolden(t, spec)
	if res.Vcap == nil || len(res.Vcap.Samples) == 0 {
		t.Fatal("local run recorded no trace window")
	}

	// Old-style raw session first: samples must match the local run
	// bit-for-bit (no quantization on the raw path).
	clRaw, err := client.Dial(addr, client.Options{RawTrace: true})
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	defer clRaw.Close()
	if clRaw.TraceZ() {
		t.Fatal("RawTrace client must not negotiate the codec")
	}
	raw := collectTrace(t, clRaw, spec)
	mRaw := srv.Metrics()
	if len(raw) != len(res.Vcap.Samples) {
		t.Fatalf("raw stream has %d samples, local window %d", len(raw), len(res.Vcap.Samples))
	}
	for i, sm := range res.Vcap.Samples {
		if raw[i].At != uint64(sm.At) || raw[i].V != sm.V {
			t.Fatalf("raw sample %d: got (%d, %v), local (%d, %v)", i, raw[i].At, raw[i].V, sm.At, sm.V)
		}
	}

	// Codec session: identical to the local trace after ADC quantization.
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if !cl.TraceZ() {
		t.Fatal("client should negotiate the codec by default")
	}
	dec := collectTrace(t, cl, spec)
	mZ := srv.Metrics()
	if len(dec) != len(res.Vcap.Samples) {
		t.Fatalf("decoded stream has %d samples, local window %d", len(dec), len(res.Vcap.Samples))
	}
	for i, sm := range res.Vcap.Samples {
		if dec[i].At != uint64(sm.At) || dec[i].V != tracecodec.Quantize(sm.V) {
			t.Fatalf("decoded sample %d: got (%d, %v), want (%d, %v)",
				i, dec[i].At, dec[i].V, sm.At, tracecodec.Quantize(sm.V))
		}
	}

	// Bandwidth: the compressed stream must be at least 3x smaller, frame
	// overhead included, for the same sample count.
	rawBytes := mRaw.TraceBytes
	zBytes := mZ.TraceBytes - mRaw.TraceBytes
	if n := mZ.TraceSamples - mRaw.TraceSamples; n != int64(len(dec)) {
		t.Fatalf("server counted %d codec samples, client saw %d", n, len(dec))
	}
	if rawBytes == 0 || zBytes == 0 {
		t.Fatalf("trace byte counters did not move: raw=%d z=%d", rawBytes, zBytes)
	}
	if ratio := float64(rawBytes) / float64(zBytes); ratio < 3 {
		t.Fatalf("wire compression ratio %.2f < 3 (raw %d bytes, compressed %d bytes, %d samples)",
			ratio, rawBytes, zBytes, len(dec))
	}
}

// TestDisableTraceZ: a server configured without the codec refuses the
// capability and streams raw chunks even to a codec-capable client.
func TestDisableTraceZ(t *testing.T) {
	_, addr := startServer(t, server.Config{DisableTraceZ: true})
	spec := traceSpec(42)
	_, res := localGolden(t, spec)

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if cl.TraceZ() {
		t.Fatal("server with DisableTraceZ must not accept the capability")
	}
	raw := collectTrace(t, cl, spec)
	if len(raw) != len(res.Vcap.Samples) {
		t.Fatalf("raw stream has %d samples, local window %d", len(raw), len(res.Vcap.Samples))
	}
	for i, sm := range res.Vcap.Samples {
		if raw[i].At != uint64(sm.At) || raw[i].V != sm.V {
			t.Fatalf("raw sample %d mismatch", i)
		}
	}
}

// TestOldClientRawTrace speaks the version-1 wire protocol with zero flags
// — exactly what a client built before the codec existed sends — and
// checks the new server still streams valid raw Trace chunks and never a
// TraceZ frame.
func TestOldClientRawTrace(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	spec := traceSpec(42)
	_, res := localGolden(t, spec)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	if err := wire.WriteMsg(conn, &wire.Hello{Version: wire.Version, Client: "edb/v-old"}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	m, flags, err := wire.ReadMsgFlags(conn)
	if err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if _, ok := m.(*wire.Welcome); !ok {
		t.Fatalf("want Welcome, got %T", m)
	}
	if flags != 0 {
		t.Fatalf("server offered capabilities %#02x to a client that advertised none", flags)
	}

	if err := wire.WriteMsg(conn, &wire.Run{Spec: spec, StreamTrace: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []wire.TracePoint
	for {
		m, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch tm := m.(type) {
		case *wire.Output:
		case *wire.Trace:
			got = append(got, tm.Samples...)
		case *wire.TraceZ:
			t.Fatal("server sent TraceZ to a client that never negotiated it")
		case *wire.Done:
			if len(got) != len(res.Vcap.Samples) {
				t.Fatalf("old client got %d samples, local window %d", len(got), len(res.Vcap.Samples))
			}
			for i, sm := range res.Vcap.Samples {
				if got[i].At != uint64(sm.At) || got[i].V != sm.V {
					t.Fatalf("old-client sample %d mismatch", i)
				}
			}
			return
		default:
			t.Fatalf("unexpected frame %T", m)
		}
	}
}

// TestBadSpecRejected: an unknown app is rejected without assembling a rig.
func TestBadSpecRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	_, err = cl.Run(scenario.Spec{App: "no-such-app"}, nil, nil)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeBadRequest {
		t.Fatalf("want Error{CodeBadRequest}, got %v", err)
	}
}
