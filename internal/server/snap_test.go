package server_test

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestOldClientNoSnapCompat is the backwards-compatibility guarantee for
// the snapshot capability: a client that never offers FlagSnap (one built
// before it existed) negotiates zero capabilities and receives a transcript
// byte-identical to a local run — the new server bits are invisible to it.
func TestOldClientNoSnapCompat(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	spec := testSpec(42)
	golden, _ := localGolden(t, spec)

	cl, err := client.Dial(addr, client.Options{NoSnap: true, RawTrace: true})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if cl.Snap() || cl.TraceZ() {
		t.Fatalf("client advertised nothing but negotiated snap=%v tracez=%v", cl.Snap(), cl.TraceZ())
	}
	// Two sessions: the first may cold-boot while the pool warms a
	// template, the second may be served from a fork — both must match the
	// local golden byte-for-byte.
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if _, err := cl.Run(spec, &buf, nil); err != nil {
			t.Fatalf("remote run %d: %v", i, err)
		}
		if buf.String() != golden {
			t.Fatalf("run %d: old-client transcript differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
				i, golden, buf.String())
		}
	}
	_ = srv
}

// TestSnapFrameWithoutCapabilityRejected: answering a prompt with SnapSave
// when FlagSnap was never negotiated is a protocol error, not silent
// time-travel.
func TestSnapFrameWithoutCapabilityRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	if err := wire.WriteMsg(conn, &wire.Hello{Version: wire.Version, Client: "edb/v-old"}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadMsg(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.Welcome); !ok {
		t.Fatalf("want Welcome, got %T", m)
	}

	spec := testSpec(42)
	spec.Script = ""
	spec.Interactive = true
	if err := wire.WriteMsg(conn, &wire.Run{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	sawError := false
loop:
	for {
		m, err := wire.ReadMsg(conn)
		if err != nil {
			break
		}
		switch m.(type) {
		case *wire.Output:
		case *wire.Prompt:
			if err := wire.WriteMsg(conn, &wire.SnapSave{}); err != nil {
				t.Fatal(err)
			}
		case *wire.Error:
			sawError = true
			break loop
		case *wire.Done:
			break loop
		}
	}
	if !sawError {
		t.Fatal("server accepted SnapSave without the capability")
	}
}

// TestRemoteSnapRestore drives remote time-travel end to end: arm a
// snapshot, mutate target memory through the console, revert, and observe
// the memory read back at its snapshotted value.
func TestRemoteSnapRestore(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if !cl.Snap() {
		t.Fatal("snapshot capability must negotiate by default")
	}

	spec := testSpec(42)
	spec.Script = ""
	var banner bytes.Buffer
	sess, err := cl.Start(spec, &banner)
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	o, err := sess.SnapSave()
	if err != nil {
		t.Fatalf("snap: %v", err)
	}
	if !strings.Contains(o, "snapshot armed") {
		t.Fatalf("snap output: %q", o)
	}
	before, err := sess.Exec("read 0x4400")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("write 0x4400 0xBEEF"); err != nil {
		t.Fatal(err)
	}
	after, err := sess.Exec("read 0x4400")
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("write must change the read-back")
	}
	o, err = sess.SnapRestore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !strings.Contains(o, "restored") {
		t.Fatalf("restore output: %q", o)
	}
	reverted, err := sess.Exec("read 0x4400")
	if err != nil {
		t.Fatal(err)
	}
	if reverted != before {
		t.Fatalf("time-travel failed:\nbefore  %q\nafter   %q\nrevert  %q", before, after, reverted)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestServerDisableSnap: the server-side kill switch wins negotiation.
func TestServerDisableSnap(t *testing.T) {
	_, addr := startServer(t, server.Config{DisableSnap: true})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if cl.Snap() {
		t.Fatal("server must refuse the snap capability when disabled")
	}
}

// TestPoolWarmSessionsMatchCold: the daemon's warm-start pool serves later
// sessions from template forks with byte-identical output, and the metrics
// record the split.
func TestPoolWarmSessionsMatchCold(t *testing.T) {
	srv, addr := startServer(t, server.Config{PoolSpares: 1})
	spec := testSpec(42)
	golden, _ := localGolden(t, spec)

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	var first bytes.Buffer
	if _, err := cl.Run(spec, &first, nil); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.String() != golden {
		t.Fatal("first (cold) session differs from local golden")
	}

	// The template builds in the background; wait for it.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Metrics().TemplatesBuilt == 0 {
		if time.Now().After(deadline) {
			t.Fatal("template never built")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var second bytes.Buffer
	if _, err := cl.Run(spec, &second, nil); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if second.String() != golden {
		t.Fatal("warm session differs from local golden")
	}
	m := srv.Metrics()
	if m.ColdBoots != 1 || m.WarmForks != 1 {
		t.Fatalf("pool metrics: cold=%d warm=%d (want 1/1); %+v", m.ColdBoots, m.WarmForks, m)
	}
}

// TestPoolDisabled: with pooling off every session cold-boots and output
// is unchanged.
func TestPoolDisabled(t *testing.T) {
	srv, addr := startServer(t, server.Config{DisablePool: true})
	spec := testSpec(42)
	golden, _ := localGolden(t, spec)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if _, err := cl.Run(spec, &buf, nil); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if buf.String() != golden {
			t.Fatalf("run %d differs from golden", i)
		}
	}
	if m := srv.Metrics(); m.WarmForks != 0 || m.TemplatesBuilt != 0 {
		t.Fatalf("pool must be inert when disabled: %+v", m)
	}
}
