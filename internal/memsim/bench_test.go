package memsim

import "testing"

// The write-barrier benchmarks quantify what dirty tracking costs on the
// store path. With tracking disabled (the default for every rig that never
// snapshots) the barrier is a nil check; the acceptance bar for that plain
// path is ≤5% over a barrier-free store, which the nil check sits well
// under. The tracked variant shows the full bitmap-marking cost.
func benchWrites(b *testing.B, track bool) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, err := NewMemory(r)
	if err != nil {
		b.Fatal(err)
	}
	if track {
		r.EnableDirtyTracking()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteWord(FRAMBase+Addr((i*2)%1024), uint16(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteWordPlain(b *testing.B)   { benchWrites(b, false) }
func BenchmarkWriteWordTracked(b *testing.B) { benchWrites(b, true) }
