package memsim

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDirtyTrackingMarksWrittenPages(t *testing.T) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, err := NewMemory(r)
	if err != nil {
		t.Fatal(err)
	}
	r.EnableDirtyTracking()
	if got := r.DirtyPageCount(); got != 0 {
		t.Fatalf("fresh bitmap has %d dirty pages", got)
	}

	// One byte dirties one page; a word straddling a page boundary dirties two.
	if err := m.WriteByteAt(FRAMBase+5, 0xAA); err != nil {
		t.Fatal(err)
	}
	if got := r.DirtyPageCount(); got != 1 {
		t.Fatalf("after 1-byte write: %d dirty pages, want 1", got)
	}
	if err := m.WriteWord(FRAMBase+Addr(PageSize)-1, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if got := r.DirtyPageCount(); got != 2 {
		t.Fatalf("after straddling word write: %d dirty pages, want 2 (page 0 already dirty)", got)
	}

	d := r.DeltaSnapshot()
	if len(d.Pages) != 2 {
		t.Fatalf("delta has %d pages, want 2", len(d.Pages))
	}
	if r.DirtyPageCount() != 0 {
		t.Fatal("DeltaSnapshot did not clear the bitmap")
	}
	if d.Bytes() != 2*PageSize {
		t.Fatalf("delta bytes = %d, want %d", d.Bytes(), 2*PageSize)
	}
}

func TestDeltaSnapshotApplyRoundTrip(t *testing.T) {
	r := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	m, _ := NewMemory(r)
	r.EnableDirtyTracking()
	rng := rand.New(rand.NewSource(1))

	// Scatter writes, capture the delta, scribble more, then apply the
	// delta onto a second pristine region seeded with the same baseline.
	for i := 0; i < 40; i++ {
		a := SRAMBase + Addr(rng.Intn(SRAMSize))
		if err := m.WriteByteAt(a, byte(rng.Int())); err != nil {
			t.Fatal(err)
		}
	}
	want := r.Snapshot()
	d := r.DeltaSnapshot()
	if d.Bytes() >= len(want) {
		t.Fatalf("delta (%d B) not smaller than full snapshot (%d B)", d.Bytes(), len(want))
	}

	r2 := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	var hooked int
	r2.WriteHook = func(a Addr, n int) { hooked += n }
	if err := r2.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2.Snapshot(), want) {
		t.Fatal("region after ApplyDelta differs from original")
	}
	if hooked != d.Bytes() {
		t.Fatalf("WriteHook observed %d bytes, want %d", hooked, d.Bytes())
	}

	// Out-of-range pages are rejected.
	bad := &Delta{Region: "SRAM", Pages: []DeltaPage{{Off: SRAMSize - 1, Data: make([]byte, PageSize)}}}
	if err := r2.ApplyDelta(bad); err == nil {
		t.Fatal("ApplyDelta accepted an out-of-range page")
	}
}

func TestRevertDirtyUndoesWrites(t *testing.T) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, _ := NewMemory(r)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m.WriteByteAt(FRAMBase+Addr(rng.Intn(FRAMSize)), byte(rng.Int()))
	}
	r.EnableDirtyTracking()
	baseline := r.Snapshot()

	for i := 0; i < 50; i++ {
		m.WriteByteAt(FRAMBase+Addr(rng.Intn(FRAMSize)), byte(rng.Int()))
	}
	dirtyBefore := r.DirtyPageCount()
	pages, err := r.RevertDirty(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if pages != dirtyBefore {
		t.Fatalf("reverted %d pages, bitmap had %d", pages, dirtyBefore)
	}
	if !bytes.Equal(r.Snapshot(), baseline) {
		t.Fatal("RevertDirty did not restore the baseline")
	}
	if r.DirtyPageCount() != 0 {
		t.Fatal("RevertDirty left dirty bits set")
	}

	// Bulk mutations mark everything dirty so a revert stays sound.
	r.Clear()
	if got, want := r.DirtyPageCount(), (FRAMSize+PageSize-1)/PageSize; got != want {
		t.Fatalf("Clear marked %d pages, want %d", got, want)
	}
	if _, err := r.RevertDirty(baseline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Snapshot(), baseline) {
		t.Fatal("revert after Clear did not restore the baseline")
	}
}

func TestDiffDirtyCanonical(t *testing.T) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, _ := NewMemory(r)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		m.WriteByteAt(FRAMBase+Addr(rng.Intn(FRAMSize)), byte(rng.Int()))
	}
	r.EnableDirtyTracking()
	r.ResetDirty()
	baseline := r.Snapshot()

	// Change page 2, and write page 5 back to its baseline values: the
	// dirty bitmap covers both, the diff must contain only page 2 — the
	// canonical encoding treats written-then-reverted pages as untouched.
	m.WriteByteAt(FRAMBase+Addr(2*PageSize), 0x7F)
	old, _ := m.ReadByteAt(FRAMBase + Addr(5*PageSize))
	m.WriteByteAt(FRAMBase+Addr(5*PageSize), old)
	if got := r.DirtyPageCount(); got != 2 {
		t.Fatalf("dirty pages = %d, want 2", got)
	}
	d, err := r.DiffDirty(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pages) != 1 || d.Pages[0].Off != 2*PageSize {
		t.Fatalf("diff = %+v, want exactly page 2", d.Pages)
	}
	// DiffDirty peeks: the bitmap and contents are untouched.
	if r.DirtyPageCount() != 2 {
		t.Fatal("DiffDirty consumed the dirty bitmap")
	}
	if got := r.DirtyPages(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("DirtyPages = %v, want [2 5]", got)
	}

	// Applying the diff to a baseline copy reproduces the live image.
	r2 := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	r2.Restore(baseline)
	if err := r2.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2.Snapshot(), r.Snapshot()) {
		t.Fatal("baseline + diff differs from the live image")
	}

	// A short baseline is rejected; no tracking is an error.
	if _, err := r.DiffDirty(baseline[:10]); err == nil {
		t.Fatal("DiffDirty accepted a truncated baseline")
	}
	r3 := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	if _, err := r3.DiffDirty(baseline); err == nil {
		t.Fatal("DiffDirty without tracking should error")
	}
}

func TestReadHookObservesReads(t *testing.T) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, _ := NewMemory(r)
	type access struct {
		a Addr
		n int
	}
	var got []access
	r.ReadHook = func(a Addr, n int) { got = append(got, access{a, n}) }
	if _, err := m.ReadByteAt(FRAMBase + 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadWord(FRAMBase + 8); err != nil {
		t.Fatal(err)
	}
	want := []access{{FRAMBase + 3, 1}, {FRAMBase + 8, 2}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ReadHook saw %v, want %v", got, want)
	}
	// Faulting reads never reach the hook.
	got = got[:0]
	if _, err := m.ReadByteAt(FRAMBase + Addr(FRAMSize)); err == nil {
		t.Fatal("out-of-range read must fault")
	}
	if len(got) != 0 {
		t.Fatalf("ReadHook fired on a faulting read: %v", got)
	}
}

func TestDirtyTrackingDisabledIsInert(t *testing.T) {
	r := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	m, _ := NewMemory(r)
	if err := m.WriteByteAt(SRAMBase, 1); err != nil {
		t.Fatal(err)
	}
	if r.DirtyTracking() {
		t.Fatal("tracking reported active before EnableDirtyTracking")
	}
	if d := r.DeltaSnapshot(); d != nil {
		t.Fatal("DeltaSnapshot without tracking should be nil")
	}
	if _, err := r.RevertDirty(r.Snapshot()); err == nil {
		t.Fatal("RevertDirty without tracking should error")
	}
}
