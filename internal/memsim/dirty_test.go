package memsim

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDirtyTrackingMarksWrittenPages(t *testing.T) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, err := NewMemory(r)
	if err != nil {
		t.Fatal(err)
	}
	r.EnableDirtyTracking()
	if got := r.DirtyPageCount(); got != 0 {
		t.Fatalf("fresh bitmap has %d dirty pages", got)
	}

	// One byte dirties one page; a word straddling a page boundary dirties two.
	if err := m.WriteByteAt(FRAMBase+5, 0xAA); err != nil {
		t.Fatal(err)
	}
	if got := r.DirtyPageCount(); got != 1 {
		t.Fatalf("after 1-byte write: %d dirty pages, want 1", got)
	}
	if err := m.WriteWord(FRAMBase+Addr(PageSize)-1, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if got := r.DirtyPageCount(); got != 2 {
		t.Fatalf("after straddling word write: %d dirty pages, want 2 (page 0 already dirty)", got)
	}

	d := r.DeltaSnapshot()
	if len(d.Pages) != 2 {
		t.Fatalf("delta has %d pages, want 2", len(d.Pages))
	}
	if r.DirtyPageCount() != 0 {
		t.Fatal("DeltaSnapshot did not clear the bitmap")
	}
	if d.Bytes() != 2*PageSize {
		t.Fatalf("delta bytes = %d, want %d", d.Bytes(), 2*PageSize)
	}
}

func TestDeltaSnapshotApplyRoundTrip(t *testing.T) {
	r := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	m, _ := NewMemory(r)
	r.EnableDirtyTracking()
	rng := rand.New(rand.NewSource(1))

	// Scatter writes, capture the delta, scribble more, then apply the
	// delta onto a second pristine region seeded with the same baseline.
	for i := 0; i < 40; i++ {
		a := SRAMBase + Addr(rng.Intn(SRAMSize))
		if err := m.WriteByteAt(a, byte(rng.Int())); err != nil {
			t.Fatal(err)
		}
	}
	want := r.Snapshot()
	d := r.DeltaSnapshot()
	if d.Bytes() >= len(want) {
		t.Fatalf("delta (%d B) not smaller than full snapshot (%d B)", d.Bytes(), len(want))
	}

	r2 := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	var hooked int
	r2.WriteHook = func(a Addr, n int) { hooked += n }
	if err := r2.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2.Snapshot(), want) {
		t.Fatal("region after ApplyDelta differs from original")
	}
	if hooked != d.Bytes() {
		t.Fatalf("WriteHook observed %d bytes, want %d", hooked, d.Bytes())
	}

	// Out-of-range pages are rejected.
	bad := &Delta{Region: "SRAM", Pages: []DeltaPage{{Off: SRAMSize - 1, Data: make([]byte, PageSize)}}}
	if err := r2.ApplyDelta(bad); err == nil {
		t.Fatal("ApplyDelta accepted an out-of-range page")
	}
}

func TestRevertDirtyUndoesWrites(t *testing.T) {
	r := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, _ := NewMemory(r)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m.WriteByteAt(FRAMBase+Addr(rng.Intn(FRAMSize)), byte(rng.Int()))
	}
	r.EnableDirtyTracking()
	baseline := r.Snapshot()

	for i := 0; i < 50; i++ {
		m.WriteByteAt(FRAMBase+Addr(rng.Intn(FRAMSize)), byte(rng.Int()))
	}
	dirtyBefore := r.DirtyPageCount()
	pages, err := r.RevertDirty(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if pages != dirtyBefore {
		t.Fatalf("reverted %d pages, bitmap had %d", pages, dirtyBefore)
	}
	if !bytes.Equal(r.Snapshot(), baseline) {
		t.Fatal("RevertDirty did not restore the baseline")
	}
	if r.DirtyPageCount() != 0 {
		t.Fatal("RevertDirty left dirty bits set")
	}

	// Bulk mutations mark everything dirty so a revert stays sound.
	r.Clear()
	if got, want := r.DirtyPageCount(), (FRAMSize+PageSize-1)/PageSize; got != want {
		t.Fatalf("Clear marked %d pages, want %d", got, want)
	}
	if _, err := r.RevertDirty(baseline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Snapshot(), baseline) {
		t.Fatal("revert after Clear did not restore the baseline")
	}
}

func TestDirtyTrackingDisabledIsInert(t *testing.T) {
	r := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	m, _ := NewMemory(r)
	if err := m.WriteByteAt(SRAMBase, 1); err != nil {
		t.Fatal(err)
	}
	if r.DirtyTracking() {
		t.Fatal("tracking reported active before EnableDirtyTracking")
	}
	if d := r.DeltaSnapshot(); d != nil {
		t.Fatal("DeltaSnapshot without tracking should be nil")
	}
	if _, err := r.RevertDirty(r.Snapshot()); err == nil {
		t.Fatal("RevertDirty without tracking should error")
	}
}
