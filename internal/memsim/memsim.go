// Package memsim simulates the target device's byte-addressed memory: a
// volatile SRAM region and a non-volatile FRAM region in a 16-bit address
// space, mirroring the MSP430FR-class MCU on the WISP 5.
//
// Firmware in this reproduction manipulates data structures through real
// simulated addresses — a linked-list node's next pointer is a 16-bit
// address stored in simulated FRAM. This matters: the paper's intermittence
// bugs (a reboot interrupting an append, leaving a NULL next pointer that a
// later remove dereferences into a wild write) reproduce mechanically here,
// because a wild pointer really does read open bus or clobber simulated
// bytes.
//
// A reboot clears SRAM (and the register file, handled by the device) but
// retains FRAM, exactly as §1 of the paper describes.
package memsim

import (
	"encoding/binary"
	"fmt"
)

// Addr is a 16-bit address in the target's memory map.
type Addr uint16

// Null is the null pointer. The low page of the address space is unmapped,
// so dereferencing Null (or any address near it) faults, as on real
// hardware where low memory holds write-protected peripheral registers.
const Null Addr = 0

// Default memory map, modeled on the MSP430FR5969 (WISP 5's MCU):
// 2 KiB SRAM at 0x1C00, ~48 KiB FRAM at 0x4400.
const (
	SRAMBase Addr = 0x1C00
	SRAMSize      = 0x0800 // 2 KiB
	FRAMBase Addr = 0x4400
	FRAMSize      = 0xBB00 // 47.75 KiB
)

// Fault describes an illegal memory access: a read or write to an address
// outside every mapped region. The device treats an untrapped Fault the way
// real hardware treats a wild access — the MCU wedges until the next reset.
type Fault struct {
	Addr  Addr
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("memsim: illegal %s at %#04x", op, uint16(f.Addr))
}

// Region is a contiguous mapped range of memory.
type Region struct {
	Name     string
	Base     Addr
	Volatile bool

	data []byte
	brk  int // bump-allocator high-water mark

	// Access counters, useful for tests and for energy models that charge
	// FRAM accesses differently from SRAM.
	Reads  uint64
	Writes uint64

	// WriteHook, if set, observes every mutation of the region's contents:
	// per-address stores and bulk operations (Clear, Reset, Restore) alike.
	// The ISA's predecoded-instruction cache hangs its invalidation here so
	// self-modifying (or self-corrupting) programs stay faithful.
	WriteHook func(a Addr, n int)
}

// NewRegion returns a zeroed region of the given size.
func NewRegion(name string, base Addr, size int, volatile bool) *Region {
	return &Region{Name: name, Base: base, Volatile: volatile, data: make([]byte, size)}
}

// Size returns the region's length in bytes.
func (r *Region) Size() int { return len(r.data) }

// End returns one past the last mapped address.
func (r *Region) End() Addr { return r.Base + Addr(len(r.data)) }

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Alloc reserves n bytes (word-aligned) from the region's bump allocator and
// returns the base address. Firmware uses this at flash time to lay out its
// statically allocated structures; there is no free.
func (r *Region) Alloc(n int) (Addr, error) {
	if n < 0 {
		return Null, fmt.Errorf("memsim: negative allocation %d in %s", n, r.Name)
	}
	n = (n + 1) &^ 1 // word alignment
	if r.brk+n > len(r.data) {
		return Null, fmt.Errorf("memsim: %s exhausted (%d bytes in use, %d requested, %d total)",
			r.Name, r.brk, n, len(r.data))
	}
	a := r.Base + Addr(r.brk)
	r.brk += n
	return a, nil
}

// AllocWords reserves n 16-bit words.
func (r *Region) AllocWords(n int) (Addr, error) { return r.Alloc(2 * n) }

// InUse returns the number of allocated bytes.
func (r *Region) InUse() int { return r.brk }

// Clear zeroes the region's contents (but not its allocation map — the
// layout is part of the flashed program image). Used on SRAM at reboot.
func (r *Region) Clear() {
	for i := range r.data {
		r.data[i] = 0
	}
	if r.WriteHook != nil {
		r.WriteHook(r.Base, len(r.data))
	}
}

// Reset zeroes contents and the allocator. Used when re-flashing.
func (r *Region) Reset() {
	r.Clear()
	r.brk = 0
	r.Reads = 0
	r.Writes = 0
}

// Snapshot returns a copy of the region's contents. Checkpointing runtimes
// use it to capture volatile state.
func (r *Region) Snapshot() []byte {
	cp := make([]byte, len(r.data))
	copy(cp, r.data)
	return cp
}

// Restore overwrites the region's contents from a snapshot.
func (r *Region) Restore(snap []byte) error {
	if len(snap) != len(r.data) {
		return fmt.Errorf("memsim: snapshot size %d does not match %s size %d",
			len(snap), r.Name, len(r.data))
	}
	copy(r.data, snap)
	if r.WriteHook != nil {
		r.WriteHook(r.Base, len(r.data))
	}
	return nil
}

// Memory is the target's full address space: an ordered set of regions.
type Memory struct {
	regions []*Region
}

// NewMemory returns an address space containing the given regions. Regions
// must not overlap.
func NewMemory(regions ...*Region) (*Memory, error) {
	m := &Memory{}
	for _, r := range regions {
		for _, prev := range m.regions {
			if r.Base < prev.End() && prev.Base < r.End() {
				return nil, fmt.Errorf("memsim: regions %s and %s overlap", prev.Name, r.Name)
			}
		}
		m.regions = append(m.regions, r)
	}
	return m, nil
}

// NewTargetMemory returns the default WISP-like memory map: SRAM + FRAM.
func NewTargetMemory() (*Memory, *Region, *Region) {
	sram := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	fram := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, err := NewMemory(sram, fram)
	if err != nil {
		panic(err) // static layout; cannot overlap
	}
	return m, sram, fram
}

// RegionAt returns the region containing a, or nil if a is unmapped.
func (m *Memory) RegionAt(a Addr) *Region {
	for _, r := range m.regions {
		if r.Contains(a) {
			return r
		}
	}
	return nil
}

// Regions returns the mapped regions.
func (m *Memory) Regions() []*Region { return m.regions }

// ReadByte reads one byte, faulting on unmapped addresses.
func (m *Memory) ReadByteAt(a Addr) (byte, error) {
	r := m.RegionAt(a)
	if r == nil {
		return 0, &Fault{Addr: a}
	}
	r.Reads++
	return r.data[a-r.Base], nil
}

// WriteByte writes one byte, faulting on unmapped addresses.
func (m *Memory) WriteByteAt(a Addr, b byte) error {
	r := m.RegionAt(a)
	if r == nil {
		return &Fault{Addr: a, Write: true}
	}
	r.Writes++
	r.data[a-r.Base] = b
	if r.WriteHook != nil {
		r.WriteHook(a, 1)
	}
	return nil
}

// ReadWord reads a little-endian 16-bit word. A word access that straddles a
// region boundary faults, as it would on hardware.
func (m *Memory) ReadWord(a Addr) (uint16, error) {
	r := m.RegionAt(a)
	if r == nil || !r.Contains(a+1) {
		return 0, &Fault{Addr: a}
	}
	r.Reads++
	off := a - r.Base
	return binary.LittleEndian.Uint16(r.data[off : off+2]), nil
}

// WriteWord writes a little-endian 16-bit word.
func (m *Memory) WriteWord(a Addr, v uint16) error {
	r := m.RegionAt(a)
	if r == nil || !r.Contains(a+1) {
		return &Fault{Addr: a, Write: true}
	}
	r.Writes++
	off := a - r.Base
	binary.LittleEndian.PutUint16(r.data[off:off+2], v)
	if r.WriteHook != nil {
		r.WriteHook(a, 2)
	}
	return nil
}

// ReadBytes copies n bytes starting at a into a new slice.
func (m *Memory) ReadBytes(a Addr, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := m.ReadByteAt(a + Addr(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes writes the given bytes starting at a.
func (m *Memory) WriteBytes(a Addr, data []byte) error {
	for i, b := range data {
		if err := m.WriteByteAt(a+Addr(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ClearVolatile zeroes every volatile region — the effect of a power
// failure on memory.
func (m *Memory) ClearVolatile() {
	for _, r := range m.regions {
		if r.Volatile {
			r.Clear()
		}
	}
}
