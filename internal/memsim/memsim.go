// Package memsim simulates the target device's byte-addressed memory: a
// volatile SRAM region and a non-volatile FRAM region in a 16-bit address
// space, mirroring the MSP430FR-class MCU on the WISP 5.
//
// Firmware in this reproduction manipulates data structures through real
// simulated addresses — a linked-list node's next pointer is a 16-bit
// address stored in simulated FRAM. This matters: the paper's intermittence
// bugs (a reboot interrupting an append, leaving a NULL next pointer that a
// later remove dereferences into a wild write) reproduce mechanically here,
// because a wild pointer really does read open bus or clobber simulated
// bytes.
//
// A reboot clears SRAM (and the register file, handled by the device) but
// retains FRAM, exactly as §1 of the paper describes.
package memsim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Addr is a 16-bit address in the target's memory map.
type Addr uint16

// Null is the null pointer. The low page of the address space is unmapped,
// so dereferencing Null (or any address near it) faults, as on real
// hardware where low memory holds write-protected peripheral registers.
const Null Addr = 0

// Default memory map, modeled on the MSP430FR5969 (WISP 5's MCU):
// 2 KiB SRAM at 0x1C00, ~48 KiB FRAM at 0x4400.
const (
	SRAMBase Addr = 0x1C00
	SRAMSize      = 0x0800 // 2 KiB
	FRAMBase Addr = 0x4400
	FRAMSize      = 0xBB00 // 47.75 KiB
)

// Dirty tracking granularity. 64 bytes splits the 2 KiB SRAM into 32 pages
// and the FRAM into ~764: fine enough that a checkpoint touching a few
// dozen bytes dirties only one or two pages, coarse enough that the whole
// bitmap for the full address space is 100 words.
const (
	PageSize  = 64
	pageShift = 6
)

// Fault describes an illegal memory access: a read or write to an address
// outside every mapped region. The device treats an untrapped Fault the way
// real hardware treats a wild access — the MCU wedges until the next reset.
type Fault struct {
	Addr  Addr
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("memsim: illegal %s at %#04x", op, uint16(f.Addr))
}

// Region is a contiguous mapped range of memory.
type Region struct {
	Name     string
	Base     Addr
	Volatile bool

	data []byte
	brk  int // bump-allocator high-water mark

	// Access counters, useful for tests and for energy models that charge
	// FRAM accesses differently from SRAM.
	Reads  uint64
	Writes uint64

	// WriteHook, if set, observes every mutation of the region's contents:
	// per-address stores and bulk operations (Clear, Reset, Restore) alike.
	// The ISA's predecoded-instruction cache hangs its invalidation here so
	// self-modifying (or self-corrupting) programs stay faithful.
	WriteHook func(a Addr, n int)

	// ReadHook, if set, observes every load from the region. The exhaustive
	// intermittence checker hangs its WAR (read-before-write) detector here;
	// nil keeps the plain read path branch-predictable.
	ReadHook func(a Addr, n int)

	// dirty, when non-nil, is a write-barrier bitmap with one bit per
	// PageSize-byte page, set on every store. It makes DeltaSnapshot and
	// RevertDirty O(dirty pages) instead of O(region size). nil (the
	// default) keeps the plain execution path branch-predictable and
	// allocation-free.
	dirty []uint64
}

// NewRegion returns a zeroed region of the given size.
func NewRegion(name string, base Addr, size int, volatile bool) *Region {
	return &Region{Name: name, Base: base, Volatile: volatile, data: make([]byte, size)}
}

// Size returns the region's length in bytes.
func (r *Region) Size() int { return len(r.data) }

// End returns one past the last mapped address.
func (r *Region) End() Addr { return r.Base + Addr(len(r.data)) }

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Alloc reserves n bytes (word-aligned) from the region's bump allocator and
// returns the base address. Firmware uses this at flash time to lay out its
// statically allocated structures; there is no free.
func (r *Region) Alloc(n int) (Addr, error) {
	if n < 0 {
		return Null, fmt.Errorf("memsim: negative allocation %d in %s", n, r.Name)
	}
	n = (n + 1) &^ 1 // word alignment
	if r.brk+n > len(r.data) {
		return Null, fmt.Errorf("memsim: %s exhausted (%d bytes in use, %d requested, %d total)",
			r.Name, r.brk, n, len(r.data))
	}
	a := r.Base + Addr(r.brk)
	r.brk += n
	return a, nil
}

// AllocWords reserves n 16-bit words.
func (r *Region) AllocWords(n int) (Addr, error) { return r.Alloc(2 * n) }

// InUse returns the number of allocated bytes.
func (r *Region) InUse() int { return r.brk }

// Clear zeroes the region's contents (but not its allocation map — the
// layout is part of the flashed program image). Used on SRAM at reboot.
func (r *Region) Clear() {
	for i := range r.data {
		r.data[i] = 0
	}
	r.markAll()
	if r.WriteHook != nil {
		r.WriteHook(r.Base, len(r.data))
	}
}

// Reset zeroes contents and the allocator. Used when re-flashing.
func (r *Region) Reset() {
	r.Clear()
	r.brk = 0
	r.Reads = 0
	r.Writes = 0
}

// Snapshot returns a copy of the region's contents. Checkpointing runtimes
// use it to capture volatile state.
func (r *Region) Snapshot() []byte {
	cp := make([]byte, len(r.data))
	copy(cp, r.data)
	return cp
}

// SnapshotInto is Snapshot into a reusable buffer: it copies the region's
// contents into buf (grown if needed) and returns the resized slice, so
// hot-loop consumers like the explorer's hash cross-check avoid a full
// image allocation per capture.
func (r *Region) SnapshotInto(buf []byte) []byte {
	if cap(buf) < len(r.data) {
		buf = make([]byte, len(r.data))
	}
	buf = buf[:len(r.data)]
	copy(buf, r.data)
	return buf
}

// pageCount returns the number of PageSize-byte pages covering the region.
func (r *Region) pageCount() int { return (len(r.data) + PageSize - 1) / PageSize }

// EnableDirtyTracking allocates the page-dirty bitmap (all clean) and turns
// the write barrier on. Idempotent; existing dirty bits are preserved.
func (r *Region) EnableDirtyTracking() {
	if r.dirty == nil {
		r.dirty = make([]uint64, (r.pageCount()+63)/64)
	}
}

// DirtyTracking reports whether the write barrier is active.
func (r *Region) DirtyTracking() bool { return r.dirty != nil }

// ResetDirty clears every dirty bit, making the current contents the new
// baseline for the next DeltaSnapshot/RevertDirty.
func (r *Region) ResetDirty() {
	for i := range r.dirty {
		r.dirty[i] = 0
	}
}

// DirtyPageCount returns the number of pages written since the last reset.
func (r *Region) DirtyPageCount() int {
	n := 0
	for _, w := range r.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// TakeDirtyPages returns the indices of the pages written since the last
// reset, in ascending order, and clears the bitmap. It returns nil when
// dirty tracking is off. Unlike DeltaSnapshot it captures no contents —
// it is the cheap primitive for consumers that copy pages through their
// own (e.g. energy-costed) channel.
func (r *Region) TakeDirtyPages() []int {
	if r.dirty == nil {
		return nil
	}
	var out []int
	r.forEachDirty(func(p int) { out = append(out, p) })
	r.ResetDirty()
	return out
}

// DirtyPages returns the indices of the pages written since the last reset,
// in ascending order, without clearing the bitmap — a non-consuming peek for
// consumers (e.g. dirty-size-aware checkpoint placement) that want to know
// how much a capture *would* copy. It returns nil when tracking is off.
func (r *Region) DirtyPages() []int {
	if r.dirty == nil {
		return nil
	}
	var out []int
	r.forEachDirty(func(p int) { out = append(out, p) })
	return out
}

// DiffDirty captures, without consuming the dirty bitmap, exactly the dirty
// pages whose contents differ byte-for-byte from a full baseline snapshot,
// in ascending page order. Because the dirty set is a superset of the pages
// that differ from the baseline (writes only ever set bits), the result is
// a canonical representation of the region's divergence from the baseline:
// two states with equal contents produce identical deltas regardless of the
// write path that reached them (written-then-reverted pages are excluded).
// The exhaustive intermittence checker uses this as its state encoding.
func (r *Region) DiffDirty(baseline []byte) (*Delta, error) {
	if r.dirty == nil {
		return nil, fmt.Errorf("memsim: dirty tracking disabled on %s", r.Name)
	}
	if len(baseline) != len(r.data) {
		return nil, fmt.Errorf("memsim: baseline size %d does not match %s size %d",
			len(baseline), r.Name, len(r.data))
	}
	d := &Delta{Region: r.Name}
	r.forEachDirty(func(p int) {
		lo := p << pageShift
		hi := lo + PageSize
		if hi > len(r.data) {
			hi = len(r.data)
		}
		if bytes.Equal(r.data[lo:hi], baseline[lo:hi]) {
			return
		}
		cp := make([]byte, hi-lo)
		copy(cp, r.data[lo:hi])
		d.Pages = append(d.Pages, DeltaPage{Off: lo, Data: cp})
	})
	return d, nil
}

// markAll sets every page dirty (bulk mutations: Clear, Restore).
func (r *Region) markAll() {
	if r.dirty == nil {
		return
	}
	for i := range r.dirty {
		r.dirty[i] = ^uint64(0)
	}
	// Mask phantom bits past the last page so popcounts stay exact.
	if tail := uint(r.pageCount()) % 64; tail != 0 {
		r.dirty[len(r.dirty)-1] = (1 << tail) - 1
	}
}

// markRange sets the dirty bits covering [off, off+n).
func (r *Region) markRange(off, n int) {
	if r.dirty == nil || n <= 0 {
		return
	}
	last := uint(off+n-1) >> pageShift
	for p := uint(off) >> pageShift; p <= last; p++ {
		r.dirty[p>>6] |= 1 << (p & 63)
	}
}

// Delta is a sparse snapshot: the contents of exactly the pages written
// since the dirty bitmap was last reset. Capturing and applying one costs
// O(dirty pages), not O(region size).
type Delta struct {
	Region string
	Pages  []DeltaPage
}

// DeltaPage is one dirtied page: its byte offset within the region and a
// copy of its contents (short at the region tail).
type DeltaPage struct {
	Off  int
	Data []byte
}

// Bytes returns the page payload size — what a wire encoding of the delta
// would carry, and the numerator of the delta-vs-full benchmark.
func (d *Delta) Bytes() int {
	n := 0
	for _, p := range d.Pages {
		n += len(p.Data)
	}
	return n
}

// DeltaSnapshot captures every dirty page into a sparse Delta and clears
// the dirty bitmap, so successive captures each cost O(pages written since
// the previous capture). It returns nil if dirty tracking is disabled.
func (r *Region) DeltaSnapshot() *Delta {
	if r.dirty == nil {
		return nil
	}
	d := &Delta{Region: r.Name}
	r.forEachDirty(func(p int) {
		lo := p << pageShift
		hi := lo + PageSize
		if hi > len(r.data) {
			hi = len(r.data)
		}
		cp := make([]byte, hi-lo)
		copy(cp, r.data[lo:hi])
		d.Pages = append(d.Pages, DeltaPage{Off: lo, Data: cp})
	})
	r.ResetDirty()
	return d
}

// ApplyDelta writes a sparse delta's pages back into the region, firing the
// WriteHook (and the write barrier) for each page.
func (r *Region) ApplyDelta(d *Delta) error {
	if d == nil {
		return nil
	}
	for _, p := range d.Pages {
		if p.Off < 0 || p.Off+len(p.Data) > len(r.data) {
			return fmt.Errorf("memsim: delta page [%d,%d) outside %s (%d bytes)",
				p.Off, p.Off+len(p.Data), r.Name, len(r.data))
		}
		copy(r.data[p.Off:], p.Data)
		r.markRange(p.Off, len(p.Data))
		if r.WriteHook != nil {
			r.WriteHook(r.Base+Addr(p.Off), len(p.Data))
		}
	}
	return nil
}

// RevertDirty copies every dirtied page back from a full baseline snapshot
// (as returned by Snapshot) and clears the dirty bitmap — an O(dirty) undo
// of all writes since the baseline was captured. It returns the number of
// pages reverted.
func (r *Region) RevertDirty(baseline []byte) (int, error) {
	if r.dirty == nil {
		return 0, fmt.Errorf("memsim: dirty tracking disabled on %s", r.Name)
	}
	if len(baseline) != len(r.data) {
		return 0, fmt.Errorf("memsim: baseline size %d does not match %s size %d",
			len(baseline), r.Name, len(r.data))
	}
	pages := 0
	r.forEachDirty(func(p int) {
		lo := p << pageShift
		hi := lo + PageSize
		if hi > len(r.data) {
			hi = len(r.data)
		}
		copy(r.data[lo:hi], baseline[lo:hi])
		if r.WriteHook != nil {
			r.WriteHook(r.Base+Addr(lo), hi-lo)
		}
		pages++
	})
	r.ResetDirty()
	return pages, nil
}

// forEachDirty calls fn with each dirty page index in ascending order.
func (r *Region) forEachDirty(fn func(page int)) {
	for wi, w := range r.dirty {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			fn(wi*64 + b)
		}
	}
}

// Restore overwrites the region's contents from a snapshot.
func (r *Region) Restore(snap []byte) error {
	if len(snap) != len(r.data) {
		return fmt.Errorf("memsim: snapshot size %d does not match %s size %d",
			len(snap), r.Name, len(r.data))
	}
	copy(r.data, snap)
	r.markAll()
	if r.WriteHook != nil {
		r.WriteHook(r.Base, len(r.data))
	}
	return nil
}

// Memory is the target's full address space: an ordered set of regions.
type Memory struct {
	regions []*Region
	// last caches the most recently resolved region: accesses cluster
	// (stack, then a statistics block, then code), so the hit rate is high
	// and a miss just falls through to the ordered scan.
	last *Region
}

// NewMemory returns an address space containing the given regions. Regions
// must not overlap.
func NewMemory(regions ...*Region) (*Memory, error) {
	m := &Memory{}
	for _, r := range regions {
		for _, prev := range m.regions {
			if r.Base < prev.End() && prev.Base < r.End() {
				return nil, fmt.Errorf("memsim: regions %s and %s overlap", prev.Name, r.Name)
			}
		}
		m.regions = append(m.regions, r)
	}
	return m, nil
}

// NewTargetMemory returns the default WISP-like memory map: SRAM + FRAM.
func NewTargetMemory() (*Memory, *Region, *Region) {
	sram := NewRegion("SRAM", SRAMBase, SRAMSize, true)
	fram := NewRegion("FRAM", FRAMBase, FRAMSize, false)
	m, err := NewMemory(sram, fram)
	if err != nil {
		panic(err) // static layout; cannot overlap
	}
	return m, sram, fram
}

// RegionAt returns the region containing a, or nil if a is unmapped.
func (m *Memory) RegionAt(a Addr) *Region {
	if r := m.last; r != nil && r.Contains(a) {
		return r
	}
	for _, r := range m.regions {
		if r.Contains(a) {
			m.last = r
			return r
		}
	}
	return nil
}

// Regions returns the mapped regions.
func (m *Memory) Regions() []*Region { return m.regions }

// ReadByte reads one byte, faulting on unmapped addresses.
func (m *Memory) ReadByteAt(a Addr) (byte, error) {
	r := m.RegionAt(a)
	if r == nil {
		return 0, &Fault{Addr: a}
	}
	r.Reads++
	if r.ReadHook != nil {
		r.ReadHook(a, 1)
	}
	return r.data[a-r.Base], nil
}

// WriteByte writes one byte, faulting on unmapped addresses.
func (m *Memory) WriteByteAt(a Addr, b byte) error {
	r := m.RegionAt(a)
	if r == nil {
		return &Fault{Addr: a, Write: true}
	}
	r.Writes++
	off := a - r.Base
	r.data[off] = b
	if r.dirty != nil {
		p := uint(off) >> pageShift
		r.dirty[p>>6] |= 1 << (p & 63)
	}
	if r.WriteHook != nil {
		r.WriteHook(a, 1)
	}
	return nil
}

// ReadWord reads a little-endian 16-bit word. A word access that straddles a
// region boundary faults, as it would on hardware.
func (m *Memory) ReadWord(a Addr) (uint16, error) {
	r := m.RegionAt(a)
	if r == nil || !r.Contains(a+1) {
		return 0, &Fault{Addr: a}
	}
	r.Reads++
	if r.ReadHook != nil {
		r.ReadHook(a, 2)
	}
	off := a - r.Base
	return binary.LittleEndian.Uint16(r.data[off : off+2]), nil
}

// WriteWord writes a little-endian 16-bit word.
func (m *Memory) WriteWord(a Addr, v uint16) error {
	r := m.RegionAt(a)
	if r == nil || !r.Contains(a+1) {
		return &Fault{Addr: a, Write: true}
	}
	r.Writes++
	off := a - r.Base
	binary.LittleEndian.PutUint16(r.data[off:off+2], v)
	if r.dirty != nil {
		p := uint(off) >> pageShift
		r.dirty[p>>6] |= 1 << (p & 63)
		p = (uint(off) + 1) >> pageShift
		r.dirty[p>>6] |= 1 << (p & 63)
	}
	if r.WriteHook != nil {
		r.WriteHook(a, 2)
	}
	return nil
}

// ReadBytes copies n bytes starting at a into a new slice.
func (m *Memory) ReadBytes(a Addr, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := m.ReadByteAt(a + Addr(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes writes the given bytes starting at a.
func (m *Memory) WriteBytes(a Addr, data []byte) error {
	for i, b := range data {
		if err := m.WriteByteAt(a+Addr(i), b); err != nil {
			return err
		}
	}
	return nil
}

// EnableDirtyTracking turns on the page-dirty write barrier for every
// mapped region.
func (m *Memory) EnableDirtyTracking() {
	for _, r := range m.regions {
		r.EnableDirtyTracking()
	}
}

// ClearVolatile zeroes every volatile region — the effect of a power
// failure on memory.
func (m *Memory) ClearVolatile() {
	for _, r := range m.regions {
		if r.Volatile {
			r.Clear()
		}
	}
}
