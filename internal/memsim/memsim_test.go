package memsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func target(t *testing.T) (*Memory, *Region, *Region) {
	t.Helper()
	return NewTargetMemory()
}

func TestWordRoundTrip(t *testing.T) {
	m, _, _ := target(t)
	f := func(off uint16, v uint16) bool {
		a := FRAMBase + Addr(off%(FRAMSize-2))
		if err := m.WriteWord(a, v); err != nil {
			return false
		}
		got, err := m.ReadWord(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m, _, _ := target(t)
	if err := m.WriteWord(FRAMBase, 0xABCD); err != nil {
		t.Fatal(err)
	}
	lo, _ := m.ReadByteAt(FRAMBase)
	hi, _ := m.ReadByteAt(FRAMBase + 1)
	if lo != 0xCD || hi != 0xAB {
		t.Fatalf("layout = %#02x %#02x", lo, hi)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m, _, _ := target(t)
	// NULL dereference — the wild-pointer write of Fig. 3.
	err := m.WriteWord(Null+2, 0x1234)
	var f *Fault
	if !errors.As(err, &f) || !f.Write || f.Addr != 2 {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.ReadWord(0x0100); err == nil {
		t.Fatal("low memory must be unmapped")
	}
	if _, err := m.ReadByteAt(0xFFFF); err == nil {
		t.Fatal("top of address space must be unmapped")
	}
	if f.Error() == "" || (&Fault{Addr: 1}).Error() == "" {
		t.Fatal("fault strings")
	}
}

func TestWordStraddlingRegionEndFaults(t *testing.T) {
	m, sram, _ := target(t)
	last := sram.End() - 1
	if _, err := m.ReadWord(last); err == nil {
		t.Fatal("word read across region end must fault")
	}
	if err := m.WriteWord(last, 1); err == nil {
		t.Fatal("word write across region end must fault")
	}
}

func TestOverlapRejected(t *testing.T) {
	a := NewRegion("a", 0x1000, 0x100, true)
	b := NewRegion("b", 0x10F0, 0x100, false)
	if _, err := NewMemory(a, b); err == nil {
		t.Fatal("overlapping regions must be rejected")
	}
	c := NewRegion("c", 0x1100, 0x100, false)
	if _, err := NewMemory(a, c); err != nil {
		t.Fatalf("adjacent regions must be fine: %v", err)
	}
}

func TestAllocator(t *testing.T) {
	_, _, fram := target(t)
	a1, err := fram.Alloc(3) // rounds to 4
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fram.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1+4 {
		t.Fatalf("alignment: a1=%#x a2=%#x", a1, a2)
	}
	if fram.InUse() != 6 {
		t.Fatalf("in use = %d", fram.InUse())
	}
	if _, err := fram.Alloc(-1); err == nil {
		t.Fatal("negative alloc must fail")
	}
	if _, err := fram.Alloc(FRAMSize); err == nil {
		t.Fatal("oversized alloc must fail")
	}
	if _, err := fram.AllocWords(2); err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	r := NewRegion("tiny", 0x1000, 8, false)
	if _, err := r.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(2); err == nil {
		t.Fatal("exhausted region must refuse")
	}
	r.Reset()
	if _, err := r.Alloc(8); err != nil {
		t.Fatal("reset must free the allocator")
	}
}

func TestClearVolatileSemantics(t *testing.T) {
	m, sram, fram := target(t)
	if err := m.WriteWord(SRAMBase, 0x1111); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(FRAMBase, 0x2222); err != nil {
		t.Fatal(err)
	}
	m.ClearVolatile()
	v, _ := m.ReadWord(SRAMBase)
	nv, _ := m.ReadWord(FRAMBase)
	if v != 0 {
		t.Fatal("SRAM must clear on power failure")
	}
	if nv != 0x2222 {
		t.Fatal("FRAM must survive power failure")
	}
	_ = sram
	_ = fram
}

func TestSnapshotRestore(t *testing.T) {
	_, sram, _ := target(t)
	m, _, _ := NewTargetMemory()
	_ = m
	for i := 0; i < 16; i++ {
		sramWrite(t, sram, i, byte(i*3))
	}
	snap := sram.Snapshot()
	sram.Clear()
	if err := sram.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if got := sramRead(t, sram, i); got != byte(i*3) {
			t.Fatalf("byte %d = %d", i, got)
		}
	}
	if err := sram.Restore(make([]byte, 3)); err == nil {
		t.Fatal("bad snapshot size must error")
	}
}

// helpers operating through a Memory wrapper around a single region.
func sramWrite(t *testing.T, r *Region, off int, b byte) {
	t.Helper()
	m, err := NewMemory(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteByteAt(r.Base+Addr(off), b); err != nil {
		t.Fatal(err)
	}
}

func sramRead(t *testing.T, r *Region, off int) byte {
	t.Helper()
	m, err := NewMemory(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadByteAt(r.Base + Addr(off))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReadWriteBytes(t *testing.T) {
	m, _, _ := target(t)
	data := []byte{1, 2, 3, 4, 5}
	if err := m.WriteBytes(FRAMBase+10, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(FRAMBase+10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
	if _, err := m.ReadBytes(0, 4); err == nil {
		t.Fatal("unmapped block read must fail")
	}
	if err := m.WriteBytes(0, data); err == nil {
		t.Fatal("unmapped block write must fail")
	}
}

func TestAccessCounters(t *testing.T) {
	m, _, fram := target(t)
	r0, w0 := fram.Reads, fram.Writes
	_ = m.WriteWord(FRAMBase, 7)
	_, _ = m.ReadWord(FRAMBase)
	if fram.Writes != w0+1 || fram.Reads != r0+1 {
		t.Fatal("counters must advance")
	}
}

func TestRegionAt(t *testing.T) {
	m, sram, fram := target(t)
	if m.RegionAt(SRAMBase) != sram || m.RegionAt(FRAMBase) != fram {
		t.Fatal("region lookup")
	}
	if m.RegionAt(0x0000) != nil {
		t.Fatal("null page must be unmapped")
	}
	if len(m.Regions()) != 2 {
		t.Fatal("regions count")
	}
}

// TestMemoryAgainstReferenceModel drives random byte/word operations
// through the simulated memory and mirrors them in a plain map: contents
// must match exactly, and fault behavior must be purely a function of the
// address.
func TestMemoryAgainstReferenceModel(t *testing.T) {
	type op struct {
		Word  bool
		Write bool
		Addr  uint16
		Val   uint16
	}
	f := func(ops []op) bool {
		m, _, _ := NewTargetMemory()
		ref := map[Addr]byte{}
		mapped := func(a Addr) bool { return m.RegionAt(a) != nil }
		for _, o := range ops {
			a := Addr(o.Addr)
			switch {
			case o.Write && o.Word:
				err := m.WriteWord(a, o.Val)
				wantOK := mapped(a) && mapped(a+1) && m.RegionAt(a) == m.RegionAt(a+1)
				if (err == nil) != wantOK {
					return false
				}
				if err == nil {
					ref[a] = byte(o.Val)
					ref[a+1] = byte(o.Val >> 8)
				}
			case o.Write:
				err := m.WriteByteAt(a, byte(o.Val))
				if (err == nil) != mapped(a) {
					return false
				}
				if err == nil {
					ref[a] = byte(o.Val)
				}
			case o.Word:
				v, err := m.ReadWord(a)
				wantOK := mapped(a) && mapped(a+1) && m.RegionAt(a) == m.RegionAt(a+1)
				if (err == nil) != wantOK {
					return false
				}
				if err == nil {
					want := uint16(ref[a]) | uint16(ref[a+1])<<8
					if v != want {
						return false
					}
				}
			default:
				v, err := m.ReadByteAt(a)
				if (err == nil) != mapped(a) {
					return false
				}
				if err == nil && v != ref[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
