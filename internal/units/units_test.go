package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestScaleHelpers(t *testing.T) {
	cases := []struct {
		got  float64
		want float64
	}{
		{float64(MicroFarads(47)), 47e-6},
		{float64(NanoFarads(100)), 100e-9},
		{float64(MilliAmps(0.5)), 0.5e-3},
		{float64(MicroAmps(350)), 350e-6},
		{float64(NanoAmps(836.51)), 836.51e-9},
		{float64(MilliVolts(54)), 0.054},
		{float64(MicroJoules(1.25)), 1.25e-6},
		{float64(NanoJoules(10)), 10e-9},
		{float64(MilliSeconds(3.1)), 3.1e-3},
		{float64(MicroSeconds(100)), 100e-6},
		{float64(MilliWatts(2)), 2e-3},
	}
	for i, c := range cases {
		if !almost(c.got, c.want, 1e-15) {
			t.Errorf("case %d: got %g want %g", i, c.got, c.want)
		}
	}
}

func TestCapacitorEnergy(t *testing.T) {
	// The paper's reference store: 47 µF at 2.4 V holds ½CV² ≈ 135.4 µJ.
	e := CapacitorEnergy(MicroFarads(47), 2.4)
	if !almost(float64(e), 135.36e-6, 0.1e-6) {
		t.Fatalf("47uF@2.4V = %v, want ~135.4uJ", e)
	}
	if CapacitorEnergy(MicroFarads(47), 0) != 0 {
		t.Fatal("zero volts must store zero energy")
	}
}

func TestCapacitorVoltageInvertsEnergy(t *testing.T) {
	f := func(v float64) bool {
		v = math.Abs(math.Mod(v, 10))
		c := MicroFarads(47)
		e := CapacitorEnergy(c, Volts(v))
		back := CapacitorVoltage(c, e)
		return almost(float64(back), v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCapacitorVoltageEdges(t *testing.T) {
	if CapacitorVoltage(MicroFarads(47), -1) != 0 {
		t.Fatal("negative energy must give zero volts")
	}
	if CapacitorVoltage(0, 1) != 0 {
		t.Fatal("zero capacitance must give zero volts")
	}
}

func TestDBmConversions(t *testing.T) {
	// 30 dBm = 1 W.
	if !almost(float64(MilliwattsFromDBm(30)), 1.0, 1e-12) {
		t.Fatalf("30dBm = %v W, want 1", MilliwattsFromDBm(30))
	}
	// 0 dBm = 1 mW.
	if !almost(float64(MilliwattsFromDBm(0)), 1e-3, 1e-15) {
		t.Fatalf("0dBm = %v W, want 1mW", MilliwattsFromDBm(0))
	}
	if !math.IsInf(float64(DBmFromWatts(0)), -1) {
		t.Fatal("0 W must be -inf dBm")
	}
}

func TestDBmRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		p = math.Mod(p, 60) // keep in a sane dBm range
		w := MilliwattsFromDBm(DBm(p))
		back := DBmFromWatts(w)
		return almost(float64(back), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("clamp misbehaves")
	}
}

func TestEngineeringFormat(t *testing.T) {
	cases := []struct {
		s    string
		want string
	}{
		{Volts(2.4).String(), "2.4V"},
		{MilliVolts(54).String(), "54mV"},
		{NanoAmps(836.51).String(), "836.51nA"},
		{MicroFarads(47).String(), "47µF"},
		{MicroJoules(1.25).String(), "1.25µJ"},
		{Seconds(0.0031).String(), "3.1ms"},
		{Volts(0).String(), "0V"},
		{Amps(-2.51e-9).String(), "-2.51nA"},
	}
	for i, c := range cases {
		if c.s != c.want {
			t.Errorf("case %d: got %q want %q", i, c.s, c.want)
		}
	}
	if !strings.HasSuffix(Ohms(1000).String(), "kΩ") {
		t.Errorf("1000 ohms = %q", Ohms(1000).String())
	}
}
