// Package units defines the physical quantities used throughout the EDB
// simulator: voltage, current, capacitance, energy, power, and time.
//
// Every subsystem — the capacitor model, the harvester, the MCU's energy
// accounting, EDB's ADC — exchanges values in these types rather than bare
// float64s, so unit mistakes become type errors. All quantities are SI
// (volts, amperes, farads, joules, watts, seconds) stored as float64.
package units

import (
	"fmt"
	"math"
)

// Volts is an electric potential in volts.
type Volts float64

// Amps is an electric current in amperes. Positive current flows into the
// node under discussion (charging); negative flows out (discharging).
type Amps float64

// Farads is a capacitance in farads.
type Farads float64

// Joules is an energy in joules.
type Joules float64

// Watts is a power in watts.
type Watts float64

// Seconds is a duration or instant in seconds of simulated time.
type Seconds float64

// Ohms is a resistance in ohms.
type Ohms float64

// Hertz is a frequency in hertz.
type Hertz float64

// DBm is a power level in decibel-milliwatts, used for the RFID reader's
// transmit power.
type DBm float64

// Meters is a distance in meters, used for the reader-to-tag separation.
type Meters float64

// Common scale helpers. They make call sites read like a datasheet:
// units.MicroFarads(47), units.MilliAmps(0.5), units.MilliVolts(54).

// MicroFarads returns f µF as Farads.
func MicroFarads(f float64) Farads { return Farads(f * 1e-6) }

// NanoFarads returns f nF as Farads.
func NanoFarads(f float64) Farads { return Farads(f * 1e-9) }

// MilliAmps returns f mA as Amps.
func MilliAmps(f float64) Amps { return Amps(f * 1e-3) }

// MicroAmps returns f µA as Amps.
func MicroAmps(f float64) Amps { return Amps(f * 1e-6) }

// NanoAmps returns f nA as Amps.
func NanoAmps(f float64) Amps { return Amps(f * 1e-9) }

// MilliVolts returns f mV as Volts.
func MilliVolts(f float64) Volts { return Volts(f * 1e-3) }

// MicroJoules returns f µJ as Joules.
func MicroJoules(f float64) Joules { return Joules(f * 1e-6) }

// NanoJoules returns f nJ as Joules.
func NanoJoules(f float64) Joules { return Joules(f * 1e-9) }

// MilliSeconds returns f ms as Seconds.
func MilliSeconds(f float64) Seconds { return Seconds(f * 1e-3) }

// MicroSeconds returns f µs as Seconds.
func MicroSeconds(f float64) Seconds { return Seconds(f * 1e-6) }

// MilliWatts returns f mW as Watts.
func MilliWatts(f float64) Watts { return Watts(f * 1e-3) }

// CapacitorEnergy returns the energy stored on a capacitor of capacitance c
// charged to voltage v: E = ½CV².
func CapacitorEnergy(c Farads, v Volts) Joules {
	return Joules(0.5 * float64(c) * float64(v) * float64(v))
}

// CapacitorVoltage returns the voltage of a capacitor of capacitance c
// holding energy e: V = sqrt(2E/C). It returns 0 for non-positive energy.
func CapacitorVoltage(c Farads, e Joules) Volts {
	if e <= 0 || c <= 0 {
		return 0
	}
	return Volts(math.Sqrt(2 * float64(e) / float64(c)))
}

// MilliwattsFromDBm converts a dBm power level to watts.
func MilliwattsFromDBm(p DBm) Watts {
	return Watts(math.Pow(10, float64(p)/10) * 1e-3)
}

// DBmFromWatts converts a power in watts to dBm.
func DBmFromWatts(w Watts) DBm {
	if w <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(float64(w)*1e3))
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String implementations render quantities with engineering prefixes so
// traces and console output read naturally.

func (v Volts) String() string   { return engFormat(float64(v), "V") }
func (a Amps) String() string    { return engFormat(float64(a), "A") }
func (f Farads) String() string  { return engFormat(float64(f), "F") }
func (j Joules) String() string  { return engFormat(float64(j), "J") }
func (w Watts) String() string   { return engFormat(float64(w), "W") }
func (s Seconds) String() string { return engFormat(float64(s), "s") }
func (o Ohms) String() string    { return engFormat(float64(o), "Ω") }

// engFormat renders x with an SI prefix chosen so the mantissa falls in
// [1, 1000), e.g. 0.0047 with unit "F" renders as "4.700mF".
func engFormat(x float64, unit string) string {
	if x == 0 {
		return "0" + unit
	}
	neg := x < 0
	if neg {
		x = -x
	}
	prefixes := []struct {
		scale float64
		sym   string
	}{
		{1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1, ""},
		{1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"},
	}
	for _, p := range prefixes {
		if x >= p.scale {
			v := x / p.scale
			if neg {
				v = -v
			}
			return trimZeros(v) + p.sym + unit
		}
	}
	if neg {
		x = -x
	}
	return trimZeros(x/1e-12) + "p" + unit
}

func trimZeros(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
