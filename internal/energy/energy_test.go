package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestCapacitorChargeDischargeSymmetry(t *testing.T) {
	c := NewCapacitor(units.MicroFarads(47), 3.0)
	c.SetVoltage(2.0)
	e0 := c.Energy()
	c.AddEnergy(units.MicroJoules(10))
	c.DrainEnergy(units.MicroJoules(10))
	if math.Abs(float64(c.Energy()-e0)) > 1e-12 {
		t.Fatalf("add+drain not symmetric: %v vs %v", c.Energy(), e0)
	}
}

func TestCapacitorClamps(t *testing.T) {
	c := NewCapacitor(units.MicroFarads(47), 3.0)
	c.SetVoltage(5.0)
	if c.Voltage() != 3.0 {
		t.Fatalf("over-voltage not clamped: %v", c.Voltage())
	}
	c.SetVoltage(-1)
	if c.Voltage() != 0 {
		t.Fatalf("negative voltage not clamped: %v", c.Voltage())
	}
	c.DrainEnergy(units.Joules(1)) // overdrain
	if c.Voltage() != 0 {
		t.Fatalf("overdrain must empty, got %v", c.Voltage())
	}
	c.DrainEnergy(-1) // no-op
	c.AddEnergy(-1)   // no-op
	if c.Voltage() != 0 {
		t.Fatal("negative energy ops must be no-ops")
	}
}

func TestApplyCurrentIntegration(t *testing.T) {
	// dV = I·dt/C: 1 mA for 47 ms on 47 µF = 1 V.
	c := NewCapacitor(units.MicroFarads(47), 3.0)
	c.ApplyCurrent(units.MilliAmps(1), units.MilliSeconds(47))
	if math.Abs(float64(c.Voltage())-1.0) > 1e-9 {
		t.Fatalf("V = %v, want 1", c.Voltage())
	}
	c.ApplyCurrent(units.MilliAmps(-1), units.MilliSeconds(47))
	if math.Abs(float64(c.Voltage())) > 1e-9 {
		t.Fatalf("V = %v, want 0", c.Voltage())
	}
}

func TestEnergyBetween(t *testing.T) {
	c := NewCapacitor(units.MicroFarads(47), 3.0)
	// The paper's reference numbers: ½·47µ·(2.4²−1.8²) ≈ 59.2 µJ.
	de := c.EnergyBetween(1.8, 2.4)
	if math.Abs(float64(de)-59.22e-6) > 0.1e-6 {
		t.Fatalf("dE = %v", de)
	}
	if c.EnergyBetween(2.4, 1.8) >= 0 {
		t.Fatal("downward delta must be negative")
	}
}

func TestEnergyNonNegativeInvariant(t *testing.T) {
	f := func(ops []float64) bool {
		c := NewCapacitor(units.MicroFarads(47), 3.0)
		c.SetVoltage(1.5)
		for _, op := range ops {
			if math.IsNaN(op) || math.IsInf(op, 0) {
				continue
			}
			c.ApplyCurrent(units.Amps(math.Mod(op, 0.01)), units.MicroSeconds(100))
			if c.Voltage() < 0 || c.Voltage() > 3.0 || c.Energy() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRFHarvesterPathLoss(t *testing.T) {
	h := NewRFHarvester()
	h.Noise = nil
	p1 := h.ReceivedPower()
	h.Distance = 2.0
	p2 := h.ReceivedPower()
	// Friis: doubling distance quarters the received power.
	if math.Abs(float64(p1)/float64(p2)-4.0) > 1e-9 {
		t.Fatalf("path loss ratio = %v", float64(p1)/float64(p2))
	}
	h.CarrierOn = false
	if h.ReceivedPower() != 0 || h.Current(1.5) != 0 {
		t.Fatal("carrier off must harvest nothing")
	}
}

func TestRFHarvesterTaper(t *testing.T) {
	h := NewRFHarvester()
	h.Noise = nil
	if h.Current(h.Voc) != 0 {
		t.Fatal("no current at open-circuit voltage")
	}
	if h.Current(units.Volts(float64(h.Voc)+0.5)) != 0 {
		t.Fatal("no current above open-circuit voltage")
	}
	// Deliverable current decreases with voltage.
	if h.Current(1.8) <= h.Current(2.8) {
		t.Fatalf("taper violated: %v vs %v", h.Current(1.8), h.Current(2.8))
	}
}

func TestConstantAndNullHarvesters(t *testing.T) {
	ch := &ConstantHarvester{I: units.MilliAmps(1), Voc: 3.0}
	if ch.Current(2.0) != units.MilliAmps(1) || ch.Current(3.0) != 0 {
		t.Fatal("constant harvester")
	}
	if (NullHarvester{}).Current(1.0) != 0 {
		t.Fatal("null harvester")
	}
	if ch.Name() == "" || (NullHarvester{}).Name() == "" {
		t.Fatal("harvesters must be named")
	}
}

func TestSolarHarvesterScale(t *testing.T) {
	scale := 1.0
	sh := &SolarHarvester{IMax: units.MilliAmps(2), Voc: 3.0, Scale: func() float64 { return scale }}
	full := sh.Current(1.5)
	scale = 0.5
	half := sh.Current(1.5)
	if math.Abs(float64(full)/float64(half)-2) > 1e-9 {
		t.Fatalf("scaling broken: %v vs %v", full, half)
	}
	if sh.Current(3.0) != 0 {
		t.Fatal("voc taper")
	}
}

func TestSupplySawtooth(t *testing.T) {
	// Charge with no load, turn on at 2.4 V, discharge under load to 1.8 V,
	// turn off: the paper's Fig. 2B cycle.
	s := WISP5Supply(&ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3})
	if s.State() != PowerOff {
		t.Fatal("must start off")
	}
	dt, err := s.ChargeUntilOn(units.MicroSeconds(100), units.Seconds(5))
	if err != nil {
		t.Fatal(err)
	}
	// 2.4 V on 47 µF at 1 mA is ~113 ms.
	if dt < units.MilliSeconds(90) || dt > units.MilliSeconds(140) {
		t.Fatalf("charge time = %v", dt)
	}
	if s.State() != PowerOn {
		t.Fatal("must be on after charge")
	}
	// Load 3 mA (net -2 mA): 0.6 V fall takes ~14 ms.
	var elapsed units.Seconds
	for s.State() == PowerOn {
		s.Step(units.MilliAmps(3), units.MicroSeconds(100))
		elapsed += units.MicroSeconds(100)
		if elapsed > 1 {
			t.Fatal("never browned out")
		}
	}
	if elapsed < units.MilliSeconds(10) || elapsed > units.MilliSeconds(20) {
		t.Fatalf("discharge time = %v", elapsed)
	}
	if s.Voltage() >= s.VBrownOut+0.01 {
		t.Fatalf("voltage after brownout = %v", s.Voltage())
	}
}

func TestSupplyTetherIsolation(t *testing.T) {
	s := WISP5Supply(&ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3})
	s.Cap.SetVoltage(2.0)
	s.SetTethered(true)
	v0 := s.Voltage()
	for i := 0; i < 1000; i++ {
		s.Step(units.MilliAmps(5), units.MicroSeconds(100))
	}
	if s.Voltage() != v0 {
		t.Fatalf("tethered capacitor must hold: %v vs %v", s.Voltage(), v0)
	}
	if !s.Tethered() {
		t.Fatal("tethered flag")
	}
}

func TestSupplyEnergyAccounting(t *testing.T) {
	s := WISP5Supply(&ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3})
	if _, err := s.ChargeUntilOn(units.MicroSeconds(100), units.Seconds(5)); err != nil {
		t.Fatal(err)
	}
	if s.Harvested() <= 0 {
		t.Fatal("harvested energy must accumulate")
	}
	h0 := s.Harvested()
	s.Step(units.MilliAmps(3), units.MilliSeconds(1))
	if s.Consumed() <= 0 {
		t.Fatal("consumed energy must accumulate")
	}
	if s.Harvested() <= h0 {
		t.Fatal("harvest continues during discharge")
	}
}

func TestChargeUntilOnFailure(t *testing.T) {
	s := WISP5Supply(NullHarvester{})
	if _, err := s.ChargeUntilOn(units.MilliSeconds(1), units.MilliSeconds(100)); err == nil {
		t.Fatal("null harvester must fail to reach turn-on")
	}
}

func TestReferenceEnergy(t *testing.T) {
	s := WISP5Supply(NullHarvester{})
	// ½·47µ·2.4² ≈ 135.4 µJ.
	if math.Abs(float64(s.ReferenceEnergy())-135.36e-6) > 0.1e-6 {
		t.Fatalf("reference energy = %v", s.ReferenceEnergy())
	}
}

func TestHarvestNoiseBounded(t *testing.T) {
	h := NewRFHarvester()
	base := func() float64 {
		h2 := NewRFHarvester()
		h2.Noise = nil
		return float64(h2.Current(2.0))
	}()
	for i := 0; i < 1000; i++ {
		v := float64(h.Current(2.0))
		if v < base*(1-h.NoiseFrac)-1e-12 || v > base*(1+h.NoiseFrac)+1e-12 {
			t.Fatalf("noise out of bounds: %v vs base %v", v, base)
		}
	}
}

func TestPowerStateString(t *testing.T) {
	if PowerOn.String() != "on" || PowerOff.String() != "off" {
		t.Fatal("state strings")
	}
}

// TestEnergyConservation: over any charge/discharge trajectory that stays
// inside the clamps, harvested − consumed equals the change in stored
// energy to within integration error (first law, per Supply.Step's
// bookkeeping).
func TestEnergyConservation(t *testing.T) {
	s := WISP5Supply(&ConstantHarvester{I: units.MicroAmps(400), Voc: 3.3})
	s.Cap.SetVoltage(2.0)
	s.Step(0, 0) // latch state without energy flow
	e0 := float64(s.Cap.Energy())
	dt := units.MicroSeconds(50)
	for i := 0; i < 200000; i++ {
		// Alternate light and heavy load with a 400 µA average, equal to
		// the harvest, so the trajectory oscillates inside (0, VMax)
		// without touching the clamps (clamping discards energy the
		// bookkeeping has already counted).
		load := units.MicroAmps(100)
		if i%1000 < 400 {
			load = units.MicroAmps(850)
		}
		s.Step(load, dt)
	}
	e1 := float64(s.Cap.Energy())
	balance := float64(s.Harvested()) - float64(s.Consumed())
	change := e1 - e0
	if diff := balance - change; diff > 1e-7 || diff < -1e-7 {
		t.Fatalf("energy books do not balance: harvested-consumed=%v, ΔE=%v (diff %v)",
			balance, change, diff)
	}
}
