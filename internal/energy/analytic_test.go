package energy

import (
	"math"
	"testing"

	"repro/internal/units"
)

// steppedOnly hides the AnalyticCharger method of the wrapped harvester so a
// supply is forced onto the stepped-integration path.
type steppedOnly struct{ h Harvester }

func (s steppedOnly) Current(v units.Volts) units.Amps { return s.h.Current(v) }
func (s steppedOnly) Name() string                     { return s.h.Name() }

func TestConstantChargeTimeClosedForm(t *testing.T) {
	h := &ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3}
	dt, ok := h.ChargeTime(units.MicroFarads(47), 0, 2.4)
	if !ok {
		t.Fatal("closed form must apply")
	}
	want := 47e-6 * 2.4 / 1e-3 // 112.8 ms
	if math.Abs(float64(dt)-want) > 1e-9 {
		t.Fatalf("ChargeTime = %v, want %v", dt, want)
	}
	if _, ok := h.ChargeTime(units.MicroFarads(47), 0, 3.3); ok {
		t.Fatal("target at Voc must be unreachable")
	}
}

func TestAnalyticChargeMatchesStepped(t *testing.T) {
	mk := func(h Harvester) *Supply { return WISP5Supply(h) }
	noiseless := func() *RFHarvester {
		h := NewRFHarvester()
		h.Noise = nil
		return h
	}

	dt := units.MicroSeconds(10)
	stepped := mk(steppedOnly{noiseless()})
	tStepped, err := stepped.ChargeUntilOn(dt, units.Seconds(10))
	if err != nil {
		t.Fatal(err)
	}

	analytic := mk(noiseless())
	tAnalytic, err := analytic.ChargeUntilOn(dt, units.Seconds(10))
	if err != nil {
		t.Fatal(err)
	}

	// The stepped result overshoots by up to one Euler step plus
	// integration error; 1% agreement confirms the closed form.
	if rel := math.Abs(float64(tAnalytic-tStepped)) / float64(tStepped); rel > 0.01 {
		t.Fatalf("analytic %v vs stepped %v: relative error %.4f", tAnalytic, tStepped, rel)
	}
	if analytic.State() != PowerOn {
		t.Fatal("supply must be on after the jump")
	}
	if v := analytic.Voltage(); v != 2.4 {
		t.Fatalf("voltage after jump = %v", v)
	}
	if analytic.Harvested() <= 0 {
		t.Fatal("jump must account harvested energy")
	}
	// Energy bookkeeping must agree with the stored energy.
	if got, want := float64(analytic.Harvested()), float64(analytic.Cap.Energy()); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("harvested %v != stored %v", got, want)
	}
}

func TestChargeJumpDeclines(t *testing.T) {
	// Stochastic harvester: no closed form.
	s := WISP5Supply(NewRFHarvester())
	if _, ok := s.ChargeJumpToOn(units.Seconds(10)); ok {
		t.Fatal("jump must decline with fading noise enabled")
	}
	if s.State() != PowerOff || s.Voltage() != 0 {
		t.Fatal("declined jump must not mutate the supply")
	}

	// Crossing beyond maxDt: decline, unchanged.
	s2 := WISP5Supply(&ConstantHarvester{I: units.MicroAmps(1), Voc: 3.3})
	if _, ok := s2.ChargeJumpToOn(units.MilliSeconds(1)); ok {
		t.Fatal("jump must decline when the crossing exceeds maxDt")
	}
	if s2.Voltage() != 0 {
		t.Fatal("declined jump must not mutate the capacitor")
	}

	// Non-analytic harvester still reports the stall error.
	s3 := WISP5Supply(NullHarvester{})
	if _, err := s3.ChargeUntilOn(units.MilliSeconds(1), units.MilliSeconds(10)); err == nil {
		t.Fatal("null harvester must fail to reach turn-on")
	}

	// Tethered supplies never jump.
	s4 := WISP5Supply(&ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3})
	s4.SetTethered(true)
	if _, ok := s4.ChargeJumpToOn(units.Seconds(10)); ok {
		t.Fatal("jump must decline while tethered")
	}
}
