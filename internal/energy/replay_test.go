package energy_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/units"
)

func TestTraceAtZeroOrderHold(t *testing.T) {
	tr := &energy.HarvestTrace{Samples: []energy.HarvestSample{
		{T: 0, I: 1e-3},
		{T: 1, I: 2e-3},
		{T: 2, I: 3e-3},
	}}
	// A sample holds from its own timestamp until the next one.
	if tr.At(0.5) != 1e-3 || tr.At(1.0) != 2e-3 || tr.At(1.5) != 2e-3 {
		t.Fatalf("hold values: %v %v %v", tr.At(0.5), tr.At(1.0), tr.At(1.5))
	}
	// Wraps after the end.
	if tr.At(2.5) != tr.At(0.5) {
		t.Fatalf("wrap: %v vs %v", tr.At(2.5), tr.At(0.5))
	}
	if tr.Duration() != 2 {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if (&energy.HarvestTrace{}).At(1) != 0 {
		t.Fatal("empty trace current")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := &energy.HarvestTrace{Name: "rf", Samples: []energy.HarvestSample{
		{T: 0, I: 1.5e-4},
		{T: 0.25, I: 2.25e-4},
		{T: 0.5, I: 0},
	}}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := energy.ReadHarvestTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != 3 {
		t.Fatalf("samples = %d", len(back.Samples))
	}
	for i := range tr.Samples {
		if back.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %+v vs %+v", i, back.Samples[i], tr.Samples[i])
		}
	}
	if _, err := energy.ReadHarvestTrace(strings.NewReader("garbage,line\n")); err == nil {
		t.Fatal("bad csv must error")
	}
}

// TestRecordReplayReproducesRun is the Ekho property: record the energy
// environment of one intermittent run, then replay it into a fresh device
// — the replayed run's reboot schedule matches the recorded run exactly,
// even though the original harvester was stochastic.
func TestRecordReplayReproducesRun(t *testing.T) {
	// Recorded run: RF harvester with fading, wrapped in a Recorder.
	src := energy.NewRFHarvester()
	d1 := device.NewWISP5(src, 42) // placeholder supply; we rewire below
	rec := energy.NewRecorder(src, func() units.Seconds { return d1.Clock.Time() })
	d1.Supply.Harvester = rec

	app1 := &apps.Busy{}
	r1 := device.NewRunner(d1, app1)
	if err := r1.Flash(); err != nil {
		t.Fatal(err)
	}
	res1, err := r1.RunFor(units.Seconds(4))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Reboots < 3 {
		t.Fatalf("recorded run must be intermittent: %+v", res1)
	}
	trace := rec.Trace()
	if trace.Duration() < 3 {
		t.Fatalf("trace too short: %v", trace.Duration())
	}

	// Replay into two fresh devices: both must match the recorded run.
	replayRun := func() device.RunResult {
		d := device.NewWISP5(energy.NullHarvester{}, 42)
		d.Supply.Harvester = &energy.ReplayHarvester{
			Trace: trace,
			Now:   func() units.Seconds { return d.Clock.Time() },
		}
		app := &apps.Busy{}
		r := device.NewRunner(d, app)
		if err := r.Flash(); err != nil {
			t.Fatal(err)
		}
		res, err := r.RunFor(units.Seconds(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res2 := replayRun()
	res3 := replayRun()
	if res2.Reboots != res3.Reboots {
		t.Fatalf("replay not deterministic: %d vs %d reboots", res2.Reboots, res3.Reboots)
	}
	// The replayed schedule tracks the recorded one closely (quantization
	// of the trace makes exact equality too strict across the rewire).
	diff := res2.Reboots - res1.Reboots
	if diff < -2 || diff > 2 {
		t.Fatalf("replay diverged: recorded %d reboots, replayed %d", res1.Reboots, res2.Reboots)
	}
}

func TestRecorderMinInterval(t *testing.T) {
	clockT := units.Seconds(0)
	rec := energy.NewRecorder(&energy.ConstantHarvester{I: 1e-3, Voc: 3.3},
		func() units.Seconds { return clockT })
	rec.MinInterval = 0.1
	for i := 0; i < 100; i++ {
		clockT = units.Seconds(float64(i) * 0.01) // 10 ms steps
		rec.Current(2.0)
	}
	n := len(rec.Trace().Samples)
	if n > 12 {
		t.Fatalf("min interval not honored: %d samples", n)
	}
	if n < 8 {
		t.Fatalf("too few samples: %d", n)
	}
}
