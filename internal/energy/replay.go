package energy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/units"
)

// Recording and replay of energy environments, in the spirit of Ekho
// (Hester et al., SenSys'14), which the paper's §6.1 positions as
// complementary to EDB: Ekho records the energy a harvesting circuit
// delivers and reproduces the trace as power input, making problematic
// intermittent behavior repeatable; EDB then provides the visibility to
// diagnose it. This file implements both halves in simulation: a Recorder
// samples a live harvester's delivered current against the store's
// voltage trajectory, and a ReplayHarvester plays the recorded trace back
// bit-for-bit, independent of the original source's randomness.

// HarvestSample is one point of a recorded energy environment.
type HarvestSample struct {
	T units.Seconds
	I units.Amps
}

// HarvestTrace is a recorded energy environment.
type HarvestTrace struct {
	Name    string
	Samples []HarvestSample
}

// Duration returns the trace length.
func (tr *HarvestTrace) Duration() units.Seconds {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.Samples[len(tr.Samples)-1].T
}

// At returns the recorded current at time t (zero-order hold; t past the
// end wraps around, so short recordings can power long replays).
func (tr *HarvestTrace) At(t units.Seconds) units.Amps {
	n := len(tr.Samples)
	if n == 0 {
		return 0
	}
	d := tr.Duration()
	if d > 0 && t > d {
		t = units.Seconds(float64(t) - float64(d)*float64(int(float64(t)/float64(d))))
	}
	i := sort.Search(n, func(k int) bool { return tr.Samples[k].T > t })
	if i == 0 {
		return tr.Samples[0].I
	}
	return tr.Samples[i-1].I
}

// WriteTo serializes the trace as "t_seconds,amps" CSV.
func (tr *HarvestTrace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	k, err := fmt.Fprintf(w, "# harvest trace %q\nt_seconds,amps\n", tr.Name)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, s := range tr.Samples {
		k, err := fmt.Fprintf(w, "%.9f,%.9e\n", float64(s.T), float64(s.I))
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadHarvestTrace parses the CSV form written by WriteTo.
func ReadHarvestTrace(r io.Reader) (*HarvestTrace, error) {
	sc := bufio.NewScanner(r)
	tr := &HarvestTrace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "t_seconds") {
			continue
		}
		var t, i float64
		if _, err := fmt.Sscanf(text, "%g,%g", &t, &i); err != nil {
			return nil, fmt.Errorf("energy: trace line %d: %w", line, err)
		}
		tr.Samples = append(tr.Samples, HarvestSample{T: units.Seconds(t), I: units.Amps(i)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Recorder wraps a live harvester and records the current it delivers.
// It implements Harvester, so it drops into a Supply transparently; the
// caller advances RecordAt as simulated time passes (the Supply queries
// Current once per integration step, and the Recorder timestamps each
// query with the clock function provided).
type Recorder struct {
	Source Harvester
	// Now returns the present simulated time (wired to a sim.Clock).
	Now func() units.Seconds
	// MinInterval limits the recording density (default: keep everything).
	MinInterval units.Seconds

	trace HarvestTrace
	last  units.Seconds
	first bool
}

// NewRecorder wraps source, timestamping with now.
func NewRecorder(source Harvester, now func() units.Seconds) *Recorder {
	return &Recorder{Source: source, Now: now, trace: HarvestTrace{Name: source.Name()}}
}

// Current implements Harvester: sample the source and record it.
func (r *Recorder) Current(v units.Volts) units.Amps {
	i := r.Source.Current(v)
	t := r.Now()
	if !r.first || float64(t-r.last) >= float64(r.MinInterval) {
		r.trace.Samples = append(r.trace.Samples, HarvestSample{T: t, I: i})
		r.last = t
		r.first = true
	}
	return i
}

// Name implements Harvester.
func (r *Recorder) Name() string { return "record(" + r.Source.Name() + ")" }

// Trace returns the recording so far.
func (r *Recorder) Trace() *HarvestTrace {
	cp := r.trace
	cp.Samples = append([]HarvestSample(nil), r.trace.Samples...)
	return &cp
}

// ReplayHarvester plays a recorded trace back: the delivered current is a
// pure function of simulated time, so a problematic run reproduces exactly
// regardless of what the device does — Ekho's "realistic and repeatable
// experimentation".
type ReplayHarvester struct {
	Trace *HarvestTrace
	// Now returns the present simulated time.
	Now func() units.Seconds
}

// Current implements Harvester.
func (r *ReplayHarvester) Current(v units.Volts) units.Amps {
	// The recorded current already embeds the source's V-dependence along
	// the recorded trajectory; replay reproduces the power environment,
	// not the I–V surface (Ekho records I–V surfaces from hardware; the
	// simulation's surface is the source model itself).
	return r.Trace.At(r.Now())
}

// Name implements Harvester.
func (r *ReplayHarvester) Name() string { return "replay(" + r.Trace.Name + ")" }
