// Package energy models the power system of an energy-harvesting device:
// the storage capacitor, the ambient harvester, and the regulator's
// turn-on / brown-out comparator. Together they produce the characteristic
// "sawtooth" charge-discharge dynamics of Figure 2B in the paper, which is
// the root cause of intermittent execution.
//
// Physics: the storage element is a capacitor C. Its stored energy is
// E = ½CV². A net current I (harvest minus load) changes the voltage as
// dV/dt = I/C. The harvester behaves as a high-source-resistance supply: its
// deliverable current falls as the capacitor voltage approaches the
// harvester's open-circuit voltage, producing the RC-flavored charge curve
// the paper describes.
package energy

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Capacitor is an energy storage capacitor with an absolute voltage ceiling
// (the harvester front end clamps at VMax, e.g. by an over-voltage shunt).
type Capacitor struct {
	C    units.Farads
	VMax units.Volts

	v units.Volts
}

// NewCapacitor returns a capacitor of capacitance c clamped at vmax,
// initially empty.
func NewCapacitor(c units.Farads, vmax units.Volts) *Capacitor {
	return &Capacitor{C: c, VMax: vmax}
}

// Voltage returns the present capacitor voltage.
func (c *Capacitor) Voltage() units.Volts { return c.v }

// SetVoltage forces the capacitor to voltage v, clamped to [0, VMax]. It is
// used by EDB's charge/discharge circuit and by test setup.
func (c *Capacitor) SetVoltage(v units.Volts) {
	c.v = units.Volts(units.Clamp(float64(v), 0, float64(c.VMax)))
}

// Energy returns the stored energy ½CV².
func (c *Capacitor) Energy() units.Joules {
	return units.CapacitorEnergy(c.C, c.v)
}

// MaxEnergy returns the energy stored at VMax — the denominator the paper
// uses when quoting costs as "% of storage capacity".
func (c *Capacitor) MaxEnergy() units.Joules {
	return units.CapacitorEnergy(c.C, c.VMax)
}

// ApplyCurrent integrates a net current i over dt: dV = i·dt/C. Positive i
// charges; negative discharges. Voltage clamps to [0, VMax].
func (c *Capacitor) ApplyCurrent(i units.Amps, dt units.Seconds) {
	dv := float64(i) * float64(dt) / float64(c.C)
	c.SetVoltage(c.v + units.Volts(dv))
}

// DrainEnergy removes e joules, clamping at empty:
// V' = sqrt(max(0, V² − 2e/C)).
func (c *Capacitor) DrainEnergy(e units.Joules) {
	if e <= 0 {
		return
	}
	v2 := float64(c.v)*float64(c.v) - 2*float64(e)/float64(c.C)
	if v2 <= 0 {
		c.v = 0
		return
	}
	c.v = units.Volts(math.Sqrt(v2))
}

// AddEnergy stores e joules, clamping at VMax.
func (c *Capacitor) AddEnergy(e units.Joules) {
	if e <= 0 {
		return
	}
	v2 := float64(c.v)*float64(c.v) + 2*float64(e)/float64(c.C)
	c.SetVoltage(units.Volts(math.Sqrt(v2)))
}

// EnergyBetween returns the energy difference ½C(v1²−v0²); positive when
// v1 > v0. Used by EDB's compensation accounting and by Table 3.
func (c *Capacitor) EnergyBetween(v0, v1 units.Volts) units.Joules {
	return units.Joules(0.5 * float64(c.C) * (float64(v1)*float64(v1) - float64(v0)*float64(v0)))
}

// Harvester supplies charging current as a function of the present storage
// voltage. Implementations model different ambient sources.
type Harvester interface {
	// Current returns the charge current delivered into a store currently
	// at voltage v. Implementations return 0 when no energy is available.
	Current(v units.Volts) units.Amps
	// Name identifies the harvester in traces.
	Name() string
}

// AnalyticCharger is implemented by harvesters whose no-load charge curve
// has a closed form. ChargeTime returns the time to charge capacitance c
// from v0 to v1 under zero load, and whether the closed form applies.
// Implementations must return false whenever their current is stochastic or
// the target voltage is unreachable; callers then fall back to stepped
// integration.
type AnalyticCharger interface {
	ChargeTime(c units.Farads, v0, v1 units.Volts) (units.Seconds, bool)
}

// RFHarvester models the WISP's RF energy front end: a rectifier fed by a
// reader's carrier. Received power follows a Friis-style path-loss model
// from the reader's transmit power and distance; conversion efficiency and
// the rectifier's open-circuit voltage shape the delivered current.
//
// The paper's setup: Impinj Speedway reader at up to 30 dBm, antenna 1 m
// from the WISP; "the amount of harvestable energy is inversely proportional
// to this distance".
type RFHarvester struct {
	TxPower    units.DBm    // reader transmit power
	Distance   units.Meters // reader-to-tag separation
	FreqMHz    float64      // carrier frequency (915 MHz UHF RFID)
	Efficiency float64      // RF→DC conversion efficiency (0..1)
	Voc        units.Volts  // rectifier open-circuit voltage
	CarrierOn  bool         // reader carrier present

	// AntennaGainDBi is the combined TX+RX antenna gain in dBi.
	AntennaGainDBi float64

	// PowerScale scales the received power (0 or negative means 1, the
	// default). Fleet simulations use it for reader-contention models: a
	// reader time-sharing its carrier across many tags delivers each a
	// fraction of the solo power. It participates in the Friis memo key and
	// the closed-form charge solve, so scaled charging still fast-forwards.
	PowerScale float64

	// Noise models small-scale fading of the RF channel: each current
	// draw is jittered by ±NoiseFrac. Without it the supply is perfectly
	// deterministic and intermittent executions phase-lock — every
	// brown-out lands on the same instruction, which no real deployment
	// exhibits. Noise is seeded, so runs remain reproducible.
	Noise     *sim.RNG
	NoiseFrac float64

	// Memoized Friis result: ReceivedPower is a pure function of the
	// fields in prKey, and the hot loop (Supply.Step every quantum) calls it
	// through Current with the same configuration for millions of steps.
	prKey   [5]float64
	prValid bool
	prCache units.Watts
}

// scale returns the effective PowerScale (unset means 1).
func (h *RFHarvester) scale() float64 {
	if h.PowerScale <= 0 {
		return 1
	}
	return h.PowerScale
}

// NewRFHarvester returns an RF harvester configured like the paper's setup:
// 30 dBm reader, 1 m range, 915 MHz, with carrier on.
func NewRFHarvester() *RFHarvester {
	return &RFHarvester{
		TxPower:        30,
		Distance:       1.0,
		FreqMHz:        915,
		Efficiency:     0.30,
		Voc:            3.3,
		CarrierOn:      true,
		AntennaGainDBi: 12,
		Noise:          sim.NewRNG(1117),
		NoiseFrac:      0.25,
	}
}

// ReceivedPower returns the RF power arriving at the tag antenna per the
// Friis transmission equation.
func (h *RFHarvester) ReceivedPower() units.Watts {
	if !h.CarrierOn || h.Distance <= 0 {
		return 0
	}
	key := [5]float64{float64(h.TxPower), float64(h.Distance), h.FreqMHz, h.AntennaGainDBi, h.scale()}
	if h.prValid && key == h.prKey {
		return h.prCache
	}
	pt := float64(units.MilliwattsFromDBm(h.TxPower))
	gain := math.Pow(10, h.AntennaGainDBi/10)
	lambda := 299.792458 / h.FreqMHz // wavelength in meters
	denom := 4 * math.Pi * float64(h.Distance) / lambda
	pr := units.Watts(pt * gain / (denom * denom) * h.scale())
	h.prKey, h.prValid, h.prCache = key, true, pr
	return pr
}

// Current implements Harvester. The rectifier behaves like a source with
// open-circuit voltage Voc: deliverable current tapers linearly to zero as
// the store approaches Voc (the high source resistance the paper highlights).
func (h *RFHarvester) Current(v units.Volts) units.Amps {
	pr := float64(h.ReceivedPower()) * h.Efficiency
	if pr <= 0 {
		return 0
	}
	// Convert available DC power to current at the working voltage, with
	// the linear taper toward Voc.
	vEff := math.Max(float64(v), 0.5) // rectifier won't exceed short-circuit behavior
	i := pr / vEff
	taper := 1 - float64(v)/float64(h.Voc)
	if taper <= 0 {
		return 0
	}
	out := i * taper
	if h.Noise != nil && h.NoiseFrac > 0 {
		out = h.Noise.Jitter(out, h.NoiseFrac)
	}
	return units.Amps(out)
}

// Name implements Harvester.
func (h *RFHarvester) Name() string { return "rf" }

// ChargeTime implements AnalyticCharger. The closed form only applies when
// the fading noise is disabled — with noise, each step's current is a fresh
// draw and the trajectory has no closed form (and skipping the draws would
// desynchronize the seeded stream).
//
// The no-load ODE splits at the 0.5 V rectifier knee in Current:
//
//	v < 0.5:  dv/dt = (2P/C)·(1 − v/Voc)        → exponential toward Voc
//	v ≥ 0.5:  dv/dt = (P/C)·(Voc − v)/(v·Voc)   → t = (C·Voc/P)·[(v0−v1) + Voc·ln((Voc−v0)/(Voc−v1))]
func (h *RFHarvester) ChargeTime(c units.Farads, v0, v1 units.Volts) (units.Seconds, bool) {
	if h.Noise != nil && h.NoiseFrac > 0 {
		return 0, false
	}
	p := float64(h.ReceivedPower()) * h.Efficiency
	voc := float64(h.Voc)
	if p <= 0 || voc <= 0 || float64(v1) >= voc {
		return 0, false
	}
	if v1 <= v0 {
		return 0, true
	}
	cf, lo, hi := float64(c), float64(v0), float64(v1)
	var t float64
	if lo < 0.5 {
		seg := math.Min(hi, 0.5)
		t += (cf * voc / (2 * p)) * math.Log((voc-lo)/(voc-seg))
		lo = seg
	}
	if hi > lo {
		t += (cf * voc / p) * ((lo - hi) + voc*math.Log((voc-lo)/(voc-hi)))
	}
	return units.Seconds(t), true
}

// Reseed re-derives the fading stream from seed. Device constructors call
// it so that distinct device seeds see distinct (but reproducible) RF
// channels; without this, every run would share the default stream and
// "different seeds" would leave the supply identical.
func (h *RFHarvester) Reseed(seed int64) {
	if h.Noise != nil {
		h.Noise = sim.NewRNG(seed ^ 0x5eed_0f_4ad1)
	}
}

// Reseeder is implemented by harvesters whose stochastic stream should
// follow the owning device's seed.
type Reseeder interface{ Reseed(seed int64) }

// StatefulHarvester is implemented by harvesters carrying stochastic
// internal state that must ride along in machine snapshots. The bool result
// of HarvesterState is false when the harvester happens to be running
// deterministically (no state to capture).
type StatefulHarvester interface {
	HarvesterState() (sim.RNGState, bool)
	RestoreHarvesterState(sim.RNGState)
}

// HarvesterState implements StatefulHarvester: the fading stream position.
func (h *RFHarvester) HarvesterState() (sim.RNGState, bool) {
	if h.Noise == nil {
		return sim.RNGState{}, false
	}
	return h.Noise.State(), true
}

// RestoreHarvesterState implements StatefulHarvester.
func (h *RFHarvester) RestoreHarvesterState(st sim.RNGState) {
	if h.Noise == nil {
		h.Noise = sim.NewRNG(st.Seed)
	}
	h.Noise.RestoreState(st)
}

// ConstantHarvester delivers a fixed current up to an open-circuit voltage.
// It is useful in tests where a known charge rate is required.
type ConstantHarvester struct {
	I   units.Amps
	Voc units.Volts
}

// Current implements Harvester.
func (h *ConstantHarvester) Current(v units.Volts) units.Amps {
	if v >= h.Voc {
		return 0
	}
	return h.I
}

// Name implements Harvester.
func (h *ConstantHarvester) Name() string { return "constant" }

// ChargeTime implements AnalyticCharger: t = C·(v1−v0)/I.
func (h *ConstantHarvester) ChargeTime(c units.Farads, v0, v1 units.Volts) (units.Seconds, bool) {
	if h.I <= 0 || v1 >= h.Voc {
		return 0, false
	}
	if v1 <= v0 {
		return 0, true
	}
	return units.Seconds(float64(c) * float64(v1-v0) / float64(h.I)), true
}

// NullHarvester supplies no energy; the device runs down and dies. Useful
// for modelling a reader turning off or a tag leaving range.
type NullHarvester struct{}

// Current implements Harvester.
func (NullHarvester) Current(units.Volts) units.Amps { return 0 }

// Name implements Harvester.
func (NullHarvester) Name() string { return "null" }

// SolarHarvester models an indoor-solar source with slow illumination
// variation supplied by the caller (scale in [0,1]).
type SolarHarvester struct {
	IMax  units.Amps
	Voc   units.Volts
	Scale func() float64 // current illumination fraction; nil means 1
}

// Current implements Harvester.
func (h *SolarHarvester) Current(v units.Volts) units.Amps {
	if v >= h.Voc {
		return 0
	}
	s := 1.0
	if h.Scale != nil {
		s = units.Clamp(h.Scale(), 0, 1)
	}
	taper := 1 - float64(v)/float64(h.Voc)
	return units.Amps(float64(h.IMax) * s * taper)
}

// Name implements Harvester.
func (h *SolarHarvester) Name() string { return "solar" }

// PowerState describes whether the regulator has the MCU powered.
type PowerState int

const (
	// PowerOff: voltage below turn-on threshold; MCU unpowered, charging.
	PowerOff PowerState = iota
	// PowerOn: MCU operating; discharging (net of harvest).
	PowerOn
)

func (s PowerState) String() string {
	if s == PowerOn {
		return "on"
	}
	return "off"
}

// Supply combines capacitor, harvester, and the regulator comparator with
// hysteresis: the MCU turns on at VTurnOn and browns out at VBrownOut.
// The paper's WISP 5: 47 µF, turn-on 2.4 V, brown-out 1.8 V.
type Supply struct {
	Cap       *Capacitor
	Harvester Harvester
	VTurnOn   units.Volts
	VBrownOut units.Volts

	state PowerState
	// Tethered indicates EDB is powering the load externally: load current
	// is not drawn from the capacitor and the brown-out comparator is
	// bypassed (the keeper holds the rail).
	tethered bool

	// Accumulated statistics.
	harvested units.Joules
	consumed  units.Joules
}

// NewSupply returns a supply with an arbitrary storage capacitor and
// comparator thresholds — EDB "can connect to any energy-harvesting device
// with a microcontroller and a capacitor" (§4), so non-WISP profiles
// (bigger caps, different rails) are first-class.
func NewSupply(c units.Farads, vmax, vTurnOn, vBrownOut units.Volts, h Harvester) *Supply {
	return &Supply{
		Cap:       NewCapacitor(c, vmax),
		Harvester: h,
		VTurnOn:   vTurnOn,
		VBrownOut: vBrownOut,
	}
}

// WISP5Supply returns a supply configured with the WISP 5 parameters from
// the paper's evaluation: 47 µF storage, 2.4 V turn-on, 1.8 V brown-out.
func WISP5Supply(h Harvester) *Supply {
	return NewSupply(units.MicroFarads(47), 3.0, 2.4, 1.8, h)
}

// State returns the present power state.
func (s *Supply) State() PowerState { return s.state }

// Voltage returns the present storage voltage.
func (s *Supply) Voltage() units.Volts { return s.Cap.Voltage() }

// Tethered reports whether the load is externally powered.
func (s *Supply) Tethered() bool { return s.tethered }

// SetTethered connects (true) or disconnects (false) external power. While
// tethered the capacitor neither charges from the harvester nor discharges
// into the load: EDB's keeper diode isolates it, freezing the energy state
// except for explicit manipulation.
func (s *Supply) SetTethered(t bool) { s.tethered = t }

// ReferenceEnergy returns ½C·VTurnOn² — the "maximum energy storable on
// the target" the paper uses as the denominator when quoting costs as a
// percentage of the 47 µF storage capacity (Vmax = 2.4 V in §5.2.2).
func (s *Supply) ReferenceEnergy() units.Joules {
	return units.CapacitorEnergy(s.Cap.C, s.VTurnOn)
}

// Harvested returns total energy delivered by the harvester so far.
func (s *Supply) Harvested() units.Joules { return s.harvested }

// Consumed returns total energy drawn by the load so far.
func (s *Supply) Consumed() units.Joules { return s.consumed }

// SupplyState is a restorable snapshot of a Supply's mutable state. The
// static configuration (capacitance, thresholds, harvester wiring) is not
// captured: a snapshot restores onto a supply built with the same profile.
type SupplyState struct {
	Voltage   units.Volts
	State     PowerState
	Tethered  bool
	Harvested units.Joules
	Consumed  units.Joules
}

// SnapshotState captures the supply's mutable state.
func (s *Supply) SnapshotState() SupplyState {
	return SupplyState{
		Voltage:   s.Cap.Voltage(),
		State:     s.state,
		Tethered:  s.tethered,
		Harvested: s.harvested,
		Consumed:  s.consumed,
	}
}

// RestoreState applies a captured state.
func (s *Supply) RestoreState(st SupplyState) {
	s.Cap.SetVoltage(st.Voltage)
	s.state = st.State
	s.tethered = st.Tethered
	s.harvested = st.Harvested
	s.consumed = st.Consumed
}

// Step advances the supply by dt with the load drawing loadCurrent (only
// meaningful when PowerOn). It returns the new power state. The caller (the
// device) is responsible for reacting to a transition to PowerOff by
// resetting the MCU.
func (s *Supply) Step(loadCurrent units.Amps, dt units.Seconds) PowerState {
	if s.tethered {
		// External supply serves the load; the capacitor is isolated but
		// the regulator's comparator still sees the held rail.
		switch s.state {
		case PowerOff:
			if s.Cap.Voltage() >= s.VTurnOn {
				s.state = PowerOn
			}
		case PowerOn:
			if s.Cap.Voltage() < s.VBrownOut {
				s.state = PowerOff
			}
		}
		return s.state
	}
	ih := s.Harvester.Current(s.Cap.Voltage())
	v0 := s.Cap.Voltage()
	// The caller passes the MCU load only while the regulator has it
	// powered; while off, loadCurrent is just attached-tool leakage —
	// which drains (or feeds) the store regardless of power state.
	net := ih - loadCurrent
	s.Cap.ApplyCurrent(net, dt)
	v1 := s.Cap.Voltage()

	// Energy bookkeeping (at the average voltage over the step).
	vAvg := (float64(v0) + float64(v1)) / 2
	s.harvested += units.Joules(float64(ih) * vAvg * float64(dt))
	s.consumed += units.Joules(float64(loadCurrent) * vAvg * float64(dt))

	switch s.state {
	case PowerOff:
		if v1 >= s.VTurnOn {
			s.state = PowerOn
		}
	case PowerOn:
		if v1 < s.VBrownOut {
			s.state = PowerOff
		}
	}
	return s.state
}

// ChargeJumpToOn analytically advances a no-load charging phase straight to
// the turn-on crossing: the capacitor is set to VTurnOn, the elapsed time
// from the harvester's closed-form RC solve is returned, and the supply
// switches to PowerOn. It declines — returning (0, false) with no state
// change — when no closed form applies (stochastic or non-analytic
// harvester), when the target is unreachable, or when the crossing would
// take longer than maxDt.
func (s *Supply) ChargeJumpToOn(maxDt units.Seconds) (units.Seconds, bool) {
	if s.tethered || s.state != PowerOff || maxDt <= 0 {
		return 0, false
	}
	ac, ok := s.Harvester.(AnalyticCharger)
	if !ok || s.VTurnOn > s.Cap.VMax {
		return 0, false
	}
	v0 := s.Cap.Voltage()
	if v0 >= s.VTurnOn {
		s.state = PowerOn
		return 0, true
	}
	dt, ok := ac.ChargeTime(s.Cap.C, v0, s.VTurnOn)
	if !ok || dt <= 0 || dt > maxDt {
		return 0, false
	}
	s.Cap.SetVoltage(s.VTurnOn)
	s.harvested += s.Cap.EnergyBetween(v0, s.VTurnOn)
	s.state = PowerOn
	return dt, true
}

// ChargeUntilOn advances the supply with no load until the MCU turns on,
// returning the elapsed time. Harvesters with a closed-form charge curve
// jump straight to the turn-on crossing; others integrate in dt steps. It
// fails if the harvester cannot reach the turn-on threshold within maxTime.
func (s *Supply) ChargeUntilOn(dt, maxTime units.Seconds) (units.Seconds, error) {
	if elapsed, ok := s.ChargeJumpToOn(maxTime); ok {
		return elapsed, nil
	}
	var elapsed units.Seconds
	for elapsed < maxTime {
		if s.Step(0, dt) == PowerOn {
			return elapsed + dt, nil
		}
		elapsed += dt
	}
	return elapsed, fmt.Errorf("energy: harvester %q cannot reach turn-on %s within %s (stalled at %s)",
		s.Harvester.Name(), s.VTurnOn, maxTime, s.Cap.Voltage())
}
