// Package fleet is the batched simulation kernel: it steps an array of
// intermittently-powered tags through shared time slices instead of running
// one event loop per rig, which is what makes Table-4-style studies at
// 10k–100k devices practical in a single process.
//
// Equivalence by construction. Each tag owns the same Device, Supply, and
// interpreter objects a sequential core.Rig run would use, and the fleet's
// per-tag state machine is a resumable transliteration of
// device.Runner.RunUntil: the charge phase runs through
// Device.IdleChargeUntil with the charge deadline computed once at phase
// entry, the execute phase drives isa programs through Program.StepUntil
// (Go-burst programs run whole bursts, which a power failure bounds), and
// the wedged-MCU burn loop ticks the same 1024-cycle chunks. Because slice
// boundaries only ever pause a tag between the exact same env calls a
// sequential run performs, a batched run of N tags produces byte-identical
// per-tag outcomes to N sequential Rig runs — the golden property
// fleet_test.go enforces under -race at multiple worker counts.
//
// Layout. The scheduler's hot state is struct-of-arrays: phase, local
// clock, charge deadline, capacitor voltage, and outcome tallies live in
// parallel slices indexed by tag. The slice loop scans those arrays —
// skipping tags that already sit at or beyond the boundary without touching
// their device objects — and only enters a tag's Device/CPU working set
// when the tag actually has cycles to run. Cross-device effects (reader
// contention) are computed sequentially from the arrays at each slice
// barrier, in tag-index order, so they are deterministic at any worker
// count.
//
// Sharding. Per-slice work fans out over internal/parallel with one item
// per tag; each tag's randomness derives from parallel.ShardSeed(seed, i),
// so results are bit-for-bit identical at any worker count.
package fleet

import (
	"fmt"
	"runtime"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/units"
)

// Sliceable is implemented by programs whose execution can pause at a cycle
// limit and resume later with an identical env-call sequence (isa.Program).
// Programs without it run in whole bursts: Main executes until it returns
// or a terminal panic (power failure, fault, deadline) unwinds it — the
// intermittent execution model makes those bursts naturally short.
type Sliceable interface {
	// ResetCPU performs the power-on reset Main would start with.
	ResetCPU()
	// StepUntil advances until the program halts (true) or simulated time
	// reaches limit (false, resumable).
	StepUntil(env *device.Env, limit sim.Cycles) bool
}

// ContentionConfig models an RFID reader time-sharing its carrier: with
// more than Slots tags simultaneously charging, each receives
// Slots/charging of the solo received power. It requires per-tag
// RFHarvester sources and is recomputed at every slice barrier from the
// previous slice's power states, sequentially in tag-index order.
//
// Contention is a fleet-level effect with no sequential-rig equivalent, so
// the golden equivalence property only holds with Slots == 0 (disabled).
type ContentionConfig struct {
	// Slots is the number of tags the reader can energize at full power;
	// 0 disables contention.
	Slots int
}

// Config parameterizes a fleet run.
type Config struct {
	// Tags is the number of devices to simulate.
	Tags int
	// Duration is the simulated run length per tag.
	Duration units.Seconds
	// Slice is the batching granularity: all live tags reach each slice
	// boundary before cross-device effects are evaluated. Defaults to
	// 50 ms. Smaller slices tighten contention feedback; larger slices
	// amortize scheduling overhead.
	Slice units.Seconds
	// Seed is the base seed; tag i derives parallel.ShardSeed(Seed, i).
	Seed int64
	// MaxChargeTime bounds one charging phase (Runner's default: 10 s).
	MaxChargeTime units.Seconds
	// Quantum, when non-zero, overrides each device's active integration
	// quantum (device.DefaultConfig's 64 cycles). Larger quanta trade
	// supply-integration resolution for speed; at 47 µF even 512 cycles
	// (128 µs) moves the capacitor a few millivolts per step.
	Quantum sim.Cycles
	// SleepQuantum, when non-zero, is forwarded to each device's config:
	// coarser energy integration during low-power waits.
	SleepQuantum sim.Cycles
	// DeferSupply forwards device.Config.DeferSupply: batch sub-quantum
	// supply integration across env calls (monitor/probe-free tags only).
	DeferSupply bool
	// NewProgram builds tag i's firmware (required). Each tag needs its
	// own instance.
	NewProgram func(i int) device.Program
	// NewHarvester builds tag i's energy source; nil uses DefaultHarvester.
	NewHarvester func(i int, seed int64) energy.Harvester
	// Contention optionally couples tags through the reader's carrier.
	Contention ContentionConfig
}

// DefaultHarvester is the fleet's default per-tag energy source: the
// paper's 30 dBm / 915 MHz RF setup with fading noise disabled — noise-free
// supplies have closed-form charge curves, so off phases fast-forward
// analytically — and tag i placed at a deterministic distance in
// [0.6 m, 1.4 m), spreading the fleet across the harvesting range the way a
// real deployment spreads tags across a room.
func DefaultHarvester(i int, seed int64) energy.Harvester {
	h := energy.NewRFHarvester()
	h.Noise = nil
	h.NoiseFrac = 0
	h.Distance = units.Meters(0.6 + 0.8*float64(i%97)/97.0)
	return h
}

// TagResult is one tag's outcome: exactly what a sequential
// Runner.RunFor(duration) on the same device would have returned.
type TagResult struct {
	Result device.RunResult
	// Err is non-nil if the tag's run aborted (e.g. ErrNeverPowered).
	Err error
}

// Result summarizes a fleet run.
type Result struct {
	Tags []TagResult
	// Devices exposes each tag's device so callers can read
	// application-level statistics out of simulated FRAM afterwards.
	Devices []*device.Device
	// AggregateSimSeconds is the total simulated time executed across the
	// fleet (the numerator of the sim-seconds-per-wall-second metric).
	AggregateSimSeconds float64
	// Completed, Reboots, Faults are fleet-wide tallies.
	Completed int
	Reboots   int
	Faults    int
	// BytesPerTag is the approximate heap footprint per tag, measured
	// after construction.
	BytesPerTag float64
}

// tag phases of the resumable Runner state machine.
const (
	phaseChargeEnter = iota // evaluate powered-already, stamp charge deadline
	phaseCharging           // inside IdleChargeUntil
	phaseRunEnter           // power-on reset pending
	phaseRunning            // executing (mid-StepUntil for sliceable programs)
	phaseBurning            // wedged MCU burning until brown-out
	phaseDone
)

// sliceYield is the non-terminal outcome of an execution slice: the tag
// reached the slice boundary mid-run.
type sliceYield struct{}

// fleetState is the batched kernel: per-tag devices plus the
// struct-of-arrays scheduling state the slice loop scans.
type fleetState struct {
	cfg      Config
	deadline sim.Cycles

	devs  []*device.Device
	progs []device.Program
	envs  []*device.Env
	slics []Sliceable          // nil for burst-only programs
	harvs []*energy.RFHarvester // nil unless contention applies

	// Hot per-tag state, struct-of-arrays (indexed by tag).
	phase       []uint8
	now         []sim.Cycles // mirror of the tag's clock at last pause
	chargeLimit []sim.Cycles // absolute charge-phase deadline
	voltage     []float32    // capacitor voltage at last barrier
	completed   []bool
	deadlineHit []bool
	reboots     []int32
	faults      []int32
	halted      []string
	errs        []error
}

// Run executes the fleet and returns per-tag outcomes.
func Run(cfg Config) (*Result, error) {
	if cfg.Tags <= 0 {
		return nil, fmt.Errorf("fleet: Tags must be positive")
	}
	if cfg.NewProgram == nil {
		return nil, fmt.Errorf("fleet: NewProgram is required")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("fleet: Duration must be positive")
	}
	if cfg.Slice <= 0 {
		cfg.Slice = units.MilliSeconds(50)
	}
	if cfg.MaxChargeTime <= 0 {
		cfg.MaxChargeTime = units.Seconds(10)
	}
	if cfg.NewHarvester == nil {
		cfg.NewHarvester = DefaultHarvester
	}

	s, memPerTag, err := build(cfg)
	if err != nil {
		return nil, err
	}
	s.run()
	res := s.collect()
	res.BytesPerTag = memPerTag
	return res, nil
}

// build constructs every tag and measures the heap cost per tag.
func build(cfg Config) (*fleetState, float64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	n := cfg.Tags
	s := &fleetState{
		cfg:         cfg,
		devs:        make([]*device.Device, n),
		progs:       make([]device.Program, n),
		envs:        make([]*device.Env, n),
		slics:       make([]Sliceable, n),
		harvs:       make([]*energy.RFHarvester, n),
		phase:       make([]uint8, n),
		now:         make([]sim.Cycles, n),
		chargeLimit: make([]sim.Cycles, n),
		voltage:     make([]float32, n),
		completed:   make([]bool, n),
		deadlineHit: make([]bool, n),
		reboots:     make([]int32, n),
		faults:      make([]int32, n),
		halted:      make([]string, n),
		errs:        make([]error, n),
	}

	// Construction is parallel too: each tag's assembly (device, flash,
	// classifier training) is independent and seeded by ShardSeed.
	err := parallel.ForEach(n, func(i int) error {
		seed := parallel.ShardSeed(cfg.Seed, i)
		h := cfg.NewHarvester(i, seed)
		// Mirror device.NewWISP5: WISP 5 supply, harvester reseeded from
		// the tag's seed, plus the fleet's sleep-quantum override.
		dcfg := device.DefaultConfig()
		dcfg.Seed = seed
		if cfg.Quantum > 0 {
			dcfg.Quantum = cfg.Quantum
		}
		dcfg.SleepQuantum = cfg.SleepQuantum
		dcfg.DeferSupply = cfg.DeferSupply
		if r, ok := h.(energy.Reseeder); ok {
			r.Reseed(seed)
		}
		d := device.New(dcfg, energy.WISP5Supply(h))

		p := cfg.NewProgram(i)
		if err := p.Flash(d); err != nil {
			return fmt.Errorf("fleet: flashing tag %d: %w", i, err)
		}

		s.devs[i] = d
		s.progs[i] = p
		s.envs[i] = &device.Env{D: d}
		if sl, ok := p.(Sliceable); ok {
			s.slics[i] = sl
		}
		if rf, ok := h.(*energy.RFHarvester); ok {
			s.harvs[i] = rf
		}
		s.phase[i] = phaseChargeEnter
		s.voltage[i] = float32(d.Supply.Voltage())
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	s.deadline = s.devs[0].Clock.ToCycles(cfg.Duration)
	for _, d := range s.devs {
		d.SetDeadline(s.deadline)
	}

	runtime.GC()
	runtime.ReadMemStats(&m1)
	perTag := float64(0)
	if m1.HeapAlloc > m0.HeapAlloc {
		perTag = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(n)
	}
	return s, perTag, nil
}

// run is the time-sliced outer loop: advance every live tag to the next
// shared boundary, then apply cross-device effects, until all tags reach a
// terminal state.
func (s *fleetState) run() {
	n := s.cfg.Tags
	slice := s.devs[0].Clock.ToCycles(s.cfg.Slice)
	if slice == 0 {
		slice = 1
	}
	s.applyContention()

	const never = sim.Cycles(^uint64(0))
	for sliceEnd := slice; ; sliceEnd += slice {
		stopAt := sliceEnd
		if sliceEnd >= s.deadline {
			// Final pass: the shared deadline now bounds every tag, so
			// run each to its terminal outcome exactly as an unsliced
			// Runner would.
			stopAt = never
		}
		live := 0
		for i := 0; i < n; i++ {
			if s.phase[i] != phaseDone {
				live++
			}
		}
		if live == 0 {
			break
		}
		_ = parallel.ForEach(n, func(i int) error {
			if s.phase[i] != phaseDone && s.now[i] < stopAt {
				s.stepTag(i, stopAt)
			}
			return nil
		})
		s.applyContention()
		if stopAt == never {
			break
		}
	}
	for _, d := range s.devs {
		d.ClearDeadline()
	}
}

// stepTag advances tag i until it reaches the slice boundary or a terminal
// state. The body is Runner.RunUntil unrolled into a resumable machine;
// every transition matches the sequential control flow exactly.
func (s *fleetState) stepTag(i int, stopAt sim.Cycles) {
	d := s.devs[i]
	for s.phase[i] != phaseDone && d.Clock.Now() < stopAt {
		switch s.phase[i] {
		case phaseChargeEnter:
			// Runner.charge: already powered and above brown-out → run.
			if d.Supply.State() == energy.PowerOn && d.Supply.Voltage() >= d.Supply.VBrownOut {
				s.phase[i] = phaseRunEnter
				continue
			}
			// The charge deadline is stamped ONCE at phase entry (the
			// IdleCharge call in Runner computes it on entry); resuming
			// across slices must keep the original limit.
			s.chargeLimit[i] = d.Clock.Now() + d.Clock.ToCycles(s.cfg.MaxChargeTime)
			s.phase[i] = phaseCharging

		case phaseCharging:
			powered, exhausted, deadlineHit := s.chargeSlice(i, stopAt)
			switch {
			case deadlineHit:
				s.deadlineHit[i] = true
				s.phase[i] = phaseDone
			case powered:
				s.phase[i] = phaseRunEnter
			case exhausted:
				s.errs[i] = device.ErrNeverPowered
				s.phase[i] = phaseDone
			default:
				return // paused at the slice boundary
			}

		case phaseRunEnter:
			if sl := s.slics[i]; sl != nil {
				sl.ResetCPU()
			}
			s.phase[i] = phaseRunning

		case phaseRunning:
			outcome := s.execSlice(i, stopAt)
			switch o := outcome.(type) {
			case sliceYield:
				return
			case nil:
				s.completed[i] = true
				s.phase[i] = phaseDone
			case *device.PowerFailure:
				s.reboots[i]++
				d.Reboot()
				s.phase[i] = phaseChargeEnter
			case *device.MemoryFault:
				s.faults[i]++
				s.phase[i] = phaseBurning
			case *device.Halted:
				s.halted[i] = o.Reason
				s.phase[i] = phaseDone
			case *device.DeadlineReached:
				s.deadlineHit[i] = true
				s.phase[i] = phaseDone
			default:
				panic(outcome)
			}

		case phaseBurning:
			outcome := s.burnSlice(i, stopAt)
			switch outcome.(type) {
			case sliceYield:
				return
			case *device.PowerFailure:
				s.reboots[i]++
				d.Reboot()
				s.phase[i] = phaseChargeEnter
			case *device.DeadlineReached:
				s.deadlineHit[i] = true
				s.phase[i] = phaseDone
			default:
				panic(outcome)
			}
		}
	}
	s.now[i] = d.Clock.Now()
	s.voltage[i] = float32(d.Supply.Voltage())
}

// chargeSlice resumes tag i's charging phase, bounded by the slice.
func (s *fleetState) chargeSlice(i int, stopAt sim.Cycles) (powered, exhausted, deadlineHit bool) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*device.DeadlineReached); ok {
				deadlineHit = true
				return
			}
			panic(p)
		}
	}()
	powered, exhausted = s.devs[i].IdleChargeUntil(s.chargeLimit[i], stopAt)
	return
}

// execSlice runs tag i's program for one slice, converting terminal panics
// into outcome values (Runner.executeOnce, plus the resumable yield).
func (s *fleetState) execSlice(i int, stopAt sim.Cycles) (outcome any) {
	defer func() {
		if p := recover(); p != nil {
			switch p.(type) {
			case *device.PowerFailure, *device.MemoryFault, *device.Halted, *device.DeadlineReached:
				outcome = p
			default:
				panic(p)
			}
		}
	}()
	if sl := s.slics[i]; sl != nil {
		if sl.StepUntil(s.envs[i], stopAt) {
			return nil // program halted: Main would have returned
		}
		return sliceYield{}
	}
	// Burst program: one whole Main invocation. Power failure, fault, or
	// the deadline bounds it; it may overshoot the slice, which the
	// sequential reference would do identically.
	s.progs[i].Main(s.envs[i])
	return nil
}

// burnSlice models the wedged MCU burning energy until brown-out
// (Runner.burnUntilBrownout), sliced into the same 1024-cycle chunks.
func (s *fleetState) burnSlice(i int, stopAt sim.Cycles) (outcome any) {
	defer func() {
		if p := recover(); p != nil {
			switch p.(type) {
			case *device.PowerFailure, *device.DeadlineReached:
				outcome = p
			default:
				panic(p)
			}
		}
	}()
	env := s.envs[i]
	for s.devs[i].Clock.Now() < stopAt {
		env.Compute(1024)
	}
	return sliceYield{}
}

// applyContention recomputes each tag's share of the reader's carrier from
// the barrier-consistent voltage/phase arrays: deterministic, sequential,
// in tag-index order.
func (s *fleetState) applyContention() {
	slots := s.cfg.Contention.Slots
	if slots <= 0 {
		return
	}
	charging := 0
	for i := range s.phase {
		if s.phase[i] == phaseCharging || s.phase[i] == phaseChargeEnter {
			charging++
		}
	}
	scale := 1.0
	if charging > slots {
		scale = float64(slots) / float64(charging)
	}
	for _, h := range s.harvs {
		if h != nil {
			h.PowerScale = scale
		}
	}
}

// collect assembles per-tag RunResults exactly as Runner.RunUntil reports
// them (origin 0: fresh devices).
func (s *fleetState) collect() *Result {
	res := &Result{Tags: make([]TagResult, s.cfg.Tags), Devices: s.devs}
	for i, d := range s.devs {
		r := device.RunResult{
			Completed:   s.completed[i],
			Reboots:     int(s.reboots[i]),
			Faults:      int(s.faults[i]),
			Halted:      s.halted[i],
			DeadlineHit: s.deadlineHit[i],
			SimTime:     d.Clock.Time(),
			Stats:       d.Stats(),
		}
		res.Tags[i] = TagResult{Result: r, Err: s.errs[i]}
		res.AggregateSimSeconds += float64(r.SimTime)
		if r.Completed {
			res.Completed++
		}
		res.Reboots += r.Reboots
		res.Faults += r.Faults
	}
	return res
}
