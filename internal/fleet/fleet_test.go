package fleet_test

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/isa"
	"repro/internal/parallel"
	"repro/internal/units"
)

// testProgram builds tag i's firmware: a mix of burst-atomic Go apps and
// sliceable ISA programs, including one that halts (Completed) and one that
// spins forever (DeadlineHit), so every phase of the state machine is
// exercised.
func testProgram(i int) device.Program {
	switch i % 3 {
	case 0:
		return &apps.Activity{Print: apps.NoPrint}
	case 1:
		return isa.NewProgram("spin", `
main:	inc r5
	inc r6
	add r5, r7
	jmp main
`)
	default:
		return isa.NewProgram("counts-then-halts", `
	.equ HALT, 0x012C
main:	mov #0, r5
loop:	add #1, r5
	cmp #5000, r5
	jne loop
	mov #1, &HALT
`)
	}
}

// testHarvester mixes noise-free (analytic charge jumps) and noisy
// (stepped integration) supplies across the fleet.
func testHarvester(i int, seed int64) energy.Harvester {
	h := energy.NewRFHarvester()
	h.Distance = units.Meters(0.8 + 0.1*float64(i%5))
	if i%2 == 0 {
		h.Noise = nil
		h.NoiseFrac = 0
	}
	return h
}

// runSequential produces the golden reference for tag i: a plain
// sequential Rig run on an identically-constructed device.
func runSequential(t *testing.T, i int, seed int64, duration units.Seconds) fleet.TagResult {
	t.Helper()
	tagSeed := parallel.ShardSeed(seed, i)
	rig, err := core.NewRig(testProgram(i),
		core.WithoutEDB(),
		core.WithSeed(tagSeed),
		core.WithHarvester(testHarvester(i, tagSeed)))
	if err != nil {
		t.Fatalf("rig %d: %v", i, err)
	}
	res, err := rig.Run(duration)
	return fleet.TagResult{Result: res, Err: err}
}

// TestFleetMatchesSequential is the golden equivalence property: a batched
// run of N tags produces byte-identical per-tag outcomes to N sequential
// Rig runs, at every worker count.
func TestFleetMatchesSequential(t *testing.T) {
	const (
		n        = 9
		seed     = 42
		duration = units.Seconds(2)
	)

	want := make([]fleet.TagResult, n)
	for i := range want {
		want[i] = runSequential(t, i, seed, duration)
	}

	for _, workers := range []int{1, 4} {
		prev := parallel.SetWorkers(workers)
		res, err := fleet.Run(fleet.Config{
			Tags:         n,
			Duration:     duration,
			Seed:         seed,
			NewProgram:   testProgram,
			NewHarvester: testHarvester,
		})
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, got := range res.Tags {
			if !reflect.DeepEqual(got, want[i]) {
				t.Errorf("workers=%d tag %d diverged from sequential run:\n got %+v\nwant %+v",
					workers, i, got, want[i])
			}
		}
	}
}

// TestFleetSliceInvariance: the slice size is a scheduling knob, not a
// semantic one — any slice length must produce identical outcomes.
func TestFleetSliceInvariance(t *testing.T) {
	run := func(slice units.Seconds) *fleet.Result {
		res, err := fleet.Run(fleet.Config{
			Tags:         6,
			Duration:     1,
			Slice:        slice,
			Seed:         7,
			NewProgram:   testProgram,
			NewHarvester: testHarvester,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(units.MilliSeconds(50))
	for _, slice := range []units.Seconds{units.MilliSeconds(1), units.MilliSeconds(300), 2} {
		got := run(slice)
		if !reflect.DeepEqual(got.Tags, base.Tags) {
			t.Errorf("slice=%v changed outcomes", slice)
		}
	}
}

// TestFleetSleepQuantumEquivalence: with the coarse sleep quantum enabled,
// the batched run must still match a sequential Runner on a device built
// with the same config (the Rig constructor has no SleepQuantum knob, so
// the reference builds the device by hand).
func TestFleetSleepQuantumEquivalence(t *testing.T) {
	const (
		n        = 4
		seed     = 11
		duration = units.Seconds(2)
		sleepQ   = 4096
	)
	prog := func(i int) device.Program { return &apps.Activity{Print: apps.NoPrint} }
	harv := func(i int, s int64) energy.Harvester { return fleet.DefaultHarvester(i, s) }

	want := make([]fleet.TagResult, n)
	for i := range want {
		tagSeed := parallel.ShardSeed(seed, i)
		h := harv(i, tagSeed)
		dcfg := device.DefaultConfig()
		dcfg.Seed = tagSeed
		dcfg.SleepQuantum = sleepQ
		if r, ok := h.(energy.Reseeder); ok {
			r.Reseed(tagSeed)
		}
		d := device.New(dcfg, energy.WISP5Supply(h))
		r := device.NewRunner(d, prog(i))
		if err := r.Flash(); err != nil {
			t.Fatal(err)
		}
		res, err := r.RunFor(duration)
		want[i] = fleet.TagResult{Result: res, Err: err}
	}

	res, err := fleet.Run(fleet.Config{
		Tags:         n,
		Duration:     duration,
		Seed:         seed,
		SleepQuantum: sleepQ,
		NewProgram:   prog,
		NewHarvester: harv,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range res.Tags {
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("tag %d diverged under SleepQuantum:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestFleetContentionDeterministic: reader contention has no sequential
// equivalent, but it must still be bit-for-bit deterministic at any worker
// count, and sharing the carrier must not help the fleet (fewer or equal
// completions/iterations than uncontended tags).
func TestFleetContentionDeterministic(t *testing.T) {
	cfg := fleet.Config{
		Tags:       8,
		Duration:   2,
		Seed:       3,
		NewProgram: func(i int) device.Program { return &apps.Activity{Print: apps.NoPrint} },
		Contention: fleet.ContentionConfig{Slots: 2},
	}
	prev := parallel.SetWorkers(1)
	a, err := fleet.Run(cfg)
	parallel.SetWorkers(4)
	b, err2 := fleet.Run(cfg)
	parallel.SetWorkers(prev)
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	if !reflect.DeepEqual(a.Tags, b.Tags) {
		t.Error("contended fleet diverged across worker counts")
	}

	uncontended := cfg
	uncontended.Contention = fleet.ContentionConfig{}
	c, err := fleet.Run(uncontended)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reboots > c.Reboots {
		t.Logf("contended reboots %d > uncontended %d (tags browning out faster)", a.Reboots, c.Reboots)
	}
	// Both fleets simulate the same duration; contention changes what
	// happens within it, not how long it lasts (up to sub-millisecond
	// deadline overshoot, which depends on where each tag's last
	// integration quantum lands).
	if diff := a.AggregateSimSeconds - c.AggregateSimSeconds; diff < -1e-2 || diff > 1e-2 {
		t.Errorf("aggregate sim time changed: %v vs %v", a.AggregateSimSeconds, c.AggregateSimSeconds)
	}
}
