package scenario_test

import (
	"bytes"
	"testing"

	"repro/internal/scenario"
)

// TestTemplateImageRoundTrip: a template serialized to an image and
// reconstituted in (conceptually) another process forks sessions
// byte-identical to the original template — the property live migration
// rests on.
func TestTemplateImageRoundTrip(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "vcap;status;halt", Trace: true}
	tmpl, err := scenario.NewTemplate(spec)
	if err != nil {
		t.Fatal(err)
	}
	img, err := tmpl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.UnmarshalTemplate(img)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Usable(spec) {
		t.Fatal("reconstituted template does not cover its own spec")
	}
	if got.WarmupSeconds() != tmpl.WarmupSeconds() {
		t.Fatalf("warmup drift: %g vs %g", got.WarmupSeconds(), tmpl.WarmupSeconds())
	}

	var orig, rt bytes.Buffer
	if _, err := tmpl.Run(spec, &orig, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Run(spec, &rt, nil); err != nil {
		t.Fatal(err)
	}
	if orig.String() != rt.String() {
		t.Fatalf("image round-trip fork diverges\n--- original ---\n%s\n--- round-trip ---\n%s",
			orig.String(), rt.String())
	}

	// A second Marshal of the reconstituted template must be accepted too
	// (images are re-shippable).
	if _, err := got.Marshal(); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalTemplateRejectsGarbage: hostile images fail cleanly.
func TestUnmarshalTemplateRejectsGarbage(t *testing.T) {
	for _, img := range [][]byte{nil, {}, {0xFF, 0x00, 0x13}, bytes.Repeat([]byte{0x41}, 512)} {
		if _, err := scenario.UnmarshalTemplate(img); err == nil {
			t.Fatalf("image %x must be rejected", img)
		}
	}
}

// TestSpecHashStability: SpecHash keys on the simulation-shaping fields
// only — per-session fields (Seconds, Script, Interactive) hash equal, any
// sim-shaping change hashes different.
func TestSpecHashStability(t *testing.T) {
	base := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "vcap;halt"}
	alt := base
	alt.Seconds = 9
	alt.Script = "status;halt"
	alt.Interactive = true
	if scenario.SpecHash(base) != scenario.SpecHash(alt) {
		t.Fatal("per-session fields must not change SpecHash")
	}
	for _, mut := range []func(*scenario.Spec){
		func(s *scenario.Spec) { s.App = "fib" },
		func(s *scenario.Spec) { s.Seed = 43 },
		func(s *scenario.Spec) { s.Trace = true },
		func(s *scenario.Spec) { s.Guards = true },
	} {
		m := base
		mut(&m)
		if scenario.SpecHash(base) == scenario.SpecHash(m) {
			t.Fatalf("sim-shaping mutation %+v must change SpecHash", m)
		}
	}
	if scenario.TemplateKey(base) != scenario.TemplateKey(alt) {
		t.Fatal("TemplateKey must ignore per-session fields")
	}
}

// TestPoolInstallAndInvalidate: Install adopts a foreign template without a
// build; Invalidate drops it so the next run cold-boots and rebuilds.
func TestPoolInstallAndInvalidate(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "vcap;halt"}
	tmpl, err := scenario.NewTemplate(spec)
	if err != nil {
		t.Fatal(err)
	}

	p := scenario.NewPool(0)
	if p.Template(spec) != nil {
		t.Fatal("fresh pool must have no template")
	}
	p.Install(tmpl)
	if p.Template(spec) == nil {
		t.Fatal("Install must register the template")
	}

	var out bytes.Buffer
	if _, err := p.Run(spec, &out, nil); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	m := p.Metrics()
	if m.WarmForks != 1 || m.ColdBoots != 0 || m.TemplatesInstalled != 1 {
		t.Fatalf("installed template must serve warm immediately: %+v", m)
	}

	p.Invalidate(spec)
	if p.Template(spec) != nil {
		t.Fatal("Invalidate must drop the template")
	}
	out.Reset()
	if _, err := p.Run(spec, &out, nil); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	m = p.Metrics()
	if m.ColdBoots != 1 {
		t.Fatalf("run after Invalidate must cold-boot: %+v", m)
	}
	if m.TemplatesBuilt != 1 {
		t.Fatalf("run after Invalidate must trigger a rebuild: %+v", m)
	}
}
