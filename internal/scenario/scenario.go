// Package scenario is the shared run engine behind cmd/edb and the edbd
// daemon: it assembles a rig for a named firmware scenario, runs it
// intermittently with the debugger attached, drives interactive sessions
// from a script or a prompt callback, and writes every byte of user-facing
// output to an injected io.Writer.
//
// Because the local CLI and a remote edbd session execute the exact same
// engine, a scripted remote session's console output is byte-identical to
// the same script run locally — determinism survives the network hop.
package scenario

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/explore"
	"repro/internal/isa"
	"repro/internal/rfid"
	"repro/internal/trace"
	"repro/internal/units"
)

// Spec describes one debugging scenario: which firmware to run, for how
// long, under which energy conditions, and how interactive sessions are
// driven. It mirrors the cmd/edb flag set and crosses the wire verbatim
// for remote sessions.
type Spec struct {
	// App names a built-in firmware: linkedlist|safelist|fib|activity|rfid|busy.
	App string
	// AsmName/AsmSource run an MSP430-subset assembly program instead of App.
	AsmName   string
	AsmSource string
	// Assert enables the keep-alive assertions (linkedlist/safelist).
	Assert bool
	// Guards wraps debug instrumentation in energy guards (fib), or whole
	// loop iterations (linkedlist's §3.3.3 porting starting point).
	Guards bool
	// Print selects the activity app's print mode: none|uart|edb.
	Print string
	// Seconds is the simulated duration (default 10).
	Seconds float64
	// Distance is the reader-to-tag distance in meters (default 1).
	Distance float64
	// Seed is the deterministic seed (default 42).
	Seed int64
	// Trace prints the final 150 ms energy trace after the run.
	Trace bool
	// Script holds semicolon-separated console commands run in each
	// interactive session. When empty and a prompt callback is supplied,
	// sessions are driven interactively instead.
	Script string
	// Interactive asks a remote server to drive sessions through prompt
	// round-trips (the local CLI passes a prompt function directly).
	Interactive bool
}

// withDefaults fills zero-valued fields like the cmd/edb flag defaults.
func (s Spec) withDefaults() Spec {
	if s.App == "" && s.AsmSource == "" {
		s.App = "linkedlist"
	}
	if s.Print == "" {
		s.Print = "none"
	}
	if s.Seconds <= 0 {
		s.Seconds = 10
	}
	if s.Distance <= 0 {
		s.Distance = 1.0
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Validate reports whether the spec names a runnable scenario, without
// assembling a rig. edbd uses it to reject bad requests cheaply; cmd/edb
// uses it to map spec mistakes to usage-style exits.
func Validate(s Spec) error {
	s = s.withDefaults()
	if s.AsmSource != "" {
		return nil
	}
	_, _, err := buildProgram(s.App, s.Assert, s.Guards, s.Print)
	return err
}

// PromptFunc supplies the next interactive console command. Returning
// ok=false ends the session's console loop (stdin EOF locally, client
// hang-up remotely).
type PromptFunc func() (line string, ok bool)

// Result summarizes one scenario run.
type Result struct {
	// Run is the device runner's result (reboots, faults, halt reason).
	Run device.RunResult
	// SimCycles is the target clock at the end of the run.
	SimCycles uint64
	// Commands counts console commands executed across all sessions.
	Commands int
	// ScriptErrors counts scripted console commands that returned an
	// error; any makes ExitCode non-zero so CI and edbd detect failed
	// scripts.
	ScriptErrors int
	// ExitCode is the process exit status the run maps to: 0 on success,
	// 1 when a scripted command failed.
	ExitCode int
	// Vcap holds the final 150 ms energy-trace window when Spec.Trace was
	// set (what RenderASCII drew). Samples carry the true capacitor
	// voltage; consumers that stream it (edbd's trace path) quantize onto
	// the ADC grid via internal/tracecodec when the codec is negotiated.
	Vcap *trace.Series
}

// Run executes the scenario, writing all user-facing output to out. The
// prompt callback (may be nil) drives interactive sessions when the spec
// has no script. Returned errors are setup/run failures; scripted command
// errors are reported in Result.ScriptErrors/ExitCode instead.
func Run(spec Spec, out io.Writer, prompt PromptFunc) (Result, error) {
	spec = spec.withDefaults()
	rig, prog, err := buildRig(spec)
	if err != nil {
		return Result{}, err
	}
	return execute(rig, prog, spec, out, prompt)
}

// buildRig assembles the rig and program a (defaulted) spec describes.
// Identical specs build identical rigs — the foundation warm-start forking
// rests on.
func buildRig(spec Spec) (*core.Rig, device.Program, error) {
	var prog device.Program
	var reader *rfid.ReaderConfig
	if spec.AsmSource != "" {
		name := spec.AsmName
		if name == "" {
			name = "inline.asm"
		}
		prog = isa.NewProgram(name, spec.AsmSource)
	} else {
		var err error
		prog, reader, err = buildProgram(spec.App, spec.Assert, spec.Guards, spec.Print)
		if err != nil {
			return nil, nil, err
		}
	}

	opts := []core.Option{core.WithSeed(spec.Seed)}
	if reader != nil {
		rc := *reader
		rc.Distance = units.Meters(spec.Distance)
		opts = append(opts, core.WithReader(rc))
	} else {
		h := energy.NewRFHarvester()
		h.Distance = units.Meters(spec.Distance)
		opts = append(opts, core.WithHarvester(h))
	}

	rig, err := core.NewRig(prog, opts...)
	if err != nil {
		return nil, nil, err
	}
	return rig, prog, nil
}

// execute runs an assembled rig to the spec's absolute deadline. Cold rigs
// start at cycle 0, so the deadline and origin match what RunFor would
// use; warm-forked rigs resume mid-charge at the snapshot cycle but share
// the same absolute deadline and origin 0, making their output
// byte-identical to a cold run's.
func execute(rig *core.Rig, prog device.Program, spec Spec, out io.Writer, prompt PromptFunc) (Result, error) {
	var res Result
	rig.Console.SetOutput(out)
	rig.Console.SetExplore(exploreHandler(spec))
	var vcap *trace.Series
	if spec.Trace {
		// A warm fork arrives with tracing already enabled (and the
		// charge-phase samples restored); enabling it again would drop them.
		if vcap = rig.EDB.VcapSeries(); vcap == nil {
			vcap = rig.EDB.TraceVcap()
		}
	}

	rig.EDB.OnInteractive(func(s *edb.Session) {
		rig.Console.BindSession(s)
		defer rig.Console.BindSession(nil)
		fmt.Fprintf(out, "\n[edb] interactive session: %s (Vcap=%.3f V)\n", s.Reason, s.Voltage())
		switch {
		case spec.Script != "":
			runScript(rig, spec.Script, out, &res)
		case prompt != nil:
			runPromptConsole(rig, out, prompt, &res)
		default:
			fmt.Fprintln(out, "[edb] no -script or -i; resuming target")
		}
	})

	rr, err := rig.RunUntil(rig.Device.Clock.ToCycles(units.Seconds(spec.Seconds)), 0)
	if err != nil {
		return res, fmt.Errorf("run: %w", err)
	}
	res.Run = rr
	res.SimCycles = uint64(rig.Device.Clock.Now())

	fmt.Fprintln(out, "\n==== run summary ====")
	fmt.Fprintln(out, rr)
	summarize(rig, prog, out)

	if vcap != nil {
		fmt.Fprintln(out, "\n==== energy trace (last 150 ms) ====")
		total := rig.Device.Clock.Now()
		window := rig.Device.Clock.ToCycles(150 * core.Millisecond)
		late := trace.NewSeries(vcap.Name, vcap.Unit)
		late.Samples = vcap.Window(total-window, total)
		io.WriteString(out, trace.RenderASCII(late, rig.Device.Clock, 72, 12))
		res.Vcap = late
	}
	if o, err := rig.Exec("status"); err == nil {
		fmt.Fprintln(out, "\n==== debugger status ====")
		io.WriteString(out, o)
	}
	if res.ScriptErrors > 0 {
		res.ExitCode = 1
	}
	return res, nil
}

// runScript executes the spec's semicolon-separated commands in the open
// session, echoing each like an operator typing at the console.
func runScript(rig *core.Rig, script string, out io.Writer, res *Result) {
	for _, cmd := range strings.Split(script, ";") {
		cmd = strings.TrimSpace(cmd)
		if cmd == "" {
			continue
		}
		fmt.Fprintf(out, "(edb) %s\n", cmd)
		res.Commands++
		o, err := rig.Console.Exec(cmd)
		if err != nil {
			res.ScriptErrors++
			fmt.Fprintln(out, "error:", err)
			continue
		}
		io.WriteString(out, o)
		if cmd == "resume" || cmd == "halt" {
			return
		}
	}
}

// runPromptConsole drives the session from a prompt callback until
// resume/halt or the callback reports EOF.
func runPromptConsole(rig *core.Rig, out io.Writer, prompt PromptFunc, res *Result) {
	for {
		io.WriteString(out, "(edb) ")
		line, ok := prompt()
		if !ok {
			io.WriteString(out, "\n")
			return
		}
		line = strings.TrimSpace(line)
		res.Commands++
		o, err := rig.Console.Exec(line)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		io.WriteString(out, o)
		if line == "resume" || line == "halt" {
			return
		}
	}
}

// ExploreSpec captures the console `explore` command's options in a form
// that crosses the wire verbatim: the distributed checker ships one to
// every enlisted backend alongside the scenario Spec, so the coordinator,
// a backend, and the local CLI all build the identical explore.Config.
// Zero-valued bounds mean the checker defaults.
type ExploreSpec struct {
	// Guards is the resolved guard setting for the forked firmware — the
	// session spec's default unless a guards/noguards option overrode it.
	Guards bool
	// Mode is the fork granularity: write|page.
	Mode string
	// Check enables the full-image hash cross-check.
	Check bool
	// Depth/Writes/States/Workers bound the search (0 = checker default).
	Depth   int
	Writes  int
	States  int
	Workers int
	// Backends fans the search across a cluster: through a gateway console
	// it is the number of backends to enlist; locally it partitions the
	// dedup set Backends ways. The report is identical either way — which
	// is what makes the local command the byte-diff oracle for the
	// distributed run. 0 means plain single-process exploration.
	Backends int
}

// ParseExploreArgs parses the console `explore` command's options into an
// ExploreSpec. defGuards seeds the guard setting a guards/noguards option
// overrides.
func ParseExploreArgs(args []string, defGuards bool) (ExploreSpec, error) {
	es := ExploreSpec{Guards: defGuards, Mode: explore.ModeWrite}
	for _, a := range args {
		switch a {
		case "guards":
			es.Guards = true
			continue
		case "noguards":
			es.Guards = false
			continue
		case "check":
			es.Check = true
			continue
		case "mode=write":
			es.Mode = explore.ModeWrite
			continue
		case "mode=page":
			es.Mode = explore.ModePage
			continue
		}
		k, v, ok := strings.Cut(a, "=")
		n, err := strconv.Atoi(v)
		if !ok || err != nil || n <= 0 {
			return ExploreSpec{}, fmt.Errorf("explore: bad option %q (try help)", a)
		}
		switch k {
		case "depth":
			es.Depth = n
		case "writes":
			es.Writes = n
		case "states":
			es.States = n
		case "workers":
			es.Workers = n
		case "backends":
			es.Backends = n
		default:
			return ExploreSpec{}, fmt.Errorf("explore: unknown option %q (try help)", a)
		}
	}
	return es, nil
}

// ExploreConfig builds the checker Config an ExploreSpec describes for the
// given scenario Spec (which supplies the firmware and seed). Identical
// (Spec, ExploreSpec) pairs build identical configs on every host — the
// foundation the distributed checker's baseline-hash cross-check rests on.
func ExploreConfig(spec Spec, es ExploreSpec) (explore.Config, error) {
	spec = spec.withDefaults()
	if spec.AsmSource != "" {
		return explore.Config{}, fmt.Errorf("explore: built-in apps only")
	}
	mode := es.Mode
	if mode == "" {
		mode = explore.ModeWrite
	}
	cfg := explore.Config{
		Mode:          mode,
		CheckHashes:   es.Check,
		MaxDepth:      es.Depth,
		MaxCandidates: es.Writes,
		MaxStates:     es.States,
		Workers:       es.Workers,
	}
	guards := es.Guards
	cfg.NewRig = func() (*device.Device, device.Program, error) {
		prog, reader, err := buildProgram(spec.App, spec.Assert, guards, spec.Print)
		if err != nil {
			return nil, nil, err
		}
		if reader != nil {
			return nil, nil, fmt.Errorf("explore: the rfid scenario is reader-driven and cannot be forked")
		}
		return core.ExploreTarget(prog, spec.Seed)
	}
	return cfg, nil
}

// RunExplore runs the exhaustive checker in-process. A Backends option
// above one drives the distributed wave engine with the dedup set
// partitioned that many ways — byte-identical output by construction, so
// smoke tests diff it against a gateway's genuinely distributed run.
func RunExplore(spec Spec, es ExploreSpec) (*explore.Report, error) {
	cfg, err := ExploreConfig(spec, es)
	if err != nil {
		return nil, err
	}
	if es.Backends <= 1 {
		return explore.Run(cfg)
	}
	ex, err := explore.NewLocalExecutor(cfg)
	if err != nil {
		return nil, err
	}
	defer ex.Close()
	return explore.RunWithExecutors(cfg, []explore.Executor{ex}, es.Backends, nil)
}

// exploreHandler adapts the console's `explore` command to the exhaustive
// intermittence checker. Each invocation forks fresh debugger-free rigs
// from the spec's firmware (the explorer installs its own probe, so it
// never touches the live rig), runs the bounded search, and returns the
// report text. Options: guards|noguards override the spec's guard setting;
// mode=write|page, depth=N, writes=N, states=N, workers=N bound the
// search; check enables the full-image hash cross-check; backends=N
// partitions the dedup set (a gateway intercepts the option to fan the
// search across real backends — same report either way).
func exploreHandler(spec Spec) func(args []string) (string, error) {
	return func(args []string) (string, error) {
		es, err := ParseExploreArgs(args, spec.Guards)
		if err != nil {
			return "", err
		}
		rep, err := RunExplore(spec, es)
		if err != nil {
			return "", err
		}
		return rep.Format(), nil
	}
}

// buildProgram maps an app name to a firmware image (plus a reader for the
// RFID scenario).
func buildProgram(name string, withAssert, guards bool, printMode string) (device.Program, *rfid.ReaderConfig, error) {
	switch name {
	case "linkedlist":
		return &apps.LinkedList{WithAssert: withAssert, GuardIterations: guards}, nil, nil
	case "safelist":
		return &apps.SafeLinkedList{WithAssert: withAssert}, nil, nil
	case "fib":
		return &apps.Fib{DebugBuild: true, UseGuards: guards, MaxNodes: 4000}, nil, nil
	case "activity":
		mode := apps.NoPrint
		switch printMode {
		case "uart":
			mode = apps.UARTPrint
		case "edb":
			mode = apps.EDBPrint
		case "none", "":
		default:
			return nil, nil, fmt.Errorf("edb: unknown print mode %q", printMode)
		}
		return &apps.Activity{Print: mode}, nil, nil
	case "rfid":
		rc := rfid.DefaultReaderConfig()
		return &apps.WispRFID{}, &rc, nil
	case "busy":
		return &apps.Busy{}, nil, nil
	}
	return nil, nil, fmt.Errorf("edb: unknown app %q (linkedlist|safelist|fib|activity|rfid|busy)", name)
}

// summarize prints app-specific results.
func summarize(rig *core.Rig, prog device.Program, out io.Writer) {
	switch app := prog.(type) {
	case *apps.LinkedList:
		fmt.Fprintf(out, "iterations=%d tail-consistent=%v\n",
			app.Iterations(rig.Device), app.ConsistentTail(rig.Device))
	case *apps.SafeLinkedList:
		fmt.Fprintf(out, "iterations=%d consistent=%v (task-boundary build)\n",
			app.Iterations(rig.Device), app.Consistent(rig.Device))
	case *apps.Fib:
		fmt.Fprintf(out, "items=%d check-violations=%d guards=%d\n",
			app.Count(rig.Device), app.CheckErrors(rig.Device), rig.EDB.Stats().Guards)
	case *apps.Activity:
		st := app.Stats(rig.Device)
		fmt.Fprintf(out, "iterations=%d/%d (%.0f%% success) moving=%d stationary=%d\n",
			st.Completed, st.Attempted, 100*st.SuccessRate(), st.Moving, st.Stationary)
	case *apps.WispRFID:
		st := app.Stats(rig.Device)
		fmt.Fprintf(out, "queries=%d replies=%d corrupt=%d", st.Queries, st.Replies, st.Corrupt)
		if rig.Reader != nil {
			fmt.Fprintf(out, "  response-rate=%.0f%%", 100*rig.Reader.ResponseRate())
		}
		fmt.Fprintln(out)
	case *apps.Busy:
		fmt.Fprintf(out, "iterations=%d\n", app.Iterations(rig.Device))
	case *isa.Program:
		img := app.Image()
		fmt.Fprintf(out, "image: %d words at %#04x; instructions retired this power cycle: %d\n",
			len(img.Words), img.Org, app.CPU().Retired())
	}
}
