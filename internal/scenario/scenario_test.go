package scenario_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestDeterministicOutput: the same spec produces byte-identical output on
// every run — the property the remote daemon extends across the network.
func TestDeterministicOutput(t *testing.T) {
	spec := scenario.Spec{
		App: "linkedlist", Assert: true, Seconds: 5, Seed: 42,
		Script: "vcap;status;halt",
	}
	var a, b bytes.Buffer
	if _, err := scenario.Run(spec, &a, nil); err != nil {
		t.Fatalf("run a: %v", err)
	}
	if _, err := scenario.Run(spec, &b, nil); err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.String() != b.String() {
		t.Fatal("two runs of the same spec produced different output")
	}
	if !strings.Contains(a.String(), "(edb) vcap") {
		t.Fatalf("script did not run:\n%s", a.String())
	}
}

// TestScriptErrorSetsExitCode: a scripted console command that fails must
// surface as a non-zero exit code instead of being printed and swallowed.
func TestScriptErrorSetsExitCode(t *testing.T) {
	spec := scenario.Spec{
		App: "linkedlist", Assert: true, Seconds: 5, Seed: 42,
		Script: "definitely-not-a-command;halt",
	}
	var buf bytes.Buffer
	res, err := scenario.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ScriptErrors != 1 {
		t.Fatalf("want 1 script error, got %d", res.ScriptErrors)
	}
	if res.ExitCode != 1 {
		t.Fatalf("script errors must map to exit code 1, got %d", res.ExitCode)
	}
	if !strings.Contains(buf.String(), "error: console: unknown command") {
		t.Fatalf("error text missing:\n%s", buf.String())
	}
	// A clean script exits 0.
	spec.Script = "vcap;halt"
	res, err = scenario.Run(spec, &buf, nil)
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("clean script: exit=%d err=%v", res.ExitCode, err)
	}
}

// TestPromptDrivenSession: a prompt callback drives the session like a
// stdin console.
func TestPromptDrivenSession(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42}
	cmds := []string{"vcap", "halt"}
	i := 0
	prompt := func() (string, bool) {
		if i >= len(cmds) {
			return "", false
		}
		c := cmds[i]
		i++
		return c, true
	}
	var buf bytes.Buffer
	res, err := scenario.Run(spec, &buf, prompt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Commands != 2 {
		t.Fatalf("want 2 commands, got %d", res.Commands)
	}
	if !strings.Contains(buf.String(), "(edb) ") || !strings.Contains(buf.String(), "target halted") {
		t.Fatalf("prompt console output missing:\n%s", buf.String())
	}
}

// TestValidate covers the cheap spec validation edbd relies on.
func TestValidate(t *testing.T) {
	if err := scenario.Validate(scenario.Spec{App: "busy"}); err != nil {
		t.Fatalf("busy should validate: %v", err)
	}
	if err := scenario.Validate(scenario.Spec{AsmSource: "nop\n"}); err != nil {
		t.Fatalf("asm should validate: %v", err)
	}
	if err := scenario.Validate(scenario.Spec{App: "nope"}); err == nil {
		t.Fatal("unknown app must fail validation")
	}
	if err := scenario.Validate(scenario.Spec{App: "activity", Print: "telepathy"}); err == nil {
		t.Fatal("unknown print mode must fail validation")
	}
}

// TestDefaultResume: without a script or prompt the session resumes and
// the run carries on to its deadline or halt.
func TestDefaultResume(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 2, Seed: 42}
	var buf bytes.Buffer
	if _, err := scenario.Run(spec, &buf, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "[edb] no -script or -i; resuming target") {
		t.Fatalf("default resume message missing:\n%s", buf.String())
	}
}
