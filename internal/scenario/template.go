// Warm-start session support: a Template captures a spec's rig at its
// first firmware-quiescent point (mid-charge, before Main ever runs), and
// forks of that template skip the charge simulation entirely. Because the
// snapshot restores every stochastic stream and the forked run shares the
// cold run's absolute deadline, a warm session's output is byte-for-byte
// identical to a cold boot of the same spec — the pool is purely a latency
// optimization, never a semantic one.
package scenario

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/units"
)

// templateWarmup bounds the template's charging phase. It matches the
// runner's default MaxChargeTime so the warm-up trajectory is the one a
// cold run would take.
const templateWarmup = units.Seconds(10)

// Template is a pre-warmed rig image for one spec family: everything that
// shapes the simulation (app, seed, distance, tracing, …) is fixed;
// per-session fields (duration, script, interactivity) are not.
type Template struct {
	spec       Spec // defaulted
	snap       *core.RigSnapshot
	minSeconds float64 // snapshot time; forks need a deadline beyond it
}

// NewTemplate builds and warms a template for the spec. It errors for
// specs that cannot be templated: reader-driven rigs (the reader's
// inventory state machine lives outside the snapshot), rigs that never
// reach turn-on, and specs whose deadline lands before the warm-up point.
func NewTemplate(spec Spec) (*Template, error) {
	spec = spec.withDefaults()
	rig, _, err := buildRig(spec)
	if err != nil {
		return nil, err
	}
	if rig.Reader != nil {
		return nil, fmt.Errorf("scenario: reader specs cannot be templated")
	}
	if spec.Trace {
		// Cold runs enable tracing before the first charge; the template
		// must too, so the snapshot carries the charge-phase samples.
		rig.EDB.TraceVcap()
	}
	if !rig.Device.IdleCharge(templateWarmup) {
		return nil, fmt.Errorf("scenario: template rig never reached turn-on")
	}
	snap, err := rig.Snapshot()
	if err != nil {
		return nil, err
	}
	t := &Template{
		spec:       spec,
		snap:       snap,
		minSeconds: float64(rig.Device.Clock.ToSeconds(snap.Now())),
	}
	if !t.Usable(spec) {
		return nil, fmt.Errorf("scenario: warm-up (%.3fs) overruns the %gs deadline", t.minSeconds, spec.Seconds)
	}
	return t, nil
}

// Usable reports whether warm forks of this template can serve the spec:
// the simulation-shaping fields must match and the deadline must lie
// strictly past the snapshot point.
func (t *Template) Usable(spec Spec) bool {
	spec = spec.withDefaults()
	return templateKey(spec) == templateKey(t.spec) && spec.Seconds > t.minSeconds
}

// SnapshotBytes returns the size of the template's full memory image.
func (t *Template) SnapshotBytes() int { return t.snap.MemoryBytes() }

// WarmupSeconds returns the simulated time of the template's snapshot
// point. Only deadlines strictly past it can be served warm.
func (t *Template) WarmupSeconds() float64 { return t.minSeconds }

// Fork builds a fresh rig and applies the template snapshot. The returned
// rig is ready for execute() with the cold run's deadline and origin.
func (t *Template) Fork() (*core.Rig, device.Program, error) {
	rig, prog, err := buildRig(t.spec)
	if err != nil {
		return nil, nil, err
	}
	if t.spec.Trace {
		// Enable before Restore so the snapshot's samples are re-adopted.
		rig.EDB.TraceVcap()
	}
	if err := rig.Restore(t.snap); err != nil {
		return nil, nil, err
	}
	return rig, prog, nil
}

// Run executes a warm fork of the template under the given per-session
// spec, producing output byte-identical to Run(spec, out, prompt).
func (t *Template) Run(spec Spec, out io.Writer, prompt PromptFunc) (Result, error) {
	spec = spec.withDefaults()
	if !t.Usable(spec) {
		return Result{}, fmt.Errorf("scenario: template does not cover spec")
	}
	rig, prog, err := t.Fork()
	if err != nil {
		return Result{}, err
	}
	return execute(rig, prog, spec, out, prompt)
}

// templateKey collapses a spec to its simulation-shaping fields. Seconds,
// Script and Interactive are per-session: they change what a session does
// with the rig, not how the rig evolves from cycle 0.
func templateKey(s Spec) string {
	return fmt.Sprintf("%s|%s|%s|%t|%t|%s|%g|%d|%t",
		s.App, s.AsmName, s.AsmSource, s.Assert, s.Guards, s.Print, s.Distance, s.Seed, s.Trace)
}

// PoolMetrics counts how sessions were served.
type PoolMetrics struct {
	WarmForks      uint64 // sessions served from a template fork
	SparePops      uint64 // …of which came from a pre-forked spare
	ColdBoots          uint64 // sessions simulated from cycle 0
	TemplatesBuilt     uint64
	TemplatesInstalled uint64 // externally built templates adopted via Install
	Untemplatable      uint64 // specs the pool gave up templating
}

// forkedRig is a pre-built warm fork waiting for a session.
type forkedRig struct {
	rig  *core.Rig
	prog device.Program
}

// poolEntry tracks one template key: the template once built (or the
// decision that the key is untemplatable — a negative cache so reader
// specs don't re-run warm-up attempts), plus pre-forked spares.
type poolEntry struct {
	mu       sync.Mutex
	building bool
	tmpl     *Template // nil until built
	dead     bool      // untemplatable; serve cold forever
	spares   chan *forkedRig
}

// Pool serves scenario sessions, warm-starting them from per-spec
// templates. The first session for a spec cold-boots while a template
// builds in the background; later sessions fork the template, preferring
// a pre-forked spare for near-zero start latency.
type Pool struct {
	mu      sync.Mutex
	entries map[string]*poolEntry
	spares  int
	metrics PoolMetrics

	// wg tracks background template builds and spare refills, so tests
	// and shutdown can wait for quiescence.
	wg sync.WaitGroup
}

// NewPool returns a pool keeping up to spares pre-forked rigs per
// template (0 disables pre-forking but keeps warm template forks).
func NewPool(spares int) *Pool {
	if spares < 0 {
		spares = 0
	}
	return &Pool{entries: make(map[string]*poolEntry), spares: spares}
}

// Run serves one session for the spec, warm when possible, cold
// otherwise. Output is byte-identical either way.
func (p *Pool) Run(spec Spec, out io.Writer, prompt PromptFunc) (Result, error) {
	spec = spec.withDefaults()
	e := p.entry(templateKey(spec))

	e.mu.Lock()
	switch {
	case e.tmpl != nil && e.tmpl.Usable(spec):
		tmpl := e.tmpl
		e.mu.Unlock()
		var f *forkedRig
		select {
		case f = <-e.spares:
			p.count(func(m *PoolMetrics) { m.WarmForks++; m.SparePops++ })
			p.refillAsync(e, tmpl)
		default:
			p.count(func(m *PoolMetrics) { m.WarmForks++ })
		}
		if f == nil {
			rig, prog, err := tmpl.Fork()
			if err != nil {
				return Result{}, err
			}
			f = &forkedRig{rig: rig, prog: prog}
		}
		return execute(f.rig, f.prog, spec, out, prompt)
	case !e.dead && !e.building && e.tmpl == nil:
		// First sighting of this spec family: build the template in the
		// background and serve this session cold.
		e.building = true
		p.wg.Add(1)
		go p.buildTemplate(e, spec)
	}
	e.mu.Unlock()

	p.count(func(m *PoolMetrics) { m.ColdBoots++ })
	return Run(spec, out, prompt)
}

// Wait blocks until background template builds and refills settle —
// deterministic hand-holding for tests and shutdown.
func (p *Pool) Wait() { p.wg.Wait() }

// Metrics returns a snapshot of the pool's counters.
func (p *Pool) Metrics() PoolMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metrics
}

func (p *Pool) count(f func(*PoolMetrics)) {
	p.mu.Lock()
	f(&p.metrics)
	p.mu.Unlock()
}

func (p *Pool) entry(key string) *poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok {
		e = &poolEntry{spares: make(chan *forkedRig, p.spares+1)}
		p.entries[key] = e
	}
	return e
}

func (p *Pool) buildTemplate(e *poolEntry, spec Spec) {
	defer p.wg.Done()
	tmpl, err := NewTemplate(spec)
	e.mu.Lock()
	e.building = false
	if err != nil {
		e.dead = true
		e.mu.Unlock()
		p.count(func(m *PoolMetrics) { m.Untemplatable++ })
		return
	}
	e.tmpl = tmpl
	e.mu.Unlock()
	p.count(func(m *PoolMetrics) { m.TemplatesBuilt++ })
	for i := 0; i < p.spares; i++ {
		p.refill(e, tmpl)
	}
}

func (p *Pool) refillAsync(e *poolEntry, tmpl *Template) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.refill(e, tmpl)
	}()
}

func (p *Pool) refill(e *poolEntry, tmpl *Template) {
	if len(e.spares) >= p.spares {
		return
	}
	rig, prog, err := tmpl.Fork()
	if err != nil {
		return
	}
	select {
	case e.spares <- &forkedRig{rig: rig, prog: prog}:
	default:
	}
}
