package scenario_test

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// TestPoolConcurrentForkInvalidate hammers one spec family with concurrent
// sessions while another goroutine repeatedly invalidates and reinstalls
// the template. Every session must still complete with byte-identical
// output — invalidation only changes how a session starts (warm or cold),
// never what it computes. Run under -race this is the satellite coverage
// for Pool's locking; single-threaded tests never caught ordering bugs
// between Fork, Install and Invalidate.
func TestPoolConcurrentForkInvalidate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation load")
	}
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 3, Seed: 42, Script: "vcap;halt"}

	var golden bytes.Buffer
	if _, err := scenario.Run(spec, &golden, nil); err != nil {
		t.Fatal(err)
	}
	tmpl, err := scenario.NewTemplate(spec)
	if err != nil {
		t.Fatal(err)
	}

	p := scenario.NewPool(2)
	p.Install(tmpl)

	const sessions = 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	outs := make([]bytes.Buffer, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Run(spec, &outs[i], nil); err != nil {
				errs <- err
			}
		}(i)
	}

	// Churn the template while sessions fork from it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			p.Invalidate(spec)
			if i%2 == 0 {
				p.Install(tmpl)
			}
			_ = p.Template(spec)
		}
	}()

	wg.Wait()
	<-done
	p.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].String() != golden.String() {
			t.Fatalf("session %d diverged under template churn\n--- golden ---\n%s\n--- got ---\n%s",
				i, golden.String(), outs[i].String())
		}
	}
}
