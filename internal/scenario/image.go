// Template images: a Template serialized into a portable byte blob, so the
// cluster tier can ship a spec family's warm-start image between backends
// once and replay-migrate any number of sessions against it. gob is the
// codec — every snapshot struct keeps its fields exported precisely so the
// stdlib encoder works without a schema of its own.
package scenario

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
)

// TemplateKey collapses a spec to its simulation-shaping fields (Seconds,
// Script and Interactive are per-session). Two specs with equal keys can be
// served from the same template; this is the cluster placement key.
func TemplateKey(s Spec) string { return templateKey(s.withDefaults()) }

// SpecHash is the 64-bit FNV-1a of TemplateKey(s) — the compact form used
// on the wire for placement and image-cache lookups. Collisions are
// tolerable there: the full spec always rides along and is re-verified
// before a template is reused.
func SpecHash(s Spec) uint64 {
	h := fnv.New64a()
	h.Write([]byte(TemplateKey(s)))
	return h.Sum64()
}

// templateImage is the gob envelope for a serialized Template.
type templateImage struct {
	Spec       Spec
	MinSeconds float64
	Snap       *core.RigSnapshot
}

// Marshal serializes the template into a self-contained image. The image
// is deterministic for a given template and portable across processes of
// the same build.
func (t *Template) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(templateImage{
		Spec:       t.spec,
		MinSeconds: t.minSeconds,
		Snap:       t.snap,
	}); err != nil {
		return nil, fmt.Errorf("scenario: marshal template: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalTemplate reconstitutes a template from a Marshal image. Forks of
// the result are byte-identical to forks of the original: the snapshot
// carries every stochastic stream, and spec defaulting already happened
// before the original was built.
func UnmarshalTemplate(img []byte) (*Template, error) {
	var ti templateImage
	if err := gob.NewDecoder(bytes.NewReader(img)).Decode(&ti); err != nil {
		return nil, fmt.Errorf("scenario: unmarshal template: %w", err)
	}
	if ti.Snap == nil || ti.Snap.Device == nil {
		return nil, fmt.Errorf("scenario: template image has no snapshot")
	}
	return &Template{spec: ti.Spec, snap: ti.Snap, minSeconds: ti.MinSeconds}, nil
}

// Spec returns the (defaulted) spec family the template serves.
func (t *Template) Spec() Spec { return t.spec }

// Install registers an externally built template (typically one received
// as a migration image) under its spec family, replacing any existing
// entry. Pending spares for the family are dropped; sessions in flight on
// the old template are unaffected.
func (p *Pool) Install(t *Template) {
	e := p.entry(templateKey(t.spec))
	e.mu.Lock()
	e.tmpl = t
	e.dead = false
	e.mu.Unlock()
	drainSpares(e)
	p.count(func(m *PoolMetrics) { m.TemplatesInstalled++ })
}

// Template returns the pool's template for the spec family, or nil if none
// has been built yet. It never triggers a build.
func (p *Pool) Template(spec Spec) *Template {
	e := p.entry(templateKey(spec.withDefaults()))
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tmpl
}

// Invalidate drops the template (and pre-forked spares) for the spec
// family. The next session cold-boots and rebuilds; forks already handed
// out keep running. Negative "untemplatable" verdicts are cleared too, so
// the family gets a fresh templating attempt.
func (p *Pool) Invalidate(spec Spec) {
	e := p.entry(templateKey(spec.withDefaults()))
	e.mu.Lock()
	e.tmpl = nil
	e.dead = false
	e.mu.Unlock()
	drainSpares(e)
}

func drainSpares(e *poolEntry) {
	for {
		select {
		case <-e.spares:
		default:
			return
		}
	}
}
