package scenario_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestWarmForkMatchesColdRun is the golden determinism proof for the
// warm-start path: a session forked from a pre-warmed template produces
// output byte-for-byte identical to a cold boot of the same spec —
// interactive sessions, traces, summary times and all.
func TestWarmForkMatchesColdRun(t *testing.T) {
	for _, spec := range []scenario.Spec{
		{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "vcap;status;halt"},
		{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "snap;read 0x4400 8;restore;resume", Trace: true},
		{App: "fib", Seconds: 4, Seed: 7, Script: "vcap;resume"},
		{App: "busy", Seconds: 3, Seed: 1},
	} {
		var cold bytes.Buffer
		resC, err := scenario.Run(spec, &cold, nil)
		if err != nil {
			t.Fatalf("%s: cold run: %v", spec.App, err)
		}

		tmpl, err := scenario.NewTemplate(spec)
		if err != nil {
			t.Fatalf("%s: template: %v", spec.App, err)
		}
		var warm bytes.Buffer
		resW, err := tmpl.Run(spec, &warm, nil)
		if err != nil {
			t.Fatalf("%s: warm run: %v", spec.App, err)
		}

		if cold.String() != warm.String() {
			t.Fatalf("%s: warm fork output diverges from cold run\n--- cold ---\n%s\n--- warm ---\n%s",
				spec.App, cold.String(), warm.String())
		}
		if resC.SimCycles != resW.SimCycles || resC.Run.Reboots != resW.Run.Reboots ||
			resC.Commands != resW.Commands || resC.ExitCode != resW.ExitCode {
			t.Fatalf("%s: results diverge: cold %+v warm %+v", spec.App, resC, resW)
		}
	}
}

// TestTemplateForkReuse: one template serves many forks, and forks are
// independent — running one does not perturb the next.
func TestTemplateForkReuse(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "vcap;halt"}
	tmpl, err := scenario.NewTemplate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if _, err := tmpl.Run(spec, &first, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var again bytes.Buffer
		if _, err := tmpl.Run(spec, &again, nil); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("fork %d diverged from fork 0", i+1)
		}
	}
	if tmpl.SnapshotBytes() == 0 {
		t.Fatal("template must report its memory image size")
	}
}

// TestTemplateRejectsUncoverableSpecs: reader rigs and too-short deadlines
// cannot be templated or served warm.
func TestTemplateRejectsUncoverableSpecs(t *testing.T) {
	if _, err := scenario.NewTemplate(scenario.Spec{App: "rfid", Seconds: 5}); err == nil {
		t.Fatal("reader spec must not template")
	}
	spec := scenario.Spec{App: "busy", Seconds: 5, Seed: 1}
	tmpl, err := scenario.NewTemplate(spec)
	if err != nil {
		t.Fatal(err)
	}
	short := spec
	short.Seconds = 1e-9
	if tmpl.Usable(short) {
		t.Fatal("a deadline before the warm-up point must not be served warm")
	}
	other := spec
	other.Seed = 2
	if tmpl.Usable(other) {
		t.Fatal("a different seed must not reuse the template")
	}
	longer := spec
	longer.Seconds = 9
	if !tmpl.Usable(longer) {
		t.Fatal("only the duration changed; the template must cover it")
	}
}

// TestPoolServesWarmAfterColdFirst: the pool cold-boots the first session
// for a spec, builds the template in the background, then serves later
// sessions warm — all with byte-identical output.
func TestPoolServesWarmAfterColdFirst(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Script: "vcap;status;halt"}
	pool := scenario.NewPool(2)

	var first bytes.Buffer
	if _, err := pool.Run(spec, &first, nil); err != nil {
		t.Fatal(err)
	}
	pool.Wait() // template build + spare pre-forks settle

	var second, third bytes.Buffer
	if _, err := pool.Run(spec, &second, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Run(spec, &third, nil); err != nil {
		t.Fatal(err)
	}
	pool.Wait()

	if first.String() != second.String() || first.String() != third.String() {
		t.Fatal("pool-served sessions diverge from the cold first session")
	}
	m := pool.Metrics()
	if m.ColdBoots != 1 || m.TemplatesBuilt != 1 || m.WarmForks != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.SparePops == 0 {
		t.Fatalf("expected at least one pre-forked spare to be used: %+v", m)
	}
}

// TestPoolNegativeCache: untemplatable specs are served cold forever and
// the failed warm-up is not retried.
func TestPoolNegativeCache(t *testing.T) {
	spec := scenario.Spec{App: "rfid", Seconds: 2, Seed: 42}
	pool := scenario.NewPool(1)
	var a, b bytes.Buffer
	if _, err := pool.Run(spec, &a, nil); err != nil {
		t.Fatal(err)
	}
	pool.Wait()
	if _, err := pool.Run(spec, &b, nil); err != nil {
		t.Fatal(err)
	}
	pool.Wait()
	if a.String() != b.String() {
		t.Fatal("cold-served rfid sessions must still be deterministic")
	}
	m := pool.Metrics()
	if m.ColdBoots != 2 || m.Untemplatable != 1 || m.WarmForks != 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if !strings.Contains(a.String(), "run summary") {
		t.Fatalf("rfid run output missing summary:\n%s", a.String())
	}
}
