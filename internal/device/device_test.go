package device

import (
	"errors"
	"testing"

	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// testProg adapts closures to the Program interface.
type testProg struct {
	name  string
	flash func(*Device) error
	main  func(*Env)
}

func (p *testProg) Name() string { return p.name }
func (p *testProg) Flash(d *Device) error {
	if p.flash == nil {
		return nil
	}
	return p.flash(d)
}
func (p *testProg) Main(env *Env) { p.main(env) }

func constDevice(seed int64, i units.Amps) *Device {
	return NewWISP5(&energy.ConstantHarvester{I: i, Voc: 3.3}, seed)
}

// powerOn latches the supply into the operating state, as the Runner's
// charging phase would, so tests can drive Env directly.
func powerOn(d *Device) {
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
}

func TestIntermittentRebootSemantics(t *testing.T) {
	d := constDevice(1, units.MilliAmps(0.5))
	var nvAddr, vAddr memsim.Addr
	bootVolatile := []uint16{}
	prog := &testProg{
		name: "sem",
		flash: func(d *Device) error {
			var err error
			if nvAddr, err = d.FRAM.Alloc(2); err != nil {
				return err
			}
			vAddr, err = d.SRAM.Alloc(2)
			return err
		},
		main: func(env *Env) {
			// Volatile state must be zero at every boot.
			bootVolatile = append(bootVolatile, env.LoadWord(vAddr))
			env.StoreWord(vAddr, 0xAAAA)
			for {
				env.StoreWord(nvAddr, env.LoadWord(nvAddr)+1)
				env.Compute(500)
			}
		},
	}
	r := NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reboots < 2 {
		t.Fatalf("expected multiple reboots, got %+v", res)
	}
	for i, v := range bootVolatile {
		if v != 0 {
			t.Fatalf("boot %d saw non-zero volatile memory %#x", i, v)
		}
	}
	nv, _ := d.Mem.ReadWord(nvAddr)
	if nv == 0 {
		t.Fatal("non-volatile progress must survive reboots")
	}
	if res.Stats.ActiveTime <= 0 || res.Stats.ChargeTime <= 0 {
		t.Fatalf("time accounting: %+v", res.Stats)
	}
}

func TestPowerFailureUnwindsBeforeStore(t *testing.T) {
	// A store interrupted by power failure must NOT be applied: the panic
	// fires during the time the write would take, like hardware dying
	// mid-cycle.
	d := constDevice(2, units.MilliAmps(0.5))
	var addr memsim.Addr
	prog := &testProg{
		name: "atomic",
		flash: func(d *Device) error {
			var err error
			addr, err = d.FRAM.Alloc(2)
			return err
		},
		main: func(env *Env) {
			for {
				v := env.LoadWord(addr)
				env.StoreWord(addr, v+1)
			}
		},
	}
	r := NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	// Pre-charge and run until one brown-out.
	if !d.IdleCharge(units.Seconds(2)) {
		t.Fatal("never charged")
	}
	env := &Env{D: d}
	func() {
		defer func() {
			p := recover()
			if _, ok := p.(*PowerFailure); !ok {
				t.Fatalf("want PowerFailure, got %v", p)
			}
		}()
		prog.main(env)
	}()
	// The counter is consistent: whatever value is stored was stored
	// completely (16-bit writes are atomic on FRAM).
	v, err := d.Mem.ReadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = v // any value is fine; the point is no partial write / no panic here
}

func TestMemoryFaultWedgesUntilBrownout(t *testing.T) {
	d := constDevice(3, units.MilliAmps(0.5))
	prog := &testProg{
		name: "fault",
		main: func(env *Env) {
			env.Compute(100)
			env.LoadWord(0x0002) // NULL->prev: unmapped
			t.Fatal("unreachable")
		},
	}
	r := NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Fatalf("expected faults, got %+v", res)
	}
	// Every boot faults again: faults ≈ reboots.
	if res.Reboots < res.Faults-1 {
		t.Fatalf("fault must recur every boot: %+v", res)
	}
}

func TestDeadlineStopsInfiniteProgram(t *testing.T) {
	d := constDevice(4, units.MilliAmps(5)) // plenty of power: no reboots
	prog := &testProg{name: "inf", main: func(env *Env) {
		for {
			env.Compute(1000)
		}
	}}
	r := NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.MilliSeconds(500))
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineHit {
		t.Fatalf("deadline must fire: %+v", res)
	}
	if res.SimTime < units.MilliSeconds(490) || res.SimTime > units.MilliSeconds(600) {
		t.Fatalf("sim time = %v", res.SimTime)
	}
}

func TestProgramCompletion(t *testing.T) {
	d := constDevice(5, units.MilliAmps(5))
	prog := &testProg{name: "done", main: func(env *Env) { env.Compute(100) }}
	r := NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("program must complete: %+v", res)
	}
}

func TestNeverPowered(t *testing.T) {
	d := NewWISP5(energy.NullHarvester{}, 6)
	prog := &testProg{name: "np", main: func(env *Env) {}}
	r := NewRunner(d, prog)
	r.MaxChargeTime = units.MilliSeconds(50)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	_, err := r.RunFor(units.Seconds(1))
	if !errors.Is(err, ErrNeverPowered) {
		t.Fatalf("err = %v", err)
	}
}

func TestSleepReducesDrain(t *testing.T) {
	run := func(sleep bool) units.Volts {
		d := NewWISP5(energy.NullHarvester{}, 7)
		powerOn(d)
		env := &Env{D: d}
		func() {
			defer func() { recover() }()
			if sleep {
				env.Sleep(40000)
			} else {
				env.Compute(40000)
			}
		}()
		return d.Supply.Voltage()
	}
	vSleep := run(true)
	vActive := run(false)
	if vSleep <= vActive {
		t.Fatalf("sleep must drain less: sleep=%v active=%v", vSleep, vActive)
	}
}

func TestLEDLoadIsHeavy(t *testing.T) {
	// §2.2: lighting an LED raises the draw ~5×, making LED tracing
	// unusable on harvested power.
	d := constDevice(8, units.MilliAmps(0.5))
	base := d.TotalLoad()
	env := &Env{D: d}
	powerOn(d)
	env.SetPin(LineLED, true)
	if d.TotalLoad() < base+units.MilliAmps(4) {
		t.Fatalf("LED load: %v -> %v", base, d.TotalLoad())
	}
	env.SetPin(LineLED, false)
	if d.TotalLoad() != base {
		t.Fatalf("LED off must restore load: %v", d.TotalLoad())
	}
}

func TestGPIOEdgesAndToggles(t *testing.T) {
	d := constDevice(9, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	var edges []GPIOEdge
	remove := d.GPIO.Subscribe(func(e GPIOEdge) { edges = append(edges, e) })
	env.SetPin(LineAppPin, true)
	env.SetPin(LineAppPin, true) // no edge: level unchanged
	env.TogglePin(LineAppPin)
	env.PulsePin(LineAppPin)
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	if d.GPIO.Toggles(LineAppPin) != 4 {
		t.Fatalf("toggles = %d", d.GPIO.Toggles(LineAppPin))
	}
	remove()
	env.SetPin(LineAppPin, true)
	if len(edges) != 4 {
		t.Fatal("unsubscribed listener must not fire")
	}
	if len(d.GPIO.Names()) == 0 {
		t.Fatal("names")
	}
	if edges[0].String() == "" {
		t.Fatal("edge string")
	}
}

func TestUARTTimingAndDelivery(t *testing.T) {
	d := constDevice(10, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	var got []byte
	d.UART.Subscribe(func(at sim.Cycles, b byte) { got = append(got, b) })
	t0 := d.Clock.Now()
	env.UARTWrite([]byte("hi"))
	elapsed := d.Clock.Now() - t0
	// 2 bytes at 115200 baud, 10 bits each: ~174 µs ≈ 695 cycles.
	if elapsed < 600 || elapsed > 800 {
		t.Fatalf("2-byte transmit took %d cycles", elapsed)
	}
	if string(got) != "hi" {
		t.Fatalf("delivered %q", got)
	}
	if d.UART.BytesSent() != 2 {
		t.Fatalf("bytes sent = %d", d.UART.BytesSent())
	}
}

func TestUARTReceiveTimeout(t *testing.T) {
	d := constDevice(11, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	if _, ok := env.UARTRead(100); ok {
		t.Fatal("read with empty queue must time out")
	}
	d.UART.Inject([]byte{0x42})
	b, ok := env.UARTRead(100)
	if !ok || b != 0x42 {
		t.Fatalf("b=%#x ok=%v", b, ok)
	}
	if d.UART.RxPending() != 0 {
		t.Fatal("queue must drain")
	}
}

type fakeI2C struct{ regs [256]byte }

func (f *fakeI2C) I2CAddr() byte             { return 0x42 }
func (f *fakeI2C) ReadReg(r byte) byte       { return f.regs[r] }
func (f *fakeI2C) WriteReg(r byte, val byte) { f.regs[r] = val }

func TestI2CTransactions(t *testing.T) {
	d := constDevice(12, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	dev := &fakeI2C{}
	dev.regs[3] = 7
	d.I2C.Attach(dev)
	var seen []I2CTransfer
	d.I2C.Subscribe(func(tr I2CTransfer) { seen = append(seen, tr) })

	got, err := env.I2CReadRegs(0x42, 3, 2)
	if err != nil || got[0] != 7 {
		t.Fatalf("read: %v %v", got, err)
	}
	if err := env.I2CWriteRegs(0x42, 10, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if dev.regs[10] != 1 || dev.regs[11] != 2 {
		t.Fatal("write did not land")
	}
	if len(seen) != 2 || seen[0].Write || !seen[1].Write {
		t.Fatalf("transfers = %v", seen)
	}
	if _, err := env.I2CReadRegs(0x99, 0, 1); err == nil {
		t.Fatal("missing device must error")
	}
	if seen[0].String() == "" {
		t.Fatal("transfer string")
	}
}

func TestRFQueueAndDecodeCost(t *testing.T) {
	d := constDevice(13, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	d.RF.Deliver(RFFrame{Bits: []byte{1, 2, 3}})
	d.RF.Deliver(RFFrame{Bits: []byte{9}, Corrupted: true})
	if d.RF.Pending() != 2 {
		t.Fatalf("pending = %d", d.RF.Pending())
	}
	t0 := d.Clock.Now()
	f, ok, corrupt := env.RFReceive()
	if !ok || corrupt || len(f.Bits) != 3 {
		t.Fatalf("recv: %v %v %v", f, ok, corrupt)
	}
	if d.Clock.Now() == t0 {
		t.Fatal("decode must cost cycles")
	}
	_, ok, corrupt = env.RFReceive()
	if ok || !corrupt {
		t.Fatal("corrupted frame must decode to failure")
	}
	_, ok, corrupt = env.RFReceive()
	if ok || corrupt {
		t.Fatal("empty queue")
	}
}

func TestRFTransmitReachesReader(t *testing.T) {
	d := constDevice(14, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	var heard []byte
	d.RF.OnTransmit = func(at sim.Cycles, f RFFrame) { heard = f.Bits }
	var monitored []byte
	d.RF.SubscribeTx(func(f RFFrame) { monitored = f.Bits })
	env.RFTransmit([]byte{0x81, 0xAA})
	if string(heard) != string([]byte{0x81, 0xAA}) || string(monitored) != string(heard) {
		t.Fatalf("heard=%v monitored=%v", heard, monitored)
	}
}

func TestRFQueueBounded(t *testing.T) {
	d := constDevice(15, units.MilliAmps(5))
	for i := 0; i < 100; i++ {
		d.RF.Deliver(RFFrame{Bits: []byte{byte(i)}})
	}
	if d.RF.Pending() > 8 {
		t.Fatalf("demodulator queue unbounded: %d", d.RF.Pending())
	}
}

type countingMonitor struct {
	period sim.Cycles
	calls  int
	last   sim.Cycles
}

func (m *countingMonitor) Period() sim.Cycles { return m.period }
func (m *countingMonitor) Sample(now sim.Cycles) {
	m.calls++
	m.last = now
}

func TestMonitorsRunWhileOnAndOff(t *testing.T) {
	d := constDevice(16, units.MilliAmps(1))
	m := &countingMonitor{period: 400} // 100 µs
	d.AddMonitor(m)
	// While charging (off):
	d.IdleCharge(units.Seconds(2))
	offCalls := m.calls
	if offCalls == 0 {
		t.Fatal("monitors must sample while the target is off")
	}
	// While executing:
	env := &Env{D: d}
	func() {
		defer func() { recover() }()
		env.Compute(40000)
	}()
	if m.calls <= offCalls {
		t.Fatal("monitors must sample while the target runs")
	}
}

func TestMonitorRemoval(t *testing.T) {
	d := constDevice(17, units.MilliAmps(1))
	m := &countingMonitor{period: 400}
	remove := d.AddMonitor(m)
	d.IdleCharge(units.MilliSeconds(10))
	n := m.calls
	remove()
	d.IdleCharge(units.MilliSeconds(10))
	if m.calls != n {
		t.Fatal("removed monitor must not fire")
	}
}

type fixedProbe struct{ i units.Amps }

func (p fixedProbe) LeakageCurrent() units.Amps { return p.i }

func TestProbeLeakageSlowsCharging(t *testing.T) {
	charge := func(leak units.Amps) sim.Cycles {
		d := NewWISP5(&energy.ConstantHarvester{I: units.MicroAmps(100), Voc: 3.3}, 18)
		if leak > 0 {
			d.AddProbe(fixedProbe{leak})
		}
		d.IdleCharge(units.Seconds(10))
		return d.Clock.Now()
	}
	clean := charge(0)
	loaded := charge(units.MicroAmps(50))
	if loaded <= clean {
		t.Fatalf("a 50 µA probe must slow charging: %d vs %d", loaded, clean)
	}
	// EDB-scale leakage (sub-µA) must be nearly invisible.
	edbish := charge(units.NanoAmps(840))
	ratio := float64(edbish) / float64(clean)
	if ratio > 1.02 {
		t.Fatalf("sub-µA probe changed charge time by %.1f%%", 100*(ratio-1))
	}
}

func TestInterruptInvokesISR(t *testing.T) {
	d := constDevice(19, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	calls := 0
	d.SetISR(func(env *Env) { calls++ })
	env.Compute(1000)
	if calls != 0 {
		t.Fatal("ISR must not run without an interrupt")
	}
	d.RaiseInterrupt()
	env.Compute(1000)
	if calls != 1 {
		t.Fatalf("ISR calls = %d", calls)
	}
	env.Compute(1000)
	if calls != 1 {
		t.Fatal("interrupt must be one-shot")
	}
}

func TestRebootClearsTransientState(t *testing.T) {
	d := constDevice(20, units.MilliAmps(5))
	powerOn(d)
	env := &Env{D: d}
	env.SetPin(LineAppPin, true)
	d.SetLoad("x", units.MilliAmps(1))
	d.UART.Inject([]byte{1})
	d.RaiseInterrupt()
	d.Reboot()
	if d.GPIO.Level(LineAppPin) {
		t.Fatal("GPIO must reset on reboot")
	}
	if d.UART.RxPending() != 0 {
		t.Fatal("UART queue must reset")
	}
	if d.TotalLoad() != d.Config().ActiveCurrent {
		t.Fatal("loads must reset")
	}
	if d.Stats().Reboots != 1 {
		t.Fatal("reboot count")
	}
}

func TestAdvanceIdleKeepsMonitorsAlive(t *testing.T) {
	d := constDevice(21, units.MilliAmps(1))
	m := &countingMonitor{period: 4000}
	d.AddMonitor(m)
	d.AdvanceIdle(units.MilliSeconds(10))
	if m.calls == 0 {
		t.Fatal("AdvanceIdle must run monitors")
	}
}

func TestSelfMeasureCostsEnergy(t *testing.T) {
	d := NewWISP5(energy.NullHarvester{}, 22)
	powerOn(d)
	env := &Env{D: d}
	v0 := d.Supply.Voltage()
	got := env.MeasureSelfVoltage()
	if got <= 0 {
		t.Fatal("measurement value")
	}
	if d.Supply.Voltage() >= v0 {
		t.Fatal("self-measurement must perturb the energy state (§4.1)")
	}
}
