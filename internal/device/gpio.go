package device

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/units"
)

// Well-known GPIO line names wired between the target and EDB (Fig. 5) or
// used by the evaluation applications.
const (
	// LineCodeMarker0/1 are the code-marker lines EDB decodes into
	// watchpoint identifiers (§4.1.3). With n marker lines the target can
	// signal 2ⁿ−1 distinct watchpoints.
	LineCodeMarker0 = "code-marker-0"
	LineCodeMarker1 = "code-marker-1"
	// LineDebugSignal is the dedicated target→debugger line that opens
	// active-mode exchanges (§4.2).
	LineDebugSignal = "debug-signal"
	// LineInterrupt is the debugger→target interrupt wire (Fig. 5).
	LineInterrupt = "interrupt"
	// LineAppPin is the application progress indicator the case studies
	// toggle at the top and bottom of their main loops (§5.3.1).
	LineAppPin = "app-pin"
	// LineLED is an indicator LED; lighting it raises the WISP's current
	// draw from ~1 mA to over 5 mA (§2.2), which is why LED-based tracing
	// is unusable on harvested power.
	LineLED = "led"
)

// LEDCurrent is the extra load while the LED is lit: the paper reports
// powering an LED increases the WISP's draw by five times, from around
// 1 mA to over 5 mA.
const LEDCurrent = units.Amps(4.2e-3)

// GPIOEdge describes a level transition on a line.
type GPIOEdge struct {
	Line  string
	At    sim.Cycles
	Level bool
}

// GPIOPorts is the device's GPIO controller. Lines are created on first
// use; every level change notifies subscribers (EDB's monitors, traces).
type GPIOPorts struct {
	d     *Device
	lines map[string]*gpioLine
	// Well-known lines resolved once: pin writes sit on the libEDB
	// watchpoint fast path, where a map probe per edge is measurable.
	marker0, marker1, debugSig *gpioLine
	subs  []func(GPIOEdge)

	// version increments on every level change, including the silent reset
	// at reboot. Observers (EDB's leakage model) use it to cache derived
	// state that is a pure function of the line levels.
	version uint64
}

type gpioLine struct {
	name    string
	level   bool
	toggles uint64
}

func newGPIOPorts(d *Device) *GPIOPorts {
	return &GPIOPorts{d: d, lines: make(map[string]*gpioLine)}
}

func (g *GPIOPorts) line(name string) *gpioLine {
	switch name {
	case LineCodeMarker0:
		if g.marker0 == nil {
			g.marker0 = g.lookup(name)
		}
		return g.marker0
	case LineCodeMarker1:
		if g.marker1 == nil {
			g.marker1 = g.lookup(name)
		}
		return g.marker1
	case LineDebugSignal:
		if g.debugSig == nil {
			g.debugSig = g.lookup(name)
		}
		return g.debugSig
	}
	return g.lookup(name)
}

func (g *GPIOPorts) lookup(name string) *gpioLine {
	l, ok := g.lines[name]
	if !ok {
		l = &gpioLine{name: name}
		g.lines[name] = l
	}
	return l
}

// Subscribe registers fn to observe every edge on every line. It returns a
// remove function.
func (g *GPIOPorts) Subscribe(fn func(GPIOEdge)) func() {
	g.subs = append(g.subs, fn)
	idx := len(g.subs) - 1
	return func() { g.subs[idx] = nil }
}

// set drives a line to the given level, notifying subscribers on change.
func (g *GPIOPorts) set(name string, level bool) {
	l := g.line(name)
	if l.level == level {
		return
	}
	l.level = level
	l.toggles++
	g.version++
	edge := GPIOEdge{Line: name, At: g.d.Clock.Now(), Level: level}
	for _, fn := range g.subs {
		if fn != nil {
			fn(edge)
		}
	}
	// The LED is a real load.
	if name == LineLED {
		if level {
			g.d.SetLoad("led", LEDCurrent)
		} else {
			g.d.SetLoad("led", 0)
		}
	}
}

// Level returns the present level of a line (false if never driven).
func (g *GPIOPorts) Level(name string) bool { return g.line(name).level }

// Toggles returns the number of level changes a line has seen — a cheap way
// for tests to ask "is the main loop still running?".
func (g *GPIOPorts) Toggles(name string) uint64 { return g.line(name).toggles }

// Names returns the lines that exist, sorted.
func (g *GPIOPorts) Names() []string {
	out := make([]string, 0, len(g.lines))
	for n := range g.lines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// reset drives all outputs low without counting toggles (power-on state).
func (g *GPIOPorts) reset() {
	for _, l := range g.lines {
		l.level = false
	}
	g.version++
	g.d.SetLoad("led", 0)
}

// Version returns the level-change counter; it changes whenever any line's
// level may have changed since a previous Version call.
func (g *GPIOPorts) Version() uint64 { return g.version }

func (e GPIOEdge) String() string {
	lv := "↓"
	if e.Level {
		lv = "↑"
	}
	return fmt.Sprintf("%s%s@%d", e.Line, lv, e.At)
}
