package device

import (
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// Instruction-cost model, in MCU cycles. The values are MSP430FR-flavored:
// FRAM and SRAM run without wait states at 4 MHz; a word load is 3 cycles,
// a store 4, a taken branch 2.
const (
	CyclesLoad    = 3
	CyclesStore   = 4
	CyclesBranch  = 2
	CyclesCompute = 1 // per ALU op
)

// Env is the firmware's window onto the device. Every method that touches
// hardware advances the simulated clock and drains the capacitor, so the
// act of computing is inseparable from the act of consuming energy — the
// property that makes intermittent software hard and that EDB is built to
// observe without disturbing.
//
// Firmware must keep all persistent program state in simulated memory (via
// LoadWord/StoreWord on FRAM addresses) and treat Go local variables as the
// register file/stack: they vanish when a *PowerFailure unwinds Main, just
// as a reboot clears volatile registers and SRAM.
type Env struct {
	D *Device
}

// tick advances time by n cycles on behalf of executing firmware.
func (e *Env) tick(n sim.Cycles) { e.D.advance(n, e) }

// Compute charges n cycles of pure computation.
func (e *Env) Compute(n int) {
	if n > 0 {
		e.tick(sim.Cycles(n) * CyclesCompute)
	}
}

// Branch charges one taken-branch cost; call it in loop heads to model
// control-flow cost honestly.
func (e *Env) Branch() { e.tick(CyclesBranch) }

// LoadWord reads a 16-bit word from simulated memory. An illegal address
// panics with *MemoryFault — the simulated equivalent of dereferencing a
// wild pointer.
func (e *Env) LoadWord(a memsim.Addr) uint16 {
	e.tick(CyclesLoad)
	v, err := e.D.Mem.ReadWord(a)
	if err != nil {
		panic(&MemoryFault{At: e.D.Clock.Now(), Fault: err.(*memsim.Fault)})
	}
	return v
}

// StoreWord writes a 16-bit word to simulated memory.
func (e *Env) StoreWord(a memsim.Addr, v uint16) {
	e.tick(CyclesStore)
	if err := e.D.Mem.WriteWord(a, v); err != nil {
		panic(&MemoryFault{At: e.D.Clock.Now(), Fault: err.(*memsim.Fault)})
	}
}

// LoadByte reads one byte from simulated memory.
func (e *Env) LoadByte(a memsim.Addr) byte {
	e.tick(CyclesLoad)
	v, err := e.D.Mem.ReadByteAt(a)
	if err != nil {
		panic(&MemoryFault{At: e.D.Clock.Now(), Fault: err.(*memsim.Fault)})
	}
	return v
}

// StoreByte writes one byte to simulated memory.
func (e *Env) StoreByte(a memsim.Addr, v byte) {
	e.tick(CyclesStore)
	if err := e.D.Mem.WriteByteAt(a, v); err != nil {
		panic(&MemoryFault{At: e.D.Clock.Now(), Fault: err.(*memsim.Fault)})
	}
}

// LoadPtr reads a pointer-sized value (an Addr) from memory.
func (e *Env) LoadPtr(a memsim.Addr) memsim.Addr {
	return memsim.Addr(e.LoadWord(a))
}

// StorePtr writes a pointer-sized value to memory.
func (e *Env) StorePtr(a memsim.Addr, p memsim.Addr) {
	e.StoreWord(a, uint16(p))
}

// SetPin drives a GPIO line, costing one cycle.
func (e *Env) SetPin(line string, level bool) {
	e.tick(1)
	e.D.GPIO.set(line, level)
}

// TogglePin inverts a GPIO line.
func (e *Env) TogglePin(line string) {
	e.tick(1)
	e.D.GPIO.set(line, !e.D.GPIO.Level(line))
}

// PulsePin raises then lowers a line — the "toggle an LED / GPIO at a point
// of interest" idiom, and the code-marker signalling mechanism.
func (e *Env) PulsePin(line string) {
	e.SetPin(line, true)
	e.SetPin(line, false)
}

// UARTWrite transmits bytes on the serial port (time + energy).
func (e *Env) UARTWrite(data []byte) { e.D.UART.transmit(e, data) }

// UARTRead receives one byte, waiting up to maxWait cycles.
func (e *Env) UARTRead(maxWait sim.Cycles) (byte, bool) {
	return e.D.UART.receive(e, maxWait)
}

// I2CReadRegs reads registers from an I2C peripheral.
func (e *Env) I2CReadRegs(addr, reg byte, n int) ([]byte, error) {
	return e.D.I2C.ReadRegs(e, addr, reg, n)
}

// I2CWriteRegs writes registers on an I2C peripheral.
func (e *Env) I2CWriteRegs(addr, reg byte, data []byte) error {
	return e.D.I2C.WriteRegs(e, addr, reg, data)
}

// RFReceive pops and decodes one RF frame, if any.
func (e *Env) RFReceive() (RFFrame, bool, bool) { return e.D.RF.Receive(e) }

// RFTransmit backscatters a reply frame.
func (e *Env) RFTransmit(bits []byte) { e.D.RF.Transmit(e, bits) }

// Voltage returns the true storage-capacitor voltage. Firmware measuring
// its own supply would burn energy to do so; this accessor exists for
// tests and oracles, not for firmware — firmware that wants a reading
// should use MeasureSelfVoltage, which charges the ADC cost.
func (e *Env) Voltage() float64 {
	e.D.flushSupply()
	return float64(e.D.Supply.Voltage())
}

// MeasureSelfVoltage models the target sampling its own stored energy with
// its on-board ADC: it costs time and energy, perturbing the very state
// being measured (§4.1: "doing so uses energy, perturbing the energy state
// being measured").
func (e *Env) MeasureSelfVoltage() float64 {
	const adcCycles = 160 // sample-and-hold + conversion
	e.tick(adcCycles)
	e.D.flushSupply()
	return float64(e.D.Supply.Voltage())
}

// Sleep puts the MCU in a low-power mode for n cycles: time passes at the
// sleep current instead of the active current. Firmware uses it to wait for
// sensor data-ready intervals. A power failure during sleep unwinds as
// usual; the low-power flag is cleared on reboot.
func (e *Env) Sleep(n sim.Cycles) {
	e.D.flushSupply() // active-current cycles integrate before the mode switch
	e.D.lowPower = true
	defer func() {
		e.D.flushSupply() // and sleep-current cycles before returning to active
		e.D.lowPower = false
	}()
	e.tick(n)
}

// SleepFor sleeps for a wall-clock duration.
func (e *Env) SleepFor(d units.Seconds) { e.Sleep(e.D.Clock.ToCycles(d)) }

// Now returns the current simulated cycle.
func (e *Env) Now() sim.Cycles { return e.D.Clock.Now() }
