package device

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// UART models the target's serial port. Transmitting costs real time (the
// byte must be clocked out at the configured baud rate) and real energy
// (the USCI peripheral draws current while enabled) — which is exactly why
// §2.2 and §5.3.3 find UART-based tracing disruptive on harvested power:
// the energy cost of each printf changes where in the program the energy
// runs out.
type UART struct {
	d *Device

	// Baud is the line rate in bits per second (default 115200).
	Baud int
	// TxCurrent is the extra load while the transmitter is active. The
	// activity-recognition case study measures a UART printf at ~2.5 % of
	// the 47 µF store per ~13-character line.
	TxCurrent units.Amps

	rxq  []byte
	subs []func(at sim.Cycles, b byte)

	bytesSent uint64
}

func newUART(d *Device) *UART {
	return &UART{
		d:         d,
		Baud:      115200,
		TxCurrent: units.MilliAmps(1.4),
	}
}

// byteCycles returns the cycles to clock one byte (10 bits: start + 8 data
// + stop) at the configured baud rate.
func (u *UART) byteCycles() sim.Cycles {
	secPerByte := 10.0 / float64(u.Baud)
	return u.d.Clock.ToCycles(units.Seconds(secPerByte))
}

// Subscribe registers a listener for transmitted bytes (EDB's monitor or a
// USB-serial adapter). It returns a remove function.
func (u *UART) Subscribe(fn func(at sim.Cycles, b byte)) func() {
	u.subs = append(u.subs, fn)
	idx := len(u.subs) - 1
	return func() { u.subs[idx] = nil }
}

// transmit clocks bytes out, charging time and energy to the firmware
// context. Each byte is delivered to subscribers when its stop bit lands.
func (u *UART) transmit(env *Env, data []byte) {
	if len(data) == 0 {
		return
	}
	u.d.SetLoad("uart-tx", u.TxCurrent)
	defer u.d.SetLoad("uart-tx", 0)
	cyc := u.byteCycles()
	for _, b := range data {
		env.tick(cyc)
		u.bytesSent++
		u.d.stats.UARTBytesSent++
		for _, fn := range u.subs {
			if fn != nil {
				fn(u.d.Clock.Now(), b)
			}
		}
	}
}

// Inject places bytes in the receive queue (used by the debugger's host
// side and by tests).
func (u *UART) Inject(data []byte) { u.rxq = append(u.rxq, data...) }

// RxPending returns the number of buffered receive bytes.
func (u *UART) RxPending() int { return len(u.rxq) }

// receive pops one byte from the receive queue, busy-waiting (burning time
// and energy) up to maxWait. The second result is false on timeout.
func (u *UART) receive(env *Env, maxWait sim.Cycles) (byte, bool) {
	var waited sim.Cycles
	const pollCycles = 8
	for len(u.rxq) == 0 {
		if waited >= maxWait {
			return 0, false
		}
		env.tick(pollCycles)
		waited += pollCycles
	}
	b := u.rxq[0]
	u.rxq = u.rxq[1:]
	env.tick(u.byteCycles())
	return b, true
}

// BytesSent returns the number of bytes transmitted since reset.
func (u *UART) BytesSent() uint64 { return u.bytesSent }

func (u *UART) reset() {
	u.rxq = nil
	u.d.SetLoad("uart-tx", 0)
}
