package device

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/units"
)

// Program is a firmware image. Flash runs once when the program is loaded
// onto the device (laying out FRAM data structures costs no runtime
// energy, like flashing a real board); Main is the reset-vector entry
// point, re-entered after every reboot with all volatile state cleared.
type Program interface {
	// Name identifies the program in traces and results.
	Name() string
	// Flash lays out the program's memory image on the device.
	Flash(d *Device) error
	// Main executes until power fails (a *PowerFailure panic unwinds it),
	// a memory fault wedges the MCU, or it returns (app complete).
	Main(env *Env)
}

// RunResult summarizes an intermittent execution.
type RunResult struct {
	// Completed is true if Main returned normally at least once.
	Completed bool
	// Reboots counts power-failure restarts.
	Reboots int
	// Faults counts memory-fault wedges.
	Faults int
	// Halted is non-empty if a debugger decision stopped the run.
	Halted string
	// DeadlineHit is true if the simulation deadline expired mid-run.
	DeadlineHit bool
	// SimTime is the total simulated time elapsed.
	SimTime units.Seconds
	// Stats is the device's accumulated statistics.
	Stats Stats
}

func (r RunResult) String() string {
	return fmt.Sprintf("run: completed=%v reboots=%d faults=%d halted=%q deadline=%v t=%s",
		r.Completed, r.Reboots, r.Faults, r.Halted, r.DeadlineHit, r.SimTime)
}

// ErrNeverPowered is returned when the harvester cannot bring the device to
// its turn-on threshold.
var ErrNeverPowered = errors.New("device: harvester never reached turn-on threshold")

// Runner drives a Program through the intermittent execution model:
// charge → run → brown-out → reboot → charge → …, until a deadline or a
// terminal condition.
type Runner struct {
	D *Device
	P Program

	// MaxChargeTime bounds one charging phase; if the harvester cannot
	// reach turn-on within it, the run aborts with ErrNeverPowered.
	MaxChargeTime units.Seconds

	// OnReboot, if set, is called after each power-failure reboot.
	OnReboot func(n int)
}

// NewRunner returns a runner for program p on device d.
func NewRunner(d *Device, p Program) *Runner {
	return &Runner{D: d, P: p, MaxChargeTime: units.Seconds(10)}
}

// Flash loads the program image onto the device.
func (r *Runner) Flash() error { return r.P.Flash(r.D) }

// RunFor executes the program intermittently for the given simulated
// duration. The program must already be flashed.
func (r *Runner) RunFor(d units.Seconds) (RunResult, error) {
	now := r.D.Clock.Now()
	return r.RunUntil(now+r.D.Clock.ToCycles(d), now)
}

// RunUntil is RunFor against an absolute deadline cycle, with SimTime
// reported relative to origin. It exists for warm-started rigs: a rig
// restored from a mid-charge snapshot passes the deadline and origin a
// cold run would have used (origin 0), so the deadline cycle and the
// reported times — and therefore every output byte — match the cold run
// exactly instead of being skewed by the snapshot point.
func (r *Runner) RunUntil(deadline, origin sim.Cycles) (RunResult, error) {
	r.D.SetDeadline(deadline)
	defer r.D.ClearDeadline()
	start := r.D.Clock.ToSeconds(origin)

	var res RunResult
	env := &Env{D: r.D}

	for {
		// Charging phase: wait for turn-on (deadline may fire inside).
		powered, stop := r.charge(&res)
		if stop {
			break
		}
		if !powered {
			res.SimTime = units.Seconds(float64(r.D.Clock.Time()) - float64(start))
			res.Stats = r.D.Stats()
			return res, ErrNeverPowered
		}

		// Execution phase.
		outcome := r.executeOnce(env)
		switch o := outcome.(type) {
		case nil:
			res.Completed = true
		case *PowerFailure:
			res.Reboots++
			r.D.Reboot()
			if r.OnReboot != nil {
				r.OnReboot(res.Reboots)
			}
			continue
		case *MemoryFault:
			res.Faults++
			// The MCU is wedged executing garbage: it burns energy at the
			// active rate until brown-out, then reboots like any power
			// failure. If the corrupt state persists in FRAM, the next
			// cycle wedges again — forever, as in §5.3.1.
			if r.burnUntilBrownout(&res) {
				break
			}
			res.Reboots++
			r.D.Reboot()
			if r.OnReboot != nil {
				r.OnReboot(res.Reboots)
			}
			continue
		case *Halted:
			res.Halted = o.Reason
		case *DeadlineReached:
			res.DeadlineHit = true
		default:
			panic(outcome) // real bug in the simulator or firmware harness
		}
		break
	}

	res.SimTime = units.Seconds(float64(r.D.Clock.Time()) - float64(start))
	res.Stats = r.D.Stats()
	return res, nil
}

// charge waits for power-on. It returns stop=true if the deadline fired.
func (r *Runner) charge(res *RunResult) (powered, stop bool) {
	if r.D.Supply.State() == energy.PowerOn && r.D.Supply.Voltage() >= r.D.Supply.VBrownOut {
		return true, false
	}
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*DeadlineReached); ok {
				res.DeadlineHit = true
				powered, stop = false, true
				return
			}
			panic(p)
		}
	}()
	return r.D.IdleCharge(r.MaxChargeTime), false
}

// executeOnce runs Main, converting terminal panics into outcome values.
func (r *Runner) executeOnce(env *Env) (outcome any) {
	defer func() {
		if p := recover(); p != nil {
			switch p.(type) {
			case *PowerFailure, *MemoryFault, *Halted, *DeadlineReached:
				outcome = p
			default:
				panic(p)
			}
		}
	}()
	r.P.Main(env)
	return nil
}

// burnUntilBrownout models a wedged MCU spinning garbage until the supply
// collapses. Returns true if the deadline fired first.
func (r *Runner) burnUntilBrownout(res *RunResult) (deadline bool) {
	defer func() {
		if p := recover(); p != nil {
			switch p.(type) {
			case *PowerFailure:
				deadline = false
			case *DeadlineReached:
				res.DeadlineHit = true
				deadline = true
			default:
				panic(p)
			}
		}
	}()
	env := &Env{D: r.D}
	for {
		env.tick(1024)
	}
}
