// Package device simulates the target energy-harvesting device: a WISP-like
// platform with an MSP430-class MCU, volatile SRAM, non-volatile FRAM, GPIO,
// UART, I2C, an RF front end, and — crucially — a power supply that makes
// execution intermittent.
//
// Firmware is Go code written against the strict Env API (env.go): every
// load, store, computation, and peripheral operation advances the simulated
// clock and drains the storage capacitor. When the capacitor falls below the
// brown-out threshold mid-operation, the operation panics with
// *PowerFailure; the Runner recovers, clears all volatile state, waits for
// the harvester to recharge the capacitor to the turn-on threshold, and
// re-enters main() — the intermittent execution model of Lucia & Ransford
// that the paper builds on.
package device

import (
	"fmt"
	"sort"

	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// PowerFailure is panicked by device operations when the supply browns out.
// It unwinds the firmware stack exactly the way a power failure destroys
// volatile execution context.
type PowerFailure struct {
	At sim.Cycles
	V  units.Volts
}

func (p *PowerFailure) Error() string {
	return fmt.Sprintf("power failure at cycle %d (Vcap=%s)", p.At, p.V)
}

// MemoryFault is panicked when firmware performs an illegal memory access
// (e.g. dereferencing a NULL or wild pointer). The Runner models the
// hardware consequence: the MCU wedges, burning energy until brown-out,
// then reboots — and if the fault's root cause persists in non-volatile
// memory, it wedges again every charge cycle, which is precisely the
// "main loop mysteriously stops forever" symptom of §5.3.1.
type MemoryFault struct {
	At    sim.Cycles
	Fault *memsim.Fault
}

func (m *MemoryFault) Error() string {
	return fmt.Sprintf("memory fault at cycle %d: %v", m.At, m.Fault)
}

// DeadlineReached is panicked when the simulation deadline set by the
// Runner expires; it cleanly unwinds whatever the firmware was doing.
type DeadlineReached struct{ At sim.Cycles }

func (d *DeadlineReached) Error() string {
	return fmt.Sprintf("simulation deadline reached at cycle %d", d.At)
}

// Halted is panicked when a debugger-side decision stops the run (e.g. a
// keep-alive assertion whose interactive session chooses not to resume).
type Halted struct {
	At     sim.Cycles
	Reason string
}

func (h *Halted) Error() string {
	return fmt.Sprintf("halted at cycle %d: %s", h.At, h.Reason)
}

// Monitor is a callback sampled periodically on simulated time — the hook
// EDB's passive mode and the oscilloscope probes use. Monitors run whether
// the target is on or off (EDB observes the device "whether it is on or
// off", §3.1).
type Monitor interface {
	Period() sim.Cycles
	Sample(now sim.Cycles)
}

type monitorSlot struct {
	m    Monitor
	next sim.Cycles
}

// PassiveProbe reports the net leakage current an attached tool draws from
// (positive) or feeds into (negative) the target's storage, as a function
// of the target's present line states. EDB's probe computes this from the
// Table-2 circuit models; a conventional tool's probe is far larger.
type PassiveProbe interface {
	LeakageCurrent() units.Amps
}

// Debugger is the interface the target-side libEDB library uses to reach an
// attached debugger. It is implemented by internal/edb. The methods
// correspond to signal transitions on the physical debug wires; keeping
// them as an interface lets the device package stay ignorant of EDB.
// Active-mode methods take the firmware Env because debugger actions
// (save, tether, restore) consume shared simulated time: the target spins
// on tethered power while EDB's hardware works.
type Debugger interface {
	// MarkerEdge delivers a code-marker GPIO pulse (watchpoint) encoded on
	// the marker lines.
	MarkerEdge(now sim.Cycles, id int)
	// DebugRequest is the target raising the target→debugger signal line
	// to open an active-mode exchange; kind discriminates the request.
	// The debugger saves the target's energy level and tethers it to
	// continuous power. It returns true if the debugger accepted.
	DebugRequest(env *Env, kind DebugRequestKind, arg uint16) bool
	// DebugDone is the target signalling the end of the active exchange;
	// the debugger restores the saved energy level and untethers.
	DebugDone(env *Env)
	// BreakpointEnabled reports whether the debugger has the given code
	// breakpoint enabled and its trigger condition (e.g. an energy
	// threshold for combined breakpoints) satisfied.
	BreakpointEnabled(id int) bool
	// EnterInteractive hands control to the debugger's interactive session
	// (console). The target sits in its debug service loop until the
	// session resumes it.
	EnterInteractive(env *Env, reason string)
}

// DebugRequestKind discriminates active-mode requests from the target.
type DebugRequestKind int

const (
	// ReqAssert is a failed keep-alive assertion.
	ReqAssert DebugRequestKind = iota
	// ReqBreakpoint is an enabled code breakpoint trap.
	ReqBreakpoint
	// ReqGuardBegin opens an energy-guarded region.
	ReqGuardBegin
	// ReqGuardEnd closes an energy-guarded region.
	ReqGuardEnd
	// ReqPrintf precedes an energy-interference-free printf payload.
	ReqPrintf
)

func (k DebugRequestKind) String() string {
	switch k {
	case ReqAssert:
		return "assert"
	case ReqBreakpoint:
		return "breakpoint"
	case ReqGuardBegin:
		return "guard-begin"
	case ReqGuardEnd:
		return "guard-end"
	case ReqPrintf:
		return "printf"
	}
	return "unknown"
}

// Config parameterizes a simulated device.
type Config struct {
	// ClockHz is the MCU clock (default 4 MHz, the WISP 5 configuration).
	ClockHz uint64
	// ActiveCurrent is the load while the MCU executes, before peripheral
	// adders. The WISP 5's MCU core draws ~0.5 mA at 4 MHz; regulator
	// overhead and FRAM activity bring the platform draw higher.
	ActiveCurrent units.Amps
	// SleepCurrent is the load in a low-power mode (LPM with timer
	// running), used by firmware that waits between samples.
	SleepCurrent units.Amps
	// Quantum is the energy-integration step in cycles.
	Quantum sim.Cycles
	// SleepQuantum, when non-zero, is a coarser energy-integration step
	// used while the MCU is in a low-power mode (env.Sleep). Sleep current
	// is near-constant, so integrating it at the active-mode quantum buys
	// no accuracy; fleet-scale runs set this to trade sub-quantum sleep
	// resolution for throughput. Zero keeps the active quantum everywhere
	// (the default, and the setting all golden results use).
	SleepQuantum sim.Cycles
	// DeferSupply batches sub-quantum supply integration: while no
	// monitors or probes are attached and the target is untethered,
	// advance() accrues elapsed cycles and integrates the store once a
	// full quantum has accumulated — or at the next load change, sleep
	// transition, or voltage observation — instead of once per env call.
	// Short bus and GPIO operations then stop paying a supply step each.
	// Brown-out surfaces at the accrual boundary, the same granularity
	// trade Quantum already makes. Off by default (the setting all golden
	// results use).
	DeferSupply bool
	// Seed seeds the device's RNG streams.
	Seed int64
}

// DefaultConfig returns WISP-5-like parameters.
func DefaultConfig() Config {
	return Config{
		ClockHz:       sim.DefaultClockHz,
		ActiveCurrent: units.MilliAmps(1.2),
		SleepCurrent:  units.MicroAmps(350),
		Quantum:       64,
		Seed:          1,
	}
}

// Device is the simulated target platform.
type Device struct {
	Clock  *sim.Clock
	Supply *energy.Supply
	Mem    *memsim.Memory
	SRAM   *memsim.Region
	FRAM   *memsim.Region
	GPIO   *GPIOPorts
	UART   *UART
	I2C    *I2CBus
	RF     *RFPort
	RNG    *sim.RNG

	cfg Config

	// dynamic load adders, by name (peripherals turn themselves on/off),
	// kept as a name-sorted slice: there are at most a handful, SetLoad
	// sits on the app's per-iteration path, and summing in sorted order
	// keeps the cached total independent of insertion order.
	loads   []loadEntry
	loadSum units.Amps

	// pendSupply is the deferred-integration accrual: cycles the clock has
	// advanced that the supply has not yet integrated (DeferSupply only).
	pendSupply sim.Cycles

	monitors []*monitorSlot
	probes   []PassiveProbe

	debugger Debugger

	// interrupt support (EDB's Interrupt wire, Fig. 5)
	interruptPending bool
	isr              func(env *Env)
	inISR            bool

	deadline    sim.Cycles
	hasDeadline bool
	lowPower    bool

	stats Stats
}

// Stats accumulates run statistics.
type Stats struct {
	Reboots       int
	Faults        int
	ActiveTime    units.Seconds
	ChargeTime    units.Seconds
	TetheredTime  units.Seconds
	EnergyGuards  int
	Watchpoints   uint64
	UARTBytesSent uint64
}

// New returns a device with the given supply and configuration.
func New(cfg Config, supply *energy.Supply) *Device {
	if cfg.ClockHz == 0 {
		cfg.ClockHz = sim.DefaultClockHz
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 64
	}
	if cfg.ActiveCurrent == 0 {
		cfg.ActiveCurrent = DefaultConfig().ActiveCurrent
	}
	if cfg.SleepCurrent == 0 {
		cfg.SleepCurrent = DefaultConfig().SleepCurrent
	}
	mem, sram, fram := memsim.NewTargetMemory()
	d := &Device{
		Clock:  sim.NewClock(cfg.ClockHz),
		Supply: supply,
		Mem:    mem,
		SRAM:   sram,
		FRAM:   fram,
		RNG:    sim.NewRNG(cfg.Seed),
		cfg:    cfg,
	}
	d.GPIO = newGPIOPorts(d)
	d.UART = newUART(d)
	d.I2C = newI2CBus(d)
	d.RF = newRFPort(d)
	return d
}

// NewWISP5 returns a device configured like the paper's target: WISP 5
// supply (47 µF, 2.4 V / 1.8 V thresholds) powered by the given harvester.
// A reseedable harvester's stochastic stream is derived from seed, so
// distinct seeds see distinct RF channels.
func NewWISP5(h energy.Harvester, seed int64) *Device {
	cfg := DefaultConfig()
	cfg.Seed = seed
	if r, ok := h.(energy.Reseeder); ok {
		r.Reseed(seed)
	}
	return New(cfg, energy.WISP5Supply(h))
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// AttachDebugger connects a debugger implementation (EDB). Passing nil
// detaches.
func (d *Device) AttachDebugger(dbg Debugger) { d.debugger = dbg }

// Debugger returns the attached debugger, or nil.
func (d *Device) Debugger() Debugger { return d.debugger }

// AddProbe registers a passive probe whose leakage is integrated into the
// supply. It returns a remove function.
func (d *Device) AddProbe(p PassiveProbe) func() {
	d.probes = append(d.probes, p)
	return func() {
		for i, q := range d.probes {
			if q == p {
				d.probes = append(d.probes[:i], d.probes[i+1:]...)
				return
			}
		}
	}
}

// AddMonitor registers a periodic monitor. It returns a remove function.
func (d *Device) AddMonitor(m Monitor) func() {
	slot := &monitorSlot{m: m, next: d.Clock.Now()}
	d.monitors = append(d.monitors, slot)
	return func() {
		for i, s := range d.monitors {
			if s == slot {
				d.monitors = append(d.monitors[:i], d.monitors[i+1:]...)
				return
			}
		}
	}
}

// loadEntry is one named load adder; Device.loads stays sorted by name.
type loadEntry struct {
	name string
	amps units.Amps
}

// SetLoad registers (or updates) a named load adder; amps <= 0 removes it.
func (d *Device) SetLoad(name string, amps units.Amps) {
	d.flushSupply() // integrate accrued cycles under the old load

	i := sort.Search(len(d.loads), func(i int) bool { return d.loads[i].name >= name })
	switch {
	case i < len(d.loads) && d.loads[i].name == name:
		if amps <= 0 {
			d.loads = append(d.loads[:i], d.loads[i+1:]...)
		} else {
			d.loads[i].amps = amps
		}
	case amps > 0:
		d.loads = append(d.loads, loadEntry{})
		copy(d.loads[i+1:], d.loads[i:])
		d.loads[i] = loadEntry{name, amps}
	default:
		return // removing an absent load changes nothing
	}
	d.recalcLoadSum()
}

func (d *Device) recalcLoadSum() {
	var sum units.Amps
	for _, e := range d.loads {
		sum += e.amps
	}
	d.loadSum = sum
}

// VReg returns the regulated rail voltage — the Vreg line EDB senses
// (Fig. 5). The WISP's regulator produces ~2.0 V while the MCU operates
// (or is tethered); during a power failure the rail sags with the
// capacitor below the dropout point, which is exactly why EDB's level
// shifters need the tracking circuit of §4.1.2.
func (d *Device) VReg() units.Volts {
	const nominal = 2.0 // regulator setpoint
	const dropout = 0.15
	v := d.Supply.Voltage()
	if d.Supply.State() == energy.PowerOn || d.Supply.Tethered() {
		if float64(v) >= nominal+dropout {
			return nominal
		}
		sag := float64(v) - dropout
		if sag < 0 {
			sag = 0
		}
		return units.Volts(sag)
	}
	// Off: the rail follows the (sub-threshold) store through the
	// regulator's leakage path, well below its specified value.
	out := float64(v) - dropout
	if out < 0 {
		out = 0
	}
	return units.Volts(out)
}

// TotalLoad returns the present load current: MCU active (or sleep) current
// plus every peripheral adder.
func (d *Device) TotalLoad() units.Amps {
	if d.lowPower {
		return d.cfg.SleepCurrent + d.loadSum
	}
	return d.cfg.ActiveCurrent + d.loadSum
}

// probeLeakage sums attached tools' leakage (positive = drawn from target).
func (d *Device) probeLeakage() units.Amps {
	var sum units.Amps
	for _, p := range d.probes {
		sum += p.LeakageCurrent()
	}
	return sum
}

// SetDeadline arranges for device operations to panic with *DeadlineReached
// once the clock passes the given cycle.
func (d *Device) SetDeadline(at sim.Cycles) {
	d.deadline = at
	d.hasDeadline = true
}

// ClearDeadline removes the deadline.
func (d *Device) ClearDeadline() { d.hasDeadline = false }

// RaiseInterrupt asserts EDB's interrupt wire; the registered ISR runs at
// the next quantum boundary of active execution.
func (d *Device) RaiseInterrupt() { d.interruptPending = true }

// SetISR registers the interrupt service routine (libEDB's debug-service
// entry point).
func (d *Device) SetISR(isr func(env *Env)) { d.isr = isr }

// advance moves simulated time forward n cycles while the MCU runs,
// integrating energy in quanta, firing monitors and scheduled events, and
// panicking on brown-out, deadline, or (via the ISR) debugger interrupts.
func (d *Device) advance(n sim.Cycles, env *Env) {
	for n > 0 {
		q := d.cfg.Quantum
		if d.lowPower && d.cfg.SleepQuantum > q {
			q = d.cfg.SleepQuantum
		}
		step := q
		if step > n {
			step = n
		}
		n -= step
		d.Clock.Advance(step)

		if d.deferSupply() {
			d.pendSupply += step
			if d.pendSupply >= q {
				d.flushSupply()
			}
		} else {
			dt := d.Clock.ToSeconds(step)
			if d.Supply.Tethered() {
				d.stats.TetheredTime += dt
			} else {
				d.stats.ActiveTime += dt
				load := d.TotalLoad() + d.probeLeakage()
				if d.Supply.Step(load, dt) == energy.PowerOff {
					d.runMonitors()
					panic(&PowerFailure{At: d.Clock.Now(), V: d.Supply.Voltage()})
				}
			}
		}

		d.runMonitors()
		d.checkDeadline()

		if d.interruptPending && d.isr != nil && !d.inISR && env != nil {
			d.flushSupply() // the ISR observes the target's real state
			d.interruptPending = false
			d.inISR = true
			d.isr(env)
			d.inISR = false
		}
	}
}

// deferSupply reports whether supply integration may accrue across env
// calls: only when nothing samples the store between quanta.
func (d *Device) deferSupply() bool {
	return d.cfg.DeferSupply && len(d.monitors) == 0 && len(d.probes) == 0 &&
		!d.Supply.Tethered()
}

// flushSupply integrates any accrued cycles (DeferSupply). Callers that
// change the load or observe the store invoke it first; it is a no-op when
// nothing is pending.
func (d *Device) flushSupply() {
	p := d.pendSupply
	if p == 0 {
		return
	}
	d.pendSupply = 0
	dt := d.Clock.ToSeconds(p)
	d.stats.ActiveTime += dt
	load := d.TotalLoad() + d.probeLeakage()
	if d.Supply.Step(load, dt) == energy.PowerOff {
		d.runMonitors()
		panic(&PowerFailure{At: d.Clock.Now(), V: d.Supply.Voltage()})
	}
}

// IdleCharge advances time with the MCU off (no load but probe leakage)
// until either the supply turns on or maxTime elapses. It returns true if
// the device powered on.
func (d *Device) IdleCharge(maxTime units.Seconds) bool {
	powered, _ := d.IdleChargeUntil(d.Clock.Now()+d.Clock.ToCycles(maxTime), sim.Cycles(^uint64(0)))
	return powered
}

// IdleChargeUntil is the resumable core of IdleCharge: it advances a
// charging phase whose deadline is the absolute cycle limit, pausing when
// the clock reaches stopAt (a time-slice boundary). It returns powered=true
// if the supply turned on, and exhausted=true if the charge window closed
// without power-on. (false, false) means the slice boundary interrupted the
// phase: calling again with the SAME limit resumes with an integration
// sequence identical to an unsliced run — limit, not stopAt, bounds the
// analytic charge jump, so slicing never changes where integration steps or
// jumps land (a jump may carry the clock past stopAt; callers tolerate the
// overshoot, which a sequential run would perform identically).
func (d *Device) IdleChargeUntil(limit, stopAt sim.Cycles) (powered, exhausted bool) {
	quantum := d.cfg.Quantum * 16 // coarser integration while off
	for d.Clock.Now() < limit {
		if d.Clock.Now() >= stopAt {
			return false, false
		}
		// With nothing observing the charge curve, jump straight to the
		// turn-on crossing when the supply has a closed form for it.
		if len(d.monitors) == 0 && len(d.probes) == 0 && d.chargeJump(limit) {
			return true, false
		}
		step := quantum
		d.Clock.Advance(step)
		dt := d.Clock.ToSeconds(step)
		d.stats.ChargeTime += dt
		// While off, only probe leakage loads the store (and it cannot
		// trigger a brown-out panic because nothing is executing).
		if d.Supply.Step(d.probeLeakage(), dt) == energy.PowerOn {
			d.runMonitors()
			return true, false
		}
		d.runMonitors()
		d.checkDeadline()
	}
	return false, true
}

// chargeJump fast-forwards a monitor- and probe-free charging phase straight
// to the turn-on crossing using the supply's closed-form RC solve. It
// declines (returns false) whenever a scheduled event, the run deadline, or
// the end of the charge window could land before the crossing — stepped
// integration then proceeds and observes whichever comes first.
func (d *Device) chargeJump(limit sim.Cycles) bool {
	now := d.Clock.Now()
	window := limit
	if d.hasDeadline && d.deadline < window {
		window = d.deadline
	}
	if at, ok := d.Clock.NextEventAt(); ok && at < window {
		window = at
	}
	if window <= now+1 {
		return false
	}
	dt, ok := d.Supply.ChargeJumpToOn(d.Clock.ToSeconds(window - now - 1))
	if !ok {
		return false
	}
	cycles := d.Clock.ToCycles(dt)
	if cycles > window-now-1 {
		cycles = window - now - 1
	}
	d.Clock.Advance(cycles)
	d.stats.ChargeTime += d.Clock.ToSeconds(cycles)
	return true
}

// AdvanceIdle advances simulated time with the MCU halted: monitors and
// scheduled events still run, the harvester charges the store (unless
// tethered), and nothing executes. Experiment drivers use it to keep
// observing a halted (keep-alive) target.
func (d *Device) AdvanceIdle(dt units.Seconds) {
	end := d.Clock.Now() + d.Clock.ToCycles(dt)
	quantum := d.cfg.Quantum * 16
	for d.Clock.Now() < end {
		d.Clock.Advance(quantum)
		step := d.Clock.ToSeconds(quantum)
		if !d.Supply.Tethered() {
			d.Supply.Step(d.probeLeakage(), step)
		}
		d.runMonitors()
	}
}

func (d *Device) runMonitors() {
	now := d.Clock.Now()
	for _, s := range d.monitors {
		for s.next <= now {
			s.m.Sample(s.next)
			p := s.m.Period()
			if p == 0 {
				p = 1
			}
			s.next += p
		}
	}
}

func (d *Device) checkDeadline() {
	if d.hasDeadline && d.Clock.Now() >= d.deadline {
		panic(&DeadlineReached{At: d.Clock.Now()})
	}
}

// Reboot models the effect of a power failure on the MCU: volatile memory
// and register state are lost; GPIO outputs reset; peripherals reset;
// non-volatile FRAM persists.
func (d *Device) Reboot() {
	d.Mem.ClearVolatile()
	d.GPIO.reset()
	d.UART.reset()
	d.I2C.reset()
	d.RF.reset()
	d.loads = nil
	d.loadSum = 0
	d.pendSupply = 0
	d.interruptPending = false
	d.lowPower = false
	d.stats.Reboots++
}
