package device

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// Snapshot is a full machine snapshot: memory contents, clock position,
// monitor sampling phases, supply and RNG stream state, peripheral queues,
// and statistics. Restoring one onto a structurally identical device (same
// memory map, same monitor/probe registration order, same harvester
// profile) resumes execution bit-for-bit.
//
// Snapshots can only be taken at firmware-quiescent points: the firmware's
// execution context is a live Go stack and scheduled events are closures,
// neither of which can be serialized. Snapshot therefore refuses to run
// while clock events are pending, and callers must not invoke it from
// inside Program.Main. The warm-session pool takes its snapshot after the
// first charge phase, before Main has ever executed — a point every cold
// run passes through with exactly this state.
type Snapshot struct {
	Now      sim.Cycles
	Regions  []RegionSnap
	Monitors []sim.Cycles // next-sample cycle per monitor, in registration order

	Supply       energy.SupplyState
	Harvester    sim.RNGState
	HasHarvester bool
	RNG          sim.RNGState

	Loads            map[string]units.Amps
	LowPower         bool
	InterruptPending bool
	Stats            Stats

	GPIO        map[string]GPIOLineState
	GPIOVersion uint64
	UARTRx      []byte
	UARTSent    uint64
	RFRx        []RFFrame
}

// RegionSnap is one memory region's full contents.
type RegionSnap struct {
	Name string
	Data []byte
}

// GPIOLineState is one GPIO line's captured state.
type GPIOLineState struct {
	Level   bool
	Toggles uint64
}

// MemoryBytes returns the total size of the captured region contents — the
// denominator of the delta-vs-full snapshot benchmark.
func (s *Snapshot) MemoryBytes() int {
	n := 0
	for _, r := range s.Regions {
		n += len(r.Data)
	}
	return n
}

// Snapshot captures the machine state. It fails if clock events are
// pending (their callbacks cannot ride along in a snapshot).
func (d *Device) Snapshot() (*Snapshot, error) {
	if n := d.Clock.Pending(); n != 0 {
		return nil, fmt.Errorf("device: cannot snapshot with %d scheduled events pending", n)
	}
	s := &Snapshot{
		Now:              d.Clock.Now(),
		Supply:           d.Supply.SnapshotState(),
		RNG:              d.RNG.State(),
		LowPower:         d.lowPower,
		InterruptPending: d.interruptPending,
		Stats:            d.stats,
		GPIOVersion:      d.GPIO.version,
		UARTSent:         d.UART.bytesSent,
	}
	for _, r := range d.Mem.Regions() {
		s.Regions = append(s.Regions, RegionSnap{Name: r.Name, Data: r.Snapshot()})
	}
	for _, slot := range d.monitors {
		s.Monitors = append(s.Monitors, slot.next)
	}
	if sh, ok := d.Supply.Harvester.(energy.StatefulHarvester); ok {
		s.Harvester, s.HasHarvester = sh.HarvesterState()
	}
	if len(d.loads) > 0 {
		s.Loads = make(map[string]units.Amps, len(d.loads))
		for _, e := range d.loads {
			s.Loads[e.name] = e.amps
		}
	}
	if len(d.GPIO.lines) > 0 {
		s.GPIO = make(map[string]GPIOLineState, len(d.GPIO.lines))
		for name, l := range d.GPIO.lines {
			s.GPIO[name] = GPIOLineState{Level: l.level, Toggles: l.toggles}
		}
	}
	if len(d.UART.rxq) > 0 {
		s.UARTRx = append([]byte(nil), d.UART.rxq...)
	}
	for _, f := range d.RF.rxq {
		f.Bits = append([]byte(nil), f.Bits...)
		s.RFRx = append(s.RFRx, f)
	}
	return s, nil
}

// Restore applies a snapshot to a structurally identical device. Region
// restores fire each region's WriteHook, so derived caches (the ISA's
// predecoded-instruction cache) invalidate automatically.
func (d *Device) Restore(s *Snapshot) error {
	if err := d.Clock.SetNow(s.Now); err != nil {
		return fmt.Errorf("device: restore: %w", err)
	}
	if len(s.Monitors) != len(d.monitors) {
		return fmt.Errorf("device: restore: snapshot has %d monitors, device has %d",
			len(s.Monitors), len(d.monitors))
	}
	for _, rs := range s.Regions {
		var r *memsim.Region
		for _, cand := range d.Mem.Regions() {
			if cand.Name == rs.Name {
				r = cand
				break
			}
		}
		if r == nil {
			return fmt.Errorf("device: restore: no region named %q", rs.Name)
		}
		if err := r.Restore(rs.Data); err != nil {
			return fmt.Errorf("device: restore: %w", err)
		}
	}
	for i, next := range s.Monitors {
		d.monitors[i].next = next
	}
	d.Supply.RestoreState(s.Supply)
	if s.HasHarvester {
		if sh, ok := d.Supply.Harvester.(energy.StatefulHarvester); ok {
			sh.RestoreHarvesterState(s.Harvester)
		}
	}
	d.RNG.RestoreState(s.RNG)

	d.loads = nil
	d.pendSupply = 0
	for k, v := range s.Loads {
		d.SetLoad(k, v)
	}
	d.recalcLoadSum()
	d.lowPower = s.LowPower
	d.interruptPending = s.InterruptPending
	d.stats = s.Stats
	d.hasDeadline = false

	for name, st := range s.GPIO {
		l := d.GPIO.line(name)
		l.level = st.Level
		l.toggles = st.Toggles
	}
	d.GPIO.version = s.GPIOVersion
	d.UART.rxq = append(d.UART.rxq[:0], s.UARTRx...)
	d.UART.bytesSent = s.UARTSent
	d.RF.rxq = d.RF.rxq[:0]
	for _, f := range s.RFRx {
		f.Bits = append([]byte(nil), f.Bits...)
		d.RF.rxq = append(d.RF.rxq, f)
	}
	return nil
}
