package device

import (
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/units"
)

// RFFrame is a demodulated or to-be-modulated RFID frame on the air
// interface. The rfid package defines the frame contents; the device treats
// them as opaque bytes, exactly as the WISP's demodulator hands raw bit
// patterns to firmware for software decoding (§5.3.4).
type RFFrame struct {
	At sim.Cycles
	// Bits is the raw frame payload.
	Bits []byte
	// Corrupted marks frames damaged in flight; the software decoder on
	// the target will fail to parse them, but EDB's external monitor can
	// still classify them (it decodes "even if the target does not
	// correctly decode them due to power failures").
	Corrupted bool
}

// RFPort models the target's RF front end: a demodulator that queues
// incoming frames and a backscatter modulator for replies. The RX and TX
// data lines are mirrored onto GPIO-like events so EDB can monitor them
// externally.
type RFPort struct {
	d *Device

	// DecodeCyclesPerByte is the software decoding cost: the WISP decodes
	// RFID query commands in software (§5.3.4).
	DecodeCyclesPerByte sim.Cycles
	// ModulateCurrent is the extra load while backscattering a reply.
	ModulateCurrent units.Amps

	rxq []RFFrame

	// OnTransmit is invoked when the target backscatters a frame; the
	// rfid reader hooks it to close the protocol loop.
	OnTransmit func(at sim.Cycles, frame RFFrame)

	rxSubs []func(RFFrame)
	txSubs []func(RFFrame)
}

func newRFPort(d *Device) *RFPort {
	return &RFPort{
		d:                   d,
		DecodeCyclesPerByte: 220,
		ModulateCurrent:     units.MicroAmps(600),
	}
}

// Deliver hands an incoming frame from the air interface to the target and
// notifies RX monitors. Called by the rfid reader model; costs the target
// nothing until firmware decodes it.
func (r *RFPort) Deliver(f RFFrame) {
	f.At = r.d.Clock.Now()
	// The demodulated waveform wiggles the RF RX line regardless of
	// whether firmware is alive to decode it — EDB's external monitor
	// classifies frames the target never sees (§4.1.2).
	for _, fn := range r.rxSubs {
		if fn != nil {
			fn(f)
		}
	}
	// An unpowered demodulator retains nothing: frames arriving while the
	// device is off (charging) are lost to the firmware.
	if r.d.Supply.State() != energy.PowerOn {
		return
	}
	r.rxq = append(r.rxq, f)
	// Bound the queue: the demodulator has no deep buffer; stale frames
	// are lost if firmware never drains them.
	if len(r.rxq) > 8 {
		r.rxq = r.rxq[len(r.rxq)-8:]
	}
}

// SubscribeRx registers an RX-line monitor (EDB). Returns a remove func.
func (r *RFPort) SubscribeRx(fn func(RFFrame)) func() {
	r.rxSubs = append(r.rxSubs, fn)
	idx := len(r.rxSubs) - 1
	return func() { r.rxSubs[idx] = nil }
}

// SubscribeTx registers a TX-line monitor (EDB). Returns a remove func.
func (r *RFPort) SubscribeTx(fn func(RFFrame)) func() {
	r.txSubs = append(r.txSubs, fn)
	idx := len(r.txSubs) - 1
	return func() { r.txSubs[idx] = nil }
}

// Pending returns the number of undecoded frames in the demodulator queue.
func (r *RFPort) Pending() int { return len(r.rxq) }

// Receive pops and software-decodes the oldest queued frame, charging the
// decode cost. The second result is false when the queue is empty. A
// corrupted frame consumes the decode cost but yields ok=false with
// corrupted=true — the firmware burned energy failing to parse it.
func (r *RFPort) Receive(env *Env) (frame RFFrame, ok bool, corrupted bool) {
	if len(r.rxq) == 0 {
		return RFFrame{}, false, false
	}
	f := r.rxq[0]
	r.rxq = r.rxq[1:]
	env.tick(r.DecodeCyclesPerByte * sim.Cycles(len(f.Bits)))
	if f.Corrupted {
		return RFFrame{}, false, true
	}
	return f, true, false
}

// Transmit backscatters a reply frame, charging modulation time and energy,
// then hands it to the reader and TX monitors.
func (r *RFPort) Transmit(env *Env, bits []byte) {
	r.d.SetLoad("rf-tx", r.ModulateCurrent)
	defer r.d.SetLoad("rf-tx", 0)
	// Backscatter at ~40 kbps effective: 8 bits/byte at 25 µs/bit.
	perByte := r.d.Clock.ToCycles(units.Seconds(8 * 25e-6))
	env.tick(perByte * sim.Cycles(len(bits)))
	f := RFFrame{At: r.d.Clock.Now(), Bits: append([]byte(nil), bits...)}
	for _, fn := range r.txSubs {
		if fn != nil {
			fn(f)
		}
	}
	if r.OnTransmit != nil {
		r.OnTransmit(f.At, f)
	}
}

func (r *RFPort) reset() {
	r.rxq = nil
	r.d.SetLoad("rf-tx", 0)
}
