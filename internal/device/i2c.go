package device

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// I2CDevice is a peripheral on the I2C bus (e.g. the accelerometer used by
// the activity-recognition application).
type I2CDevice interface {
	// I2CAddr returns the device's 7-bit address.
	I2CAddr() byte
	// ReadReg returns the value of a register.
	ReadReg(reg byte) byte
	// WriteReg stores a value into a register.
	WriteReg(reg byte, val byte)
}

// I2CTransfer describes one completed bus transaction, for EDB's passive
// I/O monitoring (§4.1.2: "Our prototype can monitor GPIO, UART, I2C...").
type I2CTransfer struct {
	At    sim.Cycles
	Addr  byte
	Reg   byte
	Data  []byte
	Write bool
}

func (t I2CTransfer) String() string {
	dir := "rd"
	if t.Write {
		dir = "wr"
	}
	return fmt.Sprintf("i2c %s addr=%#02x reg=%#02x len=%d", dir, t.Addr, t.Reg, len(t.Data))
}

// I2CBus models the target's I2C master. Transactions cost bus time at the
// configured clock rate and draw peripheral current.
type I2CBus struct {
	d *Device

	// ClockHz is the bus rate (default 400 kHz fast mode).
	ClockHz int
	// BusCurrent is the extra load while a transaction is in flight.
	BusCurrent units.Amps

	devices map[byte]I2CDevice
	subs    []func(I2CTransfer)
}

func newI2CBus(d *Device) *I2CBus {
	return &I2CBus{
		d:          d,
		ClockHz:    400_000,
		BusCurrent: units.MicroAmps(250),
		devices:    make(map[byte]I2CDevice),
	}
}

// Attach connects a peripheral to the bus.
func (b *I2CBus) Attach(dev I2CDevice) { b.devices[dev.I2CAddr()] = dev }

// Subscribe registers a transaction listener (EDB's I2C monitor). It
// returns a remove function.
func (b *I2CBus) Subscribe(fn func(I2CTransfer)) func() {
	b.subs = append(b.subs, fn)
	idx := len(b.subs) - 1
	return func() { b.subs[idx] = nil }
}

// byteCycles returns cycles for one byte + ack (9 bit times).
func (b *I2CBus) byteCycles() sim.Cycles {
	return b.d.Clock.ToCycles(units.Seconds(9.0 / float64(b.ClockHz)))
}

// ReadRegs performs a register read transaction: START, addr+W, reg,
// repeated START, addr+R, n data bytes, STOP.
func (b *I2CBus) ReadRegs(env *Env, addr, reg byte, n int) ([]byte, error) {
	dev, ok := b.devices[addr]
	if !ok {
		return nil, fmt.Errorf("i2c: no device at %#02x", addr)
	}
	b.d.SetLoad("i2c", b.BusCurrent)
	defer b.d.SetLoad("i2c", 0)
	env.tick(b.byteCycles() * sim.Cycles(3+n)) // addr, reg, addr, data...
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = dev.ReadReg(reg + byte(i))
	}
	b.notify(I2CTransfer{At: b.d.Clock.Now(), Addr: addr, Reg: reg, Data: out})
	return out, nil
}

// WriteRegs performs a register write transaction.
func (b *I2CBus) WriteRegs(env *Env, addr, reg byte, data []byte) error {
	dev, ok := b.devices[addr]
	if !ok {
		return fmt.Errorf("i2c: no device at %#02x", addr)
	}
	b.d.SetLoad("i2c", b.BusCurrent)
	defer b.d.SetLoad("i2c", 0)
	env.tick(b.byteCycles() * sim.Cycles(2+len(data)))
	for i, v := range data {
		dev.WriteReg(reg+byte(i), v)
	}
	b.notify(I2CTransfer{At: b.d.Clock.Now(), Addr: addr, Reg: reg, Data: append([]byte(nil), data...), Write: true})
	return nil
}

func (b *I2CBus) notify(t I2CTransfer) {
	for _, fn := range b.subs {
		if fn != nil {
			fn(t)
		}
	}
}

func (b *I2CBus) reset() {
	b.d.SetLoad("i2c", 0)
}
