package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assembler: two-pass, MSP430-style syntax.
//
//	; comment
//	        .org  0x4400
//	        .equ  LED, 0x0132
//	start:  mov   #0, r5
//	loop:   add   #1, r5
//	        mov   r5, &count
//	        cmp   #10, r5
//	        jne   loop
//	        br    #start
//	count:  .word 0
//	buf:    .space 16
//
// Operands: rN/pc/sp/sr/cg registers, #imm immediates (decimal, 0x hex,
// labels, .equ symbols), &addr absolutes (labels allowed), X(rN) indexed,
// @rN and @rN+ indirects. Bare label operands assemble as absolute (&).
// Immediates 0, 1, 2, 4, 8 and -1 use the constant generators, like real
// MSP430 toolchains. Pseudo-instructions: nop, ret, pop, br, clr, inc,
// incd, dec, decd, tst, clrc, setc, clrz, clrn, jz, jnz.
//
// Directives: .org (location counter), .equ (symbol), .word (literal
// words), .space (zeroed bytes), .entry (reset target; defaults to the
// first instruction).

// Image is an assembled program: one contiguous segment.
type Image struct {
	// Org is the load address of Words[0].
	Org uint16
	// Words is the segment contents.
	Words []uint16
	// Entry is the reset-vector target.
	Entry uint16
	// Symbols maps labels and .equ names to values.
	Symbols map[string]uint16
}

// Size returns the segment size in bytes.
func (img *Image) Size() int { return 2 * len(img.Words) }

// Assemble translates source text into an image.
func Assemble(src string) (*Image, error) {
	a := &assembler{
		symbols: make(map[string]uint16),
		// Default load address: FRAM base plus a page reserved for the
		// runtime (libEDB's core-dump area and early allocations).
		org: 0x4500,
	}
	lines := strings.Split(src, "\n")

	// Pass 1: sizes and symbols.
	if err := a.scan(lines, false); err != nil {
		return nil, err
	}
	pass1End := a.loc
	// Pass 2: emit.
	a.loc = a.startLoc
	a.out = a.out[:0]
	if err := a.scan(lines, true); err != nil {
		return nil, err
	}
	if a.loc != pass1End {
		// Defensive: a symbol resolved to a different encoding size
		// between passes (e.g. a .equ used before its definition whose
		// value hits a constant generator). Define .equ before use.
		return nil, fmt.Errorf("isa: pass size mismatch (%#x vs %#x); define .equ symbols before use",
			a.loc, pass1End)
	}

	img := &Image{Org: a.startLoc, Words: a.out, Symbols: a.symbols}
	if a.entrySym != "" {
		v, ok := a.symbols[a.entrySym]
		if !ok {
			return nil, fmt.Errorf("isa: .entry symbol %q undefined", a.entrySym)
		}
		img.Entry = v
	} else if a.firstInst != 0 {
		img.Entry = a.firstInst
	} else {
		img.Entry = img.Org
	}
	return img, nil
}

type assembler struct {
	symbols   map[string]uint16
	loc       uint16 // location counter
	startLoc  uint16
	org       uint16
	out       []uint16
	entrySym  string
	firstInst uint16
	emitting  bool
}

func (a *assembler) scan(lines []string, emit bool) error {
	a.emitting = emit
	if !emit {
		a.startLoc = a.org
		a.loc = a.org
	}
	started := false
	for ln, raw := range lines {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Labels: one or more "name:" prefixes.
		rest := line
		for {
			trimmed := strings.TrimSpace(rest)
			idx := strings.Index(trimmed, ":")
			if idx <= 0 || strings.ContainsAny(trimmed[:idx], " \t#&@(,") {
				rest = trimmed
				break
			}
			name := trimmed[:idx]
			if !emit {
				if _, dup := a.symbols[name]; dup {
					return fmt.Errorf("isa: line %d: duplicate label %q", ln+1, name)
				}
				a.symbols[name] = a.loc
			}
			rest = trimmed[idx+1:]
		}
		if rest == "" {
			continue
		}
		fields := splitOperands(rest)
		mnem := strings.ToLower(fields[0])
		args := fields[1:]

		switch {
		case mnem == ".org":
			v, err := a.value(args[0], ln)
			if err != nil {
				return err
			}
			if !emit && !started {
				a.startLoc = v
			}
			if started && v != a.loc {
				return fmt.Errorf("isa: line %d: non-contiguous .org unsupported", ln+1)
			}
			a.loc = v
			if !started {
				a.startLoc = v
			}
			started = true
			continue
		case mnem == ".equ":
			if len(args) != 2 {
				return fmt.Errorf("isa: line %d: .equ NAME, VALUE", ln+1)
			}
			if !emit {
				v, err := a.value(args[1], ln)
				if err != nil {
					return err
				}
				a.symbols[args[0]] = v
			}
			continue
		case mnem == ".entry":
			a.entrySym = args[0]
			continue
		case mnem == ".word":
			started = true
			for _, arg := range args {
				v := uint16(0)
				if emit {
					var err error
					if v, err = a.value(arg, ln); err != nil {
						return err
					}
				}
				a.emit(v)
			}
			continue
		case mnem == ".byte":
			started = true
			var pending []byte
			for _, arg := range args {
				v := uint16(0)
				if emit {
					var err error
					if v, err = a.value(arg, ln); err != nil {
						return err
					}
				}
				pending = append(pending, byte(v))
			}
			emitBytes(a, pending)
			continue
		case mnem == ".ascii":
			started = true
			lit, err := parseStringLiteral(strings.TrimSpace(strings.TrimPrefix(rest, fields[0])))
			if err != nil {
				return fmt.Errorf("isa: line %d: %v", ln+1, err)
			}
			emitBytes(a, []byte(lit))
			continue
		case mnem == ".space":
			started = true
			n, err := a.value(args[0], ln)
			if err != nil {
				return err
			}
			for i := 0; i < int(n+1)/2; i++ {
				a.emit(0)
			}
			continue
		}

		started = true
		if !emit && a.firstInst == 0 {
			a.firstInst = a.loc
		}
		insts, err := a.instruction(mnem, args, ln)
		if err != nil {
			return err
		}
		for _, inst := range insts {
			words, err := Encode(inst)
			if err != nil {
				return fmt.Errorf("isa: line %d: %w", ln+1, err)
			}
			for _, w := range words {
				a.emit(w)
			}
		}
	}
	return nil
}

// emitBytes packs bytes into little-endian words, zero-padding odd tails.
func emitBytes(a *assembler, data []byte) {
	for i := 0; i < len(data); i += 2 {
		w := uint16(data[i])
		if i+1 < len(data) {
			w |= uint16(data[i+1]) << 8
		}
		a.emit(w)
	}
}

// parseStringLiteral accepts a double-quoted string with \n, \t, \\, \"
// escapes.
func parseStringLiteral(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf(".ascii wants a double-quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] != '\\' {
			b.WriteByte(body[i])
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

func (a *assembler) emit(w uint16) {
	if a.emitting {
		a.out = append(a.out, w)
	}
	a.loc += 2
}

// instruction translates one mnemonic + operands into instructions
// (pseudo-ops may expand).
func (a *assembler) instruction(mnem string, args []string, ln int) ([]Inst, error) {
	byteOp := false
	if strings.HasSuffix(mnem, ".b") {
		byteOp = true
		mnem = strings.TrimSuffix(mnem, ".b")
	}

	// Pseudo-instructions.
	switch mnem {
	case "nop":
		return a.instruction("mov", []string{"r3", "r3"}, ln)
	case "ret":
		return a.instruction("mov", []string{"@sp+", "pc"}, ln)
	case "pop":
		return a.instruction("mov", append([]string{"@sp+"}, args...), ln)
	case "br":
		return a.instruction("mov", append(args, "pc"), ln)
	case "clr":
		return a.instruction("mov", append([]string{"#0"}, args...), ln)
	case "inc":
		return a.instruction("add", append([]string{"#1"}, args...), ln)
	case "incd":
		return a.instruction("add", append([]string{"#2"}, args...), ln)
	case "dec":
		return a.instruction("sub", append([]string{"#1"}, args...), ln)
	case "decd":
		return a.instruction("sub", append([]string{"#2"}, args...), ln)
	case "tst":
		return a.instruction("cmp", append([]string{"#0"}, args...), ln)
	case "clrc":
		return a.instruction("bic", []string{"#1", "sr"}, ln)
	case "setc":
		return a.instruction("bis", []string{"#1", "sr"}, ln)
	case "clrz":
		return a.instruction("bic", []string{"#2", "sr"}, ln)
	case "clrn":
		return a.instruction("bic", []string{"#4", "sr"}, ln)
	case "jz":
		mnem = "jeq"
	case "jnz":
		mnem = "jne"
	}

	if op, ok := jumpOps[mnem]; ok {
		if len(args) != 1 {
			return nil, fmt.Errorf("isa: line %d: %s takes one target", ln+1, mnem)
		}
		target := a.loc + 2 // placeholder until resolved
		if a.emitting {
			v, err := a.value(args[0], ln)
			if err != nil {
				return nil, err
			}
			target = v
		}
		off := (int32(target) - int32(a.loc) - 2) / 2
		return []Inst{{Kind: KindJump, Op: op, Offset: int16(off)}}, nil
	}

	if op, ok := oneOps[mnem]; ok {
		if mnem == "reti" {
			return []Inst{{Kind: KindOne, Op: Op2RETI}}, nil
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("isa: line %d: %s takes one operand", ln+1, mnem)
		}
		src, err := a.operand(args[0], ln)
		if err != nil {
			return nil, err
		}
		return []Inst{{Kind: KindOne, Op: op, Byte: byteOp, Src: src}}, nil
	}

	if op, ok := twoOps[mnem]; ok {
		if len(args) != 2 {
			return nil, fmt.Errorf("isa: line %d: %s takes two operands", ln+1, mnem)
		}
		src, err := a.operand(args[0], ln)
		if err != nil {
			return nil, err
		}
		dst, err := a.operand(args[1], ln)
		if err != nil {
			return nil, err
		}
		if dst.Mode != ModeRegister && dst.Mode != ModeIndexed {
			return nil, fmt.Errorf("isa: line %d: destination %q must be register, indexed, or absolute", ln+1, args[1])
		}
		return []Inst{{Kind: KindTwo, Op: op, Byte: byteOp, Src: src, Dst: dst}}, nil
	}

	return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", ln+1, mnem)
}

var twoOps = map[string]int{
	"mov": OpMOV, "add": OpADD, "addc": OpADDC, "subc": OpSUBC, "sub": OpSUB,
	"cmp": OpCMP, "dadd": OpDADD, "bit": OpBIT, "bic": OpBIC, "bis": OpBIS,
	"xor": OpXOR, "and": OpAND,
}

var oneOps = map[string]int{
	"rrc": Op2RRC, "swpb": Op2SWPB, "rra": Op2RRA, "sxt": Op2SXT,
	"push": Op2PUSH, "call": Op2CALL, "reti": Op2RETI,
}

var jumpOps = map[string]int{
	"jne": JNE, "jeq": JEQ, "jnc": JNC, "jc": JC,
	"jn": JN, "jge": JGE, "jl": JL, "jmp": JMP,
}

// operand parses one operand string.
func (a *assembler) operand(s string, ln int) (Operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Operand{}, fmt.Errorf("isa: line %d: empty operand", ln+1)
	case strings.HasPrefix(s, "#"):
		v := uint16(0)
		if a.emitting {
			var err error
			if v, err = a.value(s[1:], ln); err != nil {
				return Operand{}, err
			}
		} else if lit, err := a.value(s[1:], ln); err == nil {
			v = lit // constants known in pass 1 keep sizes consistent
		} else {
			// Unknown label in pass 1: assume it needs an extension word.
			// Constant-generator values are always literal, so this is
			// safe: labels are addresses, never CG constants.
			return Operand{Mode: ModeIndirectInc, Reg: PC, HasX: true}, nil
		}
		if op, ok := constGenOperand(v); ok {
			return op, nil
		}
		return Operand{Mode: ModeIndirectInc, Reg: PC, X: v, HasX: true}, nil
	case strings.HasPrefix(s, "&"):
		v := uint16(0)
		if a.emitting {
			var err error
			if v, err = a.value(s[1:], ln); err != nil {
				return Operand{}, err
			}
		}
		return Operand{Mode: ModeIndexed, Reg: SR, X: v, HasX: true}, nil
	case strings.HasPrefix(s, "@"):
		inc := strings.HasSuffix(s, "+")
		name := strings.TrimSuffix(s[1:], "+")
		r, ok := regByName(name)
		if !ok {
			return Operand{}, fmt.Errorf("isa: line %d: bad register %q", ln+1, name)
		}
		mode := ModeIndirect
		if inc {
			mode = ModeIndirectInc
		}
		return Operand{Mode: mode, Reg: r}, nil
	case strings.HasSuffix(s, ")") && strings.Contains(s, "("):
		open := strings.Index(s, "(")
		r, ok := regByName(s[open+1 : len(s)-1])
		if !ok {
			return Operand{}, fmt.Errorf("isa: line %d: bad register in %q", ln+1, s)
		}
		v := uint16(0)
		if a.emitting {
			var err error
			if v, err = a.value(s[:open], ln); err != nil {
				return Operand{}, err
			}
		}
		return Operand{Mode: ModeIndexed, Reg: r, X: v, HasX: true}, nil
	default:
		if r, ok := regByName(s); ok {
			return Operand{Mode: ModeRegister, Reg: r}, nil
		}
		// Bare label: absolute reference.
		v := uint16(0)
		if a.emitting {
			var err error
			if v, err = a.value(s, ln); err != nil {
				return Operand{}, err
			}
		}
		return Operand{Mode: ModeIndexed, Reg: SR, X: v, HasX: true}, nil
	}
}

// constGenOperand maps a literal to its constant-generator encoding.
func constGenOperand(v uint16) (Operand, bool) {
	switch v {
	case 0:
		return Operand{Mode: ModeRegister, Reg: CG}, true
	case 1:
		return Operand{Mode: ModeIndexed, Reg: CG}, true
	case 2:
		return Operand{Mode: ModeIndirect, Reg: CG}, true
	case 4:
		return Operand{Mode: ModeIndirect, Reg: SR}, true
	case 8:
		return Operand{Mode: ModeIndirectInc, Reg: SR}, true
	case 0xFFFF:
		return Operand{Mode: ModeIndirectInc, Reg: CG}, true
	}
	return Operand{}, false
}

func regByName(s string) (int, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "pc", "r0":
		return PC, true
	case "sp", "r1":
		return SP, true
	case "sr", "r2":
		return SR, true
	case "cg", "r3":
		return CG, true
	}
	s = strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 4 && n <= 15 {
			return n, true
		}
	}
	return 0, false
}

// value evaluates a literal or symbol, with negation.
func (a *assembler) value(s string, ln int) (uint16, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 17)
	case s != "" && s[0] >= '0' && s[0] <= '9':
		v, err = strconv.ParseUint(s, 10, 17)
	default:
		sym, ok := a.symbols[s]
		if !ok {
			return 0, fmt.Errorf("isa: line %d: undefined symbol %q", ln+1, s)
		}
		v = uint64(sym)
	}
	if err != nil {
		return 0, fmt.Errorf("isa: line %d: bad value %q: %v", ln+1, s, err)
	}
	out := uint16(v)
	if neg {
		out = -out
	}
	return out, nil
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, ';'); i >= 0 {
		return s[:i]
	}
	return s
}

// splitOperands splits "mnem a, b" into ["mnem", "a", "b"], respecting
// parentheses like "2(r5)".
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	sp := strings.IndexAny(s, " \t")
	if sp < 0 {
		return []string{s}
	}
	out := []string{s[:sp]}
	for _, part := range strings.Split(s[sp+1:], ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// SymbolTable renders the symbol map sorted by address (listing output).
func (img *Image) SymbolTable() string {
	type entry struct {
		name string
		val  uint16
	}
	var list []entry
	for n, v := range img.Symbols {
		list = append(list, entry{n, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].val != list[j].val {
			return list[i].val < list[j].val
		}
		return list[i].name < list[j].name
	})
	var b strings.Builder
	for _, e := range list {
		fmt.Fprintf(&b, "%#04x %s\n", e.val, e.name)
	}
	return b.String()
}
