package isa

import (
	"fmt"
	"strings"
)

// DisasmLine is one decoded instruction with its address and raw words.
type DisasmLine struct {
	Addr  uint16
	Words []uint16
	Text  string
	// Bad marks words that did not decode (data, or corrupted code).
	Bad bool
}

func (l DisasmLine) String() string {
	raw := make([]string, len(l.Words))
	for i, w := range l.Words {
		raw[i] = fmt.Sprintf("%04x", w)
	}
	return fmt.Sprintf("%04x: %-14s %s", l.Addr, strings.Join(raw, " "), l.Text)
}

// Disassemble decodes up to maxInsts instructions from words loaded at
// base. Undecodable words become ".word 0x…" lines, so a listing over
// corrupted code degrades readably instead of failing — exactly what a
// debugger wants when inspecting a wedged target.
func Disassemble(words []uint16, base uint16, maxInsts int) []DisasmLine {
	var out []DisasmLine
	i := 0
	for i < len(words) && len(out) < maxInsts {
		start := i
		w0 := words[i]
		i++
		inst, err := Decode(w0, func() (uint16, error) {
			if i >= len(words) {
				return 0, fmt.Errorf("isa: truncated instruction")
			}
			w := words[i]
			i++
			return w, nil
		})
		addr := base + uint16(2*start)
		if err != nil {
			out = append(out, DisasmLine{
				Addr:  addr,
				Words: []uint16{w0},
				Text:  fmt.Sprintf(".word %#04x", w0),
				Bad:   true,
			})
			i = start + 1
			continue
		}
		out = append(out, DisasmLine{
			Addr:  addr,
			Words: append([]uint16(nil), words[start:i]...),
			Text:  inst.String(),
		})
	}
	return out
}

// Listing renders a disassembly as text.
func Listing(lines []DisasmLine) string {
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	return b.String()
}
