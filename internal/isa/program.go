package isa

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/libedb"
	"repro/internal/memsim"
	"repro/internal/sim"
)

// The debug port: a block of memory-mapped registers through which ISA
// firmware reaches libEDB and simple board facilities. Real intermittent
// platforms expose debug facilities exactly this way (an MMIO block the
// target-side library writes). Addresses sit in the otherwise-unmapped
// low page, where the MSP430 keeps its SFRs.
const (
	// PortWatchpoint: write id (1..3) to signal a code-marker watchpoint.
	PortWatchpoint memsim.Addr = 0x0120
	// PortAssertFail: write an assert id to report that assertion FAILED.
	PortAssertFail memsim.Addr = 0x0122
	// PortPrintChar: write a byte; '\n' flushes the line through EDB's
	// energy-interference-free printf.
	PortPrintChar memsim.Addr = 0x0124
	// PortGuard: write 1 to open an energy guard, 0 to close it.
	PortGuard memsim.Addr = 0x0126
	// PortAppPin: write 0/1 to drive the application progress pin; writes
	// with bit 1 set toggle it.
	PortAppPin memsim.Addr = 0x0128
	// PortLED: write 0/1 to drive the LED (a real 4+ mA load).
	PortLED memsim.Addr = 0x012A
	// PortHalt: any write stops the program (normal completion).
	PortHalt memsim.Addr = 0x012C
	// PortSleep: write n to enter low-power mode for n*64 cycles.
	PortSleep memsim.Addr = 0x012E
	// PortRand: reads a pseudo-random word (board TRNG).
	PortRand memsim.Addr = 0x0130
	// PortBreak: write an id to trap into an interactive EDB session (a
	// code breakpoint that is always enabled). Assembly ISRs handling
	// EDB's interrupt wire use it to hand control to the console.
	PortBreak memsim.Addr = 0x0132
)

// IVTEntry is where the program wrapper keeps the interrupt vector: ISA
// programs that define a symbol named "isr" get EDB's interrupt wire
// vectored to it.
const isrSymbol = "isr"

// Program wraps an assembled image as a device.Program: flash writes the
// machine code into simulated FRAM; Main resets the CPU (volatile register
// file!) and steps it until power fails, the image halts, or the deadline
// unwinds it. Rebooting re-enters Main, which resets the CPU at the entry
// vector — non-volatile memory, including the program and its .word data,
// survives.
type Program struct {
	// Source is the assembly text (assembled at Flash).
	Source string
	// ProgName labels the program.
	ProgName string

	img *Image
	cpu *CPU
	lib *libedb.Lib

	printBuf strings.Builder
	stackTop uint16
}

// NewProgram wraps assembly source.
func NewProgram(name, source string) *Program {
	return &Program{ProgName: name, Source: source}
}

// Name implements device.Program.
func (p *Program) Name() string { return p.ProgName }

// Image returns the assembled image (after Flash).
func (p *Program) Image() *Image { return p.img }

// CPU exposes the interpreter (tests inspect registers).
func (p *Program) CPU() *CPU { return p.cpu }

// Flash implements device.Program: assemble, burn into FRAM, wire ports.
func (p *Program) Flash(d *device.Device) error {
	img, err := Assemble(p.Source)
	if err != nil {
		return err
	}
	p.img = img

	lib, err := libedb.Init(d)
	if err != nil {
		return err
	}
	p.lib = lib

	// Burn the image: machine code lives in simulated non-volatile
	// memory, fetched through the same metered paths as data. Reserve
	// the region in the allocator when it overlaps the bump area.
	for i, w := range img.Words {
		addr := memsim.Addr(img.Org) + memsim.Addr(2*i)
		if err := d.Mem.WriteWord(addr, w); err != nil {
			return fmt.Errorf("isa: flashing %#04x: %w", addr, err)
		}
	}
	// Keep the allocator clear of the image (grab FRAM up to its end).
	if end := int(img.Org) + img.Size() - int(memsim.FRAMBase); end > d.FRAM.InUse() {
		if _, err := d.FRAM.Alloc(end - d.FRAM.InUse()); err != nil {
			return fmt.Errorf("isa: reserving image region: %w", err)
		}
	}

	p.stackTop = uint16(memsim.SRAMBase) + uint16(memsim.SRAMSize) // grows down
	p.cpu = NewCPU()
	p.cpu.EnableDecodeCache(d.FRAM, img.Org, img.Size())
	p.mapPorts(d)

	// Interrupts: EDB's wire vectors to the "isr" symbol if defined.
	if vec, ok := img.Symbols[isrSymbol]; ok {
		d.SetISR(func(env *device.Env) {
			p.cpu.Interrupt(env, vec)
			for p.cpu.InInterrupt() && !p.cpu.halted {
				if err := p.cpu.Step(env); err != nil {
					panic(&device.Halted{At: env.Now(), Reason: err.Error()})
				}
			}
		})
	}
	return nil
}

// mapPorts wires the debug port block.
func (p *Program) mapPorts(d *device.Device) {
	c := p.cpu
	c.MapPort(PortWatchpoint, Port{Write: func(env *device.Env, v uint16) {
		p.lib.Watchpoint(env, int(v))
	}})
	c.MapPort(PortAssertFail, Port{Write: func(env *device.Env, v uint16) {
		p.lib.Assert(env, int(v), false)
	}})
	c.MapPort(PortPrintChar, Port{Write: func(env *device.Env, v uint16) {
		if byte(v) == '\n' {
			p.lib.Printf(env, "%s", p.printBuf.String())
			p.printBuf.Reset()
			return
		}
		p.printBuf.WriteByte(byte(v))
	}})
	c.MapPort(PortGuard, Port{Write: func(env *device.Env, v uint16) {
		if v != 0 {
			p.lib.GuardBegin(env)
		} else {
			p.lib.GuardEnd(env)
		}
	}})
	c.MapPort(PortAppPin, Port{Write: func(env *device.Env, v uint16) {
		if v&2 != 0 {
			env.TogglePin(device.LineAppPin)
			return
		}
		env.SetPin(device.LineAppPin, v&1 != 0)
	}})
	c.MapPort(PortLED, Port{Write: func(env *device.Env, v uint16) {
		env.SetPin(device.LineLED, v&1 != 0)
	}})
	c.MapPort(PortHalt, Port{Write: func(env *device.Env, v uint16) {
		c.halted = true
	}})
	c.MapPort(PortSleep, Port{Write: func(env *device.Env, v uint16) {
		env.Sleep(sim.Cycles(v) * 64)
	}})
	c.MapPort(PortRand, Port{Read: func(env *device.Env) uint16 {
		return d.RNG.Uint16()
	}})
	c.MapPort(PortBreak, Port{Write: func(env *device.Env, v uint16) {
		dbg := d.Debugger()
		if dbg == nil {
			return
		}
		env.SetPin(device.LineDebugSignal, true)
		if dbg.DebugRequest(env, device.ReqBreakpoint, v) {
			dbg.EnterInteractive(env, fmt.Sprintf("isa breakpoint %d", v))
			dbg.DebugDone(env)
		}
		env.SetPin(device.LineDebugSignal, false)
	}})
}

// Main implements device.Program.
func (p *Program) Main(env *device.Env) {
	// Power-on reset: fresh register file, PC at the entry vector. The
	// volatile stack in SRAM was cleared by the reboot.
	p.ResetCPU()
	for !p.cpu.halted {
		if err := p.cpu.RunChain(env); err != nil {
			// Executing garbage (corrupted code or wild PC): the MCU
			// wedges like any other fault.
			panic(&device.MemoryFault{At: env.Now(), Fault: &memsim.Fault{Addr: memsim.Addr(p.cpu.R[PC])}})
		}
	}
}

// ResetCPU performs the power-on reset Main starts with: fresh register
// file, PC at the entry vector, stack at the top of SRAM. Time-sliced
// executors (internal/fleet) call it once per reboot and then drive the CPU
// through StepUntil instead of a single Main call.
func (p *Program) ResetCPU() {
	p.cpu.Reset(p.img.Entry, p.stackTop)
}

// StepUntil advances the program until it halts (returns true) or simulated
// time reaches limit (returns false, with the program ready to continue from
// the same state in a later slice). The env call sequence is identical to
// Main's — the limit is only checked between instruction chains, never
// mid-instruction, so a run split across any slice boundaries matches an
// unsliced run cycle for cycle.
func (p *Program) StepUntil(env *device.Env, limit sim.Cycles) bool {
	for !p.cpu.halted {
		if env.Now() >= limit {
			return false
		}
		if err := p.cpu.RunChain(env); err != nil {
			panic(&device.MemoryFault{At: env.Now(), Fault: &memsim.Fault{Addr: memsim.Addr(p.cpu.R[PC])}})
		}
	}
	return true
}
