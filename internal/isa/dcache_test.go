package isa

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/sim"
)

func TestDecodeCacheInvalidationOnCodeWrite(t *testing.T) {
	d, env, c := cpuRig(t)
	img, err := Assemble(".org 0x4500\nmain: mov #0x1111, r5\nhang: jmp hang\n")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range img.Words {
		if err := d.Mem.WriteWord(memsim.Addr(img.Org)+memsim.Addr(2*i), w); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableDecodeCache(d.FRAM, img.Org, img.Size())
	stackTop := uint16(memsim.SRAMBase) + uint16(memsim.SRAMSize)

	c.Reset(img.Entry, stackTop)
	if err := c.Step(env); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 0x1111 {
		t.Fatalf("r5 = %#x", c.R[5])
	}

	// Overwrite the immediate extension word, as a wild store into code
	// would. The cached decode of the mov must be invalidated.
	if err := d.Mem.WriteWord(memsim.Addr(img.Org)+2, 0x2222); err != nil {
		t.Fatal(err)
	}
	c.Reset(img.Entry, stackTop)
	if err := c.Step(env); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 0x2222 {
		t.Fatalf("r5 = %#x after code write: stale decode cache", c.R[5])
	}

	// Overwrite the opcode word itself: retarget the mov from r5 to r6.
	img2, err := Assemble(".org 0x4500\nmain: mov #0x2222, r6\nhang: jmp hang\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Mem.WriteWord(memsim.Addr(img.Org), img2.Words[0]); err != nil {
		t.Fatal(err)
	}
	c.Reset(img.Entry, stackTop)
	c.R[5] = 0
	if err := c.Step(env); err != nil {
		t.Fatal(err)
	}
	if c.R[6] != 0x2222 || c.R[5] != 0 {
		t.Fatalf("r5 = %#x, r6 = %#x after opcode write: stale decode cache", c.R[5], c.R[6])
	}
}

// TestDecodeCacheTimingEquivalence checks the cached fast path is
// cycle-for-cycle and access-for-access identical to fetch-and-decode,
// across addressing modes including symbolic (PC-relative) operands.
func TestDecodeCacheTimingEquivalence(t *testing.T) {
	src := `.org 0x4500
main:	mov #0, r5
	mov #data, r8
loop:	add #1, r5
	mov r5, &0x1C20
	add &0x1C20, r7
	mov data, r6
	mov r6, data2
	add @r8, r7
	cmp #200, r5
	jne loop
hang:	jmp hang
data:	.word 0x1234
data2:	.word 0
`
	type snap struct {
		now       sim.Cycles
		reads     uint64
		retired   uint64
		regs      [16]uint16
		voltage   float64
		dataWords [2]uint16
	}
	exec := func(cache bool) snap {
		d, env, c := cpuRig(t)
		img, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range img.Words {
			if err := d.Mem.WriteWord(memsim.Addr(img.Org)+memsim.Addr(2*i), w); err != nil {
				t.Fatal(err)
			}
		}
		if cache {
			c.EnableDecodeCache(d.FRAM, img.Org, img.Size())
		}
		c.Reset(img.Entry, uint16(memsim.SRAMBase)+uint16(memsim.SRAMSize))
		base := d.FRAM.Reads
		for i := 0; i < 1500; i++ {
			if err := c.Step(env); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		var s snap
		s.now = d.Clock.Now()
		s.reads = d.FRAM.Reads - base
		s.retired = c.Retired()
		s.regs = c.R
		s.voltage = float64(d.Supply.Voltage())
		for i, sym := range []string{"data", "data2"} {
			a, ok := img.Symbols[sym]
			if !ok {
				t.Fatalf("symbol %s missing", sym)
			}
			v, err := d.Mem.ReadWord(memsim.Addr(a))
			if err != nil {
				t.Fatal(err)
			}
			s.dataWords[i] = v
		}
		return s
	}
	plain := exec(false)
	cached := exec(true)
	if plain != cached {
		t.Fatalf("cached execution diverged:\nplain:  %+v\ncached: %+v", plain, cached)
	}
}
