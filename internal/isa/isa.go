// Package isa implements an MSP430-subset instruction set — the
// architecture of the WISP 5's MCU — as a two-pass assembler and a CPU
// interpreter that executes real machine words out of the target's
// simulated FRAM.
//
// Why an ISA layer exists in this reproduction: the rest of the repository
// writes firmware as Go code against the device API, which is convenient
// and energy-faithful; this package closes the remaining realism gap.
// Programs assembled here are flashed as bytes into simulated non-volatile
// memory and fetched word by word through the same energy-metered paths as
// data — so instruction fetch costs energy, a brown-out can land between
// any two instructions (or mid-instruction operand fetch), volatile
// registers vanish at reboot, and a wild store can corrupt *code*. The
// debugger sees ISA programs exactly as it sees Go firmware, through a
// memory-mapped debug port wired to libEDB (see program.go).
//
// Implemented: the complete Format I (double-operand) group except DADD,
// the Format II (single-operand) group, all eight jumps, every addressing
// mode including the constant generators, byte and word forms, and
// RETI-based interrupt return. Encodings are the real MSP430 ones, so the
// assembler's output is genuine MSP430 machine code for the implemented
// subset.
package isa

import "fmt"

// Register names. R0-R3 have architectural roles.
const (
	PC = 0 // program counter
	SP = 1 // stack pointer
	SR = 2 // status register / constant generator 1
	CG = 3 // constant generator 2
)

// Status register flags.
const (
	FlagC uint16 = 1 << 0 // carry
	FlagZ uint16 = 1 << 1 // zero
	FlagN uint16 = 1 << 2 // negative
	GIE   uint16 = 1 << 3 // general interrupt enable
	FlagV uint16 = 1 << 8 // overflow
)

// Format I (double-operand) opcodes, in their [15:12] encoding positions.
const (
	OpMOV  = 0x4
	OpADD  = 0x5
	OpADDC = 0x6
	OpSUBC = 0x7
	OpSUB  = 0x8
	OpCMP  = 0x9
	OpDADD = 0xA // recognized, unimplemented (decimal adjust)
	OpBIT  = 0xB
	OpBIC  = 0xC
	OpBIS  = 0xD
	OpXOR  = 0xE
	OpAND  = 0xF
)

// Format II (single-operand) opcodes, in their [9:7] positions under the
// 000100 prefix.
const (
	Op2RRC  = 0x0
	Op2SWPB = 0x1
	Op2RRA  = 0x2
	Op2SXT  = 0x3
	Op2PUSH = 0x4
	Op2CALL = 0x5
	Op2RETI = 0x6
)

// Jump conditions, in their [12:10] positions under the 001 prefix.
const (
	JNE = 0x0
	JEQ = 0x1
	JNC = 0x2
	JC  = 0x3
	JN  = 0x4
	JGE = 0x5
	JL  = 0x6
	JMP = 0x7
)

// AddrMode is a source/destination addressing mode (the As/Ad fields).
type AddrMode int

const (
	// ModeRegister: Rn.
	ModeRegister AddrMode = 0
	// ModeIndexed: x(Rn); with Rn=PC it is symbolic, with Rn=SR absolute.
	ModeIndexed AddrMode = 1
	// ModeIndirect: @Rn.
	ModeIndirect AddrMode = 2
	// ModeIndirectInc: @Rn+; with Rn=PC it is immediate.
	ModeIndirectInc AddrMode = 3
)

// Operand is a decoded operand: mode + register + optional extension word.
type Operand struct {
	Mode AddrMode
	Reg  int
	// X is the extension word (index, absolute address, or immediate).
	X uint16
	// HasX reports whether the operand consumes an extension word.
	HasX bool
}

func (o Operand) String() string {
	switch o.Mode {
	case ModeRegister:
		return regName(o.Reg)
	case ModeIndexed:
		if o.Reg == PC {
			return fmt.Sprintf("%#x(sym)", o.X)
		}
		if o.Reg == SR {
			return fmt.Sprintf("&%#x", o.X)
		}
		return fmt.Sprintf("%d(%s)", int16(o.X), regName(o.Reg))
	case ModeIndirect:
		return "@" + regName(o.Reg)
	case ModeIndirectInc:
		if o.Reg == PC {
			return fmt.Sprintf("#%#x", o.X)
		}
		return "@" + regName(o.Reg) + "+"
	}
	return "?"
}

func regName(r int) string {
	switch r {
	case PC:
		return "pc"
	case SP:
		return "sp"
	case SR:
		return "sr"
	case CG:
		return "cg"
	}
	return fmt.Sprintf("r%d", r)
}

// Inst is a decoded instruction.
type Inst struct {
	// Kind discriminates the three formats.
	Kind InstKind
	// Op is the opcode within its format.
	Op int
	// Byte is true for .B (byte) operations.
	Byte bool
	// Src and Dst are the operands (Dst only for Format I; Src only for
	// Format II).
	Src, Dst Operand
	// Offset is the jump offset in words (Kind == KindJump).
	Offset int16
	// Words is the encoded length in words (1-3).
	Words int
}

// InstKind is the instruction format.
type InstKind int

const (
	// KindTwo is Format I (double operand).
	KindTwo InstKind = iota
	// KindOne is Format II (single operand).
	KindOne
	// KindJump is the jump format.
	KindJump
)

var twoOpNames = map[int]string{
	OpMOV: "mov", OpADD: "add", OpADDC: "addc", OpSUBC: "subc", OpSUB: "sub",
	OpCMP: "cmp", OpDADD: "dadd", OpBIT: "bit", OpBIC: "bic", OpBIS: "bis",
	OpXOR: "xor", OpAND: "and",
}

var oneOpNames = map[int]string{
	Op2RRC: "rrc", Op2SWPB: "swpb", Op2RRA: "rra", Op2SXT: "sxt",
	Op2PUSH: "push", Op2CALL: "call", Op2RETI: "reti",
}

var jumpNames = map[int]string{
	JNE: "jne", JEQ: "jeq", JNC: "jnc", JC: "jc",
	JN: "jn", JGE: "jge", JL: "jl", JMP: "jmp",
}

func (i Inst) String() string {
	suffix := ""
	if i.Byte {
		suffix = ".b"
	}
	switch i.Kind {
	case KindTwo:
		return fmt.Sprintf("%s%s %s, %s", twoOpNames[i.Op], suffix, i.Src, i.Dst)
	case KindOne:
		if i.Op == Op2RETI {
			return "reti"
		}
		return fmt.Sprintf("%s%s %s", oneOpNames[i.Op], suffix, i.Src)
	case KindJump:
		return fmt.Sprintf("%s %+d", jumpNames[i.Op], i.Offset)
	}
	return "?"
}

// Encode produces the machine words for an instruction (1-3 words).
func Encode(i Inst) ([]uint16, error) {
	switch i.Kind {
	case KindTwo:
		if i.Op < OpMOV || i.Op > OpAND {
			return nil, fmt.Errorf("isa: bad two-op opcode %#x", i.Op)
		}
		w := uint16(i.Op)<<12 |
			uint16(i.Src.Reg)<<8 |
			uint16(i.Dst.Mode&1)<<7 |
			boolBit(i.Byte)<<6 |
			uint16(i.Src.Mode)<<4 |
			uint16(i.Dst.Reg)
		out := []uint16{w}
		if i.Src.HasX {
			out = append(out, i.Src.X)
		}
		if i.Dst.HasX {
			out = append(out, i.Dst.X)
		}
		return out, nil
	case KindOne:
		if i.Op < Op2RRC || i.Op > Op2RETI {
			return nil, fmt.Errorf("isa: bad one-op opcode %#x", i.Op)
		}
		w := uint16(0x1000) |
			uint16(i.Op)<<7 |
			boolBit(i.Byte)<<6 |
			uint16(i.Src.Mode)<<4 |
			uint16(i.Src.Reg)
		out := []uint16{w}
		if i.Src.HasX {
			out = append(out, i.Src.X)
		}
		return out, nil
	case KindJump:
		if i.Offset < -512 || i.Offset > 511 {
			return nil, fmt.Errorf("isa: jump offset %d out of range", i.Offset)
		}
		w := uint16(0x2000) | uint16(i.Op)<<10 | uint16(i.Offset)&0x3FF
		return []uint16{w}, nil
	}
	return nil, fmt.Errorf("isa: bad instruction kind %d", i.Kind)
}

func boolBit(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// Decode parses one instruction starting at word w0, pulling extension
// words through next (called in operand order). It mirrors Encode.
func Decode(w0 uint16, next func() (uint16, error)) (Inst, error) {
	switch {
	case w0>>13 == 0x1: // 001x... jump
		off := int16(w0 & 0x3FF)
		if off&0x200 != 0 {
			off |= ^int16(0x3FF) // sign-extend 10 bits
		}
		return Inst{Kind: KindJump, Op: int(w0 >> 10 & 0x7), Offset: off, Words: 1}, nil
	case w0>>10 == 0x4: // 000100... single operand
		op := int(w0 >> 7 & 0x7)
		if op == 0x7 {
			return Inst{}, fmt.Errorf("isa: reserved format-II opcode in %#04x", w0)
		}
		i := Inst{
			Kind: KindOne,
			Op:   op,
			Byte: w0>>6&1 == 1,
			Src: Operand{
				Mode: AddrMode(w0 >> 4 & 0x3),
				Reg:  int(w0 & 0xF),
			},
			Words: 1,
		}
		if operandNeedsX(i.Src) {
			x, err := next()
			if err != nil {
				return Inst{}, err
			}
			i.Src.X, i.Src.HasX = x, true
			i.Words++
		}
		return i, nil
	case w0>>12 >= 0x4: // double operand
		i := Inst{
			Kind: KindTwo,
			Op:   int(w0 >> 12),
			Byte: w0>>6&1 == 1,
			Src: Operand{
				Mode: AddrMode(w0 >> 4 & 0x3),
				Reg:  int(w0 >> 8 & 0xF),
			},
			Dst: Operand{
				Mode: AddrMode(w0 >> 7 & 0x1),
				Reg:  int(w0 & 0xF),
			},
			Words: 1,
		}
		if operandNeedsX(i.Src) {
			x, err := next()
			if err != nil {
				return Inst{}, err
			}
			i.Src.X, i.Src.HasX = x, true
			i.Words++
		}
		if operandNeedsX(i.Dst) {
			x, err := next()
			if err != nil {
				return Inst{}, err
			}
			i.Dst.X, i.Dst.HasX = x, true
			i.Words++
		}
		return i, nil
	}
	return Inst{}, fmt.Errorf("isa: unimplemented or invalid opcode word %#04x", w0)
}

// operandNeedsX reports whether the operand consumes an extension word:
// indexed/symbolic/absolute always; @PC+ is #immediate; the constant
// generators never do.
func operandNeedsX(o Operand) bool {
	switch o.Mode {
	case ModeIndexed:
		return o.Reg != CG // x(CG) is the constant 1 — no extension
	case ModeIndirectInc:
		return o.Reg == PC // #imm
	}
	return false
}

// ConstGen returns the constant-generator value for an operand, and
// whether the operand is a generated constant (SR/CG special modes).
func ConstGen(o Operand) (uint16, bool) {
	switch o.Reg {
	case SR:
		switch o.Mode {
		case ModeIndirect:
			return 4, true
		case ModeIndirectInc:
			return 8, true
		}
	case CG:
		switch o.Mode {
		case ModeRegister:
			return 0, true
		case ModeIndexed:
			return 1, true
		case ModeIndirect:
			return 2, true
		case ModeIndirectInc:
			return 0xFFFF, true
		}
	}
	return 0, false
}
