package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(op uint8, srcReg, dstReg uint8, srcMode, dstMode uint8, byteOp bool, x1, x2 uint16) bool {
		i := Inst{
			Kind: KindTwo,
			Op:   int(op%12) + OpMOV,
			Byte: byteOp,
			Src: Operand{
				Mode: AddrMode(srcMode % 4),
				Reg:  int(srcReg % 16),
			},
			Dst: Operand{
				Mode: AddrMode(dstMode % 2), // dst is 1-bit
				Reg:  int(dstReg % 16),
			},
		}
		if operandNeedsX(i.Src) {
			i.Src.X, i.Src.HasX = x1, true
		}
		if operandNeedsX(i.Dst) {
			i.Dst.X, i.Dst.HasX = x2, true
		}
		words, err := Encode(i)
		if err != nil {
			return false
		}
		rest := words[1:]
		got, err := Decode(words[0], func() (uint16, error) {
			w := rest[0]
			rest = rest[1:]
			return w, nil
		})
		if err != nil {
			return false
		}
		got.Words = 0 // not part of the comparison
		want := i
		return got.Kind == want.Kind && got.Op == want.Op && got.Byte == want.Byte &&
			got.Src == want.Src && got.Dst == want.Dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJumpEncodeDecode(t *testing.T) {
	for op := JNE; op <= JMP; op++ {
		for _, off := range []int16{-512, -1, 0, 1, 511} {
			words, err := Encode(Inst{Kind: KindJump, Op: op, Offset: off})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(words[0], nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != KindJump || got.Op != op || got.Offset != off {
				t.Fatalf("op=%d off=%d decoded %+v", op, off, got)
			}
		}
	}
	if _, err := Encode(Inst{Kind: KindJump, Op: JMP, Offset: 512}); err == nil {
		t.Fatal("out-of-range offset must fail")
	}
}

func TestRealEncodings(t *testing.T) {
	// Spot-check against hand-assembled MSP430 words.
	cases := []struct {
		inst Inst
		want []uint16
	}{
		{ // mov r5, r6 = 0x4506
			Inst{Kind: KindTwo, Op: OpMOV,
				Src: Operand{Mode: ModeRegister, Reg: 5},
				Dst: Operand{Mode: ModeRegister, Reg: 6}},
			[]uint16{0x4506},
		},
		{ // add #1, r5 via CG: 0x5315... add src=CG(r3) As=01 → 0x5315
			Inst{Kind: KindTwo, Op: OpADD,
				Src: Operand{Mode: ModeIndexed, Reg: CG},
				Dst: Operand{Mode: ModeRegister, Reg: 5}},
			[]uint16{0x5315},
		},
		{ // mov @r4+, r5 = 0x4435
			Inst{Kind: KindTwo, Op: OpMOV,
				Src: Operand{Mode: ModeIndirectInc, Reg: 4},
				Dst: Operand{Mode: ModeRegister, Reg: 5}},
			[]uint16{0x4435},
		},
		{ // push r10 = 0x120A
			Inst{Kind: KindOne, Op: Op2PUSH,
				Src: Operand{Mode: ModeRegister, Reg: 10}},
			[]uint16{0x120A},
		},
		{ // reti = 0x1300
			Inst{Kind: KindOne, Op: Op2RETI,
				Src: Operand{Mode: ModeRegister, Reg: 0}},
			[]uint16{0x1300},
		},
		{ // jmp $ (offset -1) = 0x3FFF
			Inst{Kind: KindJump, Op: JMP, Offset: -1},
			[]uint16{0x3FFF},
		},
	}
	for i, c := range cases {
		got, err := Encode(c.inst)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("case %d: %x vs %x", i, got, c.want)
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Fatalf("case %d word %d: %#04x want %#04x", i, k, got[k], c.want[k])
			}
		}
	}
}

func TestConstGen(t *testing.T) {
	cases := []struct {
		op   Operand
		want uint16
	}{
		{Operand{Mode: ModeRegister, Reg: CG}, 0},
		{Operand{Mode: ModeIndexed, Reg: CG}, 1},
		{Operand{Mode: ModeIndirect, Reg: CG}, 2},
		{Operand{Mode: ModeIndirect, Reg: SR}, 4},
		{Operand{Mode: ModeIndirectInc, Reg: SR}, 8},
		{Operand{Mode: ModeIndirectInc, Reg: CG}, 0xFFFF},
	}
	for i, c := range cases {
		v, ok := ConstGen(c.op)
		if !ok || v != c.want {
			t.Fatalf("case %d: %v %v", i, v, ok)
		}
	}
	if _, ok := ConstGen(Operand{Mode: ModeRegister, Reg: 5}); ok {
		t.Fatal("plain register is not a constant")
	}
}

func TestInstString(t *testing.T) {
	i := Inst{Kind: KindTwo, Op: OpMOV, Byte: true,
		Src: Operand{Mode: ModeIndirectInc, Reg: 4},
		Dst: Operand{Mode: ModeRegister, Reg: 5}}
	if s := i.String(); s != "mov.b @r4+, r5" {
		t.Fatalf("string = %q", s)
	}
	j := Inst{Kind: KindJump, Op: JNE, Offset: -3}
	if s := j.String(); s != "jne -3" {
		t.Fatalf("string = %q", s)
	}
}

func TestDecodeInvalid(t *testing.T) {
	if _, err := Decode(0x0000, nil); err == nil {
		t.Fatal("word 0 must not decode")
	}
	if _, err := Decode(0x1380, nil); err == nil { // reserved format-II op 7
		t.Fatal("reserved format-II opcode must not decode")
	}
}

func TestDisassemble(t *testing.T) {
	img, err := Assemble(`
	.org 0x4500
top:	mov #0x1234, r5
	add r5, r6
	jne top
	mov &0x4600, r7
	`)
	if err != nil {
		t.Fatal(err)
	}
	lines := Disassemble(img.Words, img.Org, 10)
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %v", len(lines), lines)
	}
	if lines[0].Text != "mov #0x1234, r5" || lines[0].Addr != 0x4500 {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1].Text != "add r5, r6" {
		t.Fatalf("line 1 = %v", lines[1])
	}
	// jne back to top: 4 words back from the word after the jump.
	if lines[2].Text != "jne -4" {
		t.Fatalf("line 2 = %v", lines[2])
	}
	out := Listing(lines)
	if !strings.Contains(out, "4500:") {
		t.Fatalf("listing:\n%s", out)
	}
}

func TestDisassembleGarbageDegrades(t *testing.T) {
	lines := Disassemble([]uint16{0x0000, 0x4506, 0x0001}, 0x4500, 10)
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !lines[0].Bad || lines[1].Bad || !lines[2].Bad {
		t.Fatalf("bad flags: %v", lines)
	}
	if !strings.Contains(lines[0].Text, ".word") {
		t.Fatalf("line 0 = %v", lines[0])
	}
}
