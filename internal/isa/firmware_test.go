package isa_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/units"
)

// TestShippedFirmwareAssemblesAndRuns smoke-runs every .s file under
// firmware/: each must assemble, survive intermittent power, and make
// progress.
func TestShippedFirmwareAssemblesAndRuns(t *testing.T) {
	files, err := filepath.Glob("../../firmware/*.s")
	if err != nil || len(files) == 0 {
		t.Fatalf("no firmware samples found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			d := device.NewWISP5(energy.NewRFHarvester(), 9)
			e := edb.New(edb.DefaultConfig())
			e.Attach(d)
			prog := isa.NewProgram(filepath.Base(f), string(src))
			r := device.NewRunner(d, prog)
			if err := r.Flash(); err != nil {
				t.Fatalf("flash: %v", err)
			}
			res, err := r.RunFor(units.Seconds(3))
			if err != nil {
				t.Fatal(err)
			}
			if res.Faults != 0 || res.Halted != "" {
				t.Fatalf("sample misbehaved: %+v", res)
			}
			if prog.CPU().Retired() == 0 {
				t.Fatal("no instructions retired")
			}
			if res.Reboots == 0 {
				t.Fatalf("samples should run intermittently: %+v", res)
			}
		})
	}
}
