package isa_test

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/units"
)

// counterSrc is a non-volatile counter: classic first intermittent program.
// The count lives in FRAM (.word) and survives reboots; r5 is volatile and
// resets with every power failure.
const counterSrc = `
	.equ APPPIN, 0x0128
main:	mov #2, &APPPIN      ; toggle progress pin
	mov &count, r5
	inc r5
	mov r5, &count
	mov #20, r6          ; a little computation per sample
spin:	dec r6
	jnz spin
	jmp main
count:	.word 0
`

func TestISACounterSurvivesIntermittence(t *testing.T) {
	d := device.NewWISP5(energy.NewRFHarvester(), 42)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	prog := isa.NewProgram("nv-counter", counterSrc)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reboots < 5 {
		t.Fatalf("must be intermittent: %+v", res)
	}
	countAddr := memsim.Addr(prog.Image().Symbols["count"])
	v, err := d.Mem.ReadWord(countAddr)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1000 {
		t.Fatalf("count = %d; non-volatile progress must accumulate across reboots", v)
	}
	if prog.CPU().Retired() == 0 {
		t.Fatal("no instructions retired")
	}
}

func TestISAHaltCompletes(t *testing.T) {
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(5), Voc: 3.3}, 1)
	prog := isa.NewProgram("halts", `
	.equ HALT, 0x012C
	mov #40, r5
loop:	dec r5
	jnz loop
	mov #1, &HALT
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("halt port must complete the program: %+v", res)
	}
}

func TestISADebugPortWatchpointsAndPrintf(t *testing.T) {
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(5), Voc: 3.3}, 2)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	prog := isa.NewProgram("dbg", `
	.equ WP,    0x0120
	.equ PUTC,  0x0124
	.equ HALT,  0x012C
	mov #1, &WP
	mov #0x48, &PUTC     ; 'H'
	mov #0x69, &PUTC     ; 'i'
	mov #10, &PUTC       ; '\n' flushes via EDB printf
	mov #2, &WP
	mov #1, &HALT
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	hits := e.WatchHits()
	if len(hits) != 2 || hits[0].ID != 1 || hits[1].ID != 2 {
		t.Fatalf("watchpoints = %+v", hits)
	}
	if e.PrintfOutput() != "Hi" {
		t.Fatalf("printf = %q", e.PrintfOutput())
	}
}

func TestISAEnergyGuard(t *testing.T) {
	d := device.NewWISP5(energy.NewRFHarvester(), 3)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	// The guarded block burns far more than one charge cycle's budget;
	// only the guard lets the loop complete.
	prog := isa.NewProgram("guarded", `
	.equ GUARD, 0x0126
	.equ HALT,  0x012C
	mov #1, &GUARD
	mov #0xFFFF, r5
burn:	dec r5
	jnz burn
	mov #0, &GUARD
	mov #1, &HALT
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guarded burn must complete: %+v", res)
	}
	if e.Stats().Guards != 1 || e.Stats().SaveRestores != 1 {
		t.Fatalf("guard stats = %+v", e.Stats())
	}
}

func TestISAAssertPort(t *testing.T) {
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(5), Voc: 3.3}, 4)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	prog := isa.NewProgram("asserts", `
	.equ AFAIL, 0x0122
	mov #5, &AFAIL
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Halted, "assert 5") {
		t.Fatalf("halted = %q", res.Halted)
	}
	if !d.Supply.Tethered() {
		t.Fatal("keep-alive must tether on the ISA path too")
	}
}

func TestISAEnergyBreakpointVectorsToISR(t *testing.T) {
	d := device.NewWISP5(energy.NewRFHarvester(), 5)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	// The ISR counts invocations in FRAM. EDB's energy breakpoint raises
	// the interrupt wire; the wrapper vectors to "isr".
	prog := isa.NewProgram("isr-demo", `
	.equ BREAK, 0x0132
main:	inc r5               ; busy: the supply really discharges
	jmp main
isr:	mov &hits, r14
	inc r14
	mov r14, &hits
	mov #7, &BREAK       ; hand control to the console
	reti
hits:	.word 0
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	e.AddEnergyBreakpoint(2.1)
	sessions := 0
	e.OnInteractive(func(s *edb.Session) { sessions++ })
	res, err := r.RunFor(units.Seconds(4))
	if err != nil {
		t.Fatal(err)
	}
	hitsAddr := memsim.Addr(prog.Image().Symbols["hits"])
	v, _ := d.Mem.ReadWord(hitsAddr)
	if v == 0 {
		t.Fatalf("ISR never ran: %+v (sessions=%d)", res, sessions)
	}
	if sessions == 0 {
		t.Fatal("energy-breakpoint sessions must open")
	}
}

func TestISABadSourceFailsFlash(t *testing.T) {
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(5), Voc: 3.3}, 6)
	prog := isa.NewProgram("bad", "mov r5\n")
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err == nil {
		t.Fatal("bad source must fail to flash")
	}
}
