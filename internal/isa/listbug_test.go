package isa_test

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/units"
)

// listBugSrc is the paper's Fig. 3 intermittence bug in actual MSP430
// assembly: a doubly-linked list in FRAM, remove-from-head then
// append-to-tail per iteration. The append writes tail->next=e before
// updating tail; a brown-out between the two corrupts the invariant.
// Node layout: +0 next, +2 prev. The sentinel never moves.
//
// With CHECK=1 the loop head verifies tail->next==NULL and head->prev ==
// sentinel, reporting a failure through the assert port (EDB keep-alive).
func listBugSrc(withAssert bool) string {
	assert := ""
	if withAssert {
		assert = `
	; assert tail->next == 0
	mov &tail, r7        ; r7 = tail (node address)
	mov @r7, r8          ; r8 = tail->next
	tst r8
	jz okTail
	mov #1, &AFAIL       ; tail invariant broken
okTail:	; assert head != 0 && head->prev == sentinel
	mov &sent, r9        ; r9 = head = sentinel->next
	tst r9
	jnz okH1
	mov #2, &AFAIL
okH1:	mov 2(r9), r10       ; r10 = head->prev
	cmp #sent, r10
	jeq okH2
	mov #2, &AFAIL
okH2:
`
	}
	return `
	.equ AFAIL,  0x0122
	.equ APPPIN, 0x0128

main:	mov #2, &APPPIN
` + assert + `
	; e = sentinel->next (first real node)
	mov &sent, r5        ; e

	; remove(e): e->prev->next = e->next
	mov 2(r5), r6        ; prev
	mov @r5, r7          ; next
	mov r7, 0(r6)
	; if e == tail: tail = prev else next->prev = prev
	cmp &tail, r5
	jne notTail
	mov r6, &tail
	jmp removed
notTail:
	mov r6, 2(r7)        ; WILD WRITE when next==0 -> address 0x0002
removed:

	; update(e): burn a little energy
	mov #24, r8
upd:	dec r8
	jnz upd

	; append(e): e->next=0; e->prev=tail; tail->next=e; tail=e
	clr 0(r5)
	mov &tail, r9
	mov r9, 2(r5)
	mov r5, 0(r9)
	; <-- a brown-out here leaves tail stale: the Fig. 3 window
	mov r5, &tail

	; iter++
	mov &iter, r11
	inc r11
	mov r11, &iter
	jmp main

	; list image: sentinel -> n1 -> n2 -> n3 (tail), laid out at flash
sent:	.word n1, 0          ; sentinel: next, prev
n1:	.word n2, sent
n2:	.word n3, n1
n3:	.word 0,  n2
tail:	.word n3
iter:	.word 0
`
}

func TestISAListBugFaultsWithoutAssert(t *testing.T) {
	d := device.NewWISP5(energy.NewRFHarvester(), 42)
	prog := isa.NewProgram("asm-listbug", listBugSrc(false))
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(25))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reboots == 0 {
		t.Fatalf("must be intermittent: %+v", res)
	}
	if res.Faults == 0 {
		t.Fatalf("the Fig. 3 bug must eventually wedge the MCU: %+v", res)
	}
	iters, _ := d.Mem.ReadWord(memsim.Addr(prog.Image().Symbols["iter"]))
	if iters == 0 {
		t.Fatal("no progress before the corruption")
	}
}

func TestISAListBugCaughtByAssertPort(t *testing.T) {
	d := device.NewWISP5(energy.NewRFHarvester(), 42)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	prog := isa.NewProgram("asm-listbug-assert", listBugSrc(true))
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	res, err := r.RunFor(units.Seconds(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 {
		t.Fatalf("assert must catch the corruption before the wild write: %+v", res)
	}
	if !strings.Contains(res.Halted, "assert") {
		t.Fatalf("halted = %q (%+v)", res.Halted, res)
	}
	if !d.Supply.Tethered() {
		t.Fatal("keep-alive must tether the assembly target too")
	}
	// The diagnosis works over the wire exactly as for Go firmware: read
	// the tail and its next pointer from the halted, tethered device.
	tailPtrAddr := memsim.Addr(prog.Image().Symbols["tail"])
	tail, err := d.Mem.ReadWord(tailPtrAddr)
	if err != nil {
		t.Fatal(err)
	}
	sent := prog.Image().Symbols["sent"]
	tailNext, err := d.Mem.ReadWord(memsim.Addr(tail))
	if err != nil {
		t.Fatal(err)
	}
	head, _ := d.Mem.ReadWord(memsim.Addr(sent))
	headBroken := head == 0
	if !headBroken && head != 0 {
		prev, _ := d.Mem.ReadWord(memsim.Addr(head) + 2)
		headBroken = prev != sent
	}
	if tailNext == 0 && !headBroken {
		t.Fatalf("assert fired but no invariant looks broken (tail=%#x tail->next=%#x head=%#x)",
			tail, tailNext, head)
	}
}
