package isa_test

import (
	"fmt"
	"log"

	"repro/internal/isa"
)

// ExampleAssemble turns MSP430-flavored source into real machine words and
// disassembles them back.
func ExampleAssemble() {
	img, err := isa.Assemble(`
	.org 0x4500
top:	mov #0x1234, r5
	add r5, r6
	jne top
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d words at %#04x\n", len(img.Words), img.Org)
	fmt.Print(isa.Listing(isa.Disassemble(img.Words, img.Org, 3)))
	// Output:
	// 4 words at 0x4500
	// 4500: 4035 1234      mov #0x1234, r5
	// 4504: 5506           add r5, r6
	// 4506: 23fc           jne -4
}
