package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	img, err := Assemble(`
	; a tiny program
	.org 0x4600
start:	mov #0x1234, r5
	add r5, r6
	jmp start
value:	.word 0xBEEF, 2
buf:	.space 4
	`)
	if err != nil {
		t.Fatal(err)
	}
	if img.Org != 0x4600 {
		t.Fatalf("org = %#x", img.Org)
	}
	if img.Entry != 0x4600 {
		t.Fatalf("entry = %#x", img.Entry)
	}
	// mov #imm (2 words) + add (1) + jmp (1) + .word (2) + .space (2).
	if len(img.Words) != 8 {
		t.Fatalf("words = %d: %04x", len(img.Words), img.Words)
	}
	if img.Symbols["value"] != 0x4600+8 {
		t.Fatalf("value @ %#x", img.Symbols["value"])
	}
	if img.Words[4] != 0xBEEF || img.Words[5] != 2 {
		t.Fatalf(".word emitted %04x", img.Words[4:6])
	}
	if !strings.Contains(img.SymbolTable(), "value") {
		t.Fatal("symbol table")
	}
}

func TestAssembleConstantGenerators(t *testing.T) {
	// Immediates 0,1,2,4,8,-1 must not consume extension words.
	img, err := Assemble(`
	clr r5
	add #1, r5
	add #2, r5
	add #4, r5
	add #8, r5
	add #-1, r5
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Words) != 6 {
		t.Fatalf("CG immediates must be single words: %d words", len(img.Words))
	}
	// And a non-CG immediate takes two.
	img2, err := Assemble("add #3, r5\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(img2.Words) != 2 {
		t.Fatalf("#3 must take an extension word: %d", len(img2.Words))
	}
}

func TestAssembleJumpTargets(t *testing.T) {
	img, err := Assemble(`
back:	nop
	jmp back
	jmp fwd
	nop
fwd:	nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	// jmp back at word 1: offset = (0 - 1 - 1) = -2 words.
	d1, err := Decode(img.Words[1], nil)
	if err != nil || d1.Offset != -2 {
		t.Fatalf("back offset = %d err=%v", d1.Offset, err)
	}
	d2, err := Decode(img.Words[2], nil)
	if err != nil || d2.Offset != 1 {
		t.Fatalf("fwd offset = %d err=%v", d2.Offset, err)
	}
}

func TestAssembleEquAndEntry(t *testing.T) {
	img, err := Assemble(`
	.equ PORT, 0x0120
	.entry main
data:	.word 7
main:	mov #1, &PORT
	`)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != img.Symbols["main"] {
		t.Fatalf("entry = %#x, main = %#x", img.Entry, img.Symbols["main"])
	}
	// mov #1(CG), &abs: word + extension for &PORT.
	last := img.Words[len(img.Words)-1]
	if last != 0x0120 {
		t.Fatalf("absolute extension = %#x", last)
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	img, err := Assemble(`
	nop
	clr r5
	inc r5
	dec r5
	tst r5
	push r5
	pop r6
	ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	// nop = mov r3,r3 = 0x4303.
	if img.Words[0] != 0x4303 {
		t.Fatalf("nop = %#04x", img.Words[0])
	}
	// ret = mov @sp+, pc = 0x4130.
	if img.Words[len(img.Words)-1] != 0x4130 {
		t.Fatalf("ret = %#04x", img.Words[len(img.Words)-1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r5, r6",
		"mov r5",
		"jmp",
		"mov #1, @r5",     // indirect destination illegal
		"mov #1, nowhere", // undefined symbol
		"dup: nop\ndup: nop",
		".equ X",
	}
	for i, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Fatalf("case %d (%q) must fail", i, src)
		}
	}
}

func TestAssembleByteOps(t *testing.T) {
	img, err := Assemble("mov.b #0x12, r5\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(img.Words[0], func() (uint16, error) { return img.Words[1], nil })
	if err != nil || !d.Byte {
		t.Fatalf("byte flag lost: %+v err=%v", d, err)
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	img, err := Assemble("mov r0, r4\nmov pc, r5\n")
	if err != nil {
		t.Fatal(err)
	}
	if img.Words[0]>>8&0xF != 0 || img.Words[1]>>8&0xF != 0 {
		t.Fatalf("pc alias: %04x", img.Words[:2])
	}
	if _, err := Assemble("mov r16, r4\n"); err == nil {
		t.Fatal("r16 must not exist")
	}
}

func TestAssembleByteAndAsciiDirectives(t *testing.T) {
	img, err := Assemble(`
	.org 0x4600
msg:	.ascii "Hi\n"
vals:	.byte 1, 2, 3
	`)
	if err != nil {
		t.Fatal(err)
	}
	// "Hi\n" = 3 bytes -> 2 words; .byte 1,2,3 -> 2 words.
	if len(img.Words) != 4 {
		t.Fatalf("words = %d: %04x", len(img.Words), img.Words)
	}
	if img.Words[0] != uint16('H')|uint16('i')<<8 {
		t.Fatalf("ascii packing: %#04x", img.Words[0])
	}
	if img.Words[1] != '\n' {
		t.Fatalf("ascii tail: %#04x", img.Words[1])
	}
	if img.Words[2] != 0x0201 || img.Words[3] != 0x0003 {
		t.Fatalf("bytes: %04x", img.Words[2:])
	}
	if img.Symbols["vals"] != 0x4600+4 {
		t.Fatalf("vals @ %#x", img.Symbols["vals"])
	}
	if _, err := Assemble(".ascii unquoted\n"); err == nil {
		t.Fatal("unquoted .ascii must fail")
	}
	if _, err := Assemble(".ascii \"bad\\q\"\n"); err == nil {
		t.Fatal("unknown escape must fail")
	}
}
