package isa

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/memsim"
)

// Port is a memory-mapped I/O hook: loads and stores to its address are
// routed to Go handlers instead of simulated RAM. The debug port
// (program.go) and simple peripherals hang off ports.
type Port struct {
	Read  func(env *device.Env) uint16
	Write func(env *device.Env, v uint16)
}

// CPU is the MSP430-subset interpreter. All architectural state is
// volatile: the register file lives here and is zeroed by Reset, exactly
// like hardware losing power. Memory is the device's simulated address
// space, reached through the energy-metered Env.
type CPU struct {
	R [16]uint16

	ports map[memsim.Addr]Port
	// Dense mirror of the ports map: MMIO addresses cluster in the SFR
	// page, so the hot load/store paths resolve a port with one subtract
	// and one bounds check instead of a map probe per memory access.
	portBase memsim.Addr
	portTab  []*Port

	// lastExtAddrVal is the address the most recent extension word was
	// fetched from; PC-relative (symbolic) operands resolve against it.
	lastExtAddrVal uint16

	// intDepth tracks nested interrupt service (RETI decrements).
	intDepth int
	// halted is set by the HALT debug port; the program wrapper treats it
	// as normal completion.
	halted bool

	// instructions retired since reset (diagnostics).
	retired uint64

	// Predecoded-instruction cache over the flashed image, keyed by PC.
	// Decoding is pure — the machine words fully determine the Inst — so a
	// cached entry is valid until something writes the underlying words.
	// Invalidation hangs off the code region's WriteHook, which keeps
	// self-modifying (and self-corrupting, as in Fig. 7) programs faithful:
	// a wild store into code drops the stale entries and the next fetch
	// re-decodes whatever garbage is there now.
	//
	// Execution over the cache is threaded-code style: each entry carries
	// its handler (dcExec, selected once at fill time), straight-line runs
	// chain from entry to entry under a PC guard without returning to the
	// Step probe, and pairs of pure register/constant ALU instructions fuse
	// into a superinstruction (dcFused) that skips the generic operand
	// machinery for both halves.
	dcRegion *memsim.Region
	dcOrg    uint16
	dcEnd    uint16
	dcInst   []Inst
	dcValid  []bool
	dcExec   []execFn
	dcFused  []int32 // successor word index of a fused ALU pair, -1 if none
}

// execFn is a selected instruction handler: the threaded-dispatch unit.
type execFn func(c *CPU, env *device.Env, i *Inst)

// NewCPU returns a CPU with no ports mapped.
func NewCPU() *CPU {
	return &CPU{ports: make(map[memsim.Addr]Port)}
}

// MapPort installs an MMIO port at addr (word access).
func (c *CPU) MapPort(addr memsim.Addr, p Port) {
	c.ports[addr] = p
	c.rebuildPortTab()
}

// rebuildPortTab regenerates the dense port lookup table from the map.
func (c *CPU) rebuildPortTab() {
	var lo, hi memsim.Addr
	first := true
	for a := range c.ports {
		if first || a < lo {
			lo = a
		}
		if first || a > hi {
			hi = a
		}
		first = false
	}
	if first {
		c.portBase, c.portTab = 0, nil
		return
	}
	c.portBase = lo
	c.portTab = make([]*Port, hi-lo+1)
	for a, p := range c.ports {
		p := p
		c.portTab[a-lo] = &p
	}
}

// port resolves an address against the dense MMIO table; nil means plain
// memory. The unsigned subtraction folds the a < portBase case into the
// single bounds check.
func (c *CPU) port(a memsim.Addr) *Port {
	if off := uint32(a) - uint32(c.portBase); off < uint32(len(c.portTab)) {
		return c.portTab[off]
	}
	return nil
}

// Reset models a power-on reset: volatile register state clears, execution
// restarts at the reset vector (entry), with a fresh stack.
func (c *CPU) Reset(entry, stackTop uint16) {
	c.R = [16]uint16{}
	c.R[PC] = entry
	c.R[SP] = stackTop
	c.intDepth = 0
	c.halted = false
}

// Halted reports whether the HALT port stopped the program.
func (c *CPU) Halted() bool { return c.halted }

// Retired returns the number of instructions executed since reset.
func (c *CPU) Retired() uint64 { return c.retired }

// InInterrupt reports whether an ISR is executing.
func (c *CPU) InInterrupt() bool { return c.intDepth > 0 }

// Interrupt vectors control to the handler: the hardware pushes PC then
// SR, clears GIE, and loads the vector.
func (c *CPU) Interrupt(env *device.Env, vector uint16) {
	c.push(env, c.R[PC])
	c.push(env, c.R[SR])
	c.R[SR] &^= GIE
	c.R[PC] = vector
	c.intDepth++
}

// EnableDecodeCache attaches a predecoded-instruction cache covering
// sizeBytes of region r starting at org (the flashed image). It registers
// an invalidation hook on the region, composing with any hook already
// installed.
func (c *CPU) EnableDecodeCache(r *memsim.Region, org uint16, sizeBytes int) {
	n := sizeBytes / 2
	if n <= 0 {
		return
	}
	c.dcRegion = r
	c.dcOrg = org
	c.dcEnd = org + uint16(2*n)
	c.dcInst = make([]Inst, n)
	c.dcValid = make([]bool, n)
	c.dcExec = make([]execFn, n)
	c.dcFused = make([]int32, n)
	for i := range c.dcFused {
		c.dcFused[i] = -1
	}
	prev := r.WriteHook
	r.WriteHook = func(a memsim.Addr, bytes int) {
		if prev != nil {
			prev(a, bytes)
		}
		c.invalidate(uint16(a), bytes)
	}
}

// invalidate drops cache entries that could decode through any written word.
// An instruction spans up to two extension words, so a write to word i can
// change instructions starting at words i-2 .. i. Fused pairs reach further:
// a pair starting at word i can span up to six words, so fusion links are
// cleared over the widened window.
func (c *CPU) invalidate(a uint16, bytes int) {
	lo := (int(a)-int(c.dcOrg))/2 - 2
	hi := (int(a) + bytes - 1 - int(c.dcOrg)) / 2
	if hi >= len(c.dcValid) {
		hi = len(c.dcValid) - 1
	}
	for i := max(lo, 0); i <= hi; i++ {
		c.dcValid[i] = false
	}
	for i := max(lo-3, 0); i <= hi; i++ {
		c.dcFused[i] = -1
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Step executes exactly one instruction. Power failure unwinds from inside
// the memory accesses; a decode failure (executing garbage or data) panics
// with a MemoryFault-equivalent wedge, matching what an MCU does when PC
// walks into a corrupted region.
//
// Single-stepping callers (the ISR wrapper, debug consoles, tests) rely on
// the one-instruction contract; bulk execution goes through RunChain, which
// shares the same env call sequence instruction for instruction.
func (c *CPU) Step(env *device.Env) error {
	c.retired++
	pc0 := c.R[PC]
	if c.dcValid != nil && pc0 >= c.dcOrg && pc0 < c.dcEnd && pc0&1 == 0 {
		i := int(pc0-c.dcOrg) / 2
		if c.dcValid[i] {
			inst := &c.dcInst[i]
			c.fetchTicks(env, inst.Words)
			c.dcExec[i](c, env, inst)
			return nil
		}
		inst, err := c.fetchDecode(env, pc0)
		if err != nil {
			return err
		}
		if i+inst.Words <= len(c.dcInst) {
			c.fillEntry(i, inst)
		}
		inst.exec()(c, env, &inst)
		return nil
	}
	inst, err := c.fetchDecode(env, pc0)
	if err != nil {
		return err
	}
	inst.exec()(c, env, &inst)
	return nil
}

// RunChain executes at least one instruction and then keeps going through
// cached straight-line successors (and fused ALU pairs) without returning
// to the dispatch probe. The env call sequence — fetch ticks, operand
// accesses, compute cycles — is identical to an equivalent series of Step
// calls, so power failures, interrupts, and energy accounting land on
// exactly the same cycles; only the Go-level call overhead differs. The
// chain breaks on taken branches, calls, returns, halts, cache
// invalidation, or leaving the cached region.
func (c *CPU) RunChain(env *device.Env) error {
	pc0 := c.R[PC]
	if c.dcValid != nil && pc0 >= c.dcOrg && pc0 < c.dcEnd && pc0&1 == 0 {
		if i := int(pc0-c.dcOrg) / 2; c.dcValid[i] {
			c.retired++
			c.runCached(env, i)
			return nil
		}
	}
	return c.Step(env)
}

// fillEntry caches a decoded instruction with its selected handler and
// refreshes fusion links: the new entry may lead a pure-ALU pair, and it may
// complete a pair whose lead was cached earlier.
func (c *CPU) fillEntry(i int, inst Inst) {
	c.dcInst[i] = inst
	c.dcExec[i] = inst.exec()
	c.dcValid[i] = true
	c.fuseAt(i)
	for k := max(i-3, 0); k < i; k++ {
		if c.dcValid[k] && k+c.dcInst[k].Words == i {
			c.fuseAt(k)
		}
	}
}

// fuseAt records a fused superinstruction link at lead entry k when both k
// and its fall-through successor are pure register/constant ALU
// instructions — the hottest decode pairs (inc/inc/add-style register
// loops) by a wide margin.
func (c *CPU) fuseAt(k int) {
	c.dcFused[k] = -1
	if !pureALU(&c.dcInst[k]) {
		return
	}
	j := k + c.dcInst[k].Words
	if j < len(c.dcValid) && c.dcValid[j] && pureALU(&c.dcInst[j]) {
		c.dcFused[k] = int32(j)
	}
}

// pureALU reports whether the instruction is a Format I operation whose
// operands live entirely in registers and generated/immediate constants and
// whose destination is a register other than PC: it cannot touch memory or
// ports, cannot halt, and cannot branch, so a pair of them fuses safely.
func pureALU(i *Inst) bool {
	if i.Kind != KindTwo || i.Dst.Mode != ModeRegister || i.Dst.Reg == PC {
		return false
	}
	if _, ok := ConstGen(i.Src); ok {
		return true
	}
	switch i.Src.Mode {
	case ModeRegister:
		return i.Src.Reg != PC
	case ModeIndirectInc:
		return i.Src.Reg == PC // #imm
	}
	return false
}

// runCached executes the cached entry at word index i and then chains
// through straight-line successors: as long as the executed instruction left
// PC exactly at the next cached entry (the PC guard — taken jumps, calls,
// faults, and self-modifying stores all fail it), execution continues
// without returning to the Step probe.
func (c *CPU) runCached(env *device.Env, i int) {
	for {
		if j := c.dcFused[i]; j >= 0 && c.dcValid[j] {
			next, ok := c.execFused(env, i, int(j))
			if !ok {
				return
			}
			i = next
			continue
		}
		inst := &c.dcInst[i]
		c.fetchTicks(env, inst.Words)
		c.dcExec[i](c, env, inst)
		j := i + inst.Words
		if c.halted || j >= len(c.dcValid) || !c.dcValid[j] ||
			c.R[PC] != c.dcOrg+uint16(2*j) {
			return
		}
		c.retired++
		i = j
	}
}

// execFused runs the fused ALU pair (i, j) through the specialized
// register/constant executor, skipping the generic operand machinery for
// both halves. The env call sequence — word-fetch ticks then the single
// compute cycle per instruction — is identical to unfused execution, so
// power failures and interrupts land on exactly the same cycles. Guards
// re-check between the halves because an interrupt service routine running
// inside a fetch tick may rewrite code or registers.
func (c *CPU) execFused(env *device.Env, i, j int) (next int, ok bool) {
	c.fetchTicks(env, c.dcInst[i].Words)
	c.aluExec(env, &c.dcInst[i])
	if c.halted || !c.dcValid[j] || c.R[PC] != c.dcOrg+uint16(2*j) {
		return 0, false
	}
	c.retired++
	inst2 := &c.dcInst[j]
	c.fetchTicks(env, inst2.Words)
	c.aluExec(env, inst2)
	k := j + inst2.Words
	if c.halted || k >= len(c.dcValid) || !c.dcValid[k] ||
		c.R[PC] != c.dcOrg+uint16(2*k) {
		return 0, false
	}
	c.retired++
	return k, true
}

// fetchTicks charges the word fetches of a cached instruction with
// cycle-for-cycle the same timing, PC movement, and access accounting as the
// fetch-and-decode path — including mid-instruction power failure points
// between word fetches and the quirk that PC-relative operands resolve
// against the address of the last extension word.
func (c *CPU) fetchTicks(env *device.Env, words int) {
	for w := 0; w < words; w++ {
		if w > 0 {
			c.lastExtAddrVal = c.R[PC]
		}
		env.Compute(device.CyclesLoad)
		c.dcRegion.Reads++
		c.R[PC] += 2
	}
}

// exec selects the handler for an instruction: the one-time switch that
// threaded dispatch pays per cache fill instead of per execution.
func (i *Inst) exec() execFn {
	switch i.Kind {
	case KindJump:
		return (*CPU).execJump
	case KindOne:
		if i.Op == Op2RETI {
			return (*CPU).execReti
		}
		return (*CPU).execOne
	case KindTwo:
		if pureALU(i) {
			return (*CPU).aluExec
		}
		return (*CPU).execTwo
	}
	return func(c *CPU, env *device.Env, i *Inst) {}
}

func (c *CPU) fetchDecode(env *device.Env, pc0 uint16) (Inst, error) {
	w0 := c.fetch(env)
	inst, err := Decode(w0, func() (uint16, error) {
		// Extension words fetch through the same metered path. Their
		// addresses matter for PC-relative (symbolic) operands.
		c.lastExtAddrVal = c.R[PC]
		return c.fetch(env), nil
	})
	if err != nil {
		return Inst{}, fmt.Errorf("isa: at %#04x: %w", pc0, err)
	}
	return inst, nil
}

func (c *CPU) fetch(env *device.Env) uint16 {
	w := c.loadWord(env, memsim.Addr(c.R[PC]))
	c.R[PC] += 2
	return w
}

// loadWord reads through a port or simulated memory.
func (c *CPU) loadWord(env *device.Env, a memsim.Addr) uint16 {
	if p := c.port(a); p != nil {
		env.Compute(device.CyclesLoad)
		if p.Read != nil {
			return p.Read(env)
		}
		return 0
	}
	return env.LoadWord(a)
}

func (c *CPU) storeWord(env *device.Env, a memsim.Addr, v uint16) {
	if p := c.port(a); p != nil {
		env.Compute(device.CyclesStore)
		if p.Write != nil {
			p.Write(env, v)
		}
		return
	}
	env.StoreWord(a, v)
}

func (c *CPU) loadByte(env *device.Env, a memsim.Addr) uint16 {
	if c.port(a) != nil {
		return c.loadWord(env, a) & 0xFF
	}
	return uint16(env.LoadByte(a))
}

func (c *CPU) storeByte(env *device.Env, a memsim.Addr, v uint16) {
	if c.port(a) != nil {
		c.storeWord(env, a, v&0xFF)
		return
	}
	env.StoreByte(a, byte(v))
}

func (c *CPU) push(env *device.Env, v uint16) {
	c.R[SP] -= 2
	c.storeWord(env, memsim.Addr(c.R[SP]), v)
}

func (c *CPU) pop(env *device.Env) uint16 {
	v := c.loadWord(env, memsim.Addr(c.R[SP]))
	c.R[SP] += 2
	return v
}

// resolved is an evaluated operand: a value plus, for memory operands, the
// address to write back to.
type resolved struct {
	value uint16
	addr  memsim.Addr
	isReg bool
	reg   int
	isMem bool
}

// evalOperand reads an operand's value and location.
func (c *CPU) evalOperand(env *device.Env, o Operand, byteOp bool) resolved {
	if v, ok := ConstGen(o); ok {
		return resolved{value: maskByte(v, byteOp)}
	}
	switch o.Mode {
	case ModeRegister:
		return resolved{value: maskByte(c.R[o.Reg], byteOp), isReg: true, reg: o.Reg}
	case ModeIndexed:
		var addr memsim.Addr
		switch o.Reg {
		case SR: // absolute
			addr = memsim.Addr(o.X)
		case PC: // symbolic: X relative to the extension word's address
			addr = memsim.Addr(c.lastExtAddrVal + o.X)
		default:
			addr = memsim.Addr(c.R[o.Reg] + o.X)
		}
		return c.memOperand(env, addr, byteOp)
	case ModeIndirect:
		return c.memOperand(env, memsim.Addr(c.R[o.Reg]), byteOp)
	case ModeIndirectInc:
		if o.Reg == PC { // immediate
			return resolved{value: maskByte(o.X, byteOp)}
		}
		addr := memsim.Addr(c.R[o.Reg])
		step := uint16(2)
		if byteOp {
			step = 1
		}
		c.R[o.Reg] += step
		return c.memOperand(env, addr, byteOp)
	}
	return resolved{}
}

func (c *CPU) memOperand(env *device.Env, addr memsim.Addr, byteOp bool) resolved {
	r := resolved{addr: addr, isMem: true}
	if byteOp {
		r.value = c.loadByte(env, addr)
	} else {
		r.value = c.loadWord(env, addr)
	}
	return r
}

// writeBack stores a result into an evaluated destination.
func (c *CPU) writeBack(env *device.Env, dst resolved, v uint16, byteOp bool) {
	switch {
	case dst.isReg:
		if byteOp {
			c.R[dst.reg] = v & 0xFF // byte ops clear the high byte
		} else {
			c.R[dst.reg] = v
		}
	case dst.isMem:
		if byteOp {
			c.storeByte(env, dst.addr, v)
		} else {
			c.storeWord(env, dst.addr, v)
		}
	}
}

func maskByte(v uint16, byteOp bool) uint16 {
	if byteOp {
		return v & 0xFF
	}
	return v
}

// jumpTaken is the condition table for the jump format, indexed by Op.
var jumpTaken = [8]func(sr uint16) bool{
	JNE: func(sr uint16) bool { return sr&FlagZ == 0 },
	JEQ: func(sr uint16) bool { return sr&FlagZ != 0 },
	JNC: func(sr uint16) bool { return sr&FlagC == 0 },
	JC:  func(sr uint16) bool { return sr&FlagC != 0 },
	JN:  func(sr uint16) bool { return sr&FlagN != 0 },
	JGE: func(sr uint16) bool { return (sr&FlagN != 0) == (sr&FlagV != 0) },
	JL:  func(sr uint16) bool { return (sr&FlagN != 0) != (sr&FlagV != 0) },
	JMP: func(sr uint16) bool { return true },
}

func (c *CPU) execJump(env *device.Env, i *Inst) {
	if jumpTaken[i.Op](c.R[SR]) {
		c.R[PC] += uint16(2 * i.Offset)
	}
}

func (c *CPU) execReti(env *device.Env, i *Inst) {
	c.R[SR] = c.pop(env)
	c.R[PC] = c.pop(env)
	if c.intDepth > 0 {
		c.intDepth--
	}
}

// oneExec is the Format II handler table, indexed by Op. RETI is dispatched
// separately (it evaluates no operand and charges no compute cycle).
var oneExec = [8]func(c *CPU, env *device.Env, i *Inst, src resolved){
	Op2RRC:  (*CPU).opRRC,
	Op2SWPB: (*CPU).opSWPB,
	Op2RRA:  (*CPU).opRRA,
	Op2SXT:  (*CPU).opSXT,
	Op2PUSH: (*CPU).opPUSH,
	Op2CALL: (*CPU).opCALL,
}

func (c *CPU) execOne(env *device.Env, i *Inst) {
	src := c.evalOperand(env, i.Src, i.Byte)
	env.Compute(1)
	oneExec[i.Op](c, env, i, src)
}

func (c *CPU) opRRC(env *device.Env, i *Inst, src resolved) {
	carryIn := c.R[SR] & FlagC
	v := src.value
	newC := v & 1
	v >>= 1
	if carryIn != 0 {
		if i.Byte {
			v |= 0x80
		} else {
			v |= 0x8000
		}
	}
	c.setFlagsLogic(v, i.Byte)
	c.setFlag(FlagC, newC != 0)
	c.setFlag(FlagV, false)
	c.writeBack(env, src, v, i.Byte)
}

func (c *CPU) opRRA(env *device.Env, i *Inst, src resolved) {
	v := src.value
	newC := v & 1
	if i.Byte {
		v = (v >> 1) | (v & 0x80)
	} else {
		v = (v >> 1) | (v & 0x8000)
	}
	c.setFlagsLogic(v, i.Byte)
	c.setFlag(FlagC, newC != 0)
	c.setFlag(FlagV, false)
	c.writeBack(env, src, v, i.Byte)
}

func (c *CPU) opSWPB(env *device.Env, i *Inst, src resolved) {
	v := src.value>>8 | src.value<<8
	c.writeBack(env, src, v, false)
}

func (c *CPU) opSXT(env *device.Env, i *Inst, src resolved) {
	v := src.value & 0xFF
	if v&0x80 != 0 {
		v |= 0xFF00
	}
	c.setFlagsLogic(v, false)
	c.setFlag(FlagC, v != 0)
	c.setFlag(FlagV, false)
	c.writeBack(env, src, v, false)
}

func (c *CPU) opPUSH(env *device.Env, i *Inst, src resolved) {
	c.push(env, src.value)
}

func (c *CPU) opCALL(env *device.Env, i *Inst, src resolved) {
	c.push(env, c.R[PC])
	c.R[PC] = src.value
}

// twoExec is the Format I handler table, indexed by Op. Handlers receive
// both operands already evaluated and the compute cycle already charged, so
// the generic and fused paths share the exact op semantics.
var twoExec = [16]func(c *CPU, env *device.Env, i *Inst, src, dst resolved){
	OpMOV:  (*CPU).opMOV,
	OpADD:  (*CPU).opADD,
	OpADDC: (*CPU).opADDC,
	OpSUBC: (*CPU).opSUBC,
	OpSUB:  (*CPU).opSUB,
	OpCMP:  (*CPU).opCMP,
	OpDADD: (*CPU).opDADD,
	OpBIT:  (*CPU).opBIT,
	OpBIC:  (*CPU).opBIC,
	OpBIS:  (*CPU).opBIS,
	OpXOR:  (*CPU).opXOR,
	OpAND:  (*CPU).opAND,
}

func (c *CPU) execTwo(env *device.Env, i *Inst) {
	src := c.evalOperand(env, i.Src, i.Byte)
	dst := c.evalOperand(env, i.Dst, i.Byte)
	env.Compute(1)
	twoExec[i.Op](c, env, i, src, dst)
}

// aluExec is the specialized executor for pure register/constant Format I
// instructions (see pureALU): operand evaluation collapses to direct
// register and constant reads, with the compute cycle charged at the same
// point as the generic path.
func (c *CPU) aluExec(env *device.Env, i *Inst) {
	var s uint16
	if v, ok := ConstGen(i.Src); ok {
		s = v
	} else if i.Src.Mode == ModeRegister {
		s = c.R[i.Src.Reg]
	} else {
		s = i.Src.X // #imm
	}
	src := resolved{value: maskByte(s, i.Byte)}
	dst := resolved{value: maskByte(c.R[i.Dst.Reg], i.Byte), isReg: true, reg: i.Dst.Reg}
	env.Compute(1)
	twoExec[i.Op](c, env, i, src, dst)
}

func (c *CPU) opMOV(env *device.Env, i *Inst, src, dst resolved) {
	c.writeBack(env, dst, src.value, i.Byte)
}

func (c *CPU) opADD(env *device.Env, i *Inst, src, dst resolved) {
	c.arith(env, dst, dst.value, src.value, 0, i.Byte, true)
}

func (c *CPU) opADDC(env *device.Env, i *Inst, src, dst resolved) {
	c.arith(env, dst, dst.value, src.value, c.carry(), i.Byte, true)
}

func (c *CPU) opSUB(env *device.Env, i *Inst, src, dst resolved) {
	c.arith(env, dst, dst.value, ^src.value&mask(i.Byte), 1, i.Byte, true)
}

func (c *CPU) opSUBC(env *device.Env, i *Inst, src, dst resolved) {
	c.arith(env, dst, dst.value, ^src.value&mask(i.Byte), c.carry(), i.Byte, true)
}

func (c *CPU) opCMP(env *device.Env, i *Inst, src, dst resolved) {
	c.arith(env, dst, dst.value, ^src.value&mask(i.Byte), 1, i.Byte, false)
}

func (c *CPU) opBIT(env *device.Env, i *Inst, src, dst resolved) {
	v := dst.value & src.value
	c.setFlagsLogic(v, i.Byte)
	c.setFlag(FlagC, v != 0)
	c.setFlag(FlagV, false)
}

func (c *CPU) opBIC(env *device.Env, i *Inst, src, dst resolved) {
	c.writeBack(env, dst, dst.value&^src.value, i.Byte)
}

func (c *CPU) opBIS(env *device.Env, i *Inst, src, dst resolved) {
	c.writeBack(env, dst, dst.value|src.value, i.Byte)
}

func (c *CPU) opXOR(env *device.Env, i *Inst, src, dst resolved) {
	d, s := dst.value, src.value
	v := (d ^ s) & mask(i.Byte)
	c.setFlagsLogic(v, i.Byte)
	c.setFlag(FlagC, v != 0)
	c.setFlag(FlagV, signBit(d, i.Byte) && signBit(s, i.Byte))
	c.writeBack(env, dst, v, i.Byte)
}

func (c *CPU) opAND(env *device.Env, i *Inst, src, dst resolved) {
	v := dst.value & src.value & mask(i.Byte)
	c.setFlagsLogic(v, i.Byte)
	c.setFlag(FlagC, v != 0)
	c.setFlag(FlagV, false)
	c.writeBack(env, dst, v, i.Byte)
}

func (c *CPU) opDADD(env *device.Env, i *Inst, src, dst resolved) {
	v, carry := bcdAdd(dst.value, src.value, c.carry(), i.Byte)
	c.setFlagsLogic(v, i.Byte)
	c.setFlag(FlagC, carry)
	c.writeBack(env, dst, v, i.Byte)
}

// arith performs d + s + cin with full flag semantics, optionally writing
// back (CMP/BIT do not).
func (c *CPU) arith(env *device.Env, dst resolved, d, s, cin uint16, byteOp, write bool) {
	m := mask(byteOp)
	sum32 := uint32(d&m) + uint32(s&m) + uint32(cin)
	v := uint16(sum32) & m
	carry := sum32 > uint32(m)
	dN, sN, rN := signBit(d, byteOp), signBit(s, byteOp), signBit(v, byteOp)
	overflow := (dN == sN) && (rN != dN)
	c.setFlagsLogic(v, byteOp)
	c.setFlag(FlagC, carry)
	c.setFlag(FlagV, overflow)
	if write {
		c.writeBack(env, dst, v, byteOp)
	}
}

// bcdAdd performs the decimal (BCD) addition of DADD: each 4-bit digit
// adds with decimal carry. Returns the packed-BCD sum and the carry out of
// the most significant digit.
func bcdAdd(d, s, cin uint16, byteOp bool) (uint16, bool) {
	digits := 4
	if byteOp {
		digits = 2
	}
	var out uint16
	carry := cin
	for i := 0; i < digits; i++ {
		shift := uint(4 * i)
		sum := (d>>shift)&0xF + (s>>shift)&0xF + carry
		if sum > 9 {
			sum -= 10
			carry = 1
		} else {
			carry = 0
		}
		out |= sum << shift
	}
	return out, carry == 1
}

func (c *CPU) carry() uint16 {
	if c.R[SR]&FlagC != 0 {
		return 1
	}
	return 0
}

func (c *CPU) setFlag(f uint16, on bool) {
	if on {
		c.R[SR] |= f
	} else {
		c.R[SR] &^= f
	}
}

func (c *CPU) setFlagsLogic(v uint16, byteOp bool) {
	c.setFlag(FlagZ, v&mask(byteOp) == 0)
	c.setFlag(FlagN, signBit(v, byteOp))
}

func mask(byteOp bool) uint16 {
	if byteOp {
		return 0xFF
	}
	return 0xFFFF
}

func signBit(v uint16, byteOp bool) bool {
	if byteOp {
		return v&0x80 != 0
	}
	return v&0x8000 != 0
}
