package isa

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/memsim"
)

// Port is a memory-mapped I/O hook: loads and stores to its address are
// routed to Go handlers instead of simulated RAM. The debug port
// (program.go) and simple peripherals hang off ports.
type Port struct {
	Read  func(env *device.Env) uint16
	Write func(env *device.Env, v uint16)
}

// CPU is the MSP430-subset interpreter. All architectural state is
// volatile: the register file lives here and is zeroed by Reset, exactly
// like hardware losing power. Memory is the device's simulated address
// space, reached through the energy-metered Env.
type CPU struct {
	R [16]uint16

	ports map[memsim.Addr]Port

	// lastExtAddrVal is the address the most recent extension word was
	// fetched from; PC-relative (symbolic) operands resolve against it.
	lastExtAddrVal uint16

	// intDepth tracks nested interrupt service (RETI decrements).
	intDepth int
	// halted is set by the HALT debug port; the program wrapper treats it
	// as normal completion.
	halted bool

	// instructions retired since reset (diagnostics).
	retired uint64

	// Predecoded-instruction cache over the flashed image, keyed by PC.
	// Decoding is pure — the machine words fully determine the Inst — so a
	// cached entry is valid until something writes the underlying words.
	// Invalidation hangs off the code region's WriteHook, which keeps
	// self-modifying (and self-corrupting, as in Fig. 7) programs faithful:
	// a wild store into code drops the stale entries and the next fetch
	// re-decodes whatever garbage is there now.
	dcRegion *memsim.Region
	dcOrg    uint16
	dcEnd    uint16
	dcInst   []Inst
	dcValid  []bool
}

// NewCPU returns a CPU with no ports mapped.
func NewCPU() *CPU {
	return &CPU{ports: make(map[memsim.Addr]Port)}
}

// MapPort installs an MMIO port at addr (word access).
func (c *CPU) MapPort(addr memsim.Addr, p Port) { c.ports[addr] = p }

// Reset models a power-on reset: volatile register state clears, execution
// restarts at the reset vector (entry), with a fresh stack.
func (c *CPU) Reset(entry, stackTop uint16) {
	c.R = [16]uint16{}
	c.R[PC] = entry
	c.R[SP] = stackTop
	c.intDepth = 0
	c.halted = false
}

// Halted reports whether the HALT port stopped the program.
func (c *CPU) Halted() bool { return c.halted }

// Retired returns the number of instructions executed since reset.
func (c *CPU) Retired() uint64 { return c.retired }

// InInterrupt reports whether an ISR is executing.
func (c *CPU) InInterrupt() bool { return c.intDepth > 0 }

// Interrupt vectors control to the handler: the hardware pushes PC then
// SR, clears GIE, and loads the vector.
func (c *CPU) Interrupt(env *device.Env, vector uint16) {
	c.push(env, c.R[PC])
	c.push(env, c.R[SR])
	c.R[SR] &^= GIE
	c.R[PC] = vector
	c.intDepth++
}

// EnableDecodeCache attaches a predecoded-instruction cache covering
// sizeBytes of region r starting at org (the flashed image). It registers
// an invalidation hook on the region, composing with any hook already
// installed.
func (c *CPU) EnableDecodeCache(r *memsim.Region, org uint16, sizeBytes int) {
	n := sizeBytes / 2
	if n <= 0 {
		return
	}
	c.dcRegion = r
	c.dcOrg = org
	c.dcEnd = org + uint16(2*n)
	c.dcInst = make([]Inst, n)
	c.dcValid = make([]bool, n)
	prev := r.WriteHook
	r.WriteHook = func(a memsim.Addr, bytes int) {
		if prev != nil {
			prev(a, bytes)
		}
		c.invalidate(uint16(a), bytes)
	}
}

// invalidate drops cache entries that could decode through any written word.
// An instruction spans up to two extension words, so a write to word i can
// change instructions starting at words i-2 .. i.
func (c *CPU) invalidate(a uint16, bytes int) {
	lo := (int(a)-int(c.dcOrg))/2 - 2
	hi := (int(a) + bytes - 1 - int(c.dcOrg)) / 2
	if lo < 0 {
		lo = 0
	}
	if hi >= len(c.dcValid) {
		hi = len(c.dcValid) - 1
	}
	for i := lo; i <= hi; i++ {
		c.dcValid[i] = false
	}
}

// Step executes one instruction. Power failure unwinds from inside the
// memory accesses; a decode failure (executing garbage or data) panics
// with a MemoryFault-equivalent wedge, matching what an MCU does when PC
// walks into a corrupted region.
func (c *CPU) Step(env *device.Env) error {
	c.retired++
	pc0 := c.R[PC]
	if c.dcValid != nil && pc0 >= c.dcOrg && pc0 < c.dcEnd && pc0&1 == 0 {
		i := int(pc0-c.dcOrg) / 2
		if c.dcValid[i] {
			c.stepCached(env, c.dcInst[i])
			return nil
		}
		inst, err := c.fetchDecode(env, pc0)
		if err != nil {
			return err
		}
		if i+inst.Words <= len(c.dcInst) {
			c.dcInst[i] = inst
			c.dcValid[i] = true
		}
		c.dispatch(env, inst)
		return nil
	}
	inst, err := c.fetchDecode(env, pc0)
	if err != nil {
		return err
	}
	c.dispatch(env, inst)
	return nil
}

func (c *CPU) fetchDecode(env *device.Env, pc0 uint16) (Inst, error) {
	w0 := c.fetch(env)
	inst, err := Decode(w0, func() (uint16, error) {
		// Extension words fetch through the same metered path. Their
		// addresses matter for PC-relative (symbolic) operands.
		c.lastExtAddrVal = c.R[PC]
		return c.fetch(env), nil
	})
	if err != nil {
		return Inst{}, fmt.Errorf("isa: at %#04x: %w", pc0, err)
	}
	return inst, nil
}

// stepCached replays a predecoded instruction with cycle-for-cycle the same
// timing, PC movement, and access accounting as the fetch-and-decode path —
// including mid-instruction power failure points between word fetches and
// the quirk that PC-relative operands resolve against the address of the
// last extension word.
func (c *CPU) stepCached(env *device.Env, inst Inst) {
	for w := 0; w < inst.Words; w++ {
		if w > 0 {
			c.lastExtAddrVal = c.R[PC]
		}
		env.Compute(device.CyclesLoad)
		c.dcRegion.Reads++
		c.R[PC] += 2
	}
	c.dispatch(env, inst)
}

func (c *CPU) dispatch(env *device.Env, inst Inst) {
	switch inst.Kind {
	case KindJump:
		c.execJump(inst)
	case KindOne:
		c.execOne(env, inst)
	case KindTwo:
		c.execTwo(env, inst)
	}
}

func (c *CPU) fetch(env *device.Env) uint16 {
	w := c.loadWord(env, memsim.Addr(c.R[PC]))
	c.R[PC] += 2
	return w
}

// loadWord reads through a port or simulated memory.
func (c *CPU) loadWord(env *device.Env, a memsim.Addr) uint16 {
	if p, ok := c.ports[a]; ok {
		env.Compute(device.CyclesLoad)
		if p.Read != nil {
			return p.Read(env)
		}
		return 0
	}
	return env.LoadWord(a)
}

func (c *CPU) storeWord(env *device.Env, a memsim.Addr, v uint16) {
	if p, ok := c.ports[a]; ok {
		env.Compute(device.CyclesStore)
		if p.Write != nil {
			p.Write(env, v)
		}
		return
	}
	env.StoreWord(a, v)
}

func (c *CPU) loadByte(env *device.Env, a memsim.Addr) uint16 {
	if _, ok := c.ports[a]; ok {
		return c.loadWord(env, a) & 0xFF
	}
	return uint16(env.LoadByte(a))
}

func (c *CPU) storeByte(env *device.Env, a memsim.Addr, v uint16) {
	if _, ok := c.ports[a]; ok {
		c.storeWord(env, a, v&0xFF)
		return
	}
	env.StoreByte(a, byte(v))
}

func (c *CPU) push(env *device.Env, v uint16) {
	c.R[SP] -= 2
	c.storeWord(env, memsim.Addr(c.R[SP]), v)
}

func (c *CPU) pop(env *device.Env) uint16 {
	v := c.loadWord(env, memsim.Addr(c.R[SP]))
	c.R[SP] += 2
	return v
}

// resolved is an evaluated operand: a value plus, for memory operands, the
// address to write back to.
type resolved struct {
	value uint16
	addr  memsim.Addr
	isReg bool
	reg   int
	isMem bool
}

// evalOperand reads an operand's value and location.
func (c *CPU) evalOperand(env *device.Env, o Operand, byteOp bool) resolved {
	if v, ok := ConstGen(o); ok {
		return resolved{value: maskByte(v, byteOp)}
	}
	switch o.Mode {
	case ModeRegister:
		return resolved{value: maskByte(c.R[o.Reg], byteOp), isReg: true, reg: o.Reg}
	case ModeIndexed:
		var addr memsim.Addr
		switch o.Reg {
		case SR: // absolute
			addr = memsim.Addr(o.X)
		case PC: // symbolic: X relative to the extension word's address
			addr = memsim.Addr(c.lastExtAddrVal + o.X)
		default:
			addr = memsim.Addr(c.R[o.Reg] + o.X)
		}
		return c.memOperand(env, addr, byteOp)
	case ModeIndirect:
		return c.memOperand(env, memsim.Addr(c.R[o.Reg]), byteOp)
	case ModeIndirectInc:
		if o.Reg == PC { // immediate
			return resolved{value: maskByte(o.X, byteOp)}
		}
		addr := memsim.Addr(c.R[o.Reg])
		step := uint16(2)
		if byteOp {
			step = 1
		}
		c.R[o.Reg] += step
		return c.memOperand(env, addr, byteOp)
	}
	return resolved{}
}

func (c *CPU) memOperand(env *device.Env, addr memsim.Addr, byteOp bool) resolved {
	r := resolved{addr: addr, isMem: true}
	if byteOp {
		r.value = c.loadByte(env, addr)
	} else {
		r.value = c.loadWord(env, addr)
	}
	return r
}

// writeBack stores a result into an evaluated destination.
func (c *CPU) writeBack(env *device.Env, dst resolved, v uint16, byteOp bool) {
	switch {
	case dst.isReg:
		if byteOp {
			c.R[dst.reg] = v & 0xFF // byte ops clear the high byte
		} else {
			c.R[dst.reg] = v
		}
	case dst.isMem:
		if byteOp {
			c.storeByte(env, dst.addr, v)
		} else {
			c.storeWord(env, dst.addr, v)
		}
	}
}

func maskByte(v uint16, byteOp bool) uint16 {
	if byteOp {
		return v & 0xFF
	}
	return v
}

func (c *CPU) execJump(i Inst) {
	taken := false
	sr := c.R[SR]
	switch i.Op {
	case JNE:
		taken = sr&FlagZ == 0
	case JEQ:
		taken = sr&FlagZ != 0
	case JNC:
		taken = sr&FlagC == 0
	case JC:
		taken = sr&FlagC != 0
	case JN:
		taken = sr&FlagN != 0
	case JGE:
		taken = (sr&FlagN != 0) == (sr&FlagV != 0)
	case JL:
		taken = (sr&FlagN != 0) != (sr&FlagV != 0)
	case JMP:
		taken = true
	}
	if taken {
		c.R[PC] += uint16(2 * i.Offset)
	}
}

func (c *CPU) execOne(env *device.Env, i Inst) {
	if i.Op == Op2RETI {
		c.R[SR] = c.pop(env)
		c.R[PC] = c.pop(env)
		if c.intDepth > 0 {
			c.intDepth--
		}
		return
	}
	src := c.evalOperand(env, i.Src, i.Byte)
	env.Compute(1)
	switch i.Op {
	case Op2RRC:
		carryIn := c.R[SR] & FlagC
		v := src.value
		newC := v & 1
		v >>= 1
		if carryIn != 0 {
			if i.Byte {
				v |= 0x80
			} else {
				v |= 0x8000
			}
		}
		c.setFlagsLogic(v, i.Byte)
		c.setFlag(FlagC, newC != 0)
		c.setFlag(FlagV, false)
		c.writeBack(env, src, v, i.Byte)
	case Op2RRA:
		v := src.value
		newC := v & 1
		if i.Byte {
			v = (v >> 1) | (v & 0x80)
		} else {
			v = (v >> 1) | (v & 0x8000)
		}
		c.setFlagsLogic(v, i.Byte)
		c.setFlag(FlagC, newC != 0)
		c.setFlag(FlagV, false)
		c.writeBack(env, src, v, i.Byte)
	case Op2SWPB:
		v := src.value>>8 | src.value<<8
		c.writeBack(env, src, v, false)
	case Op2SXT:
		v := src.value & 0xFF
		if v&0x80 != 0 {
			v |= 0xFF00
		}
		c.setFlagsLogic(v, false)
		c.setFlag(FlagC, v != 0)
		c.setFlag(FlagV, false)
		c.writeBack(env, src, v, false)
	case Op2PUSH:
		c.push(env, src.value)
	case Op2CALL:
		c.push(env, c.R[PC])
		c.R[PC] = src.value
	}
}

func (c *CPU) execTwo(env *device.Env, i Inst) {
	src := c.evalOperand(env, i.Src, i.Byte)
	dst := c.evalOperand(env, i.Dst, i.Byte)
	env.Compute(1)
	s, d := src.value, dst.value
	switch i.Op {
	case OpMOV:
		c.writeBack(env, dst, s, i.Byte)
	case OpADD:
		c.arith(env, dst, d, s, 0, i.Byte, true)
	case OpADDC:
		c.arith(env, dst, d, s, c.carry(), i.Byte, true)
	case OpSUB:
		c.arith(env, dst, d, ^s&mask(i.Byte), 1, i.Byte, true)
	case OpSUBC:
		c.arith(env, dst, d, ^s&mask(i.Byte), c.carry(), i.Byte, true)
	case OpCMP:
		c.arith(env, dst, d, ^s&mask(i.Byte), 1, i.Byte, false)
	case OpBIT:
		v := d & s
		c.setFlagsLogic(v, i.Byte)
		c.setFlag(FlagC, v != 0)
		c.setFlag(FlagV, false)
	case OpBIC:
		c.writeBack(env, dst, d&^s, i.Byte)
	case OpBIS:
		c.writeBack(env, dst, d|s, i.Byte)
	case OpXOR:
		v := (d ^ s) & mask(i.Byte)
		c.setFlagsLogic(v, i.Byte)
		c.setFlag(FlagC, v != 0)
		c.setFlag(FlagV, signBit(d, i.Byte) && signBit(s, i.Byte))
		c.writeBack(env, dst, v, i.Byte)
	case OpAND:
		v := d & s & mask(i.Byte)
		c.setFlagsLogic(v, i.Byte)
		c.setFlag(FlagC, v != 0)
		c.setFlag(FlagV, false)
		c.writeBack(env, dst, v, i.Byte)
	case OpDADD:
		v, carry := bcdAdd(d, s, c.carry(), i.Byte)
		c.setFlagsLogic(v, i.Byte)
		c.setFlag(FlagC, carry)
		c.writeBack(env, dst, v, i.Byte)
	}
}

// arith performs d + s + cin with full flag semantics, optionally writing
// back (CMP/BIT do not).
func (c *CPU) arith(env *device.Env, dst resolved, d, s, cin uint16, byteOp, write bool) {
	m := mask(byteOp)
	sum32 := uint32(d&m) + uint32(s&m) + uint32(cin)
	v := uint16(sum32) & m
	carry := sum32 > uint32(m)
	dN, sN, rN := signBit(d, byteOp), signBit(s, byteOp), signBit(v, byteOp)
	overflow := (dN == sN) && (rN != dN)
	c.setFlagsLogic(v, byteOp)
	c.setFlag(FlagC, carry)
	c.setFlag(FlagV, overflow)
	if write {
		c.writeBack(env, dst, v, byteOp)
	}
}

// bcdAdd performs the decimal (BCD) addition of DADD: each 4-bit digit
// adds with decimal carry. Returns the packed-BCD sum and the carry out of
// the most significant digit.
func bcdAdd(d, s, cin uint16, byteOp bool) (uint16, bool) {
	digits := 4
	if byteOp {
		digits = 2
	}
	var out uint16
	carry := cin
	for i := 0; i < digits; i++ {
		shift := uint(4 * i)
		sum := (d>>shift)&0xF + (s>>shift)&0xF + carry
		if sum > 9 {
			sum -= 10
			carry = 1
		} else {
			carry = 0
		}
		out |= sum << shift
	}
	return out, carry == 1
}

func (c *CPU) carry() uint16 {
	if c.R[SR]&FlagC != 0 {
		return 1
	}
	return 0
}

func (c *CPU) setFlag(f uint16, on bool) {
	if on {
		c.R[SR] |= f
	} else {
		c.R[SR] &^= f
	}
}

func (c *CPU) setFlagsLogic(v uint16, byteOp bool) {
	c.setFlag(FlagZ, v&mask(byteOp) == 0)
	c.setFlag(FlagN, signBit(v, byteOp))
}

func mask(byteOp bool) uint16 {
	if byteOp {
		return 0xFF
	}
	return 0xFFFF
}

func signBit(v uint16, byteOp bool) bool {
	if byteOp {
		return v&0x80 != 0
	}
	return v&0x8000 != 0
}
