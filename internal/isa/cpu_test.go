package isa

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/units"
)

// cpuRig builds a powered device and a CPU with a scratch program area.
func cpuRig(t *testing.T) (*device.Device, *device.Env, *CPU) {
	t.Helper()
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(10), Voc: 3.3}, 1)
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	env := &device.Env{D: d}
	c := NewCPU()
	c.Reset(0x4500, uint16(memsim.SRAMBase)+uint16(memsim.SRAMSize))
	return d, env, c
}

// load burns words at addr.
func load(t *testing.T, d *device.Device, addr uint16, words ...uint16) {
	t.Helper()
	for i, w := range words {
		if err := d.Mem.WriteWord(memsim.Addr(addr)+memsim.Addr(2*i), w); err != nil {
			t.Fatal(err)
		}
	}
}

// run assembles a snippet at 0x4500 (with a trailing jmp $ guard), executes
// n instructions, and returns the CPU.
func run(t *testing.T, src string, n int) (*device.Device, *CPU) {
	t.Helper()
	d, env, c := cpuRig(t)
	img, err := Assemble(".org 0x4500\n" + src + "\nhang: jmp hang\n")
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	for i, w := range img.Words {
		if err := d.Mem.WriteWord(memsim.Addr(img.Org)+memsim.Addr(2*i), w); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset(img.Entry, uint16(memsim.SRAMBase)+uint16(memsim.SRAMSize))
	for i := 0; i < n; i++ {
		if err := c.Step(env); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return d, c
}

func TestMovAddImmediates(t *testing.T) {
	_, c := run(t, `
	mov #0x1234, r5
	mov r5, r6
	add #0x1111, r6
	`, 3)
	if c.R[5] != 0x1234 || c.R[6] != 0x2345 {
		t.Fatalf("r5=%#x r6=%#x", c.R[5], c.R[6])
	}
}

func TestArithmeticFlags(t *testing.T) {
	cases := []struct {
		src   string
		steps int
		check func(t *testing.T, c *CPU)
	}{
		{"mov #0xFFFF, r5\nadd #1, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 0 {
				t.Fatalf("r5=%#x", c.R[5])
			}
			if c.R[SR]&FlagZ == 0 || c.R[SR]&FlagC == 0 {
				t.Fatalf("flags=%#x want Z,C", c.R[SR])
			}
		}},
		{"mov #0x7FFF, r5\nadd #1, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 0x8000 {
				t.Fatalf("r5=%#x", c.R[5])
			}
			if c.R[SR]&FlagV == 0 || c.R[SR]&FlagN == 0 {
				t.Fatalf("flags=%#x want V,N", c.R[SR])
			}
		}},
		{"mov #5, r5\nsub #7, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 0xFFFE {
				t.Fatalf("r5=%#x", c.R[5])
			}
			// Borrow: C clear on MSP430 when the subtraction borrows.
			if c.R[SR]&FlagC != 0 {
				t.Fatalf("flags=%#x want no C (borrow)", c.R[SR])
			}
			if c.R[SR]&FlagN == 0 {
				t.Fatalf("flags=%#x want N", c.R[SR])
			}
		}},
		{"mov #7, r5\nsub #7, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 0 || c.R[SR]&FlagZ == 0 || c.R[SR]&FlagC == 0 {
				t.Fatalf("r5=%#x flags=%#x", c.R[5], c.R[SR])
			}
		}},
		{"mov #0x0F0F, r5\nand #0x00FF, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 0x000F {
				t.Fatalf("r5=%#x", c.R[5])
			}
			if c.R[SR]&FlagC == 0 { // C = !Z for logic ops
				t.Fatalf("flags=%#x want C", c.R[SR])
			}
		}},
		{"mov #0xAAAA, r5\nxor #0xAAAA, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 0 || c.R[SR]&FlagZ == 0 {
				t.Fatalf("r5=%#x flags=%#x", c.R[5], c.R[SR])
			}
		}},
		{"mov #0x00F0, r5\nbis #0x000F, r5\nbic #0x0030, r5", 3, func(t *testing.T, c *CPU) {
			if c.R[5] != 0x00CF {
				t.Fatalf("r5=%#x", c.R[5])
			}
		}},
		{"mov #6, r5\ncmp #6, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[5] != 6 {
				t.Fatal("cmp must not write")
			}
			if c.R[SR]&FlagZ == 0 {
				t.Fatalf("flags=%#x", c.R[SR])
			}
		}},
		{"mov #0x8001, r5\nbit #0x8000, r5", 2, func(t *testing.T, c *CPU) {
			if c.R[SR]&FlagN == 0 || c.R[SR]&FlagZ != 0 {
				t.Fatalf("flags=%#x", c.R[SR])
			}
		}},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			_, c := run(t, tc.src, tc.steps)
			tc.check(t, c)
		})
	}
}

func TestCarryChainAddc(t *testing.T) {
	// 32-bit add: 0x0001FFFF + 0x00010001 = 0x00030000.
	_, c := run(t, `
	mov #0xFFFF, r5   ; low
	mov #0x0001, r6   ; high
	add #0x0001, r5
	addc #0x0001, r6
	`, 4)
	if c.R[5] != 0x0000 || c.R[6] != 0x0003 {
		t.Fatalf("result = %#x%04x", c.R[6], c.R[5])
	}
}

func TestByteOpsClearHighByte(t *testing.T) {
	_, c := run(t, `
	mov #0x1234, r5
	add.b #0x10, r5
	`, 2)
	if c.R[5] != 0x0044 {
		t.Fatalf("r5=%#x (byte ops must clear the high byte)", c.R[5])
	}
}

func TestShiftsAndSwap(t *testing.T) {
	_, c := run(t, `
	mov #0x8002, r5
	rra r5
	mov #0x0001, r6
	rrc r6          ; C was 0 after rra (lsb of 0x8002)
	mov #0x1234, r7
	swpb r7
	mov #0x0080, r8
	sxt r8
	`, 8)
	if c.R[5] != 0xC001 {
		t.Fatalf("rra: %#x", c.R[5])
	}
	if c.R[7] != 0x3412 {
		t.Fatalf("swpb: %#x", c.R[7])
	}
	if c.R[8] != 0xFF80 {
		t.Fatalf("sxt: %#x", c.R[8])
	}
}

func TestMemoryAddressing(t *testing.T) {
	d, c := run(t, `
	mov #data, r4
	mov @r4+, r5      ; r5 = 0x1111, r4 advances
	mov @r4, r6       ; r6 = 0x2222
	mov #0x3333, 2(r4)
	mov &data, r7     ; absolute read
	jmp done
data:	.word 0x1111, 0x2222, 0x0000
done:	nop
	`, 6)
	if c.R[5] != 0x1111 || c.R[6] != 0x2222 || c.R[7] != 0x1111 {
		t.Fatalf("r5=%#x r6=%#x r7=%#x", c.R[5], c.R[6], c.R[7])
	}
	// The indexed store landed in the third data word.
	dataAddr := memsim.Addr(c.R[4] + 2)
	v, err := d.Mem.ReadWord(dataAddr)
	if err != nil || v != 0x3333 {
		t.Fatalf("indexed store: %#x err=%v", v, err)
	}
}

func TestStackOps(t *testing.T) {
	_, c := run(t, `
	mov #0xBEEF, r5
	push r5
	clr r5
	pop r6
	`, 4)
	if c.R[6] != 0xBEEF || c.R[5] != 0 {
		t.Fatalf("r5=%#x r6=%#x", c.R[5], c.R[6])
	}
	if c.R[SP] != uint16(memsim.SRAMBase)+uint16(memsim.SRAMSize) {
		t.Fatalf("sp=%#x (unbalanced)", c.R[SP])
	}
}

func TestCallRet(t *testing.T) {
	_, c := run(t, `
	mov #5, r5
	call #double
	jmp done
double:	add r5, r5
	ret
done:	nop
	`, 6)
	if c.R[5] != 10 {
		t.Fatalf("r5=%d", c.R[5])
	}
}

func TestJumpConditions(t *testing.T) {
	// Count down from 3; loop body increments r6 each pass.
	_, c := run(t, `
	mov #3, r5
	clr r6
loop:	inc r6
	dec r5
	jnz loop
	`, 2+3*3)
	if c.R[6] != 3 || c.R[5] != 0 {
		t.Fatalf("r5=%d r6=%d", c.R[5], c.R[6])
	}
}

func TestSignedJumps(t *testing.T) {
	_, c := run(t, `
	mov #0xFFFE, r5   ; -2
	cmp #1, r5        ; -2 - 1: negative
	jl less
	mov #0, r7
	jmp out
less:	mov #1, r7
out:	nop
	`, 5)
	if c.R[7] != 1 {
		t.Fatalf("jl not taken: r7=%d", c.R[7])
	}
}

func TestInterruptAndReti(t *testing.T) {
	d, env, c := cpuRig(t)
	img, err := Assemble(`
	.org 0x4500
main:	inc r5
	jmp main
isr:	inc r6
	reti
	`)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range img.Words {
		if err := d.Mem.WriteWord(memsim.Addr(img.Org)+memsim.Addr(2*i), w); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset(img.Entry, uint16(memsim.SRAMBase)+uint16(memsim.SRAMSize))
	for i := 0; i < 4; i++ {
		if err := c.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	r5Before := c.R[5]
	c.Interrupt(env, img.Symbols["isr"])
	if !c.InInterrupt() {
		t.Fatal("must be in interrupt")
	}
	for c.InInterrupt() {
		if err := c.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	if c.R[6] != 1 {
		t.Fatalf("isr did not run: r6=%d", c.R[6])
	}
	// Execution resumes in main; r5 keeps counting.
	for i := 0; i < 4; i++ {
		if err := c.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	if c.R[5] <= r5Before {
		t.Fatalf("main did not resume: r5=%d", c.R[5])
	}
}

func TestExecutingGarbageFails(t *testing.T) {
	d, env, c := cpuRig(t)
	load(t, d, 0x4500, 0x0000) // not an instruction
	c.Reset(0x4500, 0x2400)
	if err := c.Step(env); err == nil {
		t.Fatal("garbage must not execute")
	}
	_ = d
}

func TestMMIOPorts(t *testing.T) {
	d, env, c := cpuRig(t)
	var wrote uint16
	c.MapPort(0x0120, Port{
		Write: func(env *device.Env, v uint16) { wrote = v },
		Read:  func(env *device.Env) uint16 { return 0x55AA },
	})
	load(t, d, 0x4500,
		0x40B2, 0x0007, 0x0120, // mov #7, &0x0120
		0x4215, 0x0120, // mov &0x0120, r5
	)
	c.Reset(0x4500, 0x2400)
	if err := c.Step(env); err != nil {
		t.Fatal(err)
	}
	if wrote != 7 {
		t.Fatalf("port write = %#x", wrote)
	}
	if err := c.Step(env); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 0x55AA {
		t.Fatalf("port read = %#x", c.R[5])
	}
}

// TestALUAgainstReferenceModel drives random arithmetic through the CPU
// and checks results against plain Go uint16 arithmetic (property test).
func TestALUAgainstReferenceModel(t *testing.T) {
	f := func(a, b uint16, opSel uint8) bool {
		ops := []struct {
			mnem string
			ref  func(d, s uint16) uint16
		}{
			{"add", func(d, s uint16) uint16 { return d + s }},
			{"sub", func(d, s uint16) uint16 { return d - s }},
			{"and", func(d, s uint16) uint16 { return d & s }},
			{"xor", func(d, s uint16) uint16 { return d ^ s }},
			{"bis", func(d, s uint16) uint16 { return d | s }},
			{"bic", func(d, s uint16) uint16 { return d &^ s }},
		}
		op := ops[int(opSel)%len(ops)]
		src := fmt.Sprintf(`
	mov #%d, r5
	mov #%d, r6
	%s r6, r5
	`, a, b, op.mnem)
		_, c := run(t, src, 3)
		return c.R[5] == op.ref(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCarryFlagMatchesWideArithmetic checks C against 32-bit reference
// addition across random operands.
func TestCarryFlagMatchesWideArithmetic(t *testing.T) {
	f := func(a, b uint16) bool {
		src := fmt.Sprintf("mov #%d, r5\nadd #%d, r5\n", a, b)
		_, c := run(t, src, 2)
		wantC := uint32(a)+uint32(b) > 0xFFFF
		gotC := c.R[SR]&FlagC != 0
		wantZ := a+b == 0
		gotZ := c.R[SR]&FlagZ != 0
		return gotC == wantC && gotZ == wantZ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestDADDDecimalArithmetic(t *testing.T) {
	// 0199 + 0001 = 0200 in BCD (clear carry first: dadd adds C in).
	_, c := run(t, `
	clr r4            ; clears carry via flags? ensure with cmp
	mov #0x0199, r5
	clrc
	dadd #0x0001, r5
	`, 4)
	if c.R[5] != 0x0200 {
		t.Fatalf("dadd: %#04x, want 0x0200", c.R[5])
	}
	// 9999 + 0001 wraps with carry.
	_, c2 := run(t, `
	mov #0x9999, r5
	clrc
	dadd #0x0001, r5
	`, 3)
	if c2.R[5] != 0x0000 {
		t.Fatalf("dadd wrap: %#04x", c2.R[5])
	}
	if c2.R[SR]&FlagC == 0 {
		t.Fatal("decimal carry must set C")
	}
}
