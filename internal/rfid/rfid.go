// Package rfid models the RFID substrate of the paper's evaluation: an
// Impinj-style reader running a Gen2-flavored inventory loop (QUERY /
// QUERYREP / ACK), the over-the-air frame encoding the WISP firmware
// decodes in software, and the coupling between the reader's carrier and
// the target's RF harvester.
//
// The reader is both the energy source and the communication peer: its
// carrier powers the tag (via energy.RFHarvester) and its commands arrive
// as demodulated frames on the target's RF front end. EDB monitors the
// RF RX/TX lines externally and can classify messages "even if the target
// does not correctly decode them due to power failures" (§4.1.2).
package rfid

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/units"
)

// Frame type codes (first byte of every frame).
const (
	TypeQuery    byte = 0x01 // reader CMD_QUERY: opens an inventory round
	TypeQueryRep byte = 0x02 // reader CMD_QUERYREP: advances the slot counter
	TypeAck      byte = 0x03 // reader CMD_ACK: acknowledges an RN16
	TypeRN16     byte = 0x81 // tag RSP_GENERIC: 16-bit handle reply
	TypeEPC      byte = 0x82 // tag EPC reply after ACK
)

// FrameName classifies a frame for traces, using the paper's Figure 12
// labels.
func FrameName(bits []byte) string {
	if len(bits) == 0 {
		return "EMPTY"
	}
	switch bits[0] {
	case TypeQuery:
		return "CMD_QUERY"
	case TypeQueryRep:
		return "CMD_QUERYREP"
	case TypeAck:
		return "CMD_ACK"
	case TypeRN16:
		return "RSP_GENERIC"
	case TypeEPC:
		return "RSP_EPC"
	}
	return fmt.Sprintf("UNKNOWN(%#02x)", bits[0])
}

// EncodeQuery builds a CMD_QUERY frame for an inventory round.
func EncodeQuery(q int, session byte) []byte {
	return []byte{TypeQuery, byte(q), session}
}

// EncodeQueryRep builds a CMD_QUERYREP frame for a slot.
func EncodeQueryRep(slot uint16) []byte {
	return []byte{TypeQueryRep, byte(slot), byte(slot >> 8)}
}

// EncodeAck builds a CMD_ACK for an RN16 handle.
func EncodeAck(rn16 uint16) []byte {
	return []byte{TypeAck, byte(rn16), byte(rn16 >> 8)}
}

// EncodeRN16 builds the tag's RSP_GENERIC reply carrying its handle.
func EncodeRN16(rn16 uint16) []byte {
	return []byte{TypeRN16, byte(rn16), byte(rn16 >> 8)}
}

// EncodeEPC builds the tag's EPC reply.
func EncodeEPC(epc []byte) []byte {
	return append([]byte{TypeEPC}, epc...)
}

// DecodeRN16 extracts the handle from an RSP_GENERIC frame.
func DecodeRN16(bits []byte) (uint16, bool) {
	if len(bits) != 3 || bits[0] != TypeRN16 {
		return 0, false
	}
	return uint16(bits[1]) | uint16(bits[2])<<8, true
}

// ReaderConfig parameterizes the reader model.
type ReaderConfig struct {
	// TxPower is the reader's transmit power (the paper uses up to
	// 30 dBm).
	TxPower units.DBm
	// Distance is the antenna-to-tag separation (1 m in the evaluation).
	Distance units.Meters
	// QueryPeriod is the spacing between inventory commands.
	QueryPeriod units.Seconds
	// QueryRepsPerRound is how many QUERYREP follow each QUERY.
	QueryRepsPerRound int
	// CorruptProb is the probability a command arrives undecodable
	// (multipath, collisions) — EDB's external decoder separates these
	// "messages corrupted in flight from valid messages the target failed
	// to parse" (§5.3.4).
	CorruptProb float64
	// AckReplies makes the reader ACK each RN16 it hears.
	AckReplies bool
	// Seed seeds the reader's RNG.
	Seed int64
}

// DefaultReaderConfig matches the evaluation setup: 30 dBm at 1 m,
// continuously inventorying.
func DefaultReaderConfig() ReaderConfig {
	return ReaderConfig{
		TxPower:           30,
		Distance:          1.0,
		QueryPeriod:       units.MilliSeconds(65),
		QueryRepsPerRound: 3,
		CorruptProb:       0.05,
		AckReplies:        true,
		Seed:              21,
	}
}

// ReaderStats counts protocol activity from the reader's perspective.
type ReaderStats struct {
	QueriesSent   int
	CorruptedSent int
	RepliesHeard  int // all tag transmissions heard (RN16 + EPC)
	RN16Heard     int // query responses (the §5.3.4 response metric)
	AcksSent      int
}

// Reader is the RFID reader model. It owns the RF harvester (its carrier is
// the energy source) and schedules inventory commands on the simulation
// clock.
type Reader struct {
	cfg  ReaderConfig
	harv *energy.RFHarvester
	rng  *sim.RNG

	target *device.Device
	slot   uint16
	inRep  int

	stats ReaderStats

	running bool
	next    *sim.Event
}

// NewReader builds a reader and its coupled harvester.
func NewReader(cfg ReaderConfig) (*Reader, *energy.RFHarvester) {
	h := energy.NewRFHarvester()
	h.TxPower = cfg.TxPower
	h.Distance = cfg.Distance
	r := &Reader{cfg: cfg, harv: h, rng: sim.NewRNG(cfg.Seed)}
	return r, h
}

// Stats returns the reader-side counters.
func (r *Reader) Stats() ReaderStats { return r.stats }

// Harvester returns the carrier-coupled harvester.
func (r *Reader) Harvester() *energy.RFHarvester { return r.harv }

// Attach points the reader at a target device and hooks the tag's
// backscatter transmissions.
func (r *Reader) Attach(t *device.Device) {
	r.target = t
	t.RF.OnTransmit = r.onBackscatter
}

// Start begins the continuous inventory loop.
func (r *Reader) Start() {
	if r.running || r.target == nil {
		return
	}
	r.running = true
	r.harv.CarrierOn = true
	r.schedule()
}

// Stop halts the inventory loop and drops the carrier (the tag loses its
// energy source).
func (r *Reader) Stop() {
	r.running = false
	r.harv.CarrierOn = false
	if r.next != nil {
		r.next.Cancel()
		r.next = nil
	}
}

func (r *Reader) schedule() {
	period := r.target.Clock.ToCycles(units.Seconds(
		r.rng.Jitter(float64(r.cfg.QueryPeriod), 0.15)))
	if period == 0 {
		period = 1
	}
	r.next = r.target.Clock.ScheduleAfter(period, r.tick)
}

func (r *Reader) tick() {
	if !r.running {
		return
	}
	var bits []byte
	if r.inRep == 0 {
		bits = EncodeQuery(4, 0)
		r.inRep = r.cfg.QueryRepsPerRound
	} else {
		r.slot++
		bits = EncodeQueryRep(r.slot)
		r.inRep--
	}
	corrupted := r.rng.Bernoulli(r.cfg.CorruptProb)
	r.stats.QueriesSent++
	if corrupted {
		r.stats.CorruptedSent++
	}
	r.target.RF.Deliver(device.RFFrame{Bits: bits, Corrupted: corrupted})
	r.schedule()
}

// onBackscatter hears the tag's reply.
func (r *Reader) onBackscatter(at sim.Cycles, f device.RFFrame) {
	if rn, ok := DecodeRN16(f.Bits); ok {
		r.stats.RepliesHeard++
		r.stats.RN16Heard++
		if r.cfg.AckReplies && r.running {
			r.stats.AcksSent++
			// The ACK goes out after a short turnaround.
			r.target.Clock.ScheduleAfter(r.target.Clock.ToCycles(units.MicroSeconds(500)), func() {
				if r.running {
					r.target.RF.Deliver(device.RFFrame{Bits: EncodeAck(rn)})
				}
			})
		}
		return
	}
	if len(f.Bits) > 0 && f.Bits[0] == TypeEPC {
		r.stats.RepliesHeard++
	}
}

// ResponseRate returns query responses (RN16 replies) heard per query
// sent — the §5.3.4 metric ("the application responded 86 % of the time").
func (r *Reader) ResponseRate() float64 {
	if r.stats.QueriesSent == 0 {
		return 0
	}
	return float64(r.stats.RN16Heard) / float64(r.stats.QueriesSent)
}
