package rfid

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/units"
)

func TestFrameNames(t *testing.T) {
	cases := []struct {
		bits []byte
		want string
	}{
		{EncodeQuery(4, 0), "CMD_QUERY"},
		{EncodeQueryRep(7), "CMD_QUERYREP"},
		{EncodeAck(0x1234), "CMD_ACK"},
		{EncodeRN16(0xABCD), "RSP_GENERIC"},
		{EncodeEPC([]byte{1, 2}), "RSP_EPC"},
		{nil, "EMPTY"},
		{[]byte{0x77}, "UNKNOWN(0x77)"},
	}
	for i, c := range cases {
		if got := FrameName(c.bits); got != c.want {
			t.Errorf("case %d: %q want %q", i, got, c.want)
		}
	}
}

func TestRN16RoundTrip(t *testing.T) {
	f := func(rn uint16) bool {
		got, ok := DecodeRN16(EncodeRN16(rn))
		return ok && got == rn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeRN16([]byte{1, 2, 3}); ok {
		t.Fatal("wrong type must not decode")
	}
	if _, ok := DecodeRN16(EncodeRN16(1)[:2]); ok {
		t.Fatal("short frame must not decode")
	}
}

func TestReaderInventoryLoop(t *testing.T) {
	cfg := DefaultReaderConfig()
	cfg.QueryPeriod = units.MilliSeconds(5)
	cfg.CorruptProb = 0
	reader, harv := NewReader(cfg)
	d := device.NewWISP5(harv, 51)
	reader.Attach(d)
	reader.Start()
	defer reader.Stop()

	var frames []device.RFFrame
	d.RF.SubscribeRx(func(f device.RFFrame) { frames = append(frames, f) })
	d.Clock.Advance(d.Clock.ToCycles(units.MilliSeconds(100)))

	st := reader.Stats()
	if st.QueriesSent < 10 {
		t.Fatalf("queries = %d", st.QueriesSent)
	}
	// Round structure: a QUERY followed by QueryRepsPerRound QUERYREPs.
	var q, qr int
	for _, f := range frames {
		switch f.Bits[0] {
		case TypeQuery:
			q++
		case TypeQueryRep:
			qr++
		}
	}
	if q == 0 || qr == 0 {
		t.Fatalf("q=%d qr=%d", q, qr)
	}
	ratio := float64(qr) / float64(q)
	if ratio < 2 || ratio > 4 {
		t.Fatalf("rep/query ratio = %v, want ~3", ratio)
	}
}

func TestReaderStopDropsCarrier(t *testing.T) {
	reader, harv := NewReader(DefaultReaderConfig())
	d := device.NewWISP5(harv, 52)
	reader.Attach(d)
	reader.Start()
	if !harv.CarrierOn {
		t.Fatal("start must raise the carrier")
	}
	reader.Stop()
	if harv.CarrierOn {
		t.Fatal("stop must drop the carrier")
	}
	n := d.RF.Pending()
	d.Clock.Advance(d.Clock.ToCycles(units.Seconds(1)))
	if d.RF.Pending() != n {
		t.Fatal("stopped reader must not deliver")
	}
}

func TestReaderHearsRepliesAndAcks(t *testing.T) {
	cfg := DefaultReaderConfig()
	cfg.QueryPeriod = units.MilliSeconds(5)
	reader, harv := NewReader(cfg)
	d := device.NewWISP5(harv, 53)
	reader.Attach(d)
	reader.Start()
	defer reader.Stop()

	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	env := &device.Env{D: d}
	env.RFTransmit(EncodeRN16(0xBEEF))
	if reader.Stats().RN16Heard != 1 {
		t.Fatal("reader must hear the RN16")
	}
	// The ACK arrives after the turnaround.
	d.Clock.Advance(d.Clock.ToCycles(units.MilliSeconds(1)))
	found := false
	for d.RF.Pending() > 0 {
		f, ok, _ := env.RFReceive()
		if ok && f.Bits[0] == TypeAck {
			found = true
		}
	}
	if !found {
		t.Fatal("tag must receive the ACK")
	}
	if reader.Stats().AcksSent != 1 {
		t.Fatal("ack count")
	}
}

func TestCorruptionRate(t *testing.T) {
	cfg := DefaultReaderConfig()
	cfg.QueryPeriod = units.MilliSeconds(1)
	cfg.CorruptProb = 0.3
	reader, harv := NewReader(cfg)
	d := device.NewWISP5(harv, 54)
	reader.Attach(d)
	reader.Start()
	defer reader.Stop()
	d.Clock.Advance(d.Clock.ToCycles(units.Seconds(2)))
	st := reader.Stats()
	frac := float64(st.CorruptedSent) / float64(st.QueriesSent)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("corruption fraction = %v, want ~0.3", frac)
	}
}

func TestResponseRateMetric(t *testing.T) {
	reader, _ := NewReader(DefaultReaderConfig())
	if reader.ResponseRate() != 0 {
		t.Fatal("no queries yet")
	}
	reader.stats.QueriesSent = 100
	reader.stats.RN16Heard = 86
	if reader.ResponseRate() != 0.86 {
		t.Fatalf("rate = %v", reader.ResponseRate())
	}
}

func TestHarvesterCoupling(t *testing.T) {
	reader, harv := NewReader(DefaultReaderConfig())
	_ = reader
	if harv.TxPower != 30 || harv.Distance != 1.0 {
		t.Fatalf("harvester not configured from reader: %+v", harv)
	}
	if harv.Current(1.5) <= 0 {
		t.Fatal("carrier must deliver harvest current")
	}
}

func TestEndToEndInventoryOnWISPFirmware(t *testing.T) {
	// Integration: real firmware decodes and replies under the reader's
	// power (energy and protocol coupled through the same model).
	cfg := DefaultReaderConfig()
	cfg.CorruptProb = 0
	reader, harv := NewReader(cfg)
	d := device.NewWISP5(harv, 55)

	prog := &echoTag{}
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	reader.Attach(d)
	reader.Start()
	defer reader.Stop()
	if _, err := r.RunFor(units.Seconds(2)); err != nil {
		t.Fatal(err)
	}
	st := reader.Stats()
	if st.RN16Heard == 0 {
		t.Fatalf("no replies heard: %+v", st)
	}
	if reader.ResponseRate() <= 0.3 {
		t.Fatalf("response rate = %v", reader.ResponseRate())
	}
}

// echoTag is a minimal tag firmware replying RN16 to every query.
type echoTag struct{}

func (echoTag) Name() string                 { return "echo-tag" }
func (echoTag) Flash(d *device.Device) error { return nil }
func (echoTag) Main(env *device.Env) {
	for {
		f, ok, _ := env.RFReceive()
		if !ok {
			env.SleepFor(units.MilliSeconds(2))
			continue
		}
		if f.Bits[0] == TypeQuery || f.Bits[0] == TypeQueryRep {
			env.RFTransmit(EncodeRN16(0x1234))
		}
	}
}

var _ energy.Harvester = (*energy.RFHarvester)(nil)
