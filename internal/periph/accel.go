// Package periph provides the peripherals attached to the target's buses:
// the I2C accelerometer used by the activity-recognition application, and a
// temperature sensor. Sensor readings are synthetic but statistically
// shaped so a classifier has something real to classify.
package periph

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Accelerometer register map (ADXL-flavored).
const (
	RegWhoAmI  = 0x00
	RegStatus  = 0x01
	RegDataX   = 0x02 // X low, X high, then Y, Z pairs
	WhoAmIByte = 0xE5
)

// AccelAddr is the accelerometer's 7-bit I2C address.
const AccelAddr byte = 0x1D

// MotionPhase describes what the simulated wearer is doing.
type MotionPhase int

const (
	// Stationary: gravity plus small sensor noise.
	Stationary MotionPhase = iota
	// Moving: large oscillating acceleration on all axes.
	Moving
)

func (p MotionPhase) String() string {
	if p == Moving {
		return "moving"
	}
	return "stationary"
}

// Accelerometer is a 3-axis I2C accelerometer producing a synthetic motion
// trace: the wearer alternates stationary and moving phases on a schedule,
// with Gaussian sensor noise. Counts are signed 13-bit at 4 mg/LSB, like an
// ADXL345.
type Accelerometer struct {
	clock *sim.Clock
	rng   *sim.RNG

	// PhasePeriod is how long each stationary/moving phase lasts.
	PhasePeriod units.Seconds
	// NoiseLSB is the 1-σ sensor noise in counts.
	NoiseLSB float64
	// MovingAmpLSB is the oscillation amplitude while moving.
	MovingAmpLSB float64

	// Forced, when non-nil, pins the phase (tests use it).
	Forced *MotionPhase

	latched [6]byte // current 3-axis sample, little-endian pairs
	reads   uint64
}

// NewAccelerometer builds the sensor against the device clock.
func NewAccelerometer(clock *sim.Clock, rng *sim.RNG) *Accelerometer {
	return &Accelerometer{
		clock:        clock,
		rng:          rng,
		PhasePeriod:  units.Seconds(2),
		NoiseLSB:     4,
		MovingAmpLSB: 80,
	}
}

// I2CAddr implements device.I2CDevice.
func (a *Accelerometer) I2CAddr() byte { return AccelAddr }

// Phase returns the wearer's current motion phase.
func (a *Accelerometer) Phase() MotionPhase {
	if a.Forced != nil {
		return *a.Forced
	}
	t := float64(a.clock.Time())
	period := float64(a.PhasePeriod)
	if period <= 0 {
		period = 2
	}
	if int(t/period)%2 == 1 {
		return Moving
	}
	return Stationary
}

// sample returns one axis reading in counts.
func (a *Accelerometer) sample(axis int) int16 {
	base := 0.0
	if axis == 2 {
		base = 250 // gravity on Z: 1 g ≈ 250 LSB at 4 mg/LSB
	}
	v := base + a.rng.Gaussian(0, a.NoiseLSB)
	if a.Phase() == Moving {
		// Oscillation with per-sample randomized phase: the classifier
		// keys on variance, not waveform shape.
		v += a.MovingAmpLSB * (2*a.rng.Float64() - 1)
	}
	if v > 4095 {
		v = 4095
	}
	if v < -4096 {
		v = -4096
	}
	return int16(v)
}

// ReadReg implements device.I2CDevice. Reading the first data register
// latches a fresh 3-axis sample; subsequent registers return its bytes.
func (a *Accelerometer) ReadReg(reg byte) byte {
	switch {
	case reg == RegWhoAmI:
		return WhoAmIByte
	case reg == RegStatus:
		return 0x80 // data ready
	case reg >= RegDataX && reg < RegDataX+6:
		idx := int(reg - RegDataX)
		if idx == 0 {
			a.latch()
		}
		return a.latched[idx]
	}
	return 0
}

// WriteReg implements device.I2CDevice (configuration writes are accepted
// and ignored — the simulated part is always in measure mode).
func (a *Accelerometer) WriteReg(reg byte, val byte) {}

// Reads returns the number of 3-axis samples latched.
func (a *Accelerometer) Reads() uint64 { return a.reads }

// latch captures a fresh 3-axis sample into the data registers.
func (a *Accelerometer) latch() {
	a.reads++
	for axis := 0; axis < 3; axis++ {
		v := uint16(a.sample(axis))
		a.latched[2*axis] = byte(v)
		a.latched[2*axis+1] = byte(v >> 8)
	}
}

// TempSensor is a minimal I2C temperature sensor (slow drift around 23 °C).
type TempSensor struct {
	clock *sim.Clock
	rng   *sim.RNG
}

// NewTempSensor builds the sensor.
func NewTempSensor(clock *sim.Clock, rng *sim.RNG) *TempSensor {
	return &TempSensor{clock: clock, rng: rng}
}

// TempAddr is the temperature sensor's I2C address.
const TempAddr byte = 0x48

// I2CAddr implements device.I2CDevice.
func (t *TempSensor) I2CAddr() byte { return TempAddr }

// ReadReg implements device.I2CDevice: register 0 returns degrees C as a
// byte with slow sinusoid-free drift (deterministic in the clock).
func (t *TempSensor) ReadReg(reg byte) byte {
	if reg != 0 {
		return 0
	}
	base := 23.0 + float64(int(t.clock.Time())%7)/10 + t.rng.Gaussian(0, 0.2)
	return byte(base)
}

// WriteReg implements device.I2CDevice.
func (t *TempSensor) WriteReg(reg byte, val byte) {}
