package periph

import (
	"testing"

	"repro/internal/sim"
)

func newAccel() (*Accelerometer, *sim.Clock) {
	clock := sim.NewClock(4_000_000)
	return NewAccelerometer(clock, sim.NewRNG(77)), clock
}

func TestWhoAmIAndStatus(t *testing.T) {
	a, _ := newAccel()
	if a.ReadReg(RegWhoAmI) != WhoAmIByte {
		t.Fatal("who-am-i")
	}
	if a.ReadReg(RegStatus)&0x80 == 0 {
		t.Fatal("data-ready must be set")
	}
	if a.ReadReg(0x7F) != 0 {
		t.Fatal("unknown register must read zero")
	}
	a.WriteReg(0x2D, 0x08) // config writes accepted silently
}

func readSample(a *Accelerometer) [3]int16 {
	var out [3]int16
	for axis := 0; axis < 3; axis++ {
		lo := a.ReadReg(byte(RegDataX + 2*axis))
		hi := a.ReadReg(byte(RegDataX + 2*axis + 1))
		out[axis] = int16(uint16(lo) | uint16(hi)<<8)
	}
	return out
}

func TestStationaryShowsGravityOnZ(t *testing.T) {
	a, _ := newAccel()
	phase := Stationary
	a.Forced = &phase
	var sumZ, sumX float64
	n := 200
	for i := 0; i < n; i++ {
		s := readSample(a)
		sumZ += float64(s[2])
		sumX += float64(s[0])
	}
	if z := sumZ / float64(n); z < 230 || z > 270 {
		t.Fatalf("mean Z = %v, want ~250 (1 g)", z)
	}
	if x := sumX / float64(n); x < -20 || x > 20 {
		t.Fatalf("mean X = %v, want ~0", x)
	}
}

func TestMovingHasHigherDeviation(t *testing.T) {
	a, _ := newAccel()
	dev := func(p MotionPhase) float64 {
		a.Forced = &p
		var sum float64
		n := 300
		for i := 0; i < n; i++ {
			s := readSample(a)
			d := abs3(s)
			sum += float64(d)
		}
		return sum / float64(n)
	}
	still := dev(Stationary)
	moving := dev(Moving)
	if moving < 4*still {
		t.Fatalf("moving deviation %v must dwarf stationary %v", moving, still)
	}
}

func abs3(s [3]int16) int {
	a := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	return a(int(s[0])) + a(int(s[1])) + a(int(s[2])-250)
}

func TestPhaseAlternatesWithClock(t *testing.T) {
	a, clock := newAccel()
	if a.Phase() != Stationary {
		t.Fatal("phase at t=0 must be stationary")
	}
	clock.Advance(clock.ToCycles(2.5)) // into the second phase window
	if a.Phase() != Moving {
		t.Fatalf("phase at t=2.5s = %v", a.Phase())
	}
	clock.Advance(clock.ToCycles(2.0))
	if a.Phase() != Stationary {
		t.Fatalf("phase at t=4.5s = %v", a.Phase())
	}
	if Moving.String() != "moving" || Stationary.String() != "stationary" {
		t.Fatal("phase strings")
	}
}

func TestLatchOnFirstDataRegister(t *testing.T) {
	a, _ := newAccel()
	n0 := a.Reads()
	_ = a.ReadReg(RegDataX) // latches
	_ = a.ReadReg(RegDataX + 1)
	_ = a.ReadReg(RegDataX + 5)
	if a.Reads() != n0+1 {
		t.Fatalf("reads = %d, want one latch per burst", a.Reads()-n0)
	}
	_ = a.ReadReg(RegDataX)
	if a.Reads() != n0+2 {
		t.Fatal("new burst must latch fresh sample")
	}
}

func TestTempSensor(t *testing.T) {
	clock := sim.NewClock(4_000_000)
	ts := NewTempSensor(clock, sim.NewRNG(5))
	if ts.I2CAddr() != TempAddr {
		t.Fatal("addr")
	}
	v := ts.ReadReg(0)
	if v < 20 || v > 27 {
		t.Fatalf("temperature = %d", v)
	}
	if ts.ReadReg(1) != 0 {
		t.Fatal("unknown register")
	}
	ts.WriteReg(0, 0)
}
