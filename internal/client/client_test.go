package client_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/tlstest"
	"repro/internal/wire"
)

func startServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(cfg)
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return lis.Addr().String()
}

func assertSpec() scenario.Spec {
	return scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42}
}

// TestDialTimeoutAndFailure: dialing a dead address fails after the
// configured attempts, quickly.
func TestDialTimeoutAndFailure(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	start := time.Now()
	_, err = client.Dial(addr, client.Options{
		DialTimeout: 200 * time.Millisecond,
		Attempts:    2,
		Backoff:     20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial to dead address should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial failure took too long: %v", elapsed)
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("error should mention attempts: %v", err)
	}
}

// TestDialContextCancel is the regression test for the uncancellable
// backoff loop: against a never-listening address with a long retry
// schedule, cancelling the context must abort the dial immediately —
// including mid-backoff-sleep — instead of sleeping out the remaining
// attempts.
func TestDialContextCancel(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.DialContext(ctx, addr, client.Options{
		DialTimeout: time.Second,
		Attempts:    1000, // uncancelled, this schedule runs for minutes
		Backoff:     500 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled dial returned after %v; cancellation did not interrupt the backoff", elapsed)
	}
}

// TestDialPreCancelledContext: Options.Context already cancelled fails the
// dial before any attempt.
func TestDialPreCancelledContext(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Dial(addr, client.Options{Context: ctx, Attempts: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestDialTLSAuth: the client dials TLS, authenticates with a token, and
// reports both through its accessors; a TLS handshake against a server
// whose certificate it does not trust fails immediately without burning
// the retry schedule.
func TestDialTLSAuth(t *testing.T) {
	certPEM, keyPEM, err := tlstest.GenerateKeypair([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatalf("keypair: %v", err)
	}
	srvTLS, err := tlstest.ServerConfig(certPEM, keyPEM, nil)
	if err != nil {
		t.Fatalf("server tls: %v", err)
	}
	addr := startServer(t, server.Config{TLS: srvTLS, AuthToken: "tok", RequireAuth: true})

	cliTLS, err := tlstest.ClientConfig(certPEM, nil, nil)
	if err != nil {
		t.Fatalf("client tls: %v", err)
	}
	cl, err := client.Dial(addr, client.Options{TLS: cliTLS, AuthToken: "tok"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if !cl.Authenticated() {
		t.Fatal("Authenticated() should be true after a verified token")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping over TLS: %v", err)
	}

	// An untrusting client must fail fast: TLS handshake failures do not
	// retry, so 100 attempts x 500ms never happens.
	otherCA, _, err := tlstest.GenerateKeypair([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatalf("second keypair: %v", err)
	}
	badTLS, err := tlstest.ClientConfig(otherCA, nil, nil)
	if err != nil {
		t.Fatalf("bad client tls: %v", err)
	}
	start := time.Now()
	_, err = client.Dial(addr, client.Options{TLS: badTLS, AuthToken: "tok", Attempts: 100, Backoff: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("dial with an untrusted CA should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("TLS verification failure retried for %v instead of failing fast", elapsed)
	}
}

// TestReconnectBackoff: a daemon that starts late is reached by the
// retry/backoff loop.
func TestReconnectBackoff(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // free the port; the daemon appears here shortly

	srv := server.New(server.Config{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("relisten: %v", err)
			return
		}
		srv.Serve(l2)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	cl, err := client.Dial(addr, client.Options{
		DialTimeout: 200 * time.Millisecond,
		Attempts:    20,
		Backoff:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial with backoff should reach the late daemon: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if cl.ServerName() == "" {
		t.Fatal("handshake should report the server name")
	}
}

// TestInteractiveExec drives a remote interactive session through the
// Console-compatible Exec API.
func TestInteractiveExec(t *testing.T) {
	addr := startServer(t, server.Config{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	var banner bytes.Buffer
	sess, err := cl.Start(assertSpec(), &banner)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if !strings.Contains(banner.String(), "[edb] interactive session: assert") {
		t.Fatalf("banner missing session line:\n%s", banner.String())
	}

	out, err := sess.Exec("vcap")
	if err != nil {
		t.Fatalf("exec vcap: %v", err)
	}
	if !strings.Contains(out, "Vcap = ") {
		t.Fatalf("vcap output: %q", out)
	}
	out, err = sess.Exec("read")
	if err != nil {
		t.Fatalf("exec read (console errors are output, not failures): %v", err)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("malformed read should report a console error, got %q", out)
	}
	if _, err := sess.Exec("halt"); err != nil {
		t.Fatalf("exec halt: %v", err)
	}
	st, err := sess.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if !strings.Contains(st.Halted, "assert") {
		t.Fatalf("final status should record the assert halt, got %+v", st)
	}
	if !sess.Closed() {
		t.Fatal("session should report closed")
	}
	if _, err := sess.Exec("vcap"); err == nil {
		t.Fatal("exec after close must fail")
	}
}

// TestTraceStreaming: OnTrace receives the raw samples behind the final
// energy-trace window.
func TestTraceStreaming(t *testing.T) {
	addr := startServer(t, server.Config{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	var samples int
	cl.OnTrace = func(tc *wire.Trace) {
		if tc.Name != "Vcap" || tc.Unit != "V" {
			t.Errorf("unexpected trace series %s/%s", tc.Name, tc.Unit)
		}
		samples += len(tc.Samples)
	}
	spec := scenario.Spec{App: "busy", Seconds: 0.5, Seed: 7, Trace: true}
	var buf bytes.Buffer
	st, err := cl.Run(spec, &buf, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Exit != 0 {
		t.Fatalf("exit %d", st.Exit)
	}
	if samples == 0 {
		t.Fatal("no trace samples streamed")
	}
	if !strings.Contains(buf.String(), "==== energy trace (last 150 ms) ====") {
		t.Fatalf("rendered trace missing from output:\n%s", buf.String())
	}
}

// TestRunWithoutSessions: a scenario whose debugger never opens a session
// still streams its run summary.
func TestRunWithoutSessions(t *testing.T) {
	addr := startServer(t, server.Config{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	var buf bytes.Buffer
	st, err := cl.Run(scenario.Spec{App: "busy", Seconds: 0.5, Seed: 7}, &buf, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Commands != 0 || st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	if !strings.Contains(buf.String(), "==== run summary ====") {
		t.Fatalf("missing summary:\n%s", buf.String())
	}
}
