package client_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestDialFailsFastOnAuthError is the retry-classification regression test:
// an auth rejection can never succeed on retry, so a dial configured with
// many attempts must return Error{CodeAuth} after exactly one handshake,
// not sleep out the backoff schedule.
func TestDialFailsFastOnAuthError(t *testing.T) {
	addr := startServer(t, server.Config{AuthToken: "right", RequireAuth: true})
	start := time.Now()
	_, err := client.Dial(addr, client.Options{
		AuthToken: "wrong",
		Attempts:  10,
		Backoff:   2 * time.Second, // one retry sleep alone would trip the time check
	})
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeAuth {
		t.Fatalf("want Error{CodeAuth}, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("auth rejection took %v — the dial retried a permanent error", elapsed)
	}
}

// TestDialRetriesBusy: Error{CodeBusy} is transient — a dial with retry
// budget must keep trying and succeed once the server has room.
func TestDialRetriesBusy(t *testing.T) {
	addr := startServer(t, server.Config{MaxConns: 1})

	hog, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}

	release := make(chan struct{})
	go func() {
		<-release
		hog.Close()
	}()

	done := make(chan error, 1)
	go func() {
		cl, err := client.Dial(addr, client.Options{
			Attempts: 50,
			Backoff:  50 * time.Millisecond,
		})
		if err == nil {
			cl.Close()
		}
		done <- err
	}()

	time.Sleep(200 * time.Millisecond) // let at least one busy rejection land
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("dial should succeed once the connection slot frees: %v", err)
	}
}

// cuttableProxy is a byte-level TCP proxy whose live connections can be
// slammed shut on demand — a deterministic stand-in for a backend crash
// between a client and the address it redials.
type cuttableProxy struct {
	lis     net.Listener
	backend string

	mu      sync.Mutex
	conns   []net.Conn
	accepts int
}

func newCuttableProxy(t *testing.T, backend string) *cuttableProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &cuttableProxy{lis: lis, backend: backend}
	t.Cleanup(func() { lis.Close(); p.cut() })
	go p.serve()
	return p
}

func (p *cuttableProxy) addr() string { return p.lis.Addr().String() }

func (p *cuttableProxy) serve() {
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, c, b)
		p.accepts++
		p.mu.Unlock()
		go func() { io.Copy(b, c); b.Close() }()
		go func() { io.Copy(c, b); c.Close() }()
	}
}

func (p *cuttableProxy) cut() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *cuttableProxy) acceptCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepts
}

// TestRunReconnectResumesMidSession: with Options.Reconnect, a connection
// killed mid-interactive-session is invisible to the caller — the client
// redials, replays its journal via SessResume, and the output delivered is
// byte-identical to an uninterrupted run.
func TestRunReconnectResumesMidSession(t *testing.T) {
	addr := startServer(t, server.Config{})
	proxy := newCuttableProxy(t, addr)

	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Interactive: true}
	cmds := []string{"vcap", "status", "halt"}

	var golden bytes.Buffer
	gi := 0
	if _, err := scenario.Run(spec, &golden, func() (string, bool) {
		if gi < len(cmds) {
			gi++
			return cmds[gi-1], true
		}
		return "", false
	}); err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(proxy.addr(), client.Options{
		Reconnect: true,
		Attempts:  10,
		Backoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if !cl.Cluster() {
		t.Fatal("cluster capability not negotiated")
	}

	var out bytes.Buffer
	i := 0
	st, err := cl.Run(spec, &out, func() (string, bool) {
		if i == 1 {
			// Kill the wire right before the second answer goes out: the
			// send fails, and the journaled answer must replay instead of
			// being re-asked.
			proxy.cut()
		}
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != golden.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s",
			golden.String(), out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	if proxy.acceptCount() < 2 {
		t.Fatalf("expected a reconnect, saw %d connections", proxy.acceptCount())
	}
	// The prompt callback must have been consulted once per command overall:
	// replay answered the journaled ones.
	if i != len(cmds) {
		t.Fatalf("prompt consulted %d times, want %d", i, len(cmds))
	}
}

// TestRunNoReconnectFailsOnCut: without Options.Reconnect the same cut is a
// hard error — no silent retries the caller did not ask for.
func TestRunNoReconnectFailsOnCut(t *testing.T) {
	addr := startServer(t, server.Config{})
	proxy := newCuttableProxy(t, addr)

	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42, Interactive: true}
	cl, err := client.Dial(proxy.addr(), client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	i := 0
	_, err = cl.Run(spec, nil, func() (string, bool) {
		if i == 1 {
			proxy.cut()
		}
		i++
		return "vcap", true
	})
	if err == nil {
		t.Fatal("run over a cut connection should fail without Reconnect")
	}
}
