package client_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/scenario"
	"repro/internal/server"
)

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestDialListFallsThroughDeadAddress: a multi-address -connect list tries
// every address within ONE attempt — a dead first entry must not consume a
// retry (fast failover, not backoff-paced).
func TestDialListFallsThroughDeadAddress(t *testing.T) {
	live := startServer(t, server.Config{})
	cl, err := client.Dial(deadAddr(t)+", "+live, client.Options{
		DialTimeout: 500 * time.Millisecond,
		Attempts:    1,
	})
	if err != nil {
		t.Fatalf("dial list with one live address failed: %v", err)
	}
	defer cl.Close()

	var out bytes.Buffer
	st, err := cl.Run(assertSpec(), &out, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
}

// TestDialListEmpty: a list that trims to nothing is a usage error, not a
// nil-deref or a dial of "".
func TestDialListEmpty(t *testing.T) {
	if _, err := client.Dial(" , ,", client.Options{}); err == nil {
		t.Fatal("dialing an empty address list should fail")
	}
}

// TestRunFailsOverAcrossDialList: the session starts on the list's first
// server (through a cuttable proxy) and the connection is cut mid-session.
// The resume must rotate to the second server — a different process with
// no session state, rebuilt purely from the client journal — and the
// combined output must be byte-identical to an undisturbed local run.
func TestRunFailsOverAcrossDialList(t *testing.T) {
	spec := scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42,
		Interactive: true}
	cmds := []string{"vcap", "status", "halt"}

	var golden bytes.Buffer
	i := 0
	if _, err := scenario.Run(spec, &golden, func() (string, bool) {
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	}); err != nil {
		t.Fatalf("golden run: %v", err)
	}

	srvA := startServer(t, server.Config{})
	srvB := startServer(t, server.Config{})
	proxy := newCuttableProxy(t, srvA)

	var resumedTo string
	var took time.Duration
	cl, err := client.Dial(proxy.addr()+","+srvB, client.Options{
		Reconnect: true,
		Attempts:  10,
		Backoff:   50 * time.Millisecond,
		OnResume:  func(addr string, d time.Duration) { resumedTo, took = addr, d },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var out bytes.Buffer
	j := 0
	st, err := cl.Run(spec, &out, func() (string, bool) {
		if j == 1 {
			// First answer is already journaled; kill the proxied leg so
			// the next send fails and the client rotates to srvB.
			proxy.cut()
		}
		if j < len(cmds) {
			j++
			return cmds[j-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run across cut: %v", err)
	}
	if out.String() != golden.String() {
		t.Fatalf("failed-over output differs from local run:\n--- local ---\n%s\n--- failover ---\n%s", golden.String(), out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	// The resume must have landed on the OTHER list entry: srvA is only
	// reachable through the proxy, which accepted exactly one connection.
	if resumedTo != srvB {
		t.Fatalf("resume landed on %q, want %q (OnResume took %v)", resumedTo, srvB, took)
	}
	if got := proxy.acceptCount(); got != 1 {
		t.Fatalf("proxy accepted %d connections, want 1 (resume must not revisit the cut address first)", got)
	}
	if took <= 0 {
		t.Fatalf("OnResume reported non-positive hand-off latency %v", took)
	}
}
