// Package client is the Go client library for edbd, the networked debug
// daemon. It dials with a timeout and reconnect-with-backoff (cancellable
// via DialContext), optionally over TLS with token authentication, speaks
// the internal/wire handshake, streams scenario sessions, and exposes a
// Console-compatible Exec API for interactive remote debugging, so code
// written against internal/console's command surface drives a remote
// target unchanged.
package client

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/tracecodec"
	"repro/internal/wire"
)

// ErrSessionClosed is returned by Session.Exec after the remote session
// has ended.
var ErrSessionClosed = errors.New("client: session closed")

// Options configures dialing and per-frame deadlines.
type Options struct {
	// DialTimeout bounds each TCP dial attempt (default 5s).
	DialTimeout time.Duration
	// Attempts is the number of dial attempts before giving up (default 1;
	// raise it to tolerate a daemon that is still starting).
	Attempts int
	// Backoff is the delay before the second attempt, doubling per retry
	// (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the retry delay (default 2s).
	MaxBackoff time.Duration
	// ReadTimeout bounds the wait for each server frame (default 60s —
	// generously above the longest permitted simulation).
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound frame write (default 10s).
	WriteTimeout time.Duration
	// Name identifies this client in the handshake.
	Name string
	// RawTrace suppresses the compressed-trace capability in the
	// handshake, forcing the server to stream raw Trace chunks — the
	// behavior of a client that predates the codec.
	RawTrace bool
	// NoSnap suppresses the snapshot capability in the handshake — the
	// behavior of a client that predates remote time-travel. The server
	// then serves the baseline protocol byte-identically.
	NoSnap bool
	// Context, when set, bounds the whole Dial — every attempt and every
	// backoff sleep. Cancelling it makes Dial return immediately with the
	// context's error instead of sleeping out the remaining retries.
	// DialContext is the explicit-argument equivalent.
	Context context.Context
	// TLS, when set, dials TLS over the TCP connection. If ServerName is
	// empty and certificate verification is on, it is filled in from the
	// dialed address's host. Set Certificates for mTLS.
	TLS *tls.Config
	// AuthToken, when non-empty, offers the FlagAuth capability with this
	// shared-secret token in the handshake. Authenticated() reports
	// whether the server verified it; a wrong token against a
	// token-checking server fails the dial with Error{CodeAuth}.
	AuthToken string
	// Reconnect offers the cluster capability and makes Run resume its
	// session transparently when the connection drops mid-run or the server
	// migrates it away: the client keeps a journal of the prompt answers it
	// gave plus the output/trace offsets it holds, redials (rotating
	// through the dial list when one was given), and replays via
	// SessResume. Behind a gateway (or any load-balanced address) this
	// hides backend drains and crashes entirely; with a multi-gateway dial
	// list it also hides the death of the gateway itself. Output remains
	// byte-identical either way.
	Reconnect bool
	// MaxResumes caps reconnect-and-resume attempts per Run (default 3).
	MaxResumes int
	// OnResume, when set, is called after each successful
	// reconnect-and-resume with the address the session landed on and the
	// wall time from detecting the loss to the resume request being
	// accepted by the new connection — the client-observed hand-off
	// latency.
	OnResume func(addr string, took time.Duration)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 1
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 60 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.Name == "" {
		o.Name = "edb-client"
	}
	if o.MaxResumes <= 0 {
		o.MaxResumes = 3
	}
	return o
}

// Client is one authenticated connection to an edbd daemon. It is not safe
// for concurrent use; open one Client per goroutine (the daemon hosts each
// connection's sessions independently).
type Client struct {
	conn net.Conn
	opts Options

	// OnTrace, when set before Run, requests energy-trace streaming and
	// receives each chunk. When the TraceZ capability was negotiated the
	// chunk was decoded from the compressed stream and its Samples slice
	// aliases a scratch buffer reused for the next chunk — copy samples
	// out if they must outlive the callback.
	OnTrace func(*wire.Trace)

	addr       string   // the address this client is connected to
	addrs      []string // the full dial list; len 1 without failover peers
	addrIdx    int      // index of addr in addrs
	serverName string
	traceZ     bool
	snap       bool
	authed     bool
	cluster    bool
	scratch    []wire.TracePoint
	traceBuf   wire.Trace
}

// Dial connects to an edbd daemon, retrying failed dials with exponential
// backoff, and completes the protocol handshake. Handshake rejections
// (e.g. a version mismatch or a bad auth token) are returned immediately
// without retrying — they will not fix themselves. Opts.Context, when set,
// cancels the retry loop; see DialContext.
//
// addr may be a comma-separated dial list ("gw1:3535,gw2:3535"): each
// attempt tries every address in order before backing off, so the first
// live endpoint wins without burning the retry schedule on a dead one.
// With Options.Reconnect, Run keeps the list and rotates it on resume —
// the address that just failed is retried last — which is how a client
// rides out the death of a replicated gateway.
func Dial(addr string, opts Options) (*Client, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return DialContext(ctx, addr, opts)
}

// DialContext is Dial bounded by ctx: cancellation interrupts both
// in-flight connection attempts and the backoff sleeps between them, so a
// cancelled caller stops retrying immediately instead of sleeping out the
// schedule against a dead address.
//
// Retry classification: transient failures — unreachable address,
// Error{CodeBusy} from a full server — are retried on the backoff schedule.
// Typed handshake rejections that can never succeed on retry — a version
// mismatch, Error{CodeAuth} from a bad or missing token, a TLS certificate
// failure — fail fast on the first attempt, no matter how many attempts
// remain.
func DialContext(ctx context.Context, addr string, opts Options) (*Client, error) {
	o := opts.withDefaults()
	addrs := splitAddrs(addr)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: no address to dial in %q", addr)
	}
	backoff := o.Backoff
	var lastErr error
	for attempt := 0; attempt < o.Attempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, fmt.Errorf("client: dial %s: %w", addr, ctx.Err())
			case <-timer.C:
			}
			backoff *= 2
			if backoff > o.MaxBackoff {
				backoff = o.MaxBackoff
			}
		}
		// Try every address in the dial list before sleeping out a backoff:
		// a dead first gateway must not delay failover to its live peer.
		for i, a := range addrs {
			conn, err := o.dialOnce(ctx, a)
			if err != nil {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("client: dial %s: %w", a, ctx.Err())
				}
				if errors.Is(err, errTLSHandshake) {
					// A reachable server whose TLS handshake fails (bad cert,
					// protocol mismatch) will not fix itself; surface it now.
					return nil, err
				}
				lastErr = err
				continue
			}
			c := &Client{conn: conn, opts: o, addr: a, addrs: addrs, addrIdx: i}
			if err := c.handshake(); err != nil {
				conn.Close()
				var werr *wire.Error
				if errors.As(err, &werr) && werr.Code == wire.CodeBusy {
					// A full server drains; the next candidate (or the next
					// attempt) may be admitted.
					lastErr = err
					continue
				}
				// Every other typed rejection — CodeAuth, CodeVersion, a
				// malformed handshake — cannot succeed on retry: fail fast.
				return nil, err
			}
			return c, nil
		}
	}
	return nil, fmt.Errorf("client: dial %s failed after %d attempts: %w", addr, o.Attempts, lastErr)
}

// splitAddrs parses a comma-separated dial list, dropping empty elements.
func splitAddrs(addr string) []string {
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// errTLSHandshake marks TLS setup failures so the retry loop can tell them
// apart from transient TCP connect errors.
var errTLSHandshake = errors.New("client: tls handshake")

// dialOnce makes one connection attempt: TCP connect, then the TLS
// handshake when Options.TLS is set, all bounded by DialTimeout and ctx.
func (o *Options) dialOnce(ctx context.Context, addr string) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, o.DialTimeout)
	defer cancel()
	conn, err := (&net.Dialer{}).DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if o.TLS == nil {
		return conn, nil
	}
	cfg := o.TLS
	if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
		if host, _, err := net.SplitHostPort(addr); err == nil {
			cfg = cfg.Clone()
			cfg.ServerName = host
		}
	}
	tc := tls.Client(conn, cfg)
	if err := tc.HandshakeContext(dctx); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w with %s: %v", errTLSHandshake, addr, err)
	}
	return tc, nil
}

// ServerName returns the daemon's name from the handshake.
func (c *Client) ServerName() string { return c.serverName }

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	const token = 0xEDB
	if err := c.send(&wire.Ping{Token: token}); err != nil {
		return err
	}
	m, err := c.recv()
	if err != nil {
		return err
	}
	pong, ok := m.(*wire.Pong)
	if !ok || pong.Token != token {
		return fmt.Errorf("client: bad ping reply %T", m)
	}
	return nil
}

func (c *Client) handshake() error {
	var caps byte
	if !c.opts.RawTrace {
		caps = wire.FlagTraceZ
	}
	if !c.opts.NoSnap {
		caps |= wire.FlagSnap
	}
	if c.opts.Reconnect {
		// The cluster capability tells the server this client understands
		// SessMigrate hand-offs and SessResume replays.
		caps |= wire.FlagCluster
	}
	hello := &wire.Hello{Version: wire.Version, Client: c.opts.Name}
	if c.opts.AuthToken != "" {
		// Only offer FlagAuth when there is a token to present: a
		// token-less client stays byte-identical to the pre-auth protocol
		// (and keeps working against pre-auth servers).
		caps |= wire.FlagAuth
		hello.Token = c.opts.AuthToken
	}
	if err := c.sendf(hello, caps); err != nil {
		return fmt.Errorf("client: handshake send: %w", err)
	}
	m, flags, err := c.recvf()
	if err != nil {
		return fmt.Errorf("client: handshake recv: %w", err)
	}
	switch w := m.(type) {
	case *wire.Welcome:
		if w.Version != wire.Version {
			return fmt.Errorf("client: server speaks protocol version %d, want %d", w.Version, wire.Version)
		}
		c.serverName = w.Server
		// The server echoes the capability subset it accepted; only bits we
		// asked for may take effect.
		c.traceZ = flags&caps&wire.FlagTraceZ != 0
		c.snap = flags&caps&wire.FlagSnap != 0
		c.authed = flags&caps&wire.FlagAuth != 0
		c.cluster = flags&caps&wire.FlagCluster != 0
		return nil
	case *wire.Error:
		return w
	}
	return fmt.Errorf("client: unexpected handshake reply %T", m)
}

// TraceZ reports whether compressed trace streaming was negotiated in the
// handshake.
func (c *Client) TraceZ() bool { return c.traceZ }

// Snap reports whether remote time-travel (SnapSave/SnapRestore) was
// negotiated in the handshake.
func (c *Client) Snap() bool { return c.snap }

// Authenticated reports whether the server verified this client's auth
// token in the handshake. False with an AuthToken set means the server has
// no token authentication configured (a wrong token fails the Dial).
func (c *Client) Authenticated() bool { return c.authed }

// Cluster reports whether the cluster capability (migration hand-offs and
// journal resume) was negotiated in the handshake.
func (c *Client) Cluster() bool { return c.cluster }

func (c *Client) send(m wire.Msg) error {
	return c.sendf(m, 0)
}

func (c *Client) sendf(m wire.Msg, flags byte) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	return wire.WriteMsgFlags(c.conn, m, flags)
}

func (c *Client) recv() (wire.Msg, error) {
	m, _, err := c.recvf()
	return m, err
}

func (c *Client) recvf() (wire.Msg, byte, error) {
	c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	return wire.ReadMsgFlags(c.conn)
}

// decodeTraceZ decodes one compressed trace chunk into the client's reused
// scratch buffer and returns a raw-chunk view over it, so OnTrace callbacks
// observe the same shape whichever encoding the server streamed.
func (c *Client) decodeTraceZ(t *wire.TraceZ) (*wire.Trace, error) {
	if !c.traceZ {
		return nil, errors.New("client: server sent TraceZ without negotiating the capability")
	}
	pts, err := tracecodec.Decode(c.scratch[:0], t.Data, int(t.Count))
	if err != nil {
		return nil, fmt.Errorf("client: corrupt TraceZ chunk: %w", err)
	}
	c.scratch = pts
	c.traceBuf = wire.Trace{Name: t.Name, Unit: t.Unit, Samples: pts}
	return &c.traceBuf, nil
}

// Status summarizes a finished remote session.
type Status struct {
	Exit         int
	Halted       string
	SimCycles    uint64
	Commands     int
	ScriptErrors int
}

// runState is the client-side migration journal: everything needed to
// resume the session byte-exactly on a fresh connection — the answers
// already given, and how much output and trace data this side already
// holds. It mirrors what a gateway keeps per proxied session.
type runState struct {
	journal      []wire.JournalEntry
	outputBytes  uint64
	traceSamples uint64
	image        []byte // template image from a SessMigrate hand-off
	resumes      int
}

// Run executes one scenario session on the daemon, streaming its output to
// out. The prompt callback answers interactive prompts (it is only
// consulted when spec.Interactive is set and no script is given); pass nil
// for scripted or hands-off runs. Run blocks until the session finishes
// and returns its status.
//
// With Options.Reconnect, a dropped connection or a server-initiated
// SessMigrate does not end the run: the client redials and resumes from
// its journal, and the output delivered to out stays byte-identical to an
// uninterrupted run.
func (c *Client) Run(spec scenario.Spec, out io.Writer, prompt scenario.PromptFunc) (Status, error) {
	st := &runState{}
	streamTrace := c.OnTrace != nil
	if err := c.send(&wire.Run{Spec: spec, StreamTrace: streamTrace}); err != nil {
		if rerr := c.resume(spec, streamTrace, st); rerr != nil {
			return Status{}, err
		}
	}
	for {
		m, err := c.recv()
		if err != nil {
			if rerr := c.resume(spec, streamTrace, st); rerr != nil {
				return Status{}, err
			}
			continue
		}
		switch t := m.(type) {
		case *wire.Output:
			st.outputBytes += uint64(len(t.Data))
			if out != nil {
				if _, err := out.Write(t.Data); err != nil {
					return Status{}, err
				}
			}
		case *wire.Prompt:
			resp := &wire.Command{EOF: true}
			entry := wire.JournalEntry{Kind: wire.JournalEOF}
			if prompt != nil {
				if line, ok := prompt(); ok {
					resp = &wire.Command{Line: line}
					entry = wire.JournalEntry{Kind: wire.JournalLine, Line: line}
				}
			}
			// Journal before sending: if the send fails mid-flight, the
			// resumed session replays this answer instead of re-asking.
			st.journal = append(st.journal, entry)
			if err := c.send(resp); err != nil {
				if rerr := c.resume(spec, streamTrace, st); rerr != nil {
					return Status{}, err
				}
			}
		case *wire.Trace:
			st.traceSamples += uint64(len(t.Samples))
			if c.OnTrace != nil {
				c.OnTrace(t)
			}
		case *wire.TraceZ:
			tr, err := c.decodeTraceZ(t)
			if err != nil {
				return Status{}, err
			}
			st.traceSamples += uint64(t.Count)
			if c.OnTrace != nil {
				c.OnTrace(tr)
			}
		case *wire.SessMigrate:
			// The server is draining this session away; carry its template
			// image to wherever we land next.
			st.image = t.Image
			if rerr := c.resume(spec, streamTrace, st); rerr != nil {
				return Status{}, fmt.Errorf("client: session migrated but resume failed: %w", rerr)
			}
		case *wire.Done:
			return Status{
				Exit:         int(t.Exit),
				Halted:       t.Halted,
				SimCycles:    t.SimCycles,
				Commands:     int(t.Commands),
				ScriptErrors: int(t.ScriptErrors),
			}, nil
		case *wire.Error:
			return Status{}, t
		default:
			return Status{}, fmt.Errorf("client: unexpected message %T during run", m)
		}
	}
}

// resume redials and replays the session from the journal, rotating the
// dial list so the surviving peer of a dead gateway is tried first. It
// returns an error when reconnect is off, the resume budget is spent, or
// the redial fails — callers then surface the original failure.
func (c *Client) resume(spec scenario.Spec, streamTrace bool, st *runState) error {
	if !c.opts.Reconnect || !c.cluster {
		return errors.New("client: reconnect not enabled")
	}
	if st.resumes >= c.opts.MaxResumes {
		return fmt.Errorf("client: resume budget (%d) exhausted", c.opts.MaxResumes)
	}
	st.resumes++
	start := time.Now()
	ctx := c.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// Rotate the dial list past the address that just failed: its peers
	// get the first shot, and it goes last in case it is all there is.
	rot := make([]string, 0, len(c.addrs))
	rot = append(rot, c.addrs[c.addrIdx+1:]...)
	rot = append(rot, c.addrs[:c.addrIdx+1]...)
	nc, err := DialContext(ctx, strings.Join(rot, ","), c.opts)
	if err != nil {
		return err
	}
	if !nc.cluster {
		nc.Close()
		return errors.New("client: reconnected server does not speak the cluster capability")
	}
	c.conn.Close()
	c.conn = nc.conn
	c.addr, c.addrIdx = nc.addr, indexOf(c.addrs, nc.addr)
	c.serverName, c.traceZ, c.snap, c.authed, c.cluster =
		nc.serverName, nc.traceZ, nc.snap, nc.authed, nc.cluster
	err = c.send(&wire.SessResume{
		Spec:             spec,
		StreamTrace:      streamTrace,
		SpecHash:         scenario.SpecHash(spec),
		SkipOutput:       st.outputBytes,
		SkipTraceSamples: st.traceSamples,
		Journal:          st.journal,
		Image:            st.image,
	})
	if err == nil {
		st.image = nil // delivered; don't re-ship on a later resume
		if c.opts.OnResume != nil {
			c.opts.OnResume(c.addr, time.Since(start))
		}
	}
	return err
}

func indexOf(addrs []string, addr string) int {
	for i, a := range addrs {
		if a == addr {
			return i
		}
	}
	return 0
}

// Session is an open remote interactive debugging session. Its Exec method
// is Console-compatible — the same command surface as
// internal/console.Console.Exec, executed on the daemon's rig.
type Session struct {
	c      *Client
	out    io.Writer
	status Status
	closed bool
	err    error
}

// Start launches an interactive session for the spec. Output produced
// before the first console prompt (the run banner) is written to out, as
// is any output after the console closes (the run summary). Start returns
// once the remote console is ready for Exec.
func (c *Client) Start(spec scenario.Spec, out io.Writer) (*Session, error) {
	spec.Interactive = true
	spec.Script = ""
	if err := c.send(&wire.Run{Spec: spec}); err != nil {
		return nil, err
	}
	s := &Session{c: c, out: out}
	if _, err := s.pump(nil); err != nil {
		return nil, err
	}
	if s.closed {
		return nil, fmt.Errorf("client: session ended before first prompt (exit %d)", s.status.Exit)
	}
	return s, nil
}

// Exec runs one console command in the remote session and returns its
// output — the Console-compatible entry point. It returns once the remote
// console prompts again (or, after resume, when the run ends or the next
// session opens). After the session ends, Exec returns ErrSessionClosed.
func (s *Session) Exec(line string) (string, error) {
	if s.closed {
		if s.err != nil {
			return "", s.err
		}
		return "", ErrSessionClosed
	}
	if err := s.c.send(&wire.Command{Line: line}); err != nil {
		s.closed, s.err = true, err
		return "", err
	}
	var buf strings.Builder
	if _, err := s.pump(&buf); err != nil {
		return "", err
	}
	// Drop the next prompt string the engine streamed just before the
	// Prompt frame; Exec callers are not rendering a terminal.
	return strings.TrimSuffix(buf.String(), "(edb) "), nil
}

// SnapSave arms a server-side snapshot of the session's target: memory
// baselines plus the resume energy level, with dirty-page tracking armed
// so the restore costs O(pages written since). It requires the FlagSnap
// capability and returns the console's confirmation text.
func (s *Session) SnapSave() (string, error) {
	return s.snapRPC(&wire.SnapSave{})
}

// SnapRestore reverts the session's target to the armed snapshot —
// remote time-travel. It requires the FlagSnap capability and returns the
// console's confirmation text.
func (s *Session) SnapRestore() (string, error) {
	return s.snapRPC(&wire.SnapRestore{})
}

// snapRPC sends a snapshot frame in place of a Command and pumps to the
// next prompt, exactly like Exec.
func (s *Session) snapRPC(m wire.Msg) (string, error) {
	if s.closed {
		if s.err != nil {
			return "", s.err
		}
		return "", ErrSessionClosed
	}
	if !s.c.snap {
		return "", errors.New("client: snapshot capability not negotiated (server too old or -no-snap)")
	}
	if err := s.c.send(m); err != nil {
		s.closed, s.err = true, err
		return "", err
	}
	var buf strings.Builder
	if _, err := s.pump(&buf); err != nil {
		return "", err
	}
	return strings.TrimSuffix(buf.String(), "(edb) "), nil
}

// Close ends the session's console loop (like a local stdin EOF) and waits
// for the run to finish, returning its status.
func (s *Session) Close() (Status, error) {
	if s.closed {
		return s.status, s.err
	}
	if err := s.c.send(&wire.Command{EOF: true}); err != nil {
		s.closed, s.err = true, err
		return Status{}, err
	}
	for !s.closed {
		if _, err := s.pump(nil); err != nil {
			return Status{}, err
		}
		if !s.closed {
			// The engine prompted again (a later session opened); keep
			// answering EOF until the run drains.
			if err := s.c.send(&wire.Command{EOF: true}); err != nil {
				s.closed, s.err = true, err
				return Status{}, err
			}
		}
	}
	return s.status, s.err
}

// Status returns the final status once the session has closed.
func (s *Session) Status() Status { return s.status }

// Closed reports whether the remote session has ended.
func (s *Session) Closed() bool { return s.closed }

// pump reads frames until the next Prompt (returning true) or Done
// (marking the session closed). Output goes to buf when non-nil, else to
// the session's writer.
func (s *Session) pump(buf io.Writer) (bool, error) {
	for {
		m, err := s.c.recv()
		if err != nil {
			s.closed, s.err = true, err
			return false, err
		}
		switch t := m.(type) {
		case *wire.Output:
			w := s.out
			if buf != nil {
				w = buf
			}
			if w != nil {
				w.Write(t.Data)
			}
		case *wire.Prompt:
			return true, nil
		case *wire.Trace:
			if s.c.OnTrace != nil {
				s.c.OnTrace(t)
			}
		case *wire.TraceZ:
			tr, err := s.c.decodeTraceZ(t)
			if err != nil {
				s.closed, s.err = true, err
				return false, err
			}
			if s.c.OnTrace != nil {
				s.c.OnTrace(tr)
			}
		case *wire.Done:
			s.closed = true
			s.status = Status{
				Exit:         int(t.Exit),
				Halted:       t.Halted,
				SimCycles:    t.SimCycles,
				Commands:     int(t.Commands),
				ScriptErrors: int(t.ScriptErrors),
			}
			return false, nil
		case *wire.Error:
			s.closed, s.err = true, t
			return false, t
		default:
			err := fmt.Errorf("client: unexpected message %T during session", m)
			s.closed, s.err = true, err
			return false, err
		}
	}
}
