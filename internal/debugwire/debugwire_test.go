package debugwire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(cmd byte, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		frame, err := Encode(cmd, payload)
		if err != nil {
			return false
		}
		got, n, err := Decode(frame)
		return err == nil && n == len(frame) && got.Cmd == cmd &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTooLong(t *testing.T) {
	if _, err := Encode(CmdReadWord, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeShort(t *testing.T) {
	frame := EncodeWord(CmdReadWord, 0x1234)
	for i := 0; i < len(frame); i++ {
		if _, _, err := Decode(frame[:i]); !errors.Is(err, ErrShort) {
			t.Fatalf("prefix %d: err = %v", i, err)
		}
	}
}

func TestDecodeBadSOF(t *testing.T) {
	_, n, err := Decode([]byte{0x00, 0x01, 0x00, 0x01})
	if !errors.Is(err, ErrBadSOF) || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestDecodeChecksum(t *testing.T) {
	frame := EncodeWord(CmdWriteWord, 0xBEEF)
	frame[3] ^= 0xFF // corrupt payload
	_, _, err := Decode(frame)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameWord(t *testing.T) {
	frame := EncodeWords(CmdWriteWord, 0x1234, 0xABCD)
	f, _, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := f.Word(0)
	if err != nil || w0 != 0x1234 {
		t.Fatalf("w0=%#x err=%v", w0, err)
	}
	w1, err := f.Word(1)
	if err != nil || w1 != 0xABCD {
		t.Fatalf("w1=%#x err=%v", w1, err)
	}
	if _, err := f.Word(2); err == nil {
		t.Fatal("word 2 must be out of range")
	}
}

func TestAccumulatorByteAtATime(t *testing.T) {
	var a Accumulator
	frames := [][]byte{
		EncodeWord(CmdReadWord, 0x4400),
		MustEncode(RspPrintf, []byte("hello")),
		MustEncode(CmdResume, nil),
	}
	for _, fr := range frames {
		for _, b := range fr {
			a.Feed(b)
		}
	}
	if a.Pending() != 3 {
		t.Fatalf("pending = %d", a.Pending())
	}
	f1, _ := a.Next()
	f2, _ := a.Next()
	f3, _ := a.Next()
	if f1.Cmd != CmdReadWord || f2.Cmd != RspPrintf || f3.Cmd != CmdResume {
		t.Fatalf("cmds = %#x %#x %#x", f1.Cmd, f2.Cmd, f3.Cmd)
	}
	if string(f2.Payload) != "hello" {
		t.Fatalf("payload = %q", f2.Payload)
	}
	if _, ok := a.Next(); ok {
		t.Fatal("Next on empty accumulator returned a frame")
	}
}

func TestAccumulatorResync(t *testing.T) {
	var a Accumulator
	a.Feed(0xde, 0xad) // garbage
	a.Feed(EncodeWord(RspData, 42)...)
	f, ok := a.Next()
	if !ok || f.Cmd != RspData {
		t.Fatalf("frame = %+v ok=%v", f, ok)
	}
	if a.Errors() == 0 {
		t.Fatal("garbage bytes must count framing errors")
	}
}

func TestAccumulatorResyncAfterCorruptFrame(t *testing.T) {
	var a Accumulator
	bad := EncodeWord(RspData, 42)
	bad[4] ^= 0x55 // corrupt
	a.Feed(bad...)
	a.Feed(EncodeWord(RspData, 43)...)
	f, ok := a.Next()
	if !ok {
		t.Fatal("no frame after resync")
	}
	if w, _ := f.Word(0); w != 43 {
		t.Fatalf("w = %d", w)
	}
}

func TestAccumulatorInterleavedChunks(t *testing.T) {
	var a Accumulator
	frame := MustEncode(RspData, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	a.Feed(frame[:3]...)
	if a.Pending() != 0 {
		t.Fatal("incomplete frame must not complete")
	}
	a.Feed(frame[3:]...)
	if a.Pending() != 1 {
		t.Fatal("frame must complete once all bytes arrive")
	}
}
