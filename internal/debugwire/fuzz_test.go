package debugwire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte streams through the frame decoder and
// accumulator: neither may panic, and any frame that decodes must
// re-encode to the bytes it was decoded from.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{SOF, CmdReadWord, 2, 0x00, 0x44, 0x47})
	f.Add([]byte{SOF, RspPrintf, 5, 'h', 'e', 'l', 'l', 'o', 0x00})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err == nil {
			if n < 4 || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			re, eerr := Encode(fr.Cmd, fr.Payload)
			if eerr != nil {
				t.Fatalf("re-encode: %v", eerr)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
			}
		}
		// The accumulator must absorb anything.
		var a Accumulator
		a.Feed(data...)
		for {
			if _, ok := a.Next(); !ok {
				break
			}
		}
	})
}

// FuzzAccumulatorChunking verifies that frame reassembly is independent of
// how the stream is chunked.
func FuzzAccumulatorChunking(f *testing.F) {
	f.Add([]byte("hello world"), uint8(3))
	f.Fuzz(func(t *testing.T, payload []byte, chunk uint8) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		frame := MustEncode(RspData, payload)
		step := int(chunk%7) + 1

		var whole, pieces Accumulator
		whole.Feed(frame...)
		for i := 0; i < len(frame); i += step {
			end := i + step
			if end > len(frame) {
				end = len(frame)
			}
			pieces.Feed(frame[i:end]...)
		}
		fw, okw := whole.Next()
		fp, okp := pieces.Next()
		if !okw || !okp {
			t.Fatal("frame lost")
		}
		if fw.Cmd != fp.Cmd || !bytes.Equal(fw.Payload, fp.Payload) {
			t.Fatal("chunking changed the frame")
		}
	})
}
