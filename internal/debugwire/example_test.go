package debugwire_test

import (
	"fmt"

	"repro/internal/debugwire"
)

// ExampleEncode frames a memory-read command the way libEDB puts it on the
// UART, and the host-side accumulator reassembles it from single bytes.
func ExampleEncode() {
	frame := debugwire.EncodeWord(debugwire.CmdReadWord, 0x4400)
	var acc debugwire.Accumulator
	for _, b := range frame {
		acc.Feed(b)
	}
	f, _ := acc.Next()
	addr, _ := f.Word(0)
	fmt.Printf("cmd=%#02x addr=%#04x\n", f.Cmd, addr)
	// Output:
	// cmd=0x01 addr=0x4400
}
