// Package debugwire defines the framed byte protocol spoken between the
// target-side libEDB library and the EDB debugger over the dedicated UART
// link (§4.2: "the library implements the target-side half of the protocol
// for communicating with the debugger over a dedicated GPIO line and a
// UART link, which includes routines for reading from and writing to target
// address space").
//
// Frame layout:
//
//	+------+-----+-----+---------+-----+
//	| 0xED | cmd | len | payload | sum |
//	+------+-----+-----+---------+-----+
//
// where len counts payload bytes and sum is the additive checksum of cmd,
// len, and payload. Word fields inside payloads are little-endian.
package debugwire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SOF is the start-of-frame marker.
const SOF byte = 0xED

// Command codes. Host→target commands request debug services from the
// target's service loop; target→host frames carry responses and
// asynchronous messages.
const (
	// CmdReadWord requests a 16-bit read; payload: addr(2).
	CmdReadWord byte = 0x01
	// CmdWriteWord requests a 16-bit write; payload: addr(2), value(2).
	CmdWriteWord byte = 0x02
	// CmdReadBlock requests a block read; payload: addr(2), n(2).
	CmdReadBlock byte = 0x03
	// CmdResume ends the interactive session; no payload.
	CmdResume byte = 0x04
	// CmdWriteBlock requests a block write; payload: addr(2), data(n).
	CmdWriteBlock byte = 0x05

	// RspData carries read results back; payload: the data bytes.
	RspData byte = 0x81
	// RspAck acknowledges a write; no payload.
	RspAck byte = 0x82
	// RspPrintf carries an energy-interference-free printf's text.
	RspPrintf byte = 0x83
	// RspAssert announces a failed assertion; payload: id(2).
	RspAssert byte = 0x84
	// RspNak reports a malformed or unserviceable command.
	RspNak byte = 0x85
)

// MaxPayload is the largest payload a frame can carry.
const MaxPayload = 255

// Errors returned by the decoder.
var (
	ErrShort    = errors.New("debugwire: incomplete frame")
	ErrBadSOF   = errors.New("debugwire: bad start-of-frame")
	ErrChecksum = errors.New("debugwire: checksum mismatch")
	ErrTooLong  = errors.New("debugwire: payload too long")
)

// Encode builds a frame for cmd with the given payload.
func Encode(cmd byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, ErrTooLong
	}
	f := make([]byte, 0, len(payload)+4)
	f = append(f, SOF, cmd, byte(len(payload)))
	f = append(f, payload...)
	f = append(f, checksum(cmd, payload))
	return f, nil
}

// MustEncode is Encode for payloads known to fit.
func MustEncode(cmd byte, payload []byte) []byte {
	f, err := Encode(cmd, payload)
	if err != nil {
		panic(err)
	}
	return f
}

// EncodeWord builds a frame whose payload is one little-endian word.
func EncodeWord(cmd byte, w uint16) []byte {
	var p [2]byte
	binary.LittleEndian.PutUint16(p[:], w)
	return MustEncode(cmd, p[:])
}

// EncodeWords builds a frame whose payload is the given words.
func EncodeWords(cmd byte, ws ...uint16) []byte {
	p := make([]byte, 2*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint16(p[2*i:], w)
	}
	return MustEncode(cmd, p)
}

// Frame is a decoded protocol frame.
type Frame struct {
	Cmd     byte
	Payload []byte
}

// Word returns the i-th little-endian word of the payload.
func (f Frame) Word(i int) (uint16, error) {
	if 2*i+2 > len(f.Payload) {
		return 0, fmt.Errorf("debugwire: frame %#02x payload too short for word %d", f.Cmd, i)
	}
	return binary.LittleEndian.Uint16(f.Payload[2*i:]), nil
}

// Decode parses one frame from the front of buf, returning the frame and
// the number of bytes consumed. It returns ErrShort if more bytes are
// needed.
func Decode(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, ErrShort
	}
	if buf[0] != SOF {
		return Frame{}, 1, ErrBadSOF
	}
	n := int(buf[2])
	total := 4 + n
	if len(buf) < total {
		return Frame{}, 0, ErrShort
	}
	payload := buf[3 : 3+n]
	if checksum(buf[1], payload) != buf[total-1] {
		return Frame{}, total, ErrChecksum
	}
	return Frame{Cmd: buf[1], Payload: append([]byte(nil), payload...)}, total, nil
}

func checksum(cmd byte, payload []byte) byte {
	s := cmd + byte(len(payload))
	for _, b := range payload {
		s += b
	}
	return s
}

// Accumulator reassembles frames from a byte stream delivered in arbitrary
// chunks (the UART delivers one byte at a time).
type Accumulator struct {
	buf    []byte
	frames []Frame
	errs   int
}

// Feed appends stream bytes and extracts any completed frames.
func (a *Accumulator) Feed(data ...byte) {
	a.buf = append(a.buf, data...)
	for {
		f, n, err := Decode(a.buf)
		switch {
		case err == nil:
			a.frames = append(a.frames, f)
			a.buf = a.buf[n:]
		case errors.Is(err, ErrShort):
			return
		default:
			// Resynchronize past the bad byte(s).
			a.errs++
			if n == 0 {
				n = 1
			}
			a.buf = a.buf[n:]
		}
	}
}

// Next pops the oldest completed frame.
func (a *Accumulator) Next() (Frame, bool) {
	if len(a.frames) == 0 {
		return Frame{}, false
	}
	f := a.frames[0]
	a.frames = a.frames[1:]
	return f, true
}

// Pending returns the number of completed frames waiting.
func (a *Accumulator) Pending() int { return len(a.frames) }

// Errors returns the count of framing errors seen.
func (a *Accumulator) Errors() int { return a.errs }
