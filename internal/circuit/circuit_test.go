package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestConnectionsMatchTable2Rows(t *testing.T) {
	conns := EDBConnections()
	names := map[string]int{}
	lines := 0
	for _, c := range conns {
		names[c.Name] = c.Count
		lines += c.Count
	}
	// The prototype wires 12 physical lines (code marker ×2).
	if lines != 12 {
		t.Fatalf("physical lines = %d", lines)
	}
	for _, want := range []string{
		"Capacitor sense, manipulate", "Regulator sense, level reference",
		"Debugger->Target comm.", "Target->Debugger comm.", "Code marker",
		"UART RX", "UART TX", "RF RX", "RF TX", "I2C SCL", "I2C SDA",
	} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing connection %q", want)
		}
	}
	if names["Code marker"] != 2 {
		t.Fatal("code marker must have two lines")
	}
}

func TestWorstCaseTotalUnderOneMicroamp(t *testing.T) {
	// The paper's headline: every connection together leaks < 1 µA,
	// ~0.2 % of the MCU's active current.
	rng := sim.NewRNG(5)
	sm := NewSourceMeter(rng.Split("sm"))
	var total float64
	for _, c := range EDBConnections() {
		inst := c.Instantiate(rng.Split(c.Name))
		worst := 0.0
		for _, state := range []LogicState{High, Low} {
			v := VCharacterize
			if state == Low {
				v = 0
			}
			st := sm.Characterize(inst, state, v, 25)
			if w := math.Abs(float64(st.WorstCase())); w > worst {
				worst = w
			}
		}
		total += worst * float64(c.Count)
	}
	if total >= 1e-6 {
		t.Fatalf("worst-case total = %v A, must be < 1 µA", total)
	}
	if total < 100e-9 {
		t.Fatalf("worst-case total = %v A, implausibly small", total)
	}
}

func TestHighStateDominates(t *testing.T) {
	// On target-driven digital lines, high-state leakage dominates
	// low-state by an order of magnitude (Table 2's structure).
	rng := sim.NewRNG(6)
	sm := NewSourceMeter(rng.Split("sm"))
	for _, c := range EDBConnections() {
		if c.Kind != DigitalTargetDriven {
			continue
		}
		inst := c.Instantiate(rng.Split(c.Name))
		hi := sm.Characterize(inst, High, VCharacterize, 25)
		lo := sm.Characterize(inst, Low, 0, 25)
		if float64(hi.Avg) < 10*math.Abs(float64(lo.Avg)) {
			t.Fatalf("%s: high %v not >> low %v", c.Name, hi.Avg, lo.Avg)
		}
	}
}

func TestLeakageScalesWithVoltage(t *testing.T) {
	// The CMOS-leakage mean scales linearly with the applied voltage
	// (part-to-part deviation is a fixed offset, so test with Part = 0).
	conn := &Connection{
		Name: "test-line", Kind: DigitalTargetDriven, Count: 1,
		Chain: []*Component{{
			Name:      "buffer",
			HighState: Leakage{Mean: units.NanoAmps(64)},
		}},
	}
	inst := conn.Instantiate(sim.NewRNG(7))
	at24 := float64(inst.Typical(High, 2.4))
	at12 := float64(inst.Typical(High, 1.2))
	if math.Abs(at24/at12-2.0) > 0.01 {
		t.Fatalf("leakage should scale ~linearly with V: %v vs %v", at24, at12)
	}
}

func TestTypicalIsDeterministic(t *testing.T) {
	rng := sim.NewRNG(8)
	inst := EDBConnections()[0].Instantiate(rng.Split("x"))
	a := inst.Typical(High, 2.0)
	b := inst.Typical(High, 2.0)
	if a != b {
		t.Fatal("Typical must not consume randomness")
	}
}

func TestMeasurementStatsOrdering(t *testing.T) {
	rng := sim.NewRNG(9)
	sm := NewSourceMeter(rng.Split("sm"))
	inst := EDBConnections()[4].Instantiate(rng.Split("cm"))
	st := sm.Characterize(inst, High, VCharacterize, 50)
	if !(st.Min <= st.Avg && st.Avg <= st.Max) {
		t.Fatalf("stats ordering: %v", st)
	}
	if st.N != 50 {
		t.Fatalf("n = %d", st.N)
	}
	if st.String() == "" {
		t.Fatal("stats string")
	}
}

func TestWorstCasePicksLargerMagnitude(t *testing.T) {
	st := MeasurementStats{Min: -5, Max: 3}
	if st.WorstCase() != -5 {
		t.Fatal("worst case must be the larger magnitude")
	}
	st = MeasurementStats{Min: -1, Max: 4}
	if st.WorstCase() != 4 {
		t.Fatal("worst case must be the larger magnitude")
	}
}

func TestADCQuantization(t *testing.T) {
	adc := NewADC(sim.NewRNG(10))
	if adc.Levels() != 4096 {
		t.Fatalf("levels = %d", adc.Levels())
	}
	lsb := float64(adc.LSB())
	if lsb < 0.0007 || lsb > 0.0008 {
		t.Fatalf("LSB = %v, want ~0.73 mV", lsb)
	}
	if adc.String() == "" {
		t.Fatal("adc string")
	}
}

func TestADCAccuracyNearOneMillivolt(t *testing.T) {
	// §5.2.2: "A 12-bit ADC with effective resolution of approximately
	// 1 mV". Repeated readings of a fixed input should scatter ~1 mV.
	adc := NewADC(sim.NewRNG(11))
	var sum, sq float64
	n := 2000
	for i := 0; i < n; i++ {
		v := float64(adc.Read(2.3))
		sum += v
		sq += (v - 2.3) * (v - 2.3)
	}
	rmse := math.Sqrt(sq / float64(n))
	if rmse > 0.002 {
		t.Fatalf("ADC rmse = %v V, want ~1 mV", rmse)
	}
	if math.Abs(sum/float64(n)-2.3) > 0.002 {
		t.Fatalf("ADC mean = %v", sum/float64(n))
	}
}

func TestADCClamps(t *testing.T) {
	adc := NewADC(sim.NewRNG(12))
	if adc.Sample(-1) != 0 {
		t.Fatal("negative input must clamp to code 0")
	}
	if int(adc.Sample(10)) != adc.Levels()-1 {
		t.Fatal("over-range input must clamp to full scale")
	}
}

func TestADCMonotone(t *testing.T) {
	adc := NewADC(sim.NewRNG(13))
	adc.NoiseSD = 0 // pure quantization
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 3))
		b = math.Abs(math.Mod(b, 3))
		if a > b {
			a, b = b, a
		}
		return adc.Sample(units.Volts(a)) <= adc.Sample(units.Volts(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChargeDischargePulses(t *testing.T) {
	cd := NewChargeDischarge()
	c := units.MicroFarads(47)
	v1 := cd.ChargePulse(2.0, c)
	if v1 <= 2.0 {
		t.Fatal("charge pulse must raise voltage")
	}
	// dV = I·dt/C = 5 mA · 500 µs / 47 µF ≈ 53 mV.
	if math.Abs(float64(v1-2.0)-0.0532) > 0.002 {
		t.Fatalf("charge pulse dV = %v", v1-2.0)
	}
	v2 := cd.DischargePulse(2.0, c)
	if v2 >= 2.0 {
		t.Fatal("discharge pulse must lower voltage")
	}
	// Exponential decay: dt/RC = 500µs/47ms ≈ 1.06 % of V.
	if math.Abs(float64(2.0-v2)-2.0*0.010582) > 0.002 {
		t.Fatalf("discharge pulse dV = %v", 2.0-v2)
	}
}

func TestLogicStateString(t *testing.T) {
	if High.String() != "high" || Low.String() != "low" {
		t.Fatal("state strings")
	}
}
