// Package circuit models EDB's analog hardware: the instrumentation
// amplifiers that sense the target's capacitor and regulator rails, the
// low-leakage digital buffers and level shifters on every monitored I/O
// line, the keeper-diode charge/discharge circuit, EDB's 12-bit ADC, and a
// source-meter instrument.
//
// Energy-interference-freedom is a circuit property before it is a software
// property: §4 of the paper explains that every physical connection between
// EDB and the target is designed to minimize current flow into or out of
// the target's power supply, and Table 2 characterizes the residual
// worst-case leakage of each connection (totalling 836.51 nA, about 0.2 %
// of the target MCU's active current). This package reproduces that
// characterization: each connection is a chain of component models whose
// leakage parameters are calibrated to the published measurements of the
// prototype, with Monte-Carlo part-to-part and reading-to-reading
// variation.
package circuit

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// LogicState is the drive state of a digital connection's endpoint.
type LogicState int

const (
	// Low: the driving endpoint holds the line at 0 V.
	Low LogicState = iota
	// High: the driving endpoint holds the line at the operating voltage
	// (2.4 V in the paper's characterization — the maximum that can arise
	// on any connection).
	High
)

func (s LogicState) String() string {
	if s == High {
		return "high"
	}
	return "low"
}

// VCharacterize is the voltage the paper applies when characterizing the
// high state: 2.4 V, "the maximum voltage that can arise on any of the
// connections".
const VCharacterize units.Volts = 2.4

// Leakage is a component's DC leakage behavior in one logic state: a mean
// current plus part-to-part spread (systematic per instance) and
// reading-to-reading noise. Currents follow the paper's sign convention:
// positive flows from the driving endpoint into the far end (i.e., drawn
// from the target when the target drives the line).
type Leakage struct {
	Mean units.Amps // typical leakage
	Part units.Amps // 1-σ part-to-part spread
	Read units.Amps // 1-σ reading noise
}

// Component is an element in a connection's signal chain contributing
// leakage current.
type Component struct {
	Name string
	// HighState and LowState describe the component's leakage when the
	// connection is driven high and low respectively. Analog connections
	// use only HighState (characterized at the worst-case 2.4 V).
	HighState Leakage
	LowState  Leakage
}

// instantiate fixes the part-to-part variation of one physical instance.
type componentInstance struct {
	c         *Component
	partHigh  units.Amps
	partLow   units.Amps
	voltScale float64 // CMOS leakage grows with applied voltage
}

func (c *Component) instantiate(rng *sim.RNG) componentInstance {
	return componentInstance{
		c:        c,
		partHigh: units.Amps(rng.Gaussian(0, float64(c.HighState.Part))),
		partLow:  units.Amps(rng.Gaussian(0, float64(c.LowState.Part))),
	}
}

// current returns one sampled reading for the instance in the given state
// at the given applied voltage.
func (ci componentInstance) current(state LogicState, v units.Volts, rng *sim.RNG) units.Amps {
	var l Leakage
	var part units.Amps
	if state == High {
		l, part = ci.c.HighState, ci.partHigh
	} else {
		l, part = ci.c.LowState, ci.partLow
	}
	// Leakage scales roughly linearly with the applied voltage relative to
	// the characterization point (reverse-biased junction + CMOS input
	// leakage are monotone in V).
	scale := 1.0
	if state == High && VCharacterize > 0 {
		scale = float64(v) / float64(VCharacterize)
	}
	mean := float64(l.Mean)*scale + float64(part)
	return units.Amps(rng.Gaussian(mean, float64(l.Read)))
}

// Kind distinguishes connection classes; the paper's Table 2 groups
// connections by function.
type Kind int

const (
	// Analog connections (capacitor / regulator sense) pass through the
	// high-impedance instrumentation amplifier.
	Analog Kind = iota
	// DigitalTargetDriven lines are driven by the target into EDB's
	// low-leakage buffer (Target→Debugger comm, code markers, UART, RF).
	DigitalTargetDriven
	// DigitalDebuggerDriven lines are driven by EDB into the target
	// (Debugger→Target comm).
	DigitalDebuggerDriven
	// OpenDrain lines (I2C) idle high through pull-ups and leak almost
	// nothing through the isolator.
	OpenDrain
)

// Connection is one physical wire between EDB and the target, with the
// chain of EDB components hanging off it.
type Connection struct {
	Name  string
	Kind  Kind
	Chain []*Component
	// Count is the number of identical physical lines (the prototype has
	// two code-marker lines, reported as "Code marker (x2)").
	Count int
}

// Instance is a Connection with its component variations fixed — one
// physical EDB board's copy of the wire.
type Instance struct {
	Conn  *Connection
	parts []componentInstance
}

// Instantiate fixes part-to-part variation using rng.
func (c *Connection) Instantiate(rng *sim.RNG) *Instance {
	inst := &Instance{Conn: c}
	for _, comp := range c.Chain {
		inst.parts = append(inst.parts, comp.instantiate(rng))
	}
	return inst
}

// Current returns one sampled DC current reading for the connection in the
// given state with voltage v applied at the driving endpoint.
func (inst *Instance) Current(state LogicState, v units.Volts, rng *sim.RNG) units.Amps {
	var sum units.Amps
	for _, p := range inst.parts {
		sum += p.current(state, v, rng)
	}
	return sum
}

// Typical returns the instance's noise-free leakage (mean plus this
// instance's fixed part-to-part deviation) in the given state at voltage v.
// The device's energy integrator uses it so that passive interference is
// deterministic for a given board instance.
func (inst *Instance) Typical(state LogicState, v units.Volts) units.Amps {
	var sum units.Amps
	for _, p := range inst.parts {
		var l Leakage
		var part units.Amps
		if state == High {
			l, part = p.c.HighState, p.partHigh
		} else {
			l, part = p.c.LowState, p.partLow
		}
		scale := 1.0
		if state == High && VCharacterize > 0 {
			scale = float64(v) / float64(VCharacterize)
		}
		sum += units.Amps(float64(l.Mean)*scale) + part
	}
	return sum
}

// TypicalCoeffs decomposes Typical into voltage coefficients:
// Typical(state, v) = base + slope·(v/VCharacterize). Only high-state mean
// leakage tracks the applied voltage; low-state leakage is constant, so its
// slope is zero with the mean folded into base. EDB's energy integrator
// caches these per line state to avoid walking the component chains every
// quantum.
func (inst *Instance) TypicalCoeffs(state LogicState) (base, slope units.Amps) {
	for _, p := range inst.parts {
		if state == High {
			base += p.partHigh
			slope += units.Amps(p.c.HighState.Mean)
		} else {
			base += units.Amps(p.c.LowState.Mean) + p.partLow
		}
	}
	return base, slope
}

// Standard EDB component library, with leakage parameters calibrated to the
// prototype characterization published in Table 2 of the paper. The
// dominant term on target-driven digital lines is the buffer's input
// leakage in the high state (~60–70 nA typical, up to ~140 nA worst case);
// low-state lines leak a couple of nA out of the target through the
// protection network; the instrumentation amp and I2C isolator leak well
// under 1 nA.

// InstrumentationAmp returns the dual high-impedance unity-gain amp used on
// Vcap and Vreg (§4.1).
func InstrumentationAmp() *Component {
	return &Component{
		Name: "instrumentation-amp",
		HighState: Leakage{
			Mean: units.NanoAmps(0.14),
			Part: units.NanoAmps(0.25),
			Read: units.NanoAmps(0.45),
		},
		LowState: Leakage{
			Mean: units.NanoAmps(0.0),
			Part: units.NanoAmps(0.005),
			Read: units.NanoAmps(0.01),
		},
	}
}

// LevelReferenceBuffer returns the analog buffer in the Vreg tracking
// circuit (§4.1.2) that keeps the level shifter matched to the target rail.
func LevelReferenceBuffer() *Component {
	return &Component{
		Name: "level-reference-buffer",
		HighState: Leakage{
			Mean: units.NanoAmps(-0.003),
			Part: units.NanoAmps(0.004),
			Read: units.NanoAmps(0.01),
		},
	}
}

// LowLeakageBuffer returns the extremely-low-leakage digital buffer +
// level shifter used on target-driven lines (§4.1.2). CMOS input leakage
// dominates when the line is held high.
func LowLeakageBuffer(meanHighNA float64) *Component {
	return &Component{
		Name: "low-leakage-buffer",
		HighState: Leakage{
			Mean: units.NanoAmps(meanHighNA),
			Part: units.NanoAmps(meanHighNA * 0.08),
			Read: units.NanoAmps(meanHighNA * 0.30),
		},
		LowState: Leakage{
			Mean: units.NanoAmps(-1.9),
			Part: units.NanoAmps(0.12),
			Read: units.NanoAmps(0.1),
		},
	}
}

// DebuggerDriveBuffer returns the EDB-side driver for debugger→target
// lines; it leaks almost nothing into the target because EDB sources the
// signal.
func DebuggerDriveBuffer() *Component {
	return &Component{
		Name: "debugger-drive-buffer",
		HighState: Leakage{
			Mean: units.NanoAmps(0.0),
			Part: units.NanoAmps(0.005),
			Read: units.NanoAmps(0.01),
		},
		LowState: Leakage{
			Mean: units.NanoAmps(-0.02),
			Part: units.NanoAmps(0.004),
			Read: units.NanoAmps(0.006),
		},
	}
}

// I2CIsolator returns the open-drain isolator on the I2C lines.
func I2CIsolator() *Component {
	return &Component{
		Name: "i2c-isolator",
		HighState: Leakage{
			Mean: units.NanoAmps(0.036),
			Part: units.NanoAmps(0.015),
			Read: units.NanoAmps(0.02),
		},
		LowState: Leakage{
			Mean: units.NanoAmps(-0.18),
			Part: units.NanoAmps(0.04),
			Read: units.NanoAmps(0.05),
		},
	}
}

// KeeperDiode returns the charge/discharge circuit's keeper diode; its
// reverse leakage appears on the capacitor sense/manipulate connection.
func KeeperDiode() *Component {
	return &Component{
		Name: "keeper-diode",
		HighState: Leakage{
			Mean: units.NanoAmps(0.0),
			Part: units.NanoAmps(0.6),
			Read: units.NanoAmps(0.5),
		},
	}
}

// EDBConnections returns the full set of physical connections between EDB
// and a target, matching the rows of Table 2.
func EDBConnections() []*Connection {
	return []*Connection{
		{
			Name:  "Capacitor sense, manipulate",
			Kind:  Analog,
			Chain: []*Component{InstrumentationAmp(), KeeperDiode()},
			Count: 1,
		},
		{
			Name:  "Regulator sense, level reference",
			Kind:  Analog,
			Chain: []*Component{LevelReferenceBuffer()},
			Count: 1,
		},
		{
			Name:  "Debugger->Target comm.",
			Kind:  DigitalDebuggerDriven,
			Chain: []*Component{DebuggerDriveBuffer()},
			Count: 1,
		},
		{
			Name:  "Target->Debugger comm.",
			Kind:  DigitalTargetDriven,
			Chain: []*Component{LowLeakageBuffer(63)},
			Count: 1,
		},
		{
			Name:  "Code marker",
			Kind:  DigitalTargetDriven,
			Chain: []*Component{LowLeakageBuffer(64)},
			Count: 2,
		},
		{
			Name:  "UART RX",
			Kind:  DigitalTargetDriven,
			Chain: []*Component{LowLeakageBuffer(65)},
			Count: 1,
		},
		{
			Name:  "UART TX",
			Kind:  DigitalTargetDriven,
			Chain: []*Component{LowLeakageBuffer(66)},
			Count: 1,
		},
		{
			Name:  "RF RX",
			Kind:  DigitalTargetDriven,
			Chain: []*Component{LowLeakageBuffer(66)},
			Count: 1,
		},
		{
			Name:  "RF TX",
			Kind:  DigitalTargetDriven,
			Chain: []*Component{LowLeakageBuffer(66.5)},
			Count: 1,
		},
		{
			Name:  "I2C SCL",
			Kind:  OpenDrain,
			Chain: []*Component{I2CIsolator()},
			Count: 1,
		},
		{
			Name:  "I2C SDA",
			Kind:  OpenDrain,
			Chain: []*Component{I2CIsolator()},
			Count: 1,
		},
	}
}

// SourceMeter models the Keithley 2450 used in §5.2.1: it applies a voltage
// to the driving endpoint of a connection and measures the resulting
// current with a small instrument noise floor.
type SourceMeter struct {
	NoiseFloor units.Amps // 1-σ instrument noise
	rng        *sim.RNG
}

// NewSourceMeter returns a source meter with a 10 pA noise floor.
func NewSourceMeter(rng *sim.RNG) *SourceMeter {
	return &SourceMeter{NoiseFloor: units.Amps(10e-12), rng: rng}
}

// Measure applies v to the connection instance in the given state and
// returns the measured current.
func (sm *SourceMeter) Measure(inst *Instance, state LogicState, v units.Volts) units.Amps {
	i := inst.Current(state, v, sm.rng)
	return i + units.Amps(sm.rng.Gaussian(0, float64(sm.NoiseFloor)))
}

// MeasurementStats summarizes repeated current measurements.
type MeasurementStats struct {
	Min, Avg, Max units.Amps
	N             int
}

// Characterize runs n measurements of a connection instance in one state
// and returns min/avg/max, as Table 2 reports.
func (sm *SourceMeter) Characterize(inst *Instance, state LogicState, v units.Volts, n int) MeasurementStats {
	st := MeasurementStats{Min: units.Amps(math.Inf(1)), Max: units.Amps(math.Inf(-1)), N: n}
	var sum float64
	for i := 0; i < n; i++ {
		cur := sm.Measure(inst, state, v)
		if cur < st.Min {
			st.Min = cur
		}
		if cur > st.Max {
			st.Max = cur
		}
		sum += float64(cur)
	}
	st.Avg = units.Amps(sum / float64(n))
	return st
}

// WorstCase returns the largest-magnitude current in the stats.
func (st MeasurementStats) WorstCase() units.Amps {
	if math.Abs(float64(st.Min)) > math.Abs(float64(st.Max)) {
		return st.Min
	}
	return st.Max
}

func (st MeasurementStats) String() string {
	return fmt.Sprintf("min=%s avg=%s max=%s (n=%d)", st.Min, st.Avg, st.Max, st.N)
}
