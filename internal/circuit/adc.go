package circuit

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// ADC models a successive-approximation analog-to-digital converter like
// the 12-bit ADC in EDB's MCU (§5.2.2): quantization to Bits of resolution
// over [0, VRef], plus input-referred noise and a fixed per-instance offset
// error. The paper notes the effective resolution is approximately 1 mV,
// which bounds how accurately EDB can save and restore the target's energy
// level (Table 3).
type ADC struct {
	Bits    int
	VRef    units.Volts
	NoiseSD units.Volts // input-referred noise, 1-σ
	offset  units.Volts // per-instance offset error

	rng *sim.RNG
}

// NewADC returns a 12-bit ADC with a 3.0 V reference, ~0.4 mV input noise
// and a sub-LSB instance offset — effective resolution ≈ 1 mV.
func NewADC(rng *sim.RNG) *ADC {
	a := &ADC{
		Bits:    12,
		VRef:    3.0,
		NoiseSD: units.MilliVolts(0.4),
		rng:     rng,
	}
	a.offset = units.Volts(rng.Gaussian(0, float64(units.MilliVolts(0.3))))
	return a
}

// Levels returns the number of quantization levels (2^Bits).
func (a *ADC) Levels() int { return 1 << a.Bits }

// LSB returns the voltage of one least-significant bit.
func (a *ADC) LSB() units.Volts {
	return units.Volts(float64(a.VRef) / float64(a.Levels()))
}

// Sample converts an input voltage to a code.
func (a *ADC) Sample(v units.Volts) uint16 {
	vin := float64(v) + float64(a.offset) + a.rng.Gaussian(0, float64(a.NoiseSD))
	code := int(vin / float64(a.LSB()))
	if code < 0 {
		code = 0
	}
	if code >= a.Levels() {
		code = a.Levels() - 1
	}
	return uint16(code)
}

// CodeToVolts converts an ADC code back to the voltage it represents
// (mid-tread convention).
func (a *ADC) CodeToVolts(code uint16) units.Volts {
	return units.Volts((float64(code) + 0.5) * float64(a.LSB()))
}

// Read samples the input and returns the reconstructed voltage — the value
// EDB's software sees.
func (a *ADC) Read(v units.Volts) units.Volts {
	return a.CodeToVolts(a.Sample(v))
}

// RNGState returns the noise stream position, for machine snapshots.
func (a *ADC) RNGState() sim.RNGState { return a.rng.State() }

// RestoreRNGState repositions the noise stream from a snapshot.
func (a *ADC) RestoreRNGState(st sim.RNGState) { a.rng.RestoreState(st) }

func (a *ADC) String() string {
	return fmt.Sprintf("ADC(%d-bit, VRef=%s, LSB=%s)", a.Bits, a.VRef, a.LSB())
}

// ChargeDischarge models EDB's custom charge/discharge circuit (§4.1.1): a
// GPIO-driven charge path through a low-pass filter and keeper diode, and a
// discharge path through a fixed resistive load. EDB's software runs an
// iterative control loop around these primitives to converge the capacitor
// to a desired voltage.
type ChargeDischarge struct {
	// ChargeCurrent is the current delivered while the charge GPIO is
	// active (set by the filter components and supply rail).
	ChargeCurrent units.Amps
	// DischargeR is the fixed resistive load on the discharge path.
	DischargeR units.Ohms
	// PulseTime is the dwell of one control-loop actuation between ADC
	// readings; it sets the control deadband together with the currents.
	PulseTime units.Seconds
}

// NewChargeDischarge returns the prototype's charge/discharge circuit
// parameters. With a 47 µF target capacitor, one pulse moves the rail tens
// of millivolts — matching the ~54 mV restore discrepancy of Table 3.
func NewChargeDischarge() *ChargeDischarge {
	return &ChargeDischarge{
		ChargeCurrent: units.MilliAmps(5),
		DischargeR:    1000,
		PulseTime:     units.MicroSeconds(500),
	}
}

// ChargePulse applies one charge pulse to a capacitor at voltage v and
// capacitance c, returning the new voltage.
func (cd *ChargeDischarge) ChargePulse(v units.Volts, c units.Farads) units.Volts {
	dv := float64(cd.ChargeCurrent) * float64(cd.PulseTime) / float64(c)
	return v + units.Volts(dv)
}

// DischargePulse applies one discharge pulse through the resistive load,
// returning the new voltage (exponential decay over the pulse).
func (cd *ChargeDischarge) DischargePulse(v units.Volts, c units.Farads) units.Volts {
	// dV/dt = -V/(RC)  =>  V' = V·exp(-dt/RC)
	rc := float64(cd.DischargeR) * float64(c)
	return units.Volts(float64(v) * math.Exp(-float64(cd.PulseTime)/rc))
}
