// Package sim provides the discrete-event simulation kernel underneath the
// EDB reproduction: a cycle-accurate clock, a deterministic event scheduler,
// and seeded randomness.
//
// The target device in the paper (a WISP 5) runs its MSP430FR MCU at 4 MHz;
// the simulator counts time in clock cycles of a configurable frequency and
// converts to seconds only at the edges (energy integration, trace
// timestamps). All randomness used by any experiment flows through RNG so
// that every table and figure regenerates bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// Cycles counts MCU clock cycles of simulated time.
type Cycles uint64

// DefaultClockHz is the default simulated MCU clock: 4 MHz, matching the
// WISP 5 configuration in the paper's evaluation (§5.1).
const DefaultClockHz = 4_000_000

// Clock tracks simulated time in cycles and converts to wall-clock seconds.
type Clock struct {
	hz    uint64
	now   Cycles
	sched *scheduler
}

// NewClock returns a clock running at hz cycles per second. A non-positive
// hz falls back to DefaultClockHz.
func NewClock(hz uint64) *Clock {
	if hz == 0 {
		hz = DefaultClockHz
	}
	c := &Clock{hz: hz}
	c.sched = newScheduler(c)
	return c
}

// Hz returns the clock frequency in cycles per second.
func (c *Clock) Hz() uint64 { return c.hz }

// Now returns the current simulated time in cycles.
func (c *Clock) Now() Cycles { return c.now }

// Time returns the current simulated time in seconds.
func (c *Clock) Time() units.Seconds { return c.ToSeconds(c.now) }

// ToSeconds converts a cycle count to seconds at this clock's frequency.
func (c *Clock) ToSeconds(n Cycles) units.Seconds {
	return units.Seconds(float64(n) / float64(c.hz))
}

// ToCycles converts a duration in seconds to cycles, rounding to nearest.
func (c *Clock) ToCycles(s units.Seconds) Cycles {
	if s <= 0 {
		return 0
	}
	return Cycles(float64(s)*float64(c.hz) + 0.5)
}

// Advance moves simulated time forward by n cycles, firing any events whose
// deadline falls inside the window, in deadline order. Events scheduled by
// callbacks within the window also fire if they land inside it.
func (c *Clock) Advance(n Cycles) {
	target := c.now + n
	for {
		ev, ok := c.sched.peek()
		if !ok || ev.at > target {
			break
		}
		c.now = ev.at
		c.sched.pop()
		ev.fn()
		// Recycle only after the callback returns, so a callback that
		// cancels or reschedules its own handle never observes a reused
		// object. Handles are dead once fired (see the Event doc).
		c.sched.release(ev)
	}
	c.now = target
}

// Schedule registers fn to run when the clock reaches "at". Events at the
// same cycle fire in the order they were scheduled. It returns a handle that
// can cancel the event.
func (c *Clock) Schedule(at Cycles, fn func()) *Event {
	return c.sched.add(at, fn)
}

// ScheduleAfter registers fn to run delta cycles from now.
func (c *Clock) ScheduleAfter(delta Cycles, fn func()) *Event {
	return c.Schedule(c.now+delta, fn)
}

// Pending reports the number of events still scheduled.
func (c *Clock) Pending() int { return c.sched.len() }

// SetNow repositions the clock for a snapshot restore. Scheduled events are
// closures and cannot ride along in a snapshot, so repositioning is only
// legal while the schedule is empty (machine snapshots are taken at
// quiescent points that guarantee this).
func (c *Clock) SetNow(now Cycles) error {
	if n := c.sched.len(); n != 0 {
		return fmt.Errorf("sim: cannot reposition clock with %d pending events", n)
	}
	c.now = now
	return nil
}

// NextEventAt returns the cycle of the earliest scheduled event, if any.
// Fast-forward paths use it to bound how far they may jump without skipping
// a callback.
func (c *Clock) NextEventAt() (Cycles, bool) {
	ev, ok := c.sched.peek()
	if !ok {
		return 0, false
	}
	return ev.at, true
}

// Event is a scheduled callback. Cancel prevents it from firing.
//
// A handle is live until its event fires; once fired, the object is recycled
// through the scheduler's free list and must not be retained or cancelled
// (a later Schedule may hand the same object back for an unrelated event).
// Cancelled events are not recycled, so calling Cancel any number of times
// on a cancelled handle remains a safe no-op.
type Event struct {
	at    Cycles
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
	sched *scheduler
}

// At returns the cycle at which the event fires.
func (e *Event) At() Cycles { return e.at }

// Cancel removes the event from the schedule. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e.index >= 0 && e.sched != nil {
		e.sched.remove(e)
	}
}

// scheduler is a min-heap of events ordered by (at, seq). Fired events are
// recycled through a free list so steady-state scheduling (RFID query loops,
// periodic samplers) allocates nothing.
type scheduler struct {
	clock *Clock
	h     eventHeap
	seq   uint64
	free  []*Event
}

func newScheduler(c *Clock) *scheduler { return &scheduler{clock: c} }

func (s *scheduler) add(at Cycles, fn func()) *Event {
	if at < s.clock.now {
		at = s.clock.now
	}
	s.seq++
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = Event{at: at, seq: s.seq, fn: fn, sched: s}
	} else {
		ev = &Event{at: at, seq: s.seq, fn: fn, sched: s}
	}
	heap.Push(&s.h, ev)
	return ev
}

// release returns a fired event to the free list. Cancelled events are left
// to the garbage collector instead: user code may hold their handles and
// call Cancel again later, which must stay a no-op.
func (s *scheduler) release(ev *Event) {
	ev.fn = nil
	s.free = append(s.free, ev)
}

func (s *scheduler) peek() (*Event, bool) {
	if len(s.h) == 0 {
		return nil, false
	}
	return s.h[0], true
}

func (s *scheduler) pop() *Event {
	ev := heap.Pop(&s.h).(*Event)
	ev.index = -1
	return ev
}

func (s *scheduler) remove(ev *Event) {
	heap.Remove(&s.h, ev.index)
	ev.index = -1
}

func (s *scheduler) len() int { return len(s.h) }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// RNG is a deterministic random source. All stochastic models (harvest
// jitter, component variation, sensor noise, RF corruption) draw from an RNG
// seeded per experiment, so results are reproducible.
type RNG struct {
	r    *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the stdlib source and counts Int63 draws, so a
// stream position can be captured (State) and replayed (RestoreState). It
// deliberately does NOT implement rand.Source64: rand.Rand then derives
// Uint64 from two Int63 draws with exactly the bit layout the underlying
// source's own Uint64 uses, so hiding Source64 changes no stream while
// funneling every consumption through the counted Int63.
type countingSource struct {
	src   rand.Source
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// RNGState identifies a position in an RNG's deterministic stream: the seed
// plus the number of source draws consumed. Two RNGs with equal states
// produce identical futures.
type RNGState struct {
	Seed  int64
	Draws uint64
}

// NewRNG returns a deterministic RNG with the given seed.
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed)}
	return &RNG{r: rand.New(src), src: src, seed: seed}
}

// State captures the RNG's stream position for a machine snapshot.
func (g *RNG) State() RNGState { return RNGState{Seed: g.seed, Draws: g.src.draws} }

// RestoreState repositions the RNG to a captured stream position. When the
// target is ahead of the current position on the same seed (the warm-fork
// case: a freshly built rig fast-forwarding to a snapshot) the source is
// advanced in place; otherwise the stream is rebuilt from the seed.
func (g *RNG) RestoreState(st RNGState) {
	if st.Seed != g.seed || st.Draws < g.src.draws {
		g.seed = st.Seed
		g.src = &countingSource{src: rand.NewSource(st.Seed)}
		g.r = rand.New(g.src)
	}
	// Discard at the source level: rand.Rand buffers nothing outside Read
	// (unused here), so source position fully determines the stream.
	for g.src.draws < st.Draws {
		g.src.Int63()
	}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uint16 returns a uniform 16-bit value (e.g. for RN16 handles).
func (g *RNG) Uint16() uint16 { return uint16(g.r.Uint32()) }

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
func (g *RNG) Jitter(base, frac float64) float64 {
	return base * (1 + frac*(2*g.r.Float64()-1))
}

// Gaussian returns a normal value with the given mean and standard deviation.
func (g *RNG) Gaussian(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Split derives a child RNG whose stream is independent of, but
// deterministically derived from, this one. Use it to give each subsystem
// its own stream so adding draws in one place does not perturb another.
func (g *RNG) Split(label string) *RNG {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

func (e *Event) String() string {
	return fmt.Sprintf("event@%d", e.at)
}
