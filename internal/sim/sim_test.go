package sim

import (
	"testing"

	"repro/internal/units"
)

func TestClockConversionsRoundTrip(t *testing.T) {
	c := NewClock(4_000_000)
	if c.Hz() != 4_000_000 {
		t.Fatalf("hz = %d", c.Hz())
	}
	// 4000 cycles at 4 MHz = 1 ms.
	if got := c.ToSeconds(4000); got != units.MilliSeconds(1) {
		t.Fatalf("4000 cycles = %v", got)
	}
	if got := c.ToCycles(units.MilliSeconds(1)); got != 4000 {
		t.Fatalf("1ms = %d cycles", got)
	}
	if c.ToCycles(-1) != 0 {
		t.Fatal("negative duration must be 0 cycles")
	}
}

func TestClockDefault(t *testing.T) {
	if NewClock(0).Hz() != DefaultClockHz {
		t.Fatal("zero hz must fall back to default")
	}
}

func TestAdvanceFiresEventsInOrder(t *testing.T) {
	c := NewClock(1000)
	var order []int
	c.Schedule(10, func() { order = append(order, 1) })
	c.Schedule(5, func() { order = append(order, 0) })
	c.Schedule(10, func() { order = append(order, 2) }) // same cycle: FIFO
	c.Advance(20)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != 20 {
		t.Fatalf("now = %d", c.Now())
	}
}

func TestEventsScheduledDuringAdvance(t *testing.T) {
	c := NewClock(1000)
	var fired []Cycles
	c.Schedule(5, func() {
		fired = append(fired, c.Now())
		c.ScheduleAfter(3, func() { fired = append(fired, c.Now()) }) // at 8
		c.ScheduleAfter(100, func() { fired = append(fired, c.Now()) })
	})
	c.Advance(20)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("fired = %v", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestEventCancel(t *testing.T) {
	c := NewClock(1000)
	fired := false
	ev := c.Schedule(5, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // idempotent
	c.Advance(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	c := NewClock(1000)
	c.Advance(50)
	fired := false
	c.Schedule(10, func() { fired = true }) // in the past
	c.Advance(1)
	if !fired {
		t.Fatal("past-scheduled event must fire on the next advance")
	}
}

func TestCancelWhileFiring(t *testing.T) {
	c := NewClock(1000)
	var later *Event
	bFired := false
	// A fires first at cycle 5 (lower seq) and cancels B, which is queued
	// for the same cycle. B must not fire.
	c.Schedule(5, func() { later.Cancel() })
	later = c.Schedule(5, func() { bFired = true })
	c.Advance(10)
	if bFired {
		t.Fatal("event cancelled by a same-cycle callback still fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestRescheduleInsideCallback(t *testing.T) {
	c := NewClock(1000)
	var fired []Cycles
	var tick func()
	tick = func() {
		fired = append(fired, c.Now())
		if len(fired) < 3 {
			c.ScheduleAfter(5, tick)
		}
	}
	c.ScheduleAfter(5, tick)
	c.Advance(100)
	if len(fired) != 3 || fired[0] != 5 || fired[1] != 10 || fired[2] != 15 {
		t.Fatalf("fired = %v", fired)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestScheduleAtCurrentCycleInsideCallback(t *testing.T) {
	c := NewClock(1000)
	var fired []int
	c.Schedule(5, func() {
		fired = append(fired, 1)
		// Lands at the current cycle with a later seq: fires within the
		// same Advance, after this callback returns.
		c.Schedule(5, func() { fired = append(fired, 2) })
	})
	c.Advance(10)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestFreeListReuseNoDoubleFire(t *testing.T) {
	c := NewClock(1000)
	aCount, bCount := 0, 0
	a := c.Schedule(5, func() { aCount++ })
	c.Advance(6) // a fires and is recycled
	b := c.Schedule(10, func() { bCount++ })
	if a != b {
		t.Fatal("expected the fired event object to be recycled")
	}
	c.Advance(10)
	if aCount != 1 || bCount != 1 {
		t.Fatalf("aCount = %d, bCount = %d (recycled event must fire exactly once)", aCount, bCount)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestCancelledEventNotRecycled(t *testing.T) {
	c := NewClock(1000)
	fired := false
	ev := c.Schedule(5, func() { fired = true })
	ev.Cancel()
	// A cancelled handle may be cancelled again at any later point, even
	// after other events have been scheduled and recycled.
	next := c.Schedule(7, func() {})
	if next == ev {
		t.Fatal("cancelled event must not be recycled")
	}
	c.Advance(20)
	ev.Cancel()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestNextEventAt(t *testing.T) {
	c := NewClock(1000)
	if _, ok := c.NextEventAt(); ok {
		t.Fatal("empty schedule reported an event")
	}
	c.Schedule(42, func() {})
	c.Schedule(17, func() {})
	at, ok := c.NextEventAt()
	if !ok || at != 17 {
		t.Fatalf("NextEventAt = %d, %v", at, ok)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Float64() == NewRNG(2).Float64() {
		t.Fatal("different seeds gave identical first draw (suspicious)")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7).Split("x")
	b := NewRNG(7).Split("x")
	if a.Float64() != b.Float64() {
		t.Fatal("split with same label/seed must be deterministic")
	}
	c := NewRNG(7).Split("y")
	same := true
	d := NewRNG(7).Split("x")
	for i := 0; i < 8; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different labels must give different streams")
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("p=0 returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("p=1 returned false")
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewRNG(11)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Gaussian(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	sd := sq/float64(n) - mean*mean
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("mean = %v", mean)
	}
	if sd < 3.6 || sd > 4.4 { // variance ≈ 4
		t.Fatalf("variance = %v", sd)
	}
}
