package sim

import (
	"testing"
)

// These tests pin the scheduler behaviors the batched fleet kernel leans
// on: it advances every tag's clock in fixed wall slices, so events landing
// exactly on a slice boundary, zero-length slices, and free-list recycling
// across thousands of slice ticks all have to behave identically to one
// long uninterrupted Advance.

// TestAdvanceZeroLength: Advance(0) is a real slice of zero width — it must
// fire events due exactly now (once) and leave the clock unmoved.
func TestAdvanceZeroLength(t *testing.T) {
	c := NewClock(0)
	c.Advance(100)

	fired := 0
	c.Schedule(100, func() { fired++ })
	c.Schedule(150, func() { fired += 100 })

	c.Advance(0)
	if fired != 1 {
		t.Fatalf("after Advance(0): fired=%d, want 1 (the due event, once)", fired)
	}
	if c.Now() != 100 {
		t.Fatalf("Advance(0) moved the clock to %d", c.Now())
	}
	// A second zero-length slice must not re-fire the recycled event.
	c.Advance(0)
	if fired != 1 {
		t.Fatalf("second Advance(0) re-fired: fired=%d", fired)
	}
}

// TestEventOnSliceBoundary: an event at exactly the end of an Advance
// window belongs to that window, not the next — and the split point must
// not change how many times it fires.
func TestEventOnSliceBoundary(t *testing.T) {
	c := NewClock(0)
	var log []Cycles
	c.Schedule(50, func() { log = append(log, c.Now()) })
	c.Schedule(100, func() { log = append(log, c.Now()) })

	c.Advance(50) // boundary lands exactly on the first event
	if len(log) != 1 || log[0] != 50 {
		t.Fatalf("after first slice: log=%v, want [50]", log)
	}
	c.Advance(50) // boundary lands exactly on the second event
	if len(log) != 2 || log[1] != 100 {
		t.Fatalf("after second slice: log=%v, want [50 100]", log)
	}
	c.Advance(50) // empty slice: nothing re-fires
	if len(log) != 2 {
		t.Fatalf("empty slice re-fired events: log=%v", log)
	}
}

// TestBoundaryScheduleFromCallback: a callback firing at the slice boundary
// that schedules a follow-up at that same cycle must see it run inside the
// same slice (same-cycle events run in scheduling order, regardless of
// where the window ends).
func TestBoundaryScheduleFromCallback(t *testing.T) {
	c := NewClock(0)
	var order []string
	c.Schedule(80, func() {
		order = append(order, "outer")
		c.Schedule(80, func() { order = append(order, "inner") })
	})
	c.Advance(80)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("boundary follow-up did not run in-slice: %v", order)
	}
}

// TestSliceSplitEquivalence: firing a periodic event train through many
// tiny slices (including zero-length ones) must produce the same firing
// sequence as one big Advance — the fleet kernel's slice size is a
// scheduling knob, never a semantic one.
func TestSliceSplitEquivalence(t *testing.T) {
	run := func(advance func(c *Clock)) []Cycles {
		c := NewClock(0)
		var log []Cycles
		var tick func()
		tick = func() {
			log = append(log, c.Now())
			if c.Now() < 1000 {
				c.ScheduleAfter(7, tick)
			}
		}
		c.Schedule(3, tick)
		advance(c)
		return log
	}

	want := run(func(c *Clock) { c.Advance(1200) })
	got := run(func(c *Clock) {
		for c.Now() < 1200 {
			c.Advance(1) // 1-cycle slices
			c.Advance(0) // interleaved zero-length slices
		}
	})
	if len(got) != len(want) {
		t.Fatalf("sliced run fired %d times, monolithic %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d: sliced at %d, monolithic at %d", i, got[i], want[i])
		}
	}
}

// TestFreeListReuseAcrossBatchTicks: the fleet kernel re-enters Advance
// thousands of times per tag; fired handles recycled through the free list
// across those re-entries must never alias a live event. Interleave
// fire/cancel/reschedule across many short ticks and check the count and
// order invariants hold.
func TestFreeListReuseAcrossBatchTicks(t *testing.T) {
	c := NewClock(0)
	fired := make(map[Cycles]int)
	var cancelled []*Event

	const (
		ticks  = 2000
		period = 3
	)
	next := Cycles(0)
	for tick := 0; tick < ticks; tick++ {
		// Top up the schedule: one firing event per period, plus one event
		// that is immediately cancelled (cancelled handles are not
		// recycled, so they must stay inert forever).
		for next <= c.Now()+period {
			at := next
			c.Schedule(at, func() { fired[at]++ })
			cancelled = append(cancelled, c.Schedule(at, func() { t.Errorf("cancelled event at %d fired", at) }))
			cancelled[len(cancelled)-1].Cancel()
			next += period
		}
		c.Advance(period)
	}

	for at, n := range fired {
		if n != 1 {
			t.Fatalf("event at %d fired %d times", at, n)
		}
	}
	if wantN := int(next / period); len(fired) != wantN {
		t.Fatalf("%d distinct events fired, want %d", len(fired), wantN)
	}
	// Stale Cancel on long-dead handles must remain a no-op even though the
	// scheduler has recycled thousands of events since.
	for _, ev := range cancelled {
		ev.Cancel()
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("stale Cancels disturbed the schedule: %d pending", got)
	}
}
