package sim

import (
	"math/rand"
	"testing"
)

// Stress the scheduler's event free list with randomized Schedule / Cancel /
// fire interleavings (including events scheduled from inside callbacks).
// Invariants:
//   - every fire happens at exactly the event's deadline,
//   - fires are ordered by (at, schedule sequence),
//   - no event fires twice, even after its object is recycled,
//   - cancelled events never fire, and double-Cancel stays a no-op,
//   - after draining, every live event has fired exactly once.
func TestSchedulerFreeListStress(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewClock(0)

	type rec struct {
		at        Cycles
		seq       int // global schedule order
		cancelled bool
		fires     int
	}
	var recs []*rec
	pending := map[int]*Event{} // id -> live handle
	var firedOrder []int
	seen := map[*Event]int{} // object identity -> times handed out
	reused := 0

	var schedule func(delta Cycles) int
	schedule = func(delta Cycles) int {
		id := len(recs)
		r := &rec{at: c.Now() + delta, seq: id}
		recs = append(recs, r)
		ev := c.Schedule(r.at, func() {
			r.fires++
			if r.cancelled {
				t.Errorf("cancelled event %d fired", id)
			}
			if c.Now() != r.at {
				t.Errorf("event %d fired at %d, scheduled for %d", id, c.Now(), r.at)
			}
			delete(pending, id)
			firedOrder = append(firedOrder, id)
			// Occasionally schedule a follow-up from inside the callback;
			// some land inside the advancing window and fire immediately.
			if rng.Intn(4) == 0 {
				schedule(Cycles(rng.Intn(200)))
			}
		})
		if n := seen[ev]; n > 0 {
			reused++
		}
		seen[ev]++
		pending[id] = ev
		return id
	}

	for op := 0; op < 5000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			schedule(Cycles(rng.Intn(500)))
		case 4:
			// Cancel a random pending event (and sometimes cancel twice).
			for id, ev := range pending {
				ev.Cancel()
				if rng.Intn(2) == 0 {
					ev.Cancel()
				}
				recs[id].cancelled = true
				delete(pending, id)
				break
			}
		default:
			c.Advance(Cycles(rng.Intn(300)))
		}
	}
	c.Advance(1 << 20) // drain

	if reused == 0 {
		t.Fatal("free list was never exercised (no event object reuse observed)")
	}
	for id, r := range recs {
		switch {
		case r.fires > 1:
			t.Fatalf("event %d fired %d times", id, r.fires)
		case r.cancelled && r.fires != 0:
			t.Fatalf("cancelled event %d fired", id)
		case !r.cancelled && r.fires != 1:
			t.Fatalf("live event %d (at=%d) fired %d times after drain", id, r.at, r.fires)
		}
	}
	for i := 1; i < len(firedOrder); i++ {
		a, b := recs[firedOrder[i-1]], recs[firedOrder[i]]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("fire order violated: event %d (at=%d seq=%d) before event %d (at=%d seq=%d)",
				firedOrder[i-1], a.at, a.seq, firedOrder[i], b.at, b.seq)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", c.Pending())
	}
}
