package sim

import (
	"math/rand"
	"testing"
)

// The counting source must not perturb any stream: an RNG built on it has
// to emit exactly what rand.New(rand.NewSource(seed)) emits for every
// method the simulator uses.
func TestCountingSourcePreservesStreams(t *testing.T) {
	g := NewRNG(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if a, b := g.Float64(), ref.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d: %v != %v", i, a, b)
			}
		case 1:
			if a, b := g.NormFloat64(), ref.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at draw %d: %v != %v", i, a, b)
			}
		case 2:
			if a, b := g.Intn(1000), ref.Intn(1000); a != b {
				t.Fatalf("Intn diverged at draw %d: %v != %v", i, a, b)
			}
		case 3:
			if a, b := g.Uint16(), uint16(ref.Uint32()); a != b {
				t.Fatalf("Uint16 diverged at draw %d: %v != %v", i, a, b)
			}
		case 4:
			if a, b := g.Bernoulli(0.3), ref.Float64() < 0.3; a != b {
				t.Fatalf("Bernoulli diverged at draw %d", i)
			}
		}
	}
}

func TestRNGStateRestore(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 137; i++ {
		g.Float64()
	}
	st := g.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = g.Float64()
	}

	// Fast-forward: a fresh RNG on the same seed advances in place.
	f := NewRNG(7)
	f.Float64() // some draws already consumed
	f.RestoreState(st)
	for i, w := range want {
		if got := f.Float64(); got != w {
			t.Fatalf("fast-forward restore diverged at draw %d", i)
		}
	}

	// Rewind: restoring an earlier position on the same RNG rebuilds the
	// stream from the seed.
	g.RestoreState(st)
	for i, w := range want {
		if got := g.Float64(); got != w {
			t.Fatalf("rewind restore diverged at draw %d", i)
		}
	}

	// Cross-seed: restore adopts the snapshot's seed.
	x := NewRNG(999)
	x.RestoreState(st)
	if got := x.Float64(); got != want[0] {
		t.Fatal("cross-seed restore diverged")
	}
	if x.State() != (RNGState{Seed: 7, Draws: st.Draws + 1}) {
		t.Fatalf("unexpected state after cross-seed restore: %+v", x.State())
	}
}

func TestClockSetNow(t *testing.T) {
	c := NewClock(0)
	c.Advance(100)
	if err := c.SetNow(5_000); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 5_000 {
		t.Fatalf("Now = %d, want 5000", c.Now())
	}
	ev := c.Schedule(6_000, func() {})
	if err := c.SetNow(0); err == nil {
		t.Fatal("SetNow with a pending event should error")
	}
	ev.Cancel()
	if err := c.SetNow(0); err != nil {
		t.Fatal(err)
	}
}
