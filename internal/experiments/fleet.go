package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/units"
)

// FleetTable4Config parameterizes the fleet-scale version of Table 4's
// iteration-success study: the activity-recognition app under each
// instrumentation build, across thousands of simultaneously simulated tags.
type FleetTable4Config struct {
	// Tags is the fleet size per mode (default 10 000).
	Tags int
	// Duration is the simulated run per tag (default 5 s; Table 4's
	// single-tag study runs 60 s, which the batched kernel trades for
	// population size).
	Duration units.Seconds
	Seed     int64
	// Quantum is the active-mode integration quantum (default 512 cycles
	// = 128 µs; the single-tag rig default is 64). SleepQuantum coarsens
	// integration during the app's 6 ms inter-sample waits (default
	// 16384 cycles ≈ 4 ms). Both move the 47 µF store only a few mV per
	// step; they are the fleet's speed/resolution knobs.
	Quantum      sim.Cycles
	SleepQuantum sim.Cycles
	// NoDeferSupply disables batched sub-quantum supply integration
	// (device.Config.DeferSupply), which the fleet enables by default.
	NoDeferSupply bool
	// Slice is the fleet batching granularity (default: fleet's 50 ms).
	Slice units.Seconds
}

// DefaultFleetTable4Config returns the 10k-tag configuration.
func DefaultFleetTable4Config() FleetTable4Config {
	return FleetTable4Config{
		Tags:         10_000,
		Duration:     5,
		Seed:         6,
		Quantum:      512,
		SleepQuantum: 16384,
	}
}

// FleetModeResult is one Table-4 success column measured across a fleet.
type FleetModeResult struct {
	Mode apps.PrintMode
	// SuccessRate is fleet-wide completed/attempted iterations.
	SuccessRate float64
	Attempted   int
	Completed   int
	Reboots     int
	// NeverPowered counts tags whose harvester never reached turn-on.
	NeverPowered int
	// AggregateSimSeconds is the simulated time executed for this mode.
	AggregateSimSeconds float64
	// BytesPerTag is the heap footprint per constructed tag.
	BytesPerTag float64
}

// FleetTable4Result reproduces Table 4's checkpoint-success columns at
// fleet scale.
//
// Fidelity note: the NoPrint and UART columns run exactly the single-tag
// builds (the UART's cost is paid out of each tag's store). The EDB column
// models the debugger's interference as zero — libEDB's printf is a no-op
// without an attached debugger — which idealizes the 0.11%-of-store
// marginal cost the single-tag Table 4 suite measures; attaching a full
// EDB to every tag would disable the batched kernel's analytic charging.
// The paper's qualitative result survives the idealization: EDB-printf
// success tracks the uninstrumented build while UART printf drags it down.
type FleetTable4Result struct {
	Tags     int
	Duration units.Seconds
	Modes    []FleetModeResult
}

// RunFleetTable4 runs the activity app fleet once per instrumentation mode.
func RunFleetTable4(cfg FleetTable4Config) (FleetTable4Result, error) {
	def := DefaultFleetTable4Config()
	if cfg.Tags == 0 {
		cfg.Tags = def.Tags
	}
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = def.Quantum
	}
	if cfg.SleepQuantum == 0 {
		cfg.SleepQuantum = def.SleepQuantum
	}

	out := FleetTable4Result{Tags: cfg.Tags, Duration: cfg.Duration}
	for _, mode := range []apps.PrintMode{apps.NoPrint, apps.UARTPrint, apps.EDBPrint} {
		mr, err := runFleetMode(cfg, mode)
		if err != nil {
			return FleetTable4Result{}, fmt.Errorf("fleet mode %v: %w", mode, err)
		}
		out.Modes = append(out.Modes, mr)
	}
	return out, nil
}

// FleetHarvester places tag i at a deterministic distance spread around
// Table 4's evaluation point (1.4 m — "chosen so the application runs
// intermittently"), noise-free so off phases fast-forward analytically.
func FleetHarvester(i int, seed int64) energy.Harvester {
	h := energy.NewRFHarvester()
	h.Noise = nil
	h.NoiseFrac = 0
	h.Distance = units.Meters(1.25 + 0.6*float64(i%101)/101.0)
	return h
}

func runFleetMode(cfg FleetTable4Config, mode apps.PrintMode) (FleetModeResult, error) {
	tags := make([]*apps.Activity, cfg.Tags)
	res, err := fleet.Run(fleet.Config{
		Tags:         cfg.Tags,
		Duration:     cfg.Duration,
		Slice:        cfg.Slice,
		Seed:         cfg.Seed,
		Quantum:      cfg.Quantum,
		SleepQuantum: cfg.SleepQuantum,
		DeferSupply:  !cfg.NoDeferSupply,
		NewProgram: func(i int) device.Program {
			app := &apps.Activity{Print: mode}
			tags[i] = app
			return app
		},
		NewHarvester: FleetHarvester,
	})
	if err != nil {
		return FleetModeResult{}, err
	}

	mr := FleetModeResult{
		Mode:                mode,
		AggregateSimSeconds: res.AggregateSimSeconds,
		BytesPerTag:         res.BytesPerTag,
	}
	for i, tr := range res.Tags {
		st := tags[i].Stats(res.Devices[i])
		mr.Attempted += st.Attempted
		mr.Completed += st.Completed
		mr.Reboots += tr.Result.Reboots
		if tr.Err != nil {
			mr.NeverPowered++
		}
	}
	if mr.Attempted > 0 {
		mr.SuccessRate = float64(mr.Completed) / float64(mr.Attempted)
	}
	return mr, nil
}

// Format renders the fleet-scale Table 4 columns.
func (r FleetTable4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 at fleet scale: %d tags × %s per build\n", r.Tags, r.Duration)
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %10s\n",
		"", "Success", "Iterations", "Attempted", "Reboots")
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %10s\n",
		"", "Rate(%)", "(completed)", "", "")
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "%-14s %10.1f %12d %12d %10d\n",
			m.Mode, 100*m.SuccessRate, m.Completed, m.Attempted, m.Reboots)
	}
	return b.String()
}

// CSV returns one row per mode.
func (r FleetTable4Result) CSV() string {
	var b strings.Builder
	b.WriteString("mode,tags,success_rate,completed,attempted,reboots,never_powered\n")
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "%s,%d,%.4f,%d,%d,%d,%d\n",
			m.Mode, r.Tags, m.SuccessRate, m.Completed, m.Attempted, m.Reboots, m.NeverPowered)
	}
	return b.String()
}
