package experiments_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/experiments"
)

// TestFleetTable4Quick runs a scaled-down fleet (60 tags, 2 s) and checks
// the Table-4 shape: all three instrumentation builds report iterations,
// the EDB-printf column tracks the uninstrumented build, and UART printf
// costs iterations relative to it.
func TestFleetTable4Quick(t *testing.T) {
	r, err := experiments.RunFleetTable4(experiments.FleetTable4Config{
		Tags:     60,
		Duration: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Modes) != 3 {
		t.Fatalf("got %d modes, want 3", len(r.Modes))
	}
	byMode := map[apps.PrintMode]experiments.FleetModeResult{}
	for _, m := range r.Modes {
		byMode[m.Mode] = m
		if m.Attempted == 0 {
			t.Errorf("%v: no iterations attempted", m.Mode)
		}
		if m.SuccessRate < 0 || m.SuccessRate > 1 {
			t.Errorf("%v: success rate %v out of range", m.Mode, m.SuccessRate)
		}
		if m.AggregateSimSeconds <= 0 {
			t.Errorf("%v: aggregate sim seconds %v", m.Mode, m.AggregateSimSeconds)
		}
	}
	// EDB printf is interference-free in the fleet model: identical
	// outcomes to the bare build.
	no, edb, uart := byMode[apps.NoPrint], byMode[apps.EDBPrint], byMode[apps.UARTPrint]
	if edb.Completed != no.Completed || edb.Attempted != no.Attempted {
		t.Errorf("EDB printf diverged from bare build: %+v vs %+v", edb, no)
	}
	// The UART build pays time and energy per iteration out of the store:
	// it cannot complete more work than the bare build.
	if uart.Completed > no.Completed {
		t.Errorf("UART printf completed %d > bare %d", uart.Completed, no.Completed)
	}
}
