package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/explore"
	"repro/internal/parallel"
)

// ExhaustiveConfig parameterizes the exhaustive intermittence check of the
// linked-list bug: instead of sampling power failures from the harvesting
// model (Fig. 7's approach, which needs the failure to land in the unlucky
// window by chance), the checker injects a failure at every unguarded
// FRAM write of every reachable non-volatile state, up to the bounds.
type ExhaustiveConfig struct {
	Seed int64
	// MaxDepth/MaxCandidates/MaxStates bound the search (defaults 3/8/256).
	MaxDepth      int
	MaxCandidates int
	MaxStates     int
	// CheckHashes cross-checks the incremental state hash against a full
	// image recompute at every captured state.
	CheckHashes bool
}

// DefaultExhaustiveConfig bounds the search to a sub-second run.
func DefaultExhaustiveConfig() ExhaustiveConfig {
	return ExhaustiveConfig{Seed: 42, MaxDepth: 3, MaxCandidates: 8, MaxStates: 256}
}

// ExhaustiveResult holds the two verdicts: the unguarded build must fail
// with a concrete WAR trace, the guarded build must verify clean over the
// same bounds.
type ExhaustiveResult struct {
	Unguarded *explore.Report
	Guarded   *explore.Report
}

// RunExhaustive model-checks both builds of the linked-list app.
func RunExhaustive(cfg ExhaustiveConfig) (ExhaustiveResult, error) {
	def := DefaultExhaustiveConfig()
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = def.MaxDepth
	}
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = def.MaxStates
	}
	reports, err := parallel.Map(2, func(i int) (*explore.Report, error) {
		guards := i == 1
		return explore.Run(explore.Config{
			NewRig: func() (*device.Device, device.Program, error) {
				return core.ExploreTarget(&apps.LinkedList{GuardIterations: guards}, cfg.Seed)
			},
			Mode:          explore.ModeWrite,
			MaxDepth:      cfg.MaxDepth,
			MaxCandidates: cfg.MaxCandidates,
			MaxStates:     cfg.MaxStates,
			CheckHashes:   cfg.CheckHashes,
		})
	})
	if err != nil {
		return ExhaustiveResult{}, err
	}
	return ExhaustiveResult{Unguarded: reports[0], Guarded: reports[1]}, nil
}

// Format renders both verdicts.
func (r ExhaustiveResult) Format() string {
	var b strings.Builder
	b.WriteString("Exhaustive power-failure exploration: linked-list app\n")
	for _, half := range []struct {
		name string
		rep  *explore.Report
	}{{"unguarded build", r.Unguarded}, {"guarded build", r.Guarded}} {
		verdict := "FAIL (WAR violations found)"
		if half.rep.Clean() {
			verdict = "PASS (no WAR violations over the explored bounds)"
		}
		fmt.Fprintf(&b, "\n-- %s: %s\n", half.name, verdict)
		b.WriteString(half.rep.Format())
	}
	return b.String()
}
