package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/units"
)

// BaselineRow summarizes one debugging tool's behavior on the identical
// linked-list workload and seed.
type BaselineRow struct {
	Tool string
	// BugManifested: did the intermittence bug occur during the run?
	BugManifested bool
	// RootCauseVisible: could the tool show the broken data structure at
	// (or before) the failure?
	RootCauseVisible bool
	// Interference is the tool's energy interference on the target in
	// amps (positive draws, negative feeds; magnitude is what matters).
	Interference units.Amps
	// Progress is the iterations the app completed, read from its 16-bit
	// FRAM counter (long continuous runs wrap mod 65536).
	Progress int
	// Notes explains the outcome.
	Notes string
}

// BaselinesResult reproduces §2.2's argument as a measured artifact: every
// pre-EDB approach either hides intermittent behavior or perturbs it, and
// none both observes the failure and exposes its cause.
type BaselinesResult struct {
	Rows []BaselineRow
}

// RunBaselines runs the linked-list case study under each tool. The tool
// benches share the same workload and seed but are otherwise independent,
// so they run in parallel and merge in the table's tool order.
func RunBaselines(duration units.Seconds, seed int64) (BaselinesResult, error) {
	if duration == 0 {
		duration = 15
	}
	if seed == 0 {
		seed = 42
	}

	benches := []func() (BaselineRow, error){
		// No tool: the failure occurs; nothing observes it.
		func() (BaselineRow, error) {
			d := device.NewWISP5(energy.NewRFHarvester(), seed)
			app := &apps.LinkedList{}
			r := device.NewRunner(d, app)
			if err := r.Flash(); err != nil {
				return BaselineRow{}, err
			}
			res, err := r.RunFor(duration)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				Tool:          "none",
				BugManifested: res.Faults > 0,
				Progress:      app.Iterations(d),
				Notes:         "failure observed, zero insight",
			}, nil
		},
		// JTAG: powers the target; the bug cannot occur.
		func() (BaselineRow, error) {
			d := device.NewWISP5(energy.NewRFHarvester(), seed)
			app := &apps.LinkedList{}
			r := device.NewRunner(d, app)
			if err := r.Flash(); err != nil {
				return BaselineRow{}, err
			}
			jtag := baseline.NewJTAG()
			jtag.Attach(d)
			res, err := r.RunFor(duration)
			jtag.Detach()
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				Tool:             "jtag",
				BugManifested:    res.Faults > 0,
				RootCauseVisible: false, // nothing to see: the bug never fires
				Interference:     units.MilliAmps(-5),
				Progress:         app.Iterations(d),
				Notes:            "continuous power masks intermittence entirely",
			}, nil
		},
		// Isolated JTAG: intermittence survives but the session dies at
		// every brown-out.
		func() (BaselineRow, error) {
			d := device.NewWISP5(energy.NewRFHarvester(), seed)
			app := &apps.LinkedList{}
			r := device.NewRunner(d, app)
			if err := r.Flash(); err != nil {
				return BaselineRow{}, err
			}
			jtag := baseline.NewJTAG()
			jtag.Isolated = true
			jtag.Attach(d)
			res, err := r.RunFor(duration)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				Tool:          "jtag (isolated)",
				BugManifested: res.Faults > 0,
				Progress:      app.Iterations(d),
				Notes: fmt.Sprintf("session dropped %d times; dead at the moment of failure",
					jtag.SessionDrops()),
			}, nil
		},
		// LED tracing: visible progress indicator, prohibitive energy cost.
		func() (BaselineRow, error) {
			d := device.NewWISP5(energy.NewRFHarvester(), seed)
			app := &apps.LinkedList{}
			prog := &baseline.TraceWithLED{Program: app}
			r := device.NewRunner(d, prog)
			if err := r.Flash(); err != nil {
				return BaselineRow{}, err
			}
			res, err := r.RunFor(duration)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				Tool:          "led tracing",
				BugManifested: res.Faults > 0,
				Interference:  device.LEDCurrent,
				Progress:      app.Iterations(d),
				Notes:         "5x current draw changes where energy runs out",
			}, nil
		},
		// EDB with the keep-alive assert: the bug occurs, is caught at its
		// source, and the device is held alive for inspection.
		func() (BaselineRow, error) {
			d := device.NewWISP5(energy.NewRFHarvester(), seed)
			e := edb.New(edb.DefaultConfig())
			e.Attach(d)
			app := &apps.LinkedList{WithAssert: true}
			r := device.NewRunner(d, app)
			if err := r.Flash(); err != nil {
				return BaselineRow{}, err
			}
			res, err := r.RunFor(2 * duration)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				Tool:             "edb",
				BugManifested:    res.Halted != "",
				RootCauseVisible: res.Halted != "",
				Interference:     e.LeakageCurrent(),
				Progress:         app.Iterations(d),
				Notes:            "corruption caught pre-wild-write; target tethered alive",
			}, nil
		},
	}
	rows, err := parallel.Map(len(benches), func(i int) (BaselineRow, error) {
		return benches[i]()
	})
	if err != nil {
		return BaselinesResult{}, err
	}
	return BaselinesResult{Rows: rows}, nil
}

// Format renders the comparison table.
func (r BaselinesResult) Format() string {
	var b strings.Builder
	b.WriteString("Conventional tools vs. EDB on the linked-list intermittence bug (§2.2)\n")
	fmt.Fprintf(&b, "%-16s %8s %10s %14s %10s  %s\n",
		"tool", "bug?", "cause?", "interference", "progress", "notes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8v %10v %14s %10d  %s\n",
			row.Tool, row.BugManifested, row.RootCauseVisible,
			row.Interference, row.Progress, row.Notes)
	}
	return b.String()
}
