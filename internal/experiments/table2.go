// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated platform. Each experiment returns a
// structured result plus a Format method that prints the same rows/series
// the paper reports; cmd/edb-bench and bench_test.go drive them.
//
// Absolute numbers come from calibrated component models rather than the
// authors' bench, so the claims to check are the shapes documented in
// DESIGN.md §3 and recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/units"
)

// Table2Row is one connection's characterization in one logic state.
type Table2Row struct {
	Connection string
	Count      int
	State      string // "high", "low", or "" for analog rows
	Stats      circuit.MeasurementStats
}

// Table2Result reproduces Table 2: measured worst-case current over each
// electrical connection between the target device and EDB.
type Table2Result struct {
	Rows []Table2Row
	// TotalWorstCase is the sum of worst-case current magnitude across
	// all physical lines — the paper's 836.51 nA line.
	TotalWorstCase units.Amps
	// ActiveFraction is the total as a fraction of the target MCU's
	// typical active current (the paper quotes 0.2 % of ~0.5 mA).
	ActiveFraction float64
}

// Table2Config parameterizes the characterization.
type Table2Config struct {
	Trials int   // readings per connection/state (default 25)
	Seed   int64 // RNG seed
	// MCUActiveCurrent is the reference for the interference fraction.
	MCUActiveCurrent units.Amps
}

// DefaultTable2Config mirrors §5.2.1's methodology.
func DefaultTable2Config() Table2Config {
	return Table2Config{Trials: 25, Seed: 2, MCUActiveCurrent: units.MilliAmps(0.5)}
}

// RunTable2 applies the source meter to every EDB↔target connection in
// both logic states and tabulates min/avg/max DC current. Connections are
// characterized in parallel: each gets its own bench setup (source meter and
// board instance) whose streams derive only from (seed, connection name), so
// the work items are order-independent and the result is identical to a
// sequential run.
func RunTable2(cfg Table2Config) Table2Result {
	def := DefaultTable2Config()
	if cfg.Trials == 0 {
		cfg.Trials = def.Trials
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.MCUActiveCurrent == 0 {
		cfg.MCUActiveCurrent = def.MCUActiveCurrent
	}

	conns := circuit.EDBConnections()
	type connResult struct {
		rows  []Table2Row
		worst float64 // worst-case magnitude × line count
	}
	parts, _ := parallel.Map(len(conns), func(i int) (connResult, error) {
		conn := conns[i]
		rng := sim.NewRNG(cfg.Seed)
		sm := circuit.NewSourceMeter(rng.Split("source-meter:" + conn.Name))
		inst := conn.Instantiate(rng.Split("inst:" + conn.Name))
		var cr connResult
		if conn.Kind == circuit.Analog {
			st := sm.Characterize(inst, circuit.High, circuit.VCharacterize, cfg.Trials)
			cr.rows = append(cr.rows, Table2Row{Connection: conn.Name, Count: conn.Count, Stats: st})
			cr.worst = math.Abs(float64(st.WorstCase())) * float64(conn.Count)
			return cr, nil
		}
		worst := 0.0
		for _, state := range []circuit.LogicState{circuit.High, circuit.Low} {
			v := circuit.VCharacterize
			if state == circuit.Low {
				v = 0
			}
			st := sm.Characterize(inst, state, v, cfg.Trials)
			cr.rows = append(cr.rows, Table2Row{
				Connection: conn.Name, Count: conn.Count, State: state.String(), Stats: st,
			})
			if w := math.Abs(float64(st.WorstCase())); w > worst {
				worst = w
			}
		}
		cr.worst = worst * float64(conn.Count)
		return cr, nil
	})

	var res Table2Result
	var total float64
	for _, cr := range parts {
		res.Rows = append(res.Rows, cr.rows...)
		total += cr.worst
	}
	res.TotalWorstCase = units.Amps(total)
	if cfg.MCUActiveCurrent > 0 {
		res.ActiveFraction = total / float64(cfg.MCUActiveCurrent)
	}
	return res
}

// Format renders the result in the paper's Table 2 layout (currents in nA).
func (r Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 2: worst-case DC current over debugger<->target connections (nA)\n")
	fmt.Fprintf(&b, "%-36s %-5s %12s %12s %12s\n", "Connection", "State", "Min", "Avg", "Max")
	for _, row := range r.Rows {
		name := row.Connection
		if row.Count > 1 {
			name = fmt.Sprintf("%s (x%d)", name, row.Count)
		}
		fmt.Fprintf(&b, "%-36s %-5s %12.4f %12.4f %12.4f\n",
			name, row.State, nano(row.Stats.Min), nano(row.Stats.Avg), nano(row.Stats.Max))
	}
	fmt.Fprintf(&b, "%-42s %12.2f nA\n", "Worst-Case Total Current", nano(r.TotalWorstCase))
	fmt.Fprintf(&b, "%-42s %12.3f %% of MCU active current\n", "Interference fraction", 100*r.ActiveFraction)
	return b.String()
}

func nano(a units.Amps) float64 { return float64(a) * 1e9 }
