package experiments

import (
	"strings"
	"testing"
)

func TestAblateRestoreMarginMonotone(t *testing.T) {
	r, err := RunAblateRestoreMargin(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Mean ΔV tracks the requested margin (the loop actually controls).
	for _, p := range r.Points {
		lo, hi := 0.6*float64(p.Margin)-0.002, 1.4*float64(p.Margin)+0.003
		if float64(p.MeanDV) < lo || float64(p.MeanDV) > hi {
			t.Fatalf("margin %v produced mean dV %v", p.Margin, p.MeanDV)
		}
	}
	// The default band (52 mV) must never undershoot.
	for _, p := range r.Points {
		if float64(p.Margin) >= 0.05 && p.Undershoots != 0 {
			t.Fatalf("default-class margin %v undershot %d times", p.Margin, p.Undershoots)
		}
	}
	if !strings.Contains(r.Format(), "guard band") {
		t.Fatal("format")
	}
}

func TestAblateSamplePeriodMonotone(t *testing.T) {
	r, err := RunAblateSamplePeriod(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Hits == 0 {
			t.Fatalf("period %v never triggered", p.Period)
		}
	}
	// Slower sampling → later detection (allow slack for noise, compare
	// the fastest against the slowest).
	first := float64(r.Points[0].TriggerBelow)
	last := float64(r.Points[len(r.Points)-1].TriggerBelow)
	if last <= first {
		t.Fatalf("trigger lag must grow with period: %v vs %v", first, last)
	}
	if !strings.Contains(r.Format(), "sampler period") {
		t.Fatal("format")
	}
}
