package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/parallel"
	"repro/internal/rfid"
	"repro/internal/units"
)

// RangePoint is one reader-distance operating point of the RFID system.
type RangePoint struct {
	Distance units.Meters
	// HarvestPower is the DC power available at the operating midpoint.
	HarvestPower units.Watts
	// ResponseRate is RN16 replies per query (the §5.3.4 tuning metric).
	ResponseRate float64
	// RepliesPerSecond is the reply throughput.
	RepliesPerSecond float64
	// Reboots over the run (charge-discharge cycling intensity).
	Reboots int
	// OnFraction is the share of time the target spent powered.
	OnFraction float64
}

// RangeSweepResult characterizes the RFID application across reader
// distances — §5.3.4's motivation: "The application and reader cannot be
// characterized and tuned without a measure of the target's performance in
// different RF environments", and "the amount of harvestable energy is
// inversely proportional to this distance" (§5.1). EDB's concurrent
// message/energy monitoring is what makes each point measurable.
type RangeSweepResult struct {
	Points []RangePoint
}

// RunRangeSweep measures the operating curve over reader distances. Each
// distance is an independent bench whose streams derive from (seed, point
// index), so the points run in parallel and merge in distance order.
func RunRangeSweep(perPoint units.Seconds, seed int64) (RangeSweepResult, error) {
	if perPoint == 0 {
		perPoint = 8
	}
	if seed == 0 {
		seed = 12
	}
	distances := []units.Meters{0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	points, err := parallel.Map(len(distances), func(di int) (RangePoint, error) {
		dist := distances[di]
		rc := rfid.DefaultReaderConfig()
		rc.Distance = dist
		rc.Seed = seed + int64(di)
		reader, harv := rfid.NewReader(rc)
		d := device.NewWISP5(harv, seed+int64(di))
		e := edb.New(edb.DefaultConfig())
		e.Attach(d)
		e.SetRFDecoder(rfid.FrameName)

		app := &apps.WispRFID{}
		r := device.NewRunner(d, app)
		if err := r.Flash(); err != nil {
			return RangePoint{}, err
		}
		reader.Attach(d)
		reader.Start()
		res, err := r.RunFor(perPoint)
		reader.Stop()
		if err != nil {
			// Out of range: the harvester cannot reach turn-on. That is a
			// legitimate operating point (rate zero), not a failure.
			if err == device.ErrNeverPowered {
				return RangePoint{Distance: dist}, nil
			}
			return RangePoint{}, err
		}
		st := reader.Stats()
		midV := (d.Supply.VTurnOn + d.Supply.VBrownOut) / 2
		hOff := *harv
		hOff.Noise = nil
		hOff.CarrierOn = true // the operating point, not the post-run state
		pt := RangePoint{
			Distance:         dist,
			HarvestPower:     units.Watts(float64(hOff.Current(midV)) * float64(midV)),
			ResponseRate:     reader.ResponseRate(),
			RepliesPerSecond: float64(st.RN16Heard) / float64(perPoint),
			Reboots:          res.Reboots,
		}
		total := float64(res.Stats.ActiveTime + res.Stats.ChargeTime + res.Stats.TetheredTime)
		if total > 0 {
			pt.OnFraction = float64(res.Stats.ActiveTime) / total
		}
		return pt, nil
	})
	if err != nil {
		return RangeSweepResult{}, err
	}
	return RangeSweepResult{Points: points}, nil
}

// Format renders the sweep as the tuning table a developer would read.
func (r RangeSweepResult) Format() string {
	var b strings.Builder
	b.WriteString("RFID operating curve vs. reader distance (§5.3.4 tuning)\n")
	fmt.Fprintf(&b, "%-10s %14s %12s %12s %10s %8s\n",
		"distance", "harvest (µW)", "response", "replies/s", "on-time", "reboots")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s %14.0f %11.0f%% %12.1f %9.0f%% %8d\n",
			fmt.Sprintf("%.1f m", float64(p.Distance)),
			1e6*float64(p.HarvestPower),
			100*p.ResponseRate, p.RepliesPerSecond,
			100*p.OnFraction, p.Reboots)
	}
	b.WriteString("(harvest falls with 1/d²; the response rate holds until the energy\n")
	b.WriteString(" budget no longer covers decode+reply, then collapses)\n")
	return b.String()
}
