package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/units"
)

// Table3Config parameterizes the save/restore accuracy experiment (§5.2.2):
// for each trial, an energy breakpoint at BreakLevel interrupts the target,
// whose capacitor the console has charged to ChargeLevel; resuming restores
// the saved level, and ΔV/ΔE/ΔE% are measured both by the oscilloscope
// (ground truth) and by EDB's own ADC.
type Table3Config struct {
	Trials      int
	BreakLevel  units.Volts
	ChargeLevel units.Volts
	Seed        int64
}

// DefaultTable3Config mirrors the paper: 50 trials, breakpoint at 2.3 V,
// charge to 2.4 V.
func DefaultTable3Config() Table3Config {
	return Table3Config{Trials: 50, BreakLevel: 2.3, ChargeLevel: 2.4, Seed: 3}
}

// Table3Result reproduces Table 3: the accuracy with which EDB saves and
// restores the target's energy level.
type Table3Result struct {
	// DVScope and DVADC are ΔV = Vrestored − Vsaved in volts, per trial,
	// measured by the oscilloscope and by EDB's ADC respectively.
	DVScope, DVADC []float64
	// DEScope and DEADC are ΔE in joules.
	DEScope, DEADC []float64
	// DEPctScope and DEPctADC are ΔE as a percentage of the 47 µF store.
	DEPctScope, DEPctADC []float64
	// Trials is the number of completed save/restore operations.
	Trials int
}

// table3ShardTrials is how many trials one worker runs on one simulated
// bench. Trials are independent (each save/restore starts from the same
// console-charged level), so the run shards into batches whose seeds derive
// from (seed, shard index) alone — the merged result does not depend on
// how many workers execute the shards, or in what order.
const table3ShardTrials = 10

// RunTable3 executes the trials on a busy target under harvested power.
func RunTable3(cfg Table3Config) (Table3Result, error) {
	return runTable3(cfg, edb.DefaultConfig())
}

// runTable3 is RunTable3 parameterized by the EDB config (the ablation
// knob). It applies per-field defaults, then fans the trial batches out
// across workers.
func runTable3(cfg Table3Config, ecfg edb.Config) (Table3Result, error) {
	def := DefaultTable3Config()
	if cfg.Trials == 0 {
		cfg.Trials = def.Trials
	}
	if cfg.BreakLevel == 0 {
		cfg.BreakLevel = def.BreakLevel
	}
	if cfg.ChargeLevel == 0 {
		cfg.ChargeLevel = def.ChargeLevel
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}

	shards := (cfg.Trials + table3ShardTrials - 1) / table3ShardTrials
	if shards < 1 {
		shards = 1
	}
	parts, err := parallel.Map(shards, func(i int) (Table3Result, error) {
		scfg := cfg
		scfg.Trials = table3ShardTrials
		if i == shards-1 {
			scfg.Trials = cfg.Trials - table3ShardTrials*(shards-1)
		}
		scfg.Seed = parallel.ShardSeed(cfg.Seed, i)
		secfg := ecfg
		secfg.Seed = parallel.ShardSeed(ecfg.Seed, i)
		return table3Shard(scfg, secfg)
	})
	if err != nil {
		return Table3Result{}, err
	}
	var out Table3Result
	for _, p := range parts {
		out.DVScope = append(out.DVScope, p.DVScope...)
		out.DVADC = append(out.DVADC, p.DVADC...)
		out.DEScope = append(out.DEScope, p.DEScope...)
		out.DEADC = append(out.DEADC, p.DEADC...)
		out.DEPctScope = append(out.DEPctScope, p.DEPctScope...)
		out.DEPctADC = append(out.DEPctADC, p.DEPctADC...)
		out.Trials += p.Trials
	}
	return out, nil
}

// table3Shard runs one batch of trials on a fresh simulated bench.
func table3Shard(cfg Table3Config, ecfg edb.Config) (Table3Result, error) {
	h := energy.NewRFHarvester()
	h.Noise = nil // the bench flow controls the energy level explicitly
	d := device.NewWISP5(h, cfg.Seed)
	e := edb.New(ecfg)
	e.Attach(d)

	app := &apps.Busy{}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Table3Result{}, err
	}

	e.AddEnergyBreakpoint(cfg.BreakLevel)
	// The interactive handler resumes immediately (the paper's flow:
	// "waited for the target execution to be interrupted by the
	// breakpoint, and then resumed the target"), then the console pumps
	// the capacitor back up for the next trial.
	e.OnInteractive(func(s *edb.Session) {
		// resume: handler returns
	})
	trialKick := func() { e.CommandCharge(cfg.ChargeLevel) }
	trialKick()

	// Drive the run until enough save/restore samples accumulate. Each
	// RunFor slice advances simulated time; the charge command re-arms
	// after every restore.
	for len(e.SaveRestoreSamples()) < cfg.Trials {
		res, err := r.RunFor(units.MilliSeconds(200))
		if err != nil {
			return Table3Result{}, err
		}
		if res.Halted != "" || res.Completed {
			break
		}
		if e.Active() {
			e.ForceIdle()
		}
		trialKick()
	}

	cap47 := d.Supply.Cap
	var out Table3Result
	for _, sr := range e.SaveRestoreSamples() {
		if len(out.DVScope) == cfg.Trials {
			break
		}
		dvS := float64(sr.RestoredTrue - sr.SavedTrue)
		dvA := float64(sr.RestoredADC - sr.SavedADC)
		deS := float64(cap47.EnergyBetween(sr.SavedTrue, sr.RestoredTrue))
		deA := float64(cap47.EnergyBetween(sr.SavedADC, sr.RestoredADC))
		out.DVScope = append(out.DVScope, dvS)
		out.DVADC = append(out.DVADC, dvA)
		out.DEScope = append(out.DEScope, deS)
		out.DEADC = append(out.DEADC, deA)
		ref := float64(d.Supply.ReferenceEnergy())
		out.DEPctScope = append(out.DEPctScope, 100*deS/ref)
		out.DEPctADC = append(out.DEPctADC, 100*deA/ref)
	}
	out.Trials = len(out.DVScope)
	return out, nil
}

// Format renders the result in the paper's Table 3 layout.
func (r Table3Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 3: accuracy of EDB's energy save/restore\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %14s %14s %14s\n",
		"", "dV O-scope", "dV ADC", "dE O-scope", "dE ADC", "dE% O-scope", "dE% ADC")
	sv, sa := trace.Summarize(r.DVScope), trace.Summarize(r.DVADC)
	es, ea := trace.Summarize(r.DEScope), trace.Summarize(r.DEADC)
	ps, pa := trace.Summarize(r.DEPctScope), trace.Summarize(r.DEPctADC)
	fmt.Fprintf(&b, "%-8s %11.1f mV %11.1f mV %11.2f uJ %11.2f uJ %12.2f %% %12.2f %%\n",
		"Mean", 1e3*sv.Mean, 1e3*sa.Mean, 1e6*es.Mean, 1e6*ea.Mean, ps.Mean, pa.Mean)
	fmt.Fprintf(&b, "%-8s %11.1f mV %11.1f mV %11.2f uJ %11.2f uJ %12.2f %% %12.2f %%\n",
		"S.D.", 1e3*sv.SD, 1e3*sa.SD, 1e6*es.SD, 1e6*ea.SD, ps.SD, pa.SD)
	fmt.Fprintf(&b, "(n = %d trials; energy cost as %% of the 47 uF storage capacity)\n", r.Trials)
	return b.String()
}
