package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/trace"
	"repro/internal/units"
)

// Table3Config parameterizes the save/restore accuracy experiment (§5.2.2):
// for each trial, an energy breakpoint at BreakLevel interrupts the target,
// whose capacitor the console has charged to ChargeLevel; resuming restores
// the saved level, and ΔV/ΔE/ΔE% are measured both by the oscilloscope
// (ground truth) and by EDB's own ADC.
type Table3Config struct {
	Trials      int
	BreakLevel  units.Volts
	ChargeLevel units.Volts
	Seed        int64
}

// DefaultTable3Config mirrors the paper: 50 trials, breakpoint at 2.3 V,
// charge to 2.4 V.
func DefaultTable3Config() Table3Config {
	return Table3Config{Trials: 50, BreakLevel: 2.3, ChargeLevel: 2.4, Seed: 3}
}

// Table3Result reproduces Table 3: the accuracy with which EDB saves and
// restores the target's energy level.
type Table3Result struct {
	// DVScope and DVADC are ΔV = Vrestored − Vsaved in volts, per trial,
	// measured by the oscilloscope and by EDB's ADC respectively.
	DVScope, DVADC []float64
	// DEScope and DEADC are ΔE in joules.
	DEScope, DEADC []float64
	// DEPctScope and DEPctADC are ΔE as a percentage of the 47 µF store.
	DEPctScope, DEPctADC []float64
	// Trials is the number of completed save/restore operations.
	Trials int
}

// RunTable3 executes the trials on a busy target under harvested power.
func RunTable3(cfg Table3Config) (Table3Result, error) {
	if cfg.Trials == 0 {
		cfg = DefaultTable3Config()
	}
	h := energy.NewRFHarvester()
	h.Noise = nil // the bench flow controls the energy level explicitly
	d := device.NewWISP5(h, cfg.Seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)

	app := &apps.Busy{}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Table3Result{}, err
	}

	e.AddEnergyBreakpoint(cfg.BreakLevel)
	// The interactive handler resumes immediately (the paper's flow:
	// "waited for the target execution to be interrupted by the
	// breakpoint, and then resumed the target"), then the console pumps
	// the capacitor back up for the next trial.
	e.OnInteractive(func(s *edb.Session) {
		// resume: handler returns
	})
	trialKick := func() { e.CommandCharge(cfg.ChargeLevel) }
	trialKick()

	// Drive the run until enough save/restore samples accumulate. Each
	// RunFor slice advances simulated time; the charge command re-arms
	// after every restore.
	for len(e.SaveRestoreSamples()) < cfg.Trials {
		res, err := r.RunFor(units.MilliSeconds(200))
		if err != nil {
			return Table3Result{}, err
		}
		if res.Halted != "" || res.Completed {
			break
		}
		trialKick()
	}

	cap47 := d.Supply.Cap
	var out Table3Result
	for _, sr := range e.SaveRestoreSamples() {
		if len(out.DVScope) == cfg.Trials {
			break
		}
		dvS := float64(sr.RestoredTrue - sr.SavedTrue)
		dvA := float64(sr.RestoredADC - sr.SavedADC)
		deS := float64(cap47.EnergyBetween(sr.SavedTrue, sr.RestoredTrue))
		deA := float64(cap47.EnergyBetween(sr.SavedADC, sr.RestoredADC))
		out.DVScope = append(out.DVScope, dvS)
		out.DVADC = append(out.DVADC, dvA)
		out.DEScope = append(out.DEScope, deS)
		out.DEADC = append(out.DEADC, deA)
		ref := float64(d.Supply.ReferenceEnergy())
		out.DEPctScope = append(out.DEPctScope, 100*deS/ref)
		out.DEPctADC = append(out.DEPctADC, 100*deA/ref)
	}
	out.Trials = len(out.DVScope)
	return out, nil
}

// Format renders the result in the paper's Table 3 layout.
func (r Table3Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 3: accuracy of EDB's energy save/restore\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %14s %14s %14s\n",
		"", "dV O-scope", "dV ADC", "dE O-scope", "dE ADC", "dE% O-scope", "dE% ADC")
	sv, sa := trace.Summarize(r.DVScope), trace.Summarize(r.DVADC)
	es, ea := trace.Summarize(r.DEScope), trace.Summarize(r.DEADC)
	ps, pa := trace.Summarize(r.DEPctScope), trace.Summarize(r.DEPctADC)
	fmt.Fprintf(&b, "%-8s %11.1f mV %11.1f mV %11.2f uJ %11.2f uJ %12.2f %% %12.2f %%\n",
		"Mean", 1e3*sv.Mean, 1e3*sa.Mean, 1e6*es.Mean, 1e6*ea.Mean, ps.Mean, pa.Mean)
	fmt.Fprintf(&b, "%-8s %11.1f mV %11.1f mV %11.2f uJ %11.2f uJ %12.2f %% %12.2f %%\n",
		"S.D.", 1e3*sv.SD, 1e3*sa.SD, 1e6*es.SD, 1e6*ea.SD, ps.SD, pa.SD)
	fmt.Fprintf(&b, "(n = %d trials; energy cost as %% of the 47 uF storage capacity)\n", r.Trials)
	return b.String()
}
