package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Fig9Config parameterizes the §5.3.2 consistency-check case study.
type Fig9Config struct {
	UseGuards bool
	Duration  units.Seconds
	Seed      int64
	MaxNodes  int
}

// DefaultFig9Config runs 25 simulated seconds with a pool large enough
// that the unguarded build hangs before exhausting it.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Duration: 25, Seed: 7, MaxNodes: 4000}
}

// Fig9Result reproduces Figure 9: the debug-build consistency check
// starves the main loop as the list grows; energy guards restore progress.
type Fig9Result struct {
	UseGuards bool
	Vcap      *trace.Series
	Clock     *sim.Clock
	// Count is the final number of appended items.
	Count int
	// EarlyRate and LateRate are items appended per second in the first
	// and last fifth of the run — the paper's "the main loop gets the
	// same amount of energy in both early … and later cycles" (guarded)
	// versus the unguarded hang.
	EarlyRate, LateRate float64
	// Guards counts energy-guard entries.
	Guards int
	Result device.RunResult
	// CheckErrors counts consistency violations detected.
	CheckErrors int
}

// RunFig9Panels produces both panels of Figure 9 — the unguarded and the
// guarded debug builds — running the two independent benches in parallel.
// Index 0 is unguarded, index 1 guarded.
func RunFig9Panels(cfg Fig9Config) ([2]Fig9Result, error) {
	panels, err := parallel.Map(2, func(i int) (Fig9Result, error) {
		pcfg := cfg
		pcfg.UseGuards = i == 1
		return RunFig9(pcfg)
	})
	if err != nil {
		return [2]Fig9Result{}, err
	}
	return [2]Fig9Result{panels[0], panels[1]}, nil
}

// RunFig9 executes the Fibonacci case study with or without energy guards.
func RunFig9(cfg Fig9Config) (Fig9Result, error) {
	def := DefaultFig9Config()
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = def.MaxNodes
	}
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, cfg.Seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	e.TraceVcap()

	app := &apps.Fib{DebugBuild: true, UseGuards: cfg.UseGuards, MaxNodes: cfg.MaxNodes}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Fig9Result{}, err
	}

	// Sample the item count over time by slicing the run.
	type point struct {
		at    sim.Cycles
		count int
	}
	var points []point
	slices := 20
	slice := units.Seconds(float64(cfg.Duration) / float64(slices))
	var last device.RunResult
	for i := 0; i < slices; i++ {
		res, err := r.RunFor(slice)
		if err != nil {
			return Fig9Result{}, err
		}
		last.Reboots += res.Reboots
		last.Faults += res.Faults
		last.Completed = last.Completed || res.Completed
		points = append(points, point{at: d.Clock.Now(), count: app.Count(d)})
		if res.Completed || res.Halted != "" {
			break
		}
		if e.Active() {
			e.ForceIdle()
		}
	}

	// Early and late append rates.
	rate := func(i0, i1 int) float64 {
		if i1 <= i0 || i1 >= len(points) {
			return 0
		}
		dt := float64(d.Clock.ToSeconds(points[i1].at - points[i0].at))
		if dt <= 0 {
			return 0
		}
		return float64(points[i1].count-points[i0].count) / dt
	}
	n := len(points)
	// Early rate from the first sample: the check's cost saturates within
	// a few charge cycles, so later windows understate the healthy rate.
	early := 0.0
	if n > 0 {
		if dt := float64(d.Clock.ToSeconds(points[0].at)); dt > 0 {
			early = float64(points[0].count) / dt
		}
	}
	late := rate(n-1-n/5, n-1)

	return Fig9Result{
		UseGuards:   cfg.UseGuards,
		Vcap:        e.VcapSeries(),
		Clock:       d.Clock,
		Count:       app.Count(d),
		EarlyRate:   early,
		LateRate:    late,
		Guards:      e.Stats().Guards,
		Result:      last,
		CheckErrors: app.CheckErrors(d),
	}, nil
}

// Format renders early/late trace windows and the progress summary.
func (r Fig9Result) Format() string {
	var b strings.Builder
	label := "without energy guards (top panel of Fig. 9)"
	if r.UseGuards {
		label = "with energy guards (bottom panel of Fig. 9)"
	}
	fmt.Fprintf(&b, "Figure 9 — consistency-check instrumentation, %s\n", label)
	total := r.Clock.Now()
	window := r.Clock.ToCycles(units.MilliSeconds(150))
	b.WriteString("Early cycles:\n")
	b.WriteString(trace.RenderASCII(windowSeries(r.Vcap, 0, window), r.Clock, 72, 10))
	b.WriteString("Late cycles:\n")
	b.WriteString(trace.RenderASCII(windowSeries(r.Vcap, total-window, total), r.Clock, 72, 10))
	fmt.Fprintf(&b, "items appended: %d (early %.1f items/s → late %.1f items/s)\n",
		r.Count, r.EarlyRate, r.LateRate)
	fmt.Fprintf(&b, "guards=%d reboots=%d check-violations=%d\n",
		r.Guards, r.Result.Reboots, r.CheckErrors)
	return b.String()
}

// CSV returns the full Vcap trace as "t_seconds,volts" lines.
func (r Fig9Result) CSV() string { return trace.CSV(r.Vcap, r.Clock) }

// Sec532Result reproduces the §5.3.2 symptom quantitatively: the unguarded
// debug build stops making progress once the check cost exceeds one
// charge-discharge budget (~555 items on the prototype).
type Sec532Result struct {
	// HangCount is where progress stopped.
	HangCount int
	// ProgressStopped is true if the last quarter of the run added no
	// items.
	ProgressStopped bool
	// PredictedHang estimates the hang point from the energy model:
	// (discharge budget in cycles) / (per-node check cost in cycles).
	PredictedHang int
	Duration      units.Seconds
}

// RunSec532 measures the unguarded hang point.
func RunSec532(duration units.Seconds, seed int64) (Sec532Result, error) {
	if duration == 0 {
		duration = 40
	}
	if seed == 0 {
		seed = 7
	}
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)

	app := &apps.Fib{DebugBuild: true, UseGuards: false, MaxNodes: 4000}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Sec532Result{}, err
	}

	var counts []int
	slices := 16
	slice := units.Seconds(float64(duration) / float64(slices))
	for i := 0; i < slices; i++ {
		res, err := r.RunFor(slice)
		if err != nil {
			return Sec532Result{}, err
		}
		counts = append(counts, app.Count(d))
		if res.Completed || res.Halted != "" {
			break
		}
	}
	n := len(counts)
	stopped := n >= 4 && counts[n-1] == counts[n-1-n/4]

	// Energy-model prediction: budget from turn-on to brown-out over the
	// per-node check cost.
	sup := d.Supply
	budget := float64(sup.Cap.EnergyBetween(sup.VBrownOut, sup.VTurnOn))
	avgV := (float64(sup.VTurnOn) + float64(sup.VBrownOut)) / 2
	net := float64(d.Config().ActiveCurrent) - float64(h.Current(units.Volts(avgV)))
	if net <= 0 {
		net = float64(d.Config().ActiveCurrent)
	}
	secs := budget / (net * avgV)
	cycles := secs * float64(d.Clock.Hz())
	perNode := float64(app.PerNodeCheckCycles + 6*device.CyclesLoad)
	pred := int(cycles / perNode)

	return Sec532Result{
		HangCount:       counts[n-1],
		ProgressStopped: stopped,
		PredictedHang:   pred,
		Duration:        duration,
	}, nil
}

// Format renders the hang-point measurement.
func (r Sec532Result) Format() string {
	return fmt.Sprintf(`Section 5.3.2 hang point (unguarded debug build)
items appended before progress stopped: %d
progress stopped: %v (over %s)
energy-model prediction for the hang point: ~%d items
(paper prototype: "approximately 555 items")
`, r.HangCount, r.ProgressStopped, r.Duration, r.PredictedHang)
}
