package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/units"
)

// Ablations for the design choices DESIGN.md calls out: the restore
// control loop's guard band, and the passive sampler's period. Neither is
// a paper table; they justify the defaults the reproduction (and the
// prototype) uses.

// MarginPoint is one guard-band setting's measured behavior.
type MarginPoint struct {
	Margin units.Volts
	// MeanDV is the restore discrepancy ΔV (Table 3's metric).
	MeanDV units.Volts
	// Undershoots counts restores that landed below the saved level —
	// the hazard the guard band exists to prevent (a resumed target
	// restarted below its saved level is pushed toward brown-out).
	Undershoots int
	Trials      int
}

// AblateRestoreMarginResult sweeps the restore guard band.
type AblateRestoreMarginResult struct {
	Points []MarginPoint
}

// RunAblateRestoreMargin measures ΔV and undershoot incidence across guard
// bands. Small bands restore tighter but risk landing under the saved
// level; the default 52 mV never undershoots at the cost of Table 3's
// documented discrepancy. The sweep points are independent benches, so
// they run in parallel; each point's streams derive only from (seed,
// point index).
func RunAblateRestoreMargin(trialsPerPoint int, seed int64) (AblateRestoreMarginResult, error) {
	if trialsPerPoint == 0 {
		trialsPerPoint = 20
	}
	if seed == 0 {
		seed = 5
	}
	margins := []units.Volts{
		units.MilliVolts(0.5), units.MilliVolts(2), units.MilliVolts(10),
		units.MilliVolts(25), units.MilliVolts(52), units.MilliVolts(100),
	}
	points, err := parallel.Map(len(margins), func(mi int) (MarginPoint, error) {
		margin := margins[mi]
		cfg := edb.DefaultConfig()
		cfg.RestoreMargin = margin
		cfg.Seed = seed + int64(mi)

		t3cfg := Table3Config{
			Trials: trialsPerPoint, BreakLevel: 2.3, ChargeLevel: 2.4,
			Seed: seed + int64(mi),
		}
		r, err := runTable3(t3cfg, cfg)
		if err != nil {
			return MarginPoint{}, err
		}
		pt := MarginPoint{Margin: margin, Trials: r.Trials}
		var sum float64
		for _, dv := range r.DVScope {
			sum += dv
			if dv < 0 {
				pt.Undershoots++
			}
		}
		if r.Trials > 0 {
			pt.MeanDV = units.Volts(sum / float64(r.Trials))
		}
		return pt, nil
	})
	if err != nil {
		return AblateRestoreMarginResult{}, err
	}
	return AblateRestoreMarginResult{Points: points}, nil
}

// Format renders the margin sweep.
func (r AblateRestoreMarginResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation: restore guard band vs. discrepancy and undershoot risk\n")
	fmt.Fprintf(&b, "%-12s %12s %14s %8s\n", "margin", "mean dV", "undershoots", "trials")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %9.1f mV %11d/%d %8d\n",
			p.Margin, 1e3*float64(p.MeanDV), p.Undershoots, p.Trials, p.Trials)
	}
	b.WriteString("(undershooting a restore pushes the resumed target toward brown-out;\n")
	b.WriteString(" the default 52 mV band trades Table 3's discrepancy for zero undershoots)\n")
	return b.String()
}

// PeriodPoint is one sampling-period setting's measured behavior.
type PeriodPoint struct {
	Period units.Seconds
	// TriggerBelow is how far below the threshold the supply had fallen
	// by the time the energy breakpoint's interrupt fired (mean, volts).
	TriggerBelow units.Volts
	Hits         int
}

// AblateSamplePeriodResult sweeps the passive sampler period.
type AblateSamplePeriodResult struct {
	Points []PeriodPoint
}

// RunAblateSamplePeriod measures energy-breakpoint trigger accuracy versus
// the sampler period: slower sampling detects the crossing later, so the
// session opens further below the requested level. Points run in parallel
// on independent benches seeded by (seed, point index).
func RunAblateSamplePeriod(seed int64) (AblateSamplePeriodResult, error) {
	if seed == 0 {
		seed = 6
	}
	periods := []units.Seconds{
		units.MicroSeconds(50), units.MicroSeconds(100),
		units.MicroSeconds(500), units.MilliSeconds(2),
	}
	const threshold = 2.2
	points, err := parallel.Map(len(periods), func(pi int) (PeriodPoint, error) {
		period := periods[pi]
		cfg := edb.DefaultConfig()
		cfg.SamplePeriod = period
		cfg.Seed = seed + int64(pi)

		h := &energy.ConstantHarvester{I: units.MicroAmps(150), Voc: 3.3}
		d := device.NewWISP5(h, seed+int64(pi))
		e := edb.New(cfg)
		e.Attach(d)
		app := &apps.Busy{}
		r := device.NewRunner(d, app)
		if err := r.Flash(); err != nil {
			return PeriodPoint{}, err
		}
		e.AddEnergyBreakpoint(threshold)
		var below []float64
		e.OnInteractive(func(s *edb.Session) {
			// The save happened on session entry; the latest save sample
			// is the trigger-time level.
			srs := e.SaveRestoreSamples()
			_ = srs
		})
		// Record trigger levels from the save stack via save/restore
		// samples once each session closes.
		if _, err := r.RunFor(units.Seconds(3)); err != nil {
			return PeriodPoint{}, err
		}
		for _, sr := range e.SaveRestoreSamples() {
			below = append(below, threshold-float64(sr.SavedTrue))
		}
		pt := PeriodPoint{Period: period, Hits: len(below)}
		if len(below) > 0 {
			pt.TriggerBelow = units.Volts(trace.Summarize(below).Mean)
		}
		return pt, nil
	})
	if err != nil {
		return AblateSamplePeriodResult{}, err
	}
	return AblateSamplePeriodResult{Points: points}, nil
}

// Format renders the period sweep.
func (r AblateSamplePeriodResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation: passive sampler period vs. energy-breakpoint accuracy\n")
	fmt.Fprintf(&b, "%-12s %18s %8s\n", "period", "trigger below (mV)", "hits")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %15.1f %8d\n", p.Period, 1e3*float64(p.TriggerBelow), p.Hits)
	}
	b.WriteString("(the default 100 µs period detects crossings within a few mV;\n")
	b.WriteString(" millisecond sampling lets the supply fall further before EDB reacts)\n")
	return b.String()
}
