package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/scope"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Fig2Result reproduces the paper's Figure 2B: the characteristic
// charge/discharge cycles that define intermittent operation — the
// "sawtooth" of harvested voltage with the turn-on threshold, active
// regions, and brown-outs. It also records the regulated rail (Vreg),
// showing the §4.1.2 observation that Vreg "may drop below its specified,
// regulated value during a power failure".
type Fig2Result struct {
	Vcap  *trace.Series
	Vreg  *trace.Series
	Clock *sim.Clock
	// CyclesPerSecond is the charge-discharge frequency ("tens to
	// hundreds of times per second").
	CyclesPerSecond float64
	// ActiveFraction is the duty cycle of useful execution.
	ActiveFraction float64
}

// RunFig2 records the sawtooth of a busy target on harvested power.
func RunFig2(duration units.Seconds, seed int64) (Fig2Result, error) {
	if duration == 0 {
		duration = 3
	}
	if seed == 0 {
		seed = 42
	}
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	e.TraceVcap()

	sc := scope.New(d, seed+1)
	vreg := sc.ProbeVreg(units.MicroSeconds(250))

	app := &apps.Busy{}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Fig2Result{}, err
	}
	res, err := r.RunFor(duration)
	if err != nil {
		return Fig2Result{}, err
	}
	total := float64(res.Stats.ActiveTime + res.Stats.ChargeTime)
	out := Fig2Result{
		Vcap:            e.VcapSeries(),
		Vreg:            vreg,
		Clock:           d.Clock,
		CyclesPerSecond: float64(res.Reboots) / float64(duration),
	}
	if total > 0 {
		out.ActiveFraction = float64(res.Stats.ActiveTime) / total
	}
	return out, nil
}

// Format renders the sawtooth with annotations.
func (r Fig2Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 2B — charge/discharge cycles defining intermittent operation\n")
	total := r.Clock.Now()
	window := r.Clock.ToCycles(units.MilliSeconds(300))
	from := sim.Cycles(0)
	if total > window {
		from = total - window
	}
	b.WriteString("Vcap (storage capacitor):\n")
	b.WriteString(trace.RenderASCII(windowSeries(r.Vcap, from, total), r.Clock, 72, 10))
	b.WriteString("Vreg (regulated rail — sags through power failures):\n")
	b.WriteString(trace.RenderASCII(windowSeries(r.Vreg, from, total), r.Clock, 72, 8))
	fmt.Fprintf(&b, "charge/discharge cycles: %.1f per second; active duty %.0f %%\n",
		r.CyclesPerSecond, 100*r.ActiveFraction)
	return b.String()
}
