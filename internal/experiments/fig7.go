package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Fig7Config parameterizes the §5.3.1 memory-corruption case study.
type Fig7Config struct {
	WithAssert bool
	Duration   units.Seconds
	Seed       int64
}

// DefaultFig7Config runs 15 simulated seconds.
func DefaultFig7Config() Fig7Config { return Fig7Config{Duration: 15, Seed: 42} }

// Fig7Result reproduces Figure 7: the oscilloscope trace of the
// memory-corrupting intermittence bug, without (top) and with (bottom) the
// intermittence-aware assert.
type Fig7Result struct {
	WithAssert bool
	Vcap       *trace.Series
	Clock      *sim.Clock
	// FirstOn is when the device first reached the turn-on threshold.
	FirstOn sim.Cycles
	// EarlyRate and LateRate are completed main-loop iterations per
	// second in the first and last fifth of the powered run — the
	// paper's "main loop runs at first (left) but mysteriously stops in
	// later discharge cycles (right)".
	EarlyRate, LateRate float64
	// Result summarizes the intermittent run.
	Result device.RunResult
	// Iterations completed (from the app's FRAM counter).
	Iterations int
	// TetheredAtEnd is true when EDB's keep-alive held the target.
	TetheredAtEnd bool
	// VcapAtEnd is the final capacitor voltage (≈ the tethered rail when
	// the keep-alive assert fired).
	VcapAtEnd units.Volts
	// CorruptionFound notes whether the run hit the intermittence bug.
	CorruptionFound bool
}

// RunFig7Panels produces both panels of Figure 7 — the buggy build and the
// assert-instrumented build — running the two independent benches in
// parallel. Index 0 is without the assert, index 1 with.
func RunFig7Panels(cfg Fig7Config) ([2]Fig7Result, error) {
	panels, err := parallel.Map(2, func(i int) (Fig7Result, error) {
		pcfg := cfg
		pcfg.WithAssert = i == 1
		return RunFig7(pcfg)
	})
	if err != nil {
		return [2]Fig7Result{}, err
	}
	return [2]Fig7Result{panels[0], panels[1]}, nil
}

// RunFig7 executes the linked-list case study, sampling progress from the
// app's non-volatile iteration counter.
func RunFig7(cfg Fig7Config) (Fig7Result, error) {
	def := DefaultFig7Config()
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, cfg.Seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	e.TraceVcap()

	app := &apps.LinkedList{WithAssert: cfg.WithAssert}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Fig7Result{}, err
	}

	// Slice the run to sample progress over time.
	type point struct {
		at    sim.Cycles
		iters int
	}
	var points []point
	var agg device.RunResult
	slices := 20
	slice := units.Seconds(float64(cfg.Duration) / float64(slices))
	halted := false
	for i := 0; i < slices; i++ {
		res, err := r.RunFor(slice)
		if err != nil {
			return Fig7Result{}, err
		}
		agg.Reboots += res.Reboots
		agg.Faults += res.Faults
		if res.Halted != "" {
			agg.Halted = res.Halted
			halted = true
		}
		points = append(points, point{at: d.Clock.Now(), iters: app.Iterations(d)})
		if halted {
			break
		}
	}
	if halted {
		// Keep observing the keep-alive hold: EDB keeps the target
		// tethered at the rail, which the trace records.
		d.AdvanceIdle(units.MilliSeconds(60))
	}

	rate := func(i0, i1 int) float64 {
		if i1 <= i0 || i1 >= len(points) {
			return 0
		}
		dt := float64(d.Clock.ToSeconds(points[i1].at - points[i0].at))
		if dt <= 0 {
			return 0
		}
		return float64(points[i1].iters-points[i0].iters) / dt
	}
	n := len(points)
	// Early rate: progress up to the first sample (the bug can strike
	// within the first slice, so a window between later samples could
	// miss the healthy phase entirely).
	early := 0.0
	if n > 0 {
		if dt := float64(d.Clock.ToSeconds(points[0].at)); dt > 0 {
			early = float64(points[0].iters) / dt
		}
	}
	late := rate(n-1-n/5, n-1)
	if halted && n > 0 {
		// The keep-alive assert stopped the run early; report the rate up
		// to the halt as "early" and zero after (the device is held).
		elapsed := float64(d.Clock.ToSeconds(points[n-1].at))
		if elapsed > 0 {
			early = float64(points[n-1].iters) / elapsed
		}
		late = 0
	}

	return Fig7Result{
		WithAssert:      cfg.WithAssert,
		Vcap:            e.VcapSeries(),
		Clock:           d.Clock,
		FirstOn:         firstAbove(e.VcapSeries(), float64(d.Supply.VTurnOn)),
		EarlyRate:       early,
		LateRate:        late,
		Result:          agg,
		Iterations:      app.Iterations(d),
		TetheredAtEnd:   d.Supply.Tethered(),
		VcapAtEnd:       d.Supply.Voltage(),
		CorruptionFound: !app.ConsistentTail(d) || agg.Faults > 0 || agg.Halted != "",
	}, nil
}

// firstAbove returns the time of the first sample at or above the level.
func firstAbove(s *trace.Series, level float64) sim.Cycles {
	for _, smp := range s.Samples {
		if smp.V >= level {
			return smp.At
		}
	}
	return 0
}

// Format renders the run as two trace windows plus the summary.
func (r Fig7Result) Format() string {
	var b strings.Builder
	label := "without assert (top panel of Fig. 7)"
	if r.WithAssert {
		label = "with intermittence-aware assert (bottom panel of Fig. 7)"
	}
	fmt.Fprintf(&b, "Figure 7 — linked-list intermittence bug, %s\n", label)
	total := r.Clock.Now()
	window := r.Clock.ToCycles(units.MilliSeconds(120))
	b.WriteString("Early discharge cycles:\n")
	b.WriteString(trace.RenderASCII(windowSeries(r.Vcap, r.FirstOn, r.FirstOn+window), r.Clock, 72, 10))
	b.WriteString("Late discharge cycles:\n")
	b.WriteString(trace.RenderASCII(windowSeries(r.Vcap, total-window, total), r.Clock, 72, 10))
	fmt.Fprintf(&b, "main-loop progress: early %.0f iter/s → late %.0f iter/s\n", r.EarlyRate, r.LateRate)
	fmt.Fprintf(&b, "iterations=%d reboots=%d faults=%d halted=%q tethered=%v Vcap(end)=%s corruption=%v\n",
		r.Iterations, r.Result.Reboots, r.Result.Faults, r.Result.Halted,
		r.TetheredAtEnd, r.VcapAtEnd, r.CorruptionFound)
	return b.String()
}

// CSV returns the full Vcap trace as "t_seconds,volts" lines.
func (r Fig7Result) CSV() string { return trace.CSV(r.Vcap, r.Clock) }

// windowSeries copies a window of samples into a new series.
func windowSeries(s *trace.Series, from, to sim.Cycles) *trace.Series {
	out := trace.NewSeries(s.Name, s.Unit)
	out.Samples = append(out.Samples, s.Window(from, to)...)
	return out
}
