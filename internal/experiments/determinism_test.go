// Golden determinism test: the parallel runner must produce bit-for-bit
// the results of a sequential run. Every work item's streams derive only
// from (seed, index), and each owns a private clock/device/RNG, so worker
// count and scheduling order must be unobservable. Run under -race this
// test also exercises the pool for data races.
package experiments

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// withWorkers runs fn with the pool clamped to n workers, restoring the
// previous setting afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	fn()
}

func TestTable3ParallelMatchesSequential(t *testing.T) {
	cfg := DefaultTable3Config()
	cfg.Trials = 25 // 3 shards: two full, one remainder

	var seq, par Table3Result
	withWorkers(t, 1, func() {
		r, err := RunTable3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq = r
	})
	withWorkers(t, 4, func() {
		r, err := RunTable3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par = r
	})

	if seq.Trials != cfg.Trials {
		t.Fatalf("sequential run completed %d/%d trials", seq.Trials, cfg.Trials)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Table 3 differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestFig7PanelsParallelMatchesSequential(t *testing.T) {
	cfg := Fig7Config{Duration: 6, Seed: 42}

	var seq, par [2]Fig7Result
	withWorkers(t, 1, func() {
		r, err := RunFig7Panels(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq = r
	})
	withWorkers(t, 4, func() {
		r, err := RunFig7Panels(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par = r
	})

	for i := range seq {
		s, p := seq[i], par[i]
		// The struct holds *sim.Clock and *trace.Series pointers, so compare
		// the value content: the scalar summary fields and the full Vcap
		// sample stream.
		if s.WithAssert != p.WithAssert || s.FirstOn != p.FirstOn ||
			s.EarlyRate != p.EarlyRate || s.LateRate != p.LateRate ||
			s.Result != p.Result || s.Iterations != p.Iterations ||
			s.TetheredAtEnd != p.TetheredAtEnd || s.VcapAtEnd != p.VcapAtEnd ||
			s.CorruptionFound != p.CorruptionFound {
			t.Fatalf("panel %d summary differs:\nseq: %+v\npar: %+v", i, s, p)
		}
		if s.Clock.Now() != p.Clock.Now() {
			t.Fatalf("panel %d clocks differ: %d vs %d", i, s.Clock.Now(), p.Clock.Now())
		}
		if !reflect.DeepEqual(s.Vcap.Samples, p.Vcap.Samples) {
			t.Fatalf("panel %d Vcap trace differs (%d vs %d samples)",
				i, len(s.Vcap.Samples), len(p.Vcap.Samples))
		}
	}
	if seq[0].WithAssert || !seq[1].WithAssert {
		t.Fatal("panel order: index 0 must be the buggy build, index 1 the assert build")
	}
}
