package experiments

import (
	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/libedb"
	"repro/internal/units"
)

// WatchpointCostResult quantifies §4.1.3's claim that program-event
// monitoring is "practically energy-interference-free": the target-side
// cost of one code-marker watchpoint.
type WatchpointCostResult struct {
	CyclesPerWatchpoint   float64
	EnergyPerWatchpointNJ float64
}

// RunWatchpointCost executes n watchpoints on a powered target and
// measures the per-watchpoint cycle and energy cost.
func RunWatchpointCost(n int) (WatchpointCostResult, error) {
	if n < 1 {
		n = 1
	}
	d := device.NewWISP5(energy.NullHarvester{}, 99)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	lib, err := libedb.Init(d)
	if err != nil {
		return WatchpointCostResult{}, err
	}
	env := &device.Env{D: d}

	var res WatchpointCostResult
	done := 0
	for done < n {
		// Refill the store; measure in batches that cannot brown out.
		d.Supply.Cap.SetVoltage(2.4)
		d.Supply.Step(0, 0)
		batch := 1000
		if n-done < batch {
			batch = n - done
		}
		t0 := d.Clock.Now()
		e0 := d.Supply.Cap.Energy()
		for i := 0; i < batch; i++ {
			lib.Watchpoint(env, 1+i%libedb.MaxWatchpointID)
		}
		res.CyclesPerWatchpoint = float64(d.Clock.Now()-t0) / float64(batch)
		res.EnergyPerWatchpointNJ = 1e9 * float64(e0-d.Supply.Cap.Energy()) / float64(batch)
		done += batch
	}
	return res, nil
}

// RunThroughput runs the busy program for n short intervals and returns
// the simulated seconds executed per iteration — a simulator engineering
// metric.
func RunThroughput(n int) (float64, error) {
	if n < 1 {
		n = 1
	}
	d := device.NewWISP5(energy.NewRFHarvester(), 98)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	r := device.NewRunner(d, &apps.Busy{})
	if err := r.Flash(); err != nil {
		return 0, err
	}
	per := units.MilliSeconds(250)
	for i := 0; i < n; i++ {
		if _, err := r.RunFor(per); err != nil {
			return 0, err
		}
	}
	return float64(per), nil
}

// RunISAThroughput executes n slices of a register-spin loop on the
// MSP430-subset interpreter and returns instructions retired per slice.
func RunISAThroughput(n int) (float64, error) {
	if n < 1 {
		n = 1
	}
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(5), Voc: 3.3}, 97)
	prog := isa.NewProgram("spin", `
main:	inc r5
	inc r6
	add r5, r7
	jmp main
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := r.RunFor(units.MilliSeconds(50)); err != nil {
			return 0, err
		}
	}
	return float64(prog.CPU().Retired()) / float64(n), nil
}
