package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/units"
)

// PrintCostConfig parameterizes the §5.3.3 activity-recognition
// instrumentation study (Table 4 and Figure 11).
type PrintCostConfig struct {
	// Duration is the simulated run per build.
	Duration units.Seconds
	// Distance sets the harvesting range; the evaluation point is chosen
	// so the application runs intermittently (a handful of iterations per
	// charge-discharge cycle).
	Distance units.Meters
	Seed     int64
}

// DefaultPrintCostConfig gives each build 60 simulated seconds.
func DefaultPrintCostConfig() PrintCostConfig {
	return PrintCostConfig{Duration: 60, Distance: 1.4, Seed: 4}
}

// ModeResult is one row of Table 4 plus the per-iteration samples behind
// Figure 11's CDFs.
type ModeResult struct {
	Mode        apps.PrintMode
	SuccessRate float64
	// Per-iteration samples (completed iterations only).
	IterEnergyPct []float64 // % of the 47 µF store
	IterTimeMs    []float64
	// Marginal print cost (vs the no-print build).
	PrintEnergyPct float64
	PrintTimeMs    float64
	// Bookkeeping.
	Iterations int
	Reboots    int
}

// CkptResult is one checkpoint-strategy row of the Table 4 extension: the
// no-print activity build re-run with a checkpointing runtime polling at
// every loop back-edge, so the checkpoint traffic rides the application's
// own energy budget. Rows compare static full-image placement (Mementos'
// fixed voltage threshold) against DiCA-style differential placement
// (threshold scaled by the dirty set actually pending). The runs measure
// placement and copy interference — recovery behavior is covered by the
// task-runtime apps.
type CkptResult struct {
	Strategy    string
	SuccessRate float64
	Iterations  int
	Reboots     int
	// Checkpoints/WordsCopied: committed checkpoints and their total copy
	// traffic — the O(dirty) saving shows up here.
	Checkpoints int
	WordsCopied uint64
	// Triggers counts trigger-point polls (each costs a voltage measure).
	Triggers int
}

// Table4Result reproduces Table 4: cost of debug output and its impact on
// the activity-recognition application, plus the checkpoint-strategy
// comparison rows (kept separate from Modes, which is exactly the paper's
// three print builds).
type Table4Result struct {
	Modes []ModeResult
	Ckpts []CkptResult
}

// RunPrintCost runs the activity app once per instrumentation mode and
// extracts iteration statistics from EDB's watchpoint stream. The three
// builds are independent benches sharing the same seed, so they run in
// parallel; the marginal-cost columns are computed after all three finish.
func RunPrintCost(cfg PrintCostConfig) (Table4Result, error) {
	def := DefaultPrintCostConfig()
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Distance == 0 {
		cfg.Distance = def.Distance
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	// The three print builds and the two checkpoint-strategy builds are
	// independent benches sharing the same seed: one fan-out runs all five.
	modes := []apps.PrintMode{apps.NoPrint, apps.UARTPrint, apps.EDBPrint}
	type row struct {
		mode ModeResult
		ckpt CkptResult
	}
	rows, err := parallel.Map(len(modes)+2, func(i int) (row, error) {
		if i < len(modes) {
			mr, err := runPrintMode(cfg, modes[i])
			if err != nil {
				return row{}, fmt.Errorf("mode %v: %w", modes[i], err)
			}
			return row{mode: mr}, nil
		}
		cr, err := runCkptStrategy(cfg, i == len(modes)+1)
		if err != nil {
			return row{}, fmt.Errorf("ckpt %d: %w", i-len(modes), err)
		}
		return row{ckpt: cr}, nil
	})
	if err != nil {
		return Table4Result{}, err
	}
	var out Table4Result
	for i, r := range rows {
		if i < len(modes) {
			out.Modes = append(out.Modes, r.mode)
		} else {
			out.Ckpts = append(out.Ckpts, r.ckpt)
		}
	}
	// Marginal print costs relative to the no-print build. The EDB
	// printf's energy cost is what its own compensation left behind —
	// the save/restore discrepancy — which the iteration deltas also
	// reflect; the time cost is the wall-clock stretch.
	base := out.Modes[0]
	for i := range out.Modes {
		m := &out.Modes[i]
		if m.Mode == apps.NoPrint {
			continue
		}
		m.PrintEnergyPct = mean(m.IterEnergyPct) - mean(base.IterEnergyPct)
		if m.PrintEnergyPct < 0 {
			m.PrintEnergyPct = math.Abs(m.PrintEnergyPct)
		}
		m.PrintTimeMs = mean(m.IterTimeMs) - mean(base.IterTimeMs)
	}
	return out, nil
}

func runPrintMode(cfg PrintCostConfig, mode apps.PrintMode) (ModeResult, error) {
	h := energy.NewRFHarvester()
	h.Distance = cfg.Distance
	d := device.NewWISP5(h, cfg.Seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)

	app := &apps.Activity{Print: mode}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return ModeResult{}, err
	}
	res, err := r.RunFor(cfg.Duration)
	if err != nil {
		return ModeResult{}, err
	}

	st := app.Stats(d)
	mr := ModeResult{
		Mode:        mode,
		SuccessRate: st.SuccessRate(),
		Iterations:  st.Completed,
		Reboots:     res.Reboots,
	}
	mr.IterEnergyPct, mr.IterTimeMs = iterationProfile(d, e)
	return mr, nil
}

// ckptSnapBytes is the modeled volatile footprint the checkpoint rows
// preserve (stack + locals class; the activity app keeps its state in
// FRAM, so the footprint is fixed rather than measured).
const ckptSnapBytes = 256

// ckptThreshold is the static Mementos trigger threshold, chosen inside
// the WISP sawtooth (1.85–2.35 V) so trigger points fire on every
// discharge ramp.
const (
	ckptThreshold units.Volts = 2.05
	ckptVBase     units.Volts = 1.90
)

// runCkptStrategy reruns the no-print build with a checkpointing runtime
// hanging off the app's trigger hook: static full-copy Mementos, or (dica)
// incremental Mementos scheduled by the differential DiCA policy.
func runCkptStrategy(cfg PrintCostConfig, dica bool) (CkptResult, error) {
	h := energy.NewRFHarvester()
	h.Distance = cfg.Distance
	d := device.NewWISP5(h, cfg.Seed)

	app := &apps.Activity{Print: apps.NoPrint}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return CkptResult{}, err
	}

	cr := CkptResult{Strategy: "Mementos-full"}
	var m *checkpoint.Mementos
	var dc *baseline.DiCA
	var err error
	if dica {
		cr.Strategy = "DiCA-diff"
		if m, err = checkpoint.NewIncrementalMementos(d, ckptThreshold, ckptSnapBytes); err != nil {
			return CkptResult{}, err
		}
		dc = baseline.NewDiCA(m, ckptThreshold, ckptVBase, ckptSnapBytes/2)
		app.Trigger = dc.TriggerPoint
	} else {
		if m, err = checkpoint.NewMementos(d, ckptThreshold, ckptSnapBytes); err != nil {
			return CkptResult{}, err
		}
		app.Trigger = func(env *device.Env, ctx uint16) bool {
			cr.Triggers++
			return m.TriggerPoint(env, ctx)
		}
	}

	res, err := r.RunFor(cfg.Duration)
	if err != nil {
		return CkptResult{}, err
	}
	st := app.Stats(d)
	cr.SuccessRate = st.SuccessRate()
	cr.Iterations = st.Completed
	cr.Reboots = res.Reboots
	cr.Checkpoints = m.Checkpoints
	cr.WordsCopied = m.WordsCopied
	if dc != nil {
		cr.Triggers = dc.Triggers
	}
	return cr, nil
}

// iterationProfile pairs watchpoint 1 (iteration start) with watchpoint 2
// or 3 (classification done) and converts the snapshots into per-iteration
// time and energy — the measurement behind Fig. 11: "The energy profile
// was calculated from the difference between energy level snapshots taken
// by watchpoints."
func iterationProfile(d *device.Device, e *edb.EDB) (energyPct, timeMs []float64) {
	hits := e.WatchHits()
	maxE := float64(d.Supply.ReferenceEnergy())
	capC := d.Supply.Cap
	for i := 0; i+1 < len(hits); i++ {
		if hits[i].ID != apps.WPIterStart {
			continue
		}
		next := hits[i+1]
		if next.ID != apps.WPMoving && next.ID != apps.WPStationary {
			continue // reboot interleaved; iteration did not complete
		}
		dt := d.Clock.ToSeconds(next.At - hits[i].At)
		if dt <= 0 || dt > 0.05 {
			continue
		}
		de := float64(capC.EnergyBetween(next.V, hits[i].V)) // positive when V fell
		energyPct = append(energyPct, 100*de/maxE)
		timeMs = append(timeMs, 1e3*float64(dt))
	}
	return energyPct, timeMs
}

func mean(xs []float64) float64 { return trace.Summarize(xs).Mean }

// Format renders Table 4.
func (r Table4Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 4: cost of debug output in the activity-recognition app\n")
	fmt.Fprintf(&b, "%-14s %10s %14s %12s %14s %12s\n",
		"", "Success", "IterEnergy", "IterTime", "PrintEnergy", "PrintTime")
	fmt.Fprintf(&b, "%-14s %10s %14s %12s %14s %12s\n",
		"", "Rate(%)", "(% of cap)", "(ms)", "(% of cap)", "(ms)")
	for _, m := range r.Modes {
		pe, pt := "-", "-"
		if m.Mode != apps.NoPrint {
			pe = fmt.Sprintf("%.2f", m.PrintEnergyPct)
			pt = fmt.Sprintf("%.1f", m.PrintTimeMs)
		}
		fmt.Fprintf(&b, "%-14s %10.0f %14.1f %12.1f %14s %12s\n",
			m.Mode, 100*m.SuccessRate, mean(m.IterEnergyPct), mean(m.IterTimeMs), pe, pt)
	}
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "(%s: %d iterations, %d reboots)\n", m.Mode, m.Iterations, m.Reboots)
	}
	if len(r.Ckpts) > 0 {
		b.WriteString("checkpoint strategies (no-print build):\n")
		fmt.Fprintf(&b, "%-14s %10s %10s %12s %10s %10s\n",
			"", "Success", "Ckpts", "CopiedWords", "Triggers", "Reboots")
		for _, c := range r.Ckpts {
			fmt.Fprintf(&b, "%-14s %10.0f %10d %12d %10d %10d\n",
				c.Strategy, 100*c.SuccessRate, c.Checkpoints, c.WordsCopied, c.Triggers, c.Reboots)
		}
	}
	return b.String()
}

// Fig11Result reproduces Figure 11: the CDF of per-iteration energy cost
// under each output mechanism.
type Fig11Result struct {
	Names []string
	CDFs  []*trace.CDF
}

// Fig11FromTable4 builds the figure from the Table 4 runs.
func Fig11FromTable4(t4 Table4Result) Fig11Result {
	var r Fig11Result
	for _, m := range t4.Modes {
		r.Names = append(r.Names, m.Mode.String())
		r.CDFs = append(r.CDFs, trace.NewCDF(m.IterEnergyPct))
	}
	return r
}

// CSV returns the CDF point sets as "series,x_pct,p" lines.
func (r Fig11Result) CSV() string {
	var b strings.Builder
	b.WriteString("series,iter_energy_pct,cumulative_p\n")
	for i, c := range r.CDFs {
		for _, pt := range c.Points() {
			fmt.Fprintf(&b, "%s,%.4f,%.4f\n", r.Names[i], pt[0], pt[1])
		}
	}
	return b.String()
}

// Format renders the CDFs as an ASCII plot plus quantile rows.
func (r Fig11Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 11: CDF of per-iteration energy cost (% of max capacity)\n")
	b.WriteString(trace.RenderCDFASCII(r.Names, r.CDFs, 64, 16))
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "", "p10", "p50", "p90")
	for i, c := range r.CDFs {
		fmt.Fprintf(&b, "%-14s %8.2f %8.2f %8.2f\n",
			r.Names[i], c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9))
	}
	return b.String()
}
