// Tests in this file assert the *shape criteria* of DESIGN.md §3: each
// experiment must reproduce the qualitative structure of the paper's
// result (who wins, by roughly what factor, where behavior changes), not
// its absolute numbers.
package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestTable2Shape(t *testing.T) {
	r := RunTable2(DefaultTable2Config())
	if len(r.Rows) != 2+2*9 { // 2 analog rows + 9 digital connections × 2 states
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Headline: total worst case < 1 µA, well under 1 % of active current.
	if r.TotalWorstCase >= units.MicroAmps(1) {
		t.Fatalf("total worst case = %v", r.TotalWorstCase)
	}
	if r.ActiveFraction >= 0.01 {
		t.Fatalf("interference fraction = %v", r.ActiveFraction)
	}
	// Structure: target-driven high-state lines dominate; analog and I2C
	// are sub-nA.
	byName := map[string]Table2Row{}
	for _, row := range r.Rows {
		byName[row.Connection+"/"+row.State] = row
	}
	for _, name := range []string{"Code marker", "UART RX", "UART TX", "RF RX", "RF TX", "Target->Debugger comm."} {
		hi := byName[name+"/high"]
		if float64(hi.Stats.Avg) < 30e-9 || float64(hi.Stats.Avg) > 120e-9 {
			t.Fatalf("%s high avg = %v", name, hi.Stats.Avg)
		}
	}
	for _, name := range []string{"I2C SCL/high", "I2C SDA/high", "Debugger->Target comm./high"} {
		if row := byName[name]; float64(row.Stats.Avg) > 1e-9 {
			t.Fatalf("%s avg = %v, want sub-nA", name, row.Stats.Avg)
		}
	}
	out := r.Format()
	if !strings.Contains(out, "Worst-Case Total Current") {
		t.Fatal("format missing total")
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := DefaultTable3Config()
	cfg.Trials = 20
	r, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials < cfg.Trials {
		t.Fatalf("completed trials = %d", r.Trials)
	}
	sv := trace.Summarize(r.DVScope)
	// ΔV: positive (restore lands above saved, never pushing toward
	// brown-out), tens of mV (the prototype's 54 mV class), spread well
	// under the mean.
	if sv.Mean < 0.02 || sv.Mean > 0.09 {
		t.Fatalf("scope dV mean = %v", sv.Mean)
	}
	if sv.Min < 0 {
		t.Fatalf("restore must never land below the saved level: min=%v", sv.Min)
	}
	if sv.SD > sv.Mean {
		t.Fatalf("dV spread too wide: %+v", sv)
	}
	// ΔE%: a few percent of the 47 µF store (paper: 4.34 %).
	ps := trace.Summarize(r.DEPctScope)
	if ps.Mean < 1 || ps.Mean > 8 {
		t.Fatalf("dE%% mean = %v", ps.Mean)
	}
	// The ADC view agrees with the scope to within its resolution class.
	sa := trace.Summarize(r.DVADC)
	if diff := sv.Mean - sa.Mean; diff > 0.005 || diff < -0.005 {
		t.Fatalf("ADC and scope disagree: %v vs %v", sa.Mean, sv.Mean)
	}
	if !strings.Contains(r.Format(), "Table 3") {
		t.Fatal("format")
	}
}

func TestTable4AndFig11Shape(t *testing.T) {
	cfg := DefaultPrintCostConfig()
	cfg.Duration = 20
	r, err := RunPrintCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Modes) != 3 {
		t.Fatalf("modes = %d", len(r.Modes))
	}
	no, uart, edbp := r.Modes[0], r.Modes[1], r.Modes[2]

	// Success-rate ordering: no-print >= EDB printf > UART printf.
	if !(no.SuccessRate >= edbp.SuccessRate-0.03) {
		t.Fatalf("success: no=%v edb=%v", no.SuccessRate, edbp.SuccessRate)
	}
	if !(edbp.SuccessRate > uart.SuccessRate) {
		t.Fatalf("success: edb=%v uart=%v", edbp.SuccessRate, uart.SuccessRate)
	}
	// Energy: UART print costs percent-scale energy; EDB print costs an
	// order of magnitude less.
	if uart.PrintEnergyPct < 1 {
		t.Fatalf("uart print energy = %v%%", uart.PrintEnergyPct)
	}
	if edbp.PrintEnergyPct > uart.PrintEnergyPct/5 {
		t.Fatalf("edb print energy %v%% not << uart %v%%", edbp.PrintEnergyPct, uart.PrintEnergyPct)
	}
	// Time: EDB printf costs more wall-clock than UART (save/restore
	// bracketing), as in the paper (3.1 ms vs 1.1 ms).
	if edbp.PrintTimeMs <= uart.PrintTimeMs {
		t.Fatalf("edb print time %v must exceed uart %v", edbp.PrintTimeMs, uart.PrintTimeMs)
	}
	// Iteration energy: EDB build within noise of the bare build; UART
	// build substantially higher (Fig. 11's CDF separation).
	if mean(edbp.IterEnergyPct) > 1.3*mean(no.IterEnergyPct) {
		t.Fatalf("edb iteration energy %v strays from baseline %v",
			mean(edbp.IterEnergyPct), mean(no.IterEnergyPct))
	}
	if mean(uart.IterEnergyPct) < 1.5*mean(no.IterEnergyPct) {
		t.Fatalf("uart iteration energy %v not separated from baseline %v",
			mean(uart.IterEnergyPct), mean(no.IterEnergyPct))
	}

	fig := Fig11FromTable4(r)
	if len(fig.CDFs) != 3 {
		t.Fatal("fig11 cdfs")
	}
	// Median ordering matches the figure.
	if !(fig.CDFs[0].Quantile(0.5) < fig.CDFs[1].Quantile(0.5)) {
		t.Fatal("no-print median must sit left of uart median")
	}
	if !strings.Contains(fig.Format(), "CDF") || !strings.Contains(r.Format(), "Table 4") {
		t.Fatal("formats")
	}
}

func TestFig7Shape(t *testing.T) {
	noAssert, err := RunFig7(Fig7Config{Duration: 12, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Top panel: the main loop runs early, then stops forever.
	if noAssert.EarlyRate < 100 {
		t.Fatalf("early rate = %v", noAssert.EarlyRate)
	}
	if noAssert.LateRate > noAssert.EarlyRate/50 {
		t.Fatalf("late rate %v must collapse from early %v", noAssert.LateRate, noAssert.EarlyRate)
	}
	if noAssert.Result.Faults == 0 || !noAssert.CorruptionFound {
		t.Fatalf("bug must manifest: %+v", noAssert.Result)
	}

	withAssert, err := RunFig7(Fig7Config{Duration: 12, Seed: 42, WithAssert: true})
	if err != nil {
		t.Fatal(err)
	}
	// Bottom panel: assert catches the corruption before the wild write;
	// the device ends tethered at the rail.
	if withAssert.Result.Faults != 0 {
		t.Fatalf("assert build must not fault: %+v", withAssert.Result)
	}
	if !strings.Contains(withAssert.Result.Halted, "assert") {
		t.Fatalf("halted = %q", withAssert.Result.Halted)
	}
	if !withAssert.TetheredAtEnd || withAssert.VcapAtEnd < 2.8 {
		t.Fatalf("keep-alive: tethered=%v v=%v", withAssert.TetheredAtEnd, withAssert.VcapAtEnd)
	}
	if !strings.Contains(noAssert.Format(), "Figure 7") {
		t.Fatal("format")
	}
}

func TestFig9Shape(t *testing.T) {
	unguarded, err := RunFig9(Fig9Config{Duration: 15, Seed: 7, MaxNodes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Unguarded: progress collapses once the check eats the budget.
	if unguarded.EarlyRate < 20 {
		t.Fatalf("unguarded early rate = %v", unguarded.EarlyRate)
	}
	if unguarded.LateRate > unguarded.EarlyRate/10 {
		t.Fatalf("unguarded late rate %v must collapse from %v",
			unguarded.LateRate, unguarded.EarlyRate)
	}

	guarded, err := RunFig9(Fig9Config{Duration: 15, Seed: 7, MaxNodes: 4000, UseGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Guards == 0 {
		t.Fatal("guards must engage")
	}
	// Guarded: strictly more progress, and the check itself keeps running
	// at lengths far past the unguarded hang point.
	if guarded.Count < 2*unguarded.Count {
		t.Fatalf("guarded count %d vs unguarded %d", guarded.Count, unguarded.Count)
	}
	if !strings.Contains(guarded.Format(), "Figure 9") {
		t.Fatal("format")
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := DefaultFig12Config()
	cfg.Duration = 10
	r, err := RunFig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The tag responds to most but not all queries (the paper's 86 %).
	if r.ResponseRate < 0.5 || r.ResponseRate > 0.999 {
		t.Fatalf("response rate = %v", r.ResponseRate)
	}
	if r.RepliesPerSecond < 5 || r.RepliesPerSecond > 25 {
		t.Fatalf("replies/s = %v", r.RepliesPerSecond)
	}
	// EDB classified both directions, including corrupted frames the
	// firmware could not decode.
	if len(r.Messages) == 0 || r.CorruptSeen == 0 {
		t.Fatalf("messages=%d corrupt=%d", len(r.Messages), r.CorruptSeen)
	}
	// EDB's external decode agrees with the firmware's own corrupt count.
	if r.CorruptSeen < r.Firmware.Corrupt {
		t.Fatalf("external decode %d must see at least the firmware's %d",
			r.CorruptSeen, r.Firmware.Corrupt)
	}
	if !strings.Contains(r.Format(), "Figure 12") {
		t.Fatal("format")
	}
}

func TestSec531Transcript(t *testing.T) {
	r, err := RunSec531(42)
	if err != nil {
		t.Fatal(err)
	}
	if !r.InvariantBroken {
		t.Fatal("diagnosis must find the corruption")
	}
	for _, want := range []string{"(edb) vcap", "(edb) read", "diagnosis:", "halt"} {
		if !strings.Contains(r.Transcript, want) {
			t.Fatalf("transcript missing %q:\n%s", want, r.Transcript)
		}
	}
	if r.AssertID == 0 {
		t.Fatal("assert id must parse")
	}
}

func TestSec532HangPoint(t *testing.T) {
	r, err := RunSec532(25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ProgressStopped {
		t.Fatal("unguarded debug build must hang")
	}
	// The hang point lands in the several-hundred range (prototype: ~555)
	// and within 2× of the energy model's prediction.
	if r.HangCount < 250 || r.HangCount > 1100 {
		t.Fatalf("hang count = %d", r.HangCount)
	}
	ratio := float64(r.HangCount) / float64(r.PredictedHang)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("measured %d vs predicted %d", r.HangCount, r.PredictedHang)
	}
	if !strings.Contains(r.Format(), "hang point") {
		t.Fatal("format")
	}
}

func TestExhaustiveShape(t *testing.T) {
	cfg := DefaultExhaustiveConfig()
	cfg.CheckHashes = true
	r, err := RunExhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The unguarded build must fail with at least one concrete WAR trace,
	// pinned to a FRAM address and a branch path.
	if r.Unguarded.Clean() {
		t.Fatal("unguarded build must exhibit WAR violations")
	}
	v := r.Unguarded.Violations[0]
	if v.Addr == 0 || !strings.HasPrefix(v.Trace, "root") || v.Cand < 1 {
		t.Fatalf("violation not actionable: %+v", v)
	}
	// The guarded build verifies clean over the same bounds.
	if !r.Guarded.Clean() {
		t.Fatalf("guarded build must be clean, got %d violations", len(r.Guarded.Violations))
	}
	if r.Guarded.States == 0 || r.Guarded.Branches == 0 {
		t.Fatalf("guarded exploration made no progress: %+v", r.Guarded)
	}
	// Every captured state passed the full-image hash cross-check.
	if r.Unguarded.HashChecks < r.Unguarded.States {
		t.Fatalf("hash checks %d < states %d", r.Unguarded.HashChecks, r.Unguarded.States)
	}
	out := r.Format()
	for _, want := range []string{"FAIL", "PASS", "non-idempotent re-execution", "no WAR violations detected"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestTable4CkptStrategies(t *testing.T) {
	r, err := RunPrintCost(PrintCostConfig{Duration: 10, Distance: 1.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ckpts) != 2 {
		t.Fatalf("ckpt rows = %d", len(r.Ckpts))
	}
	full, dica := r.Ckpts[0], r.Ckpts[1]
	if full.Strategy != "Mementos-full" || dica.Strategy != "DiCA-diff" {
		t.Fatalf("strategies = %q, %q", full.Strategy, dica.Strategy)
	}
	if full.Checkpoints == 0 || dica.Checkpoints == 0 {
		t.Fatalf("both strategies must checkpoint: %d vs %d", full.Checkpoints, dica.Checkpoints)
	}
	// Differential placement must cut copy traffic substantially — the
	// activity loop dirties a small fraction of the modeled image.
	if dica.WordsCopied*2 > full.WordsCopied {
		t.Fatalf("dica copied %d words vs full %d, want < half", dica.WordsCopied, full.WordsCopied)
	}
	// ...without hurting the application (the relaxed threshold only ever
	// defers checkpoints the dirty set does not justify).
	if dica.SuccessRate < full.SuccessRate-0.03 {
		t.Fatalf("dica success %v vs full %v", dica.SuccessRate, full.SuccessRate)
	}
	if !strings.Contains(r.Format(), "checkpoint strategies") {
		t.Fatal("format")
	}
}

func TestPrintModesEnumerate(t *testing.T) {
	r, err := RunPrintCost(PrintCostConfig{Duration: 5, Distance: 1.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []apps.PrintMode{apps.NoPrint, apps.UARTPrint, apps.EDBPrint}
	for i, m := range r.Modes {
		if m.Mode != want[i] {
			t.Fatalf("mode %d = %v", i, m.Mode)
		}
		if m.Iterations == 0 {
			t.Fatalf("mode %v made no progress", m.Mode)
		}
	}
}

func TestRangeSweepShape(t *testing.T) {
	r, err := RunRangeSweep(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Harvest power decreases monotonically with distance (Friis).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].HarvestPower >= r.Points[i-1].HarvestPower {
			t.Fatalf("harvest power must fall with distance: %+v", r.Points)
		}
	}
	// Near points respond nearly always; the far end collapses.
	near, far := r.Points[0], r.Points[len(r.Points)-1]
	if near.ResponseRate < 0.85 {
		t.Fatalf("near response = %v", near.ResponseRate)
	}
	if far.ResponseRate > 0.6*near.ResponseRate {
		t.Fatalf("far response %v must collapse from near %v", far.ResponseRate, near.ResponseRate)
	}
	if !strings.Contains(r.Format(), "operating curve") {
		t.Fatal("format")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := RunFig2(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// "tens to hundreds of times per second" — our WISP profile cycles
	// around 10 Hz.
	if r.CyclesPerSecond < 3 || r.CyclesPerSecond > 100 {
		t.Fatalf("cycle rate = %v", r.CyclesPerSecond)
	}
	if r.ActiveFraction <= 0.1 || r.ActiveFraction >= 0.9 {
		t.Fatalf("active duty = %v", r.ActiveFraction)
	}
	// The sawtooth spans the comparator thresholds.
	if r.Vcap.Min() > 1.85 || r.Vcap.Max() < 2.35 {
		t.Fatalf("sawtooth range [%v, %v]", r.Vcap.Min(), r.Vcap.Max())
	}
	// Vreg sags below its 2.0 V setpoint through failures.
	if r.Vreg.Min() > 1.9 {
		t.Fatalf("vreg min = %v, must sag below the setpoint", r.Vreg.Min())
	}
	if !strings.Contains(r.Format(), "Figure 2B") {
		t.Fatal("format")
	}
}

func TestBaselinesShape(t *testing.T) {
	r, err := RunBaselines(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	byTool := map[string]BaselineRow{}
	for _, row := range r.Rows {
		byTool[row.Tool] = row
	}
	if !byTool["none"].BugManifested {
		t.Fatal("unobserved run must hit the bug")
	}
	if byTool["jtag"].BugManifested {
		t.Fatal("JTAG must mask the bug")
	}
	if !byTool["jtag (isolated)"].BugManifested {
		t.Fatal("isolated JTAG must not mask the bug")
	}
	edbRow := byTool["edb"]
	if !edbRow.BugManifested || !edbRow.RootCauseVisible {
		t.Fatalf("EDB must both observe and expose: %+v", edbRow)
	}
	// EDB's interference is orders of magnitude under the LED's and the
	// JTAG rail.
	if abs64(float64(edbRow.Interference)) > 1e-6 {
		t.Fatalf("EDB interference = %v", edbRow.Interference)
	}
	if abs64(float64(byTool["led tracing"].Interference)) < 1e-3 {
		t.Fatal("LED interference must be mA-scale")
	}
	if !strings.Contains(r.Format(), "tool") {
		t.Fatal("format")
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
