package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Fig12Config parameterizes the §5.3.4 RFID case study.
type Fig12Config struct {
	Duration units.Seconds
	Reader   rfid.ReaderConfig
	Seed     int64
}

// DefaultFig12Config runs 20 simulated seconds against the default reader.
func DefaultFig12Config() Fig12Config {
	cfg := Fig12Config{Duration: 20, Reader: rfid.DefaultReaderConfig(), Seed: 12}
	// Back the tag off to a range where decoding + replying outruns the
	// harvest some of the time, so queries land in charging gaps — the
	// regime Fig. 12 shows.
	cfg.Reader.Distance = 1.44
	cfg.Reader.QueryPeriod = 0.062
	return cfg
}

// Fig12Result reproduces Figure 12: incoming and outgoing RFID messages
// correlated with the energy level recorded by EDB.
type Fig12Result struct {
	Vcap  *trace.Series
	Clock *sim.Clock
	// Messages is the EDB-decoded message stream (kind: rfid-rx/rfid-tx,
	// text: CMD_QUERY / CMD_QUERYREP / RSP_GENERIC / …).
	Messages []trace.Event
	// ResponseRate is replies per query heard at the reader (the paper
	// reports 86 %).
	ResponseRate float64
	// RepliesPerSecond is the reply throughput (the paper reports ~13/s).
	RepliesPerSecond float64
	// CorruptSeen counts frames EDB classified as corrupted in flight —
	// the discrimination an oscilloscope cannot make.
	CorruptSeen int
	Reader      rfid.ReaderStats
	Firmware    apps.RFIDStats
	Result      device.RunResult
}

// RunFig12 runs the WISP RFID firmware under a continuously inventorying
// reader with EDB monitoring RF I/O and energy concurrently.
func RunFig12(cfg Fig12Config) (Fig12Result, error) {
	def := DefaultFig12Config()
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Reader.QueryPeriod == 0 {
		cfg.Reader = def.Reader
	}
	reader, harv := rfid.NewReader(cfg.Reader)
	d := device.NewWISP5(harv, cfg.Seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	e.SetRFDecoder(rfid.FrameName)
	e.TraceVcap()

	app := &apps.WispRFID{}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Fig12Result{}, err
	}
	reader.Attach(d)
	reader.Start()
	defer reader.Stop()

	res, err := r.RunFor(cfg.Duration)
	if err != nil {
		return Fig12Result{}, err
	}

	var msgs []trace.Event
	corrupt := 0
	for _, ev := range e.Events().Events {
		if ev.Kind == "rfid-rx" || ev.Kind == "rfid-tx" {
			msgs = append(msgs, ev)
			if strings.Contains(ev.Text, "corrupt") {
				corrupt++
			}
		}
	}
	st := reader.Stats()
	return Fig12Result{
		Vcap:             e.VcapSeries(),
		Clock:            d.Clock,
		Messages:         msgs,
		ResponseRate:     reader.ResponseRate(),
		RepliesPerSecond: float64(st.RN16Heard) / float64(cfg.Duration),
		CorruptSeen:      corrupt,
		Reader:           st,
		Firmware:         app.Stats(d),
		Result:           res,
	}, nil
}

// CSV returns the Vcap trace as "t_seconds,volts" lines; the message
// stream is in Messages.
func (r Fig12Result) CSV() string { return trace.CSV(r.Vcap, r.Clock) }

// Format renders the correlated message/energy view plus the §5.3.4
// metrics.
func (r Fig12Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 12 — RFID messages correlated with energy level\n")
	total := r.Clock.Now()
	window := r.Clock.ToCycles(units.MilliSeconds(400))
	from := sim.Cycles(0)
	if total > window {
		from = total - window
	}
	b.WriteString(trace.RenderASCII(windowSeries(r.Vcap, from, total), r.Clock, 72, 10))
	b.WriteString("messages in the same window:\n")
	for _, m := range r.Messages {
		if m.At < from {
			continue
		}
		dir := "->"
		if m.Kind == "rfid-tx" {
			dir = "<-"
		}
		fmt.Fprintf(&b, "  t=%8.4fs %s %s\n", float64(r.Clock.ToSeconds(m.At)), dir, m.Text)
	}
	fmt.Fprintf(&b, "response rate: %.0f %% of queries (paper: 86 %%)\n", 100*r.ResponseRate)
	fmt.Fprintf(&b, "replies/second: %.1f (paper: ~13)\n", r.RepliesPerSecond)
	fmt.Fprintf(&b, "reader: %+v\n", r.Reader)
	fmt.Fprintf(&b, "firmware: %+v  corrupt frames classified by EDB: %d\n", r.Firmware, r.CorruptSeen)
	return b.String()
}
