package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/units"
)

// Sec531Result reproduces the §5.3.1 diagnosis session: the
// intermittence-aware assert fires, EDB tethers the target, and the
// console inspects the live list over the debug wire, finding the tail
// pointing at the penultimate element (or the head linkage broken) before
// any confounding consequence occurs.
type Sec531Result struct {
	// Transcript is the console session, command by command.
	Transcript string
	// AssertID is the assertion that fired.
	AssertID int
	// InvariantBroken confirms the diagnosis found real corruption.
	InvariantBroken bool
	// Iterations the app completed before the assert fired.
	Iterations int
}

// RunSec531 runs the linked-list app until its keep-alive assert fires,
// then drives a scripted interactive console session.
func RunSec531(seed int64) (Sec531Result, error) {
	if seed == 0 {
		seed = 42
	}
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, seed)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	con := console.New(e)

	app := &apps.LinkedList{WithAssert: true}
	r := device.NewRunner(d, app)
	if err := r.Flash(); err != nil {
		return Sec531Result{}, err
	}

	var out Sec531Result
	var script strings.Builder
	e.OnInteractive(func(s *edb.Session) {
		con.BindSession(s)
		defer con.BindSession(nil)
		script.WriteString(con.Flush()) // assert notification
		fmt.Fprintf(&script, "\n-- interactive session: %s --\n", s.Reason)

		hdr := app.HeaderAddr()
		exec := func(line string) {
			fmt.Fprintf(&script, "(edb) %s\n", line)
			outp, err := con.Exec(line)
			if err != nil {
				fmt.Fprintf(&script, "error: %v\n", err)
				return
			}
			script.WriteString(outp)
		}
		exec("vcap")
		exec(fmt.Sprintf("read %#04x", uint16(hdr)))   // sentinel
		exec(fmt.Sprintf("read %#04x", uint16(hdr+2))) // tail

		// Follow the pointers the way the paper's Fig. 6 console does.
		sentinel, _ := s.ReadWord(hdr)
		tail, _ := s.ReadWord(hdr + 2)
		exec(fmt.Sprintf("read %#04x", tail)) // tail->next
		tailNext, _ := s.ReadWord(memsim.Addr(tail))
		first, _ := s.ReadWord(memsim.Addr(sentinel))
		var firstPrev uint16
		if first != 0 {
			exec(fmt.Sprintf("read %#04x", first+2)) // first->prev
			firstPrev, _ = s.ReadWord(memsim.Addr(first + 2))
		}
		out.InvariantBroken = tailNext != 0 || first == 0 || firstPrev != sentinel
		if tailNext != 0 {
			fmt.Fprintf(&script, "diagnosis: tail->next = %#04x != NULL — interrupted append left the tail pointing at the penultimate element\n", tailNext)
		} else {
			fmt.Fprintf(&script, "diagnosis: head linkage broken (first=%#04x, first->prev=%#04x, sentinel=%#04x) — interrupted remove\n", first, firstPrev, sentinel)
		}
		exec("halt")
	})

	res, err := r.RunFor(units.Seconds(60))
	if err != nil {
		return out, err
	}
	if res.Halted == "" {
		return out, fmt.Errorf("sec531: assert never fired in 60 s (reboots=%d)", res.Reboots)
	}
	out.Transcript = script.String()
	out.Iterations = app.Iterations(d)
	if strings.Contains(res.Halted, "assert") {
		fmt.Sscanf(strings.TrimPrefix(res.Halted, "assert "), "%d", &out.AssertID)
	}
	return out, nil
}

// Format renders the session transcript.
func (r Sec531Result) Format() string {
	return fmt.Sprintf(`Section 5.3.1 — detecting memory corruption early
assert %d fired after %d iterations; invariant broken: %v
%s`, r.AssertID, r.Iterations, r.InvariantBroken, r.Transcript)
}
