// Package tlstest generates ephemeral self-signed certificates and the
// tls.Configs to use them, for the edbd security tests and the
// scripts/gencert helper. The certificates it mints are dual-use (server
// and client auth), so one keypair can secure a loopback daemon and — via
// mTLS — identify a client to it.
package tlstest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// GenerateKeypair mints a self-signed ECDSA P-256 certificate for the
// given hosts (DNS names or IP literals), valid for validFor from now, and
// returns it PEM-encoded. The certificate carries both server- and
// client-auth extended key usages and acts as its own CA, so the cert PEM
// doubles as the trust anchor a peer pins.
func GenerateKeypair(hosts []string, validFor time.Duration) (certPEM, keyPEM []byte, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("tlstest: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, fmt.Errorf("tlstest: serial: %w", err)
	}
	now := time.Now()
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "edbd", Organization: []string{"edb"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(validFor),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, fmt.Errorf("tlstest: create certificate: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, fmt.Errorf("tlstest: marshal key: %w", err)
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}

// ServerConfig builds a server tls.Config from a PEM keypair. clientCAPEM,
// when non-nil, additionally requires and verifies client certificates
// against it (mTLS).
func ServerConfig(certPEM, keyPEM, clientCAPEM []byte) (*tls.Config, error) {
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("tlstest: server keypair: %w", err)
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}}
	if clientCAPEM != nil {
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(clientCAPEM) {
			return nil, fmt.Errorf("tlstest: no certificates in client CA PEM")
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// ClientConfig builds a client tls.Config trusting caPEM as its root.
// certPEM/keyPEM, when non-nil, load a client certificate for mTLS.
func ClientConfig(caPEM, certPEM, keyPEM []byte) (*tls.Config, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, fmt.Errorf("tlstest: no certificates in CA PEM")
	}
	cfg := &tls.Config{RootCAs: pool}
	if certPEM != nil {
		cert, err := tls.X509KeyPair(certPEM, keyPEM)
		if err != nil {
			return nil, fmt.Errorf("tlstest: client keypair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}
