package console_test

import (
	"testing"

	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/units"
)

// FuzzExec feeds arbitrary command lines to the console: it must never
// panic, with or without an interactive session bound.
func FuzzExec(f *testing.F) {
	f.Add("charge 2.4")
	f.Add("break en 1 2.0")
	f.Add("read 0x4400")
	f.Add("write 4400 beef")
	f.Add("trace iobus")
	f.Add("watch dis 2")
	f.Add("   ")
	f.Add("charge -1e308")
	f.Add("break en 99999999999999999999")
	f.Fuzz(func(t *testing.T, line string) {
		d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3}, 1)
		e := edb.New(edb.DefaultConfig())
		e.Attach(d)
		c := console.New(e)
		// Errors are fine; panics are not.
		_, _ = c.Exec(line)
	})
}
