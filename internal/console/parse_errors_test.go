package console_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/units"
)

// TestParseErrorsEveryCommand feeds a malformed invocation of every Table-1
// command to the console and checks each is rejected with a "console:"
// error instead of panicking or silently succeeding. This is the parse
// layer the scripted (-script) and remote (edbd) paths both depend on for
// their non-zero exit codes.
func TestParseErrorsEveryCommand(t *testing.T) {
	_, _, c := rig(t)

	cases := []struct {
		line string
		want string // substring of the error
	}{
		// charge|discharge <volts>
		{"charge", "usage: charge|discharge"},
		{"charge two", `bad voltage "two"`},
		{"charge 2.4 extra", "usage: charge|discharge"},
		{"discharge", "usage: charge|discharge"},
		{"discharge -", `bad voltage "-"`},

		// break en|dis <id> [energy level]
		{"break", "usage: break"},
		{"break en", "usage: break"},
		{"break maybe 0", `expected en|dis, got "maybe"`},
		{"break en zero", `bad breakpoint id "zero"`},
		{"break en 0 full", `bad energy level "full"`},

		// watch en|dis <id>
		{"watch", "usage: watch"},
		{"watch en", "usage: watch"},
		{"watch sometimes 1", `expected en|dis, got "sometimes"`},
		{"watch en one", `bad watchpoint id "one"`},

		// ebreak <volts>
		{"ebreak", "usage: ebreak"},
		{"ebreak low", `bad voltage "low"`},
		{"ebreak 2.0 2.1", "usage: ebreak"},

		// trace {energy,iobus,rfid,watchpoints}
		{"trace", "usage: trace"},
		{"trace vibes", `unknown trace stream "vibes"`},

		// read <hexaddr> / write <hexaddr> <value> / disasm <hexaddr> [n]
		// — all refuse to parse without an interactive session first.
		{"read 0x4400", "read requires an interactive session"},
		{"write 0x4400 1", "write requires an interactive session"},
		{"disasm 0x4400", "disasm requires an interactive session"},

		// resume | halt only exist inside an interactive session.
		{"resume", "no interactive session open"},
		{"halt", "no interactive session open"},

		// unknown command
		{"launch-missiles", `unknown command "launch-missiles"`},
	}

	for _, tc := range cases {
		out, err := c.Exec(tc.line)
		if err == nil {
			t.Errorf("%q: expected an error, got output %q", tc.line, out)
			continue
		}
		if !strings.HasPrefix(err.Error(), "console: ") {
			t.Errorf("%q: error not namespaced: %v", tc.line, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.line, err, tc.want)
		}
	}
}

// TestParseErrorsInsideSession covers the argument errors of the
// session-only commands, which are reachable only once a session is open.
func TestParseErrorsInsideSession(t *testing.T) {
	_, e, c := rig(t)
	h := energy.NewRFHarvester()
	d := device.NewWISP5(h, 42)
	e.Detach()
	e.Attach(d)
	r := device.NewRunner(d, &apps.LinkedList{WithAssert: true})
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		line string
		want string
	}{
		{"read", "usage: read"},
		{"read nothex", `bad address "nothex"`},
		{"write 0x4400", "usage: write"},
		{"write where 1", `bad address "where"`},
		{"write 0x4400 lots", `bad value "lots"`},
		{"disasm", "usage: disasm"},
		{"disasm 0x4400 many", `bad instruction count "many"`},
	}

	ran := false
	e.OnInteractive(func(s *edb.Session) {
		c.BindSession(s)
		defer c.BindSession(nil)
		defer s.Halt()
		ran = true
		for _, tc := range cases {
			out, err := c.Exec(tc.line)
			if err == nil {
				t.Errorf("%q: expected an error, got output %q", tc.line, out)
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%q: error %q does not mention %q", tc.line, err, tc.want)
			}
		}
	})
	if _, err := r.RunFor(units.Seconds(30)); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("interactive session never opened")
	}
}
