// Package console implements EDB's host-side debug console (§4.2): a
// command-line interface for interacting with EDB and, through it, with the
// target. It exposes the command set of Table 1:
//
//	charge|discharge <energy level>
//	break en|dis <id> [energy level]
//	watch en|dis <id>
//	ebreak <energy level>
//	trace {energy,iobus,rfid,watchpoints}
//	read <address>
//	write <address> <value>
//	resume | halt            (inside an interactive session)
//	vcap | status | help
//
// During passive-mode debugging the console delivers traces of energy
// state, watchpoint hits, monitored I/O events, and printf output. During
// active-mode interactive sessions it reports assert failures and
// breakpoint hits and provides commands to inspect target memory.
package console

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/edb"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Console wraps an EDB board with a textual command interface.
type Console struct {
	e *edb.EDB

	// session is non-nil while an interactive session is open; read/write
	// and resume/halt work only then.
	session *edb.Session

	// out receives asynchronous console output (printf text, assert and
	// session notifications). By default it is the internal buffer drained
	// by Flush; SetOutput injects any io.Writer — a terminal, a network
	// stream — so the console never assumes a local terminal.
	out io.Writer

	// buf backs out when no writer has been injected.
	buf *strings.Builder

	// lastEvent tracks how much of the event log each trace command has
	// already printed.
	lastEvent map[string]int

	// explore, when injected (SetExplore), handles the `explore` command —
	// the exhaustive power-failure checker lives above the console's
	// dependency layer, so the scenario wires it in as a closure.
	explore func(args []string) (string, error)
}

// New returns a console bound to an EDB board and registers itself as the
// board's console sink (printf output, assert notifications).
func New(e *edb.EDB) *Console {
	buf := &strings.Builder{}
	c := &Console{e: e, out: buf, buf: buf, lastEvent: make(map[string]int)}
	e.SetConsoleSink(c.sink)
	return c
}

// sink delivers one asynchronous console line to the injected writer,
// normalizing the trailing newline.
func (c *Console) sink(s string) {
	io.WriteString(c.out, s)
	if !strings.HasSuffix(s, "\n") {
		io.WriteString(c.out, "\n")
	}
}

// SetOutput routes asynchronous console output to w instead of the internal
// buffer; Flush returns "" from then on. Passing nil restores buffering.
func (c *Console) SetOutput(w io.Writer) {
	if w == nil {
		c.buf = &strings.Builder{}
		c.out = c.buf
		return
	}
	c.out = w
	c.buf = nil
}

// SetExplore injects the handler behind the `explore` command (the
// exhaustive intermittence checker, internal/explore). The console stays
// transport-only: it forwards the raw argument list and prints whatever
// report text comes back.
func (c *Console) SetExplore(fn func(args []string) (string, error)) {
	c.explore = fn
}

// BindSession attaches an open interactive session (called from an
// OnInteractive handler); pass nil when the session closes.
func (c *Console) BindSession(s *edb.Session) { c.session = s }

// Flush returns and clears buffered console output (empty when SetOutput
// has redirected the stream).
func (c *Console) Flush() string {
	if c.buf == nil {
		return ""
	}
	s := c.buf.String()
	c.buf.Reset()
	return s
}

// Exec parses and executes one command line, returning its output.
func (c *Console) Exec(line string) (string, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		return helpText, nil
	case "charge":
		return c.chargeCmd(args, true)
	case "discharge":
		return c.chargeCmd(args, false)
	case "break":
		return c.breakCmd(args)
	case "watch":
		return c.watchCmd(args)
	case "ebreak":
		return c.ebreakCmd(args)
	case "trace":
		return c.traceCmd(args)
	case "read":
		return c.readCmd(args)
	case "write":
		return c.writeCmd(args)
	case "disasm":
		return c.disasmCmd(args)
	case "snap":
		n, err := c.e.SnapState()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("snapshot armed: %d-byte baseline, O(dirty-pages) restore\n", n), nil
	case "restore":
		pages, v, err := c.e.RestoreState()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("restored %d dirty pages; resume level %.3f V\n", pages, float64(v)), nil
	case "explore":
		if c.explore == nil {
			return "", fmt.Errorf("console: explore is not available on this rig")
		}
		return c.explore(args)
	case "vcap":
		return fmt.Sprintf("Vcap = %s (EDB ADC)\n", c.e.LastReading()), nil
	case "status":
		return c.statusCmd()
	case "resume":
		if c.session == nil {
			return "", fmt.Errorf("console: no interactive session open")
		}
		return "resuming target\n", nil
	case "halt":
		if c.session == nil {
			return "", fmt.Errorf("console: no interactive session open")
		}
		c.session.Halt()
		return "target halted (kept on tethered power)\n", nil
	}
	return "", fmt.Errorf("console: unknown command %q (try help)", cmd)
}

const helpText = `EDB debug console commands:
  charge <volts>          pump the target capacitor up to <volts>
  discharge <volts>       bleed the target capacitor down to <volts>
  break en|dis <id> [V]   enable/disable code breakpoint (combined if V given)
  watch en|dis <id>       enable/disable watchpoint tracing for id
  ebreak <volts>          arm an energy breakpoint at <volts>
  trace energy            show energy tracing status / recent level
  trace iobus             print new UART/I2C/GPIO events
  trace rfid              print new RFID messages
  trace watchpoints       print new watchpoint hits
  explore [opts]          exhaustively inject power failures (guards, mode=write|page,
                          depth=N, writes=N, states=N, workers=N, check)
  snap                    arm a state snapshot (memory + resume energy level)
  restore                 revert memory and energy level to the last snap
  read <hexaddr>          read a word of target memory (session only)
  write <hexaddr> <val>   write a word of target memory (session only)
  disasm <hexaddr> [n]    disassemble n instructions of target code (session only)
  vcap                    report EDB's latest Vcap reading
  status                  summarize debugger state
  resume                  leave the interactive session
  halt                    keep the target tethered and stop the run
`

func (c *Console) chargeCmd(args []string, up bool) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("console: usage: charge|discharge <volts>")
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil || v <= 0 || v > 3.3 {
		return "", fmt.Errorf("console: bad voltage %q", args[0])
	}
	if up {
		c.e.CommandCharge(units.Volts(v))
		return fmt.Sprintf("charging target to %.3f V\n", v), nil
	}
	c.e.CommandDischarge(units.Volts(v))
	return fmt.Sprintf("discharging target to %.3f V\n", v), nil
}

func (c *Console) breakCmd(args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf("console: usage: break en|dis <id> [energy level]")
	}
	on, err := parseEnDis(args[0])
	if err != nil {
		return "", err
	}
	id, err := strconv.Atoi(args[1])
	if err != nil {
		return "", fmt.Errorf("console: bad breakpoint id %q", args[1])
	}
	var level units.Volts
	if len(args) >= 3 {
		f, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return "", fmt.Errorf("console: bad energy level %q", args[2])
		}
		level = units.Volts(f)
	}
	c.e.EnableBreak(id, on, level)
	kind := "code"
	if level > 0 {
		kind = "combined"
	}
	state := "disabled"
	if on {
		state = "enabled"
	}
	return fmt.Sprintf("%s breakpoint %d %s\n", kind, id, state), nil
}

func (c *Console) watchCmd(args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("console: usage: watch en|dis <id>")
	}
	on, err := parseEnDis(args[0])
	if err != nil {
		return "", err
	}
	id, err := strconv.Atoi(args[1])
	if err != nil {
		return "", fmt.Errorf("console: bad watchpoint id %q", args[1])
	}
	c.e.EnableWatchpoint(id, on)
	state := "disabled"
	if on {
		state = "enabled"
	}
	return fmt.Sprintf("watchpoint %d %s\n", id, state), nil
}

func (c *Console) ebreakCmd(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("console: usage: ebreak <volts>")
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil || v <= 0 || v > 3.3 {
		return "", fmt.Errorf("console: bad voltage %q", args[0])
	}
	c.e.AddEnergyBreakpoint(units.Volts(v))
	return fmt.Sprintf("energy breakpoint armed at %.3f V\n", v), nil
}

// traceKinds maps the console's stream names to event-log kinds.
var traceKinds = map[string][]string{
	"iobus":       {"uart", "i2c", "gpio:app-pin", "gpio:led"},
	"rfid":        {"rfid-rx", "rfid-tx"},
	"watchpoints": {"watchpoint"},
}

func (c *Console) traceCmd(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("console: usage: trace energy|iobus|rfid|watchpoints")
	}
	stream := args[0]
	if stream == "energy" {
		return fmt.Sprintf("energy: Vcap = %s\n", c.e.LastReading()), nil
	}
	kinds, ok := traceKinds[stream]
	if !ok {
		return "", fmt.Errorf("console: unknown trace stream %q", stream)
	}
	wanted := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		wanted[k] = true
	}
	evs := c.e.Events().Events
	start := c.lastEvent[stream]
	if start > len(evs) {
		start = 0
	}
	var b strings.Builder
	n := 0
	for _, ev := range evs[start:] {
		if wanted[ev.Kind] || wantedPrefix(kinds, ev.Kind) {
			fmt.Fprintf(&b, "%s\n", formatEvent(ev))
			n++
		}
	}
	c.lastEvent[stream] = len(evs)
	fmt.Fprintf(&b, "(%d %s events)\n", n, stream)
	return b.String(), nil
}

func wantedPrefix(kinds []string, kind string) bool {
	for _, k := range kinds {
		if strings.HasSuffix(k, ":") && strings.HasPrefix(kind, k) {
			return true
		}
	}
	return false
}

func formatEvent(ev trace.Event) string {
	if ev.Text != "" {
		return fmt.Sprintf("@%d %-12s %s", ev.At, ev.Kind, ev.Text)
	}
	return fmt.Sprintf("@%d %-12s %d", ev.At, ev.Kind, ev.Arg)
}

func (c *Console) readCmd(args []string) (string, error) {
	if c.session == nil {
		return "", fmt.Errorf("console: read requires an interactive session")
	}
	if len(args) != 1 {
		return "", fmt.Errorf("console: usage: read <hexaddr>")
	}
	a, err := parseAddr(args[0])
	if err != nil {
		return "", err
	}
	v, err := c.session.ReadWord(a)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("[%#04x] = %#04x (%d)\n", uint16(a), v, v), nil
}

func (c *Console) writeCmd(args []string) (string, error) {
	if c.session == nil {
		return "", fmt.Errorf("console: write requires an interactive session")
	}
	if len(args) != 2 {
		return "", fmt.Errorf("console: usage: write <hexaddr> <value>")
	}
	a, err := parseAddr(args[0])
	if err != nil {
		return "", err
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 16, 16)
	if err != nil {
		// Allow decimal too.
		v2, err2 := strconv.ParseUint(args[1], 10, 16)
		if err2 != nil {
			return "", fmt.Errorf("console: bad value %q", args[1])
		}
		v = v2
	}
	if err := c.session.WriteWord(a, uint16(v)); err != nil {
		return "", err
	}
	return fmt.Sprintf("[%#04x] <- %#04x\n", uint16(a), uint16(v)), nil
}

func (c *Console) disasmCmd(args []string) (string, error) {
	if c.session == nil {
		return "", fmt.Errorf("console: disasm requires an interactive session")
	}
	if len(args) < 1 || len(args) > 2 {
		return "", fmt.Errorf("console: usage: disasm <hexaddr> [n]")
	}
	a, err := parseAddr(args[0])
	if err != nil {
		return "", err
	}
	n := 8
	if len(args) == 2 {
		if n, err = strconv.Atoi(args[1]); err != nil || n < 1 || n > 40 {
			return "", fmt.Errorf("console: bad instruction count %q", args[1])
		}
	}
	// Fetch enough words for n instructions (3 words max each) over the
	// debug wire, within one frame.
	bytes := 6 * n
	if bytes > 240 {
		bytes = 240
	}
	raw, err := c.session.ReadBlock(a, bytes)
	if err != nil {
		return "", err
	}
	words := make([]uint16, len(raw)/2)
	for i := range words {
		words[i] = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
	}
	return isa.Listing(isa.Disassemble(words, uint16(a), n)), nil
}

func (c *Console) statusCmd() (string, error) {
	st := c.e.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "Vcap (ADC): %s\n", c.e.LastReading())
	fmt.Fprintf(&b, "sessions=%d asserts=%d breakpoints=%d guards=%d printfs=%d save/restores=%d\n",
		st.Sessions, st.Asserts, st.BreakHits, st.Guards, st.Printfs, st.SaveRestores)
	kinds := map[string]int{}
	for _, ev := range c.e.Events().Events {
		kinds[ev.Kind]++
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "  events[%s] = %d\n", k, kinds[k])
	}
	return b.String(), nil
}

func parseEnDis(s string) (bool, error) {
	switch s {
	case "en", "enable", "on":
		return true, nil
	case "dis", "disable", "off":
		return false, nil
	}
	return false, fmt.Errorf("console: expected en|dis, got %q", s)
}

func parseAddr(s string) (memsim.Addr, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), 16, 16)
	if err != nil {
		return 0, fmt.Errorf("console: bad address %q", s)
	}
	return memsim.Addr(v), nil
}
