package console_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/edb"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/units"
)

func rig(t *testing.T) (*device.Device, *edb.EDB, *console.Console) {
	t.Helper()
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(1), Voc: 3.3}, 44)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	return d, e, console.New(e)
}

func TestHelpAndUnknown(t *testing.T) {
	_, _, c := rig(t)
	out, err := c.Exec("help")
	if err != nil || !strings.Contains(out, "charge <volts>") {
		t.Fatalf("help: %v %q", err, out)
	}
	if _, err := c.Exec("bogus"); err == nil {
		t.Fatal("unknown command must error")
	}
	if out, err := c.Exec("   "); err != nil || out != "" {
		t.Fatal("blank line must be a no-op")
	}
}

func TestChargeDischargeCommands(t *testing.T) {
	_, e, c := rig(t)
	out, err := c.Exec("charge 2.4")
	if err != nil || !strings.Contains(out, "charging") {
		t.Fatalf("%v %q", err, out)
	}
	if !e.PendingCommand() {
		t.Fatal("charge command must queue")
	}
	if _, err := c.Exec("discharge 1.9"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"charge", "charge x", "charge -1", "charge 9"} {
		if _, err := c.Exec(bad); err == nil {
			t.Fatalf("%q must error", bad)
		}
	}
}

func TestBreakAndWatchCommands(t *testing.T) {
	_, e, c := rig(t)
	if out, err := c.Exec("break en 3"); err != nil || !strings.Contains(out, "code breakpoint 3 enabled") {
		t.Fatalf("%v %q", err, out)
	}
	if !e.BreakpointEnabled(3) {
		t.Fatal("breakpoint 3 must be enabled")
	}
	if out, err := c.Exec("break en 4 2.0"); err != nil || !strings.Contains(out, "combined") {
		t.Fatalf("%v %q", err, out)
	}
	if _, err := c.Exec("break dis 3"); err != nil {
		t.Fatal(err)
	}
	if e.BreakpointEnabled(3) {
		t.Fatal("breakpoint 3 must be disabled")
	}
	if _, err := c.Exec("watch en 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("watch nope 1"); err == nil {
		t.Fatal("bad en/dis must error")
	}
	if _, err := c.Exec("break en xyz"); err == nil {
		t.Fatal("bad id must error")
	}
}

func TestEbreakAndStatus(t *testing.T) {
	_, _, c := rig(t)
	if out, err := c.Exec("ebreak 2.3"); err != nil || !strings.Contains(out, "2.300") {
		t.Fatalf("%v %q", err, out)
	}
	out, err := c.Exec("status")
	if err != nil || !strings.Contains(out, "Vcap") {
		t.Fatalf("%v %q", err, out)
	}
	if out, err := c.Exec("vcap"); err != nil || !strings.Contains(out, "Vcap") {
		t.Fatalf("%v %q", err, out)
	}
}

func TestReadWriteRequireSession(t *testing.T) {
	_, _, c := rig(t)
	if _, err := c.Exec("read 0x4400"); err == nil {
		t.Fatal("read outside a session must error")
	}
	if _, err := c.Exec("write 0x4400 1"); err == nil {
		t.Fatal("write outside a session must error")
	}
	if _, err := c.Exec("resume"); err == nil {
		t.Fatal("resume outside a session must error")
	}
	if _, err := c.Exec("halt"); err == nil {
		t.Fatal("halt outside a session must error")
	}
}

func TestSessionReadWriteThroughConsole(t *testing.T) {
	// Full stack: app asserts → session opens → console reads and writes
	// target memory over the debug wire.
	d, e, c := rig(t)
	h := energy.NewRFHarvester()
	d2 := device.NewWISP5(h, 42)
	e.Detach()
	e.Attach(d2)
	app := &apps.LinkedList{WithAssert: true}
	r := device.NewRunner(d2, app)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	var readOut, writeOut string
	e.OnInteractive(func(s *edb.Session) {
		c.BindSession(s)
		defer c.BindSession(nil)
		var err error
		readOut, err = c.Exec("read 0x" + hex16(uint16(app.HeaderAddr())))
		if err != nil {
			t.Errorf("read: %v", err)
		}
		writeOut, err = c.Exec("write 0x" + hex16(uint16(app.HeaderAddr()+6)) + " 0x7")
		if err != nil {
			t.Errorf("write: %v", err)
		}
		if _, err := c.Exec("resume"); err != nil {
			t.Errorf("resume: %v", err)
		}
	})
	if _, err := r.RunFor(units.Seconds(30)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(readOut, "=") {
		t.Fatalf("read output %q", readOut)
	}
	if !strings.Contains(writeOut, "<-") {
		t.Fatalf("write output %q", writeOut)
	}
	_ = d
}

func TestTraceCommands(t *testing.T) {
	d, e, c := rig(t)
	d.Supply.Cap.SetVoltage(2.4)
	d.Supply.Step(0, 0)
	env := &device.Env{D: d}
	env.UARTWrite([]byte{0x41})
	env.TogglePin(device.LineAppPin)
	out, err := c.Exec("trace iobus")
	if err != nil || !strings.Contains(out, "uart") {
		t.Fatalf("%v %q", err, out)
	}
	// Second call sees no new events.
	out2, _ := c.Exec("trace iobus")
	if !strings.Contains(out2, "(0 iobus events)") {
		t.Fatalf("incremental trace: %q", out2)
	}
	if out, err := c.Exec("trace energy"); err != nil || !strings.Contains(out, "Vcap") {
		t.Fatalf("%v %q", err, out)
	}
	if _, err := c.Exec("trace nonsense"); err == nil {
		t.Fatal("unknown stream must error")
	}
	if _, err := c.Exec("trace"); err == nil {
		t.Fatal("missing stream must error")
	}
	_ = e
}

// hex16 formats a 16-bit value as four hex digits (console address syntax).
func hex16(v uint16) string {
	const digits = "0123456789abcdef"
	return string([]byte{
		digits[v>>12&0xF], digits[v>>8&0xF], digits[v>>4&0xF], digits[v&0xF],
	})
}

// TestDisasmCommand disassembles live target code over the debug wire from
// inside an interactive session on an ISA target.
func TestDisasmCommand(t *testing.T) {
	d := device.NewWISP5(&energy.ConstantHarvester{I: units.MilliAmps(5), Voc: 3.3}, 77)
	e := edb.New(edb.DefaultConfig())
	e.Attach(d)
	c := console.New(e)
	prog := isa.NewProgram("disasm-target", `
	.equ BREAK, 0x0132
	.equ HALT,  0x012C
start:	mov #0x1234, r5
	add r5, r6
	mov #1, &BREAK
	mov #1, &HALT
	`)
	r := device.NewRunner(d, prog)
	if err := r.Flash(); err != nil {
		t.Fatal(err)
	}
	var listing string
	e.OnInteractive(func(s *edb.Session) {
		c.BindSession(s)
		defer c.BindSession(nil)
		out, err := c.Exec(fmt.Sprintf("disasm %#04x 2", prog.Image().Entry))
		if err != nil {
			t.Errorf("disasm: %v", err)
		}
		listing = out
	})
	if _, err := r.RunFor(units.Seconds(1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listing, "mov #0x1234, r5") || !strings.Contains(listing, "add r5, r6") {
		t.Fatalf("listing:\n%s", listing)
	}
	if _, err := c.Exec("disasm 0x4500"); err == nil {
		t.Fatal("disasm outside a session must error")
	}
}
