package tracecodec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/wire"
)

// roundTrip encodes samples, decodes the blob, and checks the decoded
// stream against the quantized input.
func roundTrip(t *testing.T, samples []wire.TracePoint) []byte {
	t.Helper()
	var enc Encoder
	blob := enc.Encode(nil, samples)
	if max := MaxBlobSize(len(samples)); len(blob) > max {
		t.Fatalf("blob of %d samples is %d bytes, exceeding MaxBlobSize %d", len(samples), len(blob), max)
	}
	got, err := Decode(nil, blob, len(samples))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i].At != samples[i].At {
			t.Fatalf("sample %d: At %d, want %d", i, got[i].At, samples[i].At)
		}
		want := Quantize(samples[i].V)
		if got[i].V != want && !(math.IsNaN(got[i].V) && math.IsNaN(want)) {
			t.Fatalf("sample %d: V %v, want Quantize(%v) = %v", i, got[i].V, samples[i].V, want)
		}
	}
	// Canonical: re-encoding the decoded stream reproduces the blob.
	re := enc.Encode(nil, got)
	if !bytes.Equal(re, blob) {
		t.Fatalf("re-encode of decoded stream differs:\n  blob %x\n  re   %x", blob, re)
	}
	return blob
}

func TestRoundTripShapes(t *testing.T) {
	cases := map[string][]wire.TracePoint{
		"empty": nil,
		"one":   {{At: 12345, V: 2.4}},
		"flat": {
			{At: 0, V: 1.5}, {At: 100, V: 1.5}, {At: 200, V: 1.5}, {At: 300, V: 1.5},
		},
		"ramp": func() []wire.TracePoint {
			var pts []wire.TracePoint
			for i := 0; i < 500; i++ {
				pts = append(pts, wire.TracePoint{At: uint64(1000 + 160*i), V: 0.5 + 0.004*float64(i)})
			}
			return pts
		}(),
		"jittered-clock": {
			{At: 10, V: 2}, {At: 25, V: 2.01}, {At: 39, V: 2.02}, {At: 56, V: 2.01},
		},
		"big-jumps": {
			{At: 0, V: 0.1}, {At: 1, V: 2.9}, {At: 2, V: 0.2}, {At: 3, V: 2.95},
		},
		"off-grid": {
			{At: 0, V: -0.5}, {At: 1, V: 3.0}, {At: 2, V: 4.25},
			{At: 3, V: math.Inf(1)}, {At: 4, V: math.NaN()}, {At: 5, V: 1.2},
		},
		"grid-edges": {
			{At: 0, V: CodeToVolts(0)}, {At: 1, V: CodeToVolts(Levels - 1)},
			{At: 2, V: CodeToVolts(0)}, {At: 3, V: 0}, {At: 4, V: math.Nextafter(VRef, 0)},
		},
		"non-monotone-clock": {
			{At: 500, V: 1}, {At: 100, V: 1.1}, {At: math.MaxUint64, V: 1.2}, {At: 0, V: 1.3},
		},
	}
	for name, pts := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, pts) })
	}
}

// TestRoundTripRandomWalk drives the codec with ADC-grid random walks plus
// occasional off-grid escapes — the realistic stream shape.
func TestRoundTripRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		at := uint64(rng.Intn(1 << 30))
		code := rng.Intn(Levels)
		pts := make([]wire.TracePoint, 0, 400)
		for i := 0; i < 400; i++ {
			at += uint64(160 + rng.Intn(3))
			code += rng.Intn(7) - 3
			if code < 0 {
				code = 0
			}
			if code >= Levels {
				code = Levels - 1
			}
			v := CodeToVolts(uint16(code))
			if rng.Intn(50) == 0 {
				v = 3.0 + rng.Float64() // off-grid escape
			}
			pts = append(pts, wire.TracePoint{At: at, V: v})
		}
		roundTrip(t, pts)
	}
}

// TestCompressionRatio: a sampler-style stream (fixed period, small code
// deltas) must beat the raw 16-byte encoding by well over the advertised
// 3x.
func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]wire.TracePoint, 4096)
	code := 2000
	for i := range pts {
		code += rng.Intn(5) - 2
		pts[i] = wire.TracePoint{At: uint64(i) * 160, V: CodeToVolts(uint16(code))}
	}
	blob := roundTrip(t, pts)
	raw := 16 * len(pts)
	if ratio := float64(raw) / float64(len(blob)); ratio < 3 {
		t.Fatalf("compression ratio %.2f < 3 (blob %d bytes for %d samples)", ratio, len(blob), len(pts))
	}
}

// TestGridMatchesADC ties the codec's grid constants to the Table-3 ADC
// model: same LSB, and for any input the ideal code matches what a
// noise-free, offset-free circuit.ADC would report.
func TestGridMatchesADC(t *testing.T) {
	adc := circuit.NewADC(sim.NewRNG(1))
	adc.NoiseSD = 0
	if got := float64(adc.LSB()); got != LSB {
		t.Fatalf("circuit ADC LSB %v, codec LSB %v", got, LSB)
	}
	if adc.Bits != GridBits || adc.Levels() != Levels || float64(adc.VRef) != VRef {
		t.Fatalf("circuit ADC %d-bit VRef=%v, codec %d-bit VRef=%v", adc.Bits, adc.VRef, GridBits, VRef)
	}
	// Quantize must be idempotent and reconstruct codes exactly.
	for c := 0; c < Levels; c++ {
		v := CodeToVolts(uint16(c))
		if q := Quantize(v); q != v {
			t.Fatalf("Quantize not idempotent at code %d: %v -> %v", c, v, q)
		}
		if got, ok := gridCode(v); !ok || got != uint16(c) {
			t.Fatalf("code %d does not round-trip the grid (got %d, %v)", c, got, ok)
		}
	}
}

// TestDecodeRejects exercises the decoder's validation paths.
func TestDecodeRejects(t *testing.T) {
	var enc Encoder
	good := enc.Encode(nil, []wire.TracePoint{{At: 10, V: 1.5}, {At: 20, V: 1.5}})

	reject := func(name string, blob []byte, count int) {
		t.Helper()
		if _, err := Decode(nil, blob, count); err == nil {
			t.Fatalf("%s: decode accepted a corrupt blob", name)
		}
	}
	reject("negative count", good, -1)
	reject("count too large", good, 3)
	reject("hostile count", []byte{0x01, 0x00}, 1<<30)
	reject("count short of blob", good, 1) // trailing bytes
	reject("empty blob, one sample", nil, 1)
	reject("truncated", good[:len(good)-1], 2)
	reject("ts section overruns", []byte{0x7F}, 0)
	reject("trailing bytes after empty", []byte{0x00, 0x00}, 0)

	// Non-minimal varint in the timestamp section.
	reject("non-minimal varint", append([]byte{0x02, 0x80, 0x00}, good[2:]...), 2)

	// Non-zero pad bits: flip the last bit of the value section.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] |= 1
	reject("pad bits", bad, 2)

	// Escape of a grid value is non-canonical.
	var bw bitWriter
	bw.put(escapeHeader, 3)
	bw.put(math.Float64bits(CodeToVolts(100)), 64)
	blob := appendUvarint(nil, 1)
	blob = append(blob, 0x0A) // At[0] = 10
	blob = append(blob, bw.flush()...)
	reject("escape of grid value", blob, 1)
}

// appendUvarint mirrors encoding/binary.AppendUvarint without the import
// clutter in the test above.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestDecodeReuseScratch: decoding into a reused scratch buffer must not
// allocate beyond the first call's growth.
func TestDecodeReuseScratch(t *testing.T) {
	var enc Encoder
	pts := make([]wire.TracePoint, 512)
	for i := range pts {
		pts[i] = wire.TracePoint{At: uint64(160 * i), V: CodeToVolts(uint16(1000 + i%9))}
	}
	blob := enc.Encode(nil, pts)
	scratch, err := Decode(nil, blob, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		var err error
		scratch, err = Decode(scratch[:0], blob, len(pts))
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Decode into reused scratch allocated %.1f times per run", allocs)
	}
	// Encoding into a reused destination must be allocation-free too.
	dst := enc.Encode(nil, pts)
	allocs = testing.AllocsPerRun(50, func() { dst = enc.Encode(dst[:0], pts) })
	if allocs > 0 {
		t.Fatalf("Encode into reused buffers allocated %.1f times per run", allocs)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]wire.TracePoint, 4096)
	code := 2000
	for i := range pts {
		code += rng.Intn(5) - 2
		pts[i] = wire.TracePoint{At: uint64(160 * i), V: CodeToVolts(uint16(code))}
	}
	var enc Encoder
	var dst []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = enc.Encode(dst[:0], pts)
	}
	b.SetBytes(int64(16 * len(pts)))
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]wire.TracePoint, 4096)
	code := 2000
	for i := range pts {
		code += rng.Intn(5) - 2
		pts[i] = wire.TracePoint{At: uint64(160 * i), V: CodeToVolts(uint16(code))}
	}
	var enc Encoder
	blob := enc.Encode(nil, pts)
	var scratch []wire.TracePoint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = Decode(scratch[:0], blob, len(pts))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(16 * len(pts)))
}
