// Package tracecodec compresses energy-trace sample streams for the wire
// protocol. A raw wire.Trace sample costs 16 bytes — a full uint64
// timestamp plus a float64 voltage — for data that is really a monotone
// clock plus a value on EDB's 12-bit ADC grid. The codec exploits both
// regularities:
//
//   - Timestamps are varint delta-of-delta encoded (the sampler fires on a
//     fixed period, so the second difference is almost always zero — one
//     byte per sample).
//   - Voltages are quantized onto the 12-bit ADC grid of the Table-3 model
//     (mid-tread codes, VRef = 3.0 V — the ideal transfer of
//     internal/circuit's ADC, without its per-instance noise and offset)
//     and encoded as bit-packed code deltas. Consecutive Vcap readings
//     differ by a handful of LSBs, so most samples cost 1–7 bits.
//   - Values the converter could not report faithfully — negative, at or
//     above VRef, or non-finite — escape as raw IEEE-754 bits, so decoding
//     is lossless with respect to what the ADC would have reported: every
//     in-range sample decodes to exactly its grid reconstruction
//     (Quantize), and every out-of-range sample decodes bit-for-bit.
//
// Blob layout (every Encode call emits one self-contained blob, so chunks
// decode independently):
//
//	uvarint  tsLen            byte length of the timestamp section
//	tsLen bytes:
//	    uvarint  At[0]
//	    varint   At[1]-At[0]                               (zigzag, wrapping)
//	    varint   (At[i]-At[i-1]) - (At[i-1]-At[i-2])       for i >= 2
//	value bitstream, MSB-first, one record per sample:
//	    0                   same grid code as the previous grid sample
//	    10  + 5-bit zigzag  grid-code delta d, d != 0, -16 <= d <= 15
//	    110 + 12-bit code   absolute grid code (no previous code, or the
//	                        delta is out of the 5-bit range)
//	    111 + 64 bits       raw escape: IEEE-754 bits of an off-grid value
//	trailing pad bits of the final byte are zero
//
// Encoding is canonical: for every decodable (blob, count) pair,
// re-encoding the decoded samples reproduces the blob byte-for-byte
// (FuzzTraceCodec enforces it, mirroring internal/wire's guarantee). The
// decoder therefore rejects non-minimal varints, records written in a
// longer form than the encoder would choose, zero-delta deltas, escapes of
// quantizable values, and non-zero pad bits.
package tracecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/wire"
)

// The ADC grid: internal/circuit.NewADC's ideal transfer function
// (TestGridMatchesADC ties these to the circuit model).
const (
	// GridBits is the converter's resolution.
	GridBits = 12
	// Levels is the number of quantization levels.
	Levels = 1 << GridBits
	// VRef is the converter's reference voltage in volts.
	VRef = 3.0
	// LSB is the voltage of one code step.
	LSB = VRef / Levels
)

// MaxBlobSize bounds the encoded size of n samples: at most 10 bytes of
// timestamp varint and ceil(67/8) bytes of value record per sample, plus
// the section length prefix. Callers size chunks so that
// MaxBlobSize(chunk) stays under the frame limit.
func MaxBlobSize(n int) int { return 6 + 19*n }

// ErrCorrupt reports a blob the decoder rejected; the wrapped detail says
// why.
var ErrCorrupt = errors.New("tracecodec: corrupt blob")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// gridCode returns the code an ideal Table-3 ADC reports for v, and
// whether v is inside the converter's input range. It mirrors
// circuit.ADC.Sample with zero noise and offset: truncation to the
// mid-tread code, clamped at the top level (v just below VRef can round to
// Levels in float64).
func gridCode(v float64) (uint16, bool) {
	if !(v >= 0) || v >= VRef { // !(v>=0) also catches NaN
		return 0, false
	}
	c := int(v / LSB)
	if c >= Levels {
		c = Levels - 1
	}
	return uint16(c), true
}

// CodeToVolts returns the mid-tread reconstruction of a grid code — the
// voltage EDB's software sees for that code.
func CodeToVolts(c uint16) float64 { return (float64(c) + 0.5) * LSB }

// Quantize returns the voltage a sample decodes to after a codec round
// trip: the grid reconstruction for in-range values, v itself (raw escape)
// otherwise. It is idempotent.
func Quantize(v float64) float64 {
	if c, ok := gridCode(v); ok {
		return CodeToVolts(c)
	}
	return v
}

// Value-record forms. The 5-bit delta form covers |d| <= 15 (and -16, the
// zigzag range), excluding 0, which has its own 1-bit form.
const (
	deltaBits    = 5
	maxDeltaMag  = 1<<(deltaBits-1) - 1    // 15
	minDelta     = -(1 << (deltaBits - 1)) // -16
	escapeHeader = 0b111
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the minimal uvarint encoding length of v.
func uvarintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}

// Encoder turns trace samples into blobs. The zero value is ready to use;
// its scratch buffers are reused across Encode calls, so a long-lived
// Encoder makes the server's streaming path allocation-free after warm-up.
type Encoder struct {
	ts []byte
	bw bitWriter
}

// Encode appends one self-contained blob encoding samples to dst and
// returns the extended slice. Encode cannot fail: every timestamp and
// every float64 has an encoding (off-grid values escape raw).
func (e *Encoder) Encode(dst []byte, samples []wire.TracePoint) []byte {
	e.ts = e.ts[:0]
	e.bw.reset()
	var prevAt, prevDelta uint64
	prevCode := -1
	for i, s := range samples {
		switch i {
		case 0:
			e.ts = binary.AppendUvarint(e.ts, s.At)
		case 1:
			prevDelta = s.At - prevAt
			e.ts = binary.AppendVarint(e.ts, int64(prevDelta))
		default:
			d := s.At - prevAt
			e.ts = binary.AppendVarint(e.ts, int64(d-prevDelta))
			prevDelta = d
		}
		prevAt = s.At

		if c, ok := gridCode(s.V); ok {
			cc := int(c)
			switch d := cc - prevCode; {
			case prevCode >= 0 && d == 0:
				e.bw.put(0b0, 1)
			case prevCode >= 0 && d >= minDelta && d <= maxDeltaMag:
				e.bw.put(0b10, 2)
				e.bw.put(zigzag(int64(d)), deltaBits)
			default:
				e.bw.put(0b110, 3)
				e.bw.put(uint64(cc), GridBits)
			}
			prevCode = cc
		} else {
			e.bw.put(escapeHeader, 3)
			e.bw.put(math.Float64bits(s.V), 64)
		}
	}
	vals := e.bw.flush()
	dst = binary.AppendUvarint(dst, uint64(len(e.ts)))
	dst = append(dst, e.ts...)
	return append(dst, vals...)
}

// Decode appends the count samples encoded in blob to dst and returns the
// extended slice (pass scratch[:0] to reuse a buffer across chunks). Every
// length is validated against the bytes actually present before any
// allocation, so a hostile count can never over-allocate, and every
// accepted blob re-encodes to itself.
func Decode(dst []wire.TracePoint, blob []byte, count int) ([]wire.TracePoint, error) {
	if count < 0 {
		return dst, corrupt("negative sample count")
	}
	tsLen, n, err := readUvarint(blob)
	if err != nil {
		return dst, err
	}
	rest := blob[n:]
	// Each timestamp is at least one varint byte and each value at least
	// one bit: cheap upper bounds that reject hostile counts before the
	// output slice grows.
	if tsLen > uint64(len(rest)) || (count > 0 && uint64(count) > tsLen) {
		return dst, corrupt("count %d does not fit %d blob bytes", count, len(blob))
	}
	ts, vals := rest[:tsLen], rest[tsLen:]
	if uint64(len(vals)) < (uint64(count)+7)/8 {
		return dst, corrupt("value section too short for %d samples", count)
	}

	br := bitReader{b: vals}
	var prevAt, prevDelta uint64
	prevCode := -1
	for i := 0; i < count; i++ {
		var at uint64
		switch i {
		case 0:
			v, n, err := readUvarint(ts)
			if err != nil {
				return dst, err
			}
			ts, at = ts[n:], v
		case 1:
			v, n, err := readVarint(ts)
			if err != nil {
				return dst, err
			}
			ts, prevDelta = ts[n:], uint64(v)
			at = prevAt + prevDelta
		default:
			v, n, err := readVarint(ts)
			if err != nil {
				return dst, err
			}
			ts = ts[n:]
			prevDelta += uint64(v)
			at = prevAt + prevDelta
		}
		prevAt = at

		val, code, err := decodeValue(&br, prevCode)
		if err != nil {
			return dst, err
		}
		if code >= 0 {
			prevCode = code
		}
		dst = append(dst, wire.TracePoint{At: at, V: val})
	}
	if len(ts) != 0 {
		return dst, corrupt("%d trailing timestamp bytes", len(ts))
	}
	if err := br.close(); err != nil {
		return dst, err
	}
	return dst, nil
}

// decodeValue reads one value record. It returns the decoded voltage and
// the grid code it establishes (-1 for a raw escape), enforcing the
// canonical-form rules the encoder follows.
func decodeValue(br *bitReader, prevCode int) (float64, int, error) {
	b, ok := br.get(1)
	if !ok {
		return 0, 0, corrupt("truncated value record")
	}
	if b == 0 { // same code as the previous grid sample
		if prevCode < 0 {
			return 0, 0, corrupt("repeat record with no previous code")
		}
		return CodeToVolts(uint16(prevCode)), prevCode, nil
	}
	b, ok = br.get(1)
	if !ok {
		return 0, 0, corrupt("truncated value record")
	}
	if b == 0 { // 5-bit code delta
		z, ok := br.get(deltaBits)
		if !ok {
			return 0, 0, corrupt("truncated delta record")
		}
		d := int(unzigzag(z))
		if d == 0 {
			return 0, 0, corrupt("non-canonical zero delta")
		}
		if prevCode < 0 {
			return 0, 0, corrupt("delta record with no previous code")
		}
		c := prevCode + d
		if c < 0 || c >= Levels {
			return 0, 0, corrupt("delta walks code off the grid")
		}
		return CodeToVolts(uint16(c)), c, nil
	}
	b, ok = br.get(1)
	if !ok {
		return 0, 0, corrupt("truncated value record")
	}
	if b == 0 { // absolute grid code
		c, ok := br.get(GridBits)
		if !ok {
			return 0, 0, corrupt("truncated absolute record")
		}
		if prevCode >= 0 {
			if d := int(c) - prevCode; d >= minDelta && d <= maxDeltaMag {
				return 0, 0, corrupt("non-canonical absolute code (delta form fits)")
			}
		}
		return CodeToVolts(uint16(c)), int(c), nil
	}
	// Raw escape.
	u, ok := br.get(64)
	if !ok {
		return 0, 0, corrupt("truncated escape record")
	}
	v := math.Float64frombits(u)
	if _, grid := gridCode(v); grid {
		return 0, 0, corrupt("non-canonical escape of a grid value")
	}
	return v, -1, nil
}

// readUvarint decodes one minimally-encoded uvarint from the front of b.
func readUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, corrupt("bad varint")
	}
	if n != uvarintLen(v) {
		return 0, 0, corrupt("non-minimal varint")
	}
	return v, n, nil
}

// readVarint decodes one minimally-encoded zigzag varint.
func readVarint(b []byte) (int64, int, error) {
	u, n, err := readUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	return unzigzag(u), n, nil
}

// bitWriter packs MSB-first bits into bytes.
type bitWriter struct {
	b   []byte
	acc uint64
	n   uint
}

func (w *bitWriter) reset() {
	w.b, w.acc, w.n = w.b[:0], 0, 0
}

// put appends the low k bits of v, most significant first.
func (w *bitWriter) put(v uint64, k uint) {
	for k > 24 { // keep acc within 64 bits
		k -= 24
		w.put(v>>k, 24)
		v &= 1<<k - 1
	}
	w.acc = w.acc<<k | v
	w.n += k
	for w.n >= 8 {
		w.n -= 8
		w.b = append(w.b, byte(w.acc>>w.n))
	}
	w.acc &= 1<<w.n - 1
}

// flush pads the final byte with zero bits and returns the stream.
func (w *bitWriter) flush() []byte {
	if w.n > 0 {
		w.b = append(w.b, byte(w.acc<<(8-w.n)))
		w.acc, w.n = 0, 0
	}
	return w.b
}

// bitReader consumes MSB-first bits.
type bitReader struct {
	b   []byte
	acc uint64
	n   uint
}

// get reads k bits; ok is false on exhaustion.
func (r *bitReader) get(k uint) (uint64, bool) {
	if k > 24 {
		hi, ok := r.get(k - 24)
		if !ok {
			return 0, false
		}
		lo, ok := r.get(24)
		if !ok {
			return 0, false
		}
		return hi<<24 | lo, true
	}
	for r.n < k {
		if len(r.b) == 0 {
			return 0, false
		}
		r.acc = r.acc<<8 | uint64(r.b[0])
		r.b = r.b[1:]
		r.n += 8
	}
	r.n -= k
	v := r.acc >> r.n
	r.acc &= 1<<r.n - 1
	return v, true
}

// close verifies the stream is fully consumed: no leftover bytes and only
// zero pad bits in the final byte.
func (r *bitReader) close() error {
	if len(r.b) != 0 {
		return corrupt("%d trailing value bytes", len(r.b))
	}
	if r.acc != 0 {
		return corrupt("non-zero pad bits")
	}
	return nil
}
