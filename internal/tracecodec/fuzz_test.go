package tracecodec

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/wire"
)

// FuzzTraceCodec holds the decoder to the same bar as the wire decoder:
// never panic, never allocate beyond what the blob can actually encode,
// and any (blob, count) pair that decodes must re-encode to exactly the
// input blob (canonical encoding).
func FuzzTraceCodec(f *testing.F) {
	var enc Encoder
	seed := func(pts []wire.TracePoint) {
		f.Add(enc.Encode(nil, pts), len(pts))
	}
	seed(nil)
	seed([]wire.TracePoint{{At: 12345, V: 2.4}})
	seed([]wire.TracePoint{
		{At: 0, V: 1.5}, {At: 160, V: 1.5}, {At: 320, V: CodeToVolts(2049)},
		{At: 480, V: 3.7}, {At: 640, V: math.NaN()}, {At: 800, V: CodeToVolts(0)},
	})
	seed([]wire.TracePoint{
		{At: math.MaxUint64, V: CodeToVolts(Levels - 1)}, {At: 0, V: -1},
	})
	// Malformed shapes: hostile lengths, truncations, bad varints.
	f.Add([]byte{}, 1)
	f.Add([]byte{0x7F}, 0)
	f.Add([]byte{0x01, 0x00}, 1<<30)
	f.Add([]byte{0x02, 0x80, 0x00, 0xFF}, 2)

	f.Fuzz(func(t *testing.T, blob []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		pts, err := Decode(nil, blob, count)
		if err != nil {
			return
		}
		if len(pts) != count {
			t.Fatalf("decoded %d samples, want %d", len(pts), count)
		}
		// Decoded values must be fixed points of the quantizer — anything
		// else means the decoder fabricated an off-grid value that should
		// have been an escape.
		for i, p := range pts {
			if q := Quantize(p.V); q != p.V && !(math.IsNaN(q) && math.IsNaN(p.V)) {
				t.Fatalf("sample %d decodes to %v, not a quantizer fixed point (%v)", i, p.V, q)
			}
		}
		var enc Encoder
		re := enc.Encode(nil, pts)
		if !bytes.Equal(re, blob) {
			t.Fatalf("re-encode mismatch:\n  in  %x\n  out %x", blob, re)
		}
	})
}
