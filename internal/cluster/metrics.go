package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counters is the gateway's hot-path instrumentation; atomics only, so
// session-proxy goroutines never contend on a lock to count.
type counters struct {
	connsTotal    atomic.Int64
	connsOpen     atomic.Int64
	connsRejected atomic.Int64

	sessionsTotal  atomic.Int64
	sessionsActive atomic.Int64

	dispatches      atomic.Int64
	failovers       atomic.Int64
	migrations      atomic.Int64
	placementMisses atomic.Int64
	dialErrors      atomic.Int64
	migrateBytes    atomic.Int64

	framesRelayed  atomic.Int64
	bytesRelayed   atomic.Int64
	answersRelayed atomic.Int64

	statProbes   atomic.Int64
	joins        atomic.Int64
	authFailures atomic.Int64

	exploreRuns       atomic.Int64
	exploreIntercepts atomic.Int64
	exploreBytesOut   atomic.Int64
	exploreBytesIn    atomic.Int64

	imageEvictions atomic.Int64

	gossipConnects   atomic.Int64
	gossipDialErrors atomic.Int64
	gossipOverflows  atomic.Int64
	gossipFramesOut  atomic.Int64
	gossipFramesIn   atomic.Int64
	replicaReclaims  atomic.Int64
}

// BackendMetrics is one backend's view in a metrics snapshot.
type BackendMetrics struct {
	Addr        string
	Inflight    int64 // sessions this gateway currently has placed there
	Total       int64 // sessions ever dispatched there by this gateway
	MaxSessions int64 // backend-reported capacity (from Stat probes)
	Down        bool  // last probe or dial failed
	Draining    bool  // backend announced a drain (probe or SessMigrate)
}

// Metrics is a point-in-time snapshot of the gateway's counters; it
// marshals cleanly through expvar.Func.
type Metrics struct {
	ConnsTotal    int64 // client connections accepted since start
	ConnsOpen     int64 // client connections currently open
	ConnsRejected int64 // client connections refused by MaxConns

	SessionsTotal  int64 // proxied sessions started since start
	SessionsActive int64 // proxied sessions currently live

	Dispatches      int64 // backend dispatch attempts (first placements + re-dispatches)
	Failovers       int64 // re-dispatches after a backend connection died
	Migrations      int64 // re-dispatches after a SessMigrate hand-off
	PlacementMisses int64 // ring-preferred backends skipped for load or drain
	DialErrors      int64 // backend dials that failed
	MigrateBytes    int64 // template-image bytes carried across re-dispatches

	FramesRelayed  int64 // backend frames forwarded to clients
	BytesRelayed   int64 // session output bytes forwarded to clients
	AnswersRelayed int64 // prompt answers journaled and forwarded to backends

	StatProbes   int64 // Stat requests answered on the client tier
	Joins        int64 // Join registrations accepted
	AuthFailures int64 // client handshakes rejected with Error{CodeAuth}

	// Distributed-exploration counters (all zero until a session runs
	// `explore backends=N`).
	ExploreRuns       int64 // fan-outs coordinated by this gateway
	ExploreIntercepts int64 // console explore lines served gateway-side
	ExploreBytesOut   int64 // bytes shipped to explore executors (shards)
	ExploreBytesIn    int64 // bytes received from explore executors (results)

	ImageEvictions int64 // template images LRU-evicted from the cache

	// Gateway-replication counters (all zero without Config.Peer and with
	// no peer streaming in).
	GossipConnects   int64 // outbound peer connections established
	GossipDialErrors int64 // outbound peer dials that failed
	GossipOverflows  int64 // peer connections dropped for outbound backlog
	GossipFramesOut  int64 // gossip frames streamed to the peer
	GossipFramesIn   int64 // gossip frames applied from the peer
	ReplicaSessions  int64 // peer sessions currently mirrored here
	ReplicaReclaims  int64 // client resumes matched to a mirrored peer session

	// Migration-latency distribution: wall time from deciding to move a
	// session (hand-off frame or dead connection) to its SessResume being
	// accepted by the destination backend.
	MigrationCount int64
	MigrationP50   time.Duration
	MigrationP99   time.Duration

	Backends []BackendMetrics
}

// latencyRing records migration latencies in a fixed window so quantiles
// stay O(window) regardless of uptime.
type latencyRing struct {
	mu  sync.Mutex
	buf [512]time.Duration
	n   int64 // total recorded; buf index wraps
}

func (l *latencyRing) record(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%int64(len(l.buf))] = d
	l.n++
	l.mu.Unlock()
}

// quantiles returns the count plus p50/p99 over the recorded window.
func (l *latencyRing) quantiles() (n int64, p50, p99 time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0, 0, 0
	}
	window := int(l.n)
	if window > len(l.buf) {
		window = len(l.buf)
	}
	s := make([]time.Duration, window)
	copy(s, l.buf[:window])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(window-1))
		return s[i]
	}
	return l.n, idx(0.50), idx(0.99)
}

// Metrics returns a snapshot of the gateway's counters and per-backend
// state.
func (g *Gateway) Metrics() Metrics {
	m := Metrics{
		ConnsTotal:    g.c.connsTotal.Load(),
		ConnsOpen:     g.c.connsOpen.Load(),
		ConnsRejected: g.c.connsRejected.Load(),

		SessionsTotal:  g.c.sessionsTotal.Load(),
		SessionsActive: g.c.sessionsActive.Load(),

		Dispatches:      g.c.dispatches.Load(),
		Failovers:       g.c.failovers.Load(),
		Migrations:      g.c.migrations.Load(),
		PlacementMisses: g.c.placementMisses.Load(),
		DialErrors:      g.c.dialErrors.Load(),
		MigrateBytes:    g.c.migrateBytes.Load(),

		FramesRelayed:  g.c.framesRelayed.Load(),
		BytesRelayed:   g.c.bytesRelayed.Load(),
		AnswersRelayed: g.c.answersRelayed.Load(),

		StatProbes:   g.c.statProbes.Load(),
		Joins:        g.c.joins.Load(),
		AuthFailures: g.c.authFailures.Load(),

		ExploreRuns:       g.c.exploreRuns.Load(),
		ExploreIntercepts: g.c.exploreIntercepts.Load(),
		ExploreBytesOut:   g.c.exploreBytesOut.Load(),
		ExploreBytesIn:    g.c.exploreBytesIn.Load(),

		ImageEvictions: g.c.imageEvictions.Load(),

		GossipConnects:   g.c.gossipConnects.Load(),
		GossipDialErrors: g.c.gossipDialErrors.Load(),
		GossipOverflows:  g.c.gossipOverflows.Load(),
		GossipFramesOut:  g.c.gossipFramesOut.Load(),
		GossipFramesIn:   g.c.gossipFramesIn.Load(),
		ReplicaReclaims:  g.c.replicaReclaims.Load(),
	}
	g.replicaMu.Lock()
	m.ReplicaSessions = int64(len(g.replica))
	g.replicaMu.Unlock()
	m.MigrationCount, m.MigrationP50, m.MigrationP99 = g.lat.quantiles()

	g.mu.Lock()
	addrs := make([]string, 0, len(g.backends))
	for a := range g.backends {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		b := g.backends[a]
		m.Backends = append(m.Backends, BackendMetrics{
			Addr:        a,
			Inflight:    b.inflight.Load(),
			Total:       b.total.Load(),
			MaxSessions: b.maxSessions.Load(),
			Down:        b.down.Load(),
			Draining:    b.draining.Load(),
		})
	}
	g.mu.Unlock()
	return m
}
