package cluster_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/wire"
)

func startBackend(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, lis.Addr().String()
}

func startGateway(t *testing.T, cfg cluster.Config) (*cluster.Gateway, string) {
	t.Helper()
	gw := cluster.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- gw.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
		<-done
	})
	return gw, lis.Addr().String()
}

func scriptedSpec() scenario.Spec {
	return scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42,
		Script: "vcap;status;halt"}
}

func interactiveSpec() scenario.Spec {
	return scenario.Spec{App: "linkedlist", Assert: true, Seconds: 5, Seed: 42,
		Interactive: true}
}

func localGolden(t *testing.T, spec scenario.Spec, cmds []string) string {
	t.Helper()
	var buf bytes.Buffer
	i := 0
	var prompt scenario.PromptFunc
	if spec.Interactive && spec.Script == "" {
		prompt = func() (string, bool) {
			if i < len(cmds) {
				i++
				return cmds[i-1], true
			}
			return "", false
		}
	}
	if _, err := scenario.Run(spec, &buf, prompt); err != nil {
		t.Fatalf("local golden run: %v", err)
	}
	return buf.String()
}

// servingBackend returns the backend address currently holding exactly one
// in-flight session.
func servingBackend(t *testing.T, gw *cluster.Gateway) string {
	t.Helper()
	for _, b := range gw.Metrics().Backends {
		if b.Inflight == 1 {
			return b.Addr
		}
	}
	t.Fatal("no backend holds an in-flight session")
	return ""
}

// TestGatewayScriptedSessionMatchesLocal: the baseline proxy path — a
// scripted session through the gateway produces byte-identical output to a
// local run, and the gateway accounts it.
func TestGatewayScriptedSessionMatchesLocal(t *testing.T) {
	_, addrA := startBackend(t, server.Config{})
	_, addrB := startBackend(t, server.Config{})
	gw, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA, addrB}})

	golden := localGolden(t, scriptedSpec(), nil)

	cl, err := client.Dial(gwAddr, client.Options{})
	if err != nil {
		t.Fatalf("dial gateway: %v", err)
	}
	defer cl.Close()

	var out bytes.Buffer
	st, err := cl.Run(scriptedSpec(), &out, nil)
	if err != nil {
		t.Fatalf("run via gateway: %v", err)
	}
	if out.String() != golden {
		t.Fatalf("gateway output differs from local run:\n--- local ---\n%s\n--- gateway ---\n%s", golden, out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	m := gw.Metrics()
	if m.SessionsTotal != 1 || m.Dispatches != 1 || m.Failovers != 0 {
		t.Fatalf("unexpected gateway metrics %+v", m)
	}
	if m.BytesRelayed != int64(len(golden)) {
		t.Fatalf("BytesRelayed = %d, want %d", m.BytesRelayed, len(golden))
	}
}

// TestGatewaySpreadsSpecFamilies: distinct spec families (different seeds)
// hash to distinct ring arcs, so a batch of sessions lands on both
// backends while identical specs always land together.
func TestGatewaySpreadsSpecFamilies(t *testing.T) {
	_, addrA := startBackend(t, server.Config{})
	_, addrB := startBackend(t, server.Config{})
	gw, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA, addrB}})

	cl, err := client.Dial(gwAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Each seed is its own firmware family and hashes independently; the
	// ring is keyed on the backends' ephemeral ports, so any fixed small
	// seed set can collide onto one backend in an unlucky run. Keep
	// opening new families until both backends have served — placement
	// that truly never spreads will still exhaust all 32.
	const maxFamilies = 32
	spread := func() bool {
		for _, b := range gw.Metrics().Backends {
			if b.Total == 0 {
				return false
			}
		}
		return true
	}
	var ran int64
	for seed := int64(1); seed <= maxFamilies && !spread(); seed++ {
		spec := scriptedSpec()
		spec.Seed = seed
		if _, err := cl.Run(spec, nil, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ran++
	}
	m := gw.Metrics()
	if !spread() {
		t.Fatalf("one backend served no sessions across %d spec families — placement is not spreading: %+v", ran, m.Backends)
	}
	var total int64
	for _, b := range m.Backends {
		total += b.Total
	}
	if total != ran {
		t.Fatalf("backends served %d sessions, want %d", total, ran)
	}
}

// TestGatewayDrainMigratesSession: draining the serving backend mid-session
// hands the session to the other backend via SessMigrate + SessResume; the
// client sees one uninterrupted byte-identical session, the drained backend
// shuts down cleanly (zero sessions lost), and the gateway records the
// migration.
func TestGatewayDrainMigratesSession(t *testing.T) {
	srvA, addrA := startBackend(t, server.Config{})
	srvB, addrB := startBackend(t, server.Config{})
	servers := map[string]*server.Server{addrA: srvA, addrB: srvB}
	gw, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA, addrB}})

	cmds := []string{"vcap", "status", "halt"}
	golden := localGolden(t, interactiveSpec(), cmds)

	cl, err := client.Dial(gwAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var (
		drained   *server.Server
		other     *server.Server
		drainDone = make(chan error, 1)
	)
	var out bytes.Buffer
	i := 0
	st, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
		if i == 0 {
			// First prompt: the session is placed. Drain its backend, then
			// answer — the next prompt server-side becomes a SessMigrate.
			addr := servingBackend(t, gw)
			drained = servers[addr]
			for a, s := range servers {
				if a != addr {
					other = s
				}
			}
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				drainDone <- drained.Shutdown(ctx)
			}()
			time.Sleep(200 * time.Millisecond) // let the drain flag latch
		}
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run via gateway: %v", err)
	}
	if out.String() != golden {
		t.Fatalf("migrated session output differs from local run:\n--- local ---\n%s\n--- migrated ---\n%s", golden, out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drained backend did not shut down cleanly: %v", err)
	}
	if got := drained.Metrics().SessionsMigrated; got != 1 {
		t.Fatalf("drained backend SessionsMigrated = %d, want 1", got)
	}
	if got := other.Metrics().SessionsResumed; got != 1 {
		t.Fatalf("destination backend SessionsResumed = %d, want 1", got)
	}
	m := gw.Metrics()
	if m.Migrations != 1 {
		t.Fatalf("gateway Migrations = %d, want 1 (%+v)", m.Migrations, m)
	}
	if m.MigrationCount != 1 || m.MigrationP99 <= 0 {
		t.Fatalf("migration latency not recorded: count=%d p99=%v", m.MigrationCount, m.MigrationP99)
	}
}

// TestGatewayBackendCrashFailover: killing the serving backend outright
// (force shutdown, connections cut, no hand-off frame) loses nothing — the
// gateway replays its own journal on the surviving backend and the client's
// byte stream is identical to an undisturbed run.
func TestGatewayBackendCrashFailover(t *testing.T) {
	srvA, addrA := startBackend(t, server.Config{})
	srvB, addrB := startBackend(t, server.Config{})
	servers := map[string]*server.Server{addrA: srvA, addrB: srvB}
	gw, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA, addrB}})

	cmds := []string{"vcap", "status", "halt"}
	golden := localGolden(t, interactiveSpec(), cmds)

	cl, err := client.Dial(gwAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var other *server.Server
	var out bytes.Buffer
	i := 0
	st, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
		if i == 1 {
			// Second prompt: crash the serving backend. An already-expired
			// context makes Shutdown cut every connection immediately — the
			// closest a test gets to kill -9.
			addr := servingBackend(t, gw)
			for a, s := range servers {
				if a != addr {
					other = s
				}
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			crashed := make(chan struct{})
			go func() {
				servers[addr].Shutdown(ctx)
				close(crashed)
			}()
			<-crashed
		}
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run via gateway: %v", err)
	}
	if out.String() != golden {
		t.Fatalf("failed-over session output differs from local run:\n--- local ---\n%s\n--- failover ---\n%s", golden, out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	if got := gw.Metrics().Failovers; got < 1 {
		t.Fatalf("gateway Failovers = %d, want >= 1", got)
	}
	if got := other.Metrics().SessionsResumed; got != 1 {
		t.Fatalf("surviving backend SessionsResumed = %d, want 1", got)
	}
}

// rawDial opens a bare wire connection and completes the handshake,
// returning the conn and the granted capability bits.
func rawDial(t *testing.T, addr string, caps byte) (net.Conn, byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := wire.WriteMsgFlags(conn, &wire.Hello{Version: wire.Version, Client: "gwtest"}, caps); err != nil {
		t.Fatal(err)
	}
	m, flags, err := wire.ReadMsgFlags(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*wire.Welcome); !ok {
		t.Fatalf("handshake reply %T (%v)", m, m)
	}
	return conn, flags
}

// collectSession reads one session's frames off conn: concatenated output,
// the exact re-encoded bytes of every trace frame, and the Done frame.
func collectSession(t *testing.T, conn net.Conn) (output []byte, traceFrames [][]byte, done *wire.Done) {
	t.Helper()
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		m, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("session read: %v", err)
		}
		switch f := m.(type) {
		case *wire.Output:
			output = append(output, f.Data...)
		case *wire.Trace, *wire.TraceZ:
			b, err := wire.EncodeMsg(m)
			if err != nil {
				t.Fatal(err)
			}
			traceFrames = append(traceFrames, b)
		case *wire.Done:
			return output, traceFrames, f
		case *wire.Error:
			t.Fatalf("session error frame: %v", f)
		default:
			t.Fatalf("unexpected session frame %T", m)
		}
	}
}

// limitProxy is a byte-level TCP proxy that can cut the backend→client
// direction of the *next* accepted connection after a fixed byte budget —
// a deterministic mid-frame backend loss.
type limitProxy struct {
	lis     net.Listener
	backend string

	mu        sync.Mutex
	nextLimit int64
	totals    []int64
}

func newLimitProxy(t *testing.T, backend string) *limitProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &limitProxy{lis: lis, backend: backend}
	t.Cleanup(func() { lis.Close() })
	go p.serve()
	return p
}

func (p *limitProxy) addr() string { return p.lis.Addr().String() }

// armLimit cuts the next accepted connection's backend→client stream after
// n bytes.
func (p *limitProxy) armLimit(n int64) {
	p.mu.Lock()
	p.nextLimit = n
	p.mu.Unlock()
}

// total returns the backend→client byte count of accepted connection i.
func (p *limitProxy) total(i int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[i]
}

func (p *limitProxy) serve() {
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		limit := p.nextLimit
		p.nextLimit = 0
		idx := len(p.totals)
		p.totals = append(p.totals, 0)
		p.mu.Unlock()
		go func() { io.Copy(b, c); b.Close() }()
		go func() {
			defer c.Close()
			defer b.Close()
			var n int64
			buf := make([]byte, 4096)
			for {
				max := int64(len(buf))
				if limit > 0 && limit-n < max {
					max = limit - n
				}
				if max <= 0 {
					return // budget exhausted: slam the connection
				}
				k, err := b.Read(buf[:max])
				if k > 0 {
					n += int64(k)
					p.mu.Lock()
					p.totals[idx] = n
					p.mu.Unlock()
					if _, werr := c.Write(buf[:k]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

// TestGatewayMidTraceStreamFailover: the backend connection dies partway
// through a trace frame — after whole chunks were already relayed — and
// the resumed stream's remaining frames are byte-identical to an
// undisturbed run's. The cut point is computed from a recording pass, so
// the failure lands deterministically inside the final trace frame.
func TestGatewayMidTraceStreamFailover(t *testing.T) {
	_, backendAddr := startBackend(t, server.Config{})
	proxy := newLimitProxy(t, backendAddr)
	// One backend, reached only through the proxy; health probes are
	// parked so the session connections are the only proxied streams.
	gw, gwAddr := startGateway(t, cluster.Config{
		Backends:       []string{proxy.addr()},
		HealthInterval: time.Hour,
	})

	spec := scriptedSpec()
	spec.Trace = true

	runOnce := func() ([]byte, [][]byte, *wire.Done) {
		conn, flags := rawDial(t, gwAddr, wire.FlagTraceZ)
		defer conn.Close()
		if flags&wire.FlagTraceZ == 0 {
			t.Fatal("gateway did not grant TraceZ")
		}
		if err := wire.WriteMsg(conn, &wire.Run{Spec: spec, StreamTrace: true}); err != nil {
			t.Fatal(err)
		}
		return collectSession(t, conn)
	}

	// Recording pass: learn the backend→gateway byte total and the golden
	// frame bytes of an undisturbed proxied session.
	goldenOut, goldenFrames, goldenDone := runOnce()
	if len(goldenFrames) < 2 {
		t.Fatalf("need >= 2 trace frames to cut between chunks, got %d", len(goldenFrames))
	}
	streamTotal := proxy.total(0)

	// Arm the cut 10 bytes into the final trace frame: every earlier frame
	// is relayed whole, the last one dies mid-read, and the resume offset
	// is a whole number of chunks.
	doneLen, err := wire.EncodeMsg(goldenDone)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := int64(len(goldenFrames[len(goldenFrames)-1]))
	cut := streamTotal - int64(len(doneLen)) - lastLen + 10
	if cut <= 0 || cut >= streamTotal {
		t.Fatalf("bad cut point %d of %d", cut, streamTotal)
	}
	proxy.armLimit(cut)

	out, frames, done := runOnce()
	if !bytes.Equal(out, goldenOut) {
		t.Fatalf("failed-over output differs from recording pass:\n--- golden ---\n%s\n--- failover ---\n%s", goldenOut, out)
	}
	if len(frames) != len(goldenFrames) {
		t.Fatalf("failed-over stream has %d trace frames, want %d", len(frames), len(goldenFrames))
	}
	for i := range frames {
		if !bytes.Equal(frames[i], goldenFrames[i]) {
			t.Fatalf("trace frame %d differs after mid-stream failover", i)
		}
	}
	if *done != *goldenDone {
		t.Fatalf("Done differs: %+v vs %+v", done, goldenDone)
	}
	if got := gw.Metrics().Failovers; got != 1 {
		t.Fatalf("gateway Failovers = %d, want 1", got)
	}
}

// TestGatewayStatAndJoin: the gateway's own cluster surface — Stat
// aggregates fleet capacity, Join registers a new backend at runtime and
// subsequent sessions can land there.
func TestGatewayStatAndJoin(t *testing.T) {
	_, addrA := startBackend(t, server.Config{})
	gw, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA}})

	conn, flags := rawDial(t, gwAddr, wire.FlagCluster)
	if flags&wire.FlagCluster == 0 {
		t.Fatal("gateway did not grant the cluster capability")
	}
	if err := wire.WriteMsg(conn, &wire.Stat{}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.(*wire.StatReply)
	if !ok {
		t.Fatalf("stat reply %T", m)
	}
	if st.MaxSessions == 0 || st.Draining {
		t.Fatalf("unexpected aggregate stat %+v", st)
	}

	_, addrB := startBackend(t, server.Config{})
	if err := wire.WriteMsg(conn, &wire.Join{Addr: addrB}); err != nil {
		t.Fatal(err)
	}
	m, err = wire.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*wire.StatReply); !ok {
		t.Fatalf("join ack %T", m)
	}
	mm := gw.Metrics()
	if len(mm.Backends) != 2 || mm.Joins != 1 {
		t.Fatalf("join not registered: %+v", mm)
	}
}

// TestGatewayTwoTierAuth: clients authenticate to the gateway with one
// token while the gateway authenticates to the backends with another; a
// client with no token is rejected before any backend is touched.
func TestGatewayTwoTierAuth(t *testing.T) {
	_, addrA := startBackend(t, server.Config{AuthToken: "backend-secret", RequireAuth: true})
	gw, gwAddr := startGateway(t, cluster.Config{
		Backends:     []string{addrA},
		AuthToken:    "client-secret",
		RequireAuth:  true,
		BackendToken: "backend-secret",
	})

	if _, err := client.Dial(gwAddr, client.Options{}); err == nil {
		t.Fatal("unauthenticated client accepted by RequireAuth gateway")
	}

	cl, err := client.Dial(gwAddr, client.Options{AuthToken: "client-secret"})
	if err != nil {
		t.Fatalf("authenticated dial: %v", err)
	}
	defer cl.Close()
	if !cl.Authenticated() {
		t.Fatal("client token was not verified")
	}
	golden := localGolden(t, scriptedSpec(), nil)
	var out bytes.Buffer
	if _, err := cl.Run(scriptedSpec(), &out, nil); err != nil {
		t.Fatalf("run through two authenticated tiers: %v", err)
	}
	if out.String() != golden {
		t.Fatal("authenticated proxied output differs from local run")
	}
	if gw.Metrics().AuthFailures != 1 {
		t.Fatalf("AuthFailures = %d, want 1", gw.Metrics().AuthFailures)
	}
}
