package cluster_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/wire"
)

// exploreOpts is the shared search horizon for the cluster tests: small
// enough to finish in test time, deep enough that the frontier spans
// several waves and both dedup partitions.
const exploreOpts = "depth=2 writes=6 states=48"

// TestGatewayExploreMatrixMatchesLocal is the tentpole invariant on the
// real network path: `explore … workers=W backends=N` through the gateway
// produces a byte-identical session to a single-process local run with no
// backends option at all, for every cell of workers {1,4} × backends {1,2}.
// backends=1 cells are forwarded to the session's own backend; backends=2
// cells are intercepted and fanned across the fleet.
func TestGatewayExploreMatrixMatchesLocal(t *testing.T) {
	_, addrA := startBackend(t, server.Config{})
	_, addrB := startBackend(t, server.Config{})
	gw, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA, addrB}})

	golden := localGolden(t, interactiveSpec(), []string{"explore " + exploreOpts, "halt"})

	for _, workers := range []int{1, 4} {
		for _, backends := range []int{1, 2} {
			cmd := fmt.Sprintf("explore %s workers=%d backends=%d", exploreOpts, workers, backends)
			cl, err := client.Dial(gwAddr, client.Options{})
			if err != nil {
				t.Fatalf("dial gateway: %v", err)
			}
			cmds := []string{cmd, "halt"}
			i := 0
			var out bytes.Buffer
			st, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
				if i < len(cmds) {
					i++
					return cmds[i-1], true
				}
				return "", false
			})
			cl.Close()
			if err != nil {
				t.Fatalf("workers=%d backends=%d: run via gateway: %v", workers, backends, err)
			}
			if st.Exit != 0 {
				t.Fatalf("workers=%d backends=%d: unexpected status %+v", workers, backends, st)
			}
			if out.String() != golden {
				t.Fatalf("workers=%d backends=%d: session output differs from single-process run:\n--- local ---\n%s\n--- gateway ---\n%s",
					workers, backends, golden, out.String())
			}
		}
	}
	m := gw.Metrics()
	if m.ExploreIntercepts != 2 || m.ExploreRuns != 2 {
		t.Fatalf("expected 2 intercepted fan-outs, got intercepts=%d runs=%d", m.ExploreIntercepts, m.ExploreRuns)
	}
	if m.ExploreBytesOut == 0 || m.ExploreBytesIn == 0 {
		t.Fatalf("explore transfer not accounted: out=%d in=%d", m.ExploreBytesOut, m.ExploreBytesIn)
	}
}

// TestGatewayExploreBackendLossMidRun kills one of two executors partway
// through the search — the limitProxy slams the backend→gateway stream
// after a fixed byte budget, mid-frame — and the merged report must still be
// reflect.DeepEqual-identical to a single-process run: the survivor re-runs
// the dead executor's batches and its dedup partition is re-seeded from the
// coordinator's journal.
func TestGatewayExploreBackendLossMidRun(t *testing.T) {
	_, addrA := startBackend(t, server.Config{})
	_, addrB := startBackend(t, server.Config{})
	proxy := newLimitProxy(t, addrB)
	gw, _ := startGateway(t, cluster.Config{
		Backends:       []string{addrA, proxy.addr()},
		HealthInterval: time.Hour, // parked: the executor conn is the only proxied stream
	})

	spec := interactiveSpec()
	es, err := scenario.ParseExploreArgs(
		[]string{"depth=3", "writes=6", "states=256", "workers=2", "backends=2"}, spec.Guards)
	if err != nil {
		t.Fatal(err)
	}
	single := es
	single.Backends = 0
	golden, err := scenario.RunExplore(spec, single)
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}

	// Cut the proxied executor after 6k result bytes: past its hello, well
	// before the search ends.
	const cut = 6000
	proxy.armLimit(cut)

	rep, stats, err := gw.RunExplore(spec, es)
	if err != nil {
		t.Fatalf("distributed run with mid-run backend loss: %v", err)
	}
	if !reflect.DeepEqual(rep, golden) {
		t.Fatalf("report after mid-run backend loss differs from single-process run:\n--- single ---\n%s\n--- distributed ---\n%s",
			golden.Format(), rep.Format())
	}
	if got := proxy.total(0); got != cut {
		t.Fatalf("proxied executor was not cut mid-run: relayed %d bytes, budget %d", got, cut)
	}
	if stats.Waves == 0 || stats.ShardBatches == 0 {
		t.Fatalf("missing distribution stats: %+v", stats)
	}
	if gw.Metrics().ExploreRuns != 1 {
		t.Fatalf("ExploreRuns = %d, want 1", gw.Metrics().ExploreRuns)
	}
}

// TestExploreCapabilityGates: a backend grants FlagExplore by default and
// refuses it under DisableExplore; the gateway never grants it to clients —
// the console line, not the raw frame, is the client surface.
func TestExploreCapabilityGates(t *testing.T) {
	_, addrA := startBackend(t, server.Config{})
	_, flags := rawDial(t, addrA, wire.FlagExplore)
	if flags&wire.FlagExplore == 0 {
		t.Fatal("backend did not grant FlagExplore")
	}

	_, addrOff := startBackend(t, server.Config{DisableExplore: true})
	_, flags = rawDial(t, addrOff, wire.FlagExplore)
	if flags&wire.FlagExplore != 0 {
		t.Fatal("DisableExplore backend granted FlagExplore")
	}

	_, gwAddr := startGateway(t, cluster.Config{Backends: []string{addrA}})
	_, flags = rawDial(t, gwAddr, wire.FlagExplore)
	if flags&wire.FlagExplore != 0 {
		t.Fatal("gateway granted FlagExplore on the client tier")
	}
}
