package cluster_test

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wire"
)

// startPeeredGateways starts two gateways replicating to each other over
// the FlagGossip stream, both fronting the same backends.
func startPeeredGateways(t *testing.T, backends []string) (gwA, gwB *cluster.Gateway, addrA, addrB string) {
	t.Helper()
	// B first, so A can be born knowing its peer address; B learns A's via
	// the same flag (its outbound stream just dials A).
	gwB, addrB = startGateway(t, cluster.Config{Backends: backends})
	gwA, addrA = startGateway(t, cluster.Config{Backends: backends, Peer: addrB,
		PeerRetry: 50 * time.Millisecond, PeerHeartbeat: 100 * time.Millisecond})
	return gwA, gwB, addrA, addrB
}

// waitUntil polls cond for up to 10s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// crashGateway is kill -9 as seen from every connection: an
// already-cancelled context makes Shutdown cut the listener and all open
// conns immediately, and no close/hand-off frames are sent — the peer's
// replica store must survive untouched.
func crashGateway(gw *cluster.Gateway) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gw.Shutdown(ctx)
}

// TestGossipNotOfferedNotGranted: a client that does not offer FlagGossip
// must never be granted it — non-replicated handshakes stay byte-identical
// to the pre-replication protocol even on a replicated gateway.
func TestGossipNotOfferedNotGranted(t *testing.T) {
	_, addr := startBackend(t, server.Config{})
	_, gwB, _, gwAddrB := startPeeredGateways(t, []string{addr})
	_ = gwB
	conn, flags := rawDial(t, gwAddrB, wire.FlagTraceZ|wire.FlagSnap|wire.FlagCluster)
	defer conn.Close()
	if flags&wire.FlagGossip != 0 {
		t.Fatalf("gateway granted FlagGossip unasked (caps %#02x)", flags)
	}
}

// TestPeerReplicatesFleetState: the replication stream carries the backend
// registry and per-session journals — a gateway configured with only a
// peer (no backends of its own) learns the whole fleet, mirrors live
// sessions while they run, and drops the mirror when they conclude.
func TestPeerReplicatesFleetState(t *testing.T) {
	_, addrX := startBackend(t, server.Config{})
	_, addrY := startBackend(t, server.Config{})

	gwB, gwBAddr := startGateway(t, cluster.Config{}) // knows nothing
	_, gwAAddr := startGateway(t, cluster.Config{Backends: []string{addrX, addrY}, Peer: gwBAddr,
		PeerRetry: 50 * time.Millisecond, PeerHeartbeat: 100 * time.Millisecond})

	waitUntil(t, "backend registry to gossip over", func() bool {
		return len(gwB.Metrics().Backends) == 2
	})

	cl, err := client.Dial(gwAAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	release := make(chan struct{})
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		i := 0
		_, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
			if i == 0 {
				i++
				<-release
				return "vcap", true
			}
			return "", false
		})
		done <- err
	}()

	// While the session is parked at its first prompt, the peer must hold
	// its replica (spec and journal mirrored as they grow).
	waitUntil(t, "session replica on the peer", func() bool {
		return gwB.Metrics().ReplicaSessions == 1
	})
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	// Conclusion gossips a close; the replica must not leak.
	waitUntil(t, "session replica release", func() bool {
		return gwB.Metrics().ReplicaSessions == 0
	})
	if in := gwB.Metrics().GossipFramesIn; in == 0 {
		t.Fatal("peer applied no gossip frames")
	}
}

// TestGatewayCrashFailoverReclaimsReplica: kill the gateway serving a live
// session; the client re-dials the peer from its dial list and resumes.
// The peer matches the resume against the replica the dead gateway
// streamed to it (the sessions-lost accounting), and the client's byte
// stream is identical to an undisturbed run.
func TestGatewayCrashFailoverReclaimsReplica(t *testing.T) {
	_, addr := startBackend(t, server.Config{})
	gwA, gwB, gwAAddr, gwBAddr := startPeeredGateways(t, []string{addr})

	cmds := []string{"vcap", "status", "halt"}
	golden := localGolden(t, interactiveSpec(), cmds)

	cl, err := client.Dial(strings.Join([]string{gwAAddr, gwBAddr}, ","), client.Options{
		Reconnect: true,
		Attempts:  10,
		Backoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var out bytes.Buffer
	i := 0
	st, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
		if i == 1 {
			// The first answer is journaled on gwA and gossiped. Wait for
			// the replica, then kill gwA: the next send fails and the
			// client must land on gwB.
			waitUntil(t, "replica before the crash", func() bool {
				return gwB.Metrics().ReplicaSessions == 1
			})
			crashGateway(gwA)
		}
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run across gateway crash: %v", err)
	}
	if out.String() != golden {
		t.Fatalf("failed-over session differs from undisturbed run:\n--- golden ---\n%s\n--- failover ---\n%s", golden, out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	m := gwB.Metrics()
	if m.ReplicaReclaims != 1 {
		t.Fatalf("peer ReplicaReclaims = %d, want 1 (%+v)", m.ReplicaReclaims, m)
	}
	if m.ReplicaSessions != 0 {
		t.Fatalf("replica leaked after reclaim: %d live", m.ReplicaSessions)
	}
	if m.SessionsTotal != 1 {
		t.Fatalf("peer served %d sessions, want 1", m.SessionsTotal)
	}
}

// TestGatewayKillMidTraceFrameFailover is the tentpole byte-stream
// guarantee one tier up from PR 7: the *gateway* dies partway through a
// TraceZ frame — after whole frames were already delivered — and the
// session resumed on its replica peer delivers output and trace samples
// byte-identical to an unmigrated run. The cut point is computed from a
// recording pass, so the failure lands deterministically inside the final
// trace frame.
func TestGatewayKillMidTraceFrameFailover(t *testing.T) {
	_, backendAddr := startBackend(t, server.Config{})
	gwB, gwBAddr := startGateway(t, cluster.Config{Backends: []string{backendAddr}})
	_, gwAAddr := startGateway(t, cluster.Config{Backends: []string{backendAddr}, Peer: gwBAddr,
		PeerRetry: 50 * time.Millisecond, PeerHeartbeat: 100 * time.Millisecond})
	// The client reaches gwA only through a byte-budget proxy: cutting the
	// gateway→client stream mid-frame is exactly what a SIGKILLed gateway
	// looks like from the wire.
	proxy := newLimitProxy(t, gwAAddr)

	spec := scriptedSpec()
	spec.Trace = true

	// Frame-length math comes from a raw golden session against gwB: the
	// same spec yields the same frame bytes on either gateway.
	conn, flags := rawDial(t, gwBAddr, wire.FlagTraceZ)
	if flags&wire.FlagTraceZ == 0 {
		t.Fatal("gateway did not grant TraceZ")
	}
	if err := wire.WriteMsg(conn, &wire.Run{Spec: spec, StreamTrace: true}); err != nil {
		t.Fatal(err)
	}
	goldenOut, goldenFrames, goldenDone := collectSession(t, conn)
	conn.Close()
	if len(goldenFrames) < 2 {
		t.Fatalf("need >= 2 trace frames to cut between chunks, got %d", len(goldenFrames))
	}

	runViaClient := func(addr string) ([]byte, []wire.TracePoint, client.Status) {
		cl, err := client.Dial(addr, client.Options{
			Reconnect: true,
			Attempts:  10,
			Backoff:   50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var samples []wire.TracePoint
		cl.OnTrace = func(tr *wire.Trace) { samples = append(samples, tr.Samples...) }
		var out bytes.Buffer
		st, err := cl.Run(spec, &out, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.Bytes(), samples, st
	}

	// Recording pass through the proxy, uncut: learn the gateway→client
	// byte total of a full client session on this wire.
	recOut, recSamples, recSt := runViaClient(proxy.addr())
	streamTotal := proxy.total(0)

	// Arm the cut 10 bytes into the final trace frame. The client session's
	// gateway→client stream is the golden session's frames plus a Welcome
	// of the same encoded length, so the recording total minus the tail
	// frames positions the cut mid-frame deterministically.
	doneFrame, err := wire.EncodeMsg(goldenDone)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := int64(len(goldenFrames[len(goldenFrames)-1]))
	cut := streamTotal - int64(len(doneFrame)) - lastLen + 10
	if cut <= 0 || cut >= streamTotal {
		t.Fatalf("bad cut point %d of %d", cut, streamTotal)
	}
	proxy.armLimit(cut)

	// Failover pass: dial list is the (doomed) proxy first, the replica
	// second. The mid-frame cut must be invisible in the byte stream.
	out, samples, st := runViaClient(proxy.addr() + "," + gwBAddr)
	if !bytes.Equal(out, recOut) {
		t.Fatalf("failed-over output differs from unmigrated run:\n--- unmigrated ---\n%s\n--- failover ---\n%s", recOut, out)
	}
	if !bytes.Equal(goldenOut, recOut) {
		t.Fatalf("recording pass output differs from raw golden session")
	}
	if len(samples) != len(recSamples) {
		t.Fatalf("failed-over stream carried %d trace samples, want %d", len(samples), len(recSamples))
	}
	for i := range samples {
		if samples[i] != recSamples[i] {
			t.Fatalf("trace sample %d differs after mid-frame gateway loss", i)
		}
	}
	if st != recSt {
		t.Fatalf("status differs: %+v vs %+v", st, recSt)
	}
	if got := gwB.Metrics().SessionsTotal; got != 2 {
		t.Fatalf("replica gateway served %d sessions, want 2 (golden + failover)", got)
	}
}

// TestGatewayKillMidExploreFailover: the gateway dies with a distributed
// `explore backends=2` fan-out in flight. The client journaled the explore
// line before sending it, so the resume on the peer replays the whole
// explore atomically — the report is byte-identical to an undisturbed run,
// never torn.
func TestGatewayKillMidExploreFailover(t *testing.T) {
	_, addrX := startBackend(t, server.Config{})
	_, addrY := startBackend(t, server.Config{})
	backends := []string{addrX, addrY}
	gwB, gwBAddr := startGateway(t, cluster.Config{Backends: backends})
	// A synthetic backend-link delay stretches the fan-out so the crash
	// lands while executor round-trips are still in flight.
	gwA, gwAAddr := startGateway(t, cluster.Config{Backends: backends, Peer: gwBAddr,
		PeerRetry: 50 * time.Millisecond, PeerHeartbeat: 100 * time.Millisecond,
		ExploreNetDelay: 100 * time.Millisecond})

	cmds := []string{"explore " + exploreOpts + " backends=2", "halt"}
	golden := localGolden(t, interactiveSpec(), []string{"explore " + exploreOpts, "halt"})

	cl, err := client.Dial(gwAAddr+","+gwBAddr, client.Options{
		Reconnect: true,
		Attempts:  10,
		Backoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var out bytes.Buffer
	i := 0
	st, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
		if i == 0 {
			// Fire the kill while the explore answer is being served: the
			// fan-out takes several delayed waves, so the crash interrupts
			// it mid-flight.
			go func() {
				time.Sleep(250 * time.Millisecond)
				crashGateway(gwA)
			}()
		}
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run across mid-explore gateway crash: %v", err)
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	if out.String() != golden {
		t.Fatalf("explore report torn or divergent after gateway crash:\n--- golden ---\n%s\n--- failover ---\n%s", golden, out.String())
	}
	if got := gwB.Metrics().SessionsTotal; got != 1 {
		t.Fatalf("replica gateway served %d sessions, want 1", got)
	}
}

// TestRejoinedBackendPlaceable is the blacklist-expiry regression test at
// the protocol level: a session's sole backend crashes (blacklisting it
// for the session), restarts on the same address, and re-registers via a
// Join frame. The Join must clear the per-session blacklist — before the
// fix the re-dispatch loop could never place the session again even though
// its only backend was back.
func TestRejoinedBackendPlaceable(t *testing.T) {
	// A backend on a fixed port we can resurrect at the same address.
	srv, addr := startBackend(t, server.Config{})
	gw, gwAddr := startGateway(t, cluster.Config{
		Backends:       []string{addr},
		HealthInterval: time.Hour, // only Join traffic may revive it
		MaxDispatches:  12,
	})

	cmds := []string{"vcap", "status", "halt"}
	golden := localGolden(t, interactiveSpec(), cmds)

	cl, err := client.Dial(gwAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var out bytes.Buffer
	i := 0
	st, err := cl.Run(interactiveSpec(), &out, func() (string, bool) {
		if i == 1 {
			// Crash the only backend: the session's next answer fails, the
			// backend lands on the session blacklist, and every re-dispatch
			// finds nothing — until a new server on the same address joins.
			crashed := make(chan struct{})
			go func() {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				srv.Shutdown(ctx)
				close(crashed)
			}()
			<-crashed
			srv2 := server.New(server.Config{})
			lis, err := net.Listen("tcp", addr)
			if err != nil {
				t.Errorf("rebind %s: %v", addr, err)
				return "", false
			}
			go srv2.Serve(lis)
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv2.Shutdown(ctx)
			})
			gw.AddBackend(addr) // what a Join frame does
		}
		if i < len(cmds) {
			i++
			return cmds[i-1], true
		}
		return "", false
	})
	if err != nil {
		t.Fatalf("run across backend restart: %v", err)
	}
	if out.String() != golden {
		t.Fatalf("session after rejoin differs from undisturbed run:\n--- golden ---\n%s\n--- rejoined ---\n%s", golden, out.String())
	}
	if st.Exit != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
}
