package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/explore"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// This file is the gateway end of distributed exploration: the console's
// `explore backends=N` is intercepted on the prompt relay, fanned across N
// backends as explore.Executor sessions (FlagExplore), and the merged report
// is streamed back byte-identically to a single-process run.

// countingConn counts the bytes crossing one executor connection into the
// gateway's explore transfer counters, deadline passthrough included.
type countingConn struct {
	net.Conn
	g *Gateway
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.g.c.exploreBytesIn.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.g.c.exploreBytesOut.Add(int64(n))
	return n, err
}

// remoteExecutor implements explore.Executor over one dedicated backend
// connection. Every method is a strictly serial request/response exchange
// (the backend's exploreSession mirrors this), so a mutex serializes the
// coordinator's concurrent dedup partitions onto the single connection. Any
// transport or protocol error is surfaced to the coordinator, which kills
// the executor and re-routes its work — exactly the failover the engine's
// journal re-seeding is built for.
type remoteExecutor struct {
	g    *Gateway
	addr string
	conn net.Conn
	base uint64

	mu  sync.Mutex
	seq uint32
}

// dialExecutor opens an exploration session on a backend: a FlagExplore
// handshake, the Explore request, and the executor hello carrying the
// backend's post-flash baseline hash.
func (g *Gateway) dialExecutor(addr string, spec scenario.Spec, es scenario.ExploreSpec) (*remoteExecutor, error) {
	raw, err := g.dialBackend(addr, wire.FlagExplore)
	if err != nil {
		return nil, err
	}
	conn := &countingConn{Conn: raw, g: g}
	x := &remoteExecutor{g: g, addr: addr, conn: conn}
	if err := g.sendBackend(conn, &wire.Explore{Spec: spec, Ex: es}); err != nil {
		raw.Close()
		return nil, err
	}
	m, err := g.recvBackend(conn, g.cfg.BackendReadTimeout)
	if err != nil {
		raw.Close()
		return nil, err
	}
	switch r := m.(type) {
	case *wire.ExploreResult:
		if r.Kind != wire.ExploreHello {
			raw.Close()
			return nil, fmt.Errorf("cluster: backend %s: expected executor hello, got kind %d", addr, r.Kind)
		}
		x.base = r.BaseHash
		return x, nil
	case *wire.Error:
		raw.Close()
		return nil, fmt.Errorf("cluster: backend %s: %w", addr, r)
	default:
		raw.Close()
		return nil, fmt.Errorf("cluster: backend %s: unexpected executor reply %T", addr, m)
	}
}

// BaseHash returns the backend's post-flash baseline hash from the hello.
func (x *remoteExecutor) BaseHash() uint64 { return x.base }

// rpc runs one shard request and collects want result frames. The optional
// ExploreNetDelay models backend-link latency for loopback benchmarking.
func (x *remoteExecutor) rpc(req *wire.ExploreShard, want int) ([]*wire.ExploreResult, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if d := x.g.cfg.ExploreNetDelay; d > 0 {
		time.Sleep(d)
	}
	x.seq++
	req.Seq = x.seq
	if err := x.g.sendBackend(x.conn, req); err != nil {
		return nil, err
	}
	out := make([]*wire.ExploreResult, 0, want)
	for len(out) < want {
		m, err := x.g.recvBackend(x.conn, x.g.cfg.BackendReadTimeout)
		if err != nil {
			return nil, err
		}
		switch r := m.(type) {
		case *wire.ExploreResult:
			if r.Seq != x.seq {
				return nil, fmt.Errorf("cluster: backend %s: result for shard %d while waiting on %d", x.addr, r.Seq, x.seq)
			}
			out = append(out, r)
		case *wire.Error:
			return nil, fmt.Errorf("cluster: backend %s: %w", x.addr, r)
		default:
			return nil, fmt.Errorf("cluster: backend %s: unexpected shard reply %T", x.addr, m)
		}
	}
	return out, nil
}

// Expand ships a frontier batch and reassembles the per-state result frames
// by their Index (the backend bounds each frame to one state's children).
func (x *remoteExecutor) Expand(states []explore.ShardState) ([]explore.Expansion, error) {
	results, err := x.rpc(&wire.ExploreShard{Kind: wire.ExploreExpand, States: wire.PackStates(states)}, len(states))
	if err != nil {
		return nil, err
	}
	out := make([]explore.Expansion, len(states))
	seen := make([]bool, len(states))
	for _, r := range results {
		if r.Kind != wire.ExploreExpanded {
			return nil, fmt.Errorf("cluster: backend %s: expected expansion result, got kind %d", x.addr, r.Kind)
		}
		i := int(r.Index)
		if i >= len(states) || seen[i] {
			return nil, fmt.Errorf("cluster: backend %s: expansion index %d out of range or duplicated", x.addr, i)
		}
		seen[i] = true
		out[i] = wire.UnpackExpansion(r)
	}
	return out, nil
}

// Dedup runs one partition's membership-and-insert chunk on the backend.
func (x *remoteExecutor) Dedup(part int, hashes []uint64) ([]bool, error) {
	results, err := x.rpc(&wire.ExploreShard{Kind: wire.ExploreDedup, Part: uint32(part), Hashes: hashes}, 1)
	if err != nil {
		return nil, err
	}
	r := results[0]
	if r.Kind != wire.ExploreFresh {
		return nil, fmt.Errorf("cluster: backend %s: expected dedup verdicts, got kind %d", x.addr, r.Kind)
	}
	return r.Fresh, nil
}

// Close hangs up; the backend treats the EOF as a clean end of the search.
func (x *remoteExecutor) Close() error { return x.conn.Close() }

// RunExplore fans one exhaustive power-failure search across up to
// es.Backends live backends and returns the merged report plus the
// coordinator's transfer/partition statistics. The report is
// reflect.DeepEqual-identical to a single-process explore.Run of the same
// spec at any backend count — the engine's canonical merge order and
// hash-sharded dedup make backend count, worker count, and mid-wave backend
// loss invisible to the verdict stream.
func (g *Gateway) RunExplore(spec scenario.Spec, es scenario.ExploreSpec) (*explore.Report, *explore.DistStats, error) {
	if err := scenario.Validate(spec); err != nil {
		return nil, nil, err
	}
	cfg, err := scenario.ExploreConfig(spec, es)
	if err != nil {
		return nil, nil, err
	}
	if g.cfg.ExploreShardStates > 0 {
		cfg.ShardStates = g.cfg.ExploreShardStates
	}

	want := es.Backends
	if want < 1 {
		want = 1
	}
	g.mu.Lock()
	addrs := make([]string, 0, len(g.backends))
	for a, b := range g.backends {
		if !b.down.Load() && !b.draining.Load() {
			addrs = append(addrs, a)
		}
	}
	g.mu.Unlock()
	// Deterministic fan-out: sorted address order, first `want` backends.
	// Executor identity cannot leak into the report, so any stable choice
	// works; sorted order makes runs reproducible.
	sort.Strings(addrs)
	if len(addrs) > want {
		addrs = addrs[:want]
	}

	g.c.exploreRuns.Add(1)
	var execs []explore.Executor
	var dialErr error
	for _, a := range addrs {
		x, derr := g.dialExecutor(a, spec, es)
		if derr != nil {
			// A backend that refuses the session is skipped — the search
			// runs on the rest — unless nobody accepts.
			g.c.dialErrors.Add(1)
			dialErr = derr
			g.logf("explore: backend %s unavailable: %v", a, derr)
			continue
		}
		execs = append(execs, x)
	}
	if len(execs) == 0 {
		if dialErr != nil {
			return nil, nil, fmt.Errorf("cluster: explore found no usable backend: %w", dialErr)
		}
		return nil, nil, errors.New("cluster: explore found no live backend")
	}
	defer func() {
		for _, x := range execs {
			x.Close() // idempotent for the executors the coordinator killed
		}
	}()
	stats := &explore.DistStats{}
	rep, err := explore.RunWithExecutors(cfg, execs, len(execs), stats)
	if err != nil {
		return nil, nil, err
	}
	return rep, stats, nil
}

// interceptExplore recognizes a distributed-exploration console command
// (`explore … backends=N`, N>1) in a prompt answer. The command never
// reaches the session's backend: the gateway runs the fan-out itself and
// synthesizes exactly the bytes the backend console would have produced —
// the report, then the next "(edb) " prompt marker — so the client-visible
// stream is indistinguishable from a local run.
//
// On success the command line IS journaled and the synthesized bytes ARE
// counted in the session's output offset: a later failover replays the line
// on the replacement backend, which re-runs the search single-process there
// and regenerates the identical bytes (the engine's invariance guarantee),
// keeping the skip offset aligned. A failed fan-out is NOT journaled and
// NOT counted — the error text exists only on this gateway's wire, and a
// replay would not reproduce it.
//
// The returned handled is false when the line is not a distributed explore
// (forward it to the backend as usual); err is non-nil only when the client
// connection itself failed.
func (g *Gateway) interceptExplore(clientConn net.Conn, sess *sessState, line string) (handled bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "explore" {
		return false, nil
	}
	es, perr := scenario.ParseExploreArgs(fields[1:], sess.spec.Guards)
	if perr != nil || es.Backends <= 1 {
		// Malformed lines and single-process explores belong to the
		// session's own backend, which answers them exactly as off-cluster.
		return false, nil
	}
	g.c.exploreIntercepts.Add(1)
	rep, _, rerr := g.RunExplore(sess.spec, es)
	var out string
	if rerr != nil {
		out = "error: " + rerr.Error() + "\n(edb) "
	} else {
		out = rep.Format() + "(edb) "
		sess.journal = append(sess.journal, wire.JournalEntry{Kind: wire.JournalLine, Line: line})
		sess.outputBytes += uint64(len(out))
		// Replicate the journaled explore line (plus the advanced output
		// offset) so a peer-gateway resume replays the whole explore
		// atomically — the peer either re-runs it to the same report or,
		// on failure, never emits a torn one.
		g.replAppend(sess)
	}
	g.c.bytesRelayed.Add(int64(len(out)))
	if err := g.send(clientConn, &wire.Output{Data: []byte(out)}); err != nil {
		return true, err
	}
	if err := g.send(clientConn, &wire.Prompt{}); err != nil {
		return true, err
	}
	return true, nil
}
