// Gateway replication: the FlagGossip peer protocol that removes the
// gateway as a single point of failure.
//
// A gateway configured with Config.Peer streams its fleet state to the
// peer gateway over one outbound connection negotiated with FlagGossip on
// the peer's ordinary client listener: backend join/leave events, the
// template-image cache, and — per proxied session — the replay journal
// plus delivered-to-client offsets. The peer applies the stream into a
// replica store. When this gateway dies, its clients re-dial the peer
// (internal/client's multi-address dial list) and resume via the existing
// SessResume path; the peer reclaims the matching replica, warms the
// resume from the gossiped image cache, and routes the session onto a
// backend it already knows about, so the hand-off needs no cold discovery.
//
// Replication is asynchronous and crash-tolerant rather than transactional:
// the client's own journal is the authority for its byte stream (it
// journals each answer before sending), so a gossip frame lost with the
// dying gateway costs nothing — the replica exists to keep the surviving
// gateway warm (backends, images, session accounting), not to be the only
// copy. Orderings that matter are preserved: a session's journal entries
// are gossiped in journal order (GossipSessAppend.First makes appends
// idempotent), and a journal entry is enqueued only after the primary
// journaled it, never before.
//
// The outbound side never blocks a session: hooks append to a bounded
// pending queue drained by one writer goroutine. If the peer is absent the
// mirror alone carries the state and the next connect starts with
// GossipReset plus a full snapshot; if the queue overflows, the connection
// is dropped and rebuilt the same way.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/wire"
)

// maxPendingGossip bounds the outbound event queue; past it the peer
// connection is dropped and resynchronized from a snapshot, so a stalled
// peer costs bounded memory, not unbounded backlog.
const maxPendingGossip = 4096

// maxReplicaSessions bounds the inbound replica store against a runaway
// or hostile peer.
const maxReplicaSessions = 4096

// replSess is one replicated session: the sender's mirror of its live
// sessState, and the receiver's replica of the peer's.
type replSess struct {
	spec         scenario.Spec
	specHash     uint64
	streamTrace  bool
	journal      []wire.JournalEntry
	outputBytes  uint64
	traceSamples uint64
}

// replicator owns the outbound half of gateway replication.
type replicator struct {
	g *Gateway

	mu        sync.Mutex
	sessions  map[uint64]*replSess // mirror of this gateway's live sessions
	pending   []*wire.Gossip       // events awaiting the writer goroutine
	connected bool                 // a peer connection is live and snapshotted

	notify chan struct{} // cap 1; wakes the writer
}

func newReplicator(g *Gateway) *replicator {
	return &replicator{
		g:        g,
		sessions: make(map[uint64]*replSess),
		notify:   make(chan struct{}, 1),
	}
}

func (r *replicator) kick() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// enqueueLocked queues events for the writer; with no live connection the
// mirror alone carries the state (the next connect snapshots it). Callers
// hold r.mu and must kick() after releasing it.
func (r *replicator) enqueueLocked(evs ...*wire.Gossip) {
	if !r.connected {
		return
	}
	if len(r.pending)+len(evs) > maxPendingGossip {
		// The peer cannot keep up: drop the connection rather than grow
		// without bound; the reconnect resyncs from a snapshot.
		r.connected = false
		r.pending = nil
		r.g.c.gossipOverflows.Add(1)
		return
	}
	r.pending = append(r.pending, evs...)
}

func (r *replicator) disconnect() {
	r.mu.Lock()
	r.connected = false
	r.pending = nil
	r.mu.Unlock()
}

// loop dials Config.Peer until Shutdown, streaming events while a
// connection lasts and backing off PeerRetry between attempts.
func (r *replicator) loop() {
	g := r.g
	defer g.wg.Done()
	for {
		select {
		case <-g.stopHealth:
			return
		default:
		}
		conn, err := g.dialPeer()
		if err != nil {
			g.c.gossipDialErrors.Add(1)
		} else {
			g.c.gossipConnects.Add(1)
			g.logf("peer %s: replication stream connected", g.cfg.Peer)
			r.run(conn)
			conn.Close()
			g.logf("peer %s: replication stream closed", g.cfg.Peer)
		}
		select {
		case <-g.stopHealth:
			return
		case <-time.After(g.cfg.PeerRetry):
		}
	}
}

// run services one peer connection: snapshot, then stream events and
// heartbeats until an error, an overflow, or Shutdown.
func (r *replicator) run(conn net.Conn) {
	g := r.g
	defer r.disconnect()

	// Mark connected and build the snapshot in one critical section, so a
	// hook firing concurrently either lands in the snapshot or in pending —
	// never in neither. (g.mu/imgMu nest inside r.mu here; hooks release
	// them before taking r.mu, so the order is acyclic.)
	r.mu.Lock()
	r.pending = r.snapshotLocked()
	r.connected = true
	r.mu.Unlock()

	hb := time.NewTicker(g.cfg.PeerHeartbeat)
	defer hb.Stop()
	for {
		r.mu.Lock()
		batch := r.pending
		r.pending = nil
		alive := r.connected
		r.mu.Unlock()
		if !alive {
			return // overflow dropped this connection
		}
		for _, ev := range batch {
			if err := g.send(conn, ev); err != nil {
				g.logf("peer %s: replication send failed: %v", g.cfg.Peer, err)
				return
			}
			g.c.gossipFramesOut.Add(1)
		}
		select {
		case <-g.stopHealth:
			return
		case <-r.notify:
		case <-hb.C:
			if err := g.send(conn, &wire.Gossip{Kind: wire.GossipHeartbeat}); err != nil {
				return
			}
			g.c.gossipFramesOut.Add(1)
		}
	}
}

// snapshotLocked renders the gateway's whole replicable state as an event
// stream: a Reset, the live backends, the image cache, and every mirrored
// session. Caller holds r.mu.
func (r *replicator) snapshotLocked() []*wire.Gossip {
	g := r.g
	evs := []*wire.Gossip{{Kind: wire.GossipReset}}
	g.mu.Lock()
	for addr, b := range g.backends {
		if !b.down.Load() {
			evs = append(evs, &wire.Gossip{Kind: wire.GossipBackendJoin, Addr: addr})
		}
	}
	g.mu.Unlock()
	g.imgMu.Lock()
	for h, e := range g.images {
		evs = append(evs, &wire.Gossip{Kind: wire.GossipImage, SpecHash: h, Image: e.data})
	}
	g.imgMu.Unlock()
	for id, rs := range r.sessions {
		evs = append(evs, sessOpenEvent(id, rs))
		if len(rs.journal) > 0 || rs.outputBytes > 0 || rs.traceSamples > 0 {
			evs = append(evs, sessAppendEvent(id, 0, rs))
		}
	}
	return evs
}

func sessOpenEvent(id uint64, rs *replSess) *wire.Gossip {
	return &wire.Gossip{Kind: wire.GossipSessOpen, Sess: id, Spec: rs.spec, StreamTrace: rs.streamTrace}
}

func sessAppendEvent(id uint64, first int, rs *replSess) *wire.Gossip {
	return &wire.Gossip{
		Kind:         wire.GossipSessAppend,
		Sess:         id,
		First:        uint32(first),
		Journal:      rs.journal[first:],
		OutputBytes:  rs.outputBytes,
		TraceSamples: rs.traceSamples,
	}
}

// dialPeer opens the outbound replication connection: BackendTLS when
// configured, the peer's client-tier AuthToken, and a handshake demanding
// FlagGossip.
func (g *Gateway) dialPeer() (net.Conn, error) {
	conn, err := g.dialRaw(g.cfg.Peer)
	if err != nil {
		return nil, err
	}
	hello := &wire.Hello{Version: wire.Version, Client: g.cfg.Name}
	offer := wire.FlagGossip
	if g.cfg.AuthToken != "" {
		offer |= wire.FlagAuth
		hello.Token = g.cfg.AuthToken
	}
	if err := g.sendf(conn, hello, offer); err != nil {
		conn.Close()
		return nil, err
	}
	m, flags, err := g.recvf(conn, g.cfg.ReadTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch w := m.(type) {
	case *wire.Welcome:
		if flags&wire.FlagGossip == 0 {
			conn.Close()
			return nil, fmt.Errorf("cluster: peer %s does not speak gossip (caps %#02x)", g.cfg.Peer, flags)
		}
		return conn, nil
	case *wire.Error:
		conn.Close()
		return nil, fmt.Errorf("cluster: peer %s: %w", g.cfg.Peer, w)
	default:
		conn.Close()
		return nil, fmt.Errorf("cluster: peer %s: unexpected handshake reply %T", g.cfg.Peer, m)
	}
}

// ---- outbound hooks (no-ops without Config.Peer) ----

// replOpen mirrors a starting session and announces it to the peer. A
// client-resumed session carries journal and offsets already; those ride
// an immediate append so the replica starts complete.
func (g *Gateway) replOpen(sess *sessState) {
	r := g.repl
	if r == nil {
		return
	}
	sess.id = g.sessSeq.Add(1)
	rs := &replSess{
		spec:         sess.spec,
		specHash:     scenario.SpecHash(sess.spec),
		streamTrace:  sess.streamTrace,
		journal:      append([]wire.JournalEntry(nil), sess.journal...),
		outputBytes:  sess.outputBytes,
		traceSamples: sess.traceSamples,
	}
	r.mu.Lock()
	r.sessions[sess.id] = rs
	evs := []*wire.Gossip{sessOpenEvent(sess.id, rs)}
	if len(rs.journal) > 0 || rs.outputBytes > 0 || rs.traceSamples > 0 {
		evs = append(evs, sessAppendEvent(sess.id, 0, rs))
	}
	r.enqueueLocked(evs...)
	r.mu.Unlock()
	r.kick()
}

// replAppend ships the session's journal entries past the mirrored prefix
// plus its current delivered-to-client offsets. Called by the session's
// own goroutine right after it extends sess.journal.
func (g *Gateway) replAppend(sess *sessState) {
	r := g.repl
	if r == nil || sess.id == 0 {
		return
	}
	r.mu.Lock()
	rs := r.sessions[sess.id]
	if rs == nil {
		r.mu.Unlock()
		return
	}
	first := len(rs.journal)
	rs.journal = append(rs.journal, sess.journal[first:]...)
	rs.outputBytes = sess.outputBytes
	rs.traceSamples = sess.traceSamples
	r.enqueueLocked(sessAppendEvent(sess.id, first, rs))
	r.mu.Unlock()
	r.kick()
}

// replClose drops the mirror and tells the peer the session concluded.
func (g *Gateway) replClose(sess *sessState) {
	r := g.repl
	if r == nil || sess.id == 0 {
		return
	}
	r.mu.Lock()
	delete(r.sessions, sess.id)
	r.enqueueLocked(&wire.Gossip{Kind: wire.GossipSessClose, Sess: sess.id})
	r.mu.Unlock()
	r.kick()
}

// replBackend announces a backend join (or leave) to the peer.
func (g *Gateway) replBackend(addr string, join bool) {
	r := g.repl
	if r == nil {
		return
	}
	kind := wire.GossipBackendLeave
	if join {
		kind = wire.GossipBackendJoin
	}
	r.mu.Lock()
	r.enqueueLocked(&wire.Gossip{Kind: kind, Addr: addr})
	r.mu.Unlock()
	r.kick()
}

// replImage announces a new template-image cache entry to the peer.
func (g *Gateway) replImage(specHash uint64, img []byte) {
	r := g.repl
	if r == nil {
		return
	}
	r.mu.Lock()
	r.enqueueLocked(&wire.Gossip{Kind: wire.GossipImage, SpecHash: specHash, Image: img})
	r.mu.Unlock()
	r.kick()
}

// ---- inbound: the peer's stream applied into this gateway ----

// servePeer owns one inbound replication connection after its FlagGossip
// handshake: nothing but Gossip frames ride it, and a peer silent for
// several heartbeats is reaped.
func (g *Gateway) servePeer(conn net.Conn) {
	idle := 4 * g.cfg.PeerHeartbeat
	for {
		m, err := g.recv(conn, idle)
		if err != nil {
			return
		}
		ev, ok := m.(*wire.Gossip)
		if !ok {
			g.send(conn, &wire.Error{Code: wire.CodeBadRequest,
				Text: fmt.Sprintf("unexpected frame %#02x on replication stream", m.Type())})
			return
		}
		g.c.gossipFramesIn.Add(1)
		g.applyGossip(ev)
	}
}

// applyGossip folds one peer event into this gateway's state. Every case
// is idempotent: the sender may replay events around a snapshot, and
// replays must converge, never regress (appends extend, never truncate;
// offsets are monotone).
func (g *Gateway) applyGossip(ev *wire.Gossip) {
	switch ev.Kind {
	case wire.GossipHeartbeat:
		// Nothing to apply; receiving it refreshed the read deadline.
	case wire.GossipReset:
		g.replicaMu.Lock()
		g.replica = make(map[uint64]*replSess)
		g.replicaMu.Unlock()
	case wire.GossipBackendJoin:
		if ev.Addr != "" {
			g.addBackend(ev.Addr, false)
		}
	case wire.GossipBackendLeave:
		if ev.Addr != "" {
			g.removeBackend(ev.Addr, false)
		}
	case wire.GossipImage:
		g.storeImage(ev.SpecHash, ev.Image, false)
	case wire.GossipSessOpen:
		g.replicaMu.Lock()
		if _, ok := g.replica[ev.Sess]; !ok && len(g.replica) < maxReplicaSessions {
			g.replica[ev.Sess] = &replSess{
				spec:        ev.Spec,
				specHash:    scenario.SpecHash(ev.Spec),
				streamTrace: ev.StreamTrace,
			}
		}
		g.replicaMu.Unlock()
	case wire.GossipSessAppend:
		g.replicaMu.Lock()
		if rs := g.replica[ev.Sess]; rs != nil {
			if first := int(ev.First); first <= len(rs.journal) {
				if skip := len(rs.journal) - first; skip < len(ev.Journal) {
					rs.journal = append(rs.journal, ev.Journal[skip:]...)
				}
			}
			if ev.OutputBytes > rs.outputBytes {
				rs.outputBytes = ev.OutputBytes
			}
			if ev.TraceSamples > rs.traceSamples {
				rs.traceSamples = ev.TraceSamples
			}
		}
		g.replicaMu.Unlock()
	case wire.GossipSessClose:
		g.replicaMu.Lock()
		delete(g.replica, ev.Sess)
		g.replicaMu.Unlock()
	}
}

// reclaimReplica matches a client-tier SessResume against the replica
// store: same spec template, journals prefix-compatible. A match confirms
// the hand-off of a session the dead peer was proxying (the
// sessions-lost accounting the failover bench reports) and releases the
// replica. The client's own journal stays authoritative for the resume —
// it journals every answer before sending, so it is never behind the
// replica by more than in-flight frames the replay regenerates anyway.
func (g *Gateway) reclaimReplica(sess *sessState) {
	h := scenario.SpecHash(sess.spec)
	var id uint64
	found := false
	g.replicaMu.Lock()
	for rid, rs := range g.replica {
		if rs.specHash != h || !journalsCompatible(rs.journal, sess.journal) {
			continue
		}
		id, found = rid, true
		break
	}
	if found {
		delete(g.replica, id)
	}
	g.replicaMu.Unlock()
	if found {
		g.c.replicaReclaims.Add(1)
		g.logf("resume: reclaimed replicated peer session %d", id)
	}
}

// journalsCompatible reports whether one journal is a prefix of the other
// — the invariant linking a client's journal to the dead gateway's replica
// of the same session.
func journalsCompatible(a, b []wire.JournalEntry) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Kind != b[i].Kind || a[i].Line != b[i].Line {
			return false
		}
	}
	return true
}
